// Command benchdump runs the repo's curated benchmark subset and emits
// a schema-versioned BENCH_<date>.json snapshot: ns/op, allocs/op, and
// the derived trajectory metrics (ns/event, events/sec, allocs/request)
// per benchmark, plus host metadata. The committed snapshots form the
// performance trajectory the ROADMAP asks for; CI reruns benchdump in
// compare mode (-against) with a generous gate to catch
// order-of-magnitude regressions. The gate only applies between hosts
// with matching CPU counts — parallel-scaling numbers from a 1-core
// container and a multicore runner are not comparable, so a mismatch
// warns and skips the gate instead of emitting false verdicts.
//
// Usage:
//
//	go run ./cmd/benchdump                      # measure, write BENCH_<today>.json
//	go run ./cmd/benchdump -out BENCH_x.json -baseline BENCH_prev.json
//	go run ./cmd/benchdump -against BENCH_x.json -gate 3   # CI regression check
//	go test -run '^$' -bench ... -benchmem . | go run ./cmd/benchdump -input -
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"runtime"
	"time"

	"accelflow/internal/benchfmt"
)

// defaultBench is the curated subset: the single-run pairs that guard
// the nil-observer/nil-checker/nil-controller fast paths, the serial
// sweep, the sharded fleet scaling curve, and the end-to-end serving
// round trip. Small enough to run on every CI push, load-bearing
// enough to anchor every speed claim. BenchmarkRunSharded expands to
// one snapshot entry per shard count (RunSharded/shards=N), so the
// trajectory records the whole scaling curve, not one point.
const defaultBench = "^(BenchmarkRunObsDisabled|BenchmarkRunObsEnabled|BenchmarkRunCheckDisabled|BenchmarkRunControlledDisabled|BenchmarkRunControlledEnabled|BenchmarkRunSharded|BenchmarkSweepSerial|BenchmarkServeSubmitQuick|BenchmarkServeSubmitCached)$"

func main() {
	var (
		out       = flag.String("out", "", "output snapshot path (default BENCH_<date>.json; empty in -against mode skips writing)")
		benchRe   = flag.String("bench", defaultBench, "benchmark regexp passed to go test -bench")
		benchtime = flag.String("benchtime", "3x", "go test -benchtime per benchmark")
		count     = flag.Int("count", 3, "go test -count; the minimum ns/op run is kept")
		pkg       = flag.String("pkg", ".", "package dir holding the benchmarks")
		input     = flag.String("input", "", "parse existing `go test -bench` output from this file ('-' = stdin) instead of running go test")
		baseline  = flag.String("baseline", "", "previous snapshot to embed as the baseline trajectory point")
		against   = flag.String("against", "", "committed snapshot to gate against; regressions exit nonzero")
		gate      = flag.Float64("gate", 3.0, "regression gate: fail when current ns/op > gate * committed ns/op")
		date      = flag.String("date", "", "snapshot date stamp (default today, UTC)")
	)
	flag.Parse()
	if err := run(*out, *benchRe, *benchtime, *count, *pkg, *input, *baseline, *against, *gate, *date); err != nil {
		fmt.Fprintln(os.Stderr, "benchdump:", err)
		os.Exit(1)
	}
}

func run(out, benchRe, benchtime string, count int, pkg, input, baseline, against string, gate float64, date string) error {
	raw, err := benchOutput(input, benchRe, benchtime, count, pkg)
	if err != nil {
		return err
	}
	snap, err := benchfmt.ParseTestOutput(bytes.NewReader(raw))
	if err != nil {
		return err
	}
	if date == "" {
		date = time.Now().UTC().Format("2006-01-02")
	}
	snap.Date = date
	snap.Host.GoVersion = runtime.Version()
	snap.Host.OS = runtime.GOOS
	snap.Host.Arch = runtime.GOARCH
	snap.Host.CPUs = runtime.NumCPU()

	if baseline != "" {
		prev, err := decodeFile(baseline)
		if err != nil {
			return fmt.Errorf("baseline: %w", err)
		}
		snap.SetBaseline(prev)
	}

	if out == "" && against == "" {
		out = "BENCH_" + date + ".json"
	}
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		if err := snap.Encode(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %s (%d benchmarks)\n", out, len(snap.Benchmarks))
	}
	summarize(snap)

	if against != "" {
		committed, err := decodeFile(against)
		if err != nil {
			return fmt.Errorf("against: %w", err)
		}
		if ok, reason := snap.Host.ComparableTo(committed.Host); !ok {
			// A cross-host gate emits false verdicts (e.g. a 1-core
			// container vs a multicore runner); warn and skip rather
			// than fail or vacuously pass.
			fmt.Fprintf(os.Stderr, "benchdump: WARNING: skipping regression gate against %s: %s\n", against, reason)
			return nil
		}
		if regs := benchfmt.Compare(snap, committed, gate); len(regs) > 0 {
			for _, r := range regs {
				fmt.Fprintln(os.Stderr, "REGRESSION", r)
			}
			return fmt.Errorf("%d benchmark(s) exceeded the %.1fx gate vs %s", len(regs), gate, against)
		}
		fmt.Printf("all benchmarks within %.1fx of %s\n", gate, against)
	}
	return nil
}

// benchOutput produces the raw `go test -bench` text: either from the
// -input file/stdin, or by running go test on the benchmark package.
func benchOutput(input, benchRe, benchtime string, count int, pkg string) ([]byte, error) {
	if input != "" {
		if input == "-" {
			return io.ReadAll(os.Stdin)
		}
		return os.ReadFile(input)
	}
	args := []string{"test", "-run", "^$", "-bench", benchRe, "-benchmem",
		"-benchtime", benchtime, "-count", fmt.Sprint(count), pkg}
	cmd := exec.Command("go", args...)
	cmd.Stderr = os.Stderr
	outBytes, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go %v: %w\n%s", args, err, outBytes)
	}
	return outBytes, nil
}

func decodeFile(path string) (*benchfmt.Snapshot, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return benchfmt.Decode(f)
}

// summarize prints the trajectory headline per benchmark, with the
// speedup column when a baseline is embedded.
func summarize(s *benchfmt.Snapshot) {
	for _, b := range s.Benchmarks {
		line := fmt.Sprintf("  %-22s %12.0f ns/op", b.Name, b.NsPerOp)
		if b.EventsPerSec > 0 {
			line += fmt.Sprintf("  %9.0f events/sec  %6.1f ns/event", b.EventsPerSec, b.NsPerEvent)
		}
		if b.AllocsPerRequest > 0 {
			line += fmt.Sprintf("  %7.1f allocs/req", b.AllocsPerRequest)
		}
		if sp, ok := s.Speedup[b.Name]; ok {
			line += fmt.Sprintf("  %5.2fx vs baseline", sp)
		}
		fmt.Println(line)
	}
}

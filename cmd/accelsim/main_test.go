package main

import (
	"strings"
	"testing"
)

// goodArgs mirrors the flag defaults so each row mutates exactly one
// thing.
func goodArgs() cliArgs {
	return cliArgs{n: 2500, seed: 1, ctlUp: 0.75, ctlDown: 0.25, ctlMax: 8}
}

// TestValidateFlags pins the upfront-validation contract: every bad
// flag value is rejected before any simulation work starts (main turns
// the error into an exit-2 fatalf), and each message names the flag.
func TestValidateFlags(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*cliArgs)
		want string // error substring; "" = valid
	}{
		{"defaults", func(a *cliArgs) {}, ""},
		{"known experiment", func(a *cliArgs) { a.exp = "area" }, ""},
		{"all experiments", func(a *cliArgs) { a.exp = "all" }, ""},
		{"negative faults", func(a *cliArgs) { a.faultRate = -1 }, "-faults"},
		{"faultloss above one", func(a *cliArgs) { a.faultLoss = 1.5 }, "-faultloss"},
		{"negative faultloss", func(a *cliArgs) { a.faultLoss = -0.1 }, "-faultloss"},
		{"zero requests", func(a *cliArgs) { a.n = 0 }, "-n"},
		{"negative requests", func(a *cliArgs) { a.n = -5 }, "-n"},
		{"negative parallel", func(a *cliArgs) { a.parallel = -1 }, "-parallel"},
		{"shards serial", func(a *cliArgs) { a.shards = 1; a.exp = "area" }, ""},
		{"shards sharded", func(a *cliArgs) { a.shards = 4; a.exp = "area" }, ""},
		{"negative shards", func(a *cliArgs) { a.shards = -2 }, "-shards"},
		{"unknown experiment", func(a *cliArgs) { a.exp = "fig99" }, "unknown experiment"},

		{"ctl pe", func(a *cliArgs) { a.ctlTarget = "pe" }, ""},
		{"ctl cores with slo", func(a *cliArgs) { a.ctlTarget = "cores"; a.ctlSLO = 300 }, ""},
		{"ctl shed without autoscaler", func(a *cliArgs) { a.ctlShedQ = 64 }, ""},
		{"ctl retry without autoscaler", func(a *cliArgs) { a.ctlRetry = 4 }, ""},
		{"ctl unknown target", func(a *cliArgs) { a.ctlTarget = "gpus" }, "autoscale target"},
		{"ctl replicas needs fleet", func(a *cliArgs) { a.ctlTarget = "replicas" }, "needs a fleet"},
		{"ctl down above up", func(a *cliArgs) { a.ctlTarget = "pe"; a.ctlDown = 0.9 }, "DownUtil"},
		{"ctl nonpositive up", func(a *cliArgs) { a.ctlTarget = "pe"; a.ctlUp = 0 }, "UpUtil"},
		{"ctl negative slo", func(a *cliArgs) { a.ctlTarget = "pe"; a.ctlSLO = -1 }, "SLOUs"},
		{"ctl negative ceiling", func(a *cliArgs) { a.ctlTarget = "pe"; a.ctlMax = -1 }, "-ctl"},
		{"ctl shed prob above one", func(a *cliArgs) { a.ctlShedP = 1.5 }, "shed probability"},
		{"ctl negative shed queue", func(a *cliArgs) { a.ctlShedQ = -2 }, "shed queue"},
		{"ctl negative retry budget", func(a *cliArgs) { a.ctlRetry = -3 }, "retry budget"},
		{"ctl with tune", func(a *cliArgs) { a.tune = "p99"; a.ctlTarget = "pe" }, "-ctl"},

		{"tune defaults", func(a *cliArgs) { a.tune = "p99" }, ""},
		{"tune energy", func(a *cliArgs) { a.tune = "energy" }, ""},
		{"tune costperf anneal", func(a *cliArgs) { a.tune = "costperf"; a.tuneStrategy = "anneal" }, ""},
		{"tune custom space", func(a *cliArgs) {
			a.tune = "p99"
			a.tuneChiplets = "2,4"
			a.tunePEs = "8, 12"
			a.tunePolicies = "accelflow,relief"
		}, ""},
		{"tune state without resume", func(a *cliArgs) { a.tune = "p99"; a.tuneState = "s.json" }, ""},
		{"tune resume with state", func(a *cliArgs) {
			a.tune = "p99"
			a.tuneState = "s.json"
			a.tuneResume = true
		}, ""},
		{"unknown objective", func(a *cliArgs) { a.tune = "latency" }, "objective"},
		{"unknown strategy", func(a *cliArgs) { a.tune = "p99"; a.tuneStrategy = "gradient" }, "strategy"},
		{"tune with exp", func(a *cliArgs) { a.tune = "p99"; a.exp = "area" }, "separate modes"},
		{"resume without state", func(a *cliArgs) { a.tune = "p99"; a.tuneResume = true }, "-tunestate"},
		{"resume without tune", func(a *cliArgs) { a.tuneResume = true }, "-tune"},
		{"state without tune", func(a *cliArgs) { a.tuneState = "s.json" }, "-tune"},
		{"out without tune", func(a *cliArgs) { a.tuneOut = "r.json" }, "-tune"},
		{"negative generations", func(a *cliArgs) { a.tune = "p99"; a.tuneGens = -1 }, "-tunegens"},
		{"negative patience", func(a *cliArgs) { a.tune = "p99"; a.tunePatience = -1 }, "-tunegens and -tunepatience"},
		{"negative slo", func(a *cliArgs) { a.tune = "p99"; a.tuneSLO = -100 }, "-tuneslo"},
		{"negative load", func(a *cliArgs) { a.tune = "p99"; a.tuneLoad = -0.5 }, "-tuneload"},
		{"bad chiplet list", func(a *cliArgs) { a.tune = "p99"; a.tuneChiplets = "2,x" }, "-tunechiplets"},
		{"bad pes list", func(a *cliArgs) { a.tune = "p99"; a.tunePEs = "8,," }, "-tunepes"},
		{"bad queue list", func(a *cliArgs) { a.tune = "p99"; a.tuneQueues = "64,big" }, "-tunequeues"},
		{"bad timeout list", func(a *cliArgs) { a.tune = "p99"; a.tuneTimeouts = "1e4,soon" }, "-tunetimeouts"},
		{"invalid chiplet plan", func(a *cliArgs) { a.tune = "p99"; a.tuneChiplets = "5" }, "chiplet plan"},
		{"unknown policy", func(a *cliArgs) { a.tune = "p99"; a.tunePolicies = "fifo" }, "unknown policy"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			a := goodArgs()
			tc.mut(&a)
			err := a.validate()
			if tc.want == "" {
				if err != nil {
					t.Fatalf("validate() = %v, want nil", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("validate() = %v, want substring %q", err, tc.want)
			}
		})
	}
}

// TestControlSpecSelection pins the nil-at-defaults contract: with
// every control knob neutral the observed run must get a nil spec
// (the exact pre-control code path), and each knob group enables
// independently.
func TestControlSpecSelection(t *testing.T) {
	a := goodArgs()
	if spec := a.controlSpec(); spec != nil {
		t.Fatalf("default flags built a control spec: %+v", spec)
	}

	a.ctlTarget = "cores"
	a.ctlSLO = 300
	spec := a.controlSpec()
	if spec == nil || spec.Autoscale == nil {
		t.Fatal("-ctl cores did not build an autoscale spec")
	}
	if spec.Autoscale.Target != "cores" || spec.Autoscale.UpUtil != 0.75 || spec.Autoscale.SLOUs != 300 {
		t.Fatalf("autoscale spec does not mirror the flags: %+v", spec.Autoscale)
	}
	if spec.Shed != nil || spec.Retry != nil {
		t.Fatalf("-ctl alone must not enable shedding or retries: %+v", spec)
	}

	a = goodArgs()
	a.ctlShedQ = 64
	a.ctlRetry = 4
	spec = a.controlSpec()
	if spec == nil || spec.Autoscale != nil {
		t.Fatalf("shed/retry knobs must work without an autoscaler: %+v", spec)
	}
	if spec.Shed == nil || spec.Shed.Queue != 64 || spec.Retry == nil || spec.Retry.Budget != 4 {
		t.Fatalf("shed/retry spec does not mirror the flags: %+v", spec)
	}
}

// TestTuneParamsSpaceSelection: all space flags empty selects the
// default space; any set flag switches to the explicit space.
func TestTuneParamsSpaceSelection(t *testing.T) {
	a := goodArgs()
	a.tune = "p99"
	p, err := a.tuneParams()
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Space.Chiplets) == 0 || len(p.Space.PEs) == 0 || len(p.Space.Policies) == 0 {
		t.Fatalf("empty space flags should select the default space, got %+v", p.Space)
	}

	a.tuneChiplets = "1,2"
	p, err = a.tuneParams()
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Space.Chiplets) != 2 || p.Space.Chiplets[0] != 1 {
		t.Fatalf("explicit -tunechiplets ignored: %+v", p.Space.Chiplets)
	}
	if len(p.Space.PEs) != 0 || len(p.Space.Policies) != 0 {
		t.Fatalf("explicit space must not inherit default dims: %+v", p.Space)
	}
}

func TestParseLists(t *testing.T) {
	if got, err := parseInts("-x", "1, 2,3"); err != nil || len(got) != 3 || got[2] != 3 {
		t.Errorf("parseInts = %v, %v", got, err)
	}
	if got, err := parseFloats("-x", "1e4,5.5"); err != nil || len(got) != 2 || got[1] != 5.5 {
		t.Errorf("parseFloats = %v, %v", got, err)
	}
	if got, err := parseInts("-x", ""); err != nil || got != nil {
		t.Errorf("parseInts(empty) = %v, %v, want nil, nil", got, err)
	}
	if _, err := parseInts("-tunequeues", "64,deep"); err == nil || !strings.Contains(err.Error(), "-tunequeues") {
		t.Errorf("parseInts error should name the flag: %v", err)
	}
}

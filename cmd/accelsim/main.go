// Command accelsim regenerates the AccelFlow paper's tables and
// figures from the simulator.
//
// Usage:
//
//	accelsim -exp fig11            # one experiment
//	accelsim -exp all              # everything (slow)
//	accelsim -list                 # show experiment IDs
//	accelsim -exp fig14 -n 800     # smaller request budget
//	accelsim -exp fig11 -quick     # CI-sized run
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"accelflow/internal/experiments"
)

func main() {
	var (
		exp   = flag.String("exp", "", "experiment ID (see -list), or 'all'")
		n     = flag.Int("n", 2500, "request budget per simulation")
		seed  = flag.Int64("seed", 1, "RNG seed")
		quick = flag.Bool("quick", false, "shrink workloads for a fast pass")
		list  = flag.Bool("list", false, "list experiment IDs")
	)
	flag.Parse()

	if *list || *exp == "" {
		fmt.Println("experiments:")
		for _, id := range experiments.IDs() {
			fmt.Printf("  %s\n", id)
		}
		if *exp == "" {
			fmt.Println("\nrun with -exp <id> or -exp all")
		}
		return
	}

	opts := experiments.Options{Requests: *n, Seed: *seed, Quick: *quick}
	ids := []string{*exp}
	if *exp == "all" {
		ids = experiments.IDs()
	}
	failed := 0
	for _, id := range ids {
		run, ok := experiments.Registry[id]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q; try -list\n", id)
			os.Exit(2)
		}
		res, err := run(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", id, err)
			failed++
			continue
		}
		fmt.Printf("=== %s ===\n%s\n", id, strings.TrimRight(res.Text, "\n"))
		fmt.Println()
	}
	if failed > 0 {
		os.Exit(1)
	}
}

// Command accelsim regenerates the AccelFlow paper's tables and
// figures from the simulator.
//
// Usage:
//
//	accelsim -exp fig11            # one experiment
//	accelsim -exp all              # everything, fanned out over cores
//	accelsim -exp all -parallel 1  # serial baseline (same results)
//	accelsim -list                 # show experiment IDs
//	accelsim -exp fig14 -n 800     # smaller request budget
//	accelsim -exp fig11 -quick     # CI-sized run
//	accelsim -trace t.json         # observed SocialNetwork run, Chrome trace
//	accelsim -report r.json        # same run, structured JSON report
//	accelsim -tune p99 -quick      # closed-loop design-space search
//
// Results are bit-identical at any -parallel value: every simulation
// cell draws from an RNG stream derived from (seed, cell key), so the
// worker count only changes wall clock, never Values. The same holds
// for -shards, which routes each cell's simulation through the sharded
// execution path (see internal/sim.Sharded): any shard count produces
// the same bytes as the serial kernel.
//
// The -tune mode searches a bounded design space (chiplet plan, PE
// provisioning, policy, queue depths, TCP timeout — set via the
// -tune* space flags) for the configuration minimizing the given
// objective (p99, energy, or costperf), printing one NDJSON line per
// generation on stdout. -tunestate FILE snapshots the search after
// every generation (atomically); -tuneresume continues from that
// snapshot with a byte-identical trajectory to an uninterrupted run.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"time"

	"accelflow/internal/control"
	"accelflow/internal/experiments"
	"accelflow/internal/sim"
	"accelflow/internal/tune"
	"accelflow/internal/workload"
)

// cliArgs collects every parsed flag so validation is a pure,
// table-testable function instead of inline fatalfs.
type cliArgs struct {
	exp       string
	n         int
	seed      int64
	quick     bool
	parallel  int
	faultRate float64
	faultLoss float64
	check     bool
	shards    int

	// Dynamic-control knobs for the observed run (-trace/-report).
	// ctlTarget enables the autoscaler; the shed/retry knobs enable
	// independently, so -ctlshedq works without an autoscaler.
	ctlTarget string
	ctlUp     float64
	ctlDown   float64
	ctlSLO    float64
	ctlMax    int
	ctlShedQ  int
	ctlShedP  float64
	ctlRetry  int

	tune         string // objective; "" disables the mode
	tuneStrategy string
	tuneGens     int
	tunePatience int
	tuneSLO      float64
	tuneLoad     float64
	tuneState    string
	tuneResume   bool
	tuneOut      string
	tuneChiplets string
	tunePEs      string
	tunePolicies string
	tuneQueues   string
	tuneTimeouts string
}

// validate rejects bad flag combinations up front: a bad value should
// fail fast (exit 2) with a clear message, not surface as a late panic
// or a silent zero run. Returns the first violation.
func (a cliArgs) validate() error {
	if a.faultRate < 0 {
		return fmt.Errorf("-faults must be non-negative, got %v", a.faultRate)
	}
	if a.faultLoss < 0 || a.faultLoss > 1 {
		return fmt.Errorf("-faultloss must be in [0,1], got %v", a.faultLoss)
	}
	if a.n <= 0 {
		return fmt.Errorf("-n must be positive, got %d", a.n)
	}
	if a.parallel < 0 {
		return fmt.Errorf("-parallel must be non-negative, got %d", a.parallel)
	}
	if a.shards < 0 {
		return fmt.Errorf("-shards must be non-negative, got %d", a.shards)
	}
	if a.exp != "" && a.exp != "all" {
		if _, ok := experiments.Registry[a.exp]; !ok {
			return fmt.Errorf("unknown experiment %s\ntry -list", a.exp)
		}
	}
	if spec := a.controlSpec(); spec != nil {
		if a.tune != "" {
			return fmt.Errorf("-ctl* flags apply to the observed run (-trace/-report), not -tune")
		}
		if err := spec.Validate(); err != nil {
			return fmt.Errorf("-ctl*: %w", err)
		}
		if as := spec.Autoscale; as != nil && as.Target == control.TargetReplicas {
			return fmt.Errorf("-ctl %q needs a fleet; the observed run scales %q or %q",
				control.TargetReplicas, control.TargetPE, control.TargetCores)
		}
	}
	if a.tune == "" {
		// Tune-only flags require the mode, so a typo like -tuneresume
		// without -tune cannot silently run the wrong mode.
		if a.tuneResume || a.tuneState != "" || a.tuneOut != "" {
			return fmt.Errorf("-tunestate/-tuneresume/-tuneout require -tune <objective>")
		}
		return nil
	}
	if a.exp != "" {
		return fmt.Errorf("-tune and -exp are separate modes; run them separately")
	}
	if a.tuneResume && a.tuneState == "" {
		return fmt.Errorf("-tuneresume needs -tunestate FILE to resume from")
	}
	if a.tuneGens < 0 || a.tunePatience < 0 {
		return fmt.Errorf("-tunegens and -tunepatience must be non-negative, got %d/%d", a.tuneGens, a.tunePatience)
	}
	if a.tuneSLO < 0 {
		return fmt.Errorf("-tuneslo must be non-negative, got %v", a.tuneSLO)
	}
	if a.tuneLoad < 0 {
		return fmt.Errorf("-tuneload must be non-negative, got %v", a.tuneLoad)
	}
	p, err := a.tuneParams()
	if err != nil {
		return err
	}
	return p.Validate()
}

// controlSpec maps the -ctl* flags onto a control spec, or nil when
// every control knob is at its neutral value (no autoscale target, no
// shedding, no retry budget) — a nil spec keeps the observed run on
// the exact pre-control code path, byte-identical artifacts included.
func (a cliArgs) controlSpec() *control.Spec {
	if a.ctlTarget == "" && a.ctlShedQ == 0 && a.ctlShedP == 0 && a.ctlRetry == 0 {
		return nil
	}
	spec := &control.Spec{}
	if a.ctlTarget != "" {
		spec.Autoscale = &control.AutoscaleSpec{
			Target:   a.ctlTarget,
			UpUtil:   a.ctlUp,
			DownUtil: a.ctlDown,
			SLOUs:    a.ctlSLO,
			MaxAdd:   a.ctlMax,
		}
	}
	if a.ctlShedQ != 0 || a.ctlShedP != 0 {
		spec.Shed = &control.ShedSpec{Queue: a.ctlShedQ, Prob: a.ctlShedP}
	}
	if a.ctlRetry != 0 {
		spec.Retry = &control.RetrySpec{Budget: a.ctlRetry}
	}
	return spec
}

// tuneParams maps the flags onto search parameters. The space comes
// from the -tune* list flags; leaving them all empty selects
// tune.DefaultSpace (three dimensions around the paper's base design).
func (a cliArgs) tuneParams() (tune.Params, error) {
	space := tune.DefaultSpace()
	if a.tuneChiplets != "" || a.tunePEs != "" || a.tunePolicies != "" ||
		a.tuneQueues != "" || a.tuneTimeouts != "" {
		space = tune.SpaceSpec{Policies: splitList(a.tunePolicies)}
		var err error
		if space.Chiplets, err = parseInts("-tunechiplets", a.tuneChiplets); err != nil {
			return tune.Params{}, err
		}
		if space.PEs, err = parseInts("-tunepes", a.tunePEs); err != nil {
			return tune.Params{}, err
		}
		if space.QueueDepths, err = parseInts("-tunequeues", a.tuneQueues); err != nil {
			return tune.Params{}, err
		}
		if space.TCPTimeoutUs, err = parseFloats("-tunetimeouts", a.tuneTimeouts); err != nil {
			return tune.Params{}, err
		}
	}
	return tune.Params{
		Strategy:       a.tuneStrategy,
		Objective:      a.tune,
		Space:          space,
		Seed:           a.seed,
		Requests:       a.n,
		LoadScale:      a.tuneLoad,
		SLOUs:          a.tuneSLO,
		MaxGenerations: a.tuneGens,
		Patience:       a.tunePatience,
		Quick:          a.quick,
		Parallelism:    a.parallel,
		Shards:         a.shards,
		Check:          a.check,
	}, nil
}

func splitList(s string) []string {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}

func parseInts(flagName, s string) ([]int, error) {
	var out []int
	for _, p := range splitList(s) {
		v, err := strconv.Atoi(p)
		if err != nil {
			return nil, fmt.Errorf("%s: bad value %q (want comma-separated integers)", flagName, p)
		}
		out = append(out, v)
	}
	return out, nil
}

func parseFloats(flagName, s string) ([]float64, error) {
	var out []float64
	for _, p := range splitList(s) {
		v, err := strconv.ParseFloat(p, 64)
		if err != nil {
			return nil, fmt.Errorf("%s: bad value %q (want comma-separated numbers)", flagName, p)
		}
		out = append(out, v)
	}
	return out, nil
}

func main() {
	var a cliArgs
	var (
		list       = flag.Bool("list", false, "list experiment IDs")
		timing     = flag.Bool("time", true, "report per-experiment and total wall clock on stderr")
		tracePath  = flag.String("trace", "", "run an observed SocialNetwork mix and write a Chrome trace-event JSON to this file")
		reportPath = flag.String("report", "", "run an observed SocialNetwork mix and write a structured JSON report to this file")
		faultWin   = flag.Duration("faultwindow", 200*time.Microsecond, "mean fault-window duration for -faults")
	)
	flag.StringVar(&a.exp, "exp", "", "experiment ID (see -list), or 'all'")
	flag.IntVar(&a.n, "n", 2500, "request budget per simulation")
	flag.Int64Var(&a.seed, "seed", 1, "RNG seed")
	flag.BoolVar(&a.quick, "quick", false, "shrink workloads for a fast pass")
	flag.IntVar(&a.parallel, "parallel", 0, "sweep worker count (0 = GOMAXPROCS); results are identical at any value")
	flag.Float64Var(&a.faultRate, "faults", 0, "fault-window arrival rate in windows/s for the observed run (0 = off)")
	flag.Float64Var(&a.faultLoss, "faultloss", 0, "remote-response loss rate override in [0,1] for the observed run")
	flag.BoolVar(&a.check, "check", false, "run with runtime invariant checking (same results; violations fail the run)")
	flag.IntVar(&a.shards, "shards", 0, "intra-run shard count for the sharded execution path (0/1 = serial kernel); results are identical at any value")
	flag.StringVar(&a.ctlTarget, "ctl", "", "attach the autoscaler to the observed run, scaling this pool: pe or cores")
	flag.Float64Var(&a.ctlUp, "ctlup", 0.75, "scale up when windowed utilization exceeds this (requires -ctl)")
	flag.Float64Var(&a.ctlDown, "ctldown", 0.25, "scale down when windowed utilization falls below this (requires -ctl)")
	flag.Float64Var(&a.ctlSLO, "ctlslo", 0, "P99 SLO target in microseconds the autoscaler also reacts to (0 = utilization only)")
	flag.IntVar(&a.ctlMax, "ctlmax", 8, "autoscaler ceiling: servers it may add over the base pool")
	flag.IntVar(&a.ctlShedQ, "ctlshedq", 0, "shed observed-run arrivals when this many requests are outstanding (0 = off)")
	flag.Float64Var(&a.ctlShedP, "ctlshedp", 0, "shed observed-run arrivals with this probability in [0,1] (0 = off)")
	flag.IntVar(&a.ctlRetry, "ctlretry", 0, "per-tenant retry budget for timed-out observed-run requests (0 = off)")
	flag.StringVar(&a.tune, "tune", "", "run a design-space search for this objective: p99, energy, or costperf")
	flag.StringVar(&a.tuneStrategy, "tunestrategy", "", "search strategy: hill (default) or anneal")
	flag.IntVar(&a.tuneGens, "tunegens", 0, "max search generations (0 = default)")
	flag.IntVar(&a.tunePatience, "tunepatience", 0, "stop after this many stagnant generations (0 = default)")
	flag.Float64Var(&a.tuneSLO, "tuneslo", 0, "p99 SLO target in microseconds for the p99 objective (0 = default)")
	flag.Float64Var(&a.tuneLoad, "tuneload", 0, "workload load scale for evaluations (0 = 1.0)")
	flag.StringVar(&a.tuneState, "tunestate", "", "snapshot the search state to this file after every generation (atomic rename)")
	flag.BoolVar(&a.tuneResume, "tuneresume", false, "resume the search from -tunestate instead of starting fresh")
	flag.StringVar(&a.tuneOut, "tuneout", "", "write the final search result JSON to this file")
	flag.StringVar(&a.tuneChiplets, "tunechiplets", "", "comma-separated chiplet plans to search (first = start)")
	flag.StringVar(&a.tunePEs, "tunepes", "", "comma-separated PEs-per-accelerator levels to search")
	flag.StringVar(&a.tunePolicies, "tunepolicies", "", "comma-separated policies to search (accelflow,relief,cohort,cpucentric,nonacc)")
	flag.StringVar(&a.tuneQueues, "tunequeues", "", "comma-separated queue depths to search")
	flag.StringVar(&a.tuneTimeouts, "tunetimeouts", "", "comma-separated TCP timeouts (us) to search")
	flag.Parse()

	if err := a.validate(); err != nil {
		fatalf("%v", err)
	}

	if a.tune != "" {
		if err := runTune(a); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	if *tracePath != "" || *reportPath != "" {
		if err := observedRun(*tracePath, *reportPath, a, *faultWin); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if a.exp == "" {
			return
		}
	}

	if *list || a.exp == "" {
		fmt.Println("experiments:")
		for _, id := range experiments.IDs() {
			fmt.Printf("  %s\n", id)
		}
		if a.exp == "" {
			fmt.Println("\nrun with -exp <id> or -exp all")
		}
		return
	}

	opts := experiments.Options{Requests: a.n, Seed: a.seed, Quick: a.quick, Parallelism: a.parallel, Check: a.check, Shards: a.shards}
	ids := []string{a.exp}
	if a.exp == "all" {
		ids = experiments.IDs()
	}
	start := time.Now()
	outcomes := experiments.RunMany(ids, opts)
	total := time.Since(start)
	failed := 0
	for _, out := range outcomes {
		if out.Err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", out.ID, out.Err)
			if strings.HasPrefix(out.Err.Error(), "unknown experiment") {
				fmt.Fprintln(os.Stderr, "try -list")
				os.Exit(2)
			}
			failed++
			continue
		}
		fmt.Printf("=== %s ===\n%s\n", out.ID, strings.TrimRight(out.Res.Text(), "\n"))
		fmt.Println()
		if *timing {
			fmt.Fprintf(os.Stderr, "[%s: %v]\n", out.ID, out.Elapsed.Round(time.Millisecond))
		}
	}
	if *timing {
		fmt.Fprintf(os.Stderr, "[total: %v wall clock, %d experiments, parallelism %d]\n",
			total.Round(time.Millisecond), len(ids), effectiveParallelism(a.parallel))
	}
	if failed > 0 {
		os.Exit(1)
	}
}

// runTune drives the closed-loop search: one NDJSON line per
// generation on stdout ({"event":"generation",...}), a final
// {"event":"result",...} line, optional atomic state snapshots for
// kill/resume, and an optional result-JSON file.
func runTune(a cliArgs) error {
	p, err := a.tuneParams()
	if err != nil {
		return err
	}
	var st *tune.SearchState
	if a.tuneResume {
		data, err := os.ReadFile(a.tuneState)
		if err != nil {
			return fmt.Errorf("-tuneresume: %w", err)
		}
		if st, err = tune.LoadState(data, p); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "[tune: resuming from %s at generation %d]\n", a.tuneState, st.Gen)
	}

	enc := json.NewEncoder(os.Stdout)
	var hookErr error
	h := tune.Hooks{
		OnGeneration: func(pr tune.Progress, state []byte) {
			line := struct {
				Event string `json:"event"`
				tune.Progress
			}{"generation", pr}
			if err := enc.Encode(line); err != nil && hookErr == nil {
				hookErr = err
			}
			if a.tuneState != "" {
				if err := writeFileAtomic(a.tuneState, state); err != nil && hookErr == nil {
					hookErr = err
				}
			}
		},
	}
	res, err := tune.Run(context.Background(), p, st, h)
	if err != nil {
		return err
	}
	if hookErr != nil {
		return hookErr
	}
	final := struct {
		Event string `json:"event"`
		*tune.Result
	}{"result", res}
	if err := enc.Encode(final); err != nil {
		return err
	}
	if a.tuneOut != "" {
		out, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			return err
		}
		if err := writeFileAtomic(a.tuneOut, append(out, '\n')); err != nil {
			return err
		}
	}
	fmt.Fprintf(os.Stderr, "[tune: %s/%s best %s score=%.3f after %d generations, %d evals (%d cached), converged=%t]\n",
		res.Strategy, res.Objective, res.BestKey, res.BestScore,
		res.Generations, res.Evals, res.CacheHits, res.Converged)
	return nil
}

// writeFileAtomic writes via a temp file + rename so a kill mid-write
// never leaves a torn snapshot — the resume contract depends on it.
func writeFileAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), path)
}

func effectiveParallelism(p int) int {
	if p > 0 {
		return p
	}
	return runtime.GOMAXPROCS(0)
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(2)
}

// observedRun drives one AccelFlow SocialNetwork mix with the span and
// utilization observer attached and writes the requested exports.
// A nonzero faultRate (or faultLoss) attaches the deterministic fault
// injector, so Perfetto traces show the fault windows as root spans.
// The spec comes from workload.BuildObserved — the same builder the
// accelsimd daemon uses — so a job submitted over HTTP with the same
// parameters yields byte-identical artifacts.
func observedRun(tracePath, reportPath string, a cliArgs, faultWin time.Duration) error {
	spec, sink, err := workload.BuildObserved(workload.ObservedParams{
		Seed:        a.seed,
		Requests:    a.n,
		Quick:       a.quick,
		FaultRate:   a.faultRate,
		FaultWindow: sim.FromNanos(float64(faultWin.Nanoseconds())),
		FaultLoss:   a.faultLoss,
		Control:     a.controlSpec(),
		Check:       a.check,
		Shards:      a.shards,
	})
	if err != nil {
		return err
	}
	res, err := spec.Run()
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "[observed run: %d requests, %d spans, %v simulated]\n",
		res.Completed, sink.SpanCount(), res.Elapsed)
	if inj := res.Engine.Faults; inj != nil {
		fmt.Fprintf(os.Stderr, "[faults: %d windows applied, %d timeouts, %d fallbacks]\n",
			inj.Stats.Windows, res.TimedOut, res.FellBack)
	}
	if res.Control != nil {
		fmt.Fprintf(os.Stderr, "[control: %d ticks, +%d/-%d scale actions, %d shed, %d retries]\n",
			res.Control.Ticks, res.Control.ScaleUps, res.Control.ScaleDowns, res.Shed, res.Retries)
	}
	if tracePath != "" {
		if err := writeFile(tracePath, sink.WriteChromeTrace); err != nil {
			return err
		}
		fmt.Printf("wrote Chrome trace (%d spans) to %s\n", sink.SpanCount(), tracePath)
	}
	if reportPath != "" {
		if err := writeFile(reportPath, sink.WriteReport); err != nil {
			return err
		}
		fmt.Printf("wrote observability report to %s\n", reportPath)
	}
	return nil
}

func writeFile(path string, write func(w io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Command accelsim regenerates the AccelFlow paper's tables and
// figures from the simulator.
//
// Usage:
//
//	accelsim -exp fig11            # one experiment
//	accelsim -exp all              # everything, fanned out over cores
//	accelsim -exp all -parallel 1  # serial baseline (same results)
//	accelsim -list                 # show experiment IDs
//	accelsim -exp fig14 -n 800     # smaller request budget
//	accelsim -exp fig11 -quick     # CI-sized run
//	accelsim -trace t.json         # observed SocialNetwork run, Chrome trace
//	accelsim -report r.json        # same run, structured JSON report
//
// Results are bit-identical at any -parallel value: every simulation
// cell draws from an RNG stream derived from (seed, cell key), so the
// worker count only changes wall clock, never Values. The same holds
// for -shards, which routes each cell's simulation through the sharded
// execution path (see internal/sim.Sharded): any shard count produces
// the same bytes as the serial kernel.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"
	"time"

	"accelflow/internal/experiments"
	"accelflow/internal/sim"
	"accelflow/internal/workload"
)

func main() {
	var (
		exp        = flag.String("exp", "", "experiment ID (see -list), or 'all'")
		n          = flag.Int("n", 2500, "request budget per simulation")
		seed       = flag.Int64("seed", 1, "RNG seed")
		quick      = flag.Bool("quick", false, "shrink workloads for a fast pass")
		parallel   = flag.Int("parallel", 0, "sweep worker count (0 = GOMAXPROCS); results are identical at any value")
		list       = flag.Bool("list", false, "list experiment IDs")
		timing     = flag.Bool("time", true, "report per-experiment and total wall clock on stderr")
		tracePath  = flag.String("trace", "", "run an observed SocialNetwork mix and write a Chrome trace-event JSON to this file")
		reportPath = flag.String("report", "", "run an observed SocialNetwork mix and write a structured JSON report to this file")
		faultRate  = flag.Float64("faults", 0, "fault-window arrival rate in windows/s for the observed run (0 = off)")
		faultWin   = flag.Duration("faultwindow", 200*time.Microsecond, "mean fault-window duration for -faults")
		faultLoss  = flag.Float64("faultloss", 0, "remote-response loss rate override in [0,1] for the observed run")
		check      = flag.Bool("check", false, "run with runtime invariant checking (same results; violations fail the run)")
		shards     = flag.Int("shards", 0, "intra-run shard count for the sharded execution path (0/1 = serial kernel); results are identical at any value")
	)
	flag.Parse()

	// Validate flags up front: a bad value should fail fast with a
	// clear message, not surface as a late panic or a silent zero run.
	if *faultRate < 0 {
		fatalf("-faults must be non-negative, got %v", *faultRate)
	}
	if *faultLoss < 0 || *faultLoss > 1 {
		fatalf("-faultloss must be in [0,1], got %v", *faultLoss)
	}
	if *n <= 0 {
		fatalf("-n must be positive, got %d", *n)
	}
	if *shards < 0 {
		fatalf("-shards must be non-negative, got %d", *shards)
	}
	if *exp != "" && *exp != "all" {
		if _, ok := experiments.Registry[*exp]; !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %s\ntry -list\n", *exp)
			os.Exit(2)
		}
	}

	if *tracePath != "" || *reportPath != "" {
		if err := observedRun(*tracePath, *reportPath, *seed, *n, *quick, *faultRate, *faultWin, *faultLoss, *check, *shards); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if *exp == "" {
			return
		}
	}

	if *list || *exp == "" {
		fmt.Println("experiments:")
		for _, id := range experiments.IDs() {
			fmt.Printf("  %s\n", id)
		}
		if *exp == "" {
			fmt.Println("\nrun with -exp <id> or -exp all")
		}
		return
	}

	opts := experiments.Options{Requests: *n, Seed: *seed, Quick: *quick, Parallelism: *parallel, Check: *check, Shards: *shards}
	ids := []string{*exp}
	if *exp == "all" {
		ids = experiments.IDs()
	}
	start := time.Now()
	outcomes := experiments.RunMany(ids, opts)
	total := time.Since(start)
	failed := 0
	for _, out := range outcomes {
		if out.Err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", out.ID, out.Err)
			if strings.HasPrefix(out.Err.Error(), "unknown experiment") {
				fmt.Fprintln(os.Stderr, "try -list")
				os.Exit(2)
			}
			failed++
			continue
		}
		fmt.Printf("=== %s ===\n%s\n", out.ID, strings.TrimRight(out.Res.Text(), "\n"))
		fmt.Println()
		if *timing {
			fmt.Fprintf(os.Stderr, "[%s: %v]\n", out.ID, out.Elapsed.Round(time.Millisecond))
		}
	}
	if *timing {
		fmt.Fprintf(os.Stderr, "[total: %v wall clock, %d experiments, parallelism %d]\n",
			total.Round(time.Millisecond), len(ids), effectiveParallelism(*parallel))
	}
	if failed > 0 {
		os.Exit(1)
	}
}

func effectiveParallelism(p int) int {
	if p > 0 {
		return p
	}
	return runtime.GOMAXPROCS(0)
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(2)
}

// observedRun drives one AccelFlow SocialNetwork mix with the span and
// utilization observer attached and writes the requested exports.
// A nonzero faultRate (or faultLoss) attaches the deterministic fault
// injector, so Perfetto traces show the fault windows as root spans.
// The spec comes from workload.BuildObserved — the same builder the
// accelsimd daemon uses — so a job submitted over HTTP with the same
// parameters yields byte-identical artifacts.
func observedRun(tracePath, reportPath string, seed int64, n int, quick bool, faultRate float64, faultWin time.Duration, faultLoss float64, check bool, shards int) error {
	spec, sink, err := workload.BuildObserved(workload.ObservedParams{
		Seed:        seed,
		Requests:    n,
		Quick:       quick,
		FaultRate:   faultRate,
		FaultWindow: sim.FromNanos(float64(faultWin.Nanoseconds())),
		FaultLoss:   faultLoss,
		Check:       check,
		Shards:      shards,
	})
	if err != nil {
		return err
	}
	res, err := spec.Run()
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "[observed run: %d requests, %d spans, %v simulated]\n",
		res.Completed, sink.SpanCount(), res.Elapsed)
	if inj := res.Engine.Faults; inj != nil {
		fmt.Fprintf(os.Stderr, "[faults: %d windows applied, %d timeouts, %d fallbacks]\n",
			inj.Stats.Windows, res.TimedOut, res.FellBack)
	}
	if tracePath != "" {
		if err := writeFile(tracePath, sink.WriteChromeTrace); err != nil {
			return err
		}
		fmt.Printf("wrote Chrome trace (%d spans) to %s\n", sink.SpanCount(), tracePath)
	}
	if reportPath != "" {
		if err := writeFile(reportPath, sink.WriteReport); err != nil {
			return err
		}
		fmt.Printf("wrote observability report to %s\n", reportPath)
	}
	return nil
}

func writeFile(path string, write func(w io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Command accelsim regenerates the AccelFlow paper's tables and
// figures from the simulator.
//
// Usage:
//
//	accelsim -exp fig11            # one experiment
//	accelsim -exp all              # everything, fanned out over cores
//	accelsim -exp all -parallel 1  # serial baseline (same results)
//	accelsim -list                 # show experiment IDs
//	accelsim -exp fig14 -n 800     # smaller request budget
//	accelsim -exp fig11 -quick     # CI-sized run
//
// Results are bit-identical at any -parallel value: every simulation
// cell draws from an RNG stream derived from (seed, cell key), so the
// worker count only changes wall clock, never Values.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"accelflow/internal/experiments"
)

func main() {
	var (
		exp      = flag.String("exp", "", "experiment ID (see -list), or 'all'")
		n        = flag.Int("n", 2500, "request budget per simulation")
		seed     = flag.Int64("seed", 1, "RNG seed")
		quick    = flag.Bool("quick", false, "shrink workloads for a fast pass")
		parallel = flag.Int("parallel", 0, "sweep worker count (0 = GOMAXPROCS); results are identical at any value")
		list     = flag.Bool("list", false, "list experiment IDs")
		timing   = flag.Bool("time", true, "report per-experiment and total wall clock on stderr")
	)
	flag.Parse()

	if *list || *exp == "" {
		fmt.Println("experiments:")
		for _, id := range experiments.IDs() {
			fmt.Printf("  %s\n", id)
		}
		if *exp == "" {
			fmt.Println("\nrun with -exp <id> or -exp all")
		}
		return
	}

	opts := experiments.Options{Requests: *n, Seed: *seed, Quick: *quick, Parallelism: *parallel}
	ids := []string{*exp}
	if *exp == "all" {
		ids = experiments.IDs()
	}
	start := time.Now()
	outcomes := experiments.RunMany(ids, opts)
	total := time.Since(start)
	failed := 0
	for _, out := range outcomes {
		if out.Err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", out.ID, out.Err)
			if strings.HasPrefix(out.Err.Error(), "unknown experiment") {
				fmt.Fprintln(os.Stderr, "try -list")
				os.Exit(2)
			}
			failed++
			continue
		}
		fmt.Printf("=== %s ===\n%s\n", out.ID, strings.TrimRight(out.Res.Text, "\n"))
		fmt.Println()
		if *timing {
			fmt.Fprintf(os.Stderr, "[%s: %v]\n", out.ID, out.Elapsed.Round(time.Millisecond))
		}
	}
	if *timing {
		fmt.Fprintf(os.Stderr, "[total: %v wall clock, %d experiments, parallelism %d]\n",
			total.Round(time.Millisecond), len(ids), effectiveParallelism(*parallel))
	}
	if failed > 0 {
		os.Exit(1)
	}
}

func effectiveParallelism(p int) int {
	if p > 0 {
		return p
	}
	return runtime.GOMAXPROCS(0)
}

package main

import (
	"strings"
	"testing"
	"time"
)

func goodDaemonArgs() daemonArgs {
	return daemonArgs{
		addr:         ":8080",
		workers:      2,
		queue:        8,
		retryAfter:   time.Second,
		drainTimeout: 2 * time.Minute,
		cacheSize:    512,
		tenantBurst:  8,
		heartbeat:    15 * time.Second,
	}
}

// TestDaemonValidateFlags pins the exit-2 upfront-validation contract
// for accelsimd: each bad value is rejected with a message naming the
// flag before the scheduler or listener exists.
func TestDaemonValidateFlags(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*daemonArgs)
		want string // error substring; "" = valid
	}{
		{"defaults", func(a *daemonArgs) {}, ""},
		{"cache disabled", func(a *daemonArgs) { a.cacheSize = 0 }, ""},
		{"cache sized", func(a *daemonArgs) { a.cacheSize = 64 }, ""},
		{"negative cache", func(a *daemonArgs) { a.cacheSize = -1 }, "-cache"},
		{"rate limiting on", func(a *daemonArgs) { a.tenantRate = 5 }, ""},
		{"negative tenantrate", func(a *daemonArgs) { a.tenantRate = -2 }, "-tenantrate"},
		{"zero tenantburst", func(a *daemonArgs) { a.tenantBurst = 0 }, "-tenantburst"},
		{"zero workers", func(a *daemonArgs) { a.workers = 0 }, "-workers"},
		{"negative workers", func(a *daemonArgs) { a.workers = -4 }, "-workers"},
		{"zero queue", func(a *daemonArgs) { a.queue = 0 }, "-queue"},
		{"empty addr", func(a *daemonArgs) { a.addr = "" }, "-addr"},
		{"negative retryafter", func(a *daemonArgs) { a.retryAfter = -time.Second }, "-retryafter"},
		{"negative draintimeout", func(a *daemonArgs) { a.drainTimeout = -time.Minute }, "-draintimeout"},
		{"heartbeats disabled", func(a *daemonArgs) { a.heartbeat = 0 }, ""},
		{"negative heartbeat", func(a *daemonArgs) { a.heartbeat = -time.Second }, "-heartbeat"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			a := goodDaemonArgs()
			tc.mut(&a)
			err := a.validate()
			if tc.want == "" {
				if err != nil {
					t.Fatalf("validate() = %v, want nil", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("validate() = %v, want substring %q", err, tc.want)
			}
		})
	}
}

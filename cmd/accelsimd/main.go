// Command accelsimd serves simulation jobs over HTTP: submit any
// registered experiment or an observed SocialNetwork run (with
// optional fault injection), stream per-cell progress as NDJSON, and
// download the resulting values and Chrome-trace/report artifacts.
//
// Usage:
//
//	accelsimd                          # listen on :8080, 2 workers, queue depth 8
//	accelsimd -addr :9000 -workers 4 -queue 16
//
//	curl -XPOST localhost:8080/v1/jobs -d '{"type":"experiment","experiment":"fig11","quick":true}'
//	curl localhost:8080/v1/jobs/job-1/progress        # NDJSON until done
//	curl localhost:8080/v1/jobs/job-1/values
//	curl -XPOST localhost:8080/v1/jobs -d '{"type":"observed","requests":600,"faultRate":2000}'
//	curl -o trace.json localhost:8080/v1/jobs/job-2/artifacts/trace
//
// Admission is bounded per tenant: a full tenant queue or exhausted
// token bucket (-tenantrate/-tenantburst) answers 429 with a
// Retry-After hint, and tenants dequeue via weighted-fair deficit
// round-robin so one tenant's batch backlog never starves another's
// interactive jobs. Determinism makes results cacheable forever, so
// repeated identical submissions are served byte-identically from a
// bounded content-addressed cache (-cache; "cached": true in the job
// view, stats on /v1/cache) and identical in-flight submissions
// coalesce into one run. SIGINT/SIGTERM drain gracefully — admission
// closes (503), running and queued jobs finish, then the process exits
// 0; jobs still running when -draintimeout expires are cancelled
// through their contexts. Results are deterministic: a job yields
// byte-identical values and artifacts to the same parameters run
// through cmd/accelsim, cached or not.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"accelflow/internal/serve"
)

// daemonArgs collects the parsed flags so validation is a pure,
// table-testable function; main turns its error into an exit-2 fatalf
// before any listener or scheduler exists.
type daemonArgs struct {
	addr         string
	workers      int
	queue        int
	retryAfter   time.Duration
	drainTimeout time.Duration
	cacheSize    int
	tenantRate   float64
	tenantBurst  int
	heartbeat    time.Duration
}

// validate rejects bad flag values up front with a message naming the
// flag, instead of letting them surface as a hung scheduler (zero
// workers), a panic, or silently unbounded admission.
func (a daemonArgs) validate() error {
	if a.addr == "" {
		return fmt.Errorf("-addr must not be empty")
	}
	if a.workers <= 0 {
		return fmt.Errorf("-workers must be positive, got %d", a.workers)
	}
	if a.queue <= 0 {
		return fmt.Errorf("-queue must be positive, got %d", a.queue)
	}
	if a.retryAfter < 0 {
		return fmt.Errorf("-retryafter must be non-negative, got %v", a.retryAfter)
	}
	if a.drainTimeout < 0 {
		return fmt.Errorf("-draintimeout must be non-negative, got %v", a.drainTimeout)
	}
	if a.cacheSize < 0 {
		return fmt.Errorf("-cache must be non-negative (0 disables caching), got %d", a.cacheSize)
	}
	if a.tenantRate < 0 {
		return fmt.Errorf("-tenantrate must be non-negative (0 disables rate limiting), got %v", a.tenantRate)
	}
	if a.tenantBurst <= 0 {
		return fmt.Errorf("-tenantburst must be positive, got %d", a.tenantBurst)
	}
	if a.heartbeat < 0 {
		return fmt.Errorf("-heartbeat must be non-negative (0 disables heartbeats), got %v", a.heartbeat)
	}
	return nil
}

func main() {
	var a daemonArgs
	flag.StringVar(&a.addr, "addr", ":8080", "listen address")
	flag.IntVar(&a.workers, "workers", 2, "concurrently running jobs")
	flag.IntVar(&a.queue, "queue", 8, "bounded admission queue depth (full queue -> 429)")
	flag.DurationVar(&a.retryAfter, "retryafter", time.Second, "Retry-After hint on 429/503 responses")
	flag.DurationVar(&a.drainTimeout, "draintimeout", 2*time.Minute, "graceful-drain budget on SIGTERM before running jobs are cancelled")
	check := flag.Bool("check", false, "run every job with runtime invariant checking (same results; violations fail the job)")
	flag.IntVar(&a.cacheSize, "cache", 512, "content-addressed result cache entries (jobs + sweep cells); 0 disables caching and coalescing")
	flag.Float64Var(&a.tenantRate, "tenantrate", 0, "per-tenant admission rate in jobs/sec (token bucket); 0 disables rate limiting")
	flag.IntVar(&a.tenantBurst, "tenantburst", 8, "per-tenant token-bucket burst capacity")
	flag.DurationVar(&a.heartbeat, "heartbeat", 15*time.Second, "progress-stream keep-alive interval; 0 disables heartbeats")
	flag.Parse()

	if err := a.validate(); err != nil {
		fmt.Fprintf(os.Stderr, "accelsimd: %v\n", err)
		os.Exit(2)
	}

	sched := serve.NewScheduler(serve.Config{
		Workers:      a.workers,
		QueueDepth:   a.queue,
		RetryAfter:   a.retryAfter,
		Check:        *check,
		CacheEntries: a.cacheSize,
		TenantRate:   a.tenantRate,
		TenantBurst:  a.tenantBurst,
	})
	api := serve.NewServer(sched)
	api.SetHeartbeat(a.heartbeat)
	srv := &http.Server{Handler: api.Handler()}

	ln, err := net.Listen("tcp", a.addr)
	if err != nil {
		log.Fatalf("accelsimd: listen: %v", err)
	}
	log.Printf("accelsimd: listening on %s (%d workers, queue depth %d)",
		ln.Addr(), sched.Config().Workers, sched.Config().QueueDepth)

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errc:
		log.Fatalf("accelsimd: serve: %v", err)
	case <-ctx.Done():
	}
	stop()

	// Graceful drain: close admission first so clients get 503 +
	// Retry-After, let admitted jobs run to completion, then stop the
	// HTTP server (progress streams end when their jobs do).
	log.Printf("accelsimd: draining (budget %v)", a.drainTimeout)
	dctx, cancel := context.WithTimeout(context.Background(), a.drainTimeout)
	defer cancel()
	if err := sched.Drain(dctx); err != nil {
		log.Printf("accelsimd: drain budget exceeded, running jobs cancelled: %v", err)
	}
	sctx, scancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer scancel()
	if err := srv.Shutdown(sctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("accelsimd: http shutdown: %v", err)
	}
	log.Printf("accelsimd: drained, exiting")
}

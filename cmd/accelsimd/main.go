// Command accelsimd serves simulation jobs over HTTP: submit any
// registered experiment or an observed SocialNetwork run (with
// optional fault injection), stream per-cell progress as NDJSON, and
// download the resulting values and Chrome-trace/report artifacts.
//
// Usage:
//
//	accelsimd                          # listen on :8080, 2 workers, queue depth 8
//	accelsimd -addr :9000 -workers 4 -queue 16
//
//	curl -XPOST localhost:8080/v1/jobs -d '{"type":"experiment","experiment":"fig11","quick":true}'
//	curl localhost:8080/v1/jobs/job-1/progress        # NDJSON until done
//	curl localhost:8080/v1/jobs/job-1/values
//	curl -XPOST localhost:8080/v1/jobs -d '{"type":"observed","requests":600,"faultRate":2000}'
//	curl -o trace.json localhost:8080/v1/jobs/job-2/artifacts/trace
//
// Admission is bounded per tenant: a full tenant queue or exhausted
// token bucket (-tenantrate/-tenantburst) answers 429 with a
// Retry-After hint, and tenants dequeue via weighted-fair deficit
// round-robin so one tenant's batch backlog never starves another's
// interactive jobs. Determinism makes results cacheable forever, so
// repeated identical submissions are served byte-identically from a
// bounded content-addressed cache (-cache; "cached": true in the job
// view, stats on /v1/cache) and identical in-flight submissions
// coalesce into one run. SIGINT/SIGTERM drain gracefully — admission
// closes (503), running and queued jobs finish, then the process exits
// 0; jobs still running when -draintimeout expires are cancelled
// through their contexts. Results are deterministic: a job yields
// byte-identical values and artifacts to the same parameters run
// through cmd/accelsim, cached or not.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"accelflow/internal/serve"
)

func main() {
	var (
		addr         = flag.String("addr", ":8080", "listen address")
		workers      = flag.Int("workers", 2, "concurrently running jobs")
		queue        = flag.Int("queue", 8, "bounded admission queue depth (full queue -> 429)")
		retryAfter   = flag.Duration("retryafter", time.Second, "Retry-After hint on 429/503 responses")
		drainTimeout = flag.Duration("draintimeout", 2*time.Minute, "graceful-drain budget on SIGTERM before running jobs are cancelled")
		check        = flag.Bool("check", false, "run every job with runtime invariant checking (same results; violations fail the job)")
		cacheSize    = flag.Int("cache", 512, "content-addressed result cache entries (jobs + sweep cells); 0 disables caching and coalescing")
		tenantRate   = flag.Float64("tenantrate", 0, "per-tenant admission rate in jobs/sec (token bucket); 0 disables rate limiting")
		tenantBurst  = flag.Int("tenantburst", 8, "per-tenant token-bucket burst capacity")
		heartbeat    = flag.Duration("heartbeat", 15*time.Second, "progress-stream keep-alive interval; 0 disables heartbeats")
	)
	flag.Parse()

	sched := serve.NewScheduler(serve.Config{
		Workers:      *workers,
		QueueDepth:   *queue,
		RetryAfter:   *retryAfter,
		Check:        *check,
		CacheEntries: *cacheSize,
		TenantRate:   *tenantRate,
		TenantBurst:  *tenantBurst,
	})
	api := serve.NewServer(sched)
	api.SetHeartbeat(*heartbeat)
	srv := &http.Server{Handler: api.Handler()}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("accelsimd: listen: %v", err)
	}
	log.Printf("accelsimd: listening on %s (%d workers, queue depth %d)",
		ln.Addr(), sched.Config().Workers, sched.Config().QueueDepth)

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errc:
		log.Fatalf("accelsimd: serve: %v", err)
	case <-ctx.Done():
	}
	stop()

	// Graceful drain: close admission first so clients get 503 +
	// Retry-After, let admitted jobs run to completion, then stop the
	// HTTP server (progress streams end when their jobs do).
	log.Printf("accelsimd: draining (budget %v)", *drainTimeout)
	dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := sched.Drain(dctx); err != nil {
		log.Printf("accelsimd: drain budget exceeded, running jobs cancelled: %v", err)
	}
	sctx, scancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer scancel()
	if err := srv.Shutdown(sctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("accelsimd: http shutdown: %v", err)
	}
	log.Printf("accelsimd: drained, exiting")
}

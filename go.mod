module accelflow

go 1.22

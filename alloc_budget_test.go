// Allocation-budget guards for the serial hot path. The budgets pin
// the allocations-per-request of a full obs-disabled run: generous
// enough to absorb runtime noise and minor drift, tight enough that
// reintroducing a per-event or per-invocation allocation (interface
// boxing in the kernel queue, per-pass dispatcher closures, per-span
// segment slices) blows through them immediately. The committed
// BENCH_<date>.json records the precise values these budgets bracket.
package main

import (
	"testing"

	"accelflow/internal/config"
	"accelflow/internal/engine"
	"accelflow/internal/services"
)

// TestRunAllocBudgetPerRequest runs the social-network workload with
// observability disabled — the configuration every sweep cell uses —
// and pins allocations per request.
//
// Trajectory: the PR 6 optimization pass moved this from ~636
// allocs/request to ~58 (see BENCH_2026-08-08.json). The budget of 120
// gives ~2x headroom; a regression to even a single allocation per
// kernel event would land around 85 events/request above the budget.
func TestRunAllocBudgetPerRequest(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run allocation measurement")
	}
	svcs := services.SocialNetwork()
	cfg := config.Default()
	pol := engine.AccelFlow()
	avg := testing.AllocsPerRun(3, func() {
		spec := benchRunSpec(svcs, cfg, pol)
		if _, err := spec.Run(); err != nil {
			t.Fatal(err)
		}
	})
	perRequest := avg / benchRunRequests
	t.Logf("obs-disabled run: %.1f allocs/request (%.0f per %d-request run)",
		perRequest, avg, benchRunRequests)
	if perRequest > 120 {
		t.Errorf("obs-disabled run allocates %.1f allocs/request, budget 120", perRequest)
	}
}

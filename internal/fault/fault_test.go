package fault

import (
	"testing"

	"accelflow/internal/accel"
	"accelflow/internal/atm"
	"accelflow/internal/config"
	"accelflow/internal/mem"
	"accelflow/internal/noc"
	"accelflow/internal/sim"
)

// testTargets builds a full component set the injector can act on.
func testTargets(t *testing.T, k *sim.Kernel) (Targets, *config.Config) {
	t.Helper()
	cfg := config.Default()
	net := noc.NewNetwork(k, cfg)
	memory := mem.NewMemory(k, cfg)
	tg := Targets{
		DMA:     accel.NewDMAPool(k, cfg, net, memory),
		Manager: sim.NewResource(k, "manager", 4, sim.FIFO),
		ATM:     atm.New(200 * sim.Nanosecond),
		Net:     net,
	}
	for _, kd := range config.AllAccelKinds() {
		tg.Accels[kd] = accel.New(k, cfg, kd, noc.Node{Chiplet: 1}, sim.NewRNG(int64(kd)+11), sim.FIFO)
	}
	return tg, cfg
}

// allMechanisms enables every window type so picks exercise each path.
func allMechanisms(rate float64) Spec {
	return Spec{
		Rate:          rate,
		MeanWindow:    50 * sim.Microsecond,
		Horizon:       20 * sim.Millisecond,
		PEDegradeFrac: 0.5,
		PEFail:        true,
		ADMARemove:    2,
		ManagerStall:  true,
		ATMStall:      500 * sim.Nanosecond,
		NoCInflate:    4,
	}
}

func TestZeroRateSchedulesNothing(t *testing.T) {
	k := sim.NewKernel()
	tg, _ := testTargets(t, k)
	base := k.Pending()
	in := New(allMechanisms(0), 42)
	in.Attach(k, tg)
	if got := k.Pending(); got != base {
		t.Errorf("rate-0 Attach scheduled events: pending %d -> %d", base, got)
	}
	k.Run()
	if in.Stats != (Stats{}) {
		t.Errorf("rate-0 run recorded stats: %+v", in.Stats)
	}
}

func TestNoMechanismsSchedulesNothing(t *testing.T) {
	k := sim.NewKernel()
	tg, _ := testTargets(t, k)
	base := k.Pending()
	// Positive rate but nothing enabled: still a no-op.
	in := New(Spec{Rate: 1e6}, 42)
	in.Attach(k, tg)
	if got := k.Pending(); got != base {
		t.Errorf("no-mechanism Attach scheduled events: pending %d -> %d", base, got)
	}
}

func TestWindowsApplyAndRevert(t *testing.T) {
	k := sim.NewKernel()
	tg, cfg := testTargets(t, k)
	in := New(allMechanisms(50000), 42) // ~1000 windows over 20ms
	in.Attach(k, tg)

	// Snapshot the healthy state, watch for degradation mid-run, and
	// verify full restoration after the last window closes.
	basePEs := tg.Accels[config.TCP].PEs.Servers
	baseDMA := tg.DMA.Engines()
	sawChange := false
	k.Every(10*sim.Microsecond, func() {
		if in.Active() > 0 {
			sawChange = true
		}
	})
	k.Run()

	if in.Stats.Windows == 0 {
		t.Fatal("no fault windows fired")
	}
	if !sawChange {
		t.Error("sampler never observed an open window")
	}
	if in.Active() != 0 {
		t.Errorf("windows left open at end of run: %d", in.Active())
	}
	perMech := in.Stats.PEDegrades + in.Stats.PEFails + in.Stats.ADMARemovals +
		in.Stats.ManagerStalls + in.Stats.ATMStalls + in.Stats.NoCInflations
	if perMech != in.Stats.Windows {
		t.Errorf("per-mechanism counts %d != total windows %d", perMech, in.Stats.Windows)
	}
	// Everything must be back to the healthy configuration.
	for _, kd := range config.AllAccelKinds() {
		if tg.Accels[kd].PEs.Servers != basePEs {
			t.Errorf("%v PEs not restored: %d, want %d", kd, tg.Accels[kd].PEs.Servers, basePEs)
		}
		if tg.Accels[kd].Failed() {
			t.Errorf("%v still marked failed after run", kd)
		}
	}
	if tg.DMA.Engines() != baseDMA {
		t.Errorf("A-DMA engines not restored: %d, want %d", tg.DMA.Engines(), baseDMA)
	}
	if tg.Manager.Servers != 4 {
		t.Errorf("manager servers not restored: %d, want 4", tg.Manager.Servers)
	}
	if tg.ATM.Stall() != 0 {
		t.Errorf("ATM stall not cleared: %v", tg.ATM.Stall())
	}
	if tg.Net.LatencyScale() != 1 {
		t.Errorf("NoC latency scale not restored: %v", tg.Net.LatencyScale())
	}
	_ = cfg
}

func TestScheduleDeterministicPerSeed(t *testing.T) {
	run := func(seed int64) Stats {
		k := sim.NewKernel()
		tg, _ := testTargets(t, k)
		in := New(allMechanisms(20000), seed)
		in.Attach(k, tg)
		k.Run()
		return in.Stats
	}
	a, b := run(42), run(42)
	if a != b {
		t.Errorf("same seed gave different schedules: %+v vs %+v", a, b)
	}
	if c := run(43); c == a {
		t.Errorf("different seeds gave identical schedules: %+v", c)
	}
}

func TestAttachTwicePanics(t *testing.T) {
	k := sim.NewKernel()
	tg, _ := testTargets(t, k)
	in := New(Spec{}, 1)
	in.Attach(k, tg)
	defer func() {
		if recover() == nil {
			t.Error("second Attach did not panic")
		}
	}()
	in.Attach(k, tg)
}

func TestSpecValidate(t *testing.T) {
	cases := []struct {
		name string
		spec Spec
		ok   bool
	}{
		{"zero", Spec{}, true},
		{"full", allMechanisms(1000), true},
		{"negative rate", Spec{Rate: -1}, false},
		{"negative window", Spec{MeanWindow: -1}, false},
		{"degrade frac above one", Spec{PEDegradeFrac: 1.5}, false},
		{"negative adma", Spec{ADMARemove: -1}, false},
		{"negative atm stall", Spec{ATMStall: -1}, false},
		{"noc inflate below one", Spec{NoCInflate: 0.5}, false},
		{"loss rate above one", Spec{RemoteLossRate: 1.5}, false},
		{"loss rate one", Spec{RemoteLossRate: 1}, true},
		{"window exceeds horizon", Spec{MeanWindow: 2 * sim.Millisecond, Horizon: sim.Millisecond}, false},
		{"window equals horizon", Spec{MeanWindow: sim.Millisecond, Horizon: sim.Millisecond}, true},
		{"window without horizon", Spec{MeanWindow: sim.Millisecond}, true},
	}
	for _, c := range cases {
		if err := c.spec.Validate(); (err == nil) != c.ok {
			t.Errorf("%s: Validate() = %v, want ok=%v", c.name, err, c.ok)
		}
	}
}

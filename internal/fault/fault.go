// Package fault is the deterministic fault-injection layer: it
// schedules seed-derived fault windows on the simulation kernel that
// degrade or fail the PEs of an accelerator kind, remove A-DMA
// engines, stall the RELIEF manager or the ATM, inflate NoC head
// latency, or raise the remote-response loss rate beyond the baked-in
// 3.2e-6 (paper §VII-B.6).
//
// Determinism: the injector draws from RNG streams forked via
// sim.DeriveSeed(seed, "fault/<purpose>"), so the window schedule
// depends only on (seed, Spec) — never on engine RNG streams, worker
// count, or wall clock. With Rate == 0 the injector schedules zero
// kernel events and touches no RNG stream, so a run with the layer
// attached at rate 0 is bit-identical to a run without the layer.
package fault

import (
	"fmt"
	"math"

	"accelflow/internal/accel"
	"accelflow/internal/atm"
	"accelflow/internal/config"
	"accelflow/internal/noc"
	"accelflow/internal/obs"
	"accelflow/internal/sim"
)

// Spec configures the injector. The zero value disables everything.
type Spec struct {
	// Rate is the fault-window arrival rate in windows per simulated
	// second (Poisson). 0 disables window scheduling entirely.
	Rate float64
	// MeanWindow is the mean window duration (exponential draw).
	// Default 200us.
	MeanWindow sim.Time
	// Horizon bounds window scheduling to [0, Horizon). Default 100ms.
	Horizon sim.Time

	// PEDegradeFrac > 0 enables degrade windows: that fraction of one
	// (randomly chosen) accelerator kind's PEs goes offline.
	PEDegradeFrac float64
	// PEFail enables failure windows: one accelerator kind rejects all
	// new admissions and arms for the window.
	PEFail bool
	// ADMARemove > 0 enables A-DMA windows removing that many engines.
	ADMARemove int
	// ManagerStall enables windows that serialize the RELIEF manager
	// to a single engine.
	ManagerStall bool
	// ATMStall > 0 enables windows adding that much ATM read latency.
	ATMStall sim.Time
	// NoCInflate > 1 enables windows multiplying NoC head latency.
	NoCInflate float64

	// RemoteLossRate, when > 0, replaces the engine's baked-in 3.2e-6
	// remote-response loss rate for the whole run. It is not windowed:
	// loss is a property of the modeled far side, not of this package's
	// on-package fault windows.
	RemoteLossRate float64
}

// Validate rejects out-of-range parameters.
func (s Spec) Validate() error {
	switch {
	case s.Rate < 0:
		return fmt.Errorf("fault: Rate must be non-negative, got %v", s.Rate)
	case s.MeanWindow < 0 || s.Horizon < 0:
		return fmt.Errorf("fault: MeanWindow/Horizon must be non-negative")
	case s.PEDegradeFrac < 0 || s.PEDegradeFrac > 1:
		return fmt.Errorf("fault: PEDegradeFrac must be in [0,1], got %v", s.PEDegradeFrac)
	case s.ADMARemove < 0:
		return fmt.Errorf("fault: ADMARemove must be non-negative, got %d", s.ADMARemove)
	case s.ATMStall < 0:
		return fmt.Errorf("fault: ATMStall must be non-negative, got %v", s.ATMStall)
	case s.NoCInflate != 0 && s.NoCInflate < 1:
		return fmt.Errorf("fault: NoCInflate must be >= 1 (or 0 to disable), got %v", s.NoCInflate)
	case s.RemoteLossRate < 0 || s.RemoteLossRate > 1:
		return fmt.Errorf("fault: RemoteLossRate must be in [0,1], got %v", s.RemoteLossRate)
	case s.MeanWindow > 0 && s.Horizon > 0 && s.MeanWindow > s.Horizon:
		// A mean window longer than the injection horizon describes an
		// experiment whose typical fault outlives the whole campaign.
		return fmt.Errorf("fault: MeanWindow (%v) must not exceed Horizon (%v)", s.MeanWindow, s.Horizon)
	}
	return nil
}

// Stats counts applied windows per mechanism.
type Stats struct {
	Windows       uint64
	PEDegrades    uint64
	PEFails       uint64
	ADMARemovals  uint64
	ManagerStalls uint64
	ATMStalls     uint64
	NoCInflations uint64
}

// Targets are the components a window can act on. Sink may be nil.
type Targets struct {
	Accels  [config.NumAccelKinds]*accel.Accelerator
	DMA     *accel.DMAPool
	Manager *sim.Resource
	ATM     *atm.ATM
	Net     *noc.Network
	Sink    *obs.Sink
}

type mechanism int

const (
	mechPEDegrade mechanism = iota
	mechPEFail
	mechADMA
	mechManager
	mechATM
	mechNoC
)

// Injector owns one run's fault schedule. Build with New, hand to
// engine.Params.Faults (New calls Attach while assembling the server).
type Injector struct {
	Spec  Spec
	Stats Stats

	seed     int64
	attached bool

	// Reference counts make overlapping windows of the same mechanism
	// compose: the degraded state applies while any window is open and
	// reverts when the last one closes.
	degradeDepth [config.NumAccelKinds]int
	failDepth    [config.NumAccelKinds]int
	admaDepth    int
	mgrDepth     int
	atmDepth     int
	nocDepth     int

	basePEs  [config.NumAccelKinds]int
	baseADMA int
	baseMgr  int

	// peOffline is, per kind, the number of PEs a currently-open
	// degrade window is holding offline (0 when none). The autoscaler
	// reads it so a scale action taken mid-window lands at
	// (new level - offline), matching what the window's revert will
	// restore.
	peOffline [config.NumAccelKinds]int

	active int
}

// RebasePEs updates the remembered base PE count for one accelerator
// kind. The autoscaler calls it when it rescales a PE pool so that
// subsequent degrade windows compute their offline fraction from — and
// revert to — the controller's level instead of the boot-time count.
// Nil-safe so the runner can wire the actuator without branching on
// whether a fault layer is attached.
func (in *Injector) RebasePEs(kind config.AccelKind, n int) {
	if in == nil {
		return
	}
	in.basePEs[kind] = n
}

// PEOffline reports how many PEs of the given kind an open degrade
// window currently holds offline (0 when none, or on a nil injector).
func (in *Injector) PEOffline(kind config.AccelKind) int {
	if in == nil {
		return 0
	}
	return in.peOffline[kind]
}

// New builds an injector for the given spec and seed. Derive the seed
// from the run seed (e.g. sim.DeriveSeed(runSeed, "faults")) so fault
// streams never alias workload streams.
func New(spec Spec, seed int64) *Injector {
	return &Injector{Spec: spec, seed: seed}
}

// Active reports the number of currently open fault windows.
func (in *Injector) Active() int { return in.active }

// mechanisms lists the enabled window types in a fixed order (the
// order feeds the uniform pick, so it is part of the deterministic
// contract).
func (in *Injector) mechanisms() []mechanism {
	var m []mechanism
	s := in.Spec
	if s.PEDegradeFrac > 0 {
		m = append(m, mechPEDegrade)
	}
	if s.PEFail {
		m = append(m, mechPEFail)
	}
	if s.ADMARemove > 0 {
		m = append(m, mechADMA)
	}
	if s.ManagerStall {
		m = append(m, mechManager)
	}
	if s.ATMStall > 0 {
		m = append(m, mechATM)
	}
	if s.NoCInflate > 1 {
		m = append(m, mechNoC)
	}
	return m
}

// Attach pre-schedules every fault window on the kernel. Call once,
// after the targets exist and before the simulation runs. With
// Rate == 0 (or no enabled mechanisms) it schedules nothing and draws
// nothing, keeping the zero-fault run bit-identical to no injector.
func (in *Injector) Attach(k *sim.Kernel, tg Targets) {
	if in.attached {
		panic("fault: injector attached twice (one injector per run)")
	}
	in.attached = true
	mechs := in.mechanisms()
	if in.Spec.Rate <= 0 || len(mechs) == 0 {
		return
	}
	for kd := range tg.Accels {
		if tg.Accels[kd] != nil {
			in.basePEs[kd] = tg.Accels[kd].PEs.Servers
		}
	}
	if tg.DMA != nil {
		in.baseADMA = tg.DMA.Engines()
	}
	if tg.Manager != nil {
		in.baseMgr = tg.Manager.Servers
	}

	arrivals := sim.NewRNG(sim.DeriveSeed(in.seed, "fault/arrivals"))
	durs := sim.NewRNG(sim.DeriveSeed(in.seed, "fault/durations"))
	pick := sim.NewRNG(sim.DeriveSeed(in.seed, "fault/pick"))

	meanGap := sim.Time(float64(sim.Second) / in.Spec.Rate)
	mw := in.Spec.MeanWindow
	if mw <= 0 {
		mw = 200 * sim.Microsecond
	}
	hz := in.Spec.Horizon
	if hz <= 0 {
		hz = 100 * sim.Millisecond
	}
	t := sim.Time(0)
	for {
		gap := arrivals.Exp(meanGap)
		if gap <= 0 {
			gap = sim.Nanosecond
		}
		t += gap
		if t >= hz {
			return
		}
		dur := durs.Exp(mw)
		if dur < sim.Microsecond {
			dur = sim.Microsecond
		}
		m := mechs[pick.Intn(len(mechs))]
		kind := config.AccelKind(pick.Intn(int(config.NumAccelKinds)))
		in.scheduleWindow(k, tg, m, kind, t, dur)
	}
}

// scheduleWindow books the apply/revert pair for one window.
func (in *Injector) scheduleWindow(k *sim.Kernel, tg Targets, m mechanism, kind config.AccelKind, start, dur sim.Time) {
	var sp *obs.Span
	k.At(start, func() {
		in.Stats.Windows++
		in.active++
		sp = tg.Sink.BeginFault(in.windowName(m, kind))
		in.apply(tg, m, kind)
	})
	k.At(start+dur, func() {
		in.active--
		in.revert(tg, m, kind)
		sp.Seg(obs.SegFault, in.windowName(m, kind), start, k.Now())
		sp.End()
	})
}

func (in *Injector) windowName(m mechanism, kind config.AccelKind) string {
	switch m {
	case mechPEDegrade:
		return "fault/pe-degrade/" + kind.String()
	case mechPEFail:
		return "fault/pe-fail/" + kind.String()
	case mechADMA:
		return "fault/adma-remove"
	case mechManager:
		return "fault/manager-stall"
	case mechATM:
		return "fault/atm-stall"
	case mechNoC:
		return "fault/noc-inflate"
	}
	return "fault"
}

func (in *Injector) apply(tg Targets, m mechanism, kind config.AccelKind) {
	switch m {
	case mechPEDegrade:
		in.Stats.PEDegrades++
		in.degradeDepth[kind]++
		if in.degradeDepth[kind] == 1 && tg.Accels[kind] != nil {
			off := int(math.Ceil(in.Spec.PEDegradeFrac * float64(in.basePEs[kind])))
			in.peOffline[kind] = off
			tg.Accels[kind].PEs.SetServers(in.basePEs[kind] - off)
		}
	case mechPEFail:
		in.Stats.PEFails++
		in.failDepth[kind]++
		if in.failDepth[kind] == 1 && tg.Accels[kind] != nil {
			tg.Accels[kind].SetFailed(true)
		}
	case mechADMA:
		in.Stats.ADMARemovals++
		in.admaDepth++
		if in.admaDepth == 1 && tg.DMA != nil {
			tg.DMA.SetEngines(in.baseADMA - in.Spec.ADMARemove)
		}
	case mechManager:
		in.Stats.ManagerStalls++
		in.mgrDepth++
		if in.mgrDepth == 1 && tg.Manager != nil {
			tg.Manager.SetServers(1)
		}
	case mechATM:
		in.Stats.ATMStalls++
		in.atmDepth++
		if in.atmDepth == 1 && tg.ATM != nil {
			tg.ATM.SetStall(in.Spec.ATMStall)
		}
	case mechNoC:
		in.Stats.NoCInflations++
		in.nocDepth++
		if in.nocDepth == 1 && tg.Net != nil {
			tg.Net.SetLatencyScale(in.Spec.NoCInflate)
		}
	}
}

func (in *Injector) revert(tg Targets, m mechanism, kind config.AccelKind) {
	switch m {
	case mechPEDegrade:
		in.degradeDepth[kind]--
		if in.degradeDepth[kind] == 0 && tg.Accels[kind] != nil {
			in.peOffline[kind] = 0
			tg.Accels[kind].PEs.SetServers(in.basePEs[kind])
		}
	case mechPEFail:
		in.failDepth[kind]--
		if in.failDepth[kind] == 0 && tg.Accels[kind] != nil {
			tg.Accels[kind].SetFailed(false)
		}
	case mechADMA:
		in.admaDepth--
		if in.admaDepth == 0 && tg.DMA != nil {
			tg.DMA.SetEngines(in.baseADMA)
		}
	case mechManager:
		in.mgrDepth--
		if in.mgrDepth == 0 && tg.Manager != nil {
			tg.Manager.SetServers(in.baseMgr)
		}
	case mechATM:
		in.atmDepth--
		if in.atmDepth == 0 && tg.ATM != nil {
			tg.ATM.SetStall(0)
		}
	case mechNoC:
		in.nocDepth--
		if in.nocDepth == 0 && tg.Net != nil {
			tg.Net.SetLatencyScale(1)
		}
	}
}

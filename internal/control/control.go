// Package control is the dynamic-control subsystem: deterministic,
// seed-derived control loops that run inside the simulation clock and
// close the loop the fault layer opened — where fault windows resize
// resources on a fixed schedule, a controller reacts to what the run
// actually observes.
//
// Three policies compose under one Spec:
//
//   - Autoscale: a periodic decision tick samples utilization (and,
//     when an SLO is set, a sliding-window P99) and grows or shrinks a
//     capacity pool — PE pools, the core pool, or a fleet's active
//     replica set — through the same SetServers machinery fault
//     windows use, with hysteresis (separate up/down thresholds plus a
//     hold count), a cooldown between actions, and hard scale bounds.
//   - Shed: request-layer load shedding, probabilistic (a dedicated
//     DeriveSeed(seed, "control/shed") stream) and/or queue-depth
//     triggered on the controller-observed outstanding count.
//   - Retry: per-tenant retry budgets for timed-out requests with
//     exponentially growing, capped backoff.
//
// Determinism contract, mirroring internal/fault: every decision is a
// pure function of (Spec, seed, observed simulation state), so
// controlled runs are bit-identical at any sweep parallelism or shard
// count. A controller whose thresholds can never fire (UpUtil above 1,
// negative DownUtil, MaxAdd/MaxRemove zero) performs zero actions and
// draws from no RNG stream, and a ShedSpec with Prob 0 never creates
// its stream — so an effectively-disabled controller leaves
// latencies, counters, and recorders bit-identical to no controller
// at all (the decision tick can only extend the run's final timestamp
// by at most one interval, exactly like the obs utilization sampler).
package control

import (
	"fmt"
	"sort"

	"accelflow/internal/obs"
	"accelflow/internal/sim"
)

// Autoscale targets.
const (
	// TargetPE scales every accelerator kind's PE pool in lockstep
	// (each pool offset by the same server count from its configured
	// base, so per-kind PE mixes keep their shape).
	TargetPE = "pe"
	// TargetCores scales the CPU core pool.
	TargetCores = "cores"
	// TargetReplicas scales a fleet's active replica set at the
	// ingress: deactivated replicas stop receiving new work and drain;
	// reactivation is instant. Only valid on FleetSpec runs.
	TargetReplicas = "replicas"
)

// Spec configures one run's controller. All three sections are
// optional; a spec with none attached is inert. The spec is plain
// data and joins workload.RunSpec.Hash(), so controller config is
// part of a run's content identity.
type Spec struct {
	Autoscale *AutoscaleSpec `json:"autoscale,omitempty"`
	Shed      *ShedSpec      `json:"shed,omitempty"`
	Retry     *RetrySpec     `json:"retry,omitempty"`
}

// AutoscaleSpec configures the scaling loop.
type AutoscaleSpec struct {
	// Target is "pe", "cores", or (fleets only) "replicas".
	Target string `json:"target"`
	// Interval is the decision tick period. Default 50us.
	Interval sim.Time `json:"interval,omitempty"`
	// Window is the sliding signal window: utilization samples and
	// completion latencies older than Window are evicted before each
	// decision. A window shorter than the tick degenerates to the
	// newest sample only. Default 4*Interval.
	Window sim.Time `json:"window,omitempty"`
	// UpUtil scales up when the windowed utilization reaches it. Must
	// be positive; utilization is clamped to [0,1], so any value above
	// 1 can never fire (the "+inf" disable spelling — JSON cannot
	// carry real infinities).
	UpUtil float64 `json:"upUtil"`
	// DownUtil scales down when the windowed utilization falls to it
	// (and no SLO breach is in progress). Must be below UpUtil; a
	// negative value can never fire (the "-inf" spelling).
	DownUtil float64 `json:"downUtil"`
	// SLOUs, when positive, is the P99 target in microseconds: a
	// windowed P99 above it counts as a scale-up signal regardless of
	// utilization, and every breaching tick is recorded in Stats
	// (BreachTicks/LastBreach), which is what the recovery experiment
	// measures. 0 disables latency tracking entirely.
	SLOUs float64 `json:"sloUs,omitempty"`
	// Step is the number of servers (or replicas) moved per action.
	// Default 1.
	Step int `json:"step,omitempty"`
	// MaxAdd is the scale-up ceiling: at most this many servers above
	// each pool's base (for replicas, above the starting active set,
	// clamped to the built replica count). 0 forbids scaling up.
	MaxAdd int `json:"maxAdd"`
	// MaxRemove is the scale-down depth below base. Pools are floored
	// at one server regardless. 0 forbids scaling down.
	MaxRemove int `json:"maxRemove"`
	// Cooldown is the number of ticks after an action during which no
	// further action fires. Default 2.
	Cooldown int `json:"cooldown,omitempty"`
	// Hold is the hysteresis depth: a signal must persist for this
	// many consecutive ticks before acting. Default 1.
	Hold int `json:"hold,omitempty"`
	// ReplicaCap is, for the replicas target, the ingress-observed
	// outstanding count per active replica treated as utilization 1.0
	// (the ingress has no busy-time view of remote domains). Default 4.
	ReplicaCap int `json:"replicaCap,omitempty"`
}

// ShedSpec configures request-layer load shedding.
type ShedSpec struct {
	// Prob sheds each arrival with this probability, drawn from the
	// dedicated DeriveSeed(seed, "control/shed") stream. 0 disables
	// and never creates the stream.
	Prob float64 `json:"prob,omitempty"`
	// Queue sheds arrivals while the controller-observed outstanding
	// request count is at or above it. 0 disables.
	Queue int `json:"queue,omitempty"`
}

// RetrySpec configures per-tenant retry budgets for timed-out
// requests. Fleet runs do not support retries (the ingress would have
// to replay jobs across domains); RunSpec runs do.
type RetrySpec struct {
	// Budget is each tenant's total retry allowance for the run.
	Budget int `json:"budget"`
	// MaxAttempts caps attempts per request, first try included.
	// Default 2 (one retry).
	MaxAttempts int `json:"maxAttempts,omitempty"`
	// Backoff is the delay before the second attempt; it doubles per
	// further attempt. Default 20us.
	Backoff sim.Time `json:"backoff,omitempty"`
	// BackoffCap bounds the exponential growth. Default 8*Backoff.
	BackoffCap sim.Time `json:"backoffCap,omitempty"`
}

// Validate rejects out-of-range parameters with caller-facing
// messages; both binaries and the serving plane call it before
// admitting work.
func (s *Spec) Validate() error {
	if s == nil {
		return nil
	}
	if a := s.Autoscale; a != nil {
		switch a.Target {
		case TargetPE, TargetCores, TargetReplicas:
		default:
			return fmt.Errorf("control: autoscale target must be %q, %q, or %q, got %q",
				TargetPE, TargetCores, TargetReplicas, a.Target)
		}
		switch {
		case a.Interval < 0 || a.Window < 0:
			return fmt.Errorf("control: autoscale interval/window must be non-negative")
		case a.UpUtil <= 0:
			return fmt.Errorf("control: UpUtil must be positive (use a value above 1 to never scale up), got %v", a.UpUtil)
		case a.DownUtil >= a.UpUtil:
			return fmt.Errorf("control: DownUtil (%v) must be below UpUtil (%v)", a.DownUtil, a.UpUtil)
		case a.SLOUs < 0:
			return fmt.Errorf("control: SLOUs must be non-negative, got %v", a.SLOUs)
		case a.Step < 0 || a.MaxAdd < 0 || a.MaxRemove < 0 || a.Cooldown < 0 || a.Hold < 0 || a.ReplicaCap < 0:
			return fmt.Errorf("control: autoscale step/bounds/cooldown/hold must be non-negative")
		}
	}
	if sh := s.Shed; sh != nil {
		if sh.Prob < 0 || sh.Prob > 1 {
			return fmt.Errorf("control: shed probability must be in [0,1], got %v", sh.Prob)
		}
		if sh.Queue < 0 {
			return fmt.Errorf("control: shed queue depth must be non-negative, got %d", sh.Queue)
		}
	}
	if r := s.Retry; r != nil {
		switch {
		case r.Budget < 0:
			return fmt.Errorf("control: retry budget must be non-negative, got %d", r.Budget)
		case r.MaxAttempts < 0:
			return fmt.Errorf("control: retry maxAttempts must be non-negative, got %d", r.MaxAttempts)
		case r.Backoff < 0 || r.BackoffCap < 0:
			return fmt.Errorf("control: retry backoff/backoffCap must be non-negative")
		case r.Backoff > 0 && r.BackoffCap > 0 && r.BackoffCap < r.Backoff:
			return fmt.Errorf("control: retry backoffCap (%v) must be at least the base backoff (%v)", r.BackoffCap, r.Backoff)
		}
	}
	return nil
}

// Stats counts controller activity over one run.
type Stats struct {
	// Ticks is the number of executed decision ticks.
	Ticks uint64
	// ScaleUps/ScaleDowns count applied actions; Level is the final
	// offset from base in servers (or replicas).
	ScaleUps   uint64
	ScaleDowns uint64
	Level      int
	// ShedRandom/ShedQueue split shed requests by trigger.
	ShedRandom uint64
	ShedQueue  uint64
	// Retries counts granted retries; RetriesExhausted counts
	// timed-out completions denied a retry (budget or attempt cap).
	Retries          uint64
	RetriesExhausted uint64
	// BreachTicks counts ticks whose windowed P99 exceeded SLOUs;
	// LastBreach is the simulated time of the most recent such tick.
	BreachTicks uint64
	LastBreach  sim.Time
}

// Pool is one scalable capacity pool under the pe/cores targets. Set,
// when non-nil, replaces Res.SetServers as the actuator — the
// workload runner uses it to compose with an attached fault injector
// (rebasing the injector so degrade windows revert to the scaled
// level, and applying any currently-offline PEs to the new level).
type Pool struct {
	Res  *sim.Resource
	Base int
	Set  func(n int)
}

// Controller owns one run's control state. Build with New, wire the
// actuator with AttachPools or AttachActive, then drive the decision
// loop from the simulation clock (Periodic / Tick) and the request
// path (Shed / NoteSubmit / NoteDone / RetryAfter). Controllers are
// single-threaded like the kernel that feeds them and cover exactly
// one run.
type Controller struct {
	Spec  Spec
	Stats Stats

	seed int64
	sink *obs.Sink

	shedRNG *sim.RNG // created only when Shed.Prob > 0 (zero-RNG contract)

	outstanding int

	// Autoscale state.
	loop       loop
	pools      []Pool
	lastBusy   []sim.Time
	activeBase int // replicas target: starting active count
	applyFn    func(active int)
	levelSince sim.Time

	retryLeft map[int]int
}

// New builds a controller. Derive the seed from the run seed
// (sim.DeriveSeed(runSeed, "control")) so the shed stream never
// aliases workload or fault streams. The spec must already be
// validated.
func New(spec Spec, seed int64) *Controller {
	c := &Controller{Spec: spec, seed: seed}
	if a := spec.Autoscale; a != nil {
		c.loop = newLoop(*a)
	}
	if sh := spec.Shed; sh != nil && sh.Prob > 0 {
		c.shedRNG = sim.NewRNG(sim.DeriveSeed(seed, "control/shed"))
	}
	if r := spec.Retry; r != nil && r.Budget > 0 {
		c.retryLeft = map[int]int{}
	}
	return c
}

// BindObs attaches the observability sink (nil-safe) so scaling
// decisions export as root spans and the level/outstanding signals as
// sampled series.
func (c *Controller) BindObs(sink *obs.Sink) { c.sink = sink }

// AttachPools wires the pe/cores actuator: each decision applies
// base+offset (floored at one server by SetServers) to every pool.
func (c *Controller) AttachPools(pools []Pool) {
	c.pools = pools
	c.lastBusy = make([]sim.Time, len(pools))
	for i, p := range pools {
		c.lastBusy[i] = p.Res.BusyTime
	}
}

// AttachActive wires the replicas actuator: apply receives the new
// active replica count after each decision. base is the built replica
// count; the active set starts there and the scale-up ceiling is
// clamped to it (replicas cannot be created mid-run).
func (c *Controller) AttachActive(base int, apply func(active int)) {
	c.activeBase = base
	c.applyFn = apply
	if c.loop.spec.MaxAdd > 0 {
		// Active replicas can never exceed the built count.
		c.loop.spec.MaxAdd = 0
	}
}

// NeedsTick reports whether the controller has a decision loop to
// drive (an autoscale section with an attached actuator).
func (c *Controller) NeedsTick() bool {
	return c.Spec.Autoscale != nil && (c.pools != nil || c.applyFn != nil)
}

// Interval is the decision tick period (after defaulting).
func (c *Controller) Interval() sim.Time { return c.loop.spec.Interval }

// Periodic packages the decision loop as a sim.Hooks entry for
// single-kernel runs; the runner arms it after all arrivals are
// scheduled, exactly like the obs sampler, so Kernel.Every's
// self-termination ends the loop when the run ends.
func (c *Controller) Periodic(k *sim.Kernel) sim.Periodic {
	return sim.Periodic{Every: c.Interval(), Fn: func() { c.Tick(k.Now()) }}
}

// Outstanding is the controller-observed in-flight request count.
func (c *Controller) Outstanding() int { return c.outstanding }

// NoteSubmit records one request entering the system.
func (c *Controller) NoteSubmit() { c.outstanding++ }

// NoteDone records one request completing: the outstanding count
// drops and, when SLO tracking is on, the latency joins the sliding
// P99 window.
func (c *Controller) NoteDone(now sim.Time, latency sim.Time) {
	c.outstanding--
	if a := c.Spec.Autoscale; a != nil && a.SLOUs > 0 {
		c.loop.observeLatency(now, latency.Micros())
	}
}

// Shed decides one arrival's fate. Queue-depth shedding is checked
// first (it draws nothing); probabilistic shedding draws one value
// from the dedicated stream per arrival that reaches it.
func (c *Controller) Shed() bool {
	sh := c.Spec.Shed
	if sh == nil {
		return false
	}
	if sh.Queue > 0 && c.outstanding >= sh.Queue {
		c.Stats.ShedQueue++
		return true
	}
	if sh.Prob > 0 && c.shedRNG.Float64() < sh.Prob {
		c.Stats.ShedRandom++
		return true
	}
	return false
}

// RetryAfter decides whether a timed-out request on its attempt-th
// try (1-based) may go again, consuming the tenant's budget and
// returning the backoff delay.
func (c *Controller) RetryAfter(tenant, attempt int) (sim.Time, bool) {
	r := c.Spec.Retry
	if r == nil || r.Budget <= 0 {
		return 0, false
	}
	maxAttempts := r.MaxAttempts
	if maxAttempts <= 0 {
		maxAttempts = 2
	}
	if attempt >= maxAttempts {
		c.Stats.RetriesExhausted++
		return 0, false
	}
	left, seen := c.retryLeft[tenant]
	if !seen {
		left = r.Budget
	}
	if left <= 0 {
		c.Stats.RetriesExhausted++
		return 0, false
	}
	c.retryLeft[tenant] = left - 1
	c.Stats.Retries++
	base := r.Backoff
	if base <= 0 {
		base = 20 * sim.Microsecond
	}
	cap := r.BackoffCap
	if cap <= 0 {
		cap = 8 * base
	}
	d := base << (attempt - 1)
	if d > cap || d <= 0 {
		d = cap
	}
	return d, true
}

// Tick executes one decision: sample the utilization signal, feed the
// loop, and apply any resulting offset change through the actuator.
func (c *Controller) Tick(now sim.Time) {
	if !c.NeedsTick() {
		return
	}
	c.Stats.Ticks++
	util := c.sampleUtil()
	delta := c.loop.tick(now, util)
	c.Stats.BreachTicks = c.loop.breachTicks
	c.Stats.LastBreach = c.loop.lastBreach
	c.sink.Sample("control/util", now, util)
	c.sink.Sample("control/level", now, float64(c.loop.off))
	if delta == 0 {
		return
	}
	if delta > 0 {
		c.Stats.ScaleUps++
	} else {
		c.Stats.ScaleDowns++
	}
	c.Stats.Level = c.loop.off
	c.applyLevel()
	c.emitDecision(now, delta)
	c.levelSince = now
}

// sampleUtil produces the current interval's utilization in [0,1]:
// pooled busy-time delta over interval capacity for pe/cores, or the
// outstanding-per-active-replica ratio for replicas.
func (c *Controller) sampleUtil() float64 {
	if c.applyFn != nil {
		active := c.activeLevel()
		cap := c.loop.spec.ReplicaCap
		u := float64(c.outstanding) / (float64(active) * float64(cap))
		if u > 1 {
			u = 1
		}
		return u
	}
	var delta sim.Time
	servers := 0
	for i, p := range c.pools {
		delta += p.Res.BusyTime - c.lastBusy[i]
		c.lastBusy[i] = p.Res.BusyTime
		servers += p.Res.Servers
	}
	if servers < 1 {
		servers = 1
	}
	// BusyTime is charged up front at task start, so a delta can
	// exceed the interval capacity; clamp to 1 (the same convention as
	// the obs utilization sampler).
	u := float64(delta) / (float64(c.loop.spec.Interval) * float64(servers))
	if u > 1 {
		u = 1
	}
	return u
}

// activeLevel is the current active replica count.
func (c *Controller) activeLevel() int {
	n := c.activeBase + c.loop.off
	if n < 1 {
		n = 1
	}
	if n > c.activeBase {
		n = c.activeBase
	}
	return n
}

// applyLevel pushes the loop's offset through the actuator.
func (c *Controller) applyLevel() {
	if c.applyFn != nil {
		c.applyFn(c.activeLevel())
		return
	}
	for _, p := range c.pools {
		n := p.Base + c.loop.off
		if n < 1 {
			n = 1
		}
		if p.Set != nil {
			p.Set(n)
		} else {
			p.Res.SetServers(n)
		}
	}
}

// emitDecision exports one scaling action as a root span whose
// segment covers the period spent at the previous level.
func (c *Controller) emitDecision(now sim.Time, delta int) {
	if c.sink == nil {
		return
	}
	dir := "up"
	if delta < 0 {
		dir = "down"
	}
	name := fmt.Sprintf("control/scale-%s/%s@%+d", dir, c.loop.spec.Target, c.loop.off)
	sp := c.sink.BeginControl(name)
	sp.Seg(obs.SegControl, name, c.levelSince, now)
	sp.End()
}

// loop is the pure autoscale decision state machine, split from the
// Controller so hysteresis and cooldown edges are table-testable
// without a kernel. All fields are in ticks except the sample rings.
type loop struct {
	spec AutoscaleSpec

	off      int // current offset from base, in servers/replicas
	cooldown int
	upHold   int
	downHold int

	utils []sample
	lats  []sample

	breachTicks uint64
	lastBreach  sim.Time
}

type sample struct {
	at sim.Time
	v  float64
}

// newLoop applies the spec's defaults.
func newLoop(a AutoscaleSpec) loop {
	if a.Interval <= 0 {
		a.Interval = 50 * sim.Microsecond
	}
	if a.Window <= 0 {
		a.Window = 4 * a.Interval
	}
	if a.Step <= 0 {
		a.Step = 1
	}
	if a.Cooldown <= 0 {
		a.Cooldown = 2
	}
	if a.Hold <= 0 {
		a.Hold = 1
	}
	if a.ReplicaCap <= 0 {
		a.ReplicaCap = 4
	}
	return loop{spec: a}
}

// observeLatency adds one completion latency (microseconds) to the
// sliding P99 window.
func (l *loop) observeLatency(now sim.Time, us float64) {
	l.lats = append(l.lats, sample{at: now, v: us})
}

// evict drops samples older than the window from both rings.
func evict(ss []sample, cutoff sim.Time) []sample {
	keep := 0
	for keep < len(ss) && ss[keep].at < cutoff {
		keep++
	}
	if keep > 0 {
		n := copy(ss, ss[keep:])
		ss = ss[:n]
	}
	return ss
}

// windowP99 computes the P99 of the retained latency window (0 when
// empty), using the same nearest-rank convention as metrics.Recorder.
func (l *loop) windowP99() float64 {
	n := len(l.lats)
	if n == 0 {
		return 0
	}
	vals := make([]float64, n)
	for i, s := range l.lats {
		vals[i] = s.v
	}
	sort.Float64s(vals)
	idx := int(float64(n)*0.99+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= n {
		idx = n - 1
	}
	return vals[idx]
}

// tick runs one decision on the latest utilization sample and returns
// the applied offset change (0 = no action).
func (l *loop) tick(now sim.Time, util float64) int {
	cutoff := now - l.spec.Window
	l.utils = evict(append(l.utils, sample{at: now, v: util}), cutoff)
	var sum float64
	for _, s := range l.utils {
		sum += s.v
	}
	winUtil := sum / float64(len(l.utils))

	breach := false
	if l.spec.SLOUs > 0 {
		l.lats = evict(l.lats, cutoff)
		if p99 := l.windowP99(); p99 > l.spec.SLOUs {
			breach = true
			l.breachTicks++
			l.lastBreach = now
		}
	}

	switch {
	case winUtil >= l.spec.UpUtil || breach:
		l.upHold++
		l.downHold = 0
	case winUtil <= l.spec.DownUtil:
		l.downHold++
		l.upHold = 0
	default:
		l.upHold, l.downHold = 0, 0
	}

	if l.cooldown > 0 {
		l.cooldown--
		return 0
	}
	if l.upHold >= l.spec.Hold && l.off < l.spec.MaxAdd {
		d := l.spec.Step
		if l.off+d > l.spec.MaxAdd {
			d = l.spec.MaxAdd - l.off
		}
		l.off += d
		l.cooldown = l.spec.Cooldown
		l.upHold = 0
		return d
	}
	if l.downHold >= l.spec.Hold && l.off > -l.spec.MaxRemove {
		d := l.spec.Step
		if l.off-d < -l.spec.MaxRemove {
			d = l.off + l.spec.MaxRemove
		}
		l.off -= d
		l.cooldown = l.spec.Cooldown
		l.downHold = 0
		return -d
	}
	return 0
}

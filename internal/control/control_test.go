package control

import (
	"strings"
	"testing"

	"accelflow/internal/sim"
)

// TestLoopTable pins the decision state machine's hysteresis and
// cooldown edges without a kernel: each row feeds a fixed utilization
// sequence and asserts the exact action sequence.
func TestLoopTable(t *testing.T) {
	iv := 50 * sim.Microsecond
	cases := []struct {
		name  string
		spec  AutoscaleSpec
		utils []float64
		want  []int
	}{
		{
			// Hold 2 demands two consecutive high ticks; alternating
			// high/low resets the hold every other tick, so a flapping
			// signal never acts.
			name: "flap suppression",
			spec: AutoscaleSpec{UpUtil: 0.99, DownUtil: 0.01, MaxAdd: 8, MaxRemove: 8,
				Hold: 2, Window: iv / 2},
			utils: []float64{1, 0, 1, 0, 1, 0, 1, 0},
			want:  []int{0, 0, 0, 0, 0, 0, 0, 0},
		},
		{
			// The same signal held steady acts on the second tick, then
			// every Cooldown+1 ticks (hold keeps accruing during
			// cooldown, so the next action lands as soon as it expires).
			name: "steady signal scales through cooldown",
			spec: AutoscaleSpec{UpUtil: 0.8, DownUtil: 0.1, MaxAdd: 8,
				Hold: 2, Cooldown: 2, Window: iv / 2},
			utils: []float64{1, 1, 1, 1, 1, 1, 1, 1},
			want:  []int{0, 1, 0, 0, 1, 0, 0, 1},
		},
		{
			// MaxAdd truncates the final step and then pins the level:
			// Step 3 against a ceiling of 4 yields +3, +1, nothing.
			name: "ceiling clamps the last step",
			spec: AutoscaleSpec{UpUtil: 0.8, DownUtil: 0.1, MaxAdd: 4, Step: 3,
				Cooldown: 1, Window: iv / 2},
			utils: []float64{1, 1, 1, 1, 1, 1},
			want:  []int{3, 0, 1, 0, 0, 0},
		},
		{
			// Scale-down mirrors scale-up, bounded by MaxRemove.
			name: "idle drains to the removal bound",
			spec: AutoscaleSpec{UpUtil: 0.8, DownUtil: 0.2, MaxRemove: 2,
				Cooldown: 1, Window: iv / 2},
			utils: []float64{0, 0, 0, 0, 0, 0},
			want:  []int{-1, 0, -1, 0, 0, 0},
		},
		{
			// MaxAdd 0 with UpUtil above 1 is the "never scale" spelling:
			// saturated utilization still produces zero actions.
			name:  "unreachable thresholds never act",
			spec:  AutoscaleSpec{UpUtil: 2, DownUtil: -1, Window: iv / 2},
			utils: []float64{1, 1, 1, 0, 0, 0},
			want:  []int{0, 0, 0, 0, 0, 0},
		},
		{
			// A window shorter than the tick degenerates to the newest
			// sample: the high spike acts immediately even though the
			// window-mean over a longer window would still be low.
			name: "window shorter than tick uses newest sample",
			spec: AutoscaleSpec{UpUtil: 0.9, DownUtil: -1, MaxAdd: 2,
				Cooldown: 1, Window: iv / 4},
			utils: []float64{0, 0, 0, 1},
			want:  []int{0, 0, 0, 1},
		},
		{
			// With a 4-interval window the same spike is averaged away.
			name: "long window averages a spike away",
			spec: AutoscaleSpec{UpUtil: 0.9, DownUtil: -1, MaxAdd: 2,
				Cooldown: 1, Window: 4 * iv},
			utils: []float64{0, 0, 0, 1},
			want:  []int{0, 0, 0, 0},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tc.spec.Target = TargetPE
			tc.spec.Interval = iv
			l := newLoop(tc.spec)
			got := make([]int, 0, len(tc.utils))
			for i, u := range tc.utils {
				got = append(got, l.tick(sim.Millisecond+sim.Time(i)*iv, u))
			}
			if len(got) != len(tc.want) {
				t.Fatalf("got %d deltas, want %d", len(got), len(tc.want))
			}
			for i := range got {
				if got[i] != tc.want[i] {
					t.Fatalf("deltas = %v, want %v", got, tc.want)
				}
			}
		})
	}
}

// TestLoopSLOBreachScalesDespiteLowUtil: a windowed P99 above the SLO
// is a scale-up signal even at idle utilization, and breach
// bookkeeping records the tick.
func TestLoopSLOBreachScalesDespiteLowUtil(t *testing.T) {
	iv := 50 * sim.Microsecond
	l := newLoop(AutoscaleSpec{Target: TargetPE, Interval: iv, Window: 4 * iv,
		UpUtil: 0.9, DownUtil: -1, SLOUs: 300, MaxAdd: 4, Cooldown: 1})
	now := sim.Millisecond
	l.observeLatency(now-iv/2, 500) // inside the window, above the SLO
	if d := l.tick(now, 0.05); d != 1 {
		t.Fatalf("breach tick applied delta %d, want 1", d)
	}
	if l.breachTicks != 1 || l.lastBreach != now {
		t.Fatalf("breach bookkeeping = %d/%v, want 1/%v", l.breachTicks, l.lastBreach, now)
	}
	// Once the sample ages out of the window the breach clears and idle
	// utilization takes over (cooldown swallows the first eligible tick).
	if d := l.tick(now+5*iv, 0.05); d != 0 {
		t.Fatalf("post-breach cooldown tick applied delta %d, want 0", d)
	}
	if l.breachTicks != 1 {
		t.Fatalf("expired sample still counted as a breach (%d ticks)", l.breachTicks)
	}
}

// TestControllerPoolFloor: scaling down never takes a pool below one
// server, regardless of how deep the loop's offset goes.
func TestControllerPoolFloor(t *testing.T) {
	k := sim.NewKernel()
	res := sim.NewResource(k, "pe", 2, sim.FIFO)
	c := New(Spec{Autoscale: &AutoscaleSpec{Target: TargetPE,
		UpUtil: 0.9, DownUtil: 0.2, MaxRemove: 8, Cooldown: 1, Window: sim.Microsecond}}, 1)
	c.AttachPools([]Pool{{Res: res, Base: res.Servers}})
	for i := 1; i <= 12; i++ {
		k.At(sim.Time(i)*c.Interval(), func() {})
		k.Run()
		c.Tick(k.Now())
	}
	if res.Servers != 1 {
		t.Fatalf("pool scaled to %d servers, want floor of 1", res.Servers)
	}
	if c.Stats.ScaleDowns == 0 {
		t.Fatal("no scale-downs recorded")
	}
	if got := -c.loop.off; got > 8 {
		t.Fatalf("offset %d exceeds MaxRemove", got)
	}
}

// TestControllerZeroRNGContract: a shed section with Prob 0 and a
// retry section with Budget 0 must not allocate their state — the
// disabled controller's bit-identity to no controller depends on
// drawing nothing from any stream.
func TestControllerZeroRNGContract(t *testing.T) {
	c := New(Spec{Shed: &ShedSpec{Queue: 10}, Retry: &RetrySpec{}}, 1)
	if c.shedRNG != nil {
		t.Error("Prob 0 created the shed RNG stream")
	}
	if c.retryLeft != nil {
		t.Error("Budget 0 allocated retry state")
	}
	if c.Shed() {
		t.Error("empty controller shed a request")
	}
	if _, ok := c.RetryAfter(0, 1); ok {
		t.Error("Budget 0 granted a retry")
	}
}

// TestControllerShedDeterminism: the same seed sheds the same
// arrivals; queue-depth shedding draws nothing from the stream.
func TestControllerShedDeterminism(t *testing.T) {
	pattern := func() []bool {
		c := New(Spec{Shed: &ShedSpec{Prob: 0.3}}, 42)
		out := make([]bool, 200)
		for i := range out {
			out[i] = c.Shed()
		}
		return out
	}
	a, b := pattern(), pattern()
	shed := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("shed decision %d differs across identical controllers", i)
		}
		if a[i] {
			shed++
		}
	}
	if shed == 0 || shed == len(a) {
		t.Fatalf("shed %d of %d arrivals; probabilistic shedding looks broken", shed, len(a))
	}

	// Queue-triggered sheds must leave the random stream untouched: a
	// controller that sheds 50 arrivals by depth first continues the
	// random sequence exactly where a fresh one starts it.
	c := New(Spec{Shed: &ShedSpec{Prob: 0.3, Queue: 5}}, 42)
	for i := 0; i < 5; i++ {
		c.NoteSubmit()
	}
	for i := 0; i < 50; i++ {
		if !c.Shed() {
			t.Fatal("queue at threshold did not shed")
		}
	}
	for i := 0; i < 5; i++ {
		c.NoteDone(0, 0)
	}
	for i := 0; i < 200; i++ {
		if got := c.Shed(); got != a[i] {
			t.Fatalf("random stream advanced by queue sheds (decision %d)", i)
		}
	}
	if c.Stats.ShedQueue != 50 {
		t.Fatalf("ShedQueue = %d, want 50", c.Stats.ShedQueue)
	}
}

// TestRetryBudget pins the retry grant rules: per-tenant budgets,
// the attempt cap, and exponential backoff growth up to the cap.
func TestRetryBudget(t *testing.T) {
	c := New(Spec{Retry: &RetrySpec{Budget: 2, MaxAttempts: 4,
		Backoff: 10 * sim.Microsecond, BackoffCap: 30 * sim.Microsecond}}, 1)

	d1, ok := c.RetryAfter(0, 1)
	if !ok || d1 != 10*sim.Microsecond {
		t.Fatalf("attempt 1 retry = %v/%t, want 10us grant", d1, ok)
	}
	d2, ok := c.RetryAfter(0, 2)
	if !ok || d2 != 20*sim.Microsecond {
		t.Fatalf("attempt 2 retry = %v/%t, want doubled 20us", d2, ok)
	}
	// Tenant 0's budget of 2 is spent; tenant 1's is untouched.
	if _, ok := c.RetryAfter(0, 1); ok {
		t.Fatal("exhausted budget granted a retry")
	}
	d3, ok := c.RetryAfter(1, 3)
	if !ok || d3 != 30*sim.Microsecond {
		t.Fatalf("attempt 3 retry = %v/%t, want capped 30us", d3, ok)
	}
	// Attempt cap: attempt 4 of max 4 is the last allowed try.
	if _, ok := c.RetryAfter(1, 4); ok {
		t.Fatal("attempt at MaxAttempts granted a retry")
	}
	if c.Stats.Retries != 3 || c.Stats.RetriesExhausted != 2 {
		t.Fatalf("stats = %d granted / %d exhausted, want 3/2", c.Stats.Retries, c.Stats.RetriesExhausted)
	}
}

// TestValidateTable exercises every rejection branch plus the
// disable-spelling specs that must pass.
func TestValidateTable(t *testing.T) {
	cases := []struct {
		name string
		spec *Spec
		want string // error substring; "" = valid
	}{
		{"nil spec", nil, ""},
		{"empty spec", &Spec{}, ""},
		{"valid autoscale", &Spec{Autoscale: &AutoscaleSpec{Target: TargetPE, UpUtil: 0.8, DownUtil: 0.2}}, ""},
		{"disable spelling", &Spec{Autoscale: &AutoscaleSpec{Target: TargetCores, UpUtil: 2, DownUtil: -1}}, ""},
		{"bad target", &Spec{Autoscale: &AutoscaleSpec{Target: "gpus", UpUtil: 0.8}}, "target"},
		{"zero uputil", &Spec{Autoscale: &AutoscaleSpec{Target: TargetPE}}, "UpUtil"},
		{"inverted thresholds", &Spec{Autoscale: &AutoscaleSpec{Target: TargetPE, UpUtil: 0.3, DownUtil: 0.5}}, "DownUtil"},
		{"negative interval", &Spec{Autoscale: &AutoscaleSpec{Target: TargetPE, UpUtil: 0.8, Interval: -1}}, "interval"},
		{"negative slo", &Spec{Autoscale: &AutoscaleSpec{Target: TargetPE, UpUtil: 0.8, SLOUs: -5}}, "SLOUs"},
		{"negative bounds", &Spec{Autoscale: &AutoscaleSpec{Target: TargetPE, UpUtil: 0.8, MaxAdd: -1}}, "non-negative"},
		{"shed prob above one", &Spec{Shed: &ShedSpec{Prob: 1.5}}, "probability"},
		{"negative shed queue", &Spec{Shed: &ShedSpec{Queue: -1}}, "queue depth"},
		{"negative retry budget", &Spec{Retry: &RetrySpec{Budget: -1}}, "budget"},
		{"backoff cap below base", &Spec{Retry: &RetrySpec{Budget: 1,
			Backoff: 40 * sim.Microsecond, BackoffCap: 10 * sim.Microsecond}}, "backoffCap"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.spec.Validate()
			if tc.want == "" {
				if err != nil {
					t.Fatalf("Validate() = %v, want nil", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("Validate() = %v, want substring %q", err, tc.want)
			}
		})
	}
}

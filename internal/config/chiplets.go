package config

import "fmt"

// ChipletPlan names one of the paper's chiplet organizations
// (§VII-C.1 / Fig. 18). Chiplet 0 always holds the cores and LdB.
type ChipletPlan int

const (
	// OneChiplet places all accelerators with the cores.
	OneChiplet ChipletPlan = 1
	// TwoChiplets is the base design: cores+LdB, and one accelerator
	// chiplet with everything else.
	TwoChiplets ChipletPlan = 2
	// ThreeChiplets: TCP+(De)Encr on one; RPC+(De)Ser+(De)Cmp on another.
	ThreeChiplets ChipletPlan = 3
	// FourChiplets: TCP+(De)Encr; RPC+(De)Ser; (De)Cmp.
	FourChiplets ChipletPlan = 4
	// SixChiplets: TCP, (De)Encr, RPC, (De)Ser, (De)Cmp each separate.
	SixChiplets ChipletPlan = 6
)

// AllChipletPlans lists the organizations evaluated in Fig. 18.
func AllChipletPlans() []ChipletPlan {
	return []ChipletPlan{OneChiplet, TwoChiplets, ThreeChiplets, FourChiplets, SixChiplets}
}

func (p ChipletPlan) String() string { return fmt.Sprintf("%d-chiplet", int(p)) }

// ApplyChipletPlan rewrites the config's accelerator-to-chiplet mapping
// to the named organization.
func (c *Config) ApplyChipletPlan(p ChipletPlan) error {
	assign := func(m map[AccelKind]int, n int) {
		c.Chiplets = n
		for k := AccelKind(0); k < NumAccelKinds; k++ {
			c.ChipletOf[k] = 0
		}
		for k, ch := range m {
			c.ChipletOf[k] = ch
		}
	}
	switch p {
	case OneChiplet:
		assign(map[AccelKind]int{}, 1)
	case TwoChiplets:
		assign(map[AccelKind]int{
			TCP: 1, Encr: 1, Decr: 1, RPC: 1, Ser: 1, Dser: 1, Cmp: 1, Dcmp: 1,
		}, 2)
	case ThreeChiplets:
		assign(map[AccelKind]int{
			TCP: 1, Encr: 1, Decr: 1,
			RPC: 2, Ser: 2, Dser: 2, Cmp: 2, Dcmp: 2,
		}, 3)
	case FourChiplets:
		assign(map[AccelKind]int{
			TCP: 1, Encr: 1, Decr: 1,
			RPC: 2, Ser: 2, Dser: 2,
			Cmp: 3, Dcmp: 3,
		}, 4)
	case SixChiplets:
		assign(map[AccelKind]int{
			TCP:  1,
			Encr: 2, Decr: 2,
			RPC: 3,
			Ser: 4, Dser: 4,
			Cmp: 5, Dcmp: 5,
		}, 6)
	default:
		return fmt.Errorf("config: unknown chiplet plan %d", int(p))
	}
	return nil
}

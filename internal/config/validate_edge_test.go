package config

import (
	"strings"
	"testing"
)

// TestValidateEdgeCases exercises the boundary semantics of every
// numeric rule: exact zeros, negatives, and the cross-field timeout
// consistency check, with the error text naming the offending field so
// a property-harness repro is actionable.
func TestValidateEdgeCases(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(*Config)
		wantSub string // substring the error must carry ("" = valid)
	}{
		{"default", func(c *Config) {}, ""},
		{"zero cores", func(c *Config) { c.Cores = 0 }, "Cores"},
		{"negative cores", func(c *Config) { c.Cores = -4 }, "Cores"},
		{"zero PEs", func(c *Config) { c.PEsPerAccel = 0 }, "PEsPerAccel"},
		{"negative PEs", func(c *Config) { c.PEsPerAccel = -2 }, "PEsPerAccel"},
		{"empty chiplet set", func(c *Config) { c.Chiplets = 0 }, "Chiplets"},
		{"negative chiplets", func(c *Config) { c.Chiplets = -1 }, "Chiplets"},
		{"zero overflow entries", func(c *Config) { c.OverflowEntries = 0 }, "OverflowEntries"},
		{"zero manager width", func(c *Config) { c.ManagerWidth = 0 }, "ManagerWidth"},
		{"zero tenant limit", func(c *Config) { c.TenantTraceLimit = 0 }, "TenantTraceLimit"},
		{"negative retries", func(c *Config) { c.EnqueueRetries = -1 }, "EnqueueRetries"},
		{"negative rearms", func(c *Config) { c.TimeoutRearms = -1 }, "TimeoutRearms"},
		{"negative backoff", func(c *Config) { c.EnqueueBackoff = -1 }, "EnqueueBackoff"},
		{"zero TCP timeout", func(c *Config) { c.TCPTimeout = 0 }, "TCPTimeout"},
		{"negative TCP timeout", func(c *Config) { c.TCPTimeout = -1 }, "TCPTimeout"},
		{"timeout below RTT", func(c *Config) { c.TCPTimeout = c.RemoteRTT / 2 }, "TCPTimeout"},
		{"timeout equals RTT", func(c *Config) { c.TCPTimeout = c.RemoteRTT }, "TCPTimeout"},
		{"timeout just above RTT", func(c *Config) { c.TCPTimeout = c.RemoteRTT + 1 }, ""},
		{"single core is fine", func(c *Config) { c.Cores = 1 }, ""},
		{"negative PEMix entry", func(c *Config) { c.PEMix[TCP] = -4 }, "PEMix"},
		{"PEMix override is fine", func(c *Config) { c.PEMix[TCP] = 16 }, ""},
		{"PEMix zero means uniform", func(c *Config) { c.PEMix[Ser] = 0 }, ""},
		// Shrinking to one chiplet without moving the accelerators off
		// chiplet 1 leaves placements out of range — caught, not silent.
		{"single chiplet stale placement", func(c *Config) { c.Chiplets = 1 }, "ChipletOf"},
		{"single chiplet is fine", func(c *Config) {
			c.Chiplets = 1
			for k := range c.ChipletOf {
				c.ChipletOf[k] = 0
			}
		}, ""},
	}
	for _, tc := range cases {
		c := Default()
		tc.mutate(c)
		err := c.Validate()
		if tc.wantSub == "" {
			if err != nil {
				t.Errorf("%s: Validate() = %v, want nil", tc.name, err)
			}
			continue
		}
		if err == nil {
			t.Errorf("%s: Validate() accepted a bad config", tc.name)
		} else if !strings.Contains(err.Error(), tc.wantSub) {
			t.Errorf("%s: error %q does not name %q", tc.name, err, tc.wantSub)
		}
	}
}

// TestPEsForAndTotalPEs pins the PEMix read-through semantics: a zero
// entry falls back to the uniform PEsPerAccel, a positive entry
// overrides it for that kind only, and TotalPEs sums the effective
// pools.
func TestPEsForAndTotalPEs(t *testing.T) {
	c := Default()
	uniform := c.PEsPerAccel
	if got := c.TotalPEs(); got != uniform*int(NumAccelKinds) {
		t.Fatalf("uniform TotalPEs = %d, want %d", got, uniform*int(NumAccelKinds))
	}
	c.PEMix[TCP] = uniform + 8
	if got := c.PEsFor(TCP); got != uniform+8 {
		t.Errorf("PEsFor(TCP) = %d, want override %d", got, uniform+8)
	}
	if got := c.PEsFor(Ser); got != uniform {
		t.Errorf("PEsFor(Ser) = %d, want uniform %d", got, uniform)
	}
	if got := c.TotalPEs(); got != uniform*int(NumAccelKinds)+8 {
		t.Errorf("mixed TotalPEs = %d, want %d", got, uniform*int(NumAccelKinds)+8)
	}
}

// Package config holds the architectural parameter sets of the modeled
// server (paper Table III), the processor-generation variants (§VII-C.4),
// the chiplet organizations (§VII-C.1), the literature accelerator
// speedups (§VI), and the calibrated CPU cost model for datacenter-tax
// operations.
package config

import (
	"fmt"
	"math"

	"accelflow/internal/sim"
)

// AccelKind identifies one of the nine accelerator types of the ensemble
// (paper §III). The order matters: it is the 4-bit encoding used inside
// binary traces.
type AccelKind uint8

const (
	TCP AccelKind = iota
	Encr
	Decr
	RPC
	Ser
	Dser
	Cmp
	Dcmp
	LdB
	NumAccelKinds
)

var accelNames = [NumAccelKinds]string{
	"TCP", "Encr", "Decr", "RPC", "Ser", "Dser", "Cmp", "Dcmp", "LdB",
}

// String returns the paper's name for the accelerator kind.
func (a AccelKind) String() string {
	if a < NumAccelKinds {
		return accelNames[a]
	}
	return fmt.Sprintf("Accel(%d)", uint8(a))
}

// AllAccelKinds lists the nine kinds in encoding order.
func AllAccelKinds() []AccelKind {
	out := make([]AccelKind, NumAccelKinds)
	for i := range out {
		out[i] = AccelKind(i)
	}
	return out
}

// Generation identifies a modeled CPU microarchitecture (paper §VII-C.4).
type Generation int

const (
	Haswell Generation = iota
	Skylake
	IceLake // the paper's default
	SapphireRapids
	EmeraldRapids
)

var genNames = []string{"Haswell", "Skylake", "IceLake", "SapphireRapids", "EmeraldRapids"}

func (g Generation) String() string { return genNames[g] }

// AllGenerations lists the modeled generations oldest-first.
func AllGenerations() []Generation {
	return []Generation{Haswell, Skylake, IceLake, SapphireRapids, EmeraldRapids}
}

// genScale captures the paper's observation that newer generations speed
// up application logic more than datacenter-tax operations (§VII-C.4).
type genScale struct {
	app float64 // speedup of app-logic CPU time relative to IceLake
	tax float64 // speedup of tax-op CPU time relative to IceLake
}

var genScales = map[Generation]genScale{
	Haswell:        {app: 0.68, tax: 0.82},
	Skylake:        {app: 0.85, tax: 0.92},
	IceLake:        {app: 1.00, tax: 1.00},
	SapphireRapids: {app: 1.16, tax: 1.06},
	EmeraldRapids:  {app: 1.27, tax: 1.10},
}

// Config is the complete parameter set for one simulated server. The
// zero value is not usable; start from Default() and override.
type Config struct {
	// Processor (Table III, "Processor Parameters").
	Cores      int     // 36 six-issue cores
	CPUFreqGHz float64 // 2.4 GHz
	Generation Generation

	// AccelFlow structures (Table III, "AccelFlow Parameters").
	InputQueueEntries  int      // 64
	OutputQueueEntries int      // 64
	ADMAEngines        int      // 10
	PEsPerAccel        int      // 8
	ScratchpadKB       int      // 64 per PE
	QueueToPadLatency  sim.Time // 10 ns
	QueueToPadGBs      float64  // 100 GB/s
	NotifyCycles       int      // 80 cycles accelerator -> core
	MeshHopCycles      int      // 3 cycles per intra-chiplet hop
	MeshLinkBytes      int      // 16B links
	InterChipletCycles int      // 60 cycles
	InterChipletGBs    float64  // deliberate deviation from Table III's
	// 1 Gb/s per link; see DESIGN.md §4.

	// Queue entry geometry (§IV-A).
	InlineDataBytes int // 2KB inline per queue entry
	QueueEntryBytes int // 2.1KB total per entry (§VI area discussion)

	// Memory hierarchy (Table III + §V-3).
	LLCLatency      sim.Time // 36-cycle slice round trip, converted
	DRAMLatency     sim.Time
	MemCtrls        int     // 4
	MemGBsPerCtrl   float64 // 102.4 GB/s
	AccelTLBEntries int
	TLBHitRate      float64  // probability an accel TLB access hits
	IOMMUWalk       sim.Time // miss service time via IOMMU
	PageFaultRate   float64  // faults per accelerator invocation
	PageFaultCost   sim.Time // OS handling, CPU involved

	// Dispatcher cost model (§VII-B.2): RISC-like instruction counts,
	// executed at one instruction per cycle.
	DispBaseInstrs      int // ~15 typical output-dispatcher pass
	DispBranchInstrs    int // +7 to resolve a branch
	DispEndInstrs       int // 12..20 for end-of-trace handling (use mid)
	DispTransformInstrs int // +12 for a 2KB payload transformation

	// Orchestration mechanics.
	EnqueueCost      sim.Time // user-mode Enqueue instruction (AccelFlow)
	InterruptCost    sim.Time // CPU interrupt entry+exit (CPU-Centric)
	ManagerHop       sim.Time // RELIEF manager per-completion processing (~1.5us, §VII-A.1)
	ManagerDispatch  sim.Time // RELIEF manager programming one accelerator at chain submit
	ManagerWidth     int      // concurrent completions the manager engine handles
	SWQueueHop       sim.Time // Cohort polled software-queue hop cost on a core
	SWQueuePickup    sim.Time // polling interval before a core notices a software-queue entry
	PollPickupDelay  sim.Time // delay until a polling core observes a user-level notification
	ATMReadLatency   sim.Time // output dispatcher reading the next trace from the ATM
	EnqueueRetries   int      // attempts before CPU fallback (§IV-A)
	EnqueueBackoff   sim.Time // base delay before an Enqueue retry, doubling per attempt (0 = immediate retry)
	OverflowEntries  int      // per-input-queue overflow area capacity
	TCPTimeout       sim.Time // armed response-trace timeout (§IV-B)
	TimeoutRearms    int      // re-arm attempts after a TCP timeout before giving up (0 = none)
	TenantTraceLimit int      // N concurrent traces per tenant (§IV-D)
	ScratchWipe      sim.Time // PE state clear between tenants (§IV-D)

	// Chiplet organization (§VII-C.1): maps each accelerator kind to a
	// chiplet index. Chiplet 0 is always the core chiplet (with LdB).
	ChipletOf [NumAccelKinds]int
	Chiplets  int

	// PEMix optionally overrides PEsPerAccel per accelerator kind: a
	// positive entry sets that kind's PE-pool size, zero falls back to
	// the uniform PEsPerAccel. The autotuner searches over this field
	// to size each pool to the workload instead of provisioning every
	// kind identically. Read through PEsFor, never directly.
	PEMix [NumAccelKinds]int

	// Accelerator speedups over CPU for the op's compute (paper §VI).
	Speedup [NumAccelKinds]float64
	// SpeedupScale multiplies all accelerator speedups (§VII-C.5).
	SpeedupScale float64

	// Cost model: CPU time of each tax op = Base + PerByte*size,
	// at IceLake reference speed (before generation scaling).
	OpBase    [NumAccelKinds]sim.Time
	OpPerByte [NumAccelKinds]sim.Time // per byte of payload

	// Payload/data-shape model.
	CmpRatio    float64 // compressed size / original size
	SerOverhead float64 // serialized size / in-memory size

	// Remote side of nested RPCs / DB messages (DESIGN.md §4).
	RemoteRTT     sim.Time // network round trip to the peer
	RemoteDBTime  sim.Time // storage service time
	RemoteSvcTime sim.Time // downstream microservice time
}

// Default returns the paper's base configuration: a 36-core
// IceLake-like processor with two chiplets (cores+LdB, and the other
// eight accelerators), Table III parameters, and literature speedups.
func Default() *Config {
	c := &Config{
		Cores:      36,
		CPUFreqGHz: 2.4,
		Generation: IceLake,

		InputQueueEntries:  64,
		OutputQueueEntries: 64,
		ADMAEngines:        10,
		PEsPerAccel:        8,
		ScratchpadKB:       64,
		QueueToPadLatency:  10 * sim.Nanosecond,
		QueueToPadGBs:      100,
		NotifyCycles:       80,
		MeshHopCycles:      3,
		MeshLinkBytes:      16,
		InterChipletCycles: 60,
		InterChipletGBs:    3.5,

		InlineDataBytes: 2048,
		QueueEntryBytes: 2150,

		LLCLatency:      sim.FromNanos(15),
		DRAMLatency:     sim.FromNanos(80),
		MemCtrls:        4,
		MemGBsPerCtrl:   102.4,
		AccelTLBEntries: 128,
		TLBHitRate:      0.985,
		IOMMUWalk:       sim.FromNanos(180),
		PageFaultRate:   1.3e-6,
		PageFaultCost:   5 * sim.Microsecond,

		DispBaseInstrs:      15,
		DispBranchInstrs:    7,
		DispEndInstrs:       16,
		DispTransformInstrs: 12,

		EnqueueCost:      sim.FromNanos(60),
		InterruptCost:    sim.FromNanos(1450),
		ManagerHop:       sim.FromNanos(1500),
		ManagerDispatch:  sim.FromNanos(400),
		ManagerWidth:     16,
		SWQueueHop:       sim.FromNanos(1150),
		SWQueuePickup:    sim.FromNanos(3000),
		PollPickupDelay:  sim.FromNanos(250),
		ATMReadLatency:   sim.FromNanos(25),
		EnqueueRetries:   3,
		OverflowEntries:  256,
		TCPTimeout:       10 * sim.Millisecond,
		TenantTraceLimit: 64,
		ScratchWipe:      sim.FromNanos(120),

		Chiplets: 2,

		SpeedupScale: 1.0,
		CmpRatio:     0.42,
		SerOverhead:  1.15,

		RemoteRTT:     18 * sim.Microsecond,
		RemoteDBTime:  9 * sim.Microsecond,
		RemoteSvcTime: 25 * sim.Microsecond,
	}

	// Two-chiplet base layout: LdB with the cores (chiplet 0),
	// everything else on the accelerator chiplet (1).
	for k := range c.ChipletOf {
		c.ChipletOf[k] = 1
	}
	c.ChipletOf[LdB] = 0

	// Literature speedups (§VI): F4T 3.5 (TCP), QTLS 6.6 ((De)Encr),
	// Cerebros 20.5 (RPC), ProtoAcc 3.8 ((De)Ser), CDPU 4.1/15.2
	// (Dcmp/Cmp), Intel DLB 8.1 (LdB).
	c.Speedup = [NumAccelKinds]float64{
		TCP: 3.5, Encr: 6.6, Decr: 6.6, RPC: 20.5,
		Ser: 3.8, Dser: 3.8, Cmp: 15.2, Dcmp: 4.1, LdB: 8.1,
	}

	// CPU cost of each tax op at IceLake (calibrated against the Fig. 1
	// breakdown: TCP and (De)Ser dominate, then (De)Encr, (De)Cmp, LdB,
	// RPC). Units: base time plus per-byte time.
	base := func(us float64) sim.Time { return sim.FromMicros(us) }
	perB := func(ns float64) sim.Time { return sim.FromNanos(ns) }
	c.OpBase = [NumAccelKinds]sim.Time{
		TCP: base(2.6), Encr: base(1.0), Decr: base(1.0), RPC: base(0.7),
		Ser: base(1.4), Dser: base(1.6), Cmp: base(2.2), Dcmp: base(1.9),
		LdB: base(1.4),
	}
	c.OpPerByte = [NumAccelKinds]sim.Time{
		TCP: perB(1.7), Encr: perB(1.3), Decr: perB(1.3), RPC: perB(0.12),
		Ser: perB(2.0), Dser: perB(2.2), Cmp: perB(2.6), Dcmp: perB(1.4),
		LdB: 0,
	}
	return c
}

// Clone returns a deep copy (Config has no reference fields, so a value
// copy suffices, but Clone documents intent at call sites).
func (c *Config) Clone() *Config {
	cp := *c
	return &cp
}

// PEsFor returns the PE-pool size of one accelerator kind: the
// per-kind PEMix override when set, else the uniform PEsPerAccel.
func (c *Config) PEsFor(k AccelKind) int {
	if n := c.PEMix[k]; n > 0 {
		return n
	}
	return c.PEsPerAccel
}

// TotalPEs sums the PE pools across the ensemble.
func (c *Config) TotalPEs() int {
	total := 0
	for k := AccelKind(0); k < NumAccelKinds; k++ {
		total += c.PEsFor(k)
	}
	return total
}

// CyclePS returns the duration of one CPU clock cycle.
func (c *Config) CyclePS() sim.Time {
	return sim.Time(math.Round(1000.0 / c.CPUFreqGHz))
}

// Cycles converts a cycle count to simulated time.
func (c *Config) Cycles(n int) sim.Time { return sim.Time(n) * c.CyclePS() }

// AppScale returns the app-logic speed multiplier of the configured
// generation relative to IceLake.
func (c *Config) AppScale() float64 { return genScales[c.Generation].app }

// TaxScale returns the tax-op speed multiplier of the configured
// generation relative to IceLake.
func (c *Config) TaxScale() float64 { return genScales[c.Generation].tax }

// CPUCost returns the CPU time to run the given tax op over a payload
// of the given size on the configured generation.
func (c *Config) CPUCost(k AccelKind, bytes int) sim.Time {
	t := c.OpBase[k] + sim.Time(bytes)*c.OpPerByte[k]
	return sim.Time(float64(t) / c.TaxScale())
}

// AccelCost returns the PE compute time for the op: the paper's C/S
// abstraction, using the IceLake-reference CPU cost divided by the
// (scaled) literature speedup. Accelerator hardware does not speed up
// with CPU generation.
func (c *Config) AccelCost(k AccelKind, bytes int) sim.Time {
	cpu := c.OpBase[k] + sim.Time(bytes)*c.OpPerByte[k]
	s := c.Speedup[k] * c.SpeedupScale
	if s < 1e-9 {
		s = 1e-9
	}
	return sim.Time(math.Round(float64(cpu) / s))
}

// AppCost scales a nominal app-logic duration by the generation's
// app-logic speed.
func (c *Config) AppCost(nominal sim.Time) sim.Time {
	return sim.Time(float64(nominal) / c.AppScale())
}

// DispatcherTime converts a RISC instruction count to time at one
// instruction per cycle (§VII-B.2).
func (c *Config) DispatcherTime(instrs int) sim.Time { return c.Cycles(instrs) }

// NotifyLatency is the accelerator-to-core user-level notification cost.
func (c *Config) NotifyLatency() sim.Time { return c.Cycles(c.NotifyCycles) }

// Validate checks internal consistency and returns a descriptive error
// for the first violated constraint.
func (c *Config) Validate() error {
	switch {
	case c.Cores <= 0:
		return fmt.Errorf("config: Cores must be positive, got %d", c.Cores)
	case c.CPUFreqGHz <= 0:
		return fmt.Errorf("config: CPUFreqGHz must be positive, got %v", c.CPUFreqGHz)
	case c.PEsPerAccel <= 0:
		return fmt.Errorf("config: PEsPerAccel must be positive, got %d", c.PEsPerAccel)
	case c.InputQueueEntries <= 0 || c.OutputQueueEntries <= 0:
		return fmt.Errorf("config: queue entries must be positive")
	case c.OverflowEntries <= 0:
		return fmt.Errorf("config: OverflowEntries must be positive, got %d", c.OverflowEntries)
	case c.ADMAEngines <= 0:
		return fmt.Errorf("config: ADMAEngines must be positive, got %d", c.ADMAEngines)
	case c.ManagerWidth <= 0:
		return fmt.Errorf("config: ManagerWidth must be positive, got %d", c.ManagerWidth)
	case c.TenantTraceLimit <= 0:
		return fmt.Errorf("config: TenantTraceLimit must be positive, got %d", c.TenantTraceLimit)
	case c.EnqueueRetries < 0:
		return fmt.Errorf("config: EnqueueRetries must be non-negative, got %d", c.EnqueueRetries)
	case c.TLBHitRate < 0 || c.TLBHitRate > 1:
		return fmt.Errorf("config: TLBHitRate must be in [0,1], got %v", c.TLBHitRate)
	case c.Chiplets <= 0:
		return fmt.Errorf("config: Chiplets must be positive, got %d", c.Chiplets)
	case c.SpeedupScale <= 0:
		return fmt.Errorf("config: SpeedupScale must be positive, got %v", c.SpeedupScale)
	case c.EnqueueBackoff < 0:
		return fmt.Errorf("config: EnqueueBackoff must be non-negative, got %v", c.EnqueueBackoff)
	case c.TimeoutRearms < 0:
		return fmt.Errorf("config: TimeoutRearms must be non-negative, got %d", c.TimeoutRearms)
	case c.TCPTimeout <= 0:
		return fmt.Errorf("config: TCPTimeout must be positive, got %v", c.TCPTimeout)
	case c.TCPTimeout <= c.RemoteRTT:
		// Every remote wait is at least one RTT, so a timeout at or
		// below it would fire on every armed trace — a run that only
		// measures its own timeout path.
		return fmt.Errorf("config: TCPTimeout (%v) must exceed RemoteRTT (%v)", c.TCPTimeout, c.RemoteRTT)
	}
	for k := AccelKind(0); k < NumAccelKinds; k++ {
		if c.PEMix[k] < 0 {
			return fmt.Errorf("config: PEMix[%v] must be non-negative, got %d", k, c.PEMix[k])
		}
		if c.Speedup[k] <= 0 {
			return fmt.Errorf("config: Speedup[%v] must be positive", k)
		}
		if c.ChipletOf[k] < 0 || c.ChipletOf[k] >= c.Chiplets {
			return fmt.Errorf("config: ChipletOf[%v]=%d out of range [0,%d)", k, c.ChipletOf[k], c.Chiplets)
		}
	}
	if c.ChipletOf[LdB] != 0 {
		return fmt.Errorf("config: LdB must live on the core chiplet (0), got %d", c.ChipletOf[LdB])
	}
	return nil
}

package config

import (
	"testing"
	"testing/quick"

	"accelflow/internal/sim"
)

func TestDefaultValidates(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
}

func TestDefaultMatchesTableIII(t *testing.T) {
	c := Default()
	if c.Cores != 36 {
		t.Errorf("Cores = %d, want 36", c.Cores)
	}
	if c.CPUFreqGHz != 2.4 {
		t.Errorf("CPUFreqGHz = %v, want 2.4", c.CPUFreqGHz)
	}
	if c.InputQueueEntries != 64 || c.OutputQueueEntries != 64 {
		t.Errorf("queues = %d/%d, want 64/64", c.InputQueueEntries, c.OutputQueueEntries)
	}
	if c.ADMAEngines != 10 {
		t.Errorf("ADMAEngines = %d, want 10", c.ADMAEngines)
	}
	if c.PEsPerAccel != 8 {
		t.Errorf("PEsPerAccel = %d, want 8", c.PEsPerAccel)
	}
	if c.ScratchpadKB != 64 {
		t.Errorf("ScratchpadKB = %d, want 64", c.ScratchpadKB)
	}
	if c.QueueToPadLatency != 10*sim.Nanosecond {
		t.Errorf("QueueToPadLatency = %v, want 10ns", c.QueueToPadLatency)
	}
	if c.NotifyCycles != 80 {
		t.Errorf("NotifyCycles = %d, want 80", c.NotifyCycles)
	}
	if c.MeshHopCycles != 3 || c.InterChipletCycles != 60 {
		t.Errorf("mesh/interchiplet = %d/%d, want 3/60", c.MeshHopCycles, c.InterChipletCycles)
	}
	if c.MemCtrls != 4 || c.MemGBsPerCtrl != 102.4 {
		t.Errorf("memory = %d ctrls @ %v GB/s, want 4 @ 102.4", c.MemCtrls, c.MemGBsPerCtrl)
	}
	if c.InlineDataBytes != 2048 {
		t.Errorf("InlineDataBytes = %d, want 2048", c.InlineDataBytes)
	}
}

func TestLiteratureSpeedups(t *testing.T) {
	c := Default()
	want := map[AccelKind]float64{
		TCP: 3.5, Encr: 6.6, Decr: 6.6, RPC: 20.5,
		Ser: 3.8, Dser: 3.8, Cmp: 15.2, Dcmp: 4.1, LdB: 8.1,
	}
	for k, s := range want {
		if c.Speedup[k] != s {
			t.Errorf("Speedup[%v] = %v, want %v", k, c.Speedup[k], s)
		}
	}
}

func TestAccelKindString(t *testing.T) {
	names := []string{"TCP", "Encr", "Decr", "RPC", "Ser", "Dser", "Cmp", "Dcmp", "LdB"}
	for i, want := range names {
		if got := AccelKind(i).String(); got != want {
			t.Errorf("AccelKind(%d) = %q, want %q", i, got, want)
		}
	}
	if AccelKind(200).String() != "Accel(200)" {
		t.Errorf("out-of-range kind printed %q", AccelKind(200).String())
	}
	if len(AllAccelKinds()) != int(NumAccelKinds) {
		t.Errorf("AllAccelKinds length = %d", len(AllAccelKinds()))
	}
}

func TestCycleConversion(t *testing.T) {
	c := Default()
	// 2.4 GHz -> 416.67ps, rounded to 417ps.
	if got := c.CyclePS(); got != 417*sim.Picosecond {
		t.Errorf("CyclePS = %v, want 417ps", got)
	}
	if got := c.Cycles(80); got != 80*417*sim.Picosecond {
		t.Errorf("Cycles(80) = %v", got)
	}
	if c.NotifyLatency() != c.Cycles(80) {
		t.Errorf("NotifyLatency = %v", c.NotifyLatency())
	}
}

func TestAccelCostIsCPUCostOverSpeedup(t *testing.T) {
	c := Default()
	for _, k := range AllAccelKinds() {
		cpu := c.CPUCost(k, 1024)
		acc := c.AccelCost(k, 1024)
		ratio := float64(cpu) / float64(acc)
		want := c.Speedup[k]
		if ratio < want*0.98 || ratio > want*1.02 {
			t.Errorf("%v: cpu/accel = %.2f, want ~%.2f", k, ratio, want)
		}
	}
}

func TestSpeedupScale(t *testing.T) {
	c := Default()
	base := c.AccelCost(TCP, 2048)
	c.SpeedupScale = 4
	fast := c.AccelCost(TCP, 2048)
	r := float64(base) / float64(fast)
	if r < 3.9 || r > 4.1 {
		t.Errorf("4x speedup scale changed cost by %.2fx", r)
	}
}

func TestGenerationScaling(t *testing.T) {
	ice := Default()
	hsw := Default()
	hsw.Generation = Haswell
	emr := Default()
	emr.Generation = EmeraldRapids

	// Tax ops get slower on older CPUs, faster on newer.
	if !(hsw.CPUCost(TCP, 1024) > ice.CPUCost(TCP, 1024)) {
		t.Error("Haswell tax cost should exceed IceLake")
	}
	if !(emr.CPUCost(TCP, 1024) < ice.CPUCost(TCP, 1024)) {
		t.Error("EmeraldRapids tax cost should be below IceLake")
	}
	// App logic scales more than tax (the paper's premise).
	appGain := float64(hsw.AppCost(10*sim.Microsecond)) / float64(emr.AppCost(10*sim.Microsecond))
	taxGain := float64(hsw.CPUCost(TCP, 1024)) / float64(emr.CPUCost(TCP, 1024))
	if appGain <= taxGain {
		t.Errorf("app gain %.2f should exceed tax gain %.2f across generations", appGain, taxGain)
	}
	// Accelerator hardware time is generation independent.
	if hsw.AccelCost(Ser, 1024) != emr.AccelCost(Ser, 1024) {
		t.Error("accelerator cost changed with CPU generation")
	}
	if len(AllGenerations()) != 5 {
		t.Errorf("AllGenerations = %d, want 5", len(AllGenerations()))
	}
}

func TestChipletPlans(t *testing.T) {
	for _, p := range AllChipletPlans() {
		c := Default()
		if err := c.ApplyChipletPlan(p); err != nil {
			t.Fatalf("plan %v: %v", p, err)
		}
		if c.Chiplets != int(p) {
			t.Errorf("plan %v set %d chiplets", p, c.Chiplets)
		}
		if err := c.Validate(); err != nil {
			t.Errorf("plan %v produced invalid config: %v", p, err)
		}
		if c.ChipletOf[LdB] != 0 {
			t.Errorf("plan %v moved LdB off the core chiplet", p)
		}
	}
	c := Default()
	if err := c.ApplyChipletPlan(ChipletPlan(5)); err == nil {
		t.Error("unknown plan accepted")
	}
}

func TestSixChipletSeparation(t *testing.T) {
	c := Default()
	if err := c.ApplyChipletPlan(SixChiplets); err != nil {
		t.Fatal(err)
	}
	// TCP, (De)Encr, RPC, (De)Ser, (De)Cmp in separate chiplets.
	if c.ChipletOf[TCP] == c.ChipletOf[Encr] || c.ChipletOf[Encr] == c.ChipletOf[RPC] ||
		c.ChipletOf[RPC] == c.ChipletOf[Ser] || c.ChipletOf[Ser] == c.ChipletOf[Cmp] {
		t.Errorf("six-chiplet plan did not separate groups: %v", c.ChipletOf)
	}
	if c.ChipletOf[Encr] != c.ChipletOf[Decr] || c.ChipletOf[Ser] != c.ChipletOf[Dser] ||
		c.ChipletOf[Cmp] != c.ChipletOf[Dcmp] {
		t.Errorf("paired accelerators split across chiplets: %v", c.ChipletOf)
	}
}

func TestValidateCatchesBadConfigs(t *testing.T) {
	mutations := []func(*Config){
		func(c *Config) { c.Cores = 0 },
		func(c *Config) { c.CPUFreqGHz = 0 },
		func(c *Config) { c.PEsPerAccel = -1 },
		func(c *Config) { c.InputQueueEntries = 0 },
		func(c *Config) { c.ADMAEngines = 0 },
		func(c *Config) { c.TLBHitRate = 1.5 },
		func(c *Config) { c.Chiplets = 0 },
		func(c *Config) { c.SpeedupScale = 0 },
		func(c *Config) { c.Speedup[RPC] = 0 },
		func(c *Config) { c.ChipletOf[TCP] = 9 },
		func(c *Config) { c.ChipletOf[LdB] = 1; c.Chiplets = 2 },
	}
	for i, m := range mutations {
		c := Default()
		m(c)
		if err := c.Validate(); err == nil {
			t.Errorf("mutation %d not caught by Validate", i)
		}
	}
}

func TestCloneIsIndependent(t *testing.T) {
	a := Default()
	b := a.Clone()
	b.Cores = 1
	b.Speedup[TCP] = 99
	if a.Cores != 36 || a.Speedup[TCP] != 3.5 {
		t.Error("Clone shares state with original")
	}
}

// Property: CPU cost is monotonically non-decreasing in payload size for
// every kind.
func TestCPUCostMonotone(t *testing.T) {
	c := Default()
	f := func(a, b uint16, kind uint8) bool {
		k := AccelKind(kind % uint8(NumAccelKinds))
		lo, hi := int(a), int(b)
		if lo > hi {
			lo, hi = hi, lo
		}
		return c.CPUCost(k, lo) <= c.CPUCost(k, hi) && c.AccelCost(k, lo) <= c.AccelCost(k, hi)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

package check

import (
	"errors"
	"strings"
	"testing"

	"accelflow/internal/sim"
)

// TestNilCheckerNoOps pins the disabled-path contract: every method on
// a nil *Checker must be a safe no-op, which is what lets call sites
// stay unconditional.
func TestNilCheckerNoOps(t *testing.T) {
	var c *Checker
	if c.Enabled() {
		t.Fatal("nil checker reports enabled")
	}
	c.Event(5)
	c.RequestAdmitted()
	c.RequestDone(true, true)
	c.CheckConservation(10, 1, 0, 0)
	c.CheckResource(nil, 10)
	c.Violationf("rule", "res", 0, "boom")
	if got := c.Violations(); got != nil {
		t.Fatalf("nil checker returned violations: %v", got)
	}
	if err := c.Err(); err != nil {
		t.Fatalf("nil checker returned error: %v", err)
	}
	if c.Events() != 0 {
		t.Fatal("nil checker counted events")
	}
}

func TestEventMonotonicity(t *testing.T) {
	c := New()
	c.Event(1)
	c.Event(5)
	c.Event(5) // equal timestamps are legal (tie-broken by seq)
	if err := c.Err(); err != nil {
		t.Fatalf("monotone sequence flagged: %v", err)
	}
	c.Event(4)
	vs := c.Violations()
	if len(vs) != 1 || vs[0].Rule != "monotonic-time" {
		t.Fatalf("want one monotonic-time violation, got %v", vs)
	}
	if c.Events() != 4 {
		t.Fatalf("want 4 observed events, got %d", c.Events())
	}
}

func TestViolationCapAndRendering(t *testing.T) {
	c := New()
	for i := 0; i < maxReported+40; i++ {
		c.Violationf("conservation", "", sim.Time(i), "violation %d", i)
	}
	if got := len(c.Violations()); got != maxReported {
		t.Fatalf("stored %d violations, cap is %d", got, maxReported)
	}
	var f *Failure
	if !errors.As(c.Err(), &f) {
		t.Fatalf("Err() is %T, want *Failure", c.Err())
	}
	msg := f.Error()
	if !strings.Contains(msg, "invariant violation(s)") || !strings.Contains(msg, "violation 0") {
		t.Fatalf("unexpected rendering: %s", msg)
	}
	one := Violation{Rule: "littles-law", Resource: "cores", At: 7, Detail: "off by one"}
	if s := one.Error(); !strings.Contains(s, "littles-law") || !strings.Contains(s, "cores") {
		t.Fatalf("unexpected single-violation rendering: %s", s)
	}
}

func TestConservation(t *testing.T) {
	// Clean: 3 admitted, 3 completed (1 timed out, 1 fell back), and the
	// runner's independent counters agree.
	c := New()
	for i := 0; i < 3; i++ {
		c.RequestAdmitted()
	}
	c.RequestDone(false, false)
	c.RequestDone(true, false)
	c.RequestDone(false, true)
	c.CheckConservation(100, 3, 1, 1)
	if err := c.Err(); err != nil {
		t.Fatalf("clean accounting flagged: %v", err)
	}

	// In-flight at the horizon.
	c = New()
	c.RequestAdmitted()
	c.RequestAdmitted()
	c.RequestDone(false, false)
	c.CheckConservation(100, 1, 0, 0)
	wantRule(t, c, "conservation")

	// Runner disagrees with engine.
	c = New()
	c.RequestAdmitted()
	c.RequestDone(false, false)
	c.CheckConservation(100, 2, 0, 0)
	wantRule(t, c, "conservation")

	// Outcome counters disagree.
	c = New()
	c.RequestAdmitted()
	c.RequestDone(true, false)
	c.CheckConservation(100, 1, 0, 0)
	wantRule(t, c, "conservation")
}

func wantRule(t *testing.T, c *Checker, rule string) {
	t.Helper()
	for _, v := range c.Violations() {
		if v.Rule == rule {
			return
		}
	}
	t.Fatalf("no %q violation recorded; got %v", rule, c.Violations())
}

// TestCheckResourceClean runs a real queueing scenario through a
// sim.Resource and asserts the full per-resource suite passes.
func TestCheckResourceClean(t *testing.T) {
	k := sim.NewKernel()
	r := sim.NewResource(k, "pe", 2, sim.FIFO)
	for i := 0; i < 6; i++ {
		at := sim.Time(i) * 3 * sim.Nanosecond
		k.At(at, func() { r.Do(10*sim.Nanosecond, nil) })
	}
	k.Run()
	c := New()
	c.CheckResource(r, k.Now())
	if err := c.Err(); err != nil {
		t.Fatalf("clean resource flagged: %v", err)
	}
}

// TestBrokenResourceModelCaught is the deliberately broken resource
// model: a real resource whose accounting is corrupted after the run,
// standing in for a model with a utilization/accounting bug. The
// checker must catch each class of corruption.
func TestBrokenResourceModelCaught(t *testing.T) {
	run := func() (*sim.Kernel, *sim.Resource) {
		k := sim.NewKernel()
		r := sim.NewResource(k, "pe", 1, sim.FIFO)
		for i := 0; i < 4; i++ {
			at := sim.Time(i) * 2 * sim.Nanosecond
			k.At(at, func() { r.Do(8*sim.Nanosecond, nil) })
		}
		k.Run()
		return k, r
	}

	// Utilization accounting bug: the model double-charges busy time, so
	// the charged total both disagrees with the occupancy integral and
	// exceeds servers x elapsed.
	k, r := run()
	r.BusyTime *= 2
	c := New()
	c.CheckResource(r, k.Now())
	wantRule(t, c, "busy-accounting")
	wantRule(t, c, "utilization")

	// Wait-time accounting bug: lost queueing delay breaks the exact
	// Little's-law identity ∫Q dt == ΣW.
	k, r = run()
	r.WaitTime -= 1 * sim.Nanosecond
	c = New()
	c.CheckResource(r, k.Now())
	wantRule(t, c, "littles-law")
}

// TestLittlesLawHoldsMidRun pins that the exact-integer identity holds
// at arbitrary instants, not just at quiescence.
func TestLittlesLawHoldsMidRun(t *testing.T) {
	k := sim.NewKernel()
	r := sim.NewResource(k, "q", 1, sim.FIFO)
	k.At(0, func() {
		r.Do(10*sim.Nanosecond, nil)
		r.Do(10*sim.Nanosecond, nil)
		r.Do(10*sim.Nanosecond, nil)
	})
	for _, at := range []sim.Time{5 * sim.Nanosecond, 15 * sim.Nanosecond, 25 * sim.Nanosecond} {
		k.At(at, func() {
			if area, want := r.QueueArea(), r.WaitTime+r.QueuedWaitResidual(); area != want {
				t.Errorf("at %v: ∫Q dt = %v, accrued waits %v", k.Now(), area, want)
			}
		})
	}
	k.Run()
}

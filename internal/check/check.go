// Package check is the runtime invariant-checking subsystem: a
// nil-safe Checker that the engine, kernel, and workload runner feed
// with read-only observations, verifying the queueing physics the
// AccelFlow results rest on — event-time monotonicity, request
// conservation, per-resource utilization bounds, queue-length
// non-negativity, and Little's law — plus the closed-form M/D/1 and
// M/M/k oracles (oracle.go) and the seed-derived config-space
// generator (gen.go) behind the property harness.
//
// Like the obs package, every Checker method no-ops on a nil
// receiver, so the disabled path costs one nil check per call site
// and a run without a checker is bit-identical to one before the
// package existed. Checkers only read counters and timestamps; they
// never touch RNG streams or schedule events, so an attached checker
// cannot change simulation results either.
package check

import (
	"fmt"
	"strings"

	"accelflow/internal/sim"
)

// Violation is one detected invariant breach.
type Violation struct {
	// Rule names the invariant, e.g. "monotonic-time", "littles-law".
	Rule string
	// Resource names the component the rule was evaluated on (empty
	// for run-global rules like conservation).
	Resource string
	// At is the simulated time of detection.
	At sim.Time
	// Detail is a human-readable account of the breach.
	Detail string
}

// Error renders the violation; Violation satisfies the error
// interface so single breaches can propagate directly.
func (v Violation) Error() string {
	if v.Resource == "" {
		return fmt.Sprintf("check: %s at %v: %s", v.Rule, v.At, v.Detail)
	}
	return fmt.Sprintf("check: %s on %s at %v: %s", v.Rule, v.Resource, v.At, v.Detail)
}

// Failure wraps all violations of one run into a single error.
type Failure struct {
	Violations []Violation
}

func (f *Failure) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "check: %d invariant violation(s):", len(f.Violations))
	for i, v := range f.Violations {
		if i == maxReported {
			fmt.Fprintf(&b, "\n  ... and %d more", len(f.Violations)-maxReported)
			break
		}
		b.WriteString("\n  ")
		b.WriteString(v.Error())
	}
	return b.String()
}

// maxReported caps both the stored violation list and the rendered
// error, so a systematically broken model cannot balloon memory.
const maxReported = 64

// Checker accumulates runtime observations and verifies invariants.
// The zero value is not usable; build with New. A nil *Checker is the
// disabled state: every method no-ops.
type Checker struct {
	violations []Violation
	dropped    uint64

	// Monotonicity state.
	lastEvent sim.Time
	events    uint64

	// Conservation counters fed by the engine.
	admitted  uint64
	completed uint64
	timedOut  uint64
	fellBack  uint64
}

// New returns an enabled checker.
func New() *Checker { return &Checker{} }

// Enabled reports whether the checker records (false on nil).
func (c *Checker) Enabled() bool { return c != nil }

// Violationf records one violation. Exported so component-specific
// end-of-run checks (engine.CheckEnd) can report through the same
// structured channel.
func (c *Checker) Violationf(rule, resource string, at sim.Time, format string, args ...interface{}) {
	if c == nil {
		return
	}
	if len(c.violations) >= maxReported {
		c.dropped++
		return
	}
	c.violations = append(c.violations, Violation{
		Rule: rule, Resource: resource, At: at,
		Detail: fmt.Sprintf(format, args...),
	})
}

// Violations returns the recorded breaches (nil-safe, empty when none).
func (c *Checker) Violations() []Violation {
	if c == nil {
		return nil
	}
	return c.violations
}

// Err returns nil when no invariant was violated, else a *Failure
// wrapping every recorded violation.
func (c *Checker) Err() error {
	if c == nil || len(c.violations) == 0 {
		return nil
	}
	return &Failure{Violations: c.violations}
}

// Event is the kernel hook (sim.Kernel.OnEvent): it verifies that
// executed event timestamps never move backwards. The kernel's At
// already panics on scheduling into the past; this guards the
// execution order itself, which is what causality rests on.
func (c *Checker) Event(at sim.Time) {
	if c == nil {
		return
	}
	if at < c.lastEvent {
		c.Violationf("monotonic-time", "kernel", at,
			"event at %v executed after event at %v", at, c.lastEvent)
	}
	c.lastEvent = at
	c.events++
}

// Events reports how many kernel events the checker observed.
func (c *Checker) Events() uint64 {
	if c == nil {
		return 0
	}
	return c.events
}

// RequestAdmitted counts one request entering the engine.
func (c *Checker) RequestAdmitted() {
	if c == nil {
		return
	}
	c.admitted++
}

// RequestDone counts one request reaching its completion callback.
// Timed-out and fallback requests still complete in this engine (the
// recovery path finishes them on the CPU), so they are subsets of the
// completed count, not alternatives to it.
func (c *Checker) RequestDone(timedOut, fellBack bool) {
	if c == nil {
		return
	}
	c.completed++
	if timedOut {
		c.timedOut++
	}
	if fellBack {
		c.fellBack++
	}
}

// CheckConservation verifies request conservation at the run horizon
// against an independent accounting (the workload runner's result
// counters): admitted = completed + in-flight, with zero in flight at
// a drained horizon, and the timed-out/fallback subsets agreeing.
func (c *Checker) CheckConservation(at sim.Time, completed, timedOut, fellBack uint64) {
	if c == nil {
		return
	}
	if c.completed > c.admitted {
		c.Violationf("conservation", "", at,
			"completed %d requests but only admitted %d", c.completed, c.admitted)
	}
	if inflight := c.admitted - c.completed; c.completed <= c.admitted && inflight != 0 {
		c.Violationf("conservation", "", at,
			"%d request(s) admitted but still in flight at a drained horizon (admitted %d, completed %d)",
			inflight, c.admitted, c.completed)
	}
	if c.completed != completed {
		c.Violationf("conservation", "", at,
			"engine completed %d requests, runner recorded %d", c.completed, completed)
	}
	if c.timedOut != timedOut || c.fellBack != fellBack {
		c.Violationf("conservation", "", at,
			"outcome counters disagree: engine timedOut=%d fellBack=%d, runner timedOut=%d fellBack=%d",
			c.timedOut, c.fellBack, timedOut, fellBack)
	}
	if c.timedOut > c.completed || c.fellBack > c.completed {
		c.Violationf("conservation", "", at,
			"outcome subsets exceed completions: timedOut=%d fellBack=%d completed=%d",
			c.timedOut, c.fellBack, c.completed)
	}
}

// CheckResource verifies one sim.Resource's queueing physics at the
// end of a run (elapsed = the kernel's final time):
//
//   - queue-length non-negativity and drain (a drained kernel left
//     work behind only if accounting leaked),
//   - busy-time conservation: the up-front BusyTime charge must equal
//     the real occupancy integral once every hold has elapsed,
//   - utilization <= 1: busy server-time cannot exceed servers x
//     elapsed (using the run's maximum server count, so mid-run
//     SetServers fault windows keep the bound valid),
//   - Little's law in exact integer form: ∫Q(t)dt == ΣW, i.e.
//     QueueArea == WaitTime + QueuedWaitResidual, which is L = λW
//     multiplied through by elapsed with zero tolerance.
func (c *Checker) CheckResource(r *sim.Resource, elapsed sim.Time) {
	if c == nil || r == nil {
		return
	}
	if r.QueueLen() < 0 {
		c.Violationf("queue-nonnegative", r.Name, elapsed,
			"queue length %d is negative", r.QueueLen())
	}
	if r.InService() < 0 {
		c.Violationf("queue-nonnegative", r.Name, elapsed,
			"in-service count %d is negative", r.InService())
	}
	if r.InService() > r.MaxServers() {
		c.Violationf("utilization", r.Name, elapsed,
			"%d tasks in service on at most %d servers", r.InService(), r.MaxServers())
	}
	if r.Idle() {
		// Busy-time conservation only holds at quiescence: BusyTime is
		// charged up front, BusyArea accrues in real time.
		if r.BusyTime != r.BusyArea() {
			c.Violationf("busy-accounting", r.Name, elapsed,
				"charged busy-time %v != occupied server-time %v at quiescence",
				r.BusyTime, r.BusyArea())
		}
	}
	if elapsed > 0 {
		bound := sim.Time(r.MaxServers()) * elapsed
		if r.BusyArea() > bound {
			c.Violationf("utilization", r.Name, elapsed,
				"occupied server-time %v exceeds %d server(s) x %v elapsed",
				r.BusyArea(), r.MaxServers(), elapsed)
		}
		// The up-front BusyTime charge can run ahead of wall clock while
		// holds are in flight, but once the resource is idle every charge
		// has elapsed, so utilization > 1 there is an accounting bug.
		if r.Idle() && r.BusyTime > bound {
			c.Violationf("utilization", r.Name, elapsed,
				"charged busy-time %v exceeds %d server(s) x %v elapsed",
				r.BusyTime, r.MaxServers(), elapsed)
		}
	}
	if area, want := r.QueueArea(), r.WaitTime+r.QueuedWaitResidual(); area != want {
		c.Violationf("littles-law", r.Name, elapsed,
			"∫Q dt = %v but accrued waits sum to %v (L=λW violated)", area, want)
	}
}

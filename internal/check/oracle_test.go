package check

import (
	"math"
	"testing"

	"accelflow/internal/sim"
)

// TestErlangC pins the closed form against hand-checkable values.
func TestErlangC(t *testing.T) {
	// k=1: C(1, a) reduces to a exactly.
	for _, a := range []float64{0.1, 0.3, 0.5, 0.8} {
		if got := ErlangC(1, a); math.Abs(got-a) > 1e-12 {
			t.Errorf("ErlangC(1, %v) = %v, want %v", a, got, a)
		}
	}
	// k=2, a=1 (ρ=0.5): the textbook wait probability is 1/3.
	if got, want := ErlangC(2, 1.0), 1.0/3.0; math.Abs(got-want) > 1e-12 {
		t.Errorf("ErlangC(2, 1) = %v, want %v", got, want)
	}
	// Degenerate and overloaded corners.
	if ErlangC(0, 0.5) != 0 || ErlangC(2, 0) != 0 {
		t.Error("degenerate ErlangC inputs must return 0")
	}
	if ErlangC(2, 2.5) != 1 {
		t.Error("overloaded ErlangC must return 1")
	}
}

func TestClosedFormCorners(t *testing.T) {
	if MD1MeanWait(0, sim.Microsecond) != 0 || MD1MeanWait(2e6, sim.Microsecond) != 0 {
		t.Error("degenerate/unstable M/D/1 must return 0")
	}
	if MMkMeanWait(0, sim.Microsecond, 2) != 0 || MMkMeanWait(3e6, sim.Microsecond, 2) != 0 {
		t.Error("degenerate/unstable M/M/k must return 0")
	}
	// M/M/1 via the k=1 path equals ρS/(1-ρ).
	s := sim.Microsecond
	lambda := 0.5e6 // ρ = 0.5
	want := 1.0e-6  // 0.5*1us/(1-0.5) = 1us
	if got := MMkMeanWait(lambda, s, 1).Seconds(); math.Abs(got-want) > 1e-12 {
		t.Errorf("MM1 mean wait = %v s, want %v s", got, want)
	}
}

// simQueue drives a bare kernel + resource as a G/G/k queue: Poisson
// arrivals at lambda (per second), service times drawn by draw, k
// servers. Returns the mean observed queueing wait.
func simQueue(t *testing.T, seed int64, lambda float64, k int, n int, draw func(*sim.RNG) sim.Time) sim.Time {
	t.Helper()
	kern := sim.NewKernel()
	r := sim.NewResource(kern, "oracle", k, sim.FIFO)
	arr := sim.NewRNG(sim.DeriveSeed(seed, "oracle/arrivals"))
	svc := sim.NewRNG(sim.DeriveSeed(seed, "oracle/service"))
	gap := sim.Time(math.Round(float64(sim.Second) / lambda))
	at := sim.Time(0)
	for i := 0; i < n; i++ {
		at += arr.Exp(gap)
		hold := draw(svc)
		kern.At(at, func() { r.Do(hold, nil) })
	}
	kern.Run()
	if int(r.TaskCount) != n {
		t.Fatalf("ran %d tasks, want %d", r.TaskCount, n)
	}
	// The invariant suite must hold on the bare oracle queue too.
	c := New()
	c.CheckResource(r, kern.Now())
	if err := c.Err(); err != nil {
		t.Fatalf("oracle queue violated invariants: %v", err)
	}
	return r.MeanWait()
}

// relErr is the simulated-vs-analytic relative error.
func relErr(got, want sim.Time) float64 {
	return math.Abs(float64(got)-float64(want)) / float64(want)
}

// TestDifferentialMD1 compares the simulated single-server queue with
// deterministic service against the Pollaczek–Khinchine M/D/1 mean
// wait across utilization levels. The tolerance (documented in
// DESIGN.md §8) covers finite-sample noise at the fixed seed.
func TestDifferentialMD1(t *testing.T) {
	service := sim.Microsecond
	cases := []struct {
		rho float64
		n   int
		tol float64
	}{
		{0.3, 30000, 0.05},
		{0.6, 30000, 0.05},
		{0.8, 60000, 0.08},
	}
	for _, tc := range cases {
		lambda := tc.rho / service.Seconds()
		got := simQueue(t, 11, lambda, 1, tc.n, func(*sim.RNG) sim.Time { return service })
		want := MD1MeanWait(lambda, service)
		if e := relErr(got, want); e > tc.tol {
			t.Errorf("M/D/1 ρ=%.1f: simulated mean wait %v vs closed form %v (rel err %.3f > %.2f)",
				tc.rho, got, want, e, tc.tol)
		}
	}
}

// TestDifferentialMMk compares the simulated multi-server queue with
// exponential service against the Erlang-C M/M/k mean wait.
func TestDifferentialMMk(t *testing.T) {
	service := sim.Microsecond
	cases := []struct {
		k   int
		rho float64
		n   int
		tol float64
	}{
		{1, 0.6, 60000, 0.08},
		{4, 0.6, 60000, 0.08},
	}
	for _, tc := range cases {
		lambda := tc.rho * float64(tc.k) / service.Seconds()
		got := simQueue(t, 23, lambda, tc.k, tc.n, func(g *sim.RNG) sim.Time { return g.Exp(service) })
		want := MMkMeanWait(lambda, service, tc.k)
		if e := relErr(got, want); e > tc.tol {
			t.Errorf("M/M/%d ρ=%.1f: simulated mean wait %v vs closed form %v (rel err %.3f > %.2f)",
				tc.k, tc.rho, got, want, e, tc.tol)
		}
	}
}

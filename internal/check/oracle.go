// The differential oracle: closed-form queueing results the simulated
// Resource is compared against at low-to-moderate load. Pinning the
// queue model to textbook M/D/1 and M/M/k answers is what separates
// "the simulator is internally consistent" from "the simulator gets
// the physics right" — every orchestration result in the paper is
// downstream of these waits.
package check

import (
	"math"

	"accelflow/internal/sim"
)

// MD1MeanWait returns the M/D/1 mean queueing delay (excluding
// service) for Poisson arrivals at lambda per second into a single
// server with deterministic service time: Wq = ρ·S / (2(1-ρ)),
// the Pollaczek–Khinchine formula with zero service variance.
// It returns 0 for an unstable or degenerate system (ρ >= 1).
func MD1MeanWait(lambda float64, service sim.Time) sim.Time {
	s := service.Seconds()
	rho := lambda * s
	if rho <= 0 || rho >= 1 {
		return 0
	}
	wq := rho * s / (2 * (1 - rho))
	return sim.Time(math.Round(wq * float64(sim.Second)))
}

// ErlangC returns the probability an arrival waits in an M/M/k queue
// with offered load a = λ/μ Erlangs on k servers (the Erlang-C
// formula). It returns 1 for an overloaded system (a >= k) and 0 for
// degenerate inputs.
func ErlangC(k int, a float64) float64 {
	if k <= 0 || a <= 0 {
		return 0
	}
	if a >= float64(k) {
		return 1
	}
	// Compute Σ_{n=0}^{k-1} a^n/n! and a^k/k! iteratively to stay
	// stable for moderate k without explicit factorials.
	term := 1.0 // a^0/0!
	sum := 1.0
	for n := 1; n < k; n++ {
		term *= a / float64(n)
		sum += term
	}
	top := term * a / float64(k) // a^k/k!
	rho := a / float64(k)
	c := top / (1 - rho)
	return c / (sum + c)
}

// MMkMeanWait returns the M/M/k mean queueing delay (excluding
// service) for Poisson arrivals at lambda per second into k servers
// with exponential service of the given mean:
// Wq = C(k, a) / (kμ - λ). Returns 0 when unstable or degenerate.
func MMkMeanWait(lambda float64, meanService sim.Time, k int) sim.Time {
	s := meanService.Seconds()
	if lambda <= 0 || s <= 0 || k <= 0 {
		return 0
	}
	mu := 1 / s
	a := lambda / mu
	if a >= float64(k) {
		return 0
	}
	wq := ErlangC(k, a) / (float64(k)*mu - lambda)
	return sim.Time(math.Round(wq * float64(sim.Second)))
}

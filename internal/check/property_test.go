// The property-based harness: generated scenarios (gen.go) are
// materialized into full simulator runs with the invariant checker
// attached, plus metamorphic properties relating runs to each other.
// It lives in the external check_test package so it can drive
// engine/workload without creating an import cycle (check itself is
// imported by the engine).
//
// Iteration budget and repro artifacts are flag-controlled:
//
//	go test ./internal/check -prop.iters=250 -prop.artifacts=/tmp/repros
//
// The nightly CI job runs 10x the PR-time budget and uploads any
// written repro files; each carries the (baseSeed, index) pair that
// regenerates the failing scenario exactly.
package check_test

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"accelflow/internal/check"
	"accelflow/internal/config"
	"accelflow/internal/control"
	"accelflow/internal/engine"
	"accelflow/internal/fault"
	"accelflow/internal/services"
	"accelflow/internal/sim"
	"accelflow/internal/tune"
	"accelflow/internal/workload"
)

var (
	propIters = flag.Int("prop.iters", 25, "property-harness scenarios per run (nightly uses 10x)")
	propSeed  = flag.Int64("prop.seed", 1, "property-harness base seed")
	propArt   = flag.String("prop.artifacts", "", "directory for violation repro artifacts (empty = none)")
)

// policyByName maps the generator's plain-data policy names onto
// engine policies; keeping the mapping here is what keeps the check
// package import-cycle-free.
func policyByName(t *testing.T, name string) engine.Policy {
	t.Helper()
	switch name {
	case "accelflow":
		return engine.AccelFlow()
	case "relief":
		return engine.RELIEF()
	case "cohort":
		return engine.Cohort(engine.DefaultCohortPairs())
	case "cpucentric":
		return engine.CPUCentric()
	case "nonacc":
		return engine.NonAcc()
	}
	t.Fatalf("generator emitted unknown policy %q", name)
	return engine.Policy{}
}

// specFor materializes one generated scenario into a runnable spec
// with a fresh checker attached.
func specFor(t *testing.T, sc check.Scenario) *workload.RunSpec {
	t.Helper()
	return &workload.RunSpec{
		Config:  sc.Cfg,
		Policy:  policyByName(t, sc.PolicyName),
		Sources: workload.Mix(services.SocialNetwork(), sc.LoadScale, sc.Requests),
		Seed:    sc.Seed,
		Faults:  sc.Faults,
		Check:   check.New(),
	}
}

// repro is the artifact written for a failing scenario: the two
// integers regenerate it exactly via check.GenScenario.
type repro struct {
	BaseSeed int64  `json:"baseSeed"`
	Index    int    `json:"index"`
	RunSeed  int64  `json:"runSeed"`
	Policy   string `json:"policy"`
	Error    string `json:"error"`
}

func writeRepro(t *testing.T, sc check.Scenario, runErr error) {
	t.Helper()
	if *propArt == "" {
		return
	}
	if err := os.MkdirAll(*propArt, 0o755); err != nil {
		t.Errorf("repro dir: %v", err)
		return
	}
	r := repro{BaseSeed: sc.BaseSeed, Index: sc.Index, RunSeed: sc.Seed,
		Policy: sc.PolicyName, Error: runErr.Error()}
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		t.Errorf("repro marshal: %v", err)
		return
	}
	path := filepath.Join(*propArt, fmt.Sprintf("repro-seed%d-idx%d.json", sc.BaseSeed, sc.Index))
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		t.Errorf("repro write: %v", err)
	}
}

// TestPropertyInvariants is the harness core: every generated scenario
// runs with the full invariant suite attached; any violation fails the
// test and (when -prop.artifacts is set) writes a repro file.
func TestPropertyInvariants(t *testing.T) {
	if testing.Short() {
		t.Skip("property harness runs full simulations")
	}
	for i := 0; i < *propIters; i++ {
		sc := check.GenScenario(*propSeed, i)
		if err := sc.Validate(); err != nil {
			t.Fatalf("generator emitted invalid scenario: %v", err)
		}
		spec := specFor(t, sc)
		if _, err := spec.Run(); err != nil {
			writeRepro(t, sc, err)
			t.Errorf("scenario (seed %d, index %d, policy %s): %v",
				sc.BaseSeed, sc.Index, sc.PolicyName, err)
		}
	}
}

// runMix runs the SocialNetwork mix under AccelFlow at the given load
// scale with the invariant checker attached, on a config mutated by
// tweak (nil = default).
func runMix(t *testing.T, loadScale float64, seed int64, tweak func(*config.Config)) *workload.RunResult {
	t.Helper()
	cfg := config.Default()
	if tweak != nil {
		tweak(cfg)
	}
	spec := &workload.RunSpec{
		Config:  cfg,
		Policy:  engine.AccelFlow(),
		Sources: workload.Mix(services.SocialNetwork(), loadScale, 400),
		Seed:    seed,
		Check:   check.New(),
	}
	res, err := spec.Run()
	if err != nil {
		t.Fatalf("load %.2f: %v", loadScale, err)
	}
	return res
}

// TestMetamorphicLoadScaling: scaling arrival rates down at fixed
// capacity must not increase mean latency. Arrival gaps are drawn from
// the same seeded streams at every scale, so only the spacing changes;
// the slack absorbs second-order effects (timeout/retry paths shifting
// which requests contend).
func TestMetamorphicLoadScaling(t *testing.T) {
	if testing.Short() {
		t.Skip("metamorphic properties run full simulations")
	}
	const slack = 1.05
	prev := runMix(t, 1.5, 9, nil)
	for _, scale := range []float64{0.75, 0.3} {
		cur := runMix(t, scale, 9, nil)
		if cur.All.Mean().Micros() > prev.All.Mean().Micros()*slack {
			t.Errorf("mean latency rose when load fell: %.1fus at lower load vs %.1fus at higher",
				cur.All.Mean().Micros(), prev.All.Mean().Micros())
		}
		prev = cur
	}
}

// TestMetamorphicMorePEs: adding PEs at identical request streams must
// not worsen the P99 beyond noise — capacity can only relieve queues.
func TestMetamorphicMorePEs(t *testing.T) {
	if testing.Short() {
		t.Skip("metamorphic properties run full simulations")
	}
	const slack = 1.10
	few := runMix(t, 1.2, 17, func(c *config.Config) { c.PEsPerAccel = 2 })
	many := runMix(t, 1.2, 17, func(c *config.Config) { c.PEsPerAccel = 8 })
	if many.All.P99().Micros() > few.All.P99().Micros()*slack {
		t.Errorf("P99 worsened with more PEs: 8 PEs %.1fus vs 2 PEs %.1fus",
			many.All.P99().Micros(), few.All.P99().Micros())
	}
}

// TestPropertyShardedEquivalence: the sharded execution path is a
// metamorphic identity — every generated scenario, including its fault
// spec (whose apply/revert windows resize resources mid-run), must
// produce the same results through workload.RunSpec.Shards as through
// the serial kernel, with the full invariant suite attached to both
// runs. The budget is capped below the main harness's because each
// scenario simulates twice.
func TestPropertyShardedEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("property harness runs full simulations")
	}
	iters := *propIters
	if iters > 10 {
		iters = 10
	}
	for i := 0; i < iters; i++ {
		sc := check.GenScenario(*propSeed, i)
		serial := specFor(t, sc)
		a, err := serial.Run()
		if err != nil {
			writeRepro(t, sc, err)
			t.Fatalf("serial scenario (seed %d, index %d): %v", sc.BaseSeed, sc.Index, err)
		}
		sharded := specFor(t, sc)
		sharded.Shards = 4
		b, err := sharded.Run()
		if err != nil {
			writeRepro(t, sc, err)
			t.Fatalf("sharded scenario (seed %d, index %d): %v", sc.BaseSeed, sc.Index, err)
		}
		if a.Completed != b.Completed || a.TimedOut != b.TimedOut || a.FellBack != b.FellBack ||
			a.Elapsed != b.Elapsed || a.All.Mean() != b.All.Mean() || a.All.P99() != b.All.P99() ||
			a.Engine.K.Processed() != b.Engine.K.Processed() {
			t.Errorf("scenario (seed %d, index %d, policy %s): sharded run diverged from serial: "+
				"serial (%d/%d/%d, %v, mean %v, p99 %v, %d events) vs sharded (%d/%d/%d, %v, mean %v, p99 %v, %d events)",
				sc.BaseSeed, sc.Index, sc.PolicyName,
				a.Completed, a.TimedOut, a.FellBack, a.Elapsed, a.All.Mean(), a.All.P99(), a.Engine.K.Processed(),
				b.Completed, b.TimedOut, b.FellBack, b.Elapsed, b.All.Mean(), b.All.P99(), b.Engine.K.Processed())
		}
	}
}

// TestPropertyFleetCheckedSharded drives generated scenarios through a
// checked 3-replica fleet at shard counts 1 and 4. Fault windows here
// genuinely cross epoch boundaries: each replica's injector resizes
// its resources (SetServers / SetEngines) at window edges scheduled
// independently of the coordinator's ~RTT/2 epochs, so apply and
// revert land in different epochs while mail is in flight. Invariants
// must hold on every replica and the merged results must be
// worker-count invariant.
func TestPropertyFleetCheckedSharded(t *testing.T) {
	if testing.Short() {
		t.Skip("property harness runs full simulations")
	}
	iters := *propIters
	if iters > 6 {
		iters = 6
	}
	const replicas = 3
	for i := 0; i < iters; i++ {
		sc := check.GenScenario(*propSeed, i)
		run := func(shards int) *workload.FleetResult {
			spec := &workload.FleetSpec{
				Config:   sc.Cfg,
				Policy:   policyByName(t, sc.PolicyName),
				Sources:  workload.Mix(services.SocialNetwork(), sc.LoadScale*replicas, sc.Requests),
				Seed:     sc.Seed,
				Replicas: replicas,
				Shards:   shards,
				Faults:   sc.Faults,
				Check:    true,
			}
			res, err := spec.Run()
			if err != nil {
				writeRepro(t, sc, err)
				t.Fatalf("fleet scenario (seed %d, index %d, shards %d): %v",
					sc.BaseSeed, sc.Index, shards, err)
			}
			return res
		}
		a, b := run(1), run(4)
		if a.Merged.Completed != b.Merged.Completed || a.Merged.TimedOut != b.Merged.TimedOut ||
			a.Merged.FellBack != b.Merged.FellBack || a.Merged.Elapsed != b.Merged.Elapsed ||
			a.Merged.All.Mean() != b.Merged.All.Mean() || a.Merged.All.P99() != b.Merged.All.P99() ||
			a.Events != b.Events || a.Epochs != b.Epochs || a.Mail != b.Mail {
			t.Errorf("fleet scenario (seed %d, index %d, policy %s): shards=1 and shards=4 diverged",
				sc.BaseSeed, sc.Index, sc.PolicyName)
		}
		for ri := range a.Routed {
			if a.Routed[ri] != b.Routed[ri] {
				t.Errorf("fleet scenario (seed %d, index %d): replica %d routed %d vs %d",
					sc.BaseSeed, sc.Index, ri, a.Routed[ri], b.Routed[ri])
			}
		}
	}
}

// TestMetamorphicFaultRateZero: a rate-0, loss-0 fault spec attaches
// the injector but schedules nothing, so results must be bit-identical
// to running with no injector at all (the zero-overhead contract the
// resilience experiment's golden values rest on).
func TestMetamorphicFaultRateZero(t *testing.T) {
	if testing.Short() {
		t.Skip("metamorphic properties run full simulations")
	}
	base := &workload.RunSpec{
		Config:  config.Default(),
		Policy:  engine.AccelFlow(),
		Sources: workload.Mix(services.SocialNetwork(), 1.0, 300),
		Seed:    5,
		Check:   check.New(),
	}
	withZero := *base
	withZero.Check = check.New()
	withZero.Faults = &fault.Spec{Rate: 0, MeanWindow: 200 * sim.Microsecond, Horizon: sim.Second,
		PEFail: true, ManagerStall: true, NoCInflate: 4}

	a, err := base.Run()
	if err != nil {
		t.Fatal(err)
	}
	b, err := withZero.Run()
	if err != nil {
		t.Fatal(err)
	}
	if a.Completed != b.Completed || a.TimedOut != b.TimedOut || a.FellBack != b.FellBack {
		t.Errorf("counters diverge: no injector %d/%d/%d vs rate-0 %d/%d/%d",
			a.Completed, a.TimedOut, a.FellBack, b.Completed, b.TimedOut, b.FellBack)
	}
	if a.Elapsed != b.Elapsed || a.All.Mean() != b.All.Mean() || a.All.P99() != b.All.P99() {
		t.Errorf("timings diverge: no injector (%v, mean %v, p99 %v) vs rate-0 (%v, mean %v, p99 %v)",
			a.Elapsed, a.All.Mean(), a.All.P99(), b.Elapsed, b.All.Mean(), b.All.P99())
	}
}

// surgeSpec is the shared base for the control-layer metamorphic
// properties: a 3x surge of the SocialNetwork mix with the invariant
// checker attached, onto which each property grafts its controller.
func surgeSpec(requests int, seed int64) *workload.RunSpec {
	return &workload.RunSpec{
		Config:  config.Default(),
		Policy:  engine.AccelFlow(),
		Sources: workload.Mix(services.SocialNetwork(), 3.0, requests),
		Seed:    seed,
		Check:   check.New(),
	}
}

// TestMetamorphicMoreHeadroom: raising the autoscaler's add ceiling at
// identical arrivals must not worsen the P99 — extra headroom lets the
// controller relieve the same queues sooner, the control-layer twin of
// TestMetamorphicMorePEs. The slack absorbs second-order shifts in
// which requests contend after the earlier scale-ups.
func TestMetamorphicMoreHeadroom(t *testing.T) {
	if testing.Short() {
		t.Skip("metamorphic properties run full simulations")
	}
	const slack = 1.10
	run := func(maxAdd int) *workload.RunResult {
		spec := surgeSpec(400, 13)
		spec.Sources = workload.Mix(services.SocialNetwork(), 6.0, 400)
		spec.Control = &control.Spec{Autoscale: &control.AutoscaleSpec{
			Target:   control.TargetPE,
			UpUtil:   0.1,
			DownUtil: 0.02,
			MaxAdd:   maxAdd,
		}}
		res, err := spec.Run()
		if err != nil {
			t.Fatalf("MaxAdd %d: %v", maxAdd, err)
		}
		return res
	}
	capped, roomy := run(2), run(8)
	// The property is vacuous unless the surge actually drives the
	// capped run into its ceiling and the roomy run past it.
	if capped.Control.ScaleUps == 0 {
		t.Fatal("surge produced no scale-ups — controller not engaged")
	}
	if roomy.Control.Level <= capped.Control.Level {
		t.Fatalf("headroom unused: level %d with MaxAdd 8 vs %d with MaxAdd 2",
			roomy.Control.Level, capped.Control.Level)
	}
	if roomy.All.P99().Micros() > capped.All.P99().Micros()*slack {
		t.Errorf("P99 worsened with more headroom: MaxAdd 8 %.1fus vs MaxAdd 2 %.1fus",
			roomy.All.P99().Micros(), capped.All.P99().Micros())
	}
}

// TestMetamorphicShedConservation: a shed request vanishes before
// submission and must never reappear in any downstream count. With
// every control policy live (both shed kinds, retries under a fault
// burst), engine completions equal arrivals - Shed + Retries and the
// latency recorder sees exactly arrivals - Shed final attempts —
// while the full invariant suite (whose conservation check compares
// engine admissions against completions) stays green.
func TestMetamorphicShedConservation(t *testing.T) {
	if testing.Short() {
		t.Skip("metamorphic properties run full simulations")
	}
	const arrivals = 300
	spec := surgeSpec(arrivals, 11)
	// Short enqueue backoff plus a single timeout rearm make the lost
	// remote responses (RemoteLossRate) actually surface as timeouts,
	// the retry path's trigger.
	spec.Config.EnqueueBackoff = 200 * sim.Nanosecond
	spec.Config.TimeoutRearms = 1
	spec.Faults = &fault.Spec{
		Rate:           20000,
		MeanWindow:     150 * sim.Microsecond,
		Horizon:        sim.Second,
		PEDegradeFrac:  0.75,
		PEFail:         true,
		RemoteLossRate: 0.05,
	}
	spec.Control = &control.Spec{
		Autoscale: &control.AutoscaleSpec{
			Target:   control.TargetPE,
			UpUtil:   0.3,
			DownUtil: 0.05,
			SLOUs:    300,
			MaxAdd:   8,
		},
		Shed:  &control.ShedSpec{Queue: 48, Prob: 0.02},
		Retry: &control.RetrySpec{Budget: 16},
	}
	res, err := spec.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Vacuousness guards: both shed kinds and the retry path must fire.
	if res.Control.ShedQueue == 0 || res.Control.ShedRandom == 0 {
		t.Fatalf("shed kinds not exercised: queue %d, random %d",
			res.Control.ShedQueue, res.Control.ShedRandom)
	}
	if res.Retries == 0 {
		t.Fatal("retry path not exercised")
	}
	if res.Shed != res.Control.ShedQueue+res.Control.ShedRandom {
		t.Errorf("Shed %d != queue %d + random %d",
			res.Shed, res.Control.ShedQueue, res.Control.ShedRandom)
	}
	if res.Completed != arrivals-res.Shed+res.Retries {
		t.Errorf("completions %d != arrivals %d - shed %d + retries %d",
			res.Completed, arrivals, res.Shed, res.Retries)
	}
	if got := uint64(res.All.Count()); got != arrivals-res.Shed {
		t.Errorf("recorder saw %d latencies, want arrivals %d - shed %d",
			got, arrivals, res.Shed)
	}
}

// TestMetamorphicControllerNeutral: an autoscaler whose thresholds are
// unreachable (utilization is clamped to [0,1], so UpUtil 2 and
// DownUtil -1 are the +-infinity spellings; SLOUs 0 disables breach
// detection) with no shed or retry policy must leave every result
// bit-identical to running with no controller at all — the zero-RNG
// disabled contract. Only Elapsed may differ, by at most one decision
// interval: the tick, like the obs sampler, observes the final state
// once after the last completion.
func TestMetamorphicControllerNeutral(t *testing.T) {
	if testing.Short() {
		t.Skip("metamorphic properties run full simulations")
	}
	const interval = 50 * sim.Microsecond
	bare := surgeSpec(400, 29)
	neutral := surgeSpec(400, 29)
	neutral.Control = &control.Spec{Autoscale: &control.AutoscaleSpec{
		Target:   control.TargetPE,
		UpUtil:   2,
		DownUtil: -1,
		Interval: interval,
	}}
	a, err := bare.Run()
	if err != nil {
		t.Fatal(err)
	}
	b, err := neutral.Run()
	if err != nil {
		t.Fatal(err)
	}
	if st := b.Control; st.ScaleUps != 0 || st.ScaleDowns != 0 || st.ShedQueue != 0 ||
		st.ShedRandom != 0 || st.Retries != 0 || st.BreachTicks != 0 {
		t.Errorf("neutral controller acted: %+v", *st)
	}
	if a.Completed != b.Completed || a.TimedOut != b.TimedOut || a.FellBack != b.FellBack {
		t.Errorf("counters diverge: bare %d/%d/%d vs neutral %d/%d/%d",
			a.Completed, a.TimedOut, a.FellBack, b.Completed, b.TimedOut, b.FellBack)
	}
	if a.All.Count() != b.All.Count() || a.All.Mean() != b.All.Mean() ||
		a.All.P99() != b.All.P99() || a.All.Max() != b.All.Max() {
		t.Errorf("latencies diverge: bare (n %d, mean %v, p99 %v, max %v) vs neutral (n %d, mean %v, p99 %v, max %v)",
			a.All.Count(), a.All.Mean(), a.All.P99(), a.All.Max(),
			b.All.Count(), b.All.Mean(), b.All.P99(), b.All.Max())
	}
	if b.Elapsed < a.Elapsed || b.Elapsed-a.Elapsed > interval {
		t.Errorf("Elapsed moved beyond one final tick: bare %v vs neutral %v", a.Elapsed, b.Elapsed)
	}
}

// TestMetamorphicWiderTuneSpace: widening the autotuner's search space
// (appending levels to every bound, same seed) must never yield a
// worse final objective. Every space in the chain shares the same
// start candidate (index 0 of each dimension, and appending levels
// never shifts it), whose evaluation seed derives from the candidate
// key alone — so the wider search's best-so-far starts from the exact
// same score and can only go down from there by exploring a superset
// of configurations. Evaluations run with the invariant checker
// attached, making this the harness's metamorphic property over the
// search layer, not just a single run.
func TestMetamorphicWiderTuneSpace(t *testing.T) {
	if testing.Short() {
		t.Skip("metamorphic properties run full simulations")
	}
	p := tune.Params{
		Objective:      "p99",
		Seed:           21,
		Requests:       120,
		Quick:          true,
		MaxGenerations: 8,
		Patience:       2,
		Check:          true,
	}
	// Each space appends levels to the previous one; the first is a
	// single deliberately under-provisioned point so the chain has room
	// to improve.
	chain := []tune.SpaceSpec{
		{Chiplets: []int{1}, PEs: []int{4}, Policies: []string{"relief"}},
		{Chiplets: []int{1, 2}, PEs: []int{4, 8}, Policies: []string{"relief"}},
		{Chiplets: []int{1, 2}, PEs: []int{4, 8}, Policies: []string{"relief", "accelflow"}},
		{Chiplets: []int{1, 2, 4}, PEs: []int{4, 8, 12}, Policies: []string{"relief", "accelflow", "cohort"}},
	}
	var prev *tune.Result
	for i, space := range chain {
		q := p
		q.Space = space
		res, err := tune.Run(context.Background(), q, nil, tune.Hooks{})
		if err != nil {
			t.Fatalf("space %d: %v", i, err)
		}
		if prev != nil && res.BestScore > prev.BestScore {
			t.Errorf("widening the space worsened the objective: space %d best %.4f (%s) vs space %d best %.4f (%s)",
				i, res.BestScore, res.BestKey, i-1, prev.BestScore, prev.BestKey)
		}
		prev = res
	}
	// The widest space must beat the single-point baseline outright:
	// with more chiplets, PEs, and the paper's policy available, the
	// searcher has to find something strictly better.
	first := chain[0]
	q := p
	q.Space = first
	base, err := tune.Run(context.Background(), q, nil, tune.Hooks{})
	if err != nil {
		t.Fatal(err)
	}
	if prev.BestScore >= base.BestScore {
		t.Errorf("widest space found nothing better than the single-point baseline: %.4f vs %.4f",
			prev.BestScore, base.BestScore)
	}
}

// The config-space generator behind the property harness: seed-derived
// (no external fuzzing deps), it fuzzes config.Config, fault.Spec, and
// workload-mix shape through valid but deliberately odd corners of the
// parameter space. The harness (property_test.go) materializes each
// Scenario into a short run and asserts every runtime invariant plus
// the metamorphic properties.
//
// Scenarios are pure functions of (baseSeed, index) via
// sim.DeriveSeed, so any violation found in CI reproduces from the
// two integers alone — the nightly long-fuzz job uploads exactly that
// pair with each repro.
package check

import (
	"fmt"

	"accelflow/internal/config"
	"accelflow/internal/fault"
	"accelflow/internal/sim"
)

// Scenario is one generated point in the configuration space. The
// workload side is plain data (policy name, load scale, budget) so
// this package stays import-cycle-free with engine/workload; the
// harness maps PolicyName onto an engine.Policy.
type Scenario struct {
	// Index and BaseSeed identify the scenario; Seed is the run seed
	// derived from them.
	Index    int
	BaseSeed int64
	Seed     int64

	Cfg    *config.Config
	Faults *fault.Spec // nil = no injector attached

	// PolicyName selects the orchestration policy: one of "accelflow",
	// "relief", "cohort", "cpucentric", "nonacc".
	PolicyName string
	// LoadScale multiplies the SocialNetwork mix arrival rates.
	LoadScale float64
	// Requests is the run's total request budget.
	Requests int
}

// policyNames in generation order; the AccelFlow policy is weighted
// heaviest since it exercises the most machinery (arming, overflow,
// tenant limits).
var policyNames = []string{"accelflow", "accelflow", "accelflow", "relief", "cohort", "cpucentric", "nonacc"}

// GenScenario derives scenario i from baseSeed. Every draw comes from
// an RNG forked off DeriveSeed(baseSeed, "check/gen/<i>"), so the
// scenario is reproducible independent of how many others were
// generated before it.
func GenScenario(baseSeed int64, i int) Scenario {
	rng := sim.NewRNG(sim.DeriveSeed(baseSeed, fmt.Sprintf("check/gen/%d", i)))
	sc := Scenario{
		Index:    i,
		BaseSeed: baseSeed,
		Seed:     sim.DeriveSeed(baseSeed, fmt.Sprintf("check/run/%d", i)),
	}

	cfg := config.Default()
	cfg.Cores = []int{4, 8, 16, 36}[rng.Intn(4)]
	cfg.PEsPerAccel = []int{1, 2, 4, 8}[rng.Intn(4)]
	cfg.InputQueueEntries = []int{4, 16, 64}[rng.Intn(3)]
	cfg.OutputQueueEntries = cfg.InputQueueEntries
	cfg.OverflowEntries = []int{4, 32, 256}[rng.Intn(3)]
	cfg.ADMAEngines = []int{2, 4, 10}[rng.Intn(3)]
	cfg.ManagerWidth = []int{1, 4, 16}[rng.Intn(3)]
	cfg.TenantTraceLimit = []int{2, 8, 64}[rng.Intn(3)]
	cfg.EnqueueRetries = rng.Intn(4)
	cfg.TimeoutRearms = rng.Intn(3)
	cfg.TCPTimeout = []sim.Time{2, 5, 10}[rng.Intn(3)] * sim.Millisecond
	cfg.SpeedupScale = []float64{0.5, 1.0, 2.0}[rng.Intn(3)]
	cfg.Generation = config.AllGenerations()[rng.Intn(5)]

	// Chiplet layout: 1-4 chiplets, each non-LdB accelerator assigned
	// uniformly; LdB stays on the core chiplet (a Validate rule).
	cfg.Chiplets = 1 + rng.Intn(4)
	for k := range cfg.ChipletOf {
		cfg.ChipletOf[k] = rng.Intn(cfg.Chiplets)
	}
	cfg.ChipletOf[config.LdB] = 0
	sc.Cfg = cfg

	// Roughly a third of scenarios run under fault injection, with the
	// mechanism set itself drawn per scenario.
	if rng.Bool(0.35) {
		sp := &fault.Spec{
			Rate:       1000 + 4000*rng.Float64(),
			MeanWindow: sim.Time(50+rng.Intn(300)) * sim.Microsecond,
			Horizon:    20 * sim.Millisecond,
		}
		if rng.Bool(0.5) {
			sp.PEDegradeFrac = 0.5
		}
		if rng.Bool(0.3) {
			sp.PEFail = true
		}
		if rng.Bool(0.4) {
			sp.ADMARemove = 1 + rng.Intn(2)
		}
		if rng.Bool(0.3) {
			sp.ManagerStall = true
		}
		if rng.Bool(0.3) {
			sp.ATMStall = 500 * sim.Nanosecond
		}
		if rng.Bool(0.3) {
			sp.NoCInflate = 2 + 2*rng.Float64()
		}
		if rng.Bool(0.2) {
			sp.RemoteLossRate = 0.001
		}
		sc.Faults = sp
	}

	sc.PolicyName = policyNames[rng.Intn(len(policyNames))]
	sc.LoadScale = 0.3 + 1.2*rng.Float64()
	sc.Requests = 60 + rng.Intn(120)
	return sc
}

// Validate confirms the generated scenario is self-consistent (the
// harness runs it on every scenario so a generator bug fails loudly
// instead of producing vacuous runs).
func (s Scenario) Validate() error {
	if err := s.Cfg.Validate(); err != nil {
		return fmt.Errorf("scenario %d: %w", s.Index, err)
	}
	if s.Faults != nil {
		if err := s.Faults.Validate(); err != nil {
			return fmt.Errorf("scenario %d: %w", s.Index, err)
		}
	}
	if s.Requests <= 0 || s.LoadScale <= 0 {
		return fmt.Errorf("scenario %d: degenerate workload (requests %d, load %v)",
			s.Index, s.Requests, s.LoadScale)
	}
	return nil
}

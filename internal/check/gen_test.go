package check

import (
	"reflect"
	"testing"
)

// TestGenScenarioDeterministic pins the repro contract: a scenario is
// a pure function of (baseSeed, index), independent of generation
// order — that pair is all a CI repro artifact needs to carry.
func TestGenScenarioDeterministic(t *testing.T) {
	for i := 0; i < 20; i++ {
		a := GenScenario(42, i)
		b := GenScenario(42, i)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("scenario %d not deterministic:\n%+v\n%+v", i, a, b)
		}
	}
	if reflect.DeepEqual(GenScenario(42, 0), GenScenario(43, 0)) {
		t.Fatal("different base seeds produced identical scenarios")
	}
}

// TestGenScenarioValid runs the generator across a wide index range:
// every emitted scenario must pass its own validation (config rules,
// fault-spec rules, non-degenerate workload).
func TestGenScenarioValid(t *testing.T) {
	for i := 0; i < 300; i++ {
		sc := GenScenario(7, i)
		if err := sc.Validate(); err != nil {
			t.Fatalf("generated invalid scenario: %v\n%+v", err, sc)
		}
		if sc.Seed == 0 {
			t.Fatalf("scenario %d derived a zero run seed", i)
		}
	}
}

// TestGenScenarioCoverage checks the generator actually explores the
// space: across a modest sample it must produce multiple policies,
// chiplet counts, and both faulted and fault-free runs.
func TestGenScenarioCoverage(t *testing.T) {
	pols := map[string]bool{}
	chiplets := map[int]bool{}
	faulted, clean := 0, 0
	for i := 0; i < 120; i++ {
		sc := GenScenario(1, i)
		pols[sc.PolicyName] = true
		chiplets[sc.Cfg.Chiplets] = true
		if sc.Faults != nil {
			faulted++
		} else {
			clean++
		}
	}
	if len(pols) < 3 {
		t.Errorf("only %d distinct policies generated: %v", len(pols), pols)
	}
	if len(chiplets) < 2 {
		t.Errorf("only %d distinct chiplet counts generated", len(chiplets))
	}
	if faulted == 0 || clean == 0 {
		t.Errorf("fault mix degenerate: %d faulted, %d clean", faulted, clean)
	}
}

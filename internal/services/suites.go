package services

import (
	"accelflow/internal/engine"
)

// Suite groups services for suite-level statistics (paper §III-Q2
// reports the fraction of accelerator sequences containing at least one
// conditional per suite: SocialNet 69.2%, HotelReservation 62.5%,
// MediaServices 82.5%, TrainTicket 53.8%).
type Suite struct {
	Name     string
	Services []*Service
}

// HotelReservation models DeathStarBench's hotel suite: search and
// reservation flows with cache lookups and nested RPC fan-out.
func HotelReservation() []*Service {
	return []*Service{
		{
			Name: "Search",
			Steps: []engine.Step{
				chain(T1), app(12),
				{Kind: engine.StepParallel, Par: rep(T9, 3)}, app(9),
				chain(T2),
			},
			Probs:         engine.FlagProbs{PCompressed: 0.6, PHit: 0.7, PFound: 0.98, PException: 0.01},
			PayloadMedian: 1500, PayloadSigma: 0.75,
			RatekRPS: 10.0,
		},
		{
			Name: "Reserve",
			Steps: []engine.Step{
				chain(T1), app(10),
				chain(T4), app(6),
				chain(T8), app(5),
				chain(T2),
			},
			Probs:         engine.FlagProbs{PCompressed: 0.3, PHit: 0.6, PFound: 0.98, PException: 0.01},
			PayloadMedian: 900, PayloadSigma: 0.6,
			RatekRPS: 6.0,
		},
		{
			Name: "Rates",
			Steps: []engine.Step{
				chain(T1), app(7),
				chain(T4), app(4),
				chain(T3),
			},
			Probs:         engine.FlagProbs{PCompressed: 0.7, PHit: 0.85, PFound: 0.99, PException: 0.005},
			PayloadMedian: 1800, PayloadSigma: 0.8,
			RatekRPS: 14.0,
		},
		{
			Name: "Profile",
			Steps: []engine.Step{
				chain(T1), app(8),
				chain(T4), app(5),
				chain(T2),
			},
			Probs:         engine.FlagProbs{PCompressed: 0.5, PHit: 0.9, PFound: 0.99, PException: 0.005},
			PayloadMedian: 2400, PayloadSigma: 0.85,
			RatekRPS: 12.0,
		},
	}
}

// MediaServices models the media suite: large compressed payloads and
// deep cache/storage interactions (the paper's highest branch share).
func MediaServices() []*Service {
	return []*Service{
		{
			Name: "ComposeRev",
			Steps: []engine.Step{
				chain(T1), app(14),
				{Kind: engine.StepParallel, Par: rep(T9C, 3)}, app(10),
				chain(T8C), app(5),
				chain(T3),
			},
			Probs:         engine.FlagProbs{PCompressed: 0.9, PHit: 0.5, PFound: 0.97, PException: 0.015},
			PayloadMedian: 3200, PayloadSigma: 0.9,
			RatekRPS: 5.0,
		},
		{
			Name: "ReadPlot",
			Steps: []engine.Step{
				chain(T1), app(8),
				chain(T4), app(6),
				chain(T3),
			},
			Probs:         engine.FlagProbs{PCompressed: 0.9, PHit: 0.55, PFound: 0.98, PException: 0.01, PCCompressed: 0.8},
			PayloadMedian: 4200, PayloadSigma: 0.9,
			RatekRPS: 11.0,
		},
		{
			Name: "CastInfo",
			Steps: []engine.Step{
				chain(T1), app(7),
				chain(T4), app(5),
				chain(T2),
			},
			Probs:         engine.FlagProbs{PCompressed: 0.8, PHit: 0.6, PFound: 0.98, PException: 0.01, PCCompressed: 0.7},
			PayloadMedian: 2600, PayloadSigma: 0.8,
			RatekRPS: 9.0,
		},
		{
			Name: "VideoMeta",
			Steps: []engine.Step{
				chain(T1), app(9),
				chain(T11C), app(6),
				chain(T2),
			},
			Probs:         engine.FlagProbs{PCompressed: 0.85, PHit: 0.5, PFound: 0.98, PException: 0.01},
			PayloadMedian: 5200, PayloadSigma: 0.95,
			RatekRPS: 7.5,
		},
	}
}

// TrainTicket models the Train Ticket benchmark's Java services:
// heavier app logic, more HTTP edges, fewer conditionals (the paper's
// lowest branch share, 53.8%).
func TrainTicket() []*Service {
	return []*Service{
		{
			Name: "QueryTrip",
			Steps: []engine.Step{
				chain(T1), app(22),
				chain(T4), app(8),
				chain(T11), app(12),
				chain(T2),
			},
			Probs:         engine.FlagProbs{PCompressed: 0.3, PHit: 0.6, PFound: 0.99, PException: 0.005},
			PayloadMedian: 1400, PayloadSigma: 0.7,
			RatekRPS: 8.0,
		},
		{
			Name: "BookSeat",
			Steps: []engine.Step{
				chain(T1), app(18),
				chain(T8), app(9),
				chain(T11), app(7),
				chain(T2),
			},
			Probs:         engine.FlagProbs{PCompressed: 0.2, PHit: 0.5, PFound: 0.99, PException: 0.01},
			PayloadMedian: 1100, PayloadSigma: 0.65,
			RatekRPS: 4.5,
		},
		{
			Name: "PayOrder",
			Steps: []engine.Step{
				chain(T1), app(16),
				chain(T11), app(8),
				chain(T8), app(4),
				chain(T2),
			},
			Probs:         engine.FlagProbs{PCompressed: 0.15, PHit: 0.5, PFound: 0.995, PException: 0.01},
			PayloadMedian: 800, PayloadSigma: 0.6,
			RatekRPS: 5.0,
		},
		{
			Name: "QueryFood",
			Steps: []engine.Step{
				chain(T1), app(15),
				chain(T2),
			},
			Probs:         engine.FlagProbs{PCompressed: 0.2, PHit: 0.5, PFound: 0.99, PException: 0.005},
			PayloadMedian: 1200, PayloadSigma: 0.7,
			RatekRPS: 9.5,
		},
	}
}

// AllSuites returns the four suites used for the Q2 statistics.
func AllSuites() []Suite {
	return []Suite{
		{Name: "SocialNet", Services: SocialNetwork()},
		{Name: "HotelReservation", Services: HotelReservation()},
		{Name: "MediaServices", Services: MediaServices()},
		{Name: "TrainTicket", Services: TrainTicket()},
	}
}

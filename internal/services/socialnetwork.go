package services

import (
	"accelflow/internal/engine"
	"accelflow/internal/sim"
)

// Service describes one microservice: its Table IV execution path, its
// branch-probability profile, payload-size distribution, and nominal
// app-logic segments.
type Service struct {
	Name  string
	Steps []engine.Step
	Probs engine.FlagProbs

	PayloadMedian float64 // bytes (Fig. 5: few-KB medians)
	PayloadSigma  float64 // lognormal sigma (long tail)

	// WantAccels is Table IV's accelerator count on the most common
	// execution path, validated by tests.
	WantAccels int

	// RatekRPS is the Alibaba-like average invocation rate used for
	// the Fig. 11 experiments (the per-service rates average 13.4K).
	RatekRPS float64

	// SLOus, when nonzero, attaches a soft SLO (in microseconds) to
	// every request, used by the EDF scheduling policy (§IV-C).
	SLOus float64
}

// Job materializes one request of the service.
func (s *Service) Job(tenant int) *engine.Job {
	return &engine.Job{
		Service:       s.Name,
		Steps:         s.Steps,
		Probs:         s.Probs,
		PayloadMedian: s.PayloadMedian,
		PayloadSigma:  s.PayloadSigma,
		Tenant:        tenant,
		SLO:           sim.FromMicros(s.SLOus),
	}
}

func app(us float64) engine.Step {
	return engine.Step{Kind: engine.StepApp, App: sim.FromMicros(us)}
}

func chain(name string) engine.Step {
	return engine.Step{Kind: engine.StepChain, Trace: name}
}

func rep(name string, n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = name
	}
	return out
}

// SocialNetwork returns the eight DeathStarBench SocialNetwork services
// with the execution paths of Table IV. The flag probabilities are
// chosen so the most common path reproduces Table IV's accelerator
// counts exactly (validated in tests), and the Alibaba-like rates
// average 13.4K RPS (§VI).
func SocialNetwork() []*Service {
	return []*Service{
		{
			// CPost: T1-CPU-4x(T9-T10)-CPU-3x(T9-T10)-CPU-T2, 87 accels.
			// Compressed payloads throughout (T1 Dcmp, T9c, T10 Dcmp).
			Name: "CPost",
			Steps: []engine.Step{
				chain(T1), app(25),
				{Kind: engine.StepParallel, Par: rep(T9C, 4)}, app(25),
				{Kind: engine.StepParallel, Par: rep(T9C, 3)}, app(25),
				chain(T2),
			},
			Probs:         engine.FlagProbs{PCompressed: 0.9, PHit: 0.5, PFound: 0.97, PException: 0.01},
			PayloadMedian: 1600, PayloadSigma: 0.75,
			WantAccels: 87,
			RatekRPS:   4.0,
		},
		{
			// ReadH: T1-CPU-T4-T5-CPU-T9-T10-CPU-T3, 28 accels.
			// Compressed home-timeline payloads; cache mostly hits.
			Name: "ReadH",
			Steps: []engine.Step{
				chain(T1), app(14),
				chain(T4), app(11),
				// The nested RPC leg carries an uncompressed response,
				// unlike the compressed timeline payloads.
				{Kind: engine.StepChain, Trace: T9,
					Probs: &engine.FlagProbs{PCompressed: 0.1, PHit: 0.85, PFound: 0.98, PException: 0.01}},
				app(9),
				chain(T3),
			},
			Probs:         engine.FlagProbs{PCompressed: 0.85, PHit: 0.85, PFound: 0.98, PException: 0.01},
			PayloadMedian: 2100, PayloadSigma: 0.8,
			WantAccels: 28,
			RatekRPS:   9.0,
		},
		{
			// StoreP: T1-CPU-T8-T7-CPU-T2, 18 accels (compressed store).
			Name: "StoreP",
			Steps: []engine.Step{
				chain(T1), app(12),
				chain(T8C), app(8),
				chain(T2),
			},
			Probs:         engine.FlagProbs{PCompressed: 0.8, PHit: 0.5, PFound: 0.98, PException: 0.01},
			PayloadMedian: 1800, PayloadSigma: 0.8,
			WantAccels: 18,
			RatekRPS:   14.0,
		},
		{
			// Follow: T1-CPU-3x(T8-T7)-CPU-T2, 30 accels (plain writes).
			Name: "Follow",
			Steps: []engine.Step{
				chain(T1), app(16),
				{Kind: engine.StepParallel, Par: rep(T8, 3)}, app(9),
				chain(T2),
			},
			Probs:         engine.FlagProbs{PCompressed: 0.1, PHit: 0.5, PFound: 0.98, PException: 0.01},
			PayloadMedian: 900, PayloadSigma: 0.7,
			WantAccels: 30,
			RatekRPS:   11.0,
		},
		{
			// Login: T1-CPU-T4-T5-T6-T7-CPU-T2, 29 accels. The common
			// path misses in the cache (T5.miss -> T6 -> write-back ->
			// T7); credentials are not compressed.
			Name: "Login",
			Steps: []engine.Step{
				chain(T1), app(17),
				chain(T4), app(11),
				chain(T2),
			},
			Probs:         engine.FlagProbs{PCompressed: 0.05, PHit: 0.15, PFound: 0.97, PException: 0.01},
			PayloadMedian: 700, PayloadSigma: 0.6,
			WantAccels: 29,
			RatekRPS:   9.0,
		},
		{
			// CUrls: T1-CPU-T8-T7-CPU-T3, 19 accels (compressed both ways).
			Name: "CUrls",
			Steps: []engine.Step{
				chain(T1), app(11),
				chain(T8C), app(8),
				chain(T3),
			},
			Probs:         engine.FlagProbs{PCompressed: 0.85, PHit: 0.5, PFound: 0.98, PException: 0.01},
			PayloadMedian: 1200, PayloadSigma: 0.7,
			WantAccels: 19,
			RatekRPS:   15.0,
		},
		{
			// UniqId: T1-CPU-T2, 9 accels. The shortest service, with
			// the highest tax share (§III-Q1).
			Name: "UniqId",
			Steps: []engine.Step{
				chain(T1), app(5),
				chain(T2),
			},
			Probs:         engine.FlagProbs{PCompressed: 0.02, PHit: 0.5, PFound: 0.99, PException: 0.005},
			PayloadMedian: 400, PayloadSigma: 0.5,
			WantAccels: 9,
			RatekRPS:   31.0,
		},
		{
			// RegUsr: T1-CPU-T8-T7-CPU-T9-T10-CPU-T2, 25 accels.
			Name: "RegUsr",
			Steps: []engine.Step{
				chain(T1), app(14),
				chain(T8), app(9),
				chain(T9), app(8),
				chain(T2),
			},
			Probs:         engine.FlagProbs{PCompressed: 0.05, PHit: 0.5, PFound: 0.98, PException: 0.01},
			PayloadMedian: 1000, PayloadSigma: 0.7,
			WantAccels: 25,
			RatekRPS:   14.2,
		},
	}
}

// ByName returns the named service from a catalog.
func ByName(svcs []*Service, name string) *Service {
	for _, s := range svcs {
		if s.Name == name {
			return s
		}
	}
	return nil
}

// MeanRatekRPS is the average of the services' Alibaba-like rates
// (the paper reports 13.4K RPS).
func MeanRatekRPS(svcs []*Service) float64 {
	var sum float64
	for _, s := range svcs {
		sum += s.RatekRPS
	}
	return sum / float64(len(svcs))
}

package services

import (
	"accelflow/internal/config"
	"accelflow/internal/engine"
	"accelflow/internal/sim"
	"accelflow/internal/trace"
)

// Coarse-grained validation workloads (Fig. 15): the RELIEF artifact's
// gem5-modeled image-processing and RNN accelerators, reproduced as a
// second catalog over the same engine. The seven coarse accelerators
// are mapped onto the nine ensemble slots with a dedicated cost model
// (MB-scale payloads, hundreds of microseconds of CPU time per stage).
//
// Slot mapping: Gauss->TCP, Sobel->Encr, NonMax->Decr, Thresh->RPC,
// GEMM->Ser, LSTM->Dser, Pool->Cmp. The payload-size effects of the
// borrowed slots (Pool shrinks like Cmp; GEMM/LSTM apply the Ser/Dser
// factors) are appropriate for pooling and projection stages.
const (
	CoarseGauss  = config.TCP
	CoarseSobel  = config.Encr
	CoarseNonMax = config.Decr
	CoarseThresh = config.RPC
	CoarseGEMM   = config.Ser
	CoarseLSTM   = config.Dser
	CoarsePool   = config.Cmp
)

// CoarseAccelName names the coarse accelerator occupying a slot.
func CoarseAccelName(k config.AccelKind) string {
	switch k {
	case CoarseGauss:
		return "Gauss"
	case CoarseSobel:
		return "Sobel"
	case CoarseNonMax:
		return "NonMax"
	case CoarseThresh:
		return "Thresh"
	case CoarseGEMM:
		return "GEMM"
	case CoarseLSTM:
		return "LSTM"
	case CoarsePool:
		return "Pool"
	default:
		return k.String()
	}
}

// CoarseConfig returns the cost model for the coarse catalog: per-byte
// dominated CPU costs (hundreds of us per MB-scale frame) and
// literature-scale accelerator speedups. Everything else (queues, PEs,
// chiplets, manager) stays at the paper's Table III values.
func CoarseConfig() *config.Config {
	c := config.Default()
	for k := range c.OpBase {
		c.OpBase[k] = sim.FromMicros(15)
		c.OpPerByte[k] = sim.FromNanos(0.6)
		c.Speedup[k] = 15
	}
	// RNN stages are denser compute with higher speedup.
	c.OpPerByte[CoarseGEMM] = sim.FromNanos(0.9)
	c.OpPerByte[CoarseLSTM] = sim.FromNanos(0.9)
	c.Speedup[CoarseGEMM] = 22
	c.Speedup[CoarseLSTM] = 22
	// Pooling shrinks aggressively, like Cmp's ratio.
	c.CmpRatio = 0.35
	c.SerOverhead = 1.05
	return c
}

// CoarseCatalog builds the linear chains of the image and RNN apps.
func CoarseCatalog() []*trace.Program {
	return []*trace.Program{
		trace.New("canny").
			Seq(CoarseGauss, CoarseSobel, CoarseNonMax, CoarseThresh).
			MustBuild(),
		trace.New("harris").
			Seq(CoarseGauss, CoarseSobel, CoarseGEMM).
			MustBuild(),
		trace.New("edgetrack").
			Seq(CoarseSobel, CoarseNonMax, CoarseThresh).
			MustBuild(),
		trace.New("blurpool").
			Seq(CoarseGauss, CoarsePool).
			MustBuild(),
		trace.New("rnninfer").
			Seq(CoarseGEMM, CoarseLSTM, CoarseGEMM).
			MustBuild(),
		trace.New("lstmseq").
			Seq(CoarseGEMM, CoarseLSTM, CoarseLSTM, CoarsePool).
			MustBuild(),
	}
}

// CoarseApps returns the Fig. 15 applications: each one invokes its
// chain once per frame/sequence with a little CPU pre/post-processing.
func CoarseApps() []*Service {
	mk := func(name, tr string, appUS float64, payload float64) *Service {
		return &Service{
			Name: name,
			Steps: []engine.Step{
				app(appUS / 2),
				chain(tr),
				app(appUS / 2),
			},
			Probs:         engine.FlagProbs{PFound: 1, PHit: 1},
			PayloadMedian: payload, PayloadSigma: 0.25,
			RatekRPS: 1.0,
		}
	}
	return []*Service{
		mk("CannyEdge", "canny", 30, 1.0e6),
		mk("HarrisCorner", "harris", 25, 1.0e6),
		mk("EdgeTrack", "edgetrack", 20, 0.75e6),
		mk("BlurPool", "blurpool", 15, 1.2e6),
		mk("RNNInfer", "rnninfer", 22, 0.5e6),
		mk("LSTMSeq", "lstmseq", 28, 0.6e6),
	}
}

package services

import (
	"accelflow/internal/engine"
)

// Serverless returns FunctionBench-like serverless functions (Fig. 16):
// ML model serving, image, video, and document processing. Serverless
// invocations share the microservice shape — short execution, bursty
// arrival, heavy tax — so they reuse the same trace catalog. The
// paper's headline example, ImgRot, is the shortest and most
// tax-dominated function.
func Serverless() []*Service {
	return []*Service{
		{
			// Image rotation: tiny compute, compressed image payload.
			Name: "ImgRot",
			Steps: []engine.Step{
				chain(T1), app(6),
				chain(T3),
			},
			Probs:         engine.FlagProbs{PCompressed: 0.95, PHit: 0.5, PFound: 0.99, PException: 0.005},
			PayloadMedian: 6000, PayloadSigma: 0.9,
			RatekRPS: 18.0,
		},
		{
			// ML model serving: fetch model features, infer, respond.
			Name: "MLServe",
			Steps: []engine.Step{
				chain(T1), app(35),
				chain(T4), app(20),
				chain(T2),
			},
			Probs:         engine.FlagProbs{PCompressed: 0.6, PHit: 0.8, PFound: 0.99, PException: 0.005},
			PayloadMedian: 2600, PayloadSigma: 0.8,
			RatekRPS: 7.0,
		},
		{
			// Video chunk processing: long compute, large payloads.
			Name: "VidProc",
			Steps: []engine.Step{
				chain(T1), app(120),
				chain(T8C), app(40),
				chain(T3),
			},
			Probs:         engine.FlagProbs{PCompressed: 0.95, PHit: 0.5, PFound: 0.99, PException: 0.01},
			PayloadMedian: 14000, PayloadSigma: 1.0,
			RatekRPS: 1.5,
		},
		{
			// Document conversion: medium compute, compressed docs.
			Name: "DocConv",
			Steps: []engine.Step{
				chain(T1), app(45),
				chain(T3),
			},
			Probs:         engine.FlagProbs{PCompressed: 0.9, PHit: 0.5, PFound: 0.99, PException: 0.005},
			PayloadMedian: 8000, PayloadSigma: 0.9,
			RatekRPS: 4.0,
		},
		{
			// JSON ETL: deserialization-heavy, short compute.
			Name: "JsonETL",
			Steps: []engine.Step{
				chain(T1), app(9),
				chain(T8), app(4),
				chain(T2),
			},
			Probs:         engine.FlagProbs{PCompressed: 0.4, PHit: 0.5, PFound: 0.99, PException: 0.005},
			PayloadMedian: 3000, PayloadSigma: 0.85,
			RatekRPS: 12.0,
		},
		{
			// Thumbnail generation: small images, fast.
			Name: "Thumb",
			Steps: []engine.Step{
				chain(T1), app(14),
				chain(T3),
			},
			Probs:         engine.FlagProbs{PCompressed: 0.9, PHit: 0.5, PFound: 0.99, PException: 0.005},
			PayloadMedian: 4500, PayloadSigma: 0.85,
			RatekRPS: 9.0,
		},
	}
}

// Package services encodes the paper's workload knowledge: the trace
// catalog of Table II (built with the public trace builder API), the
// eight SocialNetwork services with their Table IV execution paths, the
// other DeathStarBench-style suites used for the Q2 statistics, the
// FunctionBench-like serverless functions (Fig. 16), and the
// RELIEF-artifact-like coarse-grained applications (Fig. 15).
package services

import (
	"accelflow/internal/config"
	"accelflow/internal/engine"
	"accelflow/internal/trace"
)

// Trace names from Table II. Traces with major divergences are split
// into ATM subtraces exactly as §IV-A prescribes (the hit/miss and
// found/error divergences, and the rare four-accelerator error path).
const (
	T1      = "T1"       // receive function request (with or without Dcmp)
	T2      = "T2"       // send function response without Cmp
	T3      = "T3"       // send function response with Cmp
	T4      = "T4"       // send read request to DB cache -> T5
	T5      = "T5"       // receive DB cache read response (divergence)
	T5Hit   = "T5.hit"   // cache hit: (Dcmp) + LdB + notify
	T5Miss  = "T5.miss"  // cache miss: re-issue read to the DB -> T6
	T6      = "T6"       // receive DB read response (divergence)
	T6Found = "T6.found" // found: (Dcmp), fork write-back, LdB
	T6WB    = "T6.wb"    // write-back to DB cache (C-Compressed?) -> T7
	T7      = "T7"       // receive write response (exception divergence)
	T8      = "T8"       // send write request (no Cmp) -> T7
	T8C     = "T8c"      // send write request with Cmp -> T7
	T9      = "T9"       // send RPC request (no Cmp) -> T10
	T9C     = "T9c"      // send RPC request with Cmp -> T10
	T10     = "T10"      // receive RPC response (exception divergence)
	T10OK   = "T10.ok"   // no exception: (Dcmp) + LdB
	T11     = "T11"      // send HTTP request -> T12
	T11C    = "T11c"     // send HTTP request with Cmp -> T12
	T12     = "T12"      // receive HTTP response (errors on the CPU)
	TErr    = "T.err"    // rare error subtrace reporting to the user
)

// Catalog builds every Table II trace program. The same catalog is
// shared by all SocialNetwork-style services.
func Catalog() []*trace.Program {
	b := []*trace.Program{
		// T1 (Fig. 4a / Listing 1): receive a function request.
		trace.New(T1).
			Seq(config.TCP, config.Decr, config.RPC, config.Dser).
			Branch(trace.CondCompressed,
				trace.Sub().Trans(trace.FmtJSON, trace.FmtString).Seq(config.Dcmp),
				nil).
			Seq(config.LdB).
			MustBuild(),

		// T2 (Fig. 2a): send a function response, no compression.
		trace.New(T2).
			Seq(config.Ser, config.RPC, config.Encr, config.TCP).
			MustBuild(),

		// T3: like T2 with Cmp first; no branch because the core knows
		// it wants compression (§IV-B).
		trace.New(T3).
			Seq(config.Cmp, config.Ser, config.RPC, config.Encr, config.TCP).
			MustBuild(),

		// T4 (Fig. 2b): send a read to the DB cache; the asterisk arms
		// T5 in the same TCP accelerator.
		trace.New(T4).
			Seq(config.Ser, config.Encr, config.TCP).
			Tail(T5).
			MustBuild(),

		// T5 (Fig. 7): receive the cache read response. The hit/miss
		// divergence is major, so both arms live in ATM subtraces.
		trace.New(T5).
			Seq(config.TCP, config.Decr, config.Dser).
			Branch(trace.CondHit,
				trace.Sub().Tail(T5Hit),
				trace.Sub().Tail(T5Miss)).
			MustBuild(),
		trace.New(T5Hit).
			Branch(trace.CondCompressed,
				trace.Sub().Trans(trace.FmtBSON, trace.FmtString).Seq(config.Dcmp),
				nil).
			Seq(config.LdB).
			MustBuild(),
		trace.New(T5Miss).
			Seq(config.Ser, config.Encr, config.TCP).
			Tail(T6).
			MustBuild(),

		// T6 (Fig. 7): receive the DB read response; found/error is a
		// major divergence, the error path is the shared TErr subtrace.
		trace.New(T6).
			Seq(config.TCP, config.Decr, config.Dser).
			Branch(trace.CondFound,
				trace.Sub().Tail(T6Found),
				trace.Sub().Tail(TErr)).
			MustBuild(),
		trace.New(T6Found).
			Branch(trace.CondCompressed,
				trace.Sub().Seq(config.Dcmp),
				nil).
			Fork(T6WB).
			Seq(config.LdB).
			MustBuild(),
		trace.New(T6WB).
			Branch(trace.CondCCompressed,
				trace.Sub().Seq(config.Cmp),
				nil).
			Seq(config.Ser, config.Encr, config.TCP).
			Tail(T7).
			MustBuild(),

		// T7 (Fig. 7): receive a write response; exceptions take the
		// error subtrace.
		trace.New(T7).
			Seq(config.TCP, config.Decr, config.Dser).
			Branch(trace.CondException,
				trace.Sub().Tail(TErr),
				trace.Sub().Seq(config.LdB)).
			MustBuild(),

		// T8/T8c: send a write request to the DB cache or DB.
		trace.New(T8).
			Seq(config.Ser, config.Encr, config.TCP).
			Tail(T7).
			MustBuild(),
		trace.New(T8C).
			Seq(config.Cmp, config.Ser, config.Encr, config.TCP).
			Tail(T7).
			MustBuild(),

		// T9/T9c: send an RPC request to a peer service.
		trace.New(T9).
			Seq(config.Ser, config.RPC, config.Encr, config.TCP).
			Tail(T10).
			MustBuild(),
		trace.New(T9C).
			Seq(config.Cmp, config.Ser, config.RPC, config.Encr, config.TCP).
			Tail(T10).
			MustBuild(),

		// T10: receive the RPC response; exception divergence.
		trace.New(T10).
			Seq(config.TCP, config.Decr, config.RPC, config.Dser).
			Branch(trace.CondException,
				trace.Sub().Tail(TErr),
				trace.Sub().Tail(T10OK)).
			MustBuild(),
		trace.New(T10OK).
			Branch(trace.CondCompressed,
				trace.Sub().Seq(config.Dcmp),
				nil).
			Seq(config.LdB).
			MustBuild(),

		// T11/T11c/T12: HTTP request/response; T12 errors are handled
		// by the CPU, so T12 has no exception branch.
		trace.New(T11).
			Seq(config.Ser, config.Encr, config.TCP).
			Tail(T12).
			MustBuild(),
		trace.New(T11C).
			Seq(config.Cmp, config.Ser, config.Encr, config.TCP).
			Tail(T12).
			MustBuild(),
		trace.New(T12).
			Seq(config.TCP, config.Decr, config.Dser, config.LdB).
			MustBuild(),

		// TErr: the rare four-accelerator error subsequence removed
		// from T6/T7/T10 into its own trace (§IV-B).
		trace.New(TErr).
			Seq(config.Ser, config.RPC, config.Encr, config.TCP).
			MustBuild(),
	}
	return b
}

// RemoteTails classifies the tail edges that wait for a network
// response (the paper's asterisks) versus immediate ATM continuations.
func RemoteTails() map[string]engine.RemoteKind {
	return map[string]engine.RemoteKind{
		T4:     engine.RemoteCache, // read sent to the DB cache
		T5Miss: engine.RemoteDB,    // re-issued read to the DB
		T6WB:   engine.RemoteCache, // write-back to the DB cache
		T8:     engine.RemoteCache, // write to DB cache/DB
		T8C:    engine.RemoteCache,
		T9:     engine.RemoteSvc, // nested RPC
		T9C:    engine.RemoteSvc,
		T11:    engine.RemoteSvc, // HTTP
		T11C:   engine.RemoteSvc,
		// T5 -> T5.hit/T5.miss, T6 -> T6.found/TErr, T10 -> T10.ok are
		// immediate dispatcher-side continuations (RemoteNone).
	}
}

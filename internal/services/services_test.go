package services

import (
	"testing"

	"accelflow/internal/atm"
	"accelflow/internal/config"
	"accelflow/internal/engine"
	"accelflow/internal/trace"
)

func catalogATM(t *testing.T, progs []*trace.Program) *atm.ATM {
	t.Helper()
	a := atm.New(0)
	for _, p := range progs {
		if err := a.Register(p); err != nil {
			t.Fatalf("register %q: %v", p.Name, err)
		}
	}
	return a
}

// TestCatalogEncodesWithinEightBytes verifies the paper's §IV-A size
// claim: with the major-divergence subtrace splits, every Table II
// trace fits the 8-byte encoding.
func TestCatalogEncodesWithinEightBytes(t *testing.T) {
	a := catalogATM(t, Catalog())
	if err := a.VerifyEncodable(); err != nil {
		t.Fatal(err)
	}
}

func TestCoarseCatalogEncodes(t *testing.T) {
	a := catalogATM(t, CoarseCatalog())
	if err := a.VerifyEncodable(); err != nil {
		t.Fatal(err)
	}
}

// commonPathAccels walks a service's steps on the common flag set,
// following tails and forks, and counts accelerator invocations —
// reproducing Table IV's "#" column.
func commonPathAccels(t *testing.T, a *atm.ATM, svc *Service) int {
	t.Helper()
	total := 0
	var chainCount func(name string, f trace.Flags)
	chainCount = func(name string, f trace.Flags) {
		p, ok := a.Lookup(name)
		if !ok {
			t.Fatalf("%s: trace %q missing", svc.Name, name)
		}
		for {
			accels, _, tail := p.Invocations(f)
			total += len(accels)
			// Count forks too.
			pc := 0
			for pc < len(p.Instrs) {
				in := p.Instrs[pc]
				if in.Kind == trace.OpFork {
					chainCount(in.TailName, f)
				}
				if in.Kind == trace.OpTail || in.Kind == trace.OpEnd {
					break
				}
				pc = p.Next(pc, f)
			}
			if tail == "" {
				return
			}
			np, ok := a.Lookup(tail)
			if !ok {
				t.Fatalf("%s: tail %q missing", svc.Name, tail)
			}
			p = np
		}
	}
	for _, st := range svc.Steps {
		probs := svc.Probs
		if st.Probs != nil {
			probs = *st.Probs
		}
		f := probs.Common()
		switch st.Kind {
		case engine.StepChain:
			chainCount(st.Trace, f)
		case engine.StepParallel:
			for _, tn := range st.Par {
				chainCount(tn, f)
			}
		}
	}
	return total
}

// TestTableIVAccelCounts validates every SocialNetwork service's
// most-common-path accelerator count against Table IV.
func TestTableIVAccelCounts(t *testing.T) {
	a := catalogATM(t, Catalog())
	for _, svc := range SocialNetwork() {
		got := commonPathAccels(t, a, svc)
		if got != svc.WantAccels {
			t.Errorf("%s: common path uses %d accelerators, Table IV says %d", svc.Name, got, svc.WantAccels)
		}
	}
}

func TestSocialNetworkRatesAverage(t *testing.T) {
	// §VI: the Alibaba-like per-service rates average 13.4K RPS.
	got := MeanRatekRPS(SocialNetwork())
	if got < 13.3 || got > 13.5 {
		t.Errorf("mean rate = %.2fK RPS, want 13.4K", got)
	}
}

func TestByName(t *testing.T) {
	svcs := SocialNetwork()
	if ByName(svcs, "Login") == nil {
		t.Error("Login not found")
	}
	if ByName(svcs, "Nope") != nil {
		t.Error("found a service that does not exist")
	}
}

// branchShare computes the fraction of distinct trace chains used by a
// suite that contain at least one conditional — the Q2 statistic.
func branchShare(t *testing.T, svcs []*Service) float64 {
	t.Helper()
	a := catalogATM(t, Catalog())
	// A chain has a conditional if any trace reachable from its start
	// (via tails or forks on any outcome) has one.
	withBranch, total := 0, 0
	for _, svc := range svcs {
		starts := []string{}
		for _, st := range svc.Steps {
			switch st.Kind {
			case engine.StepChain:
				starts = append(starts, st.Trace)
			case engine.StepParallel:
				starts = append(starts, st.Par...)
			}
		}
		for _, s := range starts {
			total++
			visited := map[string]bool{}
			var any func(name string) bool
			any = func(name string) bool {
				if visited[name] {
					return false
				}
				visited[name] = true
				p, ok := a.Lookup(name)
				if !ok {
					t.Fatalf("missing trace %q", name)
				}
				if p.HasBranch() {
					return true
				}
				for _, in := range p.Instrs {
					if (in.Kind == trace.OpTail || in.Kind == trace.OpFork) && any(in.TailName) {
						return true
					}
				}
				return false
			}
			if any(s) {
				withBranch++
			}
		}
	}
	return float64(withBranch) / float64(total)
}

// TestQ2BranchShares checks that a majority of sequences contain
// conditionals, in the same band the paper reports (53.8%-82.5%).
func TestQ2BranchShares(t *testing.T) {
	for _, suite := range AllSuites() {
		share := branchShare(t, suite.Services)
		if share < 0.40 || share > 0.95 {
			t.Errorf("%s: branch share %.1f%% outside the paper's band", suite.Name, share*100)
		}
	}
}

func TestRemoteTailsAreRegisteredTraces(t *testing.T) {
	a := catalogATM(t, Catalog())
	for name := range RemoteTails() {
		if _, ok := a.Lookup(name); !ok {
			t.Errorf("remote tail key %q is not a registered trace", name)
		}
	}
}

func TestEveryTailAndForkResolves(t *testing.T) {
	a := catalogATM(t, Catalog())
	for _, p := range Catalog() {
		for _, in := range p.Instrs {
			if in.Kind == trace.OpTail || in.Kind == trace.OpFork {
				if _, ok := a.Lookup(in.TailName); !ok {
					t.Errorf("%s references unregistered %q", p.Name, in.TailName)
				}
			}
		}
	}
}

func TestServicesHaveValidSteps(t *testing.T) {
	all := [][]*Service{SocialNetwork(), HotelReservation(), MediaServices(), TrainTicket(), Serverless()}
	a := catalogATM(t, Catalog())
	for _, group := range all {
		for _, svc := range group {
			if len(svc.Steps) == 0 {
				t.Errorf("%s has no steps", svc.Name)
			}
			if svc.PayloadMedian <= 0 || svc.PayloadSigma <= 0 {
				t.Errorf("%s has no payload distribution", svc.Name)
			}
			for _, st := range svc.Steps {
				switch st.Kind {
				case engine.StepChain:
					if _, ok := a.Lookup(st.Trace); !ok {
						t.Errorf("%s uses unregistered trace %q", svc.Name, st.Trace)
					}
				case engine.StepParallel:
					for _, tn := range st.Par {
						if _, ok := a.Lookup(tn); !ok {
							t.Errorf("%s uses unregistered trace %q", svc.Name, tn)
						}
					}
				}
			}
			j := svc.Job(3)
			if j.Tenant != 3 || j.Service != svc.Name {
				t.Errorf("%s Job() lost fields", svc.Name)
			}
		}
	}
}

// TestTableIConnectivity reproduces Table I's structure from the trace
// catalog: every accelerator must have the flexible multi-source,
// multi-destination connectivity the paper reports.
func TestTableIConnectivity(t *testing.T) {
	c := trace.NewConnectivity()
	for _, p := range Catalog() {
		c.AddProgram(p)
	}
	// Spot-check rows of Table I.
	if !c.Sources[config.Decr][trace.Endpoint(config.TCP)] {
		t.Error("Decr should source from TCP")
	}
	if !c.Destinations[config.Decr][trace.Endpoint(config.RPC)] {
		t.Error("Decr should feed RPC")
	}
	if !c.Destinations[config.Decr][trace.Endpoint(config.Dser)] {
		t.Error("Decr should feed Dser")
	}
	if !c.Sources[config.TCP][trace.Endpoint(config.Encr)] {
		t.Error("TCP should source from Encr")
	}
	if !c.Destinations[config.LdB][trace.EndpointCPU] {
		t.Error("LdB should feed the CPU")
	}
	// Every accelerator participates.
	for _, k := range config.AllAccelKinds() {
		if len(c.Sources[k]) == 0 {
			t.Errorf("%v has no sources in the catalog", k)
		}
	}
	// The Cohort static pairs must be among the top pairs.
	top := c.TopPairs(6)
	found := 0
	want := map[[2]config.AccelKind]bool{
		{config.Encr, config.TCP}: true,
		{config.TCP, config.Decr}: true,
		{config.Ser, config.Encr}: true,
	}
	for _, p := range top {
		if want[p] {
			found++
		}
	}
	if found < 2 {
		t.Errorf("default Cohort pairs not among top-6 catalog pairs: %v", top)
	}
}

func TestCoarseAppsValid(t *testing.T) {
	a := catalogATM(t, CoarseCatalog())
	cfg := CoarseConfig()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, app := range CoarseApps() {
		for _, st := range app.Steps {
			if st.Kind == engine.StepChain {
				if _, ok := a.Lookup(st.Trace); !ok {
					t.Errorf("%s uses unregistered coarse trace %q", app.Name, st.Trace)
				}
			}
		}
	}
	// Coarse accelerator costs must dwarf fine-grained ones.
	fine := config.Default()
	if cfg.AccelCost(CoarseGauss, 1<<20) <= fine.AccelCost(config.TCP, 2048) {
		t.Error("coarse accel cost not coarse")
	}
	names := map[string]bool{}
	for _, k := range []config.AccelKind{CoarseGauss, CoarseSobel, CoarseNonMax, CoarseThresh, CoarseGEMM, CoarseLSTM, CoarsePool} {
		n := CoarseAccelName(k)
		if names[n] {
			t.Errorf("duplicate coarse name %q", n)
		}
		names[n] = true
	}
	if CoarseAccelName(config.LdB) != "LdB" {
		t.Error("unmapped slot should keep its ensemble name")
	}
}

// Package benchfmt defines the schema-versioned benchmark snapshot
// format behind the repo's committed BENCH_<date>.json trajectory, and
// the parser that turns `go test -bench -benchmem` output into it.
//
// A snapshot is one measured point: per-benchmark ns/op plus the
// derived trajectory metrics (ns/event, events/sec, allocs/request,
// computed from the events/op and requests/op custom metrics the root
// benchmarks report), host metadata, and optionally the previous
// committed point embedded as a baseline with speedup ratios. The
// format is append-only versioned: readers reject snapshots whose
// schema string they do not know, so a future v2 cannot be silently
// misread as v1.
package benchfmt

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Schema identifies the snapshot format. Bump on incompatible change.
const Schema = "accelflow/bench/v1"

// Host records where a snapshot was measured. Benchmark numbers are
// only comparable within similar hosts; the CI regression gate is
// deliberately loose (see Compare) because runners differ.
type Host struct {
	GoVersion string `json:"go_version"`
	OS        string `json:"os"`
	Arch      string `json:"arch"`
	CPUs      int    `json:"cpus"`
	CPUModel  string `json:"cpu_model,omitempty"`
}

// ComparableTo reports whether benchmark numbers measured on h are
// meaningfully comparable to ones measured on other, with a
// human-readable reason when they are not. A CPU-count mismatch makes
// the parallel benchmarks (sharded fleet scaling, parallel sweeps)
// measure different machines entirely — a 1-core container's flat
// scaling curve would read as a massive "regression" of a 16-core
// snapshot and vice versa — so gating across it emits false verdicts
// and must be skipped. An unrecorded count (0, from a pre-cpus
// snapshot) cannot prove a mismatch and compares as equal.
func (h Host) ComparableTo(other Host) (bool, string) {
	if h.CPUs > 0 && other.CPUs > 0 && h.CPUs != other.CPUs {
		return false, fmt.Sprintf("host cpu counts differ (%d vs %d); parallel-scaling numbers are not comparable", h.CPUs, other.CPUs)
	}
	return true, ""
}

// Benchmark is one benchmark's measured point: the best (minimum
// ns/op) of the folded runs, with that run's companion metrics.
type Benchmark struct {
	// Name is the benchmark name without the "Benchmark" prefix and
	// without the -GOMAXPROCS suffix, e.g. "RunObsDisabled".
	Name       string  `json:"name"`
	Runs       int     `json:"runs"`
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`

	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`

	// EventsPerOp / RequestsPerOp come from the benchmarks' custom
	// b.ReportMetric units; the three derived fields below are what the
	// trajectory tracks across PRs.
	EventsPerOp   float64 `json:"events_per_op,omitempty"`
	RequestsPerOp float64 `json:"requests_per_op,omitempty"`

	NsPerEvent       float64 `json:"ns_per_event,omitempty"`
	EventsPerSec     float64 `json:"events_per_sec,omitempty"`
	AllocsPerRequest float64 `json:"allocs_per_request,omitempty"`

	// Extra holds any further custom metrics verbatim by unit.
	Extra map[string]float64 `json:"extra,omitempty"`
}

// Snapshot is one committed trajectory point.
type Snapshot struct {
	Schema     string      `json:"schema"`
	Date       string      `json:"date"`
	Host       Host        `json:"host"`
	Benchmarks []Benchmark `json:"benchmarks"`

	// Baseline embeds the previous trajectory point (without its own
	// baseline, so snapshots do not grow unboundedly), and Speedup maps
	// benchmark name -> baseline ns/op / current ns/op.
	Baseline *Snapshot          `json:"baseline,omitempty"`
	Speedup  map[string]float64 `json:"speedup_vs_baseline,omitempty"`
}

// Find returns the named benchmark, or nil.
func (s *Snapshot) Find(name string) *Benchmark {
	for i := range s.Benchmarks {
		if s.Benchmarks[i].Name == name {
			return &s.Benchmarks[i]
		}
	}
	return nil
}

// ParseTestOutput reads `go test -bench` text output and folds it into
// a Snapshot: one Benchmark per name, keeping the run with the minimum
// ns/op (the least-noise sample) and counting the folded runs. The
// host CPU model is taken from the "cpu:" banner line when present.
// It is an error if the output contains no benchmark result lines or a
// malformed one.
func ParseTestOutput(r io.Reader) (*Snapshot, error) {
	s := &Snapshot{Schema: Schema}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if cpu, ok := strings.CutPrefix(line, "cpu:"); ok {
			s.Host.CPUModel = strings.TrimSpace(cpu)
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		b, err := parseBenchLine(line)
		if err != nil {
			return nil, err
		}
		if prev := s.Find(b.Name); prev != nil {
			runs := prev.Runs + 1
			if b.NsPerOp < prev.NsPerOp {
				*prev = b
			}
			prev.Runs = runs
			continue
		}
		s.Benchmarks = append(s.Benchmarks, b)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("benchfmt: reading bench output: %w", err)
	}
	if len(s.Benchmarks) == 0 {
		return nil, fmt.Errorf("benchfmt: no benchmark result lines found")
	}
	sort.Slice(s.Benchmarks, func(i, j int) bool {
		return s.Benchmarks[i].Name < s.Benchmarks[j].Name
	})
	for i := range s.Benchmarks {
		s.Benchmarks[i].derive()
	}
	return s, nil
}

// parseBenchLine parses one result line:
//
//	BenchmarkFoo-8   2   14255128 ns/op   25383 events/op   6906000 B/op   190673 allocs/op
func parseBenchLine(line string) (Benchmark, error) {
	f := strings.Fields(line)
	if len(f) < 4 || len(f)%2 != 0 {
		return Benchmark{}, fmt.Errorf("benchfmt: malformed benchmark line %q", line)
	}
	name := strings.TrimPrefix(f[0], "Benchmark")
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return Benchmark{}, fmt.Errorf("benchfmt: bad iteration count in %q: %w", line, err)
	}
	b := Benchmark{Name: name, Runs: 1, Iterations: iters}
	for i := 2; i < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return Benchmark{}, fmt.Errorf("benchfmt: bad value %q in %q: %w", f[i], line, err)
		}
		switch unit := f[i+1]; unit {
		case "ns/op":
			b.NsPerOp = v
		case "B/op":
			b.BytesPerOp = v
		case "allocs/op":
			b.AllocsPerOp = v
		case "events/op":
			b.EventsPerOp = v
		case "requests/op":
			b.RequestsPerOp = v
		default:
			if b.Extra == nil {
				b.Extra = map[string]float64{}
			}
			b.Extra[unit] = v
		}
	}
	if b.NsPerOp == 0 {
		return Benchmark{}, fmt.Errorf("benchfmt: benchmark line %q has no ns/op", line)
	}
	return b, nil
}

// derive fills the trajectory metrics computable from the raw ones.
func (b *Benchmark) derive() {
	if b.EventsPerOp > 0 {
		b.NsPerEvent = b.NsPerOp / b.EventsPerOp
		b.EventsPerSec = b.EventsPerOp / (b.NsPerOp * 1e-9)
	}
	if b.RequestsPerOp > 0 && b.AllocsPerOp > 0 {
		b.AllocsPerRequest = b.AllocsPerOp / b.RequestsPerOp
	}
}

// SetBaseline embeds prev as this snapshot's baseline (stripped of its
// own baseline chain) and computes per-benchmark speedups for the
// names both snapshots measured.
func (s *Snapshot) SetBaseline(prev *Snapshot) {
	if prev == nil {
		return
	}
	base := *prev
	base.Baseline = nil
	base.Speedup = nil
	s.Baseline = &base
	s.Speedup = map[string]float64{}
	for i := range s.Benchmarks {
		cur := &s.Benchmarks[i]
		if old := base.Find(cur.Name); old != nil && cur.NsPerOp > 0 {
			s.Speedup[cur.Name] = old.NsPerOp / cur.NsPerOp
		}
	}
	if len(s.Speedup) == 0 {
		s.Speedup = nil
	}
}

// Encode writes the snapshot as indented, deterministic JSON.
func (s *Snapshot) Encode(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// Decode reads and validates a snapshot. Unknown schema strings are an
// error: a future incompatible format must not be silently misread.
func Decode(r io.Reader) (*Snapshot, error) {
	var s Snapshot
	dec := json.NewDecoder(r)
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("benchfmt: decoding snapshot: %w", err)
	}
	if s.Schema != Schema {
		return nil, fmt.Errorf("benchfmt: unknown schema %q (want %q)", s.Schema, Schema)
	}
	if len(s.Benchmarks) == 0 {
		return nil, fmt.Errorf("benchfmt: snapshot has no benchmarks")
	}
	for _, b := range s.Benchmarks {
		if b.Name == "" || b.NsPerOp <= 0 {
			return nil, fmt.Errorf("benchfmt: snapshot benchmark %+v missing name or ns/op", b)
		}
	}
	return &s, nil
}

// Regression is one benchmark that exceeded the gate.
type Regression struct {
	Name          string
	CurrentNsOp   float64
	CommittedNsOp float64
	Ratio         float64
	Gate          float64
}

func (r Regression) String() string {
	return fmt.Sprintf("%s: %.0f ns/op vs committed %.0f ns/op (%.2fx > %.1fx gate)",
		r.Name, r.CurrentNsOp, r.CommittedNsOp, r.Ratio, r.Gate)
}

// Compare checks current against a committed snapshot with a
// multiplicative gate: a benchmark regresses when its current ns/op
// exceeds gate times the committed value. The gate is deliberately
// generous (CI default 3x) because snapshots cross machines — it
// exists to catch order-of-magnitude regressions, not noise.
// Benchmarks present on only one side are ignored.
func Compare(current, committed *Snapshot, gate float64) []Regression {
	if gate <= 0 {
		gate = 3
	}
	var regs []Regression
	for _, cur := range current.Benchmarks {
		old := committed.Find(cur.Name)
		if old == nil || old.NsPerOp <= 0 {
			continue
		}
		if ratio := cur.NsPerOp / old.NsPerOp; ratio > gate {
			regs = append(regs, Regression{
				Name: cur.Name, CurrentNsOp: cur.NsPerOp,
				CommittedNsOp: old.NsPerOp, Ratio: ratio, Gate: gate,
			})
		}
	}
	return regs
}

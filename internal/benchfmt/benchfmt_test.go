package benchfmt

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

// sampleOutput is a realistic `go test -bench -benchmem -count=2`
// capture: banner lines, two runs per benchmark (the second
// RunObsDisabled run is faster and must win the fold), a custom-unit
// metric, and a GOMAXPROCS suffix to strip.
const sampleOutput = `goos: linux
goarch: amd64
pkg: accelflow
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkRunObsDisabled-8 	       2	  14255128 ns/op	     25383 events/op	       300.0 requests/op	 6906000 B/op	  190673 allocs/op
BenchmarkRunObsDisabled-8 	       2	  13990001 ns/op	     25383 events/op	       300.0 requests/op	 6905800 B/op	  190671 allocs/op
BenchmarkSweepSerial 	       1	1046951878 ns/op	 421034648 B/op	11656218 allocs/op
BenchmarkFig13Ablation 	       2	  20000000 ns/op	         0.8123 reduction/AccelFlow
PASS
ok  	accelflow	3.5s
`

func TestParseTestOutput(t *testing.T) {
	s, err := ParseTestOutput(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if s.Host.CPUModel != "Intel(R) Xeon(R) Processor @ 2.10GHz" {
		t.Errorf("cpu model = %q", s.Host.CPUModel)
	}
	if len(s.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(s.Benchmarks))
	}
	b := s.Find("RunObsDisabled")
	if b == nil {
		t.Fatal("RunObsDisabled not found (GOMAXPROCS suffix not stripped?)")
	}
	if b.Runs != 2 {
		t.Errorf("runs = %d, want 2", b.Runs)
	}
	if b.NsPerOp != 13990001 {
		t.Errorf("ns/op = %v, want the min-run 13990001", b.NsPerOp)
	}
	if b.EventsPerOp != 25383 || b.RequestsPerOp != 300 {
		t.Errorf("custom metrics = %v events/op %v requests/op", b.EventsPerOp, b.RequestsPerOp)
	}
	wantNsPerEvent := 13990001.0 / 25383
	if diff := b.NsPerEvent - wantNsPerEvent; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("ns/event = %v, want %v", b.NsPerEvent, wantNsPerEvent)
	}
	wantEps := 25383 / (13990001 * 1e-9)
	if rel := (b.EventsPerSec - wantEps) / wantEps; rel > 1e-12 || rel < -1e-12 {
		t.Errorf("events/sec = %v, want %v", b.EventsPerSec, wantEps)
	}
	wantApr := 190671.0 / 300
	if b.AllocsPerRequest != wantApr {
		t.Errorf("allocs/request = %v, want %v", b.AllocsPerRequest, wantApr)
	}
	if fig := s.Find("Fig13Ablation"); fig == nil || fig.Extra["reduction/AccelFlow"] != 0.8123 {
		t.Errorf("custom unit not preserved: %+v", fig)
	}
	if sweep := s.Find("SweepSerial"); sweep == nil || sweep.EventsPerSec != 0 {
		t.Errorf("sweep without events/op must not derive events/sec: %+v", sweep)
	}
}

// TestRoundTrip is the schema round trip: parse -> emit -> parse must
// be lossless, including the embedded baseline and speedup map.
func TestRoundTrip(t *testing.T) {
	s, err := ParseTestOutput(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	s.Date = "2026-08-08"
	s.Host.GoVersion = "go1.24.0"
	s.Host.OS, s.Host.Arch, s.Host.CPUs = "linux", "amd64", 8

	prev, err := ParseTestOutput(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	prev.Date = "2026-07-01"
	prev.Benchmarks[0].NsPerOp *= 2 // pretend the baseline was 2x slower
	s.SetBaseline(prev)

	var buf bytes.Buffer
	if err := s.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("decoding emitted snapshot: %v\n%s", err, buf.String())
	}
	if !reflect.DeepEqual(s, got) {
		t.Errorf("round trip not lossless:\n in: %+v\nout: %+v", s, got)
	}

	// Emit the decoded copy again: byte-identical output proves the
	// encoder is deterministic.
	var buf2 bytes.Buffer
	if err := got.Encode(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Error("re-encoding a decoded snapshot changed bytes")
	}
}

func TestSetBaselineSpeedup(t *testing.T) {
	cur, _ := ParseTestOutput(strings.NewReader(sampleOutput))
	prev, _ := ParseTestOutput(strings.NewReader(sampleOutput))
	prev.Find("RunObsDisabled").NsPerOp = 2 * cur.Find("RunObsDisabled").NsPerOp
	cur.SetBaseline(prev)
	if sp := cur.Speedup["RunObsDisabled"]; sp != 2 {
		t.Errorf("speedup = %v, want 2", sp)
	}
	if cur.Baseline == nil || cur.Baseline.Baseline != nil {
		t.Error("baseline must be embedded exactly one level deep")
	}
}

// TestMalformedBenchOutput covers the parser's error paths: each input
// must produce an error, not a silent zero snapshot.
func TestMalformedBenchOutput(t *testing.T) {
	cases := map[string]string{
		"empty":            "",
		"no bench lines":   "goos: linux\nPASS\nok accelflow 1s\n",
		"odd field count":  "BenchmarkX 2 100 ns/op 42\n",
		"too few fields":   "BenchmarkX 2\n",
		"bad iterations":   "BenchmarkX two 100 ns/op\n",
		"bad metric value": "BenchmarkX 2 abc ns/op\n",
		"missing ns/op":    "BenchmarkX 2 100 B/op\n",
	}
	for name, in := range cases {
		if _, err := ParseTestOutput(strings.NewReader(in)); err == nil {
			t.Errorf("%s: ParseTestOutput accepted malformed input %q", name, in)
		}
	}
}

// TestDecodeRejects covers the snapshot reader's validation: wrong
// schema, truncated JSON, and structurally hollow snapshots.
func TestDecodeRejects(t *testing.T) {
	cases := map[string]string{
		"truncated json": `{"schema": "accelflow/bench/v1", "benchmarks": [`,
		"wrong schema":   `{"schema": "accelflow/bench/v999", "benchmarks": [{"name":"X","ns_per_op":1}]}`,
		"no schema":      `{"benchmarks": [{"name":"X","ns_per_op":1}]}`,
		"no benchmarks":  `{"schema": "accelflow/bench/v1", "benchmarks": []}`,
		"nameless bench": `{"schema": "accelflow/bench/v1", "benchmarks": [{"ns_per_op":1}]}`,
		"zero ns/op":     `{"schema": "accelflow/bench/v1", "benchmarks": [{"name":"X"}]}`,
	}
	for name, in := range cases {
		if _, err := Decode(strings.NewReader(in)); err == nil {
			t.Errorf("%s: Decode accepted %q", name, in)
		}
	}
}

func TestCompareGate(t *testing.T) {
	committed, _ := ParseTestOutput(strings.NewReader(sampleOutput))
	current, _ := ParseTestOutput(strings.NewReader(sampleOutput))

	if regs := Compare(current, committed, 3); len(regs) != 0 {
		t.Errorf("identical snapshots regressed: %v", regs)
	}
	current.Find("RunObsDisabled").NsPerOp = 2.9 * committed.Find("RunObsDisabled").NsPerOp
	if regs := Compare(current, committed, 3); len(regs) != 0 {
		t.Errorf("2.9x inside a 3x gate flagged: %v", regs)
	}
	current.Find("RunObsDisabled").NsPerOp = 3.1 * committed.Find("RunObsDisabled").NsPerOp
	regs := Compare(current, committed, 3)
	if len(regs) != 1 || regs[0].Name != "RunObsDisabled" {
		t.Fatalf("3.1x outside a 3x gate not flagged exactly once: %v", regs)
	}
	if got := regs[0].String(); !strings.Contains(got, "RunObsDisabled") || !strings.Contains(got, "3.0x gate") {
		t.Errorf("regression string uninformative: %q", got)
	}

	// A benchmark present on only one side is ignored, not a failure.
	current.Benchmarks = append(current.Benchmarks, Benchmark{Name: "OnlyHere", NsPerOp: 1e12})
	if regs := Compare(current, committed, 3); len(regs) != 1 {
		t.Errorf("one-sided benchmark changed the verdict: %v", regs)
	}
}

// TestHostComparable: the regression gate only runs between hosts with
// matching CPU counts; an unrecorded count cannot prove a mismatch.
func TestHostComparable(t *testing.T) {
	one := Host{CPUs: 1}
	sixteen := Host{CPUs: 16}
	if ok, reason := one.ComparableTo(sixteen); ok || reason == "" {
		t.Errorf("1-cpu vs 16-cpu hosts compared as comparable (%q)", reason)
	}
	if ok, _ := one.ComparableTo(one); !ok {
		t.Error("identical hosts not comparable")
	}
	if ok, _ := (Host{}).ComparableTo(sixteen); !ok {
		t.Error("unrecorded cpu count must not prove a mismatch")
	}
	if ok, _ := sixteen.ComparableTo(Host{}); !ok {
		t.Error("unrecorded cpu count must not prove a mismatch (reversed)")
	}
}

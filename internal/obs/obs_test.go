package obs

import (
	"bytes"
	"encoding/json"
	"testing"

	"accelflow/internal/sim"
)

// fakeClock is a settable Clock for driving spans without a kernel.
type fakeClock struct{ t sim.Time }

func (c *fakeClock) Now() sim.Time { return c.t }

func TestNilSinkIsSafe(t *testing.T) {
	var s *Sink
	if s.Enabled() {
		t.Fatal("nil sink reports enabled")
	}
	s.SetClock(&fakeClock{})
	sp := s.BeginRequest("svc")
	if sp != nil {
		t.Fatal("nil sink returned non-nil span")
	}
	// Everything below must be a no-op, not a panic.
	child := sp.Child(SpanChain, "c")
	child.Seg(SegQueue, "pe", 0, 10)
	child.QueuedSeg(SegCompute, "pe", 0, 5)
	child.End()
	sp.End()
	s.Sample("pe", 0, 0.5)
	if got := s.Spans(); got != nil {
		t.Fatalf("nil sink Spans() = %v, want nil", got)
	}
	if s.SpanCount() != 0 || s.SampleInterval() != 0 {
		t.Fatal("nil sink reported non-zero state")
	}
	var buf bytes.Buffer
	if err := s.WriteChromeTrace(&buf); err != nil {
		t.Fatalf("nil sink trace: %v", err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatalf("nil sink trace is not valid JSON: %s", buf.String())
	}
	if err := s.WriteReport(&buf); err != nil {
		t.Fatalf("nil sink report: %v", err)
	}
}

func TestSpanTreeRecording(t *testing.T) {
	clk := &fakeClock{}
	s := New()
	s.SetClock(clk)

	req := s.BeginRequest("svcA")
	clk.t = 100
	chain := req.Child(SpanChain, "prog1")
	clk.t = 150
	chain.Seg(SegQueue, "pe/TCP", 100, 120)
	chain.Seg(SegCompute, "pe/TCP", 120, 150)
	chain.End()
	clk.t = 180
	req.End()
	req.End() // double-End keeps the first end time
	clk.t = 500

	spans := s.Spans()
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	r, c := spans[0], spans[1]
	if r.Kind != SpanRequest || r.Name != "svcA" || r.Parent != -1 {
		t.Fatalf("bad root span: %+v", r)
	}
	if r.Start != 0 || r.End != 180 {
		t.Fatalf("root span window [%d,%d], want [0,180]", r.Start, r.End)
	}
	if c.Parent != r.ID || c.Kind != SpanChain {
		t.Fatalf("bad child span: %+v", c)
	}
	if len(c.Segs) != 2 || c.Segs[0].Kind != SegQueue || c.Segs[1].End != 150 {
		t.Fatalf("bad child segs: %+v", c.Segs)
	}
}

func TestQueuedSegSplitsWaitAndHold(t *testing.T) {
	clk := &fakeClock{}
	s := New()
	s.SetClock(clk)
	sp := s.BeginRequest("svc")

	// Engagement began at t0=10; the resource finished at now=100
	// after holding for 30 -> wait [10,70), hold [70,100).
	clk.t = 100
	sp.QueuedSeg(SegDispatch, "cores", 10, 30)
	segs := s.Spans()[0].Segs
	if len(segs) != 2 {
		t.Fatalf("got %d segs, want 2: %+v", len(segs), segs)
	}
	if segs[0].Kind != SegQueue || segs[0].Start != 10 || segs[0].End != 70 {
		t.Fatalf("wait seg = %+v", segs[0])
	}
	if segs[1].Kind != SegDispatch || segs[1].Start != 70 || segs[1].End != 100 {
		t.Fatalf("hold seg = %+v", segs[1])
	}

	// No waiting: only the hold segment is recorded.
	clk.t = 130
	sp.QueuedSeg(SegDispatch, "cores", 100, 30)
	segs = s.Spans()[0].Segs
	if len(segs) != 3 || segs[2].Start != 100 || segs[2].End != 130 {
		t.Fatalf("no-wait segs = %+v", segs)
	}
}

func TestChromeTraceShape(t *testing.T) {
	clk := &fakeClock{}
	s := New()
	s.SetClock(clk)
	req := s.BeginRequest("svc")
	clk.t = 2 * sim.Microsecond
	ent := req.Child(SpanEntry, "prog")
	ent.Seg(SegCompute, "pe/TCP", sim.Microsecond, 2*sim.Microsecond)
	ent.End()
	req.End()
	s.Sample("pe/TCP", sim.Microsecond, 0.75)

	var buf bytes.Buffer
	if err := s.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	counts := map[string]int{}
	for _, ev := range doc.TraceEvents {
		counts[ev["ph"].(string)]++
	}
	// 2 spans -> 2 b + 2 e; 1 seg -> 1 X; 1 sample -> 1 C;
	// 2 process metas + 1 counter thread meta -> 3 M.
	want := map[string]int{"b": 2, "e": 2, "X": 1, "C": 1, "M": 3}
	for ph, n := range want {
		if counts[ph] != n {
			t.Errorf("ph %q count = %d, want %d (all: %v)", ph, counts[ph], n, counts)
		}
	}

	// Byte-determinism: re-export must be identical.
	var buf2 bytes.Buffer
	if err := s.WriteChromeTrace(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("re-export produced different bytes")
	}
}

func TestReportAggregation(t *testing.T) {
	clk := &fakeClock{}
	s := New()
	s.SetClock(clk)

	// Two requests for svcA at 3us and 5us, one for svcB at 10us.
	mk := func(svc string, start, end sim.Time) {
		clk.t = start
		sp := s.BeginRequest(svc)
		sp.Seg(SegCompute, "pe/TCP", start, end)
		clk.t = end
		sp.End()
	}
	mk("svcA", 0, 3*sim.Microsecond)
	mk("svcA", 0, 5*sim.Microsecond)
	mk("svcB", 0, 10*sim.Microsecond)
	s.Sample("dram", sim.Microsecond, 0.25)
	s.Sample("dram", 2*sim.Microsecond, 0.75)

	rep := s.BuildReport()
	if rep.Requests != 3 || rep.Spans != 3 {
		t.Fatalf("requests=%d spans=%d, want 3/3", rep.Requests, rep.Spans)
	}
	if len(rep.Services) != 2 || rep.Services[0].Service != "svcA" || rep.Services[1].Service != "svcB" {
		t.Fatalf("services = %+v", rep.Services)
	}
	a := rep.Services[0]
	if a.Count != 2 || a.MeanUs != 4 || a.MaxUs != 5 {
		t.Fatalf("svcA stats = %+v", a)
	}
	// 3us -> bucket 1 ([2,4)), 5us -> bucket 2 ([4,8)).
	if len(a.Histogram) != 3 || a.Histogram[1] != 1 || a.Histogram[2] != 1 {
		t.Fatalf("svcA histogram = %v", a.Histogram)
	}
	if got := rep.SegByKind["compute"]; got != 18 {
		t.Fatalf("compute total = %v us, want 18", got)
	}
	if got := rep.SegByRes["pe/TCP"]; got != 18 {
		t.Fatalf("pe/TCP total = %v us, want 18", got)
	}
	if len(rep.Utilization) != 1 || rep.Utilization[0].Mean != 0.5 || rep.Utilization[0].Max != 0.75 {
		t.Fatalf("utilization = %+v", rep.Utilization)
	}

	var buf bytes.Buffer
	if err := s.WriteReport(&buf); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatal("report is not valid JSON")
	}
}

func TestKernelEveryStopsWithSimulation(t *testing.T) {
	k := sim.NewKernel()
	var ticks []sim.Time
	// Stimulus ends at t=100ns; sampler at 30ns period must observe
	// t=30,60,90 and then fire once more after the last event without
	// keeping the kernel alive forever.
	k.At(100*sim.Nanosecond, func() {})
	k.Every(30*sim.Nanosecond, func() { ticks = append(ticks, k.Now()) })
	k.Run()
	if k.Pending() != 0 {
		t.Fatalf("pending=%d after Run", k.Pending())
	}
	want := []sim.Time{30 * sim.Nanosecond, 60 * sim.Nanosecond, 90 * sim.Nanosecond, 120 * sim.Nanosecond}
	if len(ticks) != len(want) {
		t.Fatalf("ticks = %v, want %v", ticks, want)
	}
	for i := range want {
		if ticks[i] != want[i] {
			t.Fatalf("ticks = %v, want %v", ticks, want)
		}
	}
}

package obs

import (
	"fmt"
	"io"
)

// Artifact names one of the Sink's streamable export formats, the unit
// the serving layer exposes for download.
type Artifact string

const (
	// ArtifactTrace is the Chrome trace-event JSON (WriteChromeTrace).
	ArtifactTrace Artifact = "trace"
	// ArtifactReport is the structured JSON report (WriteReport).
	ArtifactReport Artifact = "report"
)

// Artifacts lists the exportable formats in a fixed order.
func Artifacts() []Artifact { return []Artifact{ArtifactTrace, ArtifactReport} }

// WriteArtifact streams the named export to w. Exports only read the
// recorded data (spans are copied, aggregation uses local state), so
// concurrent WriteArtifact calls on the same finished Sink are safe —
// the serving layer relies on this to stream one run's artifacts to
// several HTTP clients at once. Unknown names are an error; a nil sink
// writes the corresponding empty export.
func (s *Sink) WriteArtifact(a Artifact, w io.Writer) error {
	switch a {
	case ArtifactTrace:
		return s.WriteChromeTrace(w)
	case ArtifactReport:
		return s.WriteReport(w)
	}
	return fmt.Errorf("obs: unknown artifact %q", a)
}

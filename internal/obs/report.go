// Structured per-run report: latency histograms per service, segment
// breakdowns by kind and by resource, and the sampled utilization
// series — everything a later analysis needs without re-parsing the
// Chrome trace.
package obs

import (
	"bufio"
	"encoding/json"
	"io"
	"math/bits"
	"sort"

	"accelflow/internal/sim"
)

// Report is the machine-readable summary of one observed run. All
// times are microseconds (float) to match the trace export.
type Report struct {
	Requests    int                        `json:"requests"`
	Spans       int                        `json:"spans"`
	Services    []ServiceReport            `json:"services"`
	SegByKind   map[string]float64         `json:"segUsByKind"`
	SegByRes    map[string]float64         `json:"segUsByResource"`
	Utilization []SeriesReport             `json:"utilization"`
	KindByRes   map[string]map[string]float64 `json:"segUsByResourceKind"`
}

// ServiceReport aggregates the request spans of one service.
type ServiceReport struct {
	Service string  `json:"service"`
	Count   int     `json:"count"`
	MeanUs  float64 `json:"meanUs"`
	P50Us   float64 `json:"p50Us"`
	P99Us   float64 `json:"p99Us"`
	MaxUs   float64 `json:"maxUs"`
	// Histogram buckets request latencies by power-of-two microsecond
	// ranges: bucket i counts latencies in [2^i, 2^(i+1)) us, bucket 0
	// additionally holds everything below 1us.
	Histogram []int `json:"histogramLog2Us"`
}

// SeriesReport is one utilization timeline with summary stats.
type SeriesReport struct {
	Name   string    `json:"name"`
	Mean   float64   `json:"mean"`
	Max    float64   `json:"max"`
	TimeUs []float64 `json:"timeUs"`
	Values []float64 `json:"values"`
}

// BuildReport aggregates the recorded spans and series. Safe on a nil
// sink (returns an empty report).
func (s *Sink) BuildReport() *Report {
	rep := &Report{
		SegByKind: map[string]float64{},
		SegByRes:  map[string]float64{},
		KindByRes: map[string]map[string]float64{},
	}
	if s == nil {
		return rep
	}

	spans := s.Spans()
	rep.Spans = len(spans)
	byService := map[string][]sim.Time{}
	var services []string
	for _, sd := range spans {
		if sd.Kind == SpanRequest {
			rep.Requests++
			if _, ok := byService[sd.Name]; !ok {
				services = append(services, sd.Name)
			}
			byService[sd.Name] = append(byService[sd.Name], sd.End-sd.Start)
		}
		for _, seg := range sd.Segs {
			us := usec(seg.End - seg.Start)
			k, r := seg.Kind.String(), seg.Resource
			rep.SegByKind[k] += us
			rep.SegByRes[r] += us
			m := rep.KindByRes[r]
			if m == nil {
				m = map[string]float64{}
				rep.KindByRes[r] = m
			}
			m[k] += us
		}
	}

	sort.Strings(services)
	for _, svc := range services {
		lats := byService[svc]
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		sr := ServiceReport{Service: svc, Count: len(lats)}
		var sum float64
		maxBucket := 0
		buckets := map[int]int{}
		for _, l := range lats {
			us := usec(l)
			sum += us
			b := 0
			if whole := uint64(us); whole > 0 {
				b = bits.Len64(whole) - 1
			}
			buckets[b]++
			if b > maxBucket {
				maxBucket = b
			}
		}
		sr.MeanUs = sum / float64(len(lats))
		sr.P50Us = usec(nearestRank(lats, 50))
		sr.P99Us = usec(nearestRank(lats, 99))
		sr.MaxUs = usec(lats[len(lats)-1])
		sr.Histogram = make([]int, maxBucket+1)
		for b, n := range buckets {
			sr.Histogram[b] = n
		}
		rep.Services = append(rep.Services, sr)
	}

	for _, sv := range s.SeriesList() {
		sr := SeriesReport{Name: sv.Name}
		var sum float64
		for i := range sv.Times {
			sr.TimeUs = append(sr.TimeUs, usec(sv.Times[i]))
			v := sv.Values[i]
			sr.Values = append(sr.Values, v)
			sum += v
			if v > sr.Max {
				sr.Max = v
			}
		}
		if n := len(sv.Values); n > 0 {
			sr.Mean = sum / float64(n)
		}
		rep.Utilization = append(rep.Utilization, sr)
	}
	return rep
}

// nearestRank is the nearest-rank percentile of a sorted slice,
// matching metrics.Recorder.Percentile.
func nearestRank(sorted []sim.Time, p float64) sim.Time {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(p/100*float64(len(sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// WriteReport writes the report as indented JSON. encoding/json sorts
// map keys, so the bytes depend only on the recorded data.
func (s *Sink) WriteReport(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	enc.SetIndent("", "  ")
	enc.SetEscapeHTML(false)
	if err := enc.Encode(s.BuildReport()); err != nil {
		return err
	}
	return bw.Flush()
}

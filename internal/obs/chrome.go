// Chrome trace-event export: renders the recorded span tree and
// utilization series in the trace-event JSON format that
// chrome://tracing and Perfetto load. Spans become async "b"/"e"
// event pairs, segments become "X" complete events, and utilization
// series become "C" counter events.
package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"accelflow/internal/sim"
)

// Synthetic pid/tid layout for the trace viewer: spans and segments
// live in one "requests" process, counters in a "utilization" process.
const (
	pidRequests = 1
	pidUtil     = 2
)

// chromeEvent is one trace-event record. Field order is fixed by the
// struct, and encoding/json emits struct fields in declaration order,
// so the byte stream is fully determined by the recorded data.
type chromeEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat,omitempty"`
	Ph    string         `json:"ph"`
	TS    float64        `json:"ts"`
	Dur   *float64       `json:"dur,omitempty"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	ID    string         `json:"id,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
	Scope string         `json:"s,omitempty"`
}

// usec converts integer picoseconds to the float microseconds the
// trace-event format expects.
func usec(t sim.Time) float64 { return float64(t) / 1e6 }

// WriteChromeTrace writes the run as a Chrome trace-event JSON object
// ({"traceEvents": [...], ...}). Safe on a nil sink (writes an empty
// trace). Output bytes depend only on the recorded data.
func (s *Sink) WriteChromeTrace(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(`{"displayTimeUnit":"ms","traceEvents":[`); err != nil {
		return err
	}
	enc := json.NewEncoder(bw)
	enc.SetEscapeHTML(false)
	first := true
	emit := func(ev chromeEvent) error {
		if !first {
			if err := bw.WriteByte(','); err != nil {
				return err
			}
		}
		first = false
		// Encoder appends a newline after each value; keep it — it makes
		// the file diffable while remaining valid JSON.
		return enc.Encode(ev)
	}

	for _, ev := range s.chromeEvents() {
		if err := emit(ev); err != nil {
			return err
		}
	}
	if _, err := bw.WriteString("]}\n"); err != nil {
		return err
	}
	return bw.Flush()
}

// chromeEvents builds the full, deterministically ordered event list.
func (s *Sink) chromeEvents() []chromeEvent {
	var evs []chromeEvent
	if s == nil {
		return evs
	}

	evs = append(evs,
		metaEvent(pidRequests, 0, "process_name", "requests"),
		metaEvent(pidUtil, 0, "process_name", "utilization"),
	)

	// Each span gets its own async id so b/e pairs nest trivially
	// (Chrome matches async events by cat+id; distinct ids mean the
	// per-id LIFO rule can never be violated by interleaved spans).
	type rankedEvent struct {
		ev   chromeEvent
		ts   sim.Time
		rank int   // within a timestamp: ends(0) before begins(1) before segs(2)
		id   int32 // final tie-break, direction depends on rank
	}
	var ranked []rankedEvent

	spans := s.Spans()
	for _, sd := range spans {
		cat := sd.Kind.String()
		id := fmt.Sprintf("s%d", sd.ID)
		args := map[string]any{"span": sd.ID}
		if sd.Parent >= 0 {
			args["parent"] = sd.Parent
		}
		ranked = append(ranked, rankedEvent{
			ev: chromeEvent{
				Name: sd.Name, Cat: cat, Ph: "b", TS: usec(sd.Start),
				PID: pidRequests, TID: 1, ID: id, Args: args,
			},
			ts: sd.Start, rank: 1, id: sd.ID,
		})
		ranked = append(ranked, rankedEvent{
			ev: chromeEvent{
				Name: sd.Name, Cat: cat, Ph: "e", TS: usec(sd.End),
				PID: pidRequests, TID: 1, ID: id,
			},
			ts: sd.End, rank: 0, id: sd.ID,
		})
		for si, seg := range sd.Segs {
			dur := usec(seg.End - seg.Start)
			ranked = append(ranked, rankedEvent{
				ev: chromeEvent{
					Name: seg.Kind.String() + ":" + seg.Resource,
					Cat:  "seg", Ph: "X", TS: usec(seg.Start), Dur: &dur,
					PID: pidRequests, TID: 2,
					Args: map[string]any{"span": sd.ID, "seq": si, "resource": seg.Resource},
				},
				ts: seg.Start, rank: 2, id: sd.ID,
			})
		}
	}

	sort.SliceStable(ranked, func(i, j int) bool {
		a, b := &ranked[i], &ranked[j]
		if a.ts != b.ts {
			return a.ts < b.ts
		}
		if a.rank != b.rank {
			return a.rank < b.rank
		}
		// Same-timestamp begins open outermost-first (parent ids are
		// smaller); same-timestamp ends close innermost-first.
		if a.rank == 0 {
			return a.id > b.id
		}
		return a.id < b.id
	})
	for _, r := range ranked {
		evs = append(evs, r.ev)
	}

	// Counter events, one tid per series, in series creation order so
	// the output is stable.
	for si, sr := range s.SeriesList() {
		evs = append(evs, metaEvent(pidUtil, si+1, "thread_name", sr.Name))
		for i := range sr.Times {
			evs = append(evs, chromeEvent{
				Name: sr.Name, Ph: "C", TS: usec(sr.Times[i]),
				PID: pidUtil, TID: si + 1,
				Args: map[string]any{"value": sr.Values[i]},
			})
		}
	}
	return evs
}

func metaEvent(pid, tid int, kind, name string) chromeEvent {
	return chromeEvent{
		Name: kind, Ph: "M", PID: pid, TID: tid,
		Args: map[string]any{"name": name},
	}
}

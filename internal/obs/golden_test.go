package obs

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"accelflow/internal/sim"
)

var updateGolden = flag.Bool("update", false, "rewrite golden export fixtures")

// tick is a hand-settable Clock: fixture spans begin and end at exact
// scripted instants, so the exported bytes are fully deterministic.
type tick struct{ t sim.Time }

func (c *tick) Now() sim.Time { return c.t }

// emptySink is a sink that observed nothing — the export layer must
// still produce well-formed documents.
func emptySink() *Sink {
	s := New()
	s.SetClock(&tick{})
	return s
}

// singleRequestSink scripts one request span tree with every segment
// and sample path exercised: request -> step -> chain -> entry, queue
// and compute segments, a remote wait, and one time series.
func singleRequestSink() *Sink {
	s := New(WithSampleInterval(5 * sim.Microsecond))
	clk := &tick{}
	s.SetClock(clk)

	req := s.BeginRequest("TCP/IP")
	step := req.Child(SpanStep, "accel step")
	chain := step.Child(SpanChain, "chain 0")
	entry := chain.Child(SpanEntry, "TCP trace")
	entry.Seg(SegQueue, "accel/TCP", 0, 2*sim.Microsecond)
	entry.Seg(SegCompute, "accel/TCP", 2*sim.Microsecond, 9*sim.Microsecond)
	entry.QueuedSeg(SegDispatch, "manager", 9*sim.Microsecond, 500*sim.Nanosecond)
	clk.t = 10 * sim.Microsecond
	entry.End()
	chain.Seg(SegRemote, "peer", 10*sim.Microsecond, 14*sim.Microsecond)
	clk.t = 14 * sim.Microsecond
	chain.End()
	clk.t = 15 * sim.Microsecond
	step.End()
	req.Seg(SegCPU, "cores", 15*sim.Microsecond, 16*sim.Microsecond)
	clk.t = 16 * sim.Microsecond
	req.End()

	s.Sample("util/accel/TCP", 0, 0)
	s.Sample("util/accel/TCP", 5*sim.Microsecond, 0.7)
	s.Sample("util/accel/TCP", 10*sim.Microsecond, 0.4)
	return s
}

// checkGolden compares got against the named fixture byte-for-byte
// (rewriting it under -update). Byte equality is the contract: these
// exports feed external dashboards and diff-based tooling, so even a
// reordered JSON key is a breaking change.
func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing fixture (run with -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s drifted from fixture (%d bytes vs %d); run with -update if intended\ngot:\n%s",
			name, len(got), len(want), got)
	}
}

func TestGoldenExports(t *testing.T) {
	cases := []struct {
		name string
		sink *Sink
	}{
		{"empty", emptySink()},
		{"single", singleRequestSink()},
	}
	for _, tc := range cases {
		var report, trace bytes.Buffer
		if err := tc.sink.WriteReport(&report); err != nil {
			t.Fatalf("%s: WriteReport: %v", tc.name, err)
		}
		if err := tc.sink.WriteChromeTrace(&trace); err != nil {
			t.Fatalf("%s: WriteChromeTrace: %v", tc.name, err)
		}
		checkGolden(t, "report_"+tc.name+".json", report.Bytes())
		checkGolden(t, "trace_"+tc.name+".json", trace.Bytes())
	}
}

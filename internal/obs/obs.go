// Package obs is the event-granular observability layer: it records a
// span tree per request (request → step → chain → accelerator entry,
// with queue / dispatch / compute / DMA / NoC / interrupt segments)
// plus time-sampled utilization series of the simulated resources, and
// exports them as Chrome trace-event JSON (chrome.go) and a structured
// per-run report (report.go).
//
// The whole API is nil-safe: every method on a nil *Sink or nil *Span
// is a no-op, so instrumented code paths pay only a nil check when
// observability is disabled. A Sink records one simulation run; it is
// single-threaded like the kernel that feeds it, and its exports are
// deterministic — the same run produces byte-identical output
// regardless of how many sibling simulations run concurrently.
package obs

import (
	"accelflow/internal/sim"
)

// Clock is the simulated time source; *sim.Kernel satisfies it.
type Clock interface {
	Now() sim.Time
}

// SpanKind classifies the levels of the per-request span tree.
type SpanKind uint8

const (
	// SpanRequest is the root: one end-to-end request.
	SpanRequest SpanKind = iota
	// SpanStep is one element of the service's execution path
	// (app-logic step, chain step, or parallel-chain step).
	SpanStep
	// SpanChain is one trace chain, including its ATM tails and forks.
	SpanChain
	// SpanEntry is one accelerator trace-execution instance as it
	// moves between queues, PEs, and dispatchers.
	SpanEntry
	// SpanFault is a root span covering one injected fault window
	// (degraded PEs, failed accelerator, removed A-DMA engines, stalled
	// manager/ATM, inflated NoC latency). Not part of any request tree.
	SpanFault
	// SpanControl is a root span covering one controller scaling
	// decision (internal/control); its segment spans the period spent
	// at the previous level. Not part of any request tree.
	SpanControl
)

// String names the span kind for exports.
func (k SpanKind) String() string {
	switch k {
	case SpanRequest:
		return "request"
	case SpanStep:
		return "step"
	case SpanChain:
		return "chain"
	case SpanEntry:
		return "entry"
	case SpanFault:
		return "fault"
	case SpanControl:
		return "control"
	}
	return "span"
}

// SegKind classifies the time segments attached to spans.
type SegKind uint8

const (
	// SegQueue is time waiting in a queue (accelerator input queue,
	// core run queue, A-DMA pool, software queue pickup).
	SegQueue SegKind = iota
	// SegDispatch is orchestration work: enqueue instructions, output
	// dispatcher passes, manager engagements, ATM reads.
	SegDispatch
	// SegCompute is PE occupancy (load + wipe + compute).
	SegCompute
	// SegDMA is data movement through memory controllers or the LLC.
	SegDMA
	// SegNoC is on-package interconnect occupancy of an A-DMA move.
	SegNoC
	// SegInterrupt is CPU interrupt/exception handling (CPU-centric
	// hops, page faults).
	SegInterrupt
	// SegRemote is waiting for the far side of a nested RPC/DB/HTTP
	// message.
	SegRemote
	// SegNotify is the user-level completion notification delay.
	SegNotify
	// SegCPU is application logic or fallback trace execution on cores.
	SegCPU
	// SegFault marks a fault-injection window on a SpanFault span, so
	// Perfetto traces show when and where faults were active.
	SegFault
	// SegControl marks the interval a SpanControl decision covers (the
	// time spent at the previous scaling level).
	SegControl
)

// String names the segment kind for exports.
func (k SegKind) String() string {
	switch k {
	case SegQueue:
		return "queue"
	case SegDispatch:
		return "dispatch"
	case SegCompute:
		return "compute"
	case SegDMA:
		return "dma"
	case SegNoC:
		return "noc"
	case SegInterrupt:
		return "interrupt"
	case SegRemote:
		return "remote"
	case SegNotify:
		return "notify"
	case SegCPU:
		return "cpu"
	case SegFault:
		return "fault"
	case SegControl:
		return "control"
	}
	return "seg"
}

// Seg is one attributed time interval on a span, tied to the resource
// that was held or waited on.
type Seg struct {
	Kind     SegKind
	Resource string
	Start    sim.Time
	End      sim.Time
}

// spanRec is the stored form of a span. Parent is -1 for roots. Its
// segments live in the sink-level slab as a linked list (segHead/
// segTail index Sink.segs; -1 = none): one growing slab amortizes to
// zero allocations per segment, where a per-span []Seg paid a fresh
// backing array for every span's first append.
type spanRec struct {
	id      int32
	parent  int32
	segHead int32
	segTail int32
	kind    SpanKind
	ended   bool
	name    string
	start   sim.Time
	end     sim.Time
}

// segNode is one slab cell: a segment plus the index of the owning
// span's next segment (-1 = last).
type segNode struct {
	seg  Seg
	next int32
}

// SpanData is the exported, immutable view of one recorded span.
type SpanData struct {
	ID     int32
	Parent int32 // -1 for request roots
	Kind   SpanKind
	Name   string
	Start  sim.Time
	End    sim.Time
	Segs   []Seg
}

// Series is one time-sampled value stream (e.g. a PE utilization
// timeline).
type Series struct {
	Name   string
	Times  []sim.Time
	Values []float64
}

// Sink records one simulation run's spans and series. Create with New,
// attach a clock with SetClock (the engine does this when built with
// engine.Params.Obs), then export with WriteChromeTrace / WriteReport.
//
// A nil *Sink is valid everywhere and records nothing.
type Sink struct {
	clock    Clock
	interval sim.Time

	spans  []spanRec
	segs   []segNode // shared segment slab; spanRec.segHead/segTail index it
	series []*Series
	byName map[string]*Series

	// handles is the current chunk of the Span-handle arena. Spans are
	// created once per request/step/chain/entry on the hot path;
	// carving handles out of fixed-size chunks replaces one heap object
	// per span with one per handleChunk spans.
	handles []Span
}

// handleChunk is the Span-handle arena chunk size.
const handleChunk = 256

// Option configures a Sink.
type Option func(*Sink)

// WithSampleInterval sets the utilization sampling period (default
// 20us). The sampler itself is driven by the harness (workload.RunSpec)
// via sim.Kernel.Every.
func WithSampleInterval(d sim.Time) Option {
	return func(s *Sink) {
		if d > 0 {
			s.interval = d
		}
	}
}

// New returns an empty Sink.
func New(opts ...Option) *Sink {
	s := &Sink{
		interval: 20 * sim.Microsecond,
		byName:   map[string]*Series{},
	}
	for _, o := range opts {
		o(s)
	}
	return s
}

// Enabled reports whether the sink is recording (non-nil).
func (s *Sink) Enabled() bool { return s != nil }

// SampleInterval returns the configured sampling period (0 when nil).
func (s *Sink) SampleInterval() sim.Time {
	if s == nil {
		return 0
	}
	return s.interval
}

// SetClock binds the simulated time source. Idempotent; later calls
// with the same clock are no-ops, and a nil receiver ignores it.
func (s *Sink) SetClock(c Clock) {
	if s == nil {
		return
	}
	s.clock = c
}

func (s *Sink) now() sim.Time {
	if s.clock == nil {
		return 0
	}
	return s.clock.Now()
}

// Span is a live handle to a recorded span. A nil *Span is valid and
// all its methods are no-ops, which is how disabled observability
// flows through instrumented code for free.
type Span struct {
	sink *Sink
	id   int32
}

func (s *Sink) newSpan(parent int32, kind SpanKind, name string) *Span {
	id := int32(len(s.spans))
	s.spans = append(s.spans, spanRec{
		id:      id,
		parent:  parent,
		segHead: -1,
		segTail: -1,
		kind:    kind,
		name:    name,
		start:   s.now(),
	})
	if len(s.handles) == cap(s.handles) {
		s.handles = make([]Span, 0, handleChunk)
	}
	s.handles = append(s.handles, Span{sink: s, id: id})
	return &s.handles[len(s.handles)-1]
}

// BeginRequest opens a root request span. Returns nil on a nil sink.
func (s *Sink) BeginRequest(service string) *Span {
	if s == nil {
		return nil
	}
	return s.newSpan(-1, SpanRequest, service)
}

// BeginFault opens a root fault-window span (e.g.
// "fault/pe-degrade/Cmp"). The injector ends it when the window
// clears, after attaching a SegFault segment covering the window.
// Returns nil on a nil sink.
func (s *Sink) BeginFault(name string) *Span {
	if s == nil {
		return nil
	}
	return s.newSpan(-1, SpanFault, name)
}

// BeginControl opens a root controller-decision span (e.g.
// "control/scale-up/pe@+2"). The controller ends it after attaching a
// SegControl segment covering the period at the previous level.
// Returns nil on a nil sink.
func (s *Sink) BeginControl(name string) *Span {
	if s == nil {
		return nil
	}
	return s.newSpan(-1, SpanControl, name)
}

// Child opens a sub-span under sp. Returns nil on a nil span.
func (sp *Span) Child(kind SpanKind, name string) *Span {
	if sp == nil {
		return nil
	}
	return sp.sink.newSpan(sp.id, kind, name)
}

// End closes the span at the current simulated time. Ending twice
// keeps the first end (spans are closed exactly once on the happy
// path; the guard makes instrumentation mistakes harmless).
func (sp *Span) End() {
	if sp == nil {
		return
	}
	r := &sp.sink.spans[sp.id]
	if r.ended {
		return
	}
	r.ended = true
	r.end = sp.sink.now()
}

// Seg attaches one attributed interval to the span. Zero-length
// segments are dropped; inverted intervals are a modeling bug and are
// clamped to empty rather than panicking mid-simulation.
func (sp *Span) Seg(kind SegKind, resource string, start, end sim.Time) {
	if sp == nil || end <= start {
		return
	}
	s := sp.sink
	idx := int32(len(s.segs))
	s.segs = append(s.segs, segNode{
		seg:  Seg{Kind: kind, Resource: resource, Start: start, End: end},
		next: -1,
	})
	r := &s.spans[sp.id]
	if r.segTail >= 0 {
		s.segs[r.segTail].next = idx
	} else {
		r.segHead = idx
	}
	r.segTail = idx
}

// QueuedSeg records a resource engagement that began waiting at t0 and
// just finished holding the resource for hold: the wait portion (if
// any) becomes a queue segment and the hold portion a segment of the
// given kind. It reads the sink clock for "now", matching the
// engine's `t0 := K.Now(); res.Do(hold, func(){ ... })` idiom.
func (sp *Span) QueuedSeg(kind SegKind, resource string, t0, hold sim.Time) {
	if sp == nil {
		return
	}
	now := sp.sink.now()
	sp.Seg(SegQueue, resource, t0, now-hold)
	sp.Seg(kind, resource, now-hold, now)
}

// Sample appends one point to the named series, creating it on first
// use. Series identity is by name; creation order is preserved for
// deterministic export.
func (s *Sink) Sample(name string, t sim.Time, v float64) {
	if s == nil {
		return
	}
	sr, ok := s.byName[name]
	if !ok {
		sr = &Series{Name: name}
		s.byName[name] = sr
		s.series = append(s.series, sr)
	}
	sr.Times = append(sr.Times, t)
	sr.Values = append(sr.Values, v)
}

// Spans returns immutable copies of all recorded spans in creation
// order. Unended spans report End == Start.
func (s *Sink) Spans() []SpanData {
	if s == nil {
		return nil
	}
	out := make([]SpanData, len(s.spans))
	for i := range s.spans {
		r := &s.spans[i]
		end := r.end
		if !r.ended {
			end = r.start
		}
		var segs []Seg
		for j := r.segHead; j >= 0; j = s.segs[j].next {
			segs = append(segs, s.segs[j].seg)
		}
		out[i] = SpanData{
			ID: r.id, Parent: r.parent, Kind: r.kind, Name: r.name,
			Start: r.start, End: end,
			Segs: segs,
		}
	}
	return out
}

// SeriesList returns the recorded utilization series in creation order.
func (s *Sink) SeriesList() []*Series {
	if s == nil {
		return nil
	}
	return s.series
}

// SpanCount reports recorded spans (0 on nil).
func (s *Sink) SpanCount() int {
	if s == nil {
		return 0
	}
	return len(s.spans)
}

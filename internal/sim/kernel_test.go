package sim

import (
	"testing"
	"testing/quick"
)

func TestTimeString(t *testing.T) {
	cases := []struct {
		t    Time
		want string
	}{
		{500 * Picosecond, "500ps"},
		{1500 * Nanosecond, "1.500us"},
		{2 * Millisecond, "2.000ms"},
		{3 * Second, "3.000s"},
		{12 * Nanosecond, "12.000ns"},
	}
	for _, c := range cases {
		if got := c.t.String(); got != c.want {
			t.Errorf("Time(%d).String() = %q, want %q", int64(c.t), got, c.want)
		}
	}
}

func TestTimeConversions(t *testing.T) {
	if FromMicros(1.5) != 1500*Nanosecond {
		t.Errorf("FromMicros(1.5) = %v", FromMicros(1.5))
	}
	if FromNanos(2.5) != 2500*Picosecond {
		t.Errorf("FromNanos(2.5) = %v", FromNanos(2.5))
	}
	if (3 * Microsecond).Micros() != 3.0 {
		t.Errorf("Micros() = %v", (3 * Microsecond).Micros())
	}
	if (2 * Second).Seconds() != 2.0 {
		t.Errorf("Seconds() = %v", (2 * Second).Seconds())
	}
	if (5 * Nanosecond).Nanos() != 5.0 {
		t.Errorf("Nanos() = %v", (5 * Nanosecond).Nanos())
	}
}

func TestKernelOrdering(t *testing.T) {
	k := NewKernel()
	var order []int
	k.At(30*Nanosecond, func() { order = append(order, 3) })
	k.At(10*Nanosecond, func() { order = append(order, 1) })
	k.At(20*Nanosecond, func() { order = append(order, 2) })
	k.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("events ran out of order: %v", order)
	}
	if k.Now() != 30*Nanosecond {
		t.Errorf("clock = %v, want 30ns", k.Now())
	}
}

func TestKernelTieBreakBySchedulingOrder(t *testing.T) {
	k := NewKernel()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		k.At(5*Nanosecond, func() { order = append(order, i) })
	}
	k.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("tie-break violated at index %d: %v", i, order)
		}
	}
}

func TestKernelAfterAndNesting(t *testing.T) {
	k := NewKernel()
	var hit Time
	k.After(10*Nanosecond, func() {
		k.After(5*Nanosecond, func() { hit = k.Now() })
	})
	k.Run()
	if hit != 15*Nanosecond {
		t.Errorf("nested event at %v, want 15ns", hit)
	}
}

func TestKernelRunUntil(t *testing.T) {
	k := NewKernel()
	ran := 0
	k.At(10*Nanosecond, func() { ran++ })
	k.At(20*Nanosecond, func() { ran++ })
	k.At(30*Nanosecond, func() { ran++ })
	k.RunUntil(20 * Nanosecond)
	if ran != 2 {
		t.Errorf("ran %d events, want 2", ran)
	}
	if k.Pending() != 1 {
		t.Errorf("pending = %d, want 1", k.Pending())
	}
	k.Run()
	if ran != 3 {
		t.Errorf("ran %d events after Run, want 3", ran)
	}
}

// TestKernelEverySelfTerminates pins Every's liveness rule: a single
// ticker outlives the last real event by exactly one final tick, and
// two tickers must not count each other's queued ticks as pending
// work — before the queuedTicks exclusion, any two periodic samplers
// on one kernel (e.g. the observability sampler plus the controller
// tick) sustained each other forever.
func TestKernelEverySelfTerminates(t *testing.T) {
	k := NewKernel()
	ticksA, ticksB := 0, 0
	k.Every(10*Nanosecond, func() { ticksA++ })
	k.Every(15*Nanosecond, func() { ticksB++ })
	k.At(100*Nanosecond, func() {})
	k.SetHooks(Hooks{MaxEvents: 100}) // tripwire: a livelock panics instead of hanging
	k.Run()
	// A's tick at 100ns runs after the real event there (same
	// timestamp, later scheduling order), observes the final state,
	// and stops: 10 ticks. B ticks at 15..90ns plus one final
	// observation at 105ns: 7.
	if ticksA != 10 || ticksB != 7 {
		t.Errorf("ticks = %d/%d, want 10/7", ticksA, ticksB)
	}
	if k.Pending() != 0 {
		t.Errorf("pending = %d after Run, want 0", k.Pending())
	}
}

func TestKernelPastSchedulingPanics(t *testing.T) {
	k := NewKernel()
	k.At(10*Nanosecond, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		k.At(5*Nanosecond, func() {})
	})
	k.Run()
}

func TestKernelNegativeDelayPanics(t *testing.T) {
	k := NewKernel()
	defer func() {
		if recover() == nil {
			t.Error("negative delay did not panic")
		}
	}()
	k.After(-1, func() {})
}

func TestKernelMaxEvents(t *testing.T) {
	k := NewKernel()
	k.SetHooks(Hooks{MaxEvents: 10})
	var loop func()
	loop = func() { k.After(Nanosecond, loop) }
	k.After(Nanosecond, loop)
	defer func() {
		if recover() == nil {
			t.Error("runaway loop did not trip MaxEvents")
		}
	}()
	k.Run()
}

// Property: for any set of non-negative delays, Run executes all events
// and the clock ends at the max delay.
func TestKernelPropertyAllEventsRun(t *testing.T) {
	f := func(delays []uint16) bool {
		k := NewKernel()
		ran := 0
		var max Time
		for _, d := range delays {
			dt := Time(d) * Nanosecond
			if dt > max {
				max = dt
			}
			k.After(dt, func() { ran++ })
		}
		k.Run()
		return ran == len(delays) && (len(delays) == 0 || k.Now() == max)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

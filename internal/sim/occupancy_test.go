package sim

import "testing"

// TestOccupancyIntegrals scripts a deterministic single-server queue
// and checks the lazily-advanced integrals against hand-computed
// areas: two tasks of hold 10 submitted at t=0 mean one task queues
// for [0,10), so ∫Q dt = 10 and ∫busy dt = 20 once drained.
func TestOccupancyIntegrals(t *testing.T) {
	k := NewKernel()
	r := NewResource(k, "r", 1, FIFO)
	k.At(0, func() {
		r.Do(10, nil)
		r.Do(10, nil)
	})
	k.Run()
	if k.Now() != 20 {
		t.Fatalf("run ended at %v, want 20", k.Now())
	}
	if got := r.QueueArea(); got != 10 {
		t.Errorf("QueueArea = %v, want 10", got)
	}
	if got := r.BusyArea(); got != 20 {
		t.Errorf("BusyArea = %v, want 20", got)
	}
	if r.BusyArea() != r.BusyTime {
		t.Errorf("at quiescence BusyArea %v != BusyTime %v", r.BusyArea(), r.BusyTime)
	}
	if r.WaitTime != 10 || r.QueuedWaitResidual() != 0 {
		t.Errorf("WaitTime = %v (want 10), residual = %v (want 0)", r.WaitTime, r.QueuedWaitResidual())
	}
}

// TestOccupancyMidRun reads the integrals between events: the lazy
// advance must account exactly up to "now" at any instant, and the
// Little identity ∫Q dt == WaitTime + residual must hold mid-run.
func TestOccupancyMidRun(t *testing.T) {
	k := NewKernel()
	r := NewResource(k, "r", 1, FIFO)
	k.At(0, func() {
		r.Do(10, nil)
		r.Do(10, nil)
		r.Do(10, nil)
	})
	k.At(4, func() {
		// Two tasks queued over [0,4): ∫Q dt = 8; one busy server: 4.
		if got := r.QueueArea(); got != 8 {
			t.Errorf("at 4: QueueArea = %v, want 8", got)
		}
		if got := r.BusyArea(); got != 4 {
			t.Errorf("at 4: BusyArea = %v, want 4", got)
		}
		// BusyTime was charged up front for the running task.
		if r.BusyTime != 10 {
			t.Errorf("at 4: BusyTime = %v, want 10", r.BusyTime)
		}
		if got, want := r.QueueArea(), r.WaitTime+r.QueuedWaitResidual(); got != want {
			t.Errorf("at 4: Little identity broken: area %v, waits %v", got, want)
		}
	})
	k.At(15, func() {
		// Second task started at 10 (waited 10); third still queued,
		// residual 15. Area: 2 tasks x 10 + 1 task x 5 = 25.
		if got := r.QueueArea(); got != 25 {
			t.Errorf("at 15: QueueArea = %v, want 25", got)
		}
		if got, want := r.QueueArea(), r.WaitTime+r.QueuedWaitResidual(); got != want {
			t.Errorf("at 15: Little identity broken: area %v, waits %v", got, want)
		}
	})
	k.Run()
	if got := r.QueueArea(); got != 30 {
		t.Errorf("final QueueArea = %v, want 30 (10 + 20)", got)
	}
	if r.WaitTime != 30 {
		t.Errorf("final WaitTime = %v, want 30", r.WaitTime)
	}
}

// TestMaxServersTracksPeak pins the utilization bound's denominator:
// MaxServers must remember the largest configured pool across
// SetServers fault windows (shrinking never preempts, so busy can
// exceed the current Servers transiently — but never the peak).
func TestMaxServersTracksPeak(t *testing.T) {
	k := NewKernel()
	r := NewResource(k, "r", 2, FIFO)
	if r.MaxServers() != 2 {
		t.Fatalf("MaxServers = %d, want 2", r.MaxServers())
	}
	k.At(0, func() {
		r.SetServers(6)
		for i := 0; i < 6; i++ {
			r.Do(10, nil)
		}
	})
	k.At(5, func() {
		r.SetServers(1)
		if r.InService() != 6 {
			t.Errorf("shrink preempted: %d in service, want 6 draining", r.InService())
		}
		if r.MaxServers() != 6 {
			t.Errorf("MaxServers = %d after shrink, want 6", r.MaxServers())
		}
	})
	k.Run()
	// 6 tasks x hold 10 = 60 busy server-time over 10 elapsed on a peak
	// of 6 servers: within the MaxServers bound, over the shrunk one.
	if bound := Time(r.MaxServers()) * k.Now(); r.BusyArea() > bound {
		t.Errorf("BusyArea %v exceeds peak-servers bound %v", r.BusyArea(), bound)
	}
	if r.BusyArea() != 60 || r.BusyTime != 60 {
		t.Errorf("BusyArea/BusyTime = %v/%v, want 60/60", r.BusyArea(), r.BusyTime)
	}
}

// TestKernelOnEventHook pins the observer hook: it must see every
// executed event's timestamp in execution order and must not be
// required (nil hook = no calls).
func TestKernelOnEventHook(t *testing.T) {
	k := NewKernel()
	var seen []Time
	k.SetHooks(Hooks{OnEvent: func(at Time) { seen = append(seen, at) }})
	k.At(5, func() {})
	k.At(1, func() { k.After(2, func() {}) })
	k.Run()
	want := []Time{1, 3, 5}
	if len(seen) != len(want) {
		t.Fatalf("hook saw %v, want %v", seen, want)
	}
	for i := range want {
		if seen[i] != want[i] {
			t.Fatalf("hook saw %v, want %v", seen, want)
		}
	}
}

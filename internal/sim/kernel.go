// Package sim provides a deterministic discrete-event simulation kernel:
// a virtual clock, an event heap, and multi-server queueing resources
// with pluggable service disciplines. All AccelFlow component models are
// built on top of this kernel.
package sim

import (
	"context"
	"fmt"
	"math"
)

// Time is simulated time in integer picoseconds. Picosecond resolution
// lets cycle times of non-integral nanoseconds (e.g. 2.4 GHz -> 416.6 ps)
// be represented without floating-point drift.
type Time int64

// Common durations.
const (
	Picosecond  Time = 1
	Nanosecond  Time = 1000 * Picosecond
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// String renders a Time in the most readable unit.
func (t Time) String() string {
	switch {
	case t >= Second:
		return fmt.Sprintf("%.3fs", float64(t)/float64(Second))
	case t >= Millisecond:
		return fmt.Sprintf("%.3fms", float64(t)/float64(Millisecond))
	case t >= Microsecond:
		return fmt.Sprintf("%.3fus", float64(t)/float64(Microsecond))
	case t >= Nanosecond:
		return fmt.Sprintf("%.3fns", float64(t)/float64(Nanosecond))
	default:
		return fmt.Sprintf("%dps", int64(t))
	}
}

// Micros returns the time as a float64 number of microseconds.
func (t Time) Micros() float64 { return float64(t) / float64(Microsecond) }

// Nanos returns the time as a float64 number of nanoseconds.
func (t Time) Nanos() float64 { return float64(t) / float64(Nanosecond) }

// Seconds returns the time as a float64 number of seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// FromMicros converts a float64 microsecond count to a Time.
func FromMicros(us float64) Time { return Time(math.Round(us * float64(Microsecond))) }

// FromNanos converts a float64 nanosecond count to a Time.
func FromNanos(ns float64) Time { return Time(math.Round(ns * float64(Nanosecond))) }

// event is a scheduled callback. seq breaks ties so that events scheduled
// first at the same instant run first, keeping the simulation
// deterministic.
type event struct {
	at  Time
	seq uint64
	fn  func()
}

// Kernel is the event loop. It is not safe for concurrent use: a
// simulation is a single-threaded, deterministic program.
type Kernel struct {
	now    Time
	seq    uint64
	events eventQueue
	// Processed counts executed events, useful for run-away detection.
	Processed uint64
	// MaxEvents aborts the run when exceeded (0 = unlimited).
	MaxEvents uint64
	// OnEvent, when non-nil, observes every executed event's timestamp
	// just before its callback runs. It must only read simulation state
	// (the invariant checker uses it to verify event-time monotonicity);
	// a mutating hook would break run determinism. Install it before
	// the run starts: RunCtx selects a hook-free tight loop up front
	// when no observer or checker is attached, so a hook set mid-run
	// from inside an event callback is not guaranteed to be seen.
	OnEvent func(at Time)
}

// NewKernel returns an empty kernel at time zero.
func NewKernel() *Kernel { return &Kernel{} }

// Now returns the current simulated time.
func (k *Kernel) Now() Time { return k.now }

// At schedules fn to run at absolute time t. Scheduling in the past
// panics: it indicates a modeling bug rather than a recoverable error.
func (k *Kernel) At(t Time, fn func()) {
	if t < k.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, k.now))
	}
	k.seq++
	k.events.push(event{at: t, seq: k.seq, fn: fn})
}

// After schedules fn to run d after the current time.
func (k *Kernel) After(d Time, fn func()) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	k.At(k.now+d, fn)
}

// Run executes events until the heap is empty.
func (k *Kernel) Run() { k.RunUntil(math.MaxInt64) }

// RunUntil executes events with timestamps <= deadline, leaving later
// events queued. The clock ends at the last executed event (or deadline
// if nothing ran beyond it).
func (k *Kernel) RunUntil(deadline Time) {
	for k.events.Len() > 0 {
		if k.events.minAt() > deadline {
			break
		}
		e := k.events.pop()
		k.now = e.at
		k.Processed++
		if k.MaxEvents > 0 && k.Processed > k.MaxEvents {
			panic("sim: MaxEvents exceeded; likely an event loop")
		}
		if k.OnEvent != nil {
			k.OnEvent(e.at)
		}
		e.fn()
	}
}

// RunCtx executes events until the heap is empty or ctx is cancelled,
// and returns ctx's error in the latter case (nil when the heap
// drained). Cancellation is cooperative: ctx is polled once up front —
// an already-cancelled context runs zero events — and then every
// checkEvery executed events (<= 0 means the default of 4096), so the
// hot loop pays one cheap Err() call per batch. Events are never
// interrupted mid-callback; the kernel always stops on an event
// boundary, leaving the remaining events queued. A simulation
// abandoned this way is in a consistent but incomplete state — callers
// discard it rather than reading partial metrics.
func (k *Kernel) RunCtx(ctx context.Context, checkEvery uint64) error {
	if ctx == nil {
		ctx = context.Background()
	}
	if checkEvery <= 0 {
		checkEvery = 4096
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	var batch uint64
	if k.OnEvent == nil && k.MaxEvents == 0 {
		// Fast path: no observer/checker hook and no event budget. The
		// per-event hook and budget branches are hoisted out of the hot
		// loop entirely (the hook choice is made once, up front — see
		// the OnEvent doc comment).
		for k.events.Len() > 0 {
			if batch++; batch >= checkEvery {
				batch = 0
				if err := ctx.Err(); err != nil {
					return err
				}
			}
			e := k.events.pop()
			k.now = e.at
			k.Processed++
			e.fn()
		}
		return nil
	}
	for k.events.Len() > 0 {
		if batch++; batch >= checkEvery {
			batch = 0
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		e := k.events.pop()
		k.now = e.at
		k.Processed++
		if k.MaxEvents > 0 && k.Processed > k.MaxEvents {
			panic("sim: MaxEvents exceeded; likely an event loop")
		}
		if k.OnEvent != nil {
			k.OnEvent(e.at)
		}
		e.fn()
	}
	return nil
}

// Every schedules fn to run repeatedly with period d, starting at
// now+d. The tick reschedules itself only while other events are
// pending, so a periodic sampler cannot keep an otherwise-finished
// simulation alive: once the last real event has run, the next tick
// fires (observing the final state) and stops. This is sound for
// harnesses that schedule all their stimulus up front — the pending
// count only reaches zero when the run is truly over.
func (k *Kernel) Every(d Time, fn func()) {
	if d <= 0 {
		panic(fmt.Sprintf("sim: non-positive period %v", d))
	}
	var tick func()
	tick = func() {
		fn()
		if k.events.Len() > 0 {
			k.After(d, tick)
		}
	}
	k.After(d, tick)
}

// Pending reports the number of queued events.
func (k *Kernel) Pending() int { return k.events.Len() }

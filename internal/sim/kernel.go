// Package sim provides a deterministic discrete-event simulation kernel:
// a virtual clock, an event heap, and multi-server queueing resources
// with pluggable service disciplines. All AccelFlow component models are
// built on top of this kernel.
package sim

import (
	"context"
	"fmt"
	"math"
)

// Time is simulated time in integer picoseconds. Picosecond resolution
// lets cycle times of non-integral nanoseconds (e.g. 2.4 GHz -> 416.6 ps)
// be represented without floating-point drift.
type Time int64

// Common durations.
const (
	Picosecond  Time = 1
	Nanosecond  Time = 1000 * Picosecond
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// String renders a Time in the most readable unit.
func (t Time) String() string {
	switch {
	case t >= Second:
		return fmt.Sprintf("%.3fs", float64(t)/float64(Second))
	case t >= Millisecond:
		return fmt.Sprintf("%.3fms", float64(t)/float64(Millisecond))
	case t >= Microsecond:
		return fmt.Sprintf("%.3fus", float64(t)/float64(Microsecond))
	case t >= Nanosecond:
		return fmt.Sprintf("%.3fns", float64(t)/float64(Nanosecond))
	default:
		return fmt.Sprintf("%dps", int64(t))
	}
}

// Micros returns the time as a float64 number of microseconds.
func (t Time) Micros() float64 { return float64(t) / float64(Microsecond) }

// Nanos returns the time as a float64 number of nanoseconds.
func (t Time) Nanos() float64 { return float64(t) / float64(Nanosecond) }

// Seconds returns the time as a float64 number of seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// FromMicros converts a float64 microsecond count to a Time.
func FromMicros(us float64) Time { return Time(math.Round(us * float64(Microsecond))) }

// FromNanos converts a float64 nanosecond count to a Time.
func FromNanos(ns float64) Time { return Time(math.Round(ns * float64(Nanosecond))) }

// event is a scheduled callback. seq breaks ties so that events scheduled
// first at the same instant run first, keeping the simulation
// deterministic.
type event struct {
	at  Time
	seq uint64
	fn  func()
}

// Kernel is the event loop. It is not safe for concurrent use: a
// simulation is a single-threaded, deterministic program. (A Sharded
// coordinator runs one Kernel per domain, each still single-threaded;
// see shard.go.)
type Kernel struct {
	now       Time
	seq       uint64
	events    eventQueue
	processed uint64

	// hooks is the installed instrumentation surface (SetHooks).
	hooks Hooks

	// shard/domain backlink when this kernel is one domain of a
	// Sharded coordinator; shard is nil for a standalone kernel.
	shard  *Sharded
	domain int

	// ctxBatch counts events since the last cancellation poll. It
	// persists across runEpoch calls so a sharded run polls ctx at the
	// same amortized cadence as a serial one.
	ctxBatch uint64

	// queuedTicks counts Every ticks currently in the event queue, so
	// a ticker's liveness check can exclude other tickers' pending
	// ticks (see Every).
	queuedTicks int
}

// NewKernel returns an empty kernel at time zero.
func NewKernel() *Kernel { return &Kernel{} }

// Now returns the current simulated time.
func (k *Kernel) Now() Time { return k.now }

// Processed returns the number of executed events.
func (k *Kernel) Processed() uint64 { return k.processed }

// SetHooks installs the kernel's instrumentation (see Hooks). The
// value knobs (OnEvent, MaxEvents, CheckEvery) replace any previously
// installed ones; Periodic entries are armed immediately in slice
// order — at the current point in the schedule — and are not retained
// (Hooks never returns them), so the compose-modify-reinstall pattern
//
//	h := k.Hooks(); h.Periodic = [...]; k.SetHooks(h)
//
// layers new samplers on top of existing knobs without double-arming.
// Install before the run starts; the run loop commits to a hook-free
// fast path up front when OnEvent is nil and MaxEvents is 0.
func (k *Kernel) SetHooks(h Hooks) {
	for _, p := range h.Periodic {
		k.Every(p.Every, p.Fn)
	}
	h.Periodic = nil
	k.hooks = h
}

// Hooks returns the retained instrumentation knobs (Periodic entries
// are consumed by SetHooks and never returned). Use it to layer
// additional hooks over ones another component installed.
func (k *Kernel) Hooks() Hooks { return k.hooks }

// Domain returns this kernel's domain index within its Sharded
// coordinator (0 for a standalone kernel).
func (k *Kernel) Domain() int { return k.domain }

// At schedules fn to run at absolute time t. Scheduling in the past
// panics: it indicates a modeling bug rather than a recoverable error.
func (k *Kernel) At(t Time, fn func()) {
	if t < k.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, k.now))
	}
	k.seq++
	k.events.push(event{at: t, seq: k.seq, fn: fn})
}

// After schedules fn to run d after the current time.
func (k *Kernel) After(d Time, fn func()) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	k.At(k.now+d, fn)
}

// Run executes events until the heap is empty.
func (k *Kernel) Run() { k.RunUntil(math.MaxInt64) }

// RunUntil executes events with timestamps <= deadline, leaving later
// events queued. The clock ends at the last executed event (or deadline
// if nothing ran beyond it).
func (k *Kernel) RunUntil(deadline Time) {
	for k.events.Len() > 0 {
		if k.events.minAt() > deadline {
			break
		}
		e := k.events.pop()
		k.now = e.at
		k.processed++
		if k.hooks.MaxEvents > 0 && k.processed > k.hooks.MaxEvents {
			panic("sim: Hooks.MaxEvents exceeded; likely an event loop")
		}
		if k.hooks.OnEvent != nil {
			k.hooks.OnEvent(e.at)
		}
		e.fn()
	}
}

// RunCtx executes events until the heap is empty or ctx is cancelled,
// and returns ctx's error in the latter case (nil when the heap
// drained). Cancellation is cooperative: ctx is polled once up front —
// an already-cancelled context runs zero events — and then every
// Hooks.CheckEvery executed events (default 4096), so the hot loop
// pays one cheap Err() call per batch. Events are never interrupted
// mid-callback; the kernel always stops on an event boundary, leaving
// the remaining events queued. A simulation abandoned this way is in a
// consistent but incomplete state — callers discard it rather than
// reading partial metrics.
func (k *Kernel) RunCtx(ctx context.Context) error {
	if ctx == nil {
		ctx = context.Background()
	}
	checkEvery := k.hooks.CheckEvery
	if checkEvery <= 0 {
		checkEvery = defaultCheckEvery
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	var batch uint64
	if k.hooks.OnEvent == nil && k.hooks.MaxEvents == 0 {
		// Fast path: no observer/checker hook and no event budget. The
		// per-event hook and budget branches are hoisted out of the hot
		// loop entirely (the hook choice is made once, up front — see
		// the Hooks.OnEvent doc comment).
		for k.events.Len() > 0 {
			if batch++; batch >= checkEvery {
				batch = 0
				if err := ctx.Err(); err != nil {
					return err
				}
			}
			e := k.events.pop()
			k.now = e.at
			k.processed++
			e.fn()
		}
		return nil
	}
	for k.events.Len() > 0 {
		if batch++; batch >= checkEvery {
			batch = 0
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		e := k.events.pop()
		k.now = e.at
		k.processed++
		if k.hooks.MaxEvents > 0 && k.processed > k.hooks.MaxEvents {
			panic("sim: Hooks.MaxEvents exceeded; likely an event loop")
		}
		if k.hooks.OnEvent != nil {
			k.hooks.OnEvent(e.at)
		}
		e.fn()
	}
	return nil
}

// runEpoch executes events with timestamps strictly below horizon and
// advances the cancellation-poll batch counter across calls. It is the
// per-domain unit of work between two Sharded epoch barriers; the
// strict bound means an event scheduled exactly at the horizon belongs
// to the next epoch, matching the conservative send rule (Send
// requires at >= horizon, so mail can never land inside the epoch that
// produced it).
func (k *Kernel) runEpoch(ctx context.Context, horizon Time, checkEvery uint64) error {
	hookFree := k.hooks.OnEvent == nil && k.hooks.MaxEvents == 0
	for k.events.Len() > 0 && k.events.minAt() < horizon {
		if k.ctxBatch++; k.ctxBatch >= checkEvery {
			k.ctxBatch = 0
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		e := k.events.pop()
		k.now = e.at
		k.processed++
		if !hookFree {
			if k.hooks.MaxEvents > 0 && k.processed > k.hooks.MaxEvents {
				panic("sim: Hooks.MaxEvents exceeded; likely an event loop")
			}
			if k.hooks.OnEvent != nil {
				k.hooks.OnEvent(e.at)
			}
		}
		e.fn()
	}
	return nil
}

// Every schedules fn to run repeatedly with period d, starting at
// now+d. The tick reschedules itself only while non-tick events are
// pending, so periodic samplers cannot keep an otherwise-finished
// simulation alive: once the last real event has run, each ticker
// fires once more (observing the final state) and stops. Other
// tickers' queued ticks deliberately do not count as pending work —
// counting them would let two samplers (say the observability sampler
// and the controller tick) sustain each other forever. This is sound
// for harnesses that schedule all their stimulus up front — the
// non-tick pending count only reaches zero when the run is truly over.
func (k *Kernel) Every(d Time, fn func()) {
	if d <= 0 {
		panic(fmt.Sprintf("sim: non-positive period %v", d))
	}
	var tick func()
	tick = func() {
		k.queuedTicks--
		fn()
		if k.events.Len() > k.queuedTicks {
			k.queuedTicks++
			k.After(d, tick)
		}
	}
	k.queuedTicks++
	k.After(d, tick)
}

// Pending reports the number of queued events.
func (k *Kernel) Pending() int { return k.events.Len() }

// Send schedules fn at absolute time t on domain to of this kernel's
// Sharded coordinator. Sends to the kernel's own domain are ordinary
// local At scheduling (any future time). Cross-domain sends go through
// the coordinator's mailbox and are delivered at the next epoch
// barrier; the conservative rule t >= current epoch horizon must hold
// (i.e. the model's cross-domain latency must be at least the
// coordinator's lookahead) or Send panics — a violation means the
// barrier sizing is wrong and determinism would be lost. On a
// standalone kernel (no coordinator) only to == 0 is valid.
func (k *Kernel) Send(to int, t Time, fn func()) {
	if k.shard == nil || to == k.domain {
		if k.shard == nil && to != 0 {
			panic(fmt.Sprintf("sim: Send to domain %d on a standalone kernel", to))
		}
		k.At(t, fn)
		return
	}
	k.shard.post(k.domain, to, t, fn)
}

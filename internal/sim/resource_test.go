package sim

import (
	"testing"
	"testing/quick"
)

func TestResourceSingleServerSerializes(t *testing.T) {
	k := NewKernel()
	r := NewResource(k, "srv", 1, FIFO)
	var ends []Time
	for i := 0; i < 3; i++ {
		r.Do(10*Nanosecond, func() { ends = append(ends, k.Now()) })
	}
	k.Run()
	want := []Time{10 * Nanosecond, 20 * Nanosecond, 30 * Nanosecond}
	for i, w := range want {
		if ends[i] != w {
			t.Errorf("task %d ended at %v, want %v", i, ends[i], w)
		}
	}
}

func TestResourceMultiServerParallelism(t *testing.T) {
	k := NewKernel()
	r := NewResource(k, "srv", 3, FIFO)
	var ends []Time
	for i := 0; i < 3; i++ {
		r.Do(10*Nanosecond, func() { ends = append(ends, k.Now()) })
	}
	k.Run()
	for i, e := range ends {
		if e != 10*Nanosecond {
			t.Errorf("task %d ended at %v, want 10ns (parallel)", i, e)
		}
	}
}

func TestResourceFIFOOrder(t *testing.T) {
	k := NewKernel()
	r := NewResource(k, "srv", 1, FIFO)
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		r.Do(Nanosecond, func() { order = append(order, i) })
	}
	k.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("FIFO violated: %v", order)
		}
	}
}

func TestResourcePriorityDiscipline(t *testing.T) {
	k := NewKernel()
	r := NewResource(k, "srv", 1, Priority)
	var order []int
	// Occupy the server so later submissions queue up.
	r.Submit(&Task{Hold: 10 * Nanosecond, Done: func() { order = append(order, -1) }})
	prios := []int{5, 1, 3}
	for _, p := range prios {
		p := p
		r.Submit(&Task{Hold: Nanosecond, Priority: p, Done: func() { order = append(order, p) }})
	}
	k.Run()
	want := []int{-1, 1, 3, 5}
	for i, w := range want {
		if order[i] != w {
			t.Fatalf("priority order = %v, want %v", order, want)
		}
	}
}

func TestResourceEDFDiscipline(t *testing.T) {
	k := NewKernel()
	r := NewResource(k, "srv", 1, EDF)
	var order []Time
	r.Submit(&Task{Hold: 10 * Nanosecond})
	deadlines := []Time{300 * Nanosecond, 100 * Nanosecond, 200 * Nanosecond}
	for _, d := range deadlines {
		d := d
		r.Submit(&Task{Hold: Nanosecond, Deadline: d, Done: func() { order = append(order, d) }})
	}
	k.Run()
	want := []Time{100 * Nanosecond, 200 * Nanosecond, 300 * Nanosecond}
	for i, w := range want {
		if order[i] != w {
			t.Fatalf("EDF order = %v, want %v", order, want)
		}
	}
}

func TestResourceUtilizationAndWait(t *testing.T) {
	k := NewKernel()
	r := NewResource(k, "srv", 1, FIFO)
	r.Do(10*Nanosecond, nil)
	r.Do(10*Nanosecond, nil)
	k.Run()
	if got := r.Utilization(20 * Nanosecond); got != 1.0 {
		t.Errorf("utilization = %v, want 1.0", got)
	}
	if got := r.Utilization(40 * Nanosecond); got != 0.5 {
		t.Errorf("utilization = %v, want 0.5", got)
	}
	// Second task waited 10ns.
	if r.MeanWait() != 5*Nanosecond {
		t.Errorf("mean wait = %v, want 5ns", r.MeanWait())
	}
	if r.TaskCount != 2 {
		t.Errorf("task count = %d, want 2", r.TaskCount)
	}
}

func TestResourceStartedCallback(t *testing.T) {
	k := NewKernel()
	r := NewResource(k, "srv", 1, FIFO)
	var startedAt Time
	r.Do(10*Nanosecond, nil)
	r.Submit(&Task{
		Hold:    Nanosecond,
		Started: func() { startedAt = k.Now() },
	})
	k.Run()
	if startedAt != 10*Nanosecond {
		t.Errorf("second task started at %v, want 10ns", startedAt)
	}
}

func TestResourceMaxQueue(t *testing.T) {
	k := NewKernel()
	r := NewResource(k, "srv", 1, FIFO)
	for i := 0; i < 5; i++ {
		r.Do(Nanosecond, nil)
	}
	// One in service, four queued.
	if r.MaxQueue != 4 {
		t.Errorf("MaxQueue = %d, want 4", r.MaxQueue)
	}
	if r.InService() != 1 {
		t.Errorf("InService = %d, want 1", r.InService())
	}
	if r.QueueLen() != 4 {
		t.Errorf("QueueLen = %d, want 4", r.QueueLen())
	}
	k.Run()
	if !r.Idle() {
		t.Error("resource not idle after Run")
	}
}

func TestResourceZeroServersPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero-server resource did not panic")
		}
	}()
	NewResource(NewKernel(), "bad", 0, FIFO)
}

// Property: total busy time equals the sum of holds regardless of server
// count or arrival pattern.
func TestResourcePropertyBusyTimeConserved(t *testing.T) {
	f := func(holds []uint8, servers uint8) bool {
		n := int(servers%4) + 1
		k := NewKernel()
		r := NewResource(k, "srv", n, FIFO)
		var sum Time
		for _, h := range holds {
			d := Time(h) * Nanosecond
			sum += d
			r.Do(d, nil)
		}
		k.Run()
		return r.BusyTime == sum && r.TaskCount == uint64(len(holds))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed produced different streams")
		}
	}
	c := NewRNG(42).Fork(1)
	d := NewRNG(42).Fork(2)
	if c.Float64() == d.Float64() {
		t.Error("different forks produced identical first values (unlikely)")
	}
}

func TestRNGExpMean(t *testing.T) {
	g := NewRNG(7)
	var sum Time
	const n = 20000
	for i := 0; i < n; i++ {
		sum += g.Exp(10 * Microsecond)
	}
	mean := float64(sum) / n
	want := float64(10 * Microsecond)
	if mean < 0.95*want || mean > 1.05*want {
		t.Errorf("exp mean = %v, want within 5%% of %v", mean, want)
	}
}

func TestRNGLogNormalMedian(t *testing.T) {
	g := NewRNG(11)
	vals := make([]float64, 0, 10001)
	for i := 0; i < 10001; i++ {
		vals = append(vals, g.LogNormal(1024, 0.8))
	}
	// Median of samples should be near 1024.
	lo, hi := 0, 0
	for _, v := range vals {
		if v < 1024 {
			lo++
		} else {
			hi++
		}
	}
	ratio := float64(lo) / float64(lo+hi)
	if ratio < 0.45 || ratio > 0.55 {
		t.Errorf("median split = %v, want ~0.5", ratio)
	}
}

func TestRNGParetoBounds(t *testing.T) {
	g := NewRNG(3)
	for i := 0; i < 1000; i++ {
		v := g.Pareto(10, 1.5, 500)
		if v < 10 || v > 500 {
			t.Fatalf("pareto sample %v out of [10,500]", v)
		}
	}
}

func TestRNGNormalTruncation(t *testing.T) {
	g := NewRNG(5)
	for i := 0; i < 1000; i++ {
		if v := g.Normal(1, 10, 0.5); v < 0.5 {
			t.Fatalf("truncated normal returned %v < 0.5", v)
		}
	}
}

func TestRNGBoolProbability(t *testing.T) {
	g := NewRNG(9)
	hits := 0
	const n = 20000
	for i := 0; i < n; i++ {
		if g.Bool(0.3) {
			hits++
		}
	}
	p := float64(hits) / n
	if p < 0.27 || p > 0.33 {
		t.Errorf("Bool(0.3) rate = %v", p)
	}
}

func TestResourceSetServersGrowStartsQueued(t *testing.T) {
	k := NewKernel()
	r := NewResource(k, "srv", 1, FIFO)
	var ends []Time
	for i := 0; i < 3; i++ {
		r.Do(10*Nanosecond, func() { ends = append(ends, k.Now()) })
	}
	// Growing mid-run must immediately start the queued tasks.
	k.At(5*Nanosecond, func() { r.SetServers(3) })
	k.Run()
	want := []Time{10 * Nanosecond, 15 * Nanosecond, 15 * Nanosecond}
	for i, w := range want {
		if ends[i] != w {
			t.Errorf("task %d ended at %v, want %v", i, ends[i], w)
		}
	}
}

func TestResourceSetServersShrinkDrains(t *testing.T) {
	k := NewKernel()
	r := NewResource(k, "srv", 3, FIFO)
	var ends []Time
	for i := 0; i < 5; i++ {
		r.Do(10*Nanosecond, func() { ends = append(ends, k.Now()) })
	}
	// Shrinking never preempts: the three in-flight tasks finish, then
	// the remaining two serialize on the single surviving server.
	k.At(0, func() { r.SetServers(1) })
	k.Run()
	want := []Time{10 * Nanosecond, 10 * Nanosecond, 10 * Nanosecond, 20 * Nanosecond, 30 * Nanosecond}
	for i, w := range want {
		if ends[i] != w {
			t.Errorf("task %d ended at %v, want %v", i, ends[i], w)
		}
	}
}

func TestResourceSetServersFloorsAtOne(t *testing.T) {
	k := NewKernel()
	r := NewResource(k, "srv", 4, FIFO)
	r.SetServers(-3)
	if r.Servers != 1 {
		t.Errorf("SetServers(-3) left Servers = %d, want 1", r.Servers)
	}
	done := false
	r.Do(Nanosecond, func() { done = true })
	k.Run()
	if !done {
		t.Error("floored resource no longer serves tasks")
	}
}

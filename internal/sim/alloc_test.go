package sim

import "testing"

// TestKernelAllocsPerEventSteadyState pins the kernel loop's
// steady-state allocation budget: a self-rescheduling event (the shape
// of every periodic model component) must be close to allocation-free
// once the queue's backing storage has warmed up — the concrete event
// heap must not box events the way container/heap did (one interface{}
// per Push and per Pop).
func TestKernelAllocsPerEventSteadyState(t *testing.T) {
	const events = 5000
	avg := testing.AllocsPerRun(5, func() {
		k := NewKernel()
		left := events
		var tick func()
		tick = func() {
			left--
			if left > 0 {
				k.After(Microsecond, tick)
			}
		}
		k.At(0, tick)
		k.Run()
	})
	// The whole run owns a handful of allocations (kernel, closure,
	// first heap growth); amortized per event it must be ~zero. 0.05
	// leaves 250 allocations of slack for runtime noise while failing
	// loudly if per-event boxing ever returns (which would cost >= 1).
	if perEvent := avg / events; perEvent > 0.05 {
		t.Errorf("kernel loop allocates %.3f allocs/event (%.0f per %d-event run), budget 0.05",
			perEvent, avg, events)
	}
}

// TestKernelAllocsPerEventLadder is the same budget with the queue
// forced into ladder mode: a pre-scheduled burst far above ladderOn,
// drained while each event reschedules once. Bucket slices are reused
// across rung promotions, so steady-state cost stays amortized-zero;
// the budget is looser because the burst itself grows buckets.
func TestKernelAllocsPerEventLadder(t *testing.T) {
	const burst = 4 * ladderOn
	avg := testing.AllocsPerRun(5, func() {
		k := NewKernel()
		fired := 0
		var fn func()
		fn = func() {
			fired++
			if fired <= burst {
				// One reschedule per original event keeps occupancy high
				// across the drain, exercising rung promotion and refills.
				k.After(3*bucketWidth, func() {})
			}
		}
		for i := 0; i < burst; i++ {
			k.At(Time(i)*bucketWidth/7, fn)
		}
		k.Run()
	})
	if perEvent := avg / (2 * burst); perEvent > 0.5 {
		t.Errorf("ladder-mode loop allocates %.3f allocs/event (%.0f per run), budget 0.5",
			perEvent, avg)
	}
}

// TestResourceAllocsPerTask pins the uncontended Resource.Do fast
// path: no Task allocation, no queue round trip, and a pooled
// completion record, so a serial chain of holds is ~allocation-free.
func TestResourceAllocsPerTask(t *testing.T) {
	const tasks = 2000
	avg := testing.AllocsPerRun(5, func() {
		k := NewKernel()
		r := NewResource(k, "pe", 1, FIFO)
		left := tasks
		var next func()
		next = func() {
			left--
			if left > 0 {
				r.Do(Nanosecond, next)
			}
		}
		r.Do(Nanosecond, next)
		k.Run()
	})
	if perTask := avg / tasks; perTask > 0.05 {
		t.Errorf("uncontended Do allocates %.3f allocs/task (%.0f per %d-task run), budget 0.05",
			perTask, avg, tasks)
	}
}

package sim

import (
	"context"
	"fmt"
	"reflect"
	"testing"
)

// buildRing schedules a deterministic multi-domain model on s: each
// domain starts tokens that do local work (several same-instant and
// near-instant events, exercising seq tiebreaks) and then hop to the
// next domain at now+hop. logs[d] is appended to only by domain d's
// events, mirroring the domain-confinement rule real models follow.
func buildRing(s *Sharded, hop Time, hops int) [][]string {
	nd := s.Domains()
	logs := make([][]string, nd)
	var bounce func(d, token, left int)
	bounce = func(d, token, left int) {
		k := s.Domain(d)
		now := k.Now()
		logs[d] = append(logs[d], fmt.Sprintf("d%d t%d arrive@%d left=%d", d, token, now, left))
		// Same-instant local events: order must come from seq alone.
		for i := 0; i < 3; i++ {
			i := i
			k.At(now+Nanosecond, func() {
				logs[d] = append(logs[d], fmt.Sprintf("d%d t%d work%d@%d", d, token, i, k.Now()))
			})
		}
		if left > 0 {
			next := (d + 1) % nd
			k.Send(next, now+hop, func() { bounce(next, token, left-1) })
		}
	}
	for d := 0; d < nd; d++ {
		d := d
		for tok := 0; tok < 2; tok++ {
			tok := tok
			s.Domain(d).At(Time(tok+1)*Microsecond, func() {
				bounce(d, d*10+tok, hops)
			})
		}
	}
	return logs
}

// TestShardedWorkerCountInvariance is the core determinism property:
// the same model executed with 1, 2, 4, and 8 workers produces
// byte-identical per-domain execution logs, clocks, and event counts.
func TestShardedWorkerCountInvariance(t *testing.T) {
	const domains, hops = 4, 6
	hop := 10 * Microsecond
	run := func(workers int) ([][]string, Time, uint64, ShardStats) {
		s := NewSharded(domains, hop, workers)
		logs := buildRing(s, hop, hops)
		if err := s.RunCtx(context.Background()); err != nil {
			t.Fatalf("workers=%d: RunCtx: %v", workers, err)
		}
		return logs, s.Now(), s.Processed(), s.Stats
	}
	refLogs, refNow, refN, refStats := run(1)
	if refN == 0 || refStats.Delivered == 0 {
		t.Fatalf("reference run did no work: processed=%d stats=%+v", refN, refStats)
	}
	for _, w := range []int{2, 4, 8} {
		logs, now, n, stats := run(w)
		if !reflect.DeepEqual(logs, refLogs) {
			t.Errorf("workers=%d: execution logs diverge from workers=1", w)
		}
		if now != refNow || n != refN {
			t.Errorf("workers=%d: now/processed = %v/%d, want %v/%d", w, now, n, refNow, refN)
		}
		if stats != refStats {
			t.Errorf("workers=%d: stats %+v, want %+v (epoch schedule must not depend on workers)", w, stats, refStats)
		}
	}
}

// TestShardedSingleDomainIsSerial pins the degenerate case: a
// one-domain Sharded delegates to the kernel's own RunCtx, so results
// match a standalone Kernel exactly.
func TestShardedSingleDomainIsSerial(t *testing.T) {
	program := func(k *Kernel) {
		for i := 0; i < 5; i++ {
			i := i
			k.At(Time(5-i)*Nanosecond, func() {
				if i == 0 {
					// Self-sends on a single domain are plain local
					// scheduling — exercised here to pin that rule.
					k.Send(0, k.Now()+Nanosecond, func() {})
				}
			})
		}
	}
	plain := NewKernel()
	program(plain)
	plain.Run()

	s := NewSharded(1, 0, 4)
	program(s.Domain(0))
	if err := s.RunCtx(context.Background()); err != nil {
		t.Fatalf("RunCtx: %v", err)
	}
	if plain.Processed() != s.Processed() || plain.Now() != s.Now() {
		t.Fatalf("single-domain sharded diverged: processed %d/%d now %v/%v",
			plain.Processed(), s.Processed(), plain.Now(), s.Now())
	}
}

// TestShardedConservativeSendPanics pins the lookahead guard: a
// cross-domain send landing inside the current epoch is a modeling
// bug (the declared lookahead exceeds the true cross-domain latency)
// and must fail loudly rather than silently lose determinism.
func TestShardedConservativeSendPanics(t *testing.T) {
	s := NewSharded(2, 10*Microsecond, 1)
	s.Domain(0).At(Microsecond, func() {
		// Horizon is first-event + lookahead = 11us; sending at now+1us
		// = 2us violates the conservative rule.
		s.Domain(0).Send(1, s.Domain(0).Now()+Microsecond, func() {})
	})
	defer func() {
		if recover() == nil {
			t.Error("conservative send violation did not panic")
		}
	}()
	_ = s.RunCtx(context.Background())
}

// TestShardedMailMergeOrder pins the barrier merge key: same-instant
// mail from different domains is delivered in source-domain order,
// then send order, so destination seq assignment is deterministic.
func TestShardedMailMergeOrder(t *testing.T) {
	hop := 10 * Microsecond
	s := NewSharded(3, hop, 1)
	var got []string
	at := 20 * Microsecond
	// Domains 2 and 1 both send two messages to domain 0 for the same
	// instant; delivery must come out (from=1 idx=0), (1,1), (2,0), (2,1)
	// regardless of the order the sends were scheduled in.
	for _, from := range []int{2, 1} {
		from := from
		s.Domain(from).At(Microsecond, func() {
			for i := 0; i < 2; i++ {
				msg := fmt.Sprintf("from%d.%d", from, i)
				s.Domain(from).Send(0, at, func() { got = append(got, msg) })
			}
		})
	}
	if err := s.RunCtx(context.Background()); err != nil {
		t.Fatalf("RunCtx: %v", err)
	}
	want := []string{"from1.0", "from1.1", "from2.0", "from2.1"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("merge order = %v, want %v", got, want)
	}
	if s.Stats.Delivered != 4 {
		t.Fatalf("Delivered = %d, want 4", s.Stats.Delivered)
	}
}

// TestShardedCancellation: cancelling mid-run stops at a barrier or
// batch boundary and surfaces ctx.Err.
func TestShardedCancellation(t *testing.T) {
	s := NewSharded(2, Microsecond, 2)
	ctx, cancel := context.WithCancel(context.Background())
	var chain func(d int)
	chain = func(d int) {
		k := s.Domain(d)
		k.After(Nanosecond, func() {
			if k.Processed() > 10_000 {
				cancel()
			}
			chain(d)
		})
	}
	for d := 0; d < 2; d++ {
		d := d
		s.Domain(d).At(0, func() { chain(d) })
	}
	if err := s.RunCtx(ctx); err == nil {
		t.Fatal("cancelled sharded run returned nil error")
	}
}

// TestShardedMultiDomainHookRestrictions: value knobs broadcast;
// closure hooks must be installed per domain.
func TestShardedMultiDomainHookRestrictions(t *testing.T) {
	s := NewSharded(2, Microsecond, 1)
	s.SetHooks(Hooks{MaxEvents: 10, CheckEvery: 7})
	for d := 0; d < 2; d++ {
		if s.Domain(d).hooks.MaxEvents != 10 || s.Domain(d).hooks.CheckEvery != 7 {
			t.Fatalf("domain %d hooks not broadcast: %+v", d, s.Domain(d).hooks)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("OnEvent on multi-domain Sharded did not panic")
		}
	}()
	s.SetHooks(Hooks{OnEvent: func(Time) {}})
}

// TestShardedPerDomainHooks: per-domain OnEvent observes exactly that
// domain's events in monotone time order (the checker contract).
func TestShardedPerDomainHooks(t *testing.T) {
	hop := 10 * Microsecond
	s := NewSharded(2, hop, 2)
	var times [2][]Time
	for d := 0; d < 2; d++ {
		d := d
		s.Domain(d).SetHooks(Hooks{OnEvent: func(at Time) { times[d] = append(times[d], at) }})
	}
	logs := buildRing(s, hop, 4)
	if err := s.RunCtx(context.Background()); err != nil {
		t.Fatalf("RunCtx: %v", err)
	}
	for d := 0; d < 2; d++ {
		if uint64(len(times[d])) != s.Domain(d).Processed() {
			t.Errorf("domain %d hook saw %d events, processed %d", d, len(times[d]), s.Domain(d).Processed())
		}
		for i := 1; i < len(times[d]); i++ {
			if times[d][i] < times[d][i-1] {
				t.Fatalf("domain %d time went backwards: %v after %v", d, times[d][i], times[d][i-1])
			}
		}
	}
	_ = logs
}

// TestStandaloneSendPanics: Send to a nonzero domain without a
// coordinator is a bug.
func TestStandaloneSendPanics(t *testing.T) {
	k := NewKernel()
	defer func() {
		if recover() == nil {
			t.Error("standalone Send(1, ...) did not panic")
		}
	}()
	k.Send(1, Nanosecond, func() {})
}

package sim

import (
	"container/heap"
	"math/rand"
	"testing"
)

// refHeap is an independent container/heap reference implementation of
// the (at, seq) priority queue, deliberately kept as the old kernel
// heap was written. The differential test below checks that eventQueue
// pops the exact same sequence through every representation switch.
type refHeap []event

func (h refHeap) Len() int { return len(h) }
func (h refHeap) Less(i, j int) bool {
	return h[i].at < h[j].at || (h[i].at == h[j].at && h[i].seq < h[j].seq)
}
func (h refHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *refHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *refHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// queueRegime is one random stream shape. Delta draws the offset of a
// new event's timestamp from the current simulated time.
type queueRegime struct {
	name  string
	delta func(r *rand.Rand) Time
}

// TestEventQueueDifferential drives eventQueue and the container/heap
// reference with identical seed-derived streams across regimes chosen
// to cross every internal boundary: staying in plain-heap mode,
// converting to the ladder and back (push bursts over ladderOn, drains
// under ladderOff), rung-window promotion, far-heap refills (offsets
// far beyond the 256-bucket near window), and heavy (at, seq)
// tie-breaking. Pops must match exactly: (at, seq) is a unique total
// order, so any divergence is a queue bug, not a tie ambiguity.
func TestEventQueueDifferential(t *testing.T) {
	regimes := []queueRegime{
		// Sub-bucket offsets: everything lands in the active rung window
		// or the first buckets; exercises rung pushes and tie ordering.
		{"dense-ties", func(r *rand.Rand) Time {
			return Time(r.Intn(3)) * (bucketWidth / 4)
		}},
		// Service-time scale offsets: spreads events across the near
		// window, exercising bucket appends and rung promotion.
		{"near-window", func(r *rand.Rand) Time {
			return Time(r.Int63n(int64(numBuckets) * int64(bucketWidth) / 2))
		}},
		// Mostly near, occasionally far beyond the horizon: exercises
		// the far heap and the near-window refill path.
		{"far-refill", func(r *rand.Rand) Time {
			if r.Intn(8) == 0 {
				return Time(r.Int63n(int64(bucketWidth) * numBuckets * 50))
			}
			return Time(r.Int63n(int64(bucketWidth) * 4))
		}},
		// Pre-scheduled-arrival shape: a huge spread, so almost all
		// events start in the far heap and refills repeat.
		{"arrivals", func(r *rand.Rand) Time {
			return Time(r.Int63n(int64(Millisecond)))
		}},
	}
	for _, reg := range regimes {
		for seed := int64(1); seed <= 4; seed++ {
			t.Run(reg.name, func(t *testing.T) {
				r := rand.New(rand.NewSource(seed * 7919))
				var q eventQueue
				ref := refHeap{}
				var now Time // kernel invariant: pushes are never in the past
				var seq uint64
				push := func() {
					seq++
					e := event{at: now + reg.delta(r), seq: seq}
					q.push(e)
					heap.Push(&ref, e)
				}
				pop := func() bool {
					if ref.Len() == 0 {
						return false
					}
					want := heap.Pop(&ref).(event)
					got := q.pop()
					if got.at != want.at || got.seq != want.seq {
						t.Fatalf("seed %d: pop mismatch: got (at=%d seq=%d), want (at=%d seq=%d)",
							seed, got.at, got.seq, want.at, want.seq)
					}
					now = got.at
					return true
				}

				// Burst high above ladderOn to force ladder mode, then
				// interleave pushes and pops with a drain bias, crossing
				// ladderOff (back to heap mode) and climbing again.
				for i := 0; i < 3*ladderOn; i++ {
					push()
				}
				for i := 0; i < 20000; i++ {
					if q.Len() != ref.Len() {
						t.Fatalf("seed %d: len mismatch: queue %d, ref %d", seed, q.Len(), ref.Len())
					}
					if r.Intn(5) < 2 && q.Len() < 4*ladderOn {
						push()
					} else if !pop() {
						push()
					}
					// minAt must agree with the reference's head and must
					// not perturb subsequent pops (it may promote a rung).
					if q.Len() > 0 && r.Intn(16) == 0 {
						if got, want := q.minAt(), ref[0].at; got != want {
							t.Fatalf("seed %d: minAt = %d, want %d", seed, got, want)
						}
					}
				}
				// Full drain: every remaining event must still match.
				for pop() {
				}
				if q.Len() != 0 {
					t.Fatalf("seed %d: queue reports %d events after drain", seed, q.Len())
				}
			})
		}
	}
}

// TestEventQueueSameInstantOrder pins the determinism contract at its
// sharpest point: many events at the identical timestamp must pop in
// scheduling order, across heap mode, a ladder conversion, and a drain.
func TestEventQueueSameInstantOrder(t *testing.T) {
	var q eventQueue
	const n = 2 * ladderOn // crosses the ladder conversion mid-burst
	for i := 0; i < n; i++ {
		q.push(event{at: 42 * Microsecond, seq: uint64(i + 1)})
	}
	for i := 0; i < n; i++ {
		e := q.pop()
		if e.seq != uint64(i+1) {
			t.Fatalf("pop %d: seq %d, want %d", i, e.seq, i+1)
		}
	}
}

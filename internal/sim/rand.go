package sim

import (
	"math"
	"math/rand"
)

// RNG wraps math/rand with the distributions the workload and payload
// models need. Every experiment derives independent, seeded streams so
// results are reproducible run to run.
type RNG struct {
	r *rand.Rand
}

// NewRNG returns a deterministic stream for the given seed.
func NewRNG(seed int64) *RNG {
	return &RNG{r: rand.New(rand.NewSource(seed))}
}

// Fork derives an independent stream, useful for giving each service or
// generator its own sequence without cross-coupling.
func (g *RNG) Fork(salt int64) *RNG {
	return NewRNG(g.r.Int63() ^ salt*0x9e3779b97f4a7c)
}

// Float64 returns a uniform value in [0,1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// Intn returns a uniform int in [0,n).
func (g *RNG) Intn(n int) int { return g.r.Intn(n) }

// Bool returns true with probability p.
func (g *RNG) Bool(p float64) bool { return g.r.Float64() < p }

// Exp returns an exponentially distributed duration with the given
// mean; used for Poisson inter-arrival times.
func (g *RNG) Exp(mean Time) Time {
	if mean <= 0 {
		return 0
	}
	d := Time(math.Round(g.r.ExpFloat64() * float64(mean)))
	if d < 0 {
		d = 0
	}
	return d
}

// LogNormal returns a lognormally distributed value with the given
// median and sigma (of the underlying normal). Payload sizes in the
// paper are small with a long tail (Fig. 5), which lognormal captures.
func (g *RNG) LogNormal(median float64, sigma float64) float64 {
	return median * math.Exp(g.r.NormFloat64()*sigma)
}

// Pareto returns a bounded Pareto sample with the given minimum and
// shape alpha, capped at max. Used for bursty serverless arrivals.
func (g *RNG) Pareto(min float64, alpha float64, max float64) float64 {
	u := g.r.Float64()
	v := min / math.Pow(1-u, 1/alpha)
	if v > max {
		v = max
	}
	return v
}

// Normal returns a normal sample with the given mean and stddev,
// truncated below at lo.
func (g *RNG) Normal(mean, stddev, lo float64) float64 {
	v := mean + g.r.NormFloat64()*stddev
	if v < lo {
		v = lo
	}
	return v
}

package sim

import (
	"math"
	"math/rand"
)

// RNG wraps math/rand with the distributions the workload and payload
// models need. Every experiment derives independent, seeded streams so
// results are reproducible run to run.
//
// Stream independence: sibling streams obtained via Fork (or seeds
// obtained via DeriveSeed) are decorrelated by a splitmix64-style
// finalizer, so two streams never share a lagged subsequence the way
// naive seed arithmetic (seed+1, seed^salt) can. This is what lets the
// parallel sweep engine give every simulation cell its own stream and
// still produce bit-identical results at any worker count: a cell's
// stream depends only on (root seed, cell key), never on which
// goroutine ran it or in what order.
type RNG struct {
	r *rand.Rand
}

// NewRNG returns a deterministic stream for the given seed.
func NewRNG(seed int64) *RNG {
	return &RNG{r: rand.New(rand.NewSource(seed))}
}

// mix64 is the splitmix64 finalizer (Steele et al., "Fast splittable
// pseudorandom number generators"): a bijective avalanche over uint64,
// so distinct inputs always map to distinct, decorrelated outputs.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Fork derives an independent stream, useful for giving each service or
// generator its own sequence without cross-coupling. The salt is passed
// through mix64 before combining so that small salts (including 0, for
// which plain multiplicative salting degenerates to no salting at all)
// still select well-separated streams.
func (g *RNG) Fork(salt int64) *RNG {
	return NewRNG(int64(mix64(uint64(g.r.Int63()) ^ mix64(uint64(salt)))))
}

// DeriveSeed maps (seed, key) to a child seed, deterministically and
// with avalanche: the same pair always yields the same child, and any
// change to either input changes the child everywhere. The sweep engine
// uses one key per simulation cell, which is what makes parallel sweeps
// replayable — results depend on the (seed, key) pair alone.
func DeriveSeed(seed int64, key string) int64 {
	// FNV-1a over the key, then a splitmix64 finalize of the pair.
	h := uint64(0xcbf29ce484222325)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= 0x100000001b3
	}
	return int64(mix64(uint64(seed) ^ mix64(h)))
}

// Float64 returns a uniform value in [0,1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// Intn returns a uniform int in [0,n).
func (g *RNG) Intn(n int) int { return g.r.Intn(n) }

// Bool returns true with probability p.
func (g *RNG) Bool(p float64) bool { return g.r.Float64() < p }

// Exp returns an exponentially distributed duration with the given
// mean; used for Poisson inter-arrival times.
func (g *RNG) Exp(mean Time) Time {
	if mean <= 0 {
		return 0
	}
	d := Time(math.Round(g.r.ExpFloat64() * float64(mean)))
	if d < 0 {
		d = 0
	}
	return d
}

// LogNormal returns a lognormally distributed value with the given
// median and sigma (of the underlying normal). Payload sizes in the
// paper are small with a long tail (Fig. 5), which lognormal captures.
func (g *RNG) LogNormal(median float64, sigma float64) float64 {
	return median * math.Exp(g.r.NormFloat64()*sigma)
}

// Pareto returns a bounded Pareto sample with the given minimum and
// shape alpha, capped at max. Used for bursty serverless arrivals.
func (g *RNG) Pareto(min float64, alpha float64, max float64) float64 {
	u := g.r.Float64()
	v := min / math.Pow(1-u, 1/alpha)
	if v > max {
		v = max
	}
	return v
}

// Normal returns a normal sample with the given mean and stddev,
// truncated below at lo.
func (g *RNG) Normal(mean, stddev, lo float64) float64 {
	v := mean + g.r.NormFloat64()*stddev
	if v < lo {
		v = lo
	}
	return v
}

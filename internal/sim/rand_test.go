package sim

import (
	"math"
	"testing"
)

// corr computes the Pearson correlation of two equal-length sequences.
func corr(a, b []float64) float64 {
	n := float64(len(a))
	var ma, mb float64
	for i := range a {
		ma += a[i]
		mb += b[i]
	}
	ma /= n
	mb /= n
	var num, da, db float64
	for i := range a {
		num += (a[i] - ma) * (b[i] - mb)
		da += (a[i] - ma) * (a[i] - ma)
		db += (b[i] - mb) * (b[i] - mb)
	}
	return num / math.Sqrt(da*db)
}

func draws(g *RNG, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = g.Float64()
	}
	return out
}

// TestForkSaltMatters covers the historical bug where Fork(0) ignored
// the salt entirely (salt*constant == 0): sibling forks with distinct
// salts must produce distinct streams, including salt 0.
func TestForkSaltMatters(t *testing.T) {
	for _, salts := range [][2]int64{{0, 1}, {0, 2}, {1, 2}, {-1, 1}, {7, 8}} {
		a := draws(NewRNG(42).Fork(salts[0]), 32)
		b := draws(NewRNG(42).Fork(salts[1]), 32)
		same := true
		for i := range a {
			if a[i] != b[i] {
				same = false
				break
			}
		}
		if same {
			t.Errorf("Fork(%d) and Fork(%d) from the same parent produced identical streams", salts[0], salts[1])
		}
	}
}

// TestForkDeterministic: forking is a pure function of (parent state,
// salt) — same parent seed and salt give bit-identical streams.
func TestForkDeterministic(t *testing.T) {
	a := draws(NewRNG(9).Fork(3), 64)
	b := draws(NewRNG(9).Fork(3), 64)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same-seed Fork diverged at draw %d: %v != %v", i, a[i], b[i])
		}
	}
}

// TestForkSiblingIndependence: sibling streams must be statistically
// uncorrelated. With n=4096 uniform draws, |r| for independent streams
// is ~1/sqrt(n) ~= 0.016; 0.08 gives a wide deterministic margin.
func TestForkSiblingIndependence(t *testing.T) {
	const n = 4096
	parent := NewRNG(1)
	sibs := []*RNG{parent.Fork(0), parent.Fork(1), parent.Fork(2), parent.Fork(100)}
	seqs := make([][]float64, len(sibs))
	for i, s := range sibs {
		seqs[i] = draws(s, n)
	}
	for i := 0; i < len(seqs); i++ {
		for j := i + 1; j < len(seqs); j++ {
			if r := corr(seqs[i], seqs[j]); math.Abs(r) > 0.08 {
				t.Errorf("sibling streams %d,%d correlated: r=%.3f", i, j, r)
			}
		}
	}
}

// TestDeriveSeedDistinct: distinct (seed, key) pairs must yield
// distinct child seeds across realistic cell-key populations.
func TestDeriveSeedDistinct(t *testing.T) {
	seen := map[int64]string{}
	keys := []string{"", "fig11/AccelFlow", "fig11/RELIEF", "fig12/RELIEF/5k",
		"fig12/RELIEF/15k", "a", "b", "ab", "ba"}
	for _, seed := range []int64{0, 1, 2, -1, 1 << 40} {
		for _, k := range keys {
			child := DeriveSeed(seed, k)
			if prev, dup := seen[child]; dup {
				t.Fatalf("collision: DeriveSeed(%d,%q) == %q", seed, k, prev)
			}
			seen[child] = k
		}
	}
}

// TestDeriveSeedStable pins the derivation so golden files cannot be
// silently invalidated by a mixer change.
func TestDeriveSeedStable(t *testing.T) {
	if a, b := DeriveSeed(1, "fig11/AccelFlow"), DeriveSeed(1, "fig11/AccelFlow"); a != b {
		t.Fatalf("DeriveSeed not deterministic: %d != %d", a, b)
	}
	if a, b := DeriveSeed(1, "x"), DeriveSeed(2, "x"); a == b {
		t.Fatal("DeriveSeed ignores the root seed")
	}
	if a, b := DeriveSeed(1, "x"), DeriveSeed(1, "y"); a == b {
		t.Fatal("DeriveSeed ignores the key")
	}
}

// TestDeriveSeedStreamsIndependent: streams seeded from sibling derived
// seeds are uncorrelated, mirroring the Fork test at the seed level.
func TestDeriveSeedStreamsIndependent(t *testing.T) {
	const n = 4096
	a := draws(NewRNG(DeriveSeed(1, "cell/a")), n)
	b := draws(NewRNG(DeriveSeed(1, "cell/b")), n)
	if r := corr(a, b); math.Abs(r) > 0.08 {
		t.Errorf("derived-seed streams correlated: r=%.3f", r)
	}
}

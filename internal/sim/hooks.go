package sim

import "context"

// Hooks is the kernel's single instrumentation surface. It replaces
// the hook points that accreted on Kernel one field at a time — the
// per-event observer, the runaway-event budget, the cancellation poll
// cadence, and periodic samplers registered through Every — with one
// value installed through one call (SetHooks), so the serial Kernel
// and the Sharded coordinator implement one contract instead of each
// re-plumbing four ad-hoc knobs.
//
// All hook callbacks must only read simulation state: a mutating hook
// would change results, and determinism (serial == sharded, byte for
// byte) depends on hooks being pure observers.
type Hooks struct {
	// OnEvent, when non-nil, observes every executed event's timestamp
	// just before its callback runs (the invariant checker uses it to
	// verify event-time monotonicity). Install it before the run
	// starts: the run loop selects a hook-free tight path up front when
	// OnEvent is nil and MaxEvents is 0, so a hook installed mid-run
	// from inside an event callback is not guaranteed to be seen.
	OnEvent func(at Time)

	// MaxEvents aborts the run (panics) when the processed-event count
	// exceeds it; 0 means unlimited. Used as a runaway-loop tripwire.
	MaxEvents uint64

	// CheckEvery is the cooperative-cancellation poll cadence: RunCtx
	// checks ctx.Err() every CheckEvery executed events. <= 0 selects
	// the default of 4096.
	CheckEvery uint64

	// Periodic samplers armed when the hooks are installed. Each is
	// scheduled through the kernel's self-terminating tick (see
	// Kernel.Every): the tick reschedules itself only while other
	// events are pending, so a sampler cannot keep a finished
	// simulation alive. Entries arm in slice order, which fixes their
	// event-sequence positions and keeps runs deterministic.
	Periodic []Periodic
}

// Periodic is one repeating sampler in Hooks.
type Periodic struct {
	Every Time
	Fn    func()
}

// defaultCheckEvery is the cancellation poll cadence when
// Hooks.CheckEvery is unset.
const defaultCheckEvery = 4096

// Runner is the contract shared by the serial Kernel and the Sharded
// coordinator: install instrumentation once, run to completion (or
// cancellation), read the clock and the processed-event count. Code
// that drives a simulation against Runner works identically — byte for
// byte — over either implementation.
type Runner interface {
	// SetHooks installs the full instrumentation surface, replacing
	// any previously installed hooks, and arms Periodic entries at the
	// current point in the schedule. Call it before the run starts.
	SetHooks(h Hooks)

	// RunCtx executes events until none remain or ctx is cancelled
	// (returning ctx's error in the latter case, nil when drained).
	RunCtx(ctx context.Context) error

	// Now returns the current simulated time: for a sharded run, the
	// maximum across domains (the fleet-wide clock at quiescence).
	Now() Time

	// Processed returns the number of executed events, summed across
	// domains for a sharded run.
	Processed() uint64

	// Pending reports queued events not yet executed, summed across
	// domains plus undelivered cross-domain mail for a sharded run.
	Pending() int
}

var (
	_ Runner = (*Kernel)(nil)
	_ Runner = (*Sharded)(nil)
)

package sim

// Discipline selects the order in which queued tasks are admitted to a
// free server of a Resource.
type Discipline int

const (
	// FIFO admits tasks in arrival order.
	FIFO Discipline = iota
	// Priority admits the numerically smallest Priority first,
	// breaking ties by arrival order.
	Priority
	// EDF (earliest deadline first) admits the task with the smallest
	// Deadline first, breaking ties by arrival order. Used by the
	// soft-SLO input dispatcher policy (paper §IV-C).
	EDF
)

// Task describes one unit of work submitted to a Resource.
type Task struct {
	// Hold is how long a server is occupied by the task.
	Hold Time
	// Done runs when the task completes (after Hold has elapsed).
	Done func()
	// Started, if non-nil, runs when the task is admitted to a server,
	// before the hold begins. Useful for recording queueing delay.
	Started func()
	// Priority orders tasks under the Priority discipline (lower first).
	Priority int
	// Deadline orders tasks under the EDF discipline (earlier first).
	Deadline Time

	enq Time
	seq uint64
}

// taskHeap is a concrete binary min-heap of queued tasks — no
// container/heap, so admissions pay no interface dispatch. The
// comparison key always ends in the unique per-resource seq, a total
// order, so pop order does not depend on sift implementation details.
type taskHeap struct {
	tasks []*Task
	disc  Discipline
}

func (h *taskHeap) less(a, b *Task) bool {
	switch h.disc {
	case Priority:
		if a.Priority != b.Priority {
			return a.Priority < b.Priority
		}
	case EDF:
		if a.Deadline != b.Deadline {
			return a.Deadline < b.Deadline
		}
	}
	return a.seq < b.seq
}

func (h *taskHeap) push(t *Task) {
	h.tasks = append(h.tasks, t)
	s := h.tasks
	i := len(s) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !h.less(s[i], s[p]) {
			break
		}
		s[i], s[p] = s[p], s[i]
		i = p
	}
}

func (h *taskHeap) pop() *Task {
	s := h.tasks
	top := s[0]
	n := len(s) - 1
	s[0] = s[n]
	s[n] = nil // drop the reference for GC
	h.tasks = s[:n]
	h.down(0)
	return top
}

func (h *taskHeap) down(i int) {
	s := h.tasks
	n := len(s)
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		m := l
		if r := l + 1; r < n && h.less(s[r], s[l]) {
			m = r
		}
		if !h.less(s[m], s[i]) {
			return
		}
		s[i], s[m] = s[m], s[i]
		i = m
	}
}

func (h *taskHeap) init() {
	for i := len(h.tasks)/2 - 1; i >= 0; i-- {
		h.down(i)
	}
}

// Resource models a pool of identical servers with a shared queue, e.g.
// the PEs of one accelerator, the A-DMA engine pool, the RELIEF
// hardware manager, or the CPU core pool. Queueing statistics and
// busy-time are accumulated for utilization and wait-time reporting.
type Resource struct {
	Name    string
	Servers int

	k    *Kernel
	busy int
	q    taskHeap
	seq  uint64

	// Stats.
	BusyTime  Time // summed over servers
	WaitTime  Time // summed queueing delay
	TaskCount uint64
	MaxQueue  int

	// Occupancy integrals, advanced lazily on every queue/busy change.
	// qArea is ∫(queue length)dt in task-picoseconds; at any instant it
	// equals the wait already accrued by departed tasks (WaitTime) plus
	// the wait accrued so far by still-queued ones, which is the exact
	// integer form of Little's law the invariant checker verifies.
	// busyArea is ∫(busy servers)dt; once every admitted hold has
	// elapsed it equals BusyTime exactly (BusyTime is charged up front,
	// so the two only agree at quiescence).
	qArea    Time
	busyArea Time
	// srvArea is ∫(configured servers)dt — the exact capacity-time
	// integral. With a static pool it is Servers × elapsed; under
	// mid-run SetServers changes (fault windows, the autoscaler) it is
	// the true provisioned capacity, which is what the
	// cost-of-overprovisioning experiment charges for.
	srvArea  Time
	lastTick Time
	// maxServers tracks the largest server count ever configured, so
	// utilization bounds stay valid across mid-run SetServers changes.
	maxServers int

	// freeComp is a free list of recycled completion nodes, so admitting
	// a task does not allocate a fresh closure for its completion event.
	freeComp *compNode
}

// compNode is a pooled task completion: the kernel event that ends a
// hold runs fn (a method value bound once, at node creation) instead
// of a per-admission closure. Nodes recycle through Resource.freeComp.
type compNode struct {
	r    *Resource
	done func()
	next *compNode
	fn   func()
}

// run ends one hold: it extracts the completion callback, returns the
// node to the pool (safe even if done re-enters Do/Submit and reuses
// it — nothing below reads the node again), then performs exactly what
// the old inline closure did.
func (n *compNode) run() {
	r := n.r
	done := n.done
	n.done = nil
	n.next = r.freeComp
	r.freeComp = n
	r.advance()
	r.busy--
	if done != nil {
		done()
	}
	r.tryStart()
}

// complete schedules the end of a hold that is starting now.
func (r *Resource) complete(done func(), hold Time) {
	n := r.freeComp
	if n == nil {
		n = &compNode{r: r}
		n.fn = n.run
	} else {
		r.freeComp = n.next
	}
	n.done = done
	r.k.After(hold, n.fn)
}

// NewResource creates a Resource with the given number of servers and
// queue discipline.
func NewResource(k *Kernel, name string, servers int, disc Discipline) *Resource {
	if servers <= 0 {
		panic("sim: resource needs at least one server")
	}
	return &Resource{Name: name, Servers: servers, maxServers: servers, k: k, q: taskHeap{disc: disc}}
}

// advance accrues the occupancy integrals up to the current simulated
// time. It must run before any queue-length or busy-count change; a
// second call at the same instant is a no-op, so callers do not need
// to coordinate.
func (r *Resource) advance() {
	now := r.k.Now()
	if dt := now - r.lastTick; dt > 0 {
		r.qArea += Time(len(r.q.tasks)) * dt
		r.busyArea += Time(r.busy) * dt
		r.srvArea += Time(r.Servers) * dt
		r.lastTick = now
	}
}

// SetDiscipline changes the queue discipline. Pending tasks are
// re-ordered lazily (heap property restored on next push/pop).
func (r *Resource) SetDiscipline(d Discipline) {
	r.q.disc = d
	r.q.init()
}

// SetServers changes the server count mid-run (fault injection:
// degraded PEs, removed A-DMA engines, a stalled manager). Growing the
// pool starts queued tasks immediately; shrinking it never preempts —
// in-service tasks finish and the pool drains down to the new size.
// The count is floored at one server so queued work cannot strand.
func (r *Resource) SetServers(n int) {
	if n < 1 {
		n = 1
	}
	// Accrue the capacity integral at the old server count before the
	// change takes effect (advance is idempotent per instant, so the
	// extra call is accounting-only and changes no event order).
	r.advance()
	r.Servers = n
	if n > r.maxServers {
		r.maxServers = n
	}
	r.tryStart()
}

// Submit enqueues a task. If a server is free it starts immediately.
func (r *Resource) Submit(t *Task) {
	r.advance()
	r.seq++
	t.seq = r.seq
	t.enq = r.k.Now()
	r.q.push(t)
	if len(r.q.tasks) > r.MaxQueue {
		r.MaxQueue = len(r.q.tasks)
	}
	r.tryStart()
}

// Do is shorthand for submitting a FIFO task with only a hold and a
// completion callback. When a server is free and nothing is queued it
// skips the Task allocation and queue round trip entirely — the
// accounting below is exactly what Submit+tryStart would have done
// for an immediately-admitted Task (zero wait, nil Started), and the
// completion is scheduled from the same program point, so kernel event
// order and every statistic except MaxQueue (which no longer counts
// the instantaneously-popped task) are bit-identical to the slow path.
func (r *Resource) Do(hold Time, done func()) {
	if r.busy < r.Servers && len(r.q.tasks) == 0 {
		r.advance()
		r.busy++
		r.TaskCount++
		r.BusyTime += hold
		r.complete(done, hold)
		return
	}
	r.Submit(&Task{Hold: hold, Done: done})
}

// QueueLen reports the number of tasks waiting (not in service).
func (r *Resource) QueueLen() int { return len(r.q.tasks) }

// InService reports the number of busy servers.
func (r *Resource) InService() int { return r.busy }

// Idle reports whether the resource has no queued or running work.
func (r *Resource) Idle() bool { return r.busy == 0 && len(r.q.tasks) == 0 }

func (r *Resource) tryStart() {
	r.advance()
	for r.busy < r.Servers && len(r.q.tasks) > 0 {
		t := r.q.pop()
		r.busy++
		r.TaskCount++
		wait := r.k.Now() - t.enq
		r.WaitTime += wait
		if t.Started != nil {
			t.Started()
		}
		r.BusyTime += t.Hold
		r.complete(t.Done, t.Hold)
	}
}

// Utilization returns the fraction of server-time spent busy over the
// elapsed simulated time.
func (r *Resource) Utilization(elapsed Time) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(r.BusyTime) / (float64(elapsed) * float64(r.Servers))
}

// MeanWait returns the average queueing delay per task.
func (r *Resource) MeanWait() Time {
	if r.TaskCount == 0 {
		return 0
	}
	return Time(int64(r.WaitTime) / int64(r.TaskCount))
}

// QueueArea returns ∫(queue length)dt up to now, in task-picoseconds.
func (r *Resource) QueueArea() Time {
	r.advance()
	return r.qArea
}

// BusyArea returns ∫(busy servers)dt up to now, in server-picoseconds.
// Unlike BusyTime (charged up front at task start), this accrues in
// real time, so BusyArea <= BusyTime until all admitted holds elapse.
func (r *Resource) BusyArea() Time {
	r.advance()
	return r.busyArea
}

// QueuedWaitResidual sums the wait already accrued by tasks still in
// the queue, completing the Little's-law identity
// QueueArea == WaitTime + QueuedWaitResidual at any instant.
func (r *Resource) QueuedWaitResidual() Time {
	now := r.k.Now()
	var t Time
	for _, task := range r.q.tasks {
		t += now - task.enq
	}
	return t
}

// ServerArea returns ∫(configured servers)dt up to now, in
// server-picoseconds — the exact provisioned-capacity integral across
// any sequence of mid-run SetServers changes.
func (r *Resource) ServerArea() Time {
	r.advance()
	return r.srvArea
}

// MaxServers reports the largest server count the resource ever had,
// bounding utilization even across mid-run SetServers fault windows.
func (r *Resource) MaxServers() int { return r.maxServers }

package sim

import "container/heap"

// Discipline selects the order in which queued tasks are admitted to a
// free server of a Resource.
type Discipline int

const (
	// FIFO admits tasks in arrival order.
	FIFO Discipline = iota
	// Priority admits the numerically smallest Priority first,
	// breaking ties by arrival order.
	Priority
	// EDF (earliest deadline first) admits the task with the smallest
	// Deadline first, breaking ties by arrival order. Used by the
	// soft-SLO input dispatcher policy (paper §IV-C).
	EDF
)

// Task describes one unit of work submitted to a Resource.
type Task struct {
	// Hold is how long a server is occupied by the task.
	Hold Time
	// Done runs when the task completes (after Hold has elapsed).
	Done func()
	// Started, if non-nil, runs when the task is admitted to a server,
	// before the hold begins. Useful for recording queueing delay.
	Started func()
	// Priority orders tasks under the Priority discipline (lower first).
	Priority int
	// Deadline orders tasks under the EDF discipline (earlier first).
	Deadline Time

	enq Time
	seq uint64
}

type taskHeap struct {
	tasks []*Task
	disc  Discipline
}

func (h *taskHeap) Len() int { return len(h.tasks) }
func (h *taskHeap) Less(i, j int) bool {
	a, b := h.tasks[i], h.tasks[j]
	switch h.disc {
	case Priority:
		if a.Priority != b.Priority {
			return a.Priority < b.Priority
		}
	case EDF:
		if a.Deadline != b.Deadline {
			return a.Deadline < b.Deadline
		}
	}
	return a.seq < b.seq
}
func (h *taskHeap) Swap(i, j int)      { h.tasks[i], h.tasks[j] = h.tasks[j], h.tasks[i] }
func (h *taskHeap) Push(x interface{}) { h.tasks = append(h.tasks, x.(*Task)) }
func (h *taskHeap) Pop() interface{} {
	old := h.tasks
	n := len(old)
	t := old[n-1]
	h.tasks = old[:n-1]
	return t
}

// Resource models a pool of identical servers with a shared queue, e.g.
// the PEs of one accelerator, the A-DMA engine pool, the RELIEF
// hardware manager, or the CPU core pool. Queueing statistics and
// busy-time are accumulated for utilization and wait-time reporting.
type Resource struct {
	Name    string
	Servers int

	k    *Kernel
	busy int
	q    taskHeap
	seq  uint64

	// Stats.
	BusyTime  Time // summed over servers
	WaitTime  Time // summed queueing delay
	TaskCount uint64
	MaxQueue  int

	// Occupancy integrals, advanced lazily on every queue/busy change.
	// qArea is ∫(queue length)dt in task-picoseconds; at any instant it
	// equals the wait already accrued by departed tasks (WaitTime) plus
	// the wait accrued so far by still-queued ones, which is the exact
	// integer form of Little's law the invariant checker verifies.
	// busyArea is ∫(busy servers)dt; once every admitted hold has
	// elapsed it equals BusyTime exactly (BusyTime is charged up front,
	// so the two only agree at quiescence).
	qArea    Time
	busyArea Time
	lastTick Time
	// maxServers tracks the largest server count ever configured, so
	// utilization bounds stay valid across mid-run SetServers changes.
	maxServers int
}

// NewResource creates a Resource with the given number of servers and
// queue discipline.
func NewResource(k *Kernel, name string, servers int, disc Discipline) *Resource {
	if servers <= 0 {
		panic("sim: resource needs at least one server")
	}
	return &Resource{Name: name, Servers: servers, maxServers: servers, k: k, q: taskHeap{disc: disc}}
}

// advance accrues the occupancy integrals up to the current simulated
// time. It must run before any queue-length or busy-count change; a
// second call at the same instant is a no-op, so callers do not need
// to coordinate.
func (r *Resource) advance() {
	now := r.k.Now()
	if dt := now - r.lastTick; dt > 0 {
		r.qArea += Time(len(r.q.tasks)) * dt
		r.busyArea += Time(r.busy) * dt
		r.lastTick = now
	}
}

// SetDiscipline changes the queue discipline. Pending tasks are
// re-ordered lazily (heap property restored on next push/pop).
func (r *Resource) SetDiscipline(d Discipline) {
	r.q.disc = d
	heap.Init(&r.q)
}

// SetServers changes the server count mid-run (fault injection:
// degraded PEs, removed A-DMA engines, a stalled manager). Growing the
// pool starts queued tasks immediately; shrinking it never preempts —
// in-service tasks finish and the pool drains down to the new size.
// The count is floored at one server so queued work cannot strand.
func (r *Resource) SetServers(n int) {
	if n < 1 {
		n = 1
	}
	r.Servers = n
	if n > r.maxServers {
		r.maxServers = n
	}
	r.tryStart()
}

// Submit enqueues a task. If a server is free it starts immediately.
func (r *Resource) Submit(t *Task) {
	r.advance()
	r.seq++
	t.seq = r.seq
	t.enq = r.k.Now()
	heap.Push(&r.q, t)
	if len(r.q.tasks) > r.MaxQueue {
		r.MaxQueue = len(r.q.tasks)
	}
	r.tryStart()
}

// Do is shorthand for submitting a FIFO task with only a hold and a
// completion callback.
func (r *Resource) Do(hold Time, done func()) {
	r.Submit(&Task{Hold: hold, Done: done})
}

// QueueLen reports the number of tasks waiting (not in service).
func (r *Resource) QueueLen() int { return len(r.q.tasks) }

// InService reports the number of busy servers.
func (r *Resource) InService() int { return r.busy }

// Idle reports whether the resource has no queued or running work.
func (r *Resource) Idle() bool { return r.busy == 0 && len(r.q.tasks) == 0 }

func (r *Resource) tryStart() {
	r.advance()
	for r.busy < r.Servers && len(r.q.tasks) > 0 {
		t := heap.Pop(&r.q).(*Task)
		r.busy++
		r.TaskCount++
		wait := r.k.Now() - t.enq
		r.WaitTime += wait
		if t.Started != nil {
			t.Started()
		}
		r.BusyTime += t.Hold
		hold := t.Hold
		done := t.Done
		r.k.After(hold, func() {
			r.advance()
			r.busy--
			if done != nil {
				done()
			}
			r.tryStart()
		})
	}
}

// Utilization returns the fraction of server-time spent busy over the
// elapsed simulated time.
func (r *Resource) Utilization(elapsed Time) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(r.BusyTime) / (float64(elapsed) * float64(r.Servers))
}

// MeanWait returns the average queueing delay per task.
func (r *Resource) MeanWait() Time {
	if r.TaskCount == 0 {
		return 0
	}
	return Time(int64(r.WaitTime) / int64(r.TaskCount))
}

// QueueArea returns ∫(queue length)dt up to now, in task-picoseconds.
func (r *Resource) QueueArea() Time {
	r.advance()
	return r.qArea
}

// BusyArea returns ∫(busy servers)dt up to now, in server-picoseconds.
// Unlike BusyTime (charged up front at task start), this accrues in
// real time, so BusyArea <= BusyTime until all admitted holds elapse.
func (r *Resource) BusyArea() Time {
	r.advance()
	return r.busyArea
}

// QueuedWaitResidual sums the wait already accrued by tasks still in
// the queue, completing the Little's-law identity
// QueueArea == WaitTime + QueuedWaitResidual at any instant.
func (r *Resource) QueuedWaitResidual() Time {
	now := r.k.Now()
	var t Time
	for _, task := range r.q.tasks {
		t += now - task.enq
	}
	return t
}

// MaxServers reports the largest server count the resource ever had,
// bounding utilization even across mid-run SetServers fault windows.
func (r *Resource) MaxServers() int { return r.maxServers }

package sim

// eventQueue is the kernel's pending-event store. Events pop in strict
// (at, seq) order — the total order that makes runs deterministic —
// through one of two representations chosen by occupancy:
//
//   - heap: a concrete binary min-heap. Unlike container/heap there is
//     no interface boxing (the old heap allocated one interface{} per
//     Push and per Pop — ~27% of all run allocations) and no dynamic
//     dispatch on Less/Swap. Best at low occupancy, where a bucketed
//     structure would scan mostly-empty buckets per pop.
//
//   - ladder: a calendar/ladder queue for high-rate runs. A near
//     window of numBuckets fixed-width buckets starting at bucketStart
//     takes O(1) appends; the bucket being drained (the "rung") is a
//     small concrete heap; everything beyond the near horizon sits in
//     a far heap (pre-scheduled arrivals, far timeouts). Scheduling a
//     near-future event — the overwhelmingly common case in a busy
//     run — costs O(1) or O(log rung) instead of O(log total), and
//     the rung heap stays small because it only ever holds one bucket
//     width of events, not every pre-scheduled arrival in the run.
//
// The representations order identically (the comparison key (at, seq)
// is unique, so any correct priority queue pops the same sequence),
// which TestEventQueueDifferential proves against a container/heap
// reference; the occupancy thresholds are therefore performance
// tuning, never a correctness knob. Conversion happens with hysteresis
// (ladderOn >> ladderOff) so an oscillating queue cannot thrash.
const (
	// ladderOn converts heap -> ladder when occupancy reaches it;
	// ladderOff converts back when occupancy falls to it. The gap
	// amortizes the O(n) conversions over >= ladderOn-ladderOff ops.
	ladderOn  = 512
	ladderOff = 128

	// bucketShift fixes the bucket width at 2^20 ps ~= 1.05us: around
	// the accelerator service-time scale, so one bucket holds a burst
	// of near-future events while pre-scheduled arrivals (ms scale)
	// stay in the far heap.
	bucketShift = 20
	bucketWidth = Time(1) << bucketShift
	numBuckets  = 256
)

type eventQueue struct {
	count  int
	ladder bool

	// heap mode.
	heap []event

	// ladder mode.
	rung        []event // concrete min-heap of the bucket being drained
	activeEnd   Time    // exclusive end of the rung's window
	bucketStart Time    // start of buckets[0]'s window
	cur         int     // index of the bucket last promoted to the rung
	buckets     [numBuckets][]event
	far         []event // concrete min-heap beyond the near horizon
}

// evLess is the total event order: time, then scheduling sequence.
func evLess(a, b *event) bool {
	return a.at < b.at || (a.at == b.at && a.seq < b.seq)
}

func heapPushEv(h *[]event, e event) {
	*h = append(*h, e)
	s := *h
	i := len(s) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !evLess(&s[i], &s[p]) {
			break
		}
		s[i], s[p] = s[p], s[i]
		i = p
	}
}

func heapPopEv(h *[]event) event {
	s := *h
	top := s[0]
	n := len(s) - 1
	s[0] = s[n]
	s[n] = event{} // drop the callback reference for GC
	s = s[:n]
	*h = s
	heapDownEv(s, 0)
	return top
}

func heapDownEv(s []event, i int) {
	n := len(s)
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		m := l
		if r := l + 1; r < n && evLess(&s[r], &s[l]) {
			m = r
		}
		if !evLess(&s[m], &s[i]) {
			return
		}
		s[i], s[m] = s[m], s[i]
		i = m
	}
}

func heapInitEv(s []event) {
	for i := len(s)/2 - 1; i >= 0; i-- {
		heapDownEv(s, i)
	}
}

// Len reports queued events.
func (q *eventQueue) Len() int { return q.count }

// push inserts an event, converting to ladder form at high occupancy.
func (q *eventQueue) push(e event) {
	q.count++
	if !q.ladder {
		heapPushEv(&q.heap, e)
		if q.count >= ladderOn {
			q.toLadder()
		}
		return
	}
	if e.at < q.activeEnd {
		// Active window (or, right after a conversion/refill, before
		// it): events here may precede everything bucketed, so they
		// join the rung heap, which pops in exact (at, seq) order.
		heapPushEv(&q.rung, e)
	} else if idx := (e.at - q.bucketStart) >> bucketShift; idx < numBuckets {
		q.buckets[idx] = append(q.buckets[idx], e)
	} else {
		heapPushEv(&q.far, e)
	}
}

// pop removes and returns the minimum event. count must be > 0.
func (q *eventQueue) pop() event {
	if !q.ladder {
		q.count--
		return heapPopEv(&q.heap)
	}
	if len(q.rung) == 0 {
		q.advanceRung()
	}
	e := heapPopEv(&q.rung)
	q.count--
	if q.count <= ladderOff {
		q.toHeap()
	}
	return e
}

// minAt returns the timestamp of the minimum event without removing
// it. count must be > 0. In ladder mode this may promote a bucket, a
// mutation that never changes pop order.
func (q *eventQueue) minAt() Time {
	if !q.ladder {
		return q.heap[0].at
	}
	if len(q.rung) == 0 {
		q.advanceRung()
	}
	return q.rung[0].at
}

// advanceRung promotes the next non-empty bucket into the (empty)
// rung, refilling the near window from the far heap when the whole
// window has drained. count must be > 0 (so an event exists to find).
func (q *eventQueue) advanceRung() {
	for {
		for i := q.cur + 1; i < numBuckets; i++ {
			if len(q.buckets[i]) > 0 {
				q.cur = i
				// Swap slices so the drained rung's storage becomes the
				// bucket's next backing array: zero steady-state allocs.
				q.rung, q.buckets[i] = q.buckets[i], q.rung[:0]
				heapInitEv(q.rung)
				q.activeEnd = q.bucketStart + Time(i+1)<<bucketShift
				return
			}
		}
		// Near window exhausted: re-anchor it at the earliest far event
		// and pull everything inside the new horizon into buckets.
		q.bucketStart = q.far[0].at >> bucketShift << bucketShift
		q.cur = -1
		q.activeEnd = q.bucketStart
		horizon := q.bucketStart + numBuckets*bucketWidth
		for len(q.far) > 0 && q.far[0].at < horizon {
			e := heapPopEv(&q.far)
			idx := (e.at - q.bucketStart) >> bucketShift
			q.buckets[idx] = append(q.buckets[idx], e)
		}
	}
}

// toLadder distributes the heap's events into ladder form.
func (q *eventQueue) toLadder() {
	q.ladder = true
	q.bucketStart = q.heap[0].at >> bucketShift << bucketShift
	q.cur = -1
	q.activeEnd = q.bucketStart
	horizon := q.bucketStart + numBuckets*bucketWidth
	for _, e := range q.heap {
		if e.at < horizon {
			idx := (e.at - q.bucketStart) >> bucketShift
			q.buckets[idx] = append(q.buckets[idx], e)
		} else {
			q.far = append(q.far, e)
		}
	}
	heapInitEv(q.far)
	clear(q.heap)
	q.heap = q.heap[:0]
}

// toHeap collapses the ladder back into one heap (low occupancy, where
// per-pop bucket scans would dominate).
func (q *eventQueue) toHeap() {
	q.ladder = false
	h := append(q.heap[:0], q.rung...)
	clear(q.rung)
	q.rung = q.rung[:0]
	for i := range q.buckets {
		if len(q.buckets[i]) == 0 {
			continue
		}
		h = append(h, q.buckets[i]...)
		clear(q.buckets[i])
		q.buckets[i] = q.buckets[i][:0]
	}
	h = append(h, q.far...)
	clear(q.far)
	q.far = q.far[:0]
	heapInitEv(h)
	q.heap = h
}

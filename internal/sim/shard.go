package sim

import (
	"context"
	"fmt"
	"math"
	"sort"
	"sync"
)

// Sharded runs several Kernels — one per resource domain — under
// conservative time-window synchronization, the classic parallel
// discrete-event scheme: all domains advance together through epochs
// of width lookahead (the minimum cross-domain latency), with a
// barrier between epochs where cross-domain mail is merged into the
// destination queues in a fixed total order.
//
// Determinism argument (why execution is byte-identical at any worker
// count, including 1):
//
//  1. Each domain's state is touched only by events on that domain's
//     kernel, and each kernel is executed by exactly one goroutine per
//     epoch. Within an epoch a domain runs exactly the serial
//     algorithm over exactly the events visible to it.
//  2. The conservative send rule (Send panics unless the delivery
//     time is at or beyond the current epoch horizon) guarantees no
//     event that could affect a domain in epoch N is produced during
//     epoch N, so the set of events each domain executes per epoch is
//     fixed before the epoch starts.
//  3. At the barrier, mail is sorted by (delivery time, source
//     domain, send order within source) — a total order independent of
//     goroutine scheduling — before being pushed, so destination
//     sequence numbers (the kernel's same-instant tiebreaker) are
//     assigned identically on every run.
//  4. The epoch schedule itself (each epoch's start = the earliest
//     pending event across all domains) is a pure function of the
//     event population, which by 1-3 is scheduling-independent.
//
// With a single domain Sharded degenerates to exactly the serial
// kernel: RunCtx delegates to the domain's own RunCtx, so a Shards=1
// run is the serial run, not a simulation of it.
type Sharded struct {
	domains   []*Kernel
	lookahead Time
	workers   int

	// outbox[d] holds mail posted by domain d during the current
	// epoch. Only domain d's worker appends to it, so no lock is
	// needed; the coordinator drains all outboxes between epochs.
	outbox [][]mail

	// horizon is the current epoch's exclusive event bound and the
	// conservative floor for cross-domain sends. Written by the
	// coordinator before each epoch starts (the worker wake-up
	// establishes the happens-before edge).
	horizon Time

	delivery []routed // reusable barrier merge buffer

	// Stats accumulates barrier-level counters; read them after RunCtx
	// returns.
	Stats ShardStats
}

// ShardStats counts coordinator work during a sharded run.
type ShardStats struct {
	// Epochs is the number of synchronization windows executed.
	Epochs uint64
	// Delivered is the number of cross-domain messages merged at
	// barriers.
	Delivered uint64
}

// mail is one cross-domain message awaiting barrier delivery.
type mail struct {
	to int
	at Time
	fn func()
}

// routed is mail tagged with its deterministic merge key.
type routed struct {
	m    mail
	from int
	idx  int
}

// NewSharded builds a coordinator with the given number of domain
// kernels. lookahead is the epoch width — it must be a lower bound on
// every cross-domain latency in the model (Send enforces this at run
// time) and must be positive when domains > 1. workers is the number
// of goroutines executing domains each epoch; <= 0 means one per
// domain, and values above the domain count are clamped. The worker
// count affects wall-clock speed only, never results.
func NewSharded(domains int, lookahead Time, workers int) *Sharded {
	if domains < 1 {
		panic(fmt.Sprintf("sim: NewSharded needs at least one domain, got %d", domains))
	}
	if domains > 1 && lookahead <= 0 {
		panic(fmt.Sprintf("sim: multi-domain sharding needs positive lookahead, got %v", lookahead))
	}
	if workers <= 0 || workers > domains {
		workers = domains
	}
	s := &Sharded{
		lookahead: lookahead,
		workers:   workers,
		domains:   make([]*Kernel, domains),
		outbox:    make([][]mail, domains),
	}
	for i := range s.domains {
		s.domains[i] = &Kernel{shard: s, domain: i}
	}
	return s
}

// Domain returns the kernel for domain i. Schedule each domain's
// stimulus on its own kernel; cross-domain interactions go through
// Kernel.Send.
func (s *Sharded) Domain(i int) *Kernel { return s.domains[i] }

// Domains returns the number of domains.
func (s *Sharded) Domains() int { return len(s.domains) }

// Now returns the latest domain clock (the fleet-wide time at
// quiescence, when all domains have drained).
func (s *Sharded) Now() Time {
	var t Time
	for _, k := range s.domains {
		if k.now > t {
			t = k.now
		}
	}
	return t
}

// Processed sums executed events across domains.
func (s *Sharded) Processed() uint64 {
	var n uint64
	for _, k := range s.domains {
		n += k.processed
	}
	return n
}

// Pending sums queued events across domains plus undelivered mail.
func (s *Sharded) Pending() int {
	n := 0
	for _, k := range s.domains {
		n += k.events.Len()
	}
	for _, ob := range s.outbox {
		n += len(ob)
	}
	return n
}

// SetHooks installs instrumentation. With one domain the hooks pass
// straight through to that kernel. With several domains only the
// value-typed knobs (MaxEvents as a per-domain budget, CheckEvery)
// broadcast; OnEvent and Periodic would run one closure from many
// goroutines, so multi-domain runs must install those per domain via
// Domain(i).SetHooks — passing them here panics.
func (s *Sharded) SetHooks(h Hooks) {
	if len(s.domains) == 1 {
		s.domains[0].SetHooks(h)
		return
	}
	if h.OnEvent != nil || len(h.Periodic) > 0 {
		panic("sim: OnEvent/Periodic hooks on a multi-domain Sharded must be installed per domain")
	}
	for _, k := range s.domains {
		k.hooks.MaxEvents = h.MaxEvents
		k.hooks.CheckEvery = h.CheckEvery
	}
}

// post queues a cross-domain send for barrier delivery (Kernel.Send).
func (s *Sharded) post(from, to int, t Time, fn func()) {
	if to < 0 || to >= len(s.domains) {
		panic(fmt.Sprintf("sim: Send to unknown domain %d (have %d)", to, len(s.domains)))
	}
	if t < s.horizon {
		panic(fmt.Sprintf(
			"sim: conservative send violated: domain %d sends to %d at %v inside epoch horizon %v (lookahead %v exceeds the model's cross-domain latency)",
			from, to, t, s.horizon, s.lookahead))
	}
	s.outbox[from] = append(s.outbox[from], mail{to: to, at: t, fn: fn})
}

// deliver merges all outbox mail into destination queues in
// (time, source domain, send order) order — see the determinism
// argument on Sharded.
func (s *Sharded) deliver() {
	total := 0
	for _, ob := range s.outbox {
		total += len(ob)
	}
	if total == 0 {
		return
	}
	d := s.delivery[:0]
	for from, ob := range s.outbox {
		for i, m := range ob {
			d = append(d, routed{m: m, from: from, idx: i})
		}
		s.outbox[from] = ob[:0]
	}
	sort.Slice(d, func(a, b int) bool {
		if d[a].m.at != d[b].m.at {
			return d[a].m.at < d[b].m.at
		}
		if d[a].from != d[b].from {
			return d[a].from < d[b].from
		}
		return d[a].idx < d[b].idx
	})
	for _, r := range d {
		s.domains[r.m.to].At(r.m.at, r.m.fn)
	}
	s.Stats.Delivered += uint64(total)
	s.delivery = d[:0]
}

// nextAt returns the earliest pending event time across all domains,
// or (0, false) when every queue is empty.
func (s *Sharded) nextAt() (Time, bool) {
	var min Time
	found := false
	for _, k := range s.domains {
		if k.events.Len() == 0 {
			continue
		}
		if at := k.events.minAt(); !found || at < min {
			min, found = at, true
		}
	}
	return min, found
}

// RunCtx executes all domains to quiescence (or cancellation) under
// epoch-barrier synchronization. See Runner for the contract and the
// Sharded doc for the determinism argument.
func (s *Sharded) RunCtx(ctx context.Context) error {
	if ctx == nil {
		ctx = context.Background()
	}
	if len(s.domains) == 1 {
		// Degenerate case: one domain IS the serial kernel. Delegating
		// runs the identical code path, so Shards=1 results are the
		// serial results by construction, not by equivalence proof.
		return s.domains[0].RunCtx(ctx)
	}
	if err := ctx.Err(); err != nil {
		return err
	}

	checkEvery := make([]uint64, len(s.domains))
	for i, k := range s.domains {
		checkEvery[i] = k.hooks.CheckEvery
		if checkEvery[i] == 0 {
			checkEvery[i] = defaultCheckEvery
		}
	}

	nd := len(s.domains)
	w := s.workers
	errs := make([]error, nd)
	var (
		wg    sync.WaitGroup
		start []chan Time
	)
	if w > 1 {
		// Persistent workers: worker i owns domains i, i+w, i+2w, ...
		// for the whole run, woken once per epoch with the horizon.
		// The channel send publishes the coordinator's barrier work
		// (mail pushes, horizon) to the worker; wg.Wait publishes the
		// worker's epoch back to the coordinator.
		start = make([]chan Time, w-1)
		for i := range start {
			ch := make(chan Time, 1)
			start[i] = ch
			go func(worker int) {
				for h := range ch {
					for d := worker; d < nd; d += w {
						if errs[d] == nil {
							errs[d] = s.domains[d].runEpoch(ctx, h, checkEvery[d])
						}
					}
					wg.Done()
				}
			}(i + 1)
		}
		defer func() {
			for _, ch := range start {
				close(ch)
			}
		}()
	}

	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		// Mail first: barrier N delivers epoch N-1's sends, and the
		// delivered mail may contain the globally earliest event.
		s.deliver()
		t0, ok := s.nextAt()
		if !ok {
			return nil
		}
		h := t0 + s.lookahead
		if h <= t0 { // overflow guard
			if t0 == math.MaxInt64 {
				panic("sim: event at Time MaxInt64 cannot be sharded")
			}
			h = math.MaxInt64
		}
		s.horizon = h
		s.Stats.Epochs++

		if w == 1 {
			for d := 0; d < nd; d++ {
				if err := s.domains[d].runEpoch(ctx, h, checkEvery[d]); err != nil {
					return err
				}
			}
			continue
		}
		wg.Add(w - 1)
		for _, ch := range start {
			ch <- h
		}
		for d := 0; d < nd; d += w {
			if errs[d] == nil {
				errs[d] = s.domains[d].runEpoch(ctx, h, checkEvery[d])
			}
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return err
			}
		}
	}
}

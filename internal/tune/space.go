// Package tune is the closed-loop autotuner: a deterministic,
// parallel design-space searcher over the simulated server's
// architectural knobs (chiplet organization, PE provisioning per
// accelerator kind, orchestration policy, queue depths, TCP timeout)
// against a pluggable objective evaluated by short simulation runs.
//
// The registry answers "what does config X do"; a search answers
// "which config survives this traffic". Every candidate evaluation is
// one checked workload.RunSpec run whose RNG stream derives from
// (Params.Seed, candidate key) via sim.DeriveSeed, and each
// generation's batch fans out through experiments.RunCells — the same
// worker pool the sweeps use — so a search is bit-reproducible at any
// parallelism, and a revisited candidate is served from the cell
// cache instead of re-simulating. All mutable search state lives in a
// serializable SearchState, making an interrupted search resumable
// with a byte-identical trajectory.
package tune

import (
	"fmt"
	"strings"

	"accelflow/internal/config"
	"accelflow/internal/engine"
	"accelflow/internal/sim"
)

// SpaceSpec declares a search space on the wire: each non-empty field
// contributes one bounded dimension, in the field order below. It is
// plain data so the accelsimd job API and the accelsim CLI can both
// express a space, and so a space is part of a search's canonical
// signature. The search starts at the FIRST level of every dimension,
// so put the baseline value first.
type SpaceSpec struct {
	// Chiplets lists chiplet-organization plans (config.ChipletPlan
	// values: 1, 2, 3, 4, or 6).
	Chiplets []int `json:"chiplets,omitempty"`
	// PEs lists uniform PEs-per-accelerator levels (Config.PEsPerAccel).
	PEs []int `json:"pes,omitempty"`
	// PEMix adds one dimension per named accelerator kind (e.g. "TCP",
	// "Ser"), overriding that kind's PE pool (Config.PEMix) over the
	// listed levels.
	PEMix map[string][]int `json:"peMix,omitempty"`
	// Policies lists orchestration policies by name: "accelflow",
	// "relief", "cohort", "cpucentric", "nonacc".
	Policies []string `json:"policies,omitempty"`
	// QueueDepths lists input/output queue entry counts (both set
	// together).
	QueueDepths []int `json:"queueDepths,omitempty"`
	// TCPTimeoutUs lists armed response-trace timeouts in microseconds.
	TCPTimeoutUs []float64 `json:"tcpTimeoutUs,omitempty"`
}

// policyByName maps the wire policy names onto engine policies.
var policyByName = map[string]func() engine.Policy{
	"accelflow":  engine.AccelFlow,
	"relief":     engine.RELIEF,
	"cohort":     func() engine.Policy { return engine.Cohort(engine.DefaultCohortPairs()) },
	"cpucentric": engine.CPUCentric,
	"nonacc":     engine.NonAcc,
}

// kindByName resolves an accelerator-kind name ("TCP", "Encr", ...).
func kindByName(name string) (config.AccelKind, bool) {
	for _, k := range config.AllAccelKinds() {
		if k.String() == name {
			return k, true
		}
	}
	return 0, false
}

var validChipletPlans = map[int]bool{1: true, 2: true, 3: true, 4: true, 6: true}

// Dim is one bounded search dimension: an ordered list of levels plus
// the mutation each level applies to a candidate configuration. Level
// labels are part of the candidate key, so they must be stable.
type Dim struct {
	Name   string
	Levels []string
	apply  func(c *config.Config, p *engine.Policy, idx int) error
}

// Space is a built search space: the ordered dimension list. A
// candidate is one index per dimension; validity is decided by
// materializing it and running config.Validate.
type Space struct {
	Dims []Dim
}

// Build validates the spec and constructs the Space. At least one
// dimension must be present; searches that exercise the acceptance
// criteria use three or more.
func (s SpaceSpec) Build() (*Space, error) {
	sp := &Space{}
	if len(s.Chiplets) > 0 {
		levels := make([]string, len(s.Chiplets))
		plans := append([]int(nil), s.Chiplets...)
		for i, n := range plans {
			if !validChipletPlans[n] {
				return nil, fmt.Errorf("tune: unknown chiplet plan %d (want 1, 2, 3, 4, or 6)", n)
			}
			levels[i] = fmt.Sprintf("%d", n)
		}
		sp.Dims = append(sp.Dims, Dim{Name: "chiplets", Levels: levels,
			apply: func(c *config.Config, _ *engine.Policy, idx int) error {
				return c.ApplyChipletPlan(config.ChipletPlan(plans[idx]))
			}})
	}
	if len(s.PEs) > 0 {
		levels := make([]string, len(s.PEs))
		counts := append([]int(nil), s.PEs...)
		for i, n := range counts {
			if n <= 0 {
				return nil, fmt.Errorf("tune: pes level must be positive, got %d", n)
			}
			levels[i] = fmt.Sprintf("%d", n)
		}
		sp.Dims = append(sp.Dims, Dim{Name: "pes", Levels: levels,
			apply: func(c *config.Config, _ *engine.Policy, idx int) error {
				c.PEsPerAccel = counts[idx]
				return nil
			}})
	}
	// PEMix dimensions in accelerator-encoding order so the dimension
	// order (and therefore every candidate key) is independent of map
	// iteration order.
	for _, kind := range config.AllAccelKinds() {
		counts, ok := s.PEMix[kind.String()]
		if !ok {
			continue
		}
		kind := kind
		levels := make([]string, len(counts))
		own := append([]int(nil), counts...)
		for i, n := range own {
			if n <= 0 {
				return nil, fmt.Errorf("tune: peMix[%s] level must be positive, got %d", kind, n)
			}
			levels[i] = fmt.Sprintf("%d", n)
		}
		sp.Dims = append(sp.Dims, Dim{Name: "pe/" + kind.String(), Levels: levels,
			apply: func(c *config.Config, _ *engine.Policy, idx int) error {
				c.PEMix[kind] = own[idx]
				return nil
			}})
	}
	for name := range s.PEMix {
		if _, ok := kindByName(name); !ok {
			return nil, fmt.Errorf("tune: unknown accelerator kind %q in peMix", name)
		}
	}
	if len(s.Policies) > 0 {
		names := append([]string(nil), s.Policies...)
		for _, n := range names {
			if policyByName[n] == nil {
				return nil, fmt.Errorf("tune: unknown policy %q (want accelflow, relief, cohort, cpucentric, or nonacc)", n)
			}
		}
		sp.Dims = append(sp.Dims, Dim{Name: "policy", Levels: names,
			apply: func(_ *config.Config, p *engine.Policy, idx int) error {
				*p = policyByName[names[idx]]()
				return nil
			}})
	}
	if len(s.QueueDepths) > 0 {
		levels := make([]string, len(s.QueueDepths))
		depths := append([]int(nil), s.QueueDepths...)
		for i, n := range depths {
			if n <= 0 {
				return nil, fmt.Errorf("tune: queue depth must be positive, got %d", n)
			}
			levels[i] = fmt.Sprintf("%d", n)
		}
		sp.Dims = append(sp.Dims, Dim{Name: "queue", Levels: levels,
			apply: func(c *config.Config, _ *engine.Policy, idx int) error {
				c.InputQueueEntries = depths[idx]
				c.OutputQueueEntries = depths[idx]
				return nil
			}})
	}
	if len(s.TCPTimeoutUs) > 0 {
		levels := make([]string, len(s.TCPTimeoutUs))
		us := append([]float64(nil), s.TCPTimeoutUs...)
		for i, v := range us {
			if v <= 0 {
				return nil, fmt.Errorf("tune: tcp timeout must be positive, got %vus", v)
			}
			levels[i] = fmt.Sprintf("%gus", v)
		}
		sp.Dims = append(sp.Dims, Dim{Name: "tcptimeout", Levels: levels,
			apply: func(c *config.Config, _ *engine.Policy, idx int) error {
				c.TCPTimeout = sim.FromMicros(us[idx])
				return nil
			}})
	}
	if len(sp.Dims) == 0 {
		return nil, fmt.Errorf("tune: search space has no dimensions")
	}
	return sp, nil
}

// DefaultSpace is the daemon's and CLI's default search space: three
// dimensions whose first levels are the paper's base design (two
// chiplets, 8 PEs per accelerator, the AccelFlow policy), so a default
// search starts at the baseline and explores outward.
func DefaultSpace() SpaceSpec {
	return SpaceSpec{
		Chiplets: []int{2, 1, 4},
		PEs:      []int{8, 4, 12},
		Policies: []string{"accelflow", "relief", "cohort"},
	}
}

// Start is the search's deterministic starting candidate: the first
// level of every dimension.
func (s *Space) Start() []int { return make([]int, len(s.Dims)) }

// Size is the candidate count (the product of the level counts).
func (s *Space) Size() int {
	n := 1
	for _, d := range s.Dims {
		n *= len(d.Levels)
	}
	return n
}

// Key renders a candidate's canonical identity: "name=label" pairs in
// dimension order. The key names the candidate's RNG stream (via
// sim.DeriveSeed) and its cell-cache slot, so it must be a pure
// function of the candidate.
func (s *Space) Key(cand []int) string {
	var b strings.Builder
	for i, d := range s.Dims {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(d.Name)
		b.WriteByte('=')
		b.WriteString(d.Levels[cand[i]])
	}
	return b.String()
}

// Levels maps a candidate to its dimension-name -> level-label view
// (for reports; Key is the canonical form).
func (s *Space) Levels(cand []int) map[string]string {
	out := make(map[string]string, len(s.Dims))
	for i, d := range s.Dims {
		out[d.Name] = d.Levels[cand[i]]
	}
	return out
}

// Materialize builds the candidate's simulated-server configuration
// and policy, applying each dimension to a fresh default config and
// validating the result. An error marks the candidate invalid (a
// searcher skips it); validity reuses config.Validate, so the searcher
// can never evaluate a configuration the simulator would reject.
func (s *Space) Materialize(cand []int) (*config.Config, engine.Policy, error) {
	if len(cand) != len(s.Dims) {
		return nil, engine.Policy{}, fmt.Errorf("tune: candidate has %d indices, space has %d dims", len(cand), len(s.Dims))
	}
	cfg := config.Default()
	pol := engine.AccelFlow()
	for i, d := range s.Dims {
		if cand[i] < 0 || cand[i] >= len(d.Levels) {
			return nil, engine.Policy{}, fmt.Errorf("tune: %s index %d out of range [0,%d)", d.Name, cand[i], len(d.Levels))
		}
		if err := d.apply(cfg, &pol, cand[i]); err != nil {
			return nil, engine.Policy{}, err
		}
	}
	if err := cfg.Validate(); err != nil {
		return nil, engine.Policy{}, err
	}
	return cfg, pol, nil
}

// Neighbors returns the candidates within the given step radius of c:
// for each dimension in order, steps -1, +1, -2, +2, ... up to radius,
// one dimension changed at a time, deduplicated, in a deterministic
// order. Invalid candidates (Materialize errors) are filtered by the
// caller, which also decides whether c itself is included.
func (s *Space) Neighbors(c []int, radius int) [][]int {
	if radius < 1 {
		radius = 1
	}
	var out [][]int
	seen := map[string]bool{s.Key(c): true}
	for i := range s.Dims {
		for step := 1; step <= radius; step++ {
			for _, delta := range []int{-step, +step} {
				idx := c[i] + delta
				if idx < 0 || idx >= len(s.Dims[i].Levels) {
					continue
				}
				n := append([]int(nil), c...)
				n[i] = idx
				k := s.Key(n)
				if seen[k] {
					continue
				}
				seen[k] = true
				out = append(out, n)
			}
		}
	}
	return out
}

// Signature is the space's canonical text form, folded into the search
// signature that guards SearchState resume against a different search.
func (s *Space) Signature() string {
	var b strings.Builder
	for _, d := range s.Dims {
		b.WriteString(d.Name)
		b.WriteByte(':')
		b.WriteString(strings.Join(d.Levels, "|"))
		b.WriteByte(';')
	}
	return b.String()
}

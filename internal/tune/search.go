package tune

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"accelflow/internal/check"
	"accelflow/internal/energy"
	"accelflow/internal/experiments"
	"accelflow/internal/services"
	"accelflow/internal/sim"
	"accelflow/internal/workload"
)

// Params fully determines a search. Every field above the
// execution-only block is folded into Signature(), so two Params with
// equal signatures provably walk the same trajectory; the
// execution-only knobs change wall clock, never results (the same
// contract experiments.Options documents for Parallelism, Check, and
// Shards).
type Params struct {
	// Strategy picks the searcher: "hill" (batch-neighbor hill
	// climbing, the default) or "anneal" (simulated annealing).
	Strategy string `json:"strategy"`
	// Objective picks the score: "p99" (the default), "energy", or
	// "costperf" (see scoreObjective).
	Objective string `json:"objective"`
	// Space declares the dimensions searched over.
	Space SpaceSpec `json:"space"`
	// Seed roots every RNG stream: candidate evaluations derive theirs
	// from (Seed, candidate key), the annealer from (Seed, generation).
	Seed int64 `json:"seed"`
	// Requests is the per-evaluation request budget (<=0: 600). Quick
	// caps it at 200 and trims the service mix, like experiments.Quick.
	Requests int `json:"requests"`
	// LoadScale scales the service mix arrival rates (<=0: 1.0).
	LoadScale float64 `json:"loadScale"`
	// SLOUs is the p99 objective's latency target in microseconds
	// (<=0: 1500).
	SLOUs float64 `json:"sloUs"`
	// MaxGenerations bounds proposal generations (<=0: 30).
	MaxGenerations int `json:"maxGenerations"`
	// Patience stops the search after this many consecutive
	// generations without a best-score improvement (<=0: 3).
	Patience int `json:"patience"`
	// Proposals is the annealer's per-generation batch size (<=0: 6).
	Proposals int `json:"proposals"`
	// Quick shrinks evaluations for tests and CI.
	Quick bool `json:"quick"`

	// Execution-only knobs: excluded from Signature() because they
	// never change search results, only how they are computed.
	Parallelism int  `json:"-"`
	Shards      int  `json:"-"`
	Check       bool `json:"-"`
}

// Strategy and default constants.
const (
	StrategyHill   = "hill"
	StrategyAnneal = "anneal"

	defaultRequests    = 600
	quickRequestCap    = 200
	defaultLoadScale   = 1.0
	defaultSLOUs       = 1500.0
	defaultGenerations = 30
	defaultPatience    = 3
	defaultProposals   = 6

	annealT0    = 0.2
	annealDecay = 0.9
)

// withDefaults resolves zero values so Signature and Run agree on the
// effective parameters.
func (p Params) withDefaults() Params {
	if p.Strategy == "" {
		p.Strategy = StrategyHill
	}
	if p.Objective == "" {
		p.Objective = "p99"
	}
	if p.Requests <= 0 {
		p.Requests = defaultRequests
	}
	if p.Quick && p.Requests > quickRequestCap {
		p.Requests = quickRequestCap
	}
	if p.LoadScale <= 0 {
		p.LoadScale = defaultLoadScale
	}
	if p.SLOUs <= 0 {
		p.SLOUs = defaultSLOUs
	}
	if p.MaxGenerations <= 0 {
		p.MaxGenerations = defaultGenerations
	}
	if p.Patience <= 0 {
		p.Patience = defaultPatience
	}
	if p.Proposals <= 0 {
		p.Proposals = defaultProposals
	}
	return p
}

// Validate checks the parameters without running anything: strategy
// and objective names, and the space spec (via Build).
func (p Params) Validate() error {
	p = p.withDefaults()
	if p.Strategy != StrategyHill && p.Strategy != StrategyAnneal {
		return fmt.Errorf("tune: unknown strategy %q (want %s or %s)", p.Strategy, StrategyHill, StrategyAnneal)
	}
	if !validObjective(p.Objective) {
		return fmt.Errorf("tune: unknown objective %q (want p99, energy, or costperf)", p.Objective)
	}
	_, err := p.Space.Build()
	return err
}

// Signature hashes the result-determining parameters. It guards
// SearchState resume and names the serve layer's result-cache slot, so
// it must cover exactly the fields that can change the trajectory:
// defaulted search parameters plus the built space's canonical form
// (built, not the raw spec, so map ordering in PEMix cannot matter).
func (p Params) Signature() (string, error) {
	p = p.withDefaults()
	if err := p.Validate(); err != nil {
		return "", err
	}
	sp, err := p.Space.Build()
	if err != nil {
		return "", err
	}
	id := struct {
		Strategy       string  `json:"strategy"`
		Objective      string  `json:"objective"`
		Space          string  `json:"space"`
		Seed           int64   `json:"seed"`
		Requests       int     `json:"requests"`
		LoadScale      float64 `json:"loadScale"`
		SLOUs          float64 `json:"sloUs"`
		MaxGenerations int     `json:"maxGenerations"`
		Patience       int     `json:"patience"`
		Proposals      int     `json:"proposals"`
		Quick          bool    `json:"quick"`
	}{p.Strategy, p.Objective, sp.Signature(), p.Seed, p.Requests, p.LoadScale,
		p.SLOUs, p.MaxGenerations, p.Patience, p.Proposals, p.Quick}
	b, err := json.Marshal(id)
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), nil
}

// Progress reports one completed generation to Hooks.OnGeneration; the
// CLI and the serve layer render it as one NDJSON line.
type Progress struct {
	Gen       int     `json:"gen"`
	Evaluated int     `json:"evaluated"` // candidates requested this generation
	Cached    int     `json:"cached"`    // of those, served from the cell cache
	Moved     bool    `json:"moved"`
	CurKey    string  `json:"curKey"`
	CurScore  float64 `json:"curScore"`
	BestKey   string  `json:"bestKey"`
	BestScore float64 `json:"bestScore"`
	Stagnant  int     `json:"stagnant"`
	// Radius (hill) and Temp (anneal) expose the strategy's own dial.
	Radius int     `json:"radius,omitempty"`
	Temp   float64 `json:"temp,omitempty"`

	Frontier    []FrontierEntry `json:"frontier"`
	TotalEvals  int             `json:"totalEvals"`
	TotalCached int             `json:"totalCached"`
}

// Hooks are Run's observation and caching points. All are optional.
type Hooks struct {
	// OnGeneration fires after each generation with the progress record
	// and the freshly serialized SearchState (the resume snapshot).
	// Called from the driver goroutine, in generation order.
	OnGeneration func(pr Progress, state []byte)
	// OnEval forwards every sweep-cell event (concurrent; see
	// experiments.Options.OnCell for the contract).
	OnEval func(ev experiments.CellEvent)
	// Cache memoizes candidate evaluations across generations and — when
	// provided by the serve layer — across searches. Keys are candidate
	// keys, so the caller must namespace the cache by Params.Signature()
	// (the serve layer's cellCache prefix does exactly this). Nil gets a
	// run-private cache: revisits within one search still hit.
	Cache experiments.CellCache
}

// Result is a finished search.
type Result struct {
	BestKey    string            `json:"bestKey"`
	BestScore  float64           `json:"bestScore"`
	BestEval   Eval              `json:"bestEval"`
	BestConfig map[string]string `json:"bestConfig"`
	Objective  string            `json:"objective"`
	Strategy   string            `json:"strategy"`

	Generations int  `json:"generations"`
	Evals       int  `json:"evals"`
	CacheHits   int  `json:"cacheHits"` // environment-dependent: excluded from determinism comparisons
	Converged   bool `json:"converged"`

	// State is the final SearchState snapshot; resumed and
	// uninterrupted searches produce identical bytes here.
	State json.RawMessage `json:"state"`
}

// memoCache is the run-private Hooks.Cache default.
type memoCache struct {
	mu sync.Mutex
	m  map[string]any
}

func (c *memoCache) GetCell(key string) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	v, ok := c.m[key]
	return v, ok
}

func (c *memoCache) PutCell(key string, v any) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.m[key] = v
}

// Run executes (or, when st is non-nil, resumes) the search to
// completion and returns the result. st must come from LoadState with
// the same Params; passing nil starts fresh. Determinism contract:
// the full trajectory — every candidate visited, every score, the
// final SearchState bytes — is a pure function of Params, regardless
// of Parallelism, Shards, Check, cache warmth, or where a resumed
// snapshot was taken. Only Result.CacheHits may differ.
func Run(ctx context.Context, p Params, st *SearchState, h Hooks) (*Result, error) {
	p = p.withDefaults()
	if err := p.Validate(); err != nil {
		return nil, err
	}
	sp, err := p.Space.Build()
	if err != nil {
		return nil, err
	}
	sig, err := p.Signature()
	if err != nil {
		return nil, err
	}
	if st == nil {
		start := sp.Start()
		st = &SearchState{
			Version:  stateVersion,
			Sig:      sig,
			Strategy: p.Strategy,
			Radius:   1,
			Cur:      start,
			CurKey:   sp.Key(start),
		}
	} else if st.Sig != sig {
		return nil, fmt.Errorf("tune: search state signature mismatch (LoadState with the same Params first)")
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if h.Cache == nil {
		h.Cache = &memoCache{m: map[string]any{}}
	}

	// The service mix evaluated against: the paper's SocialNetwork
	// catalog, trimmed under Quick exactly like experiments does.
	svcs := services.SocialNetwork()
	if p.Quick && len(svcs) > 3 {
		svcs = svcs[:3]
	}

	var totalCached atomic.Int64
	var cacheHits int // driver-goroutine view, summed per generation

	evaluate := func(batch [][]int) ([]Eval, int, error) {
		cells := make([]experiments.Cell[Eval], len(batch))
		for i, cand := range batch {
			cand := cand
			cells[i] = experiments.Cell[Eval]{
				Key: sp.Key(cand),
				Run: func(seed int64) (Eval, error) {
					cfg, pol, err := sp.Materialize(cand)
					if err != nil {
						return Eval{}, err
					}
					spec := &workload.RunSpec{
						Config:  cfg,
						Policy:  pol,
						Sources: workload.Mix(svcs, p.LoadScale, p.Requests),
						Seed:    seed,
						Shards:  p.Shards,
					}
					if p.Check {
						spec.Check = check.New()
					}
					res, err := spec.RunCtx(ctx)
					if err != nil {
						return Eval{}, err
					}
					rep := energy.Integrate(energy.DefaultPower(), res.Engine, res.Elapsed)
					ev := measure(res, rep)
					ev.Score, err = scoreObjective(p.Objective, cfg, res, ev, p.SLOUs)
					if err != nil {
						return Eval{}, err
					}
					return ev, nil
				},
			}
		}
		genCached := int64(0)
		evals, err := experiments.RunCells(experiments.Options{
			Seed:        p.Seed,
			Parallelism: p.Parallelism,
			Ctx:         ctx,
			Cache:       h.Cache,
			OnCell: func(ev experiments.CellEvent) {
				if ev.Cached {
					atomic.AddInt64(&genCached, 1)
					totalCached.Add(1)
				}
				if h.OnEval != nil {
					h.OnEval(ev)
				}
			},
		}, cells)
		return evals, int(genCached), err
	}

	// validBatch drops candidates the space rejects and deduplicates by
	// key (keeping first occurrence), so a batch never evaluates the
	// same cell twice — cached counts stay parallelism-independent.
	validBatch := func(cands [][]int, excludeKey string) [][]int {
		seen := map[string]bool{}
		var out [][]int
		for _, c := range cands {
			k := sp.Key(c)
			if k == excludeKey || seen[k] {
				continue
			}
			if _, _, err := sp.Materialize(c); err != nil {
				continue
			}
			seen[k] = true
			out = append(out, c)
		}
		return out
	}

	for !st.Done {
		if err := ctx.Err(); err != nil {
			return nil, err
		}

		var batch [][]int
		temp := 0.0
		if st.Gen == 0 {
			// Generation 0 scores the deterministic starting candidate
			// (the first level of every dimension) to seed Cur and Best.
			batch = validBatch([][]int{st.Cur}, "")
			if len(batch) == 0 {
				return nil, fmt.Errorf("tune: starting candidate %q is invalid", st.CurKey)
			}
		} else {
			switch p.Strategy {
			case StrategyHill:
				batch = validBatch(sp.Neighbors(st.Cur, st.Radius), st.CurKey)
			case StrategyAnneal:
				temp = annealT0 * math.Pow(annealDecay, float64(st.Gen-1))
				rng := sim.NewRNG(sim.DeriveSeed(p.Seed, fmt.Sprintf("tune/anneal/%d", st.Gen)))
				var props [][]int
				for i := 0; i < p.Proposals; i++ {
					n := append([]int(nil), st.Cur...)
					d := rng.Intn(len(sp.Dims))
					n[d] = rng.Intn(len(sp.Dims[d].Levels))
					props = append(props, n)
				}
				batch = validBatch(props, st.CurKey)
			}
		}

		evals, genCached, err := evaluate(batch)
		if err != nil {
			return nil, err
		}
		st.Evals += len(batch)
		cacheHits += genCached

		// Fold the batch into Best/frontier, then apply the strategy's
		// move rule. Ties break by candidate key so the outcome is
		// independent of evaluation order.
		improved := false
		bestIdx := -1
		for i := range batch {
			key := sp.Key(batch[i])
			if st.observe(batch[i], key, evals[i]) {
				improved = true
			}
			if bestIdx < 0 || evals[i].Score < evals[bestIdx].Score ||
				(evals[i].Score == evals[bestIdx].Score && key < sp.Key(batch[bestIdx])) {
				bestIdx = i
			}
		}

		moved := false
		switch {
		case st.Gen == 0:
			st.CurScore = evals[0].Score
		case bestIdx < 0:
			// Nothing valid to evaluate this generation.
		case p.Strategy == StrategyHill:
			if evals[bestIdx].Score < st.CurScore {
				st.Cur = append([]int(nil), batch[bestIdx]...)
				st.CurKey = sp.Key(st.Cur)
				st.CurScore = evals[bestIdx].Score
				st.Radius = 1
				moved = true
			} else {
				// Stuck: widen the neighborhood (bounded by the widest
				// dimension, beyond which it cannot add candidates).
				maxLevels := 0
				for _, d := range sp.Dims {
					if len(d.Levels) > maxLevels {
						maxLevels = len(d.Levels)
					}
				}
				if st.Radius < maxLevels {
					st.Radius++
				}
			}
		case p.Strategy == StrategyAnneal:
			delta := evals[bestIdx].Score - st.CurScore
			accept := delta < 0
			if !accept && temp > 0 {
				scale := math.Abs(st.CurScore)
				if scale < 1 {
					scale = 1
				}
				arng := sim.NewRNG(sim.DeriveSeed(p.Seed, fmt.Sprintf("tune/accept/%d", st.Gen)))
				accept = arng.Float64() < math.Exp(-(delta/scale)/temp)
			}
			if accept {
				st.Cur = append([]int(nil), batch[bestIdx]...)
				st.CurKey = sp.Key(st.Cur)
				st.CurScore = evals[bestIdx].Score
				moved = true
			}
		}

		if st.Gen == 0 || improved {
			st.Stagnant = 0
		} else {
			st.Stagnant++
		}
		st.Trajectory = append(st.Trajectory, GenRecord{
			Gen: st.Gen, Evaluated: len(batch), CurScore: st.CurScore,
			BestScore: st.BestScore, Moved: moved,
		})
		st.Gen++
		if st.Stagnant >= p.Patience {
			st.Done, st.Converged = true, true
		} else if st.Gen > p.MaxGenerations {
			st.Done = true
		}

		if h.OnGeneration != nil {
			snap, err := st.Marshal()
			if err != nil {
				return nil, err
			}
			pr := Progress{
				Gen: st.Gen - 1, Evaluated: len(batch), Cached: genCached,
				Moved: moved, CurKey: st.CurKey, CurScore: st.CurScore,
				BestKey: st.BestKey, BestScore: st.BestScore,
				Stagnant: st.Stagnant, Temp: temp,
				Frontier:   append([]FrontierEntry(nil), st.Frontier...),
				TotalEvals: st.Evals, TotalCached: int(totalCached.Load()),
			}
			if p.Strategy == StrategyHill {
				pr.Radius = st.Radius
			}
			h.OnGeneration(pr, snap)
		}
	}

	finalState, err := st.Marshal()
	if err != nil {
		return nil, err
	}
	return &Result{
		BestKey:     st.BestKey,
		BestScore:   st.BestScore,
		BestEval:    st.BestEval,
		BestConfig:  sp.Levels(st.Best),
		Objective:   p.Objective,
		Strategy:    p.Strategy,
		Generations: st.Gen,
		Evals:       st.Evals,
		CacheHits:   cacheHits,
		Converged:   st.Converged,
		State:       finalState,
	}, nil
}

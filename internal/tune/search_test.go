package tune

import (
	"bytes"
	"context"
	"encoding/json"
	"sync/atomic"
	"testing"

	"accelflow/internal/experiments"
)

// quickParams is the suite's shared small-but-real search: three
// dimensions, tiny request budget, bounded generations.
func quickParams() Params {
	return Params{
		Objective: "p99",
		Space: SpaceSpec{
			Chiplets: []int{2, 1},
			PEs:      []int{8, 4},
			Policies: []string{"accelflow", "relief"},
		},
		Seed:           7,
		Requests:       60,
		Quick:          true,
		MaxGenerations: 3,
		Patience:       3,
	}
}

func runSearch(t *testing.T, p Params, st *SearchState, h Hooks) *Result {
	t.Helper()
	res, err := Run(context.Background(), p, st, h)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return res
}

func TestSearchDeterministicAcrossParallelism(t *testing.T) {
	p := quickParams()
	p.Parallelism = 1
	serial := runSearch(t, p, nil, Hooks{})
	p.Parallelism = 8
	parallel := runSearch(t, p, nil, Hooks{})
	if !bytes.Equal(serial.State, parallel.State) {
		t.Errorf("final SearchState differs between parallelism 1 and 8:\n%s\nvs\n%s", serial.State, parallel.State)
	}
	if serial.BestKey != parallel.BestKey || serial.BestScore != parallel.BestScore {
		t.Errorf("best differs: %q %.4f vs %q %.4f",
			serial.BestKey, serial.BestScore, parallel.BestKey, parallel.BestScore)
	}
	if serial.Evals != parallel.Evals {
		t.Errorf("evals differ: %d vs %d", serial.Evals, parallel.Evals)
	}
}

func TestAnnealDeterministicAcrossParallelism(t *testing.T) {
	p := quickParams()
	p.Strategy = StrategyAnneal
	p.Proposals = 4
	p.Parallelism = 1
	serial := runSearch(t, p, nil, Hooks{})
	p.Parallelism = 8
	parallel := runSearch(t, p, nil, Hooks{})
	if !bytes.Equal(serial.State, parallel.State) {
		t.Errorf("anneal SearchState differs between parallelism 1 and 8:\n%s\nvs\n%s", serial.State, parallel.State)
	}
}

func TestSearchResumeMatchesUninterrupted(t *testing.T) {
	for _, strategy := range []string{StrategyHill, StrategyAnneal} {
		t.Run(strategy, func(t *testing.T) {
			p := quickParams()
			p.Strategy = strategy

			// Uninterrupted run, capturing the per-generation snapshots an
			// interrupted process would have left behind.
			var snaps [][]byte
			full := runSearch(t, p, nil, Hooks{
				OnGeneration: func(_ Progress, state []byte) {
					snaps = append(snaps, append([]byte(nil), state...))
				},
			})
			if len(snaps) < 2 {
				t.Fatalf("search finished in %d generations; need >= 2 to test resume", len(snaps))
			}

			// "Kill" after generation 1 and resume from its snapshot in a
			// fresh context (cold cache, like a new process).
			st, err := LoadState(snaps[1], p)
			if err != nil {
				t.Fatalf("LoadState: %v", err)
			}
			resumed := runSearch(t, p, st, Hooks{})
			if !bytes.Equal(full.State, resumed.State) {
				t.Errorf("resumed final state differs from uninterrupted:\n%s\nvs\n%s", full.State, resumed.State)
			}
			if full.BestKey != resumed.BestKey || full.BestScore != resumed.BestScore {
				t.Errorf("resumed best %q %.4f, uninterrupted %q %.4f",
					resumed.BestKey, resumed.BestScore, full.BestKey, full.BestScore)
			}
		})
	}
}

func TestRevisitedCandidateServedFromCache(t *testing.T) {
	// Whatever generation 1 decides, generation 2's batch re-requests an
	// already-evaluated candidate: after a move, the old current point is
	// a neighbor of the new one; without a move, the widened radius-2
	// neighborhood still contains every radius-1 neighbor.
	p := quickParams()
	var cached atomic.Int64
	res := runSearch(t, p, nil, Hooks{
		OnEval: func(ev experiments.CellEvent) {
			if ev.Cached {
				cached.Add(1)
			}
		},
	})
	if cached.Load() < 1 {
		t.Errorf("no candidate evaluation was served from the cell cache")
	}
	if res.CacheHits != int(cached.Load()) {
		t.Errorf("Result.CacheHits = %d, observed %d cached cell events", res.CacheHits, cached.Load())
	}
}

func TestSearchConvergesAndImproves(t *testing.T) {
	p := quickParams()
	p.MaxGenerations = 10
	p.Patience = 2
	res := runSearch(t, p, nil, Hooks{})
	if !res.Converged {
		t.Errorf("search hit the generation cap instead of converging (generations=%d)", res.Generations)
	}

	var st SearchState
	if err := json.Unmarshal(res.State, &st); err != nil {
		t.Fatalf("unmarshal final state: %v", err)
	}
	if len(st.Trajectory) != res.Generations {
		t.Fatalf("trajectory has %d records, generations %d", len(st.Trajectory), res.Generations)
	}
	// Best-so-far is monotone non-increasing along the trajectory and
	// never worse than the starting candidate's score.
	for i := 1; i < len(st.Trajectory); i++ {
		if st.Trajectory[i].BestScore > st.Trajectory[i-1].BestScore {
			t.Errorf("bestScore rose at generation %d: %.4f -> %.4f",
				i, st.Trajectory[i-1].BestScore, st.Trajectory[i].BestScore)
		}
	}
	if start := st.Trajectory[0].CurScore; res.BestScore > start {
		t.Errorf("final best %.4f is worse than the starting candidate %.4f", res.BestScore, start)
	}
	// The winning config must be a complete, valid point of the space.
	if len(res.BestConfig) != 3 {
		t.Errorf("BestConfig has %d dims, want 3: %v", len(res.BestConfig), res.BestConfig)
	}

	// Same params, fresh run: the fixed best config is reproducible.
	again := runSearch(t, p, nil, Hooks{})
	if again.BestKey != res.BestKey {
		t.Errorf("best config not stable across runs: %q vs %q", again.BestKey, res.BestKey)
	}
}

func TestLoadStateRejectsMismatchedSearch(t *testing.T) {
	p := quickParams()
	p.MaxGenerations = 1
	res := runSearch(t, p, nil, Hooks{})

	if _, err := LoadState(res.State, p); err != nil {
		t.Fatalf("LoadState with matching params: %v", err)
	}
	other := p
	other.Seed++
	if _, err := LoadState(res.State, other); err == nil {
		t.Errorf("LoadState accepted a snapshot from a different seed")
	}
	var raw map[string]any
	if err := json.Unmarshal(res.State, &raw); err != nil {
		t.Fatal(err)
	}
	raw["version"] = stateVersion + 1
	b, _ := json.Marshal(raw)
	if _, err := LoadState(b, p); err == nil {
		t.Errorf("LoadState accepted an unknown state version")
	}
	if _, err := LoadState([]byte("{"), p); err == nil {
		t.Errorf("LoadState accepted corrupt JSON")
	}
}

func TestSignatureCoversResultParametersOnly(t *testing.T) {
	p := quickParams()
	base, err := p.Signature()
	if err != nil {
		t.Fatal(err)
	}
	// Execution-only knobs must not move the signature.
	exec := p
	exec.Parallelism = 8
	exec.Shards = 4
	exec.Check = true
	if sig, _ := exec.Signature(); sig != base {
		t.Errorf("execution knobs changed the signature")
	}
	// Result-affecting parameters must.
	for name, mut := range map[string]func(*Params){
		"seed":      func(q *Params) { q.Seed++ },
		"objective": func(q *Params) { q.Objective = "energy" },
		"strategy":  func(q *Params) { q.Strategy = StrategyAnneal },
		"requests":  func(q *Params) { q.Requests = 80 },
		"space":     func(q *Params) { q.Space.PEs = append(q.Space.PEs, 12) },
		"slo":       func(q *Params) { q.SLOUs = 900 },
	} {
		q := p
		q.Space.PEs = append([]int(nil), p.Space.PEs...)
		mut(&q)
		sig, err := q.Signature()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if sig == base {
			t.Errorf("changing %s did not change the signature", name)
		}
	}
}

func TestRunRejectsInvalidParams(t *testing.T) {
	p := quickParams()
	p.Strategy = "gradient"
	if _, err := Run(context.Background(), p, nil, Hooks{}); err == nil {
		t.Errorf("Run accepted an unknown strategy")
	}
	q := quickParams()
	q.Objective = "latency"
	if _, err := Run(context.Background(), q, nil, Hooks{}); err == nil {
		t.Errorf("Run accepted an unknown objective")
	}
	r := quickParams()
	r.Space = SpaceSpec{}
	if _, err := Run(context.Background(), r, nil, Hooks{}); err == nil {
		t.Errorf("Run accepted an empty space")
	}
}

func TestRunHonoursCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Run(ctx, quickParams(), nil, Hooks{}); err == nil {
		t.Errorf("Run returned no error under a cancelled context")
	}
}

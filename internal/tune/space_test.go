package tune

import (
	"strings"
	"testing"

	"accelflow/internal/config"
	"accelflow/internal/sim"
)

func mustBuild(t *testing.T, spec SpaceSpec) *Space {
	t.Helper()
	sp, err := spec.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return sp
}

func TestSpaceBuildRejectsBadSpecs(t *testing.T) {
	cases := []struct {
		name string
		spec SpaceSpec
		want string
	}{
		{"empty", SpaceSpec{}, "no dimensions"},
		{"bad plan", SpaceSpec{Chiplets: []int{5}}, "chiplet plan"},
		{"zero pes", SpaceSpec{PEs: []int{0}}, "pes level"},
		{"bad policy", SpaceSpec{Policies: []string{"fifo"}}, "unknown policy"},
		{"bad kind", SpaceSpec{PEMix: map[string][]int{"Nope": {4}}}, "accelerator kind"},
		{"zero mix", SpaceSpec{PEMix: map[string][]int{"TCP": {0}}}, "peMix"},
		{"zero queue", SpaceSpec{QueueDepths: []int{0}}, "queue depth"},
		{"zero timeout", SpaceSpec{TCPTimeoutUs: []float64{0}}, "tcp timeout"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := tc.spec.Build(); err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("Build err = %v, want substring %q", err, tc.want)
			}
		})
	}
}

func TestSpaceKeyAndStart(t *testing.T) {
	sp := mustBuild(t, SpaceSpec{
		Chiplets: []int{2, 4},
		PEs:      []int{8, 4},
		Policies: []string{"accelflow", "relief"},
	})
	if got, want := sp.Size(), 8; got != want {
		t.Fatalf("Size = %d, want %d", got, want)
	}
	start := sp.Start()
	if got, want := sp.Key(start), "chiplets=2,pes=8,policy=accelflow"; got != want {
		t.Fatalf("Key(start) = %q, want %q", got, want)
	}
	if got, want := sp.Key([]int{1, 1, 1}), "chiplets=4,pes=4,policy=relief"; got != want {
		t.Fatalf("Key = %q, want %q", got, want)
	}
}

func TestSpaceMaterializeAppliesDims(t *testing.T) {
	sp := mustBuild(t, SpaceSpec{
		Chiplets:     []int{2, 4},
		PEs:          []int{8, 12},
		PEMix:        map[string][]int{"TCP": {8, 16}},
		Policies:     []string{"accelflow", "relief"},
		QueueDepths:  []int{64, 128},
		TCPTimeoutUs: []float64{10000, 5000},
	})
	cfg, pol, err := sp.Materialize([]int{1, 1, 1, 1, 1, 1})
	if err != nil {
		t.Fatalf("Materialize: %v", err)
	}
	if cfg.Chiplets != 4 {
		t.Errorf("Chiplets = %d, want 4", cfg.Chiplets)
	}
	if cfg.PEsPerAccel != 12 {
		t.Errorf("PEsPerAccel = %d, want 12", cfg.PEsPerAccel)
	}
	if got := cfg.PEsFor(config.TCP); got != 16 {
		t.Errorf("PEsFor(TCP) = %d, want 16", got)
	}
	if got := cfg.PEsFor(config.Ser); got != 12 {
		t.Errorf("PEsFor(Ser) = %d, want 12 (uniform fallback)", got)
	}
	if cfg.InputQueueEntries != 128 || cfg.OutputQueueEntries != 128 {
		t.Errorf("queues = %d/%d, want 128/128", cfg.InputQueueEntries, cfg.OutputQueueEntries)
	}
	if want := sim.FromMicros(5000); cfg.TCPTimeout != want {
		t.Errorf("TCPTimeout = %v, want %v", cfg.TCPTimeout, want)
	}
	if pol.Name == "" {
		t.Errorf("policy has no name")
	}
}

func TestSpaceMaterializeRejectsInvalidConfig(t *testing.T) {
	// 10us is below the default RemoteRTT (18us), so config.Validate
	// must reject the candidate — the searcher relies on this filter.
	sp := mustBuild(t, SpaceSpec{TCPTimeoutUs: []float64{10000, 10}})
	if _, _, err := sp.Materialize([]int{1}); err == nil {
		t.Fatalf("Materialize accepted a TCPTimeout below RemoteRTT")
	}
	if _, _, err := sp.Materialize([]int{0}); err != nil {
		t.Fatalf("Materialize rejected the valid level: %v", err)
	}
}

func TestSpacePEMixDimOrderIsCanonical(t *testing.T) {
	// Dimension order must come from the accelerator encoding, not map
	// iteration: build twice and compare signatures.
	spec := SpaceSpec{PEMix: map[string][]int{"Ser": {8, 4}, "TCP": {8, 16}, "Cmp": {8, 2}}}
	a := mustBuild(t, spec).Signature()
	for i := 0; i < 10; i++ {
		if b := mustBuild(t, spec).Signature(); b != a {
			t.Fatalf("signature changed across builds: %q vs %q", a, b)
		}
	}
	// TCP encodes before Ser and Cmp, so its dimension must come first.
	sp := mustBuild(t, spec)
	if sp.Dims[0].Name != "pe/TCP" {
		t.Fatalf("first PEMix dim = %q, want pe/TCP", sp.Dims[0].Name)
	}
}

func TestSpaceNeighborsDeterministicAndDeduped(t *testing.T) {
	sp := mustBuild(t, SpaceSpec{
		Chiplets: []int{2, 1, 4},
		PEs:      []int{8, 4, 12},
		Policies: []string{"accelflow", "relief"},
	})
	cur := []int{1, 1, 0}
	got := sp.Neighbors(cur, 1)
	want := []string{
		"chiplets=2,pes=4,policy=accelflow",
		"chiplets=4,pes=4,policy=accelflow",
		"chiplets=1,pes=8,policy=accelflow",
		"chiplets=1,pes=12,policy=accelflow",
		"chiplets=1,pes=4,policy=relief",
	}
	if len(got) != len(want) {
		t.Fatalf("neighbors = %d, want %d", len(got), len(want))
	}
	seen := map[string]bool{}
	for i, n := range got {
		k := sp.Key(n)
		if seen[k] {
			t.Errorf("duplicate neighbor %q", k)
		}
		seen[k] = true
		if k != want[i] {
			t.Errorf("neighbor[%d] = %q, want %q", i, k, want[i])
		}
	}
	// From a corner, radius 2 adds the two-step moves (chiplets and pes
	// each reach their third level) without duplicating radius-1.
	corner := []int{0, 0, 0}
	r1, r2 := sp.Neighbors(corner, 1), sp.Neighbors(corner, 2)
	if len(r1) != 3 || len(r2) != 5 {
		t.Fatalf("corner neighbors = %d/%d at radius 1/2, want 3/5", len(r1), len(r2))
	}
}

func TestDefaultSpaceStartsAtBaseline(t *testing.T) {
	sp := mustBuild(t, DefaultSpace())
	if len(sp.Dims) < 3 {
		t.Fatalf("default space has %d dims, want >= 3", len(sp.Dims))
	}
	cfg, _, err := sp.Materialize(sp.Start())
	if err != nil {
		t.Fatalf("Materialize(start): %v", err)
	}
	def := config.Default()
	if cfg.Chiplets != def.Chiplets || cfg.PEsPerAccel != def.PEsPerAccel {
		t.Fatalf("default-space start is not the base design: chiplets %d/%d, pes %d/%d",
			cfg.Chiplets, def.Chiplets, cfg.PEsPerAccel, def.PEsPerAccel)
	}
}

package tune

import (
	"fmt"

	"accelflow/internal/config"
	"accelflow/internal/energy"
	"accelflow/internal/workload"
)

// Eval is one candidate's measured outcome: the objective score (lower
// is better) plus the raw metrics it was derived from. It is the cell
// value stored in the sweep cell cache, so it must stay a plain
// comparable-by-value struct of scalars: a cached Eval is handed back
// by reference and never mutated.
type Eval struct {
	Score         float64 `json:"score"`
	P99Us         float64 `json:"p99us"`
	MeanUs        float64 `json:"meanUs"`
	Completed     uint64  `json:"completed"`
	JoulesPerReq  float64 `json:"joulesPerReq"`
	ThroughputRPS float64 `json:"throughputRps"`
}

// objectiveNames lists the wire names, in report order.
var objectiveNames = []string{"p99", "energy", "costperf"}

// scoreObjective reduces one run's metrics to the named objective's
// scalar. All objectives are minimized:
//
//   - "p99": on-server p99 latency in microseconds, plus a steep
//     penalty (100x the overshoot) once it exceeds the SLO — "lowest
//     tail that still meets the SLO".
//   - "energy": joules per completed request.
//   - "costperf": a silicon-cost proxy (chiplet count and total PE
//     provisioning) divided by delivered throughput — cost-weighted
//     throughput inverted so that lower is better.
func scoreObjective(name string, cfg *config.Config, res *workload.RunResult, ev Eval, sloUs float64) (float64, error) {
	switch name {
	case "p99":
		over := ev.P99Us - sloUs
		if over < 0 {
			over = 0
		}
		return ev.P99Us + 100*over, nil
	case "energy":
		return ev.JoulesPerReq * 1e3, nil
	case "costperf":
		cost := 1 + 0.25*float64(cfg.Chiplets) + float64(cfg.TotalPEs())/float64(config.NumAccelKinds)
		if ev.ThroughputRPS <= 0 {
			return 0, fmt.Errorf("tune: costperf objective with zero throughput")
		}
		return 1e6 * cost / ev.ThroughputRPS, nil
	case "":
		return 0, fmt.Errorf("tune: objective is required (p99, energy, or costperf)")
	default:
		return 0, fmt.Errorf("tune: unknown objective %q (want p99, energy, or costperf)", name)
	}
}

// validObjective reports whether name is a known objective.
func validObjective(name string) bool {
	for _, n := range objectiveNames {
		if n == name {
			return true
		}
	}
	return false
}

// measure reduces one finished run to an Eval (score filled by the
// caller via scoreObjective). Latencies use the on-server Net recorder
// so the objective is not dominated by the modeled far side of nested
// RPCs, matching the SLO comparisons elsewhere in the repo.
func measure(res *workload.RunResult, rep energy.Report) Eval {
	ev := Eval{
		P99Us:     res.Net.P99().Micros(),
		MeanUs:    res.Net.Mean().Micros(),
		Completed: res.Completed,
	}
	if secs := res.Elapsed.Seconds(); secs > 0 {
		ev.ThroughputRPS = float64(res.Completed) / secs
	}
	if res.Completed > 0 {
		ev.JoulesPerReq = rep.TotalJ() / float64(res.Completed)
	}
	return ev
}

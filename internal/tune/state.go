package tune

import (
	"encoding/json"
	"fmt"
)

// stateVersion guards SearchState decoding across format changes.
const stateVersion = 1

// FrontierEntry is one of the best candidates seen so far.
type FrontierEntry struct {
	Key   string  `json:"key"`
	Score float64 `json:"score"`
}

// GenRecord is one generation's trajectory entry.
type GenRecord struct {
	Gen       int     `json:"gen"`
	Evaluated int     `json:"evaluated"`
	CurScore  float64 `json:"curScore"`
	BestScore float64 `json:"bestScore"`
	Moved     bool    `json:"moved"`
}

// SearchState is the search's complete mutable state, serialized after
// every generation. It is a pure function of (Params, generations
// run): resuming from a generation-N snapshot and running to
// completion produces byte-identical state to an uninterrupted search.
// That property forbids anything environment-dependent here — notably
// cache-hit counts, which differ between a warm in-process run and a
// resumed one (the resumed process re-evaluates candidates the dead
// process had cached). Hit counts live in Result, outside the
// byte-compared state.
type SearchState struct {
	Version  int    `json:"version"`
	Sig      string `json:"sig"`
	Strategy string `json:"strategy"`

	Gen      int `json:"gen"`      // generations completed
	Stagnant int `json:"stagnant"` // generations since Best improved
	Radius   int `json:"radius"`   // hill climbing neighborhood radius
	Evals    int `json:"evals"`    // evaluations requested (cached or run)

	Cur      []int   `json:"cur"`
	CurKey   string  `json:"curKey"`
	CurScore float64 `json:"curScore"`

	Best      []int   `json:"best"`
	BestKey   string  `json:"bestKey"`
	BestScore float64 `json:"bestScore"`
	BestEval  Eval    `json:"bestEval"`

	Frontier   []FrontierEntry `json:"frontier"`
	Trajectory []GenRecord     `json:"trajectory"`

	Done      bool `json:"done"`
	Converged bool `json:"converged"` // stopped on patience, not generation cap
}

// Marshal renders the state canonically (encoding/json with struct
// field order) for snapshot files and byte-equality assertions.
func (st *SearchState) Marshal() ([]byte, error) { return json.Marshal(st) }

// LoadState decodes a snapshot and verifies it belongs to p: the
// embedded signature must match p's, so a snapshot can never silently
// continue a different search (other space, seed, objective, or
// strategy).
func LoadState(data []byte, p Params) (*SearchState, error) {
	var st SearchState
	if err := json.Unmarshal(data, &st); err != nil {
		return nil, fmt.Errorf("tune: bad search state: %w", err)
	}
	if st.Version != stateVersion {
		return nil, fmt.Errorf("tune: search state version %d, want %d", st.Version, stateVersion)
	}
	sig, err := p.Signature()
	if err != nil {
		return nil, err
	}
	if st.Sig != sig {
		return nil, fmt.Errorf("tune: search state signature %.12s does not match these parameters (%.12s); refusing to resume a different search", st.Sig, sig)
	}
	return &st, nil
}

// observe folds one evaluated candidate into Best and the frontier.
func (st *SearchState) observe(cand []int, key string, ev Eval) (improved bool) {
	if st.BestKey == "" || ev.Score < st.BestScore {
		st.Best = append([]int(nil), cand...)
		st.BestKey = key
		st.BestScore = ev.Score
		st.BestEval = ev
		improved = true
	}
	st.pushFrontier(key, ev.Score)
	return improved
}

// frontierSize bounds the kept best-candidates list.
const frontierSize = 3

// pushFrontier inserts (key, score) into the sorted frontier, keeping
// the frontierSize lowest scores. Ties break by key so the frontier is
// deterministic regardless of evaluation order.
func (st *SearchState) pushFrontier(key string, score float64) {
	for i, f := range st.Frontier {
		if f.Key == key {
			if score < f.Score {
				st.Frontier[i].Score = score
			}
			return
		}
	}
	st.Frontier = append(st.Frontier, FrontierEntry{Key: key, Score: score})
	for i := len(st.Frontier) - 1; i > 0; i-- {
		a, b := st.Frontier[i-1], st.Frontier[i]
		if b.Score < a.Score || (b.Score == a.Score && b.Key < a.Key) {
			st.Frontier[i-1], st.Frontier[i] = b, a
		}
	}
	if len(st.Frontier) > frontierSize {
		st.Frontier = st.Frontier[:frontierSize]
	}
}

package engine

import (
	"accelflow/internal/check"
	"accelflow/internal/fault"
	"accelflow/internal/obs"
)

// Params collects the engine's optional behavior in one documented
// struct — the single options surface for engine assembly. It replaced
// the accreted functional options (WithSeed/WithObserver/WithFaults/
// WithChecker): workload.RunSpec is the user-facing spec, and its
// RunCtx maps spec fields onto Params one-for-one, so there is exactly
// one knob per behavior and no duplicate Seed/Observer/Check paths.
// The zero value is valid: seed 0, no observability, no faults, no
// checking.
type Params struct {
	// Seed seeds the engine's RNG (flag draws, payload sizes, remote
	// waits, TLB streams). Used as-is; equal seeds give bit-identical
	// runs.
	Seed int64

	// Obs, when non-nil, records a span per request / chain /
	// accelerator entry with queue, dispatch, compute, DMA, NoC, and
	// interrupt segments. A nil sink disables recording (all obs calls
	// no-op).
	Obs *obs.Sink

	// Faults, when non-nil, is wired to the built accelerators, A-DMA
	// pool, manager, ATM, and NoC, and its windows are scheduled on the
	// kernel. An injector with Rate 0 attaches but schedules nothing,
	// leaving results bit-identical to Faults == nil.
	Faults *fault.Injector

	// Check, when non-nil, hooks the runtime invariant checker into the
	// kernel's per-event observer and the engine's request accounting;
	// CheckEnd runs the per-resource end-of-run suite against it.
	// Checker hooks only read state — they never touch RNG streams or
	// schedule events — so an attached checker cannot change results.
	Check *check.Checker
}

package engine

import (
	"fmt"

	"accelflow/internal/accel"
	"accelflow/internal/config"
	"accelflow/internal/noc"
	"accelflow/internal/obs"
	"accelflow/internal/sim"
	"accelflow/internal/trace"
)

// wireAccels connects the accelerators' PE-completion callbacks to the
// engine's output-dispatcher logic. Called lazily on first use so that
// tests can construct engines piecemeal.
func (e *Engine) wireAccels() {
	if e.Accels[0].OnReady != nil {
		return
	}
	for _, kd := range config.AllAccelKinds() {
		a := e.Accels[kd]
		a.OnReady = func(ent *accel.Entry) { e.onPEComplete(a, ent.UserData.(*entryState)) }
	}
}

// enqueueFromCore models a core triggering a trace (§IV-A): the
// user-mode Enqueue instruction plus payload DMA under AccelFlow-like
// policies, a chain submission to the manager under RELIEF, an
// interrupt-driven invocation under CPU-Centric, and a software-queue
// push under Cohort.
func (e *Engine) enqueueFromCore(ent *entryState) {
	e.wireAccels()
	in := ent.Prog.Instrs[ent.PC]
	if in.Kind != trace.OpInvoke {
		panic(fmt.Sprintf("engine: chain trace %q does not start with an invoke", ent.Prog.Name))
	}
	r := ent.chain.req
	switch e.Pol.Hop {
	case HopDirect:
		cost := e.Cfg.EnqueueCost
		if e.Pol.Ideal {
			cost = 0
		}
		t0 := e.K.Now()
		e.Cores.Do(cost, func() {
			r.bd.Orch += e.K.Now() - t0
			ent.sp.QueuedSeg(obs.SegDispatch, "cores", t0, cost)
			e.dmaToAccel(ent, e.Place.CoreNode(0), func() { e.deliver(ent, false) })
		})
	case HopManager:
		t0 := e.K.Now()
		e.Cores.Do(e.Cfg.EnqueueCost, func() {
			ent.sp.QueuedSeg(obs.SegDispatch, "cores", t0, e.Cfg.EnqueueCost)
			tm := e.K.Now()
			e.Manager.Do(e.Cfg.ManagerDispatch, func() {
				r.bd.Orch += e.K.Now() - t0
				ent.sp.QueuedSeg(obs.SegDispatch, "manager", tm, e.Cfg.ManagerDispatch)
				t1 := e.K.Now()
				e.Mem.Transfer(ent.DataBytes, func() {
					r.bd.Comm += e.K.Now() - t1
					ent.sp.Seg(obs.SegDMA, "dram", t1, e.K.Now())
					e.deliver(ent, true)
				})
			})
		})
	case HopCPU:
		t0 := e.K.Now()
		e.Cores.Do(e.Cfg.EnqueueCost, func() {
			r.bd.Orch += e.K.Now() - t0
			ent.sp.QueuedSeg(obs.SegDispatch, "cores", t0, e.Cfg.EnqueueCost)
			e.dmaToAccel(ent, e.Place.CoreNode(0), func() { e.deliver(ent, false) })
		})
	case HopSWQueue:
		t0 := e.K.Now()
		e.Cores.Do(e.Cfg.SWQueueHop, func() {
			r.bd.Orch += e.K.Now() - t0
			ent.sp.QueuedSeg(obs.SegDispatch, "cores", t0, e.Cfg.SWQueueHop)
			t1 := e.K.Now()
			e.Mem.Transfer(ent.DataBytes, func() {
				r.bd.Comm += e.K.Now() - t1
				ent.sp.Seg(obs.SegDMA, "dram", t1, e.K.Now())
				e.deliver(ent, true)
			})
		})
	}
}

// dmaToAccel moves the payload and trace from a core-side node to the
// entry's current target accelerator via an A-DMA engine.
func (e *Engine) dmaToAccel(ent *entryState, src noc.Node, done func()) {
	dst := e.Accels[ent.Prog.Instrs[ent.PC].Accel]
	r := ent.chain.req
	t0 := e.K.Now()
	e.DMA.Transfer(src, dst.Node, ent.DataBytes, ent.Prog.EncodedBytes(), ent.sp, func() {
		r.bd.Comm += e.K.Now() - t0
		done()
	})
}

// commDone is a pooled "charge Comm, then deliver" continuation for
// the accelerator-to-accelerator hop DMA: the common case of every
// chain hop, so the per-hop closure is replaced with a recycled record
// whose fn is bound once.
type commDone struct {
	eng            *Engine
	ent            *entryState
	t0             sim.Time
	fromDispatcher bool
	next           *commDone
	fn             func()
}

func (n *commDone) run() {
	e := n.eng
	ent := n.ent
	t0 := n.t0
	fd := n.fromDispatcher
	n.ent = nil
	n.next = e.freeComm
	e.freeComm = n
	ent.chain.req.bd.Comm += e.K.Now() - t0
	e.deliver(ent, fd)
}

// commThenDeliver returns a pooled continuation charging the elapsed
// time since now to Breakdown.Comm and delivering the entry.
func (e *Engine) commThenDeliver(ent *entryState, fromDispatcher bool) func() {
	n := e.freeComm
	if n == nil {
		n = &commDone{eng: e}
		n.fn = n.run
	} else {
		e.freeComm = n.next
	}
	n.ent = ent
	n.t0 = e.K.Now()
	n.fromDispatcher = fromDispatcher
	return n.fn
}

// deliver admits an entry to its current target accelerator, passing
// through the shared central queue under base RELIEF, and drawing
// page-fault exceptions.
func (e *Engine) deliver(ent *entryState, fromDispatcher bool) {
	e.wireAccels()
	a := e.Accels[ent.Prog.Instrs[ent.PC].Accel]
	if e.Pol.SharedQueue {
		t0 := e.K.Now()
		e.CentralQ.Do(e.centralQDispatchCost, func() {
			ent.chain.req.bd.Orch += e.K.Now() - t0
			ent.sp.QueuedSeg(obs.SegDispatch, "centralq", t0, e.centralQDispatchCost)
			e.admit(a, ent, fromDispatcher)
		})
		return
	}
	e.admit(a, ent, fromDispatcher)
}

// admit draws the page-fault exception and offers the entry.
func (e *Engine) admit(a *accel.Accelerator, ent *entryState, fromDispatcher bool) {
	if a.TLB.PageFault() {
		// The accelerator stops; a core runs the OS handler, then
		// execution resumes (§V-3).
		e.Stats.FallbacksFault++
		r := ent.chain.req
		t0 := e.K.Now()
		e.Cores.Do(e.Cfg.PageFaultCost, func() {
			r.bd.Orch += e.K.Now() - t0
			ent.sp.QueuedSeg(obs.SegInterrupt, "cores", t0, e.Cfg.PageFaultCost)
			e.offer(a, ent, fromDispatcher)
		})
		return
	}
	e.offer(a, ent, fromDispatcher)
}

func (e *Engine) offer(a *accel.Accelerator, ent *entryState, fromDispatcher bool) {
	if a.Failed() {
		// The accelerator is in a failure window: retrying cannot help,
		// so the core services the rest of the trace in software
		// immediately (graceful degradation under fault injection).
		e.Stats.FallbacksFailed++
		ent.chain.req.fellBack = true
		e.cpuFallback(ent, ent.PC)
		return
	}
	switch a.Offer(ent.Entry, fromDispatcher) {
	case accel.Admitted, accel.Overflowed:
		// The accelerator machinery takes over; OnReady resumes us.
	case accel.Rejected:
		if !fromDispatcher && ent.retries < e.Cfg.EnqueueRetries {
			// Enqueue returned an error; the core retries (§IV-A),
			// optionally after an exponential backoff so a transient
			// full queue can drain before the next attempt.
			ent.retries++
			r := ent.chain.req
			retry := func() {
				t0 := e.K.Now()
				e.Cores.Do(e.Cfg.EnqueueCost, func() {
					r.bd.Orch += e.K.Now() - t0
					ent.sp.QueuedSeg(obs.SegDispatch, "cores", t0, e.Cfg.EnqueueCost)
					e.offer(a, ent, false)
				})
			}
			// With EnqueueBackoff 0 the retry runs inline, scheduling no
			// kernel event — the pre-backoff event order is preserved
			// exactly, keeping golden values unchanged by default.
			if d := e.Cfg.EnqueueBackoff << uint(ent.retries-1); d > 0 {
				e.Stats.EnqueueBackoffs++
				ent.sp.Seg(obs.SegQueue, "backoff", e.K.Now(), e.K.Now()+d)
				e.K.After(d, retry)
			} else {
				retry()
			}
			return
		}
		e.Stats.FallbacksQueue++
		ent.chain.req.fellBack = true
		e.cpuFallback(ent, ent.PC)
	}
}

// onPEComplete runs when a PE deposits an entry in the output queue:
// charge the PE time to the breakdown and start the output-dispatcher
// walk (Fig. 8 flowchart).
func (e *Engine) onPEComplete(a *accel.Accelerator, ent *entryState) {
	r := ent.chain.req
	r.accels++
	r.bd.Accel += ent.LastPEHold
	e.walk(a, ent, ent.PC+1, e.Cfg.DispBaseInstrs)
}

// walk advances the Position Mark through non-invoke instructions,
// accumulating dispatcher work, until it reaches an instruction that
// needs asynchronous handling: the next invoke (hop), a mediator
// fallback, a tail, or the end.
func (e *Engine) walk(a *accel.Accelerator, ent *entryState, pc int, instrs int) {
	prog := ent.Prog
	dte := sim.Time(0)
	var forks []string
	for {
		in := prog.Instrs[pc]
		switch in.Kind {
		case trace.OpBranch:
			if in.Cond == trace.CondNone {
				pc = in.TrueTarget
				continue
			}
			if e.Pol.DispatcherBranch {
				instrs += e.Cfg.DispBranchInstrs
				a.Stats.Branches++
				pc = prog.Next(pc, ent.Flags)
				continue
			}
			next := prog.Next(pc, ent.Flags)
			e.chargeGlue(a, ent, instrs, dte, forks, glueCont, "", func() {
				e.Stats.MediatorBranches++
				e.mediate(ent, func() { e.walk(a, ent, next, 0) })
			})
			return
		case trace.OpTrans:
			if e.Pol.DispatcherTransform {
				instrs += e.Cfg.DispTransformInstrs
				dte += e.dteTime(ent.DataBytes)
				a.Stats.Transforms++
				pc++
				continue
			}
			npc := pc + 1
			e.chargeGlue(a, ent, instrs, dte, forks, glueCont, "", func() {
				e.Stats.MediatorTrans++
				// The mediator moves the data out, transforms it on
				// the CPU/manager, and moves it back.
				e.mediate(ent, func() {
					r := ent.chain.req
					t0 := e.K.Now()
					e.Mem.Transfer(2*ent.DataBytes, func() {
						r.bd.Comm += e.K.Now() - t0
						ent.sp.Seg(obs.SegDMA, "dram", t0, e.K.Now())
						e.walk(a, ent, npc, 0)
					})
				})
			})
			return
		case trace.OpFork:
			forks = append(forks, in.TailName)
			pc++
			continue
		case trace.OpInvoke:
			ent.PC = pc
			e.chargeGlue(a, ent, instrs, dte, forks, glueHop, "", nil)
			return
		case trace.OpTail:
			instrs += e.Cfg.DispEndInstrs
			e.chargeGlue(a, ent, instrs, dte, forks, glueTail, in.TailName, nil)
			return
		case trace.OpEnd:
			instrs += e.Cfg.DispEndInstrs
			e.chargeGlue(a, ent, instrs, dte, forks, glueEnd, "", nil)
			return
		default:
			panic(fmt.Sprintf("engine: unknown op %d in trace %q", in.Kind, prog.Name))
		}
	}
}

// Glue-pass continuations. The three hot outcomes of a dispatcher walk
// (hop to the next invoke, load a tail, finish the trace) are encoded
// as kinds on the pooled gluePass record, so no continuation closure
// is allocated for them; the rare mediator paths pass glueCont with an
// explicit closure.
const (
	glueCont = iota
	glueHop
	glueTail
	glueEnd
)

// gluePass is one pooled output-dispatcher pass: what chargeGlue's
// per-pass closure used to capture, recycled through Engine.freeGlue.
type gluePass struct {
	eng   *Engine
	a     *accel.Accelerator
	ent   *entryState
	t0    sim.Time
	hold  sim.Time
	forks []string
	kind  uint8
	name  string // tail name for glueTail
	cont  func() // for glueCont
	next  *gluePass
	fn    func()
}

// run executes after the dispatcher pass's hold: extract everything,
// recycle the record (safe against re-entry — the continuation may
// start another glue pass, which may reuse it), then account and
// continue.
func (g *gluePass) run() {
	e := g.eng
	a := g.a
	ent := g.ent
	t0, hold := g.t0, g.hold
	forks := g.forks
	kind, name, cont := g.kind, g.name, g.cont
	g.a, g.ent, g.forks, g.cont = nil, nil, nil, nil
	g.next = e.freeGlue
	e.freeGlue = g
	ent.chain.req.bd.Orch += e.K.Now() - t0
	ent.sp.QueuedSeg(obs.SegDispatch, a.OutDispName, t0, hold)
	for _, fn := range forks {
		e.spawnFork(a, ent, fn)
	}
	switch kind {
	case glueHop:
		e.hop(a, ent)
	case glueTail:
		e.handleTail(a, ent, name)
	case glueEnd:
		e.finishTrace(a, ent)
	default:
		cont()
	}
}

// chargeGlue charges one output-dispatcher pass (serialized per
// accelerator) plus any Data Transform Engine time, spawns collected
// forks, then continues per kind (see the glue* constants).
func (e *Engine) chargeGlue(a *accel.Accelerator, ent *entryState, instrs int, dte sim.Time, forks []string, kind uint8, name string, cont func()) {
	hold := a.GluePass(instrs) + dte
	if e.Pol.Ideal {
		hold = 0
	}
	g := e.freeGlue
	if g == nil {
		g = &gluePass{eng: e}
		g.fn = g.run
	} else {
		e.freeGlue = g.next
	}
	g.a, g.ent = a, ent
	g.t0, g.hold = e.K.Now(), hold
	g.forks = forks
	g.kind, g.name, g.cont = kind, name, cont
	a.OutDisp.Do(hold, g.fn)
}

// spawnFork launches a side trace from the ATM that joins the chain
// (e.g. T6's parallel write-back to the DB cache).
func (e *Engine) spawnFork(a *accel.Accelerator, ent *entryState, name string) {
	prog, lat, err := e.ATM.Read(name)
	if err != nil {
		panic(err)
	}
	if e.Pol.Ideal {
		lat = 0
	}
	e.Stats.ForksSpawned++
	ent.chain.fork()
	f := &entryState{
		Entry: &accel.Entry{
			Prog: prog, PC: 0, Flags: ent.Flags,
			DataBytes: ent.DataBytes, Tenant: ent.Tenant,
			Deadline: ent.Deadline, EnqueuedAt: e.K.Now(),
		},
		chain: ent.chain,
	}
	f.sp = ent.chain.sp.Child(obs.SpanEntry, prog.Name)
	f.sp.Seg(obs.SegDispatch, "atm", e.K.Now(), e.K.Now()+lat)
	f.Entry.Span = f.sp
	f.Entry.UserData = f
	e.K.After(lat, func() { e.resumeProgram(a, f) })
}

// resumeProgram continues a freshly loaded program at PC 0 inside the
// dispatcher of accelerator a: an invoke hops to its accelerator;
// anything else continues the dispatcher walk.
func (e *Engine) resumeProgram(a *accel.Accelerator, ent *entryState) {
	if ent.Prog.Instrs[0].Kind == trace.OpInvoke {
		ent.PC = 0
		e.hop(a, ent)
		return
	}
	e.walk(a, ent, 0, 0)
}

// hop moves the entry from accelerator a to the accelerator of the
// invoke at ent.PC, according to the policy's hop mechanics.
func (e *Engine) hop(a *accel.Accelerator, ent *entryState) {
	dst := e.Accels[ent.Prog.Instrs[ent.PC].Accel]
	r := ent.chain.req
	traceBytes := ent.Prog.EncodedBytes()
	switch e.Pol.Hop {
	case HopDirect:
		if !e.Pol.DispatcherTransform && ent.DataBytes > e.Cfg.InlineDataBytes {
			// Without large-data support the manager moves oversized
			// payloads through memory (Fig. 13's last ladder step).
			e.mediate(ent, func() {
				t0 := e.K.Now()
				e.Mem.Transfer(ent.DataBytes, func() {
					r.bd.Comm += e.K.Now() - t0
					ent.sp.Seg(obs.SegDMA, "dram", t0, e.K.Now())
					e.deliver(ent, true)
				})
			})
			return
		}
		e.DMA.Transfer(a.Node, dst.Node, ent.DataBytes, traceBytes, ent.sp, e.commThenDeliver(ent, true))
	case HopManager:
		t0 := e.K.Now()
		// One manager engagement per completion (~1.5us, §VII-A.1)
		// covers the interrupt, processing, and next dispatch.
		e.Manager.Do(e.Cfg.ManagerHop, func() {
			r.bd.Orch += e.K.Now() - t0
			ent.sp.QueuedSeg(obs.SegDispatch, "manager", t0, e.Cfg.ManagerHop)
			t1 := e.K.Now()
			// Source accelerator writes output to memory; destination
			// reads it back: two touches.
			e.Mem.Transfer(ent.DataBytes, func() {
				e.Mem.Transfer(ent.DataBytes, func() {
					r.bd.Comm += e.K.Now() - t1
					ent.sp.Seg(obs.SegDMA, "dram", t1, e.K.Now())
					e.deliver(ent, true)
				})
			})
		})
	case HopCPU:
		t0 := e.K.Now()
		e.Cores.Do(e.Cfg.InterruptCost, func() {
			r.bd.Orch += e.K.Now() - t0
			ent.sp.QueuedSeg(obs.SegInterrupt, "cores", t0, e.Cfg.InterruptCost)
			t1 := e.K.Now()
			e.Mem.Transfer(ent.DataBytes, func() {
				e.Mem.Transfer(ent.DataBytes, func() {
					r.bd.Comm += e.K.Now() - t1
					ent.sp.Seg(obs.SegDMA, "dram", t1, e.K.Now())
					e.deliver(ent, false)
				})
			})
		})
	case HopSWQueue:
		if e.Pol.CohortPairs[[2]config.AccelKind{a.Kind, dst.Kind}] {
			e.DMA.Transfer(a.Node, dst.Node, ent.DataBytes, traceBytes, ent.sp, e.commThenDeliver(ent, true))
			return
		}
		// Unlinked hop: the entry sits in a shared-memory software
		// queue until a polling core notices it, then the core moves
		// the data along.
		t0 := e.K.Now()
		e.K.After(e.Cfg.SWQueuePickup, func() {
			e.Cores.Do(e.Cfg.SWQueueHop, func() {
				r.bd.Orch += e.K.Now() - t0
				ent.sp.QueuedSeg(obs.SegDispatch, "cores", t0, e.Cfg.SWQueueHop)
				t1 := e.K.Now()
				e.Mem.Transfer(ent.DataBytes, func() {
					e.Mem.Transfer(ent.DataBytes, func() {
						r.bd.Comm += e.K.Now() - t1
						ent.sp.Seg(obs.SegDMA, "dram", t1, e.K.Now())
						e.deliver(ent, true)
					})
				})
			})
		})
	}
}

// mediate bounces control to the policy's mediator (hardware manager
// or a CPU core) and continues.
func (e *Engine) mediate(ent *entryState, cont func()) {
	r := ent.chain.req
	t0 := e.K.Now()
	switch e.Pol.Mediator {
	case MedManager:
		e.Manager.Do(e.Cfg.ManagerHop, func() {
			r.bd.Orch += e.K.Now() - t0
			ent.sp.QueuedSeg(obs.SegDispatch, "manager", t0, e.Cfg.ManagerHop)
			cont()
		})
	case MedCPU:
		cost := e.Cfg.InterruptCost
		delay := sim.Time(0)
		if e.Pol.Hop == HopSWQueue {
			cost = e.Cfg.SWQueueHop
			delay = e.Cfg.SWQueuePickup
		}
		e.K.After(delay, func() {
			e.Cores.Do(cost, func() {
				r.bd.Orch += e.K.Now() - t0
				ent.sp.QueuedSeg(obs.SegInterrupt, "cores", t0, cost)
				cont()
			})
		})
	}
}

// handleTail processes an OpTail: read the continuation from the ATM
// (dispatcher-side under AccelFlow, mediator-side otherwise), wait for
// the remote response when the tail crosses the network, and resume.
func (e *Engine) handleTail(a *accel.Accelerator, ent *entryState, name string) {
	if !e.Pol.ATMChaining {
		e.Stats.MediatorTails++
		e.mediate(ent, func() { e.loadTail(a, ent, name, true) })
		return
	}
	e.loadTail(a, ent, name, false)
}

func (e *Engine) loadTail(a *accel.Accelerator, ent *entryState, name string, viaMediator bool) {
	prog, lat, err := e.ATM.Read(name)
	if err != nil {
		panic(err)
	}
	if e.Pol.Ideal {
		lat = 0
	}
	rk := e.RemoteTails[ent.Prog.Name]
	r := ent.chain.req
	ent.sp.Seg(obs.SegDispatch, "atm", e.K.Now(), e.K.Now()+lat)
	e.K.After(lat, func() {
		ent.Prog = prog
		ent.PC = 0
		if rk == RemoteNone {
			e.resumeProgram(a, ent)
			return
		}
		if viaMediator {
			// Without arming, the mediator re-dispatches the response
			// trace when the message arrives; the full drawn wait
			// elapses (the mediator path has no timeout cutoff).
			wait := e.remoteWait(rk)
			r.bd.Remote += wait
			ent.sp.Seg(obs.SegRemote, "net", e.K.Now(), e.K.Now()+wait)
			e.K.After(wait, func() {
				e.mediate(ent, func() { e.deliver(ent, true) })
			})
			return
		}
		// AccelFlow arms the response trace in the accelerator's input
		// queue (§IV-B); the arrival triggers it directly.
		e.armTail(a, ent, rk, 0)
	})
}

// armTail arms the response trace and handles the three outcomes:
// arrival (the accelerator machinery resumes the chain), TCP timeout
// (optionally re-armed up to Cfg.TimeoutRearms times, modeling a
// retransmitted request), and arm rejection (no free queue slot: the
// response is serviced by a core in software when it arrives — it is
// back-pressure, not a timeout). Breakdown.Remote is charged with the
// time that actually elapses — min(wait, TCPTimeout) per armed window
// — never the full drawn wait of a lost response, so breakdown
// segments stay inside the request window on timeout paths.
func (e *Engine) armTail(a *accel.Accelerator, ent *entryState, rk RemoteKind, attempt int) {
	r := ent.chain.req
	wait := e.remoteWait(rk)
	w := wait
	if w > e.Cfg.TCPTimeout {
		w = e.Cfg.TCPTimeout
	}
	t0 := e.K.Now()
	res := a.Arm(ent.Entry, wait, func() {
		if attempt < e.Cfg.TimeoutRearms {
			e.Stats.TimeoutRearms++
			e.armTail(a, ent, rk, attempt+1)
			return
		}
		e.Stats.Timeouts++
		r.timedOut = true
		e.notifyCore(ent)
	})
	r.bd.Remote += w
	ent.sp.Seg(obs.SegRemote, "net", t0, t0+w)
	if res != accel.ArmRejected {
		return
	}
	e.Stats.ArmRejects++
	if wait > e.Cfg.TCPTimeout {
		// The response was lost as well; with or without a slot this
		// is a genuine timeout.
		e.K.After(w, func() {
			e.Stats.Timeouts++
			r.timedOut = true
			e.notifyCore(ent)
		})
		return
	}
	r.fellBack = true
	e.K.After(w, func() { e.cpuFallback(ent, 0) })
}

// remoteWait draws the time until the remote side's response arrives.
func (e *Engine) remoteWait(rk RemoteKind) sim.Time {
	var svc sim.Time
	switch rk {
	case RemoteCache:
		svc = e.Cfg.RemoteDBTime / 3
	case RemoteDB:
		svc = e.Cfg.RemoteDBTime
	case RemoteSvc:
		svc = e.Cfg.RemoteSvcTime
	default:
		return 0
	}
	w := e.Cfg.RemoteRTT + sim.Time(e.rng.LogNormal(float64(svc), 0.3))
	// Rare lost responses exercise the TCP timeout path (§VII-B.6
	// reports 3.2 timeouts per million requests). A fault injector can
	// raise the rate via Spec.RemoteLossRate.
	if e.rng.Bool(e.lossRate) {
		w = e.Cfg.TCPTimeout + sim.Microsecond
	}
	return w
}

// notifyDone is a pooled "charge Comm, then notify the core"
// continuation for the end-of-trace results DMA.
type notifyDone struct {
	eng  *Engine
	ent  *entryState
	t0   sim.Time
	next *notifyDone
	fn   func()
}

func (n *notifyDone) run() {
	e := n.eng
	ent := n.ent
	t0 := n.t0
	n.ent = nil
	n.next = e.freeNotify
	e.freeNotify = n
	ent.chain.req.bd.Comm += e.K.Now() - t0
	e.notifyCore(ent)
}

// finishTrace handles OpEnd: results DMA to memory, user-level
// notification to the initiating core, chain accounting. Under
// mediator policies the manager is interrupted first and forwards the
// completion to the CPU.
func (e *Engine) finishTrace(a *accel.Accelerator, ent *entryState) {
	if !e.Pol.ATMChaining {
		e.mediate(ent, func() { e.finishFin(a, ent) })
		return
	}
	e.finishFin(a, ent)
}

func (e *Engine) finishFin(a *accel.Accelerator, ent *entryState) {
	a.Stats.Notifies++
	n := e.freeNotify
	if n == nil {
		n = &notifyDone{eng: e}
		n.fn = n.run
	} else {
		e.freeNotify = n.next
	}
	n.ent = ent
	n.t0 = e.K.Now()
	e.DMA.ToMemory(a.Node, e.Place.MemNode(), ent.DataBytes, ent.sp, n.fn)
}

// notifyCore delivers the user-level completion notification (§IV-A:
// not an interrupt; the core polls or MWAITs) and completes the chain.
func (e *Engine) notifyCore(ent *entryState) {
	r := ent.chain.req
	d := e.Cfg.NotifyLatency() + e.Cfg.PollPickupDelay
	if e.Pol.Ideal {
		d = 0
	}
	r.bd.Comm += d
	ent.sp.Seg(obs.SegNotify, "core", e.K.Now(), e.K.Now()+d)
	e.K.After(d, func() {
		ent.sp.End()
		ent.chain.childDone(e)
	})
}

// dteTime is the Data Transform Engine's cost: a simplified (De)Ser
// engine streaming the payload (§V-2).
func (e *Engine) dteTime(bytes int) sim.Time {
	return sim.FromNanos(50 + float64(bytes)*0.2)
}

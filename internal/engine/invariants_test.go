package engine

import (
	"testing"
	"testing/quick"

	"accelflow/internal/config"
	"accelflow/internal/sim"
)

// TestPropertyRequestConservation: every submitted request completes
// exactly once, for any policy, payload distribution, flag mix, and
// queue sizing — the fundamental liveness invariant of the engine
// (starvation/deadlock freedom, §IV-A).
func TestPropertyRequestConservation(t *testing.T) {
	pols := allPolicies()
	f := func(polIdx uint8, payloadKB uint8, pComp uint8, small bool, n uint8) bool {
		pol := pols[int(polIdx)%len(pols)]
		cfg := config.Default()
		if small {
			// Tiny queues + few PEs exercise overflow and fallback.
			cfg.PEsPerAccel = 1
			cfg.InputQueueEntries = 2
			cfg.OverflowEntries = 1
		}
		k := sim.NewKernel()
		k.SetHooks(sim.Hooks{MaxEvents: 20_000_000})
		e, err := New(k, cfg, pol, Params{Seed: 11})
		if err != nil {
			return false
		}
		if err := e.Register(buildTestPrograms(), map[string]RemoteKind{"send": RemoteSvc}); err != nil {
			return false
		}
		reqs := int(n%40) + 1
		done := 0
		for i := 0; i < reqs; i++ {
			job := &Job{
				Service: "p",
				Steps: []Step{
					{Kind: StepChain, Trace: "recv"},
					{Kind: StepApp, App: sim.Microsecond},
					{Kind: StepChain, Trace: "send"},
				},
				Probs:         FlagProbs{PCompressed: float64(pComp%101) / 100, PFound: 1, PHit: 1},
				PayloadMedian: float64(payloadKB%64)*1024 + 128,
				PayloadSigma:  0.5,
			}
			e.Submit(job, func(Result) { done++ })
		}
		k.Run()
		return done == reqs
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestIdealNeverSlowerUnderLoad: the zero-overhead Ideal system must
// not have a worse tail than full AccelFlow at the same load.
func TestIdealNeverSlowerUnderLoad(t *testing.T) {
	p99 := func(pol Policy) sim.Time {
		k := sim.NewKernel()
		e, err := New(k, config.Default(), pol, Params{Seed: 13})
		if err != nil {
			t.Fatal(err)
		}
		if err := e.Register(buildTestPrograms(), nil); err != nil {
			t.Fatal(err)
		}
		var lats []sim.Time
		for i := 0; i < 300; i++ {
			at := sim.Time(i) * 2 * sim.Microsecond
			k.At(at, func() {
				e.Submit(simpleJob(Step{Kind: StepChain, Trace: "recv"}), func(r Result) {
					lats = append(lats, r.Latency)
				})
			})
		}
		k.Run()
		worst := sim.Time(0)
		for _, l := range lats {
			if l > worst {
				worst = l
			}
		}
		return worst
	}
	if ideal, af := p99(Ideal()), p99(AccelFlow()); ideal > af {
		t.Errorf("Ideal worst-case %v exceeds AccelFlow %v", ideal, af)
	}
}

// TestTenantIsolationUnderContention: with two tenants and a small
// per-tenant limit, both tenants' requests complete and the limit trips
// only for the flooding tenant's excess.
func TestTenantIsolationUnderContention(t *testing.T) {
	cfg := config.Default()
	cfg.TenantTraceLimit = 2
	k := sim.NewKernel()
	e, err := New(k, cfg, AccelFlow(), Params{Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Register(buildTestPrograms(), nil); err != nil {
		t.Fatal(err)
	}
	done := map[int]int{}
	for i := 0; i < 30; i++ {
		tn := i % 2
		j := simpleJob(Step{Kind: StepChain, Trace: "recv"})
		j.Tenant = tn
		e.Submit(j, func(Result) { done[tn]++ })
	}
	k.Run()
	if done[0] != 15 || done[1] != 15 {
		t.Errorf("completions per tenant = %v, want 15/15", done)
	}
	if e.Stats.FallbacksTenant == 0 {
		t.Error("tenant limit never engaged under the flood")
	}
	if e.TenantActive(0) != 0 || e.TenantActive(1) != 0 {
		t.Error("tenant counters leaked")
	}
	// Scratchpads were wiped when PEs alternated tenants (§IV-D).
	var wipes uint64
	for _, kd := range config.AllAccelKinds() {
		wipes += e.Accels[kd].Stats.TenantWipes
	}
	if wipes == 0 {
		t.Error("no tenant scratchpad wipes recorded")
	}
}

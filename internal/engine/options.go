package engine

import (
	"accelflow/internal/check"
	"accelflow/internal/fault"
	"accelflow/internal/obs"
)

// Option configures optional engine behavior. New takes options
// instead of growing its positional signature.
type Option func(*options)

type options struct {
	seed   int64
	obs    *obs.Sink
	faults *fault.Injector
	check  *check.Checker
}

func defaultOptions() options {
	return options{seed: 1}
}

// WithSeed sets the engine's RNG seed (flag draws, payload sizes,
// remote waits, TLB streams). The default is 1.
func WithSeed(seed int64) Option {
	return func(o *options) { o.seed = seed }
}

// WithObserver attaches an observability sink: the engine records a
// span per request / chain / accelerator entry with queue, dispatch,
// compute, DMA, NoC, and interrupt segments. A nil sink is valid and
// disables recording.
func WithObserver(s *obs.Sink) Option {
	return func(o *options) { o.obs = s }
}

// WithFaults attaches a fault injector: New wires it to the built
// accelerators, A-DMA pool, manager, ATM, and NoC, and schedules its
// windows on the kernel. A nil injector is valid and disables
// injection; an injector with Rate 0 attaches but schedules nothing,
// leaving results bit-identical to no injector.
func WithFaults(inj *fault.Injector) Option {
	return func(o *options) { o.faults = inj }
}

// WithChecker attaches a runtime invariant checker: New hooks it to
// the kernel's per-event observer and the engine's request accounting,
// and CheckEnd runs the per-resource end-of-run suite against it.
// Checker hooks only read state — they never touch RNG streams or
// schedule events — so an attached checker cannot change results. A
// nil checker is valid and disables checking (every call no-ops).
func WithChecker(c *check.Checker) Option {
	return func(o *options) { o.check = c }
}

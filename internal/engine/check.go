// End-of-run invariant suite: the engine knows every resource it
// built, so it — not the check package — enumerates them for the
// per-resource physics checks and adds the component-specific
// structural invariants (queue capacities, overflow bounds, fault
// windows fully reverted). check stays import-cycle-free this way:
// it depends only on sim, and the engine depends on it.
package engine

import (
	"accelflow/internal/check"
	"accelflow/internal/config"
	"accelflow/internal/sim"
)

// CheckedResources enumerates every sim.Resource the engine owns, in
// a deterministic order: cores, manager, central queue, per-accelerator
// PE pools and output dispatchers, the A-DMA pool, DRAM controllers,
// and inter-chiplet NoC links.
func (e *Engine) CheckedResources() []*sim.Resource {
	out := []*sim.Resource{e.Cores, e.Manager, e.CentralQ}
	for _, kd := range config.AllAccelKinds() {
		out = append(out, e.Accels[kd].PEs, e.Accels[kd].OutDisp)
	}
	out = append(out, e.DMA.Resource())
	out = append(out, e.Mem.Ctrls()...)
	out = append(out, e.Net.Links()...)
	return out
}

// CheckEnd runs the end-of-run invariant suite against the attached
// checker. It must be called at a drained horizon (all submitted
// requests completed): several invariants — busy-time conservation,
// queue drain, zero in-flight occupancy — only hold at quiescence.
// No-op when checking is disabled.
func (e *Engine) CheckEnd(c *check.Checker) {
	if !c.Enabled() {
		return
	}
	now := e.K.Now()

	for _, r := range e.CheckedResources() {
		c.CheckResource(r, now)
		if !r.Idle() {
			c.Violationf("resource-drain", r.Name, now,
				"%d queued and %d in service at a drained horizon",
				r.QueueLen(), r.InService())
		}
	}

	for _, kd := range config.AllAccelKinds() {
		a := e.Accels[kd]
		name := kd.String()
		if free := a.QueueFree(); free < 0 {
			c.Violationf("queue-capacity", name, now,
				"input queue overcommitted: %d free slots (cap %d, occupied %d, armed %d)",
				free, a.InQueueCap(), a.InQueueLen()-a.Armed(), a.Armed())
		}
		if a.OverflowLen() > a.OverflowCap() {
			c.Violationf("queue-capacity", name, now,
				"overflow area holds %d entries, capacity %d", a.OverflowLen(), a.OverflowCap())
		}
		if a.InQueueLen() != 0 || a.OverflowLen() != 0 {
			c.Violationf("resource-drain", name, now,
				"%d input-queue slots and %d overflow entries occupied at a drained horizon",
				a.InQueueLen(), a.OverflowLen())
		}
	}

	// Fault windows are refcounted apply/revert pairs bounded by the
	// spec horizon; at a drained horizon every mechanism must have
	// reverted to its baseline.
	if e.Faults != nil {
		if e.ATM.Stall() != 0 {
			c.Violationf("fault-revert", "atm", now,
				"ATM stall %v still applied after the run", e.ATM.Stall())
		}
		if s := e.Net.LatencyScale(); s != 1 {
			c.Violationf("fault-revert", "noc", now,
				"NoC latency scale %v still applied after the run", s)
		}
		if n := e.DMA.Engines(); n != e.Cfg.ADMAEngines {
			c.Violationf("fault-revert", "adma", now,
				"A-DMA pool at %d engines, configured %d", n, e.Cfg.ADMAEngines)
		}
		if n, want := e.Manager.Servers, maxInt(1, e.Cfg.ManagerWidth); n != want {
			c.Violationf("fault-revert", "manager", now,
				"manager at %d engines, configured %d", n, want)
		}
		for _, kd := range config.AllAccelKinds() {
			if e.Accels[kd].Failed() {
				c.Violationf("fault-revert", kd.String(), now,
					"accelerator still marked failed after the run")
			}
			if n, want := e.Accels[kd].PEs.Servers, e.Cfg.PEsFor(kd); n != want {
				c.Violationf("fault-revert", kd.String(), now,
					"PE pool at %d servers, configured %d", n, want)
			}
		}
	}

	// Tenant trace accounting must return to zero once every chain has
	// completed; a leak here silently tightens the §IV-D limit.
	for t, n := range e.tenantActive {
		if n != 0 {
			c.Violationf("conservation", "tenants", now,
				"tenant %d shows %d active traces at a drained horizon", t, n)
		}
	}

	if e.K.Pending() != 0 {
		c.Violationf("resource-drain", "kernel", now,
			"%d events still pending at a drained horizon", e.K.Pending())
	}
}

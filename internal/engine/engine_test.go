package engine

import (
	"testing"

	"accelflow/internal/config"
	"accelflow/internal/sim"
	"accelflow/internal/trace"
)

// testPrograms builds a tiny catalog: a receive trace with a branch, a
// send trace with a remote tail, its continuation, and a forking trace.
func testPrograms(t *testing.T) []*trace.Program {
	t.Helper()
	return buildTestPrograms()
}

func buildTestPrograms() []*trace.Program {
	return []*trace.Program{
		trace.New("recv").
			Seq(config.TCP, config.Decr, config.Dser).
			Branch(trace.CondCompressed, trace.Sub().Seq(config.Dcmp), nil).
			Seq(config.LdB).
			MustBuild(),
		trace.New("send").
			Seq(config.Ser, config.Encr, config.TCP).
			Tail("recv2").
			MustBuild(),
		trace.New("recv2").
			Seq(config.TCP, config.Decr, config.Dser, config.LdB).
			MustBuild(),
		trace.New("forky").
			Seq(config.Ser).
			Fork("side").
			Seq(config.Encr, config.TCP).
			MustBuild(),
		trace.New("side").
			Seq(config.Cmp, config.Ser).
			MustBuild(),
	}
}

func testEngine(t *testing.T, cfg *config.Config, pol Policy) *Engine {
	t.Helper()
	k := sim.NewKernel()
	e, err := New(k, cfg, pol, Params{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Register(testPrograms(t), map[string]RemoteKind{"send": RemoteSvc}); err != nil {
		t.Fatal(err)
	}
	return e
}

func simpleJob(steps ...Step) *Job {
	return &Job{
		Service: "test", Steps: steps,
		Probs:         FlagProbs{PCompressed: 0.0, PFound: 1, PHit: 1},
		PayloadMedian: 1024, PayloadSigma: 0.3,
	}
}

func allPolicies() []Policy {
	return []Policy{
		NonAcc(), CPUCentric(), RELIEF(), RELIEFPerTypeQ(), Direct(),
		CntrFlow(), AccelFlow(), AccelFlowEDF(), Ideal(),
		Cohort(DefaultCohortPairs()),
	}
}

func TestSingleChainCompletesUnderEveryPolicy(t *testing.T) {
	for _, pol := range allPolicies() {
		e := testEngine(t, config.Default(), pol)
		var got *Result
		e.Submit(simpleJob(Step{Kind: StepChain, Trace: "recv"}), func(r Result) { got = &r })
		e.K.Run()
		if got == nil {
			t.Fatalf("%s: request never completed", pol.Name)
		}
		if got.Latency <= 0 {
			t.Errorf("%s: nonpositive latency %v", pol.Name, got.Latency)
		}
		if pol.UseAccels && got.Accels != 4 {
			t.Errorf("%s: %d accels, want 4 (uncompressed recv)", pol.Name, got.Accels)
		}
	}
}

func TestRemoteTailChainCompletes(t *testing.T) {
	for _, pol := range allPolicies() {
		e := testEngine(t, config.Default(), pol)
		var got *Result
		e.Submit(simpleJob(Step{Kind: StepChain, Trace: "send"}), func(r Result) { got = &r })
		e.K.Run()
		if got == nil {
			t.Fatalf("%s: chained request never completed", pol.Name)
		}
		// The remote wait must show up in latency: at least the RTT.
		if got.Latency < config.Default().RemoteRTT {
			t.Errorf("%s: latency %v below remote RTT", pol.Name, got.Latency)
		}
		if pol.UseAccels && got.Accels != 7 {
			t.Errorf("%s: %d accels, want 7 (send 3 + recv2 4)", pol.Name, got.Accels)
		}
	}
}

func TestForkJoins(t *testing.T) {
	for _, pol := range allPolicies() {
		e := testEngine(t, config.Default(), pol)
		var got *Result
		e.Submit(simpleJob(Step{Kind: StepChain, Trace: "forky"}), func(r Result) { got = &r })
		e.K.Run()
		if got == nil {
			t.Fatalf("%s: forked request never completed", pol.Name)
		}
		if pol.UseAccels && got.Accels != 5 {
			t.Errorf("%s: %d accels, want 5 (forky 3 + side 2)", pol.Name, got.Accels)
		}
		if e.Stats.ForksSpawned != 1 {
			t.Errorf("%s: %d forks, want 1", pol.Name, e.Stats.ForksSpawned)
		}
	}
}

func TestBranchChangesPath(t *testing.T) {
	e := testEngine(t, config.Default(), AccelFlow())
	var plain, compressed *Result
	e.Submit(simpleJob(Step{Kind: StepChain, Trace: "recv"}), func(r Result) { plain = &r })
	e.K.Run()
	e2 := testEngine(t, config.Default(), AccelFlow())
	job := simpleJob(Step{Kind: StepChain, Trace: "recv"})
	job.Probs.PCompressed = 1.0
	e2.Submit(job, func(r Result) { compressed = &r })
	e2.K.Run()
	if plain.Accels != 4 || compressed.Accels != 5 {
		t.Errorf("accels = %d/%d, want 4/5", plain.Accels, compressed.Accels)
	}
	if compressed.Latency <= plain.Latency {
		t.Errorf("compressed path (%v) not slower than plain (%v)", compressed.Latency, plain.Latency)
	}
}

func TestAppStepsBreakdown(t *testing.T) {
	e := testEngine(t, config.Default(), AccelFlow())
	var got *Result
	e.Submit(simpleJob(
		Step{Kind: StepApp, App: 10 * sim.Microsecond},
		Step{Kind: StepChain, Trace: "recv"},
		Step{Kind: StepApp, App: 5 * sim.Microsecond},
	), func(r Result) { got = &r })
	e.K.Run()
	if got.Breakdown.App != 15*sim.Microsecond {
		t.Errorf("App = %v, want 15us", got.Breakdown.App)
	}
	if got.Breakdown.Accel <= 0 || got.Breakdown.Orch <= 0 || got.Breakdown.Comm <= 0 {
		t.Errorf("breakdown has empty components: %+v", got.Breakdown)
	}
	if got.Breakdown.Total() > got.Latency+got.Breakdown.Total()/10 {
		t.Errorf("breakdown total %v far exceeds latency %v", got.Breakdown.Total(), got.Latency)
	}
}

func TestNonAccTaxAttribution(t *testing.T) {
	e := testEngine(t, config.Default(), NonAcc())
	var got *Result
	e.Submit(simpleJob(Step{Kind: StepChain, Trace: "recv"}), func(r Result) { got = &r })
	e.K.Run()
	cfg := config.Default()
	for _, k := range []config.AccelKind{config.TCP, config.Decr, config.Dser, config.LdB} {
		if got.Breakdown.Tax[k] <= 0 {
			t.Errorf("Tax[%v] = 0 on the Non-acc path", k)
		}
	}
	if got.Breakdown.Accel != 0 {
		t.Error("Non-acc recorded accelerator time")
	}
	// CPU time should roughly equal the summed CPU costs.
	var want sim.Time
	for _, k := range []config.AccelKind{config.TCP, config.Decr, config.Dser, config.LdB} {
		want += cfg.CPUCost(k, 1024)
	}
	if got.Breakdown.CPU < want/2 {
		t.Errorf("CPU time %v implausibly below op-sum %v", got.Breakdown.CPU, want)
	}
}

func TestParallelStepJoins(t *testing.T) {
	e := testEngine(t, config.Default(), AccelFlow())
	var got *Result
	e.Submit(simpleJob(Step{Kind: StepParallel, Par: []string{"recv", "recv", "recv"}}), func(r Result) { got = &r })
	e.K.Run()
	if got == nil {
		t.Fatal("parallel request never completed")
	}
	if got.Accels != 12 {
		t.Errorf("accels = %d, want 12", got.Accels)
	}
	// Three parallel chains should finish in well under 3x one chain.
	e2 := testEngine(t, config.Default(), AccelFlow())
	var one *Result
	e2.Submit(simpleJob(Step{Kind: StepChain, Trace: "recv"}), func(r Result) { one = &r })
	e2.K.Run()
	if got.Latency >= 3*one.Latency {
		t.Errorf("parallel latency %v not overlapping (single %v)", got.Latency, one.Latency)
	}
}

func TestTenantLimitForcesFallback(t *testing.T) {
	cfg := config.Default()
	cfg.TenantTraceLimit = 1
	e := testEngine(t, cfg, AccelFlow())
	done := 0
	for i := 0; i < 4; i++ {
		e.Submit(simpleJob(Step{Kind: StepChain, Trace: "recv"}), func(Result) { done++ })
	}
	e.K.Run()
	if done != 4 {
		t.Fatalf("completed %d/4", done)
	}
	if e.Stats.FallbacksTenant == 0 {
		t.Error("tenant limit never tripped")
	}
	if e.TenantActive(0) != 0 {
		t.Errorf("tenant counter leaked: %d", e.TenantActive(0))
	}
}

func TestQueueSaturationFallsBackToCPU(t *testing.T) {
	cfg := config.Default()
	cfg.PEsPerAccel = 1
	cfg.InputQueueEntries = 2
	cfg.OverflowEntries = 2
	e := testEngine(t, cfg, AccelFlow())
	done := 0
	const n = 300
	for i := 0; i < n; i++ {
		e.Submit(simpleJob(Step{Kind: StepChain, Trace: "recv"}), func(Result) { done++ })
	}
	e.K.Run()
	if done != n {
		t.Fatalf("completed %d/%d", done, n)
	}
	if e.Stats.FallbacksQueue == 0 {
		t.Error("no queue fallbacks despite tiny queues under flood")
	}
}

func TestTimeoutPath(t *testing.T) {
	cfg := config.Default()
	// A timeout far below every remote service draw (9-25us lognormal)
	// makes everything time out; RTT shrinks with it to keep the
	// TCPTimeout > RemoteRTT validation rule satisfied.
	cfg.RemoteRTT = 100 * sim.Nanosecond
	cfg.TCPTimeout = 1 * sim.Microsecond
	e := testEngine(t, cfg, AccelFlow())
	var got *Result
	e.Submit(simpleJob(Step{Kind: StepChain, Trace: "send"}), func(r Result) { got = &r })
	e.K.Run()
	if got == nil {
		t.Fatal("timed-out request never completed")
	}
	if !got.TimedOut {
		t.Error("request did not report timeout")
	}
	if e.Stats.Timeouts != 1 {
		t.Errorf("Timeouts = %d, want 1", e.Stats.Timeouts)
	}
}

func TestMediatorCountsLadder(t *testing.T) {
	// Under Direct, branches and tails exist but the dispatcher cannot
	// resolve branches: mediator counters must tick.
	e := testEngine(t, config.Default(), Direct())
	var got *Result
	e.Submit(simpleJob(Step{Kind: StepChain, Trace: "recv"}), func(r Result) { got = &r })
	e.K.Run()
	if got == nil {
		t.Fatal("incomplete")
	}
	if e.Stats.MediatorBranches == 0 {
		t.Error("Direct policy resolved a branch without the mediator")
	}
	// Under CntrFlow the dispatcher resolves branches.
	e2 := testEngine(t, config.Default(), CntrFlow())
	e2.Submit(simpleJob(Step{Kind: StepChain, Trace: "recv"}), func(Result) {})
	e2.K.Run()
	if e2.Stats.MediatorBranches != 0 {
		t.Error("CntrFlow bounced a branch to the mediator")
	}
}

func TestPolicyLatencyOrdering(t *testing.T) {
	// On a single unloaded request with a branch, the ladder should not
	// get slower as capabilities are added.
	lat := map[string]sim.Time{}
	for _, pol := range []Policy{RELIEF(), Direct(), CntrFlow(), AccelFlow(), Ideal()} {
		e := testEngine(t, config.Default(), pol)
		job := simpleJob(Step{Kind: StepChain, Trace: "recv"})
		job.Probs.PCompressed = 1
		var got *Result
		e.Submit(job, func(r Result) { got = &r })
		e.K.Run()
		lat[pol.Name] = got.Latency
	}
	if !(lat["AccelFlow"] <= lat["CntrFlow"] && lat["CntrFlow"] <= lat["Direct"] && lat["Direct"] <= lat["RELIEF"]) {
		t.Errorf("ladder latency not monotone: %v", lat)
	}
	if lat["Ideal"] > lat["AccelFlow"] {
		t.Errorf("Ideal (%v) slower than AccelFlow (%v)", lat["Ideal"], lat["AccelFlow"])
	}
}

func TestGlueInstructionAccounting(t *testing.T) {
	e := testEngine(t, config.Default(), AccelFlow())
	for i := 0; i < 50; i++ {
		e.Submit(simpleJob(Step{Kind: StepChain, Trace: "recv"}), nil)
	}
	e.K.Run()
	var instrs, passes uint64
	for _, kd := range config.AllAccelKinds() {
		instrs += e.Accels[kd].Stats.GlueInstrs
		passes += e.Accels[kd].Stats.GluePasses
	}
	if passes == 0 {
		t.Fatal("no glue passes recorded")
	}
	mean := float64(instrs) / float64(passes)
	// §VII-B.2: typical pass ~15, average ~18, worst ~50.
	if mean < 12 || mean > 35 {
		t.Errorf("mean glue instructions = %.1f, want in [12,35]", mean)
	}
}

func TestEDFReordersUnderBacklog(t *testing.T) {
	cfg := config.Default()
	cfg.PEsPerAccel = 1
	e := testEngine(t, cfg, AccelFlowEDF())
	var order []string
	submit := func(name string, slo sim.Time) {
		j := simpleJob(Step{Kind: StepChain, Trace: "recv"})
		j.Service = name
		j.SLO = slo
		e.Submit(j, func(Result) { order = append(order, name) })
	}
	// Flood so queues build, with the tight-SLO job last.
	for i := 0; i < 10; i++ {
		submit("loose", 100*sim.Millisecond)
	}
	submit("tight", 50*sim.Microsecond)
	e.K.Run()
	if len(order) != 11 {
		t.Fatalf("completed %d/11", len(order))
	}
	pos := -1
	for i, n := range order {
		if n == "tight" {
			pos = i
		}
	}
	if pos > 5 {
		t.Errorf("tight-deadline job finished at position %d; EDF should promote it", pos)
	}
}

func TestUnregisteredTracePanics(t *testing.T) {
	e := testEngine(t, config.Default(), AccelFlow())
	defer func() {
		if recover() == nil {
			t.Error("unregistered trace did not panic")
		}
	}()
	e.Submit(simpleJob(Step{Kind: StepChain, Trace: "nope"}), nil)
	e.K.Run()
}

func TestInvalidConfigRejected(t *testing.T) {
	cfg := config.Default()
	cfg.Cores = 0
	if _, err := New(sim.NewKernel(), cfg, AccelFlow(), Params{}); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestDeterminism(t *testing.T) {
	run := func() sim.Time {
		e := testEngine(t, config.Default(), AccelFlow())
		var total sim.Time
		for i := 0; i < 20; i++ {
			e.Submit(simpleJob(Step{Kind: StepChain, Trace: "send"}), func(r Result) { total += r.Latency })
		}
		e.K.Run()
		return total
	}
	if run() != run() {
		t.Error("identical seeds produced different results")
	}
}

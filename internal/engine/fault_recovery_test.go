package engine

import (
	"sort"
	"testing"

	"accelflow/internal/config"
	"accelflow/internal/fault"
	"accelflow/internal/obs"
	"accelflow/internal/sim"
)

// faultEngine builds the standard test catalog with a fault injector.
// mod, when non-nil, adjusts the assembled Params before New.
func faultEngine(t *testing.T, cfg *config.Config, pol Policy, spec fault.Spec, mod func(*Params)) *Engine {
	t.Helper()
	k := sim.NewKernel()
	p := Params{Seed: 7, Faults: fault.New(spec, sim.DeriveSeed(7, "faults"))}
	if mod != nil {
		mod(&p)
	}
	e, err := New(k, cfg, pol, p)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Register(testPrograms(t), map[string]RemoteKind{"send": RemoteSvc}); err != nil {
		t.Fatal(err)
	}
	return e
}

func TestTimeoutRearmRetriesBeforeGivingUp(t *testing.T) {
	cfg := config.Default()
	cfg.TimeoutRearms = 2
	e := faultEngine(t, cfg, AccelFlow(), fault.Spec{RemoteLossRate: 1}, nil)
	var got *Result
	e.Submit(simpleJob(Step{Kind: StepChain, Trace: "send"}), func(r Result) { got = &r })
	e.K.Run()
	if got == nil {
		t.Fatal("request never completed")
	}
	// Every response is lost: the arm times out, re-arms twice, and
	// only the final attempt counts as a genuine timeout.
	if e.Stats.TimeoutRearms != 2 {
		t.Errorf("TimeoutRearms = %d, want 2", e.Stats.TimeoutRearms)
	}
	if e.Stats.Timeouts != 1 {
		t.Errorf("Timeouts = %d, want 1", e.Stats.Timeouts)
	}
	if !got.TimedOut {
		t.Error("request did not report the timeout")
	}
	// Each armed window charges one timeout's worth of remote wait.
	if want := 3 * cfg.TCPTimeout; got.Breakdown.Remote != want {
		t.Errorf("Remote = %v, want %v (3 armed windows)", got.Breakdown.Remote, want)
	}
}

func TestRearmedResponseCanStillArrive(t *testing.T) {
	// With losses disabled, TimeoutRearms must not change anything.
	cfg := config.Default()
	cfg.TimeoutRearms = 3
	e := testEngine(t, cfg, AccelFlow())
	var got *Result
	e.Submit(simpleJob(Step{Kind: StepChain, Trace: "send"}), func(r Result) { got = &r })
	e.K.Run()
	if got == nil || got.TimedOut {
		t.Fatalf("clean remote chain misbehaved: %+v", got)
	}
	if e.Stats.TimeoutRearms != 0 || e.Stats.Timeouts != 0 {
		t.Errorf("spurious rearms/timeouts: %d/%d", e.Stats.TimeoutRearms, e.Stats.Timeouts)
	}
}

func TestEnqueueBackoffDrainsTransientPressure(t *testing.T) {
	cfg := config.Default()
	cfg.PEsPerAccel = 1
	cfg.InputQueueEntries = 2
	cfg.OverflowEntries = 2
	cfg.TenantTraceLimit = 10000 // keep the tenant guard out of the way
	cfg.EnqueueBackoff = 200 * sim.Nanosecond
	e := testEngine(t, cfg, AccelFlow())
	done := 0
	const n = 300
	for i := 0; i < n; i++ {
		// "forky" is core-triggered (first accel is not TCP), so a full
		// queue surfaces as an Enqueue error and exercises the retry.
		e.Submit(simpleJob(Step{Kind: StepChain, Trace: "forky"}), func(Result) { done++ })
	}
	e.K.Run()
	if done != n {
		t.Fatalf("completed %d/%d", done, n)
	}
	if e.Stats.EnqueueBackoffs == 0 {
		t.Error("no delayed retries despite tiny queues under flood")
	}
}

func TestFailedAcceleratorTriggersCPUFallback(t *testing.T) {
	e := testEngine(t, config.Default(), AccelFlow())
	// Permanent failure of the chain's first accelerator: every chain
	// must complete through the CPU fallback path.
	e.Accels[config.TCP].SetFailed(true)
	var got *Result
	e.Submit(simpleJob(Step{Kind: StepChain, Trace: "recv"}), func(r Result) { got = &r })
	e.K.Run()
	if got == nil {
		t.Fatal("request on a failed accelerator never completed")
	}
	if !got.FellBack {
		t.Error("request did not report the fallback")
	}
	if e.Stats.FallbacksFailed == 0 {
		t.Error("FallbacksFailed did not count")
	}
	if got.Breakdown.CPU == 0 {
		t.Error("fallback ran without CPU time")
	}
}

func TestInjectedFaultWindowsStillCompleteAllRequests(t *testing.T) {
	cfg := config.Default()
	cfg.EnqueueBackoff = 100 * sim.Nanosecond
	cfg.TimeoutRearms = 1
	spec := fault.Spec{
		Rate:          200000, // dense windows so a short run sees many
		MeanWindow:    20 * sim.Microsecond,
		Horizon:       50 * sim.Millisecond,
		PEDegradeFrac: 0.5,
		PEFail:        true,
		ADMARemove:    2,
		ManagerStall:  true,
		ATMStall:      500 * sim.Nanosecond,
		NoCInflate:    4,
	}
	e := faultEngine(t, cfg, AccelFlow(), spec, nil)
	done := 0
	const n = 200
	for i := 0; i < n; i++ {
		e.Submit(simpleJob(Step{Kind: StepChain, Trace: "recv"}), func(Result) { done++ })
	}
	e.K.Run()
	if done != n {
		t.Fatalf("completed %d/%d under fault windows", done, n)
	}
	if e.Faults.Stats.Windows == 0 {
		t.Fatal("no fault windows fired during the run")
	}
	if e.Faults.Active() != 0 {
		t.Errorf("%d windows still open after the run", e.Faults.Active())
	}
}

func TestInvalidFaultSpecRejected(t *testing.T) {
	k := sim.NewKernel()
	_, err := New(k, config.Default(), AccelFlow(),
		Params{Seed: 1, Faults: fault.New(fault.Spec{Rate: -5}, 1)})
	if err == nil {
		t.Fatal("engine accepted an invalid fault spec")
	}
}

// TestSegmentsTileUnderTimeoutAndRejection extends the tiling invariant
// to the repaired accounting paths: a run forcing at least one genuine
// TCP timeout AND at least one arm rejection must still produce, for
// every request, segments that sum exactly to its latency without
// pairwise overlap. Before the fix the timeout path charged the full
// drawn wait (which never elapses), pushing segments past the request
// window.
func TestSegmentsTileUnderTimeoutAndRejection(t *testing.T) {
	cfg := config.Default()
	cfg.PageFaultRate = 0
	cfg.TLBHitRate = 1
	cfg.PEsPerAccel = 1
	cfg.InputQueueEntries = 1
	cfg.OverflowEntries = 1
	cfg.TCPTimeout = 30 * sim.Microsecond
	sink := obs.New()
	// Half the responses are lost: armed tails both time out (lost,
	// slot held) and get rejected (concurrent chains hold the single
	// input-queue slot when the tail arms).
	e := faultEngine(t, cfg, AccelFlow(), fault.Spec{RemoteLossRate: 0.5},
		func(p *Params) { p.Obs = sink })
	done := 0
	const n = 40
	for i := 0; i < n; i++ {
		e.Submit(simpleJob(Step{Kind: StepChain, Trace: "send"}), func(Result) { done++ })
	}
	e.K.Run()
	if done != n {
		t.Fatalf("completed %d/%d", done, n)
	}
	if e.Stats.Timeouts == 0 {
		t.Fatal("run forced no timeouts; the invariant is untested")
	}
	if e.Stats.ArmRejects == 0 {
		t.Fatal("run forced no arm rejections; the invariant is untested")
	}

	spans := sink.Spans()
	byID := map[int32]obs.SpanData{}
	children := map[int32][]int32{}
	for i := range spans {
		byID[spans[i].ID] = spans[i]
		if spans[i].Parent >= 0 {
			children[spans[i].Parent] = append(children[spans[i].Parent], spans[i].ID)
		}
	}
	requests := 0
	for _, sp := range spans {
		if sp.Kind != obs.SpanRequest {
			continue
		}
		requests++
		// Collect every segment in this request's span tree.
		var segs []obs.Seg
		stack := []int32{sp.ID}
		for len(stack) > 0 {
			id := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			segs = append(segs, byID[id].Segs...)
			stack = append(stack, children[id]...)
		}
		var sum sim.Time
		for _, g := range segs {
			if g.Start < sp.Start || g.End > sp.End {
				t.Fatalf("segment %v %s [%v,%v] outside request window [%v,%v]",
					g.Kind, g.Resource, g.Start, g.End, sp.Start, sp.End)
			}
			sum += g.End - g.Start
		}
		if lat := sp.End - sp.Start; sum != lat {
			t.Errorf("request %d: segments sum to %v, want latency %v", sp.ID, sum, lat)
		}
		sort.Slice(segs, func(i, j int) bool { return segs[i].Start < segs[j].Start })
		for i := 1; i < len(segs); i++ {
			if segs[i].Start < segs[i-1].End {
				t.Errorf("request %d: segments overlap: %v %s [%v,%v] and %v %s [%v,%v]",
					sp.ID,
					segs[i-1].Kind, segs[i-1].Resource, segs[i-1].Start, segs[i-1].End,
					segs[i].Kind, segs[i].Resource, segs[i].Start, segs[i].End)
			}
		}
	}
	if requests != n {
		t.Errorf("recorded %d request spans, want %d", requests, n)
	}
}

package engine

import (
	"accelflow/internal/accel"
	"accelflow/internal/config"
	"accelflow/internal/obs"
	"accelflow/internal/sim"
	"accelflow/internal/trace"
)

// cpuTraceSegment walks a program on the CPU from pc until a terminal
// or tail, returning the total CPU time, the per-kind tax attribution,
// forks encountered, and the tail name ("" for end).
func (e *Engine) cpuTraceSegment(prog *trace.Program, pc int, flags trace.Flags, bytes int) (total sim.Time, tax [config.NumAccelKinds]sim.Time, outBytes int, forks []string, tail string) {
	outBytes = bytes
	for {
		in := prog.Instrs[pc]
		switch in.Kind {
		case trace.OpInvoke:
			c := e.Cfg.CPUCost(in.Accel, outBytes)
			total += c
			tax[in.Accel] += c
			outBytes = accel.OutputBytes(e.Cfg, in.Accel, outBytes)
			pc++
		case trace.OpBranch:
			pc = prog.Next(pc, flags)
		case trace.OpTrans:
			// Format changes are cheap on the CPU too.
			t := sim.FromNanos(100 + float64(outBytes)*0.4)
			total += t
			pc++
		case trace.OpFork:
			forks = append(forks, in.TailName)
			pc++
		case trace.OpTail:
			return total, tax, outBytes, forks, in.TailName
		case trace.OpEnd:
			return total, tax, outBytes, forks, ""
		}
	}
}

// runChainOnCPU executes a whole trace chain on cores (the Non-acc
// architecture): each trace segment holds a core for its total CPU
// time; remote tails release the core during the wait.
func (e *Engine) runChainOnCPU(r *request, c *chainState, prog *trace.Program, flags trace.Flags, payload int) {
	e.runCPUSegment(r, c, prog, flags, payload)
}

func (e *Engine) runCPUSegment(r *request, c *chainState, prog *trace.Program, flags trace.Flags, bytes int) {
	total, tax, outBytes, forks, tail := e.cpuTraceSegment(prog, 0, flags, bytes)
	t0 := e.K.Now()
	e.Cores.Do(total, func() {
		r.bd.CPU += e.K.Now() - t0
		c.sp.QueuedSeg(obs.SegCPU, "cores", t0, total)
		for k := range tax {
			r.bd.Tax[k] += tax[k]
		}
		r.accels += countInvokes(prog, flags)
		for _, fn := range forks {
			fp, _, err := e.ATM.Read(fn)
			if err != nil {
				panic(err)
			}
			c.fork()
			e.Stats.ForksSpawned++
			e.runCPUSegment(r, c, fp, flags, outBytes)
		}
		if tail == "" {
			c.childDone(e)
			return
		}
		np, _, err := e.ATM.Read(tail)
		if err != nil {
			panic(err)
		}
		rk := e.RemoteTails[prog.Name]
		wait := e.remoteWait(rk)
		if wait > e.Cfg.TCPTimeout {
			// Lost response: only the timeout window elapses on this
			// server — charge that, not the full drawn wait.
			r.bd.Remote += e.Cfg.TCPTimeout
			e.Stats.Timeouts++
			r.timedOut = true
			c.sp.Seg(obs.SegRemote, "net", e.K.Now(), e.K.Now()+e.Cfg.TCPTimeout)
			e.K.After(e.Cfg.TCPTimeout, func() { c.childDone(e) })
			return
		}
		r.bd.Remote += wait
		c.sp.Seg(obs.SegRemote, "net", e.K.Now(), e.K.Now()+wait)
		e.K.After(wait, func() { e.runCPUSegment(r, c, np, flags, outBytes) })
	})
}

// countInvokes counts the accelerator ops executed on a path (the
// Non-acc runs still report Table IV-style op counts).
func countInvokes(prog *trace.Program, flags trace.Flags) int {
	a, _, _ := prog.Invocations(flags)
	return len(a)
}

// cpuFallback runs the remainder of the current trace on a core after
// an accelerator rejection (full queues and overflow areas, §IV-A) and
// then resumes the chain on the normal path.
func (e *Engine) cpuFallback(ent *entryState, fromPC int) {
	r := ent.chain.req
	c := ent.chain
	total, tax, outBytes, forks, tail := e.cpuTraceSegment(ent.Prog, fromPC, ent.Flags, ent.DataBytes)
	t0 := e.K.Now()
	prog := ent.Prog
	e.Cores.Do(total, func() {
		r.bd.CPU += e.K.Now() - t0
		ent.sp.QueuedSeg(obs.SegCPU, "cores", t0, total)
		for k := range tax {
			r.bd.Tax[k] += tax[k]
		}
		for _, fn := range forks {
			fp, _, err := e.ATM.Read(fn)
			if err != nil {
				panic(err)
			}
			c.fork()
			e.Stats.ForksSpawned++
			f := e.newEntry(r, c, fp, ent.Flags, outBytes)
			e.resumeAfterFallback(f)
		}
		if tail == "" {
			ent.sp.End()
			c.childDone(e)
			return
		}
		np, _, err := e.ATM.Read(tail)
		if err != nil {
			panic(err)
		}
		rk := e.RemoteTails[prog.Name]
		wait := e.remoteWait(rk)
		if wait > e.Cfg.TCPTimeout {
			// Same elapsed-time rule as runCPUSegment: a lost response
			// costs the timeout window, not the drawn wait.
			r.bd.Remote += e.Cfg.TCPTimeout
			e.Stats.Timeouts++
			r.timedOut = true
			ent.sp.End()
			c.sp.Seg(obs.SegRemote, "net", e.K.Now(), e.K.Now()+e.Cfg.TCPTimeout)
			e.K.After(e.Cfg.TCPTimeout, func() { c.childDone(e) })
			return
		}
		r.bd.Remote += wait
		ent.sp.End()
		c.sp.Seg(obs.SegRemote, "net", e.K.Now(), e.K.Now()+wait)
		e.K.After(wait, func() {
			nxt := e.newEntry(r, c, np, ent.Flags, outBytes)
			e.resumeAfterFallback(nxt)
		})
	})
}

// resumeAfterFallback re-enters the accelerated path for the next trace
// of a chain whose previous trace fell back to the CPU.
func (e *Engine) resumeAfterFallback(ent *entryState) {
	if !e.Pol.UseAccels {
		e.runCPUSegment(ent.chain.req, ent.chain, ent.Prog, ent.Flags, ent.DataBytes)
		return
	}
	if ent.Prog.Instrs[0].Kind != trace.OpInvoke {
		// Program starts with dispatcher-side logic; run it on the CPU
		// as well (rare: only fork bodies start with branches).
		e.cpuFallback(ent, 0)
		return
	}
	e.enqueueFromCore(ent)
}

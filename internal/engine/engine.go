// Package engine assembles the simulated AccelFlow server — cores,
// accelerator ensemble, A-DMA pool, ATM, interconnect, memory — and
// executes requests under one of the orchestration policies (Non-acc,
// CPU-Centric, RELIEF-like, Cohort-like, the Fig. 13 ladder, AccelFlow,
// Ideal).
package engine

import (
	"fmt"

	"accelflow/internal/accel"
	"accelflow/internal/atm"
	"accelflow/internal/check"
	"accelflow/internal/config"
	"accelflow/internal/fault"
	"accelflow/internal/mem"
	"accelflow/internal/noc"
	"accelflow/internal/obs"
	"accelflow/internal/sim"
	"accelflow/internal/trace"
)

// defaultRemoteLossRate is the paper's observed rate of lost remote
// responses: 3.2 TCP timeouts per million requests (§VII-B.6). A fault
// injector with Spec.RemoteLossRate > 0 overrides it for the run.
const defaultRemoteLossRate = 3.2e-6

// Engine is one simulated server under one policy.
type Engine struct {
	K   *sim.Kernel
	Cfg *config.Config
	Pol Policy

	Net   *noc.Network
	Place *noc.Placement
	Mem   *mem.Memory
	DMA   *accel.DMAPool
	ATM   *atm.ATM

	Cores    *sim.Resource
	Manager  *sim.Resource // RELIEF-like centralized manager
	CentralQ *sim.Resource // RELIEF base shared dispatch queue

	Accels [config.NumAccelKinds]*accel.Accelerator

	// RemoteTails classifies each trace's tail edge (set from the
	// service catalog).
	RemoteTails map[string]RemoteKind

	// Obs records per-request spans and segments when attached via
	// Params.Obs; nil disables recording (all obs calls no-op).
	Obs *obs.Sink

	// Faults is the attached injector (nil when injection is off).
	Faults *fault.Injector

	// Check is the attached runtime invariant checker (nil disables
	// checking; every check call no-ops on nil).
	Check *check.Checker

	rng          *sim.RNG
	tenantActive map[int]int
	lossRate     float64
	Stats        Stats

	// centralQDispatchCost is the serialization cost of the base
	// RELIEF single shared queue per dispatch.
	centralQDispatchCost sim.Time

	// Free lists recycling the hot-path continuation records (see
	// exec.go): glue passes, post-DMA deliveries, and post-results
	// notifications. An engine is single-threaded like its kernel, so
	// plain linked lists suffice.
	freeGlue   *gluePass
	freeComm   *commDone
	freeNotify *notifyDone
}

// New builds an engine for the given config and policy. Programs must
// be registered on the returned engine's ATM before submitting jobs.
// Behavior beyond the required arguments — RNG seed, observability,
// fault injection, invariant checking — is configured with Params
// (the zero value is valid).
func New(k *sim.Kernel, cfg *config.Config, pol Policy, p Params) (*Engine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := sim.NewRNG(p.Seed)
	e := &Engine{
		K: k, Cfg: cfg, Pol: pol,
		Net:          noc.NewNetwork(k, cfg),
		Place:        noc.NewPlacement(cfg),
		Mem:          mem.NewMemory(k, cfg),
		ATM:          atm.New(cfg.ATMReadLatency),
		Cores:        sim.NewResource(k, "cores", cfg.Cores, sim.FIFO),
		Manager:      sim.NewResource(k, "manager", maxInt(1, cfg.ManagerWidth), sim.FIFO),
		CentralQ:     sim.NewResource(k, "centralq", 1, sim.FIFO),
		RemoteTails:  map[string]RemoteKind{},
		rng:          rng,
		tenantActive: map[int]int{},
		lossRate:     defaultRemoteLossRate,

		centralQDispatchCost: sim.FromNanos(150),
	}
	e.DMA = accel.NewDMAPool(k, cfg, e.Net, e.Mem)
	disc := sim.FIFO
	if pol.EDF {
		disc = sim.EDF
	}
	for _, kd := range config.AllAccelKinds() {
		a := accel.New(k, cfg, kd, e.Place.AccelNode(kd), rng.Fork(int64(kd)+100), disc)
		e.Accels[kd] = a
	}
	e.Obs = p.Obs
	e.Obs.SetClock(k)
	if e.Obs != nil {
		// Event-granular ATM visibility: every continuation-trace read
		// lands a point on the cumulative-reads timeline.
		atmRef := e.ATM
		sink := e.Obs
		atmRef.OnRead = func(string, sim.Time) {
			sink.Sample("atm.reads", k.Now(), float64(atmRef.Reads))
		}
	}
	if p.Faults != nil {
		if err := p.Faults.Spec.Validate(); err != nil {
			return nil, err
		}
		p.Faults.Attach(k, fault.Targets{
			Accels:  e.Accels,
			DMA:     e.DMA,
			Manager: e.Manager,
			ATM:     e.ATM,
			Net:     e.Net,
			Sink:    e.Obs,
		})
		if lr := p.Faults.Spec.RemoteLossRate; lr > 0 {
			e.lossRate = lr
		}
		e.Faults = p.Faults
	}
	if p.Check != nil {
		e.Check = p.Check
		// The kernel hook is only installed when checking is on, so the
		// disabled hot loop pays a single nil comparison per event.
		// Layered through the hooks getter so knobs the caller already
		// installed (e.g. a MaxEvents tripwire) survive.
		h := k.Hooks()
		h.OnEvent = e.Check.Event
		k.SetHooks(h)
	}
	return e, nil
}

// Register adds trace programs and their tail classifications.
func (e *Engine) Register(programs []*trace.Program, remote map[string]RemoteKind) error {
	for _, p := range programs {
		if err := e.ATM.Register(p); err != nil {
			return err
		}
	}
	for name, rk := range remote {
		e.RemoteTails[name] = rk
	}
	return nil
}

// Submit runs one request; done receives the result when it completes.
func (e *Engine) Submit(job *Job, done func(Result)) {
	e.Stats.Requests++
	e.Check.RequestAdmitted()
	r := &request{eng: e, job: job, arrived: e.K.Now(), done: done}
	r.sp = e.Obs.BeginRequest(job.Service)
	if job.SLO > 0 {
		r.deadline = e.K.Now() + job.SLO
	}
	r.runStep(0)
}

// request tracks one in-flight job.
type request struct {
	eng      *Engine
	job      *Job
	arrived  sim.Time
	deadline sim.Time
	done     func(Result)
	sp       *obs.Span

	bd       Breakdown
	accels   int
	fellBack bool
	timedOut bool
}

func (r *request) runStep(i int) {
	if i >= len(r.job.Steps) {
		r.finish()
		return
	}
	st := r.job.Steps[i]
	switch st.Kind {
	case StepApp:
		hold := r.eng.Cfg.AppCost(st.App)
		start := r.eng.K.Now()
		ssp := r.sp.Child(obs.SpanStep, "app")
		r.eng.Cores.Do(hold, func() {
			r.bd.CPU += r.eng.K.Now() - start
			r.bd.App += hold
			ssp.QueuedSeg(obs.SegCPU, "cores", start, hold)
			ssp.End()
			r.runStep(i + 1)
		})
	case StepChain:
		// Build the label only when a sink is attached: Child on a nil
		// span no-ops, but the concat argument would still allocate.
		var ssp *obs.Span
		if r.sp != nil {
			ssp = r.sp.Child(obs.SpanStep, "chain:"+st.Trace)
		}
		r.eng.startChain(r, ssp, st.Trace, r.stepProbs(st), func() {
			ssp.End()
			r.runStep(i + 1)
		})
	case StepParallel:
		n := len(st.Par)
		if n == 0 {
			r.runStep(i + 1)
			return
		}
		ssp := r.sp.Child(obs.SpanStep, "parallel")
		remaining := n
		for _, tn := range st.Par {
			r.eng.startChain(r, ssp, tn, r.stepProbs(st), func() {
				remaining--
				if remaining == 0 {
					ssp.End()
					r.runStep(i + 1)
				}
			})
		}
	default:
		panic(fmt.Sprintf("engine: unknown step kind %d", st.Kind))
	}
}

func (r *request) finish() {
	r.sp.End()
	r.eng.Check.RequestDone(r.timedOut, r.fellBack)
	res := Result{
		Latency:   r.eng.K.Now() - r.arrived,
		Breakdown: r.bd,
		Accels:    r.accels,
		FellBack:  r.fellBack,
		TimedOut:  r.timedOut,
	}
	if r.done != nil {
		r.done(res)
	}
}

// stepProbs picks the step's probability override or the job default.
func (r *request) stepProbs(st Step) FlagProbs {
	if st.Probs != nil {
		return *st.Probs
	}
	return r.job.Probs
}

// startChain launches one trace chain (following tails and forks) and
// calls stepDone when the chain — including all its forks — completes.
// parent is the enclosing step span (nil when unobserved).
func (e *Engine) startChain(r *request, parent *obs.Span, traceName string, probs FlagProbs, stepDone func()) {
	e.Stats.ChainsStarted++
	prog, ok := e.ATM.Lookup(traceName)
	if !ok {
		panic(fmt.Sprintf("engine: trace %q not registered", traceName))
	}
	flags := probs.Draw(e.rng)
	payload := int(e.rng.LogNormal(r.job.PayloadMedian, r.job.PayloadSigma))
	if payload < 64 {
		payload = 64
	}
	c := &chainState{req: r, outstanding: 1, done: stepDone}
	c.sp = parent.Child(obs.SpanChain, traceName)

	// Tenant trace-count limit (§IV-D): at the threshold the trace
	// cannot be initiated and falls back to the CPU.
	t := r.job.Tenant
	if e.tenantActive[t] >= e.Cfg.TenantTraceLimit {
		e.Stats.FallbacksTenant++
		r.fellBack = true
		ent := e.newEntry(r, c, prog, flags, payload)
		e.cpuFallback(ent, 0)
		return
	}
	e.tenantActive[t]++
	c.tenant = t
	c.counted = true

	if !e.Pol.UseAccels {
		e.runChainOnCPU(r, c, prog, flags, payload)
		return
	}
	ent := e.newEntry(r, c, prog, flags, payload)
	// Receive-type traces (first accelerator TCP at PC 0 with the
	// request arriving from the network) are triggered by the message:
	// no core Enqueue. Everything else is core-triggered.
	if prog.Instrs[0].Kind == trace.OpInvoke && prog.Instrs[0].Accel == config.TCP {
		e.deliver(ent, true)
		return
	}
	e.enqueueFromCore(ent)
}

// chainState joins a chain's main path and its forks.
type chainState struct {
	req         *request
	tenant      int
	counted     bool
	outstanding int
	done        func()
	sp          *obs.Span
}

func (c *chainState) fork() { c.outstanding++ }

func (c *chainState) childDone(e *Engine) {
	c.outstanding--
	if c.outstanding == 0 {
		if c.counted {
			e.tenantActive[c.tenant]--
		}
		c.sp.End()
		if c.done != nil {
			c.done()
		}
	}
}

// entryState wraps an accel.Entry with its chain bookkeeping.
type entryState struct {
	*accel.Entry
	chain   *chainState
	retries int
	sp      *obs.Span
}

func (e *Engine) newEntry(r *request, c *chainState, prog *trace.Program, f trace.Flags, payload int) *entryState {
	ent := &entryState{
		Entry: &accel.Entry{
			Prog: prog, PC: 0, Flags: f,
			DataBytes: payload, Tenant: r.job.Tenant,
			Deadline: r.deadline, EnqueuedAt: e.K.Now(),
		},
		chain: c,
	}
	ent.sp = c.sp.Child(obs.SpanEntry, prog.Name)
	ent.Entry.Span = ent.sp
	ent.Entry.UserData = ent
	return ent
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// TenantActive reports the live trace count for a tenant (tests).
func (e *Engine) TenantActive(t int) int { return e.tenantActive[t] }

package engine

import (
	"fmt"

	"accelflow/internal/config"
	"accelflow/internal/control"
)

// ControlPools exposes the engine's scalable capacity pools to the
// dynamic-control subsystem as ready-wired actuators. For the PE
// target each accelerator kind's pool carries a Set closure that
// composes with the attached fault injector (nil-safe): scaling
// rebases the injector so open and future degrade windows compute
// their offline fraction from — and revert to — the controller's
// level, and any currently-offline PEs are deducted from the newly
// applied count. The cores target needs no composition (fault windows
// never resize the core pool).
func (e *Engine) ControlPools(target string) ([]control.Pool, error) {
	switch target {
	case control.TargetPE:
		inj := e.Faults
		pools := make([]control.Pool, 0, config.NumAccelKinds)
		for _, kd := range config.AllAccelKinds() {
			a := e.Accels[kd]
			if a == nil {
				continue
			}
			res := a.PEs
			pools = append(pools, control.Pool{
				Res:  res,
				Base: res.Servers,
				Set: func(n int) {
					inj.RebasePEs(kd, n)
					res.SetServers(n - inj.PEOffline(kd))
				},
			})
		}
		return pools, nil
	case control.TargetCores:
		return []control.Pool{{Res: e.Cores, Base: e.Cores.Servers}}, nil
	default:
		return nil, fmt.Errorf("engine: unsupported autoscale target %q (single-server runs scale %q or %q)",
			target, control.TargetPE, control.TargetCores)
	}
}

package engine

import (
	"sort"
	"testing"

	"accelflow/internal/config"
	"accelflow/internal/obs"
	"accelflow/internal/sim"
	"accelflow/internal/trace"
)

// TestSpanSegmentsTileRequestLatency drives one fully serial request —
// a Seq-only trace, an inline-sized payload, no page faults, no TLB
// misses, no remote tails — so every picosecond of the request belongs
// to exactly one recorded segment. The segment durations must sum to
// the end-to-end latency with no pairwise overlap.
func TestSpanSegmentsTileRequestLatency(t *testing.T) {
	prog := trace.New("serialchain").
		Seq(config.TCP, config.Decr, config.RPC, config.Dser).
		MustBuild()
	cfg := config.Default()
	cfg.PageFaultRate = 0
	cfg.TLBHitRate = 1
	sink := obs.New()
	k := sim.NewKernel()
	e, err := New(k, cfg, AccelFlow(), Params{Seed: 5, Obs: sink})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Register([]*trace.Program{prog}, nil); err != nil {
		t.Fatal(err)
	}
	var lat sim.Time
	e.Submit(&Job{
		Service: "svc",
		Steps: []Step{
			{Kind: StepChain, Trace: "serialchain"},
			{Kind: StepApp, App: 5 * sim.Microsecond},
		},
		PayloadMedian: 400, PayloadSigma: 0,
	}, func(r Result) { lat = r.Latency })
	k.Run()

	if lat <= 0 {
		t.Fatalf("request latency %v", lat)
	}
	spans := sink.Spans()
	byID := map[int32]obs.SpanData{}
	var root *obs.SpanData
	for i := range spans {
		byID[spans[i].ID] = spans[i]
		if spans[i].Kind == obs.SpanRequest {
			if root != nil {
				t.Fatal("more than one request span")
			}
			root = &spans[i]
		}
	}
	if root == nil {
		t.Fatal("no request span recorded")
	}
	if got := root.End - root.Start; got != lat {
		t.Fatalf("request span window %v, want latency %v", got, lat)
	}

	// Tree shape: every child window nests inside its parent's.
	var segs []obs.Seg
	for _, sp := range spans {
		if sp.Parent >= 0 {
			p, ok := byID[sp.Parent]
			if !ok {
				t.Fatalf("span %d has unknown parent %d", sp.ID, sp.Parent)
			}
			if sp.Start < p.Start || sp.End > p.End {
				t.Errorf("span %d [%v,%v] escapes parent %d [%v,%v]",
					sp.ID, sp.Start, sp.End, p.ID, p.Start, p.End)
			}
		}
		segs = append(segs, sp.Segs...)
	}

	// Exact tiling: segments sum to the latency and never overlap.
	var sum sim.Time
	for _, g := range segs {
		if g.End <= g.Start {
			t.Errorf("empty segment %v %s [%v,%v]", g.Kind, g.Resource, g.Start, g.End)
		}
		if g.Start < root.Start || g.End > root.End {
			t.Errorf("segment %v %s [%v,%v] outside request window [%v,%v]",
				g.Kind, g.Resource, g.Start, g.End, root.Start, root.End)
		}
		sum += g.End - g.Start
	}
	if sum != lat {
		t.Errorf("segments sum to %v, want request latency %v", sum, lat)
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].Start < segs[j].Start })
	for i := 1; i < len(segs); i++ {
		if segs[i].Start < segs[i-1].End {
			t.Errorf("segments overlap: %v %s [%v,%v] and %v %s [%v,%v]",
				segs[i-1].Kind, segs[i-1].Resource, segs[i-1].Start, segs[i-1].End,
				segs[i].Kind, segs[i].Resource, segs[i].Start, segs[i].End)
		}
	}
}

// TestObserverDoesNotPerturbResults runs the same submission with and
// without a sink attached; enabling observability must not change the
// simulated outcome.
func TestObserverDoesNotPerturbResults(t *testing.T) {
	run := func(sink *obs.Sink) sim.Time {
		prog := trace.New("chain").
			Seq(config.TCP, config.Decr, config.RPC).
			MustBuild()
		k := sim.NewKernel()
		e, err := New(k, config.Default(), AccelFlow(), Params{Seed: 9, Obs: sink})
		if err != nil {
			t.Fatal(err)
		}
		if err := e.Register([]*trace.Program{prog}, nil); err != nil {
			t.Fatal(err)
		}
		var total sim.Time
		for i := 0; i < 20; i++ {
			e.Submit(&Job{
				Service:       "svc",
				Steps:         []Step{{Kind: StepChain, Trace: "chain"}},
				PayloadMedian: 1500, PayloadSigma: 0.6,
			}, func(r Result) { total += r.Latency })
		}
		k.Run()
		return total
	}
	if plain, observed := run(nil), run(obs.New()); plain != observed {
		t.Errorf("observer changed results: %v without vs %v with", plain, observed)
	}
}

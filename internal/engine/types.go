package engine

import (
	"accelflow/internal/config"
	"accelflow/internal/sim"
	"accelflow/internal/trace"
)

// StepKind classifies the elements of a service's execution path
// (paper Table IV).
type StepKind int

const (
	// StepApp runs application logic on a core.
	StepApp StepKind = iota
	// StepChain starts one trace chain (tails followed automatically).
	StepChain
	// StepParallel starts several trace chains concurrently and joins
	// them (e.g. CPost's "4x(T9-T10)").
	StepParallel
)

// Step is one element of a request's execution path.
type Step struct {
	Kind StepKind
	// App is the nominal app-logic duration (scaled by generation).
	App sim.Time
	// Trace is the starting trace name for StepChain.
	Trace string
	// Par lists the starting traces of StepParallel.
	Par []string
	// Probs, when non-nil, overrides the job's flag probabilities for
	// the chains of this step (services whose legs differ, e.g. a
	// compressed timeline read next to a plain nested RPC).
	Probs *FlagProbs
}

// FlagProbs gives the per-request probabilities of each payload flag;
// the engine draws one flag set per trace chain.
type FlagProbs struct {
	PCompressed  float64
	PHit         float64
	PFound       float64
	PException   float64
	PCCompressed float64
}

// Draw samples a flag set.
func (p FlagProbs) Draw(rng *sim.RNG) trace.Flags {
	var f trace.Flags
	if rng.Bool(p.PCompressed) {
		f |= trace.FlagCompressed
	}
	if rng.Bool(p.PHit) {
		f |= trace.FlagHit
	}
	if rng.Bool(p.PFound) {
		f |= trace.FlagFound
	}
	if rng.Bool(p.PException) {
		f |= trace.FlagException
	}
	if rng.Bool(p.PCCompressed) {
		f |= trace.FlagCCompressed
	}
	return f
}

// Common returns the most likely flag set (each bit set iff its
// probability exceeds 1/2), defining the "most common execution path"
// of Table IV.
func (p FlagProbs) Common() trace.Flags {
	var f trace.Flags
	if p.PCompressed > 0.5 {
		f |= trace.FlagCompressed
	}
	if p.PHit > 0.5 {
		f |= trace.FlagHit
	}
	if p.PFound > 0.5 {
		f |= trace.FlagFound
	}
	if p.PException > 0.5 {
		f |= trace.FlagException
	}
	if p.PCCompressed > 0.5 {
		f |= trace.FlagCCompressed
	}
	return f
}

// RemoteKind classifies what a trace's ATM tail waits for before the
// continuation fires (DESIGN.md: the far side of nested messages is a
// latency model).
type RemoteKind int

const (
	// RemoteNone: the continuation loads immediately (same dispatcher).
	RemoteNone RemoteKind = iota
	// RemoteCache: round trip to the database cache.
	RemoteCache
	// RemoteDB: round trip to the database.
	RemoteDB
	// RemoteSvc: round trip to a peer microservice (nested RPC/HTTP).
	RemoteSvc
)

// Job is one request instance submitted to the engine.
type Job struct {
	Service string
	Steps   []Step
	Probs   FlagProbs

	// PayloadMedian/Sigma parameterize the lognormal payload size of
	// each chain (Fig. 5's small-median, long-tail shape).
	PayloadMedian float64
	PayloadSigma  float64

	Tenant int
	// SLO, if nonzero, sets the deadline used by EDF scheduling.
	SLO sim.Time
}

// Breakdown attributes a request's end-to-end time to the Fig. 17
// components. Queue time is folded into the component that waited.
type Breakdown struct {
	CPU   sim.Time // app logic + tax run on cores (Non-acc/fallback)
	Accel sim.Time // PE occupancy
	Orch  sim.Time // dispatcher glue, manager, interrupts, enqueues
	Comm  sim.Time // DMA, NoC, memory moves, notifications
	// Remote is time waiting for the far side of nested RPC/DB/HTTP
	// messages — part of latency but not of this server's work, so it
	// is excluded from Total (Fig. 17 reports on-server components).
	Remote sim.Time

	// App isolates the application-logic part of CPU, and Tax records
	// per-category tax time, for the Fig. 1 breakdown.
	App sim.Time
	Tax [config.NumAccelKinds]sim.Time
}

// Total sums the attributed components (excludes pure queueing).
func (b Breakdown) Total() sim.Time { return b.CPU + b.Accel + b.Orch + b.Comm }

// Result reports one completed request.
type Result struct {
	Latency   sim.Time
	Breakdown Breakdown
	// Accels counts accelerator invocations performed (Table IV).
	Accels int
	// FellBack reports whether any part ran on the CPU fallback path.
	FellBack bool
	// TimedOut reports a TCP armed-trace timeout (§IV-B).
	TimedOut bool
}

// Stats aggregates engine-level counters across a run.
type Stats struct {
	Requests         uint64
	FallbacksQueue   uint64 // input queue + overflow full
	FallbacksTenant  uint64 // tenant trace limit (§IV-D)
	FallbacksFault   uint64 // page faults
	FallbacksFailed  uint64 // accelerator in a failure window (fault injection)
	Timeouts         uint64 // genuine TCP timeouts (lost responses)
	ArmRejects       uint64 // response-trace arms refused for lack of a queue slot
	TimeoutRearms    uint64 // re-arm attempts after a TCP timeout (Cfg.TimeoutRearms)
	EnqueueBackoffs  uint64 // delayed Enqueue retries (Cfg.EnqueueBackoff)
	ChainsStarted    uint64
	ForksSpawned     uint64
	MediatorBranches uint64
	MediatorTails    uint64
	MediatorTrans    uint64
}

package engine

import "accelflow/internal/config"

// HopKind selects how data and control move from one accelerator to the
// next in a sequence (paper §III, Fig. 3).
type HopKind int

const (
	// HopDirect: the output dispatcher forwards the queue entry to the
	// next accelerator with an A-DMA engine (Direct / AccelFlow).
	HopDirect HopKind = iota
	// HopManager: a centralized hardware manager is interrupted after
	// every accelerator and programs the next one (RELIEF-like).
	HopManager
	// HopCPU: the initiating core is interrupted after every
	// accelerator and invokes the next one (CPU-Centric).
	HopCPU
	// HopSWQueue: the core orchestrates through polled shared-memory
	// software queues; statically linked pairs chain directly
	// (Cohort-like).
	HopSWQueue
)

// Mediator selects who resolves branches, transforms, and trace tails
// when the output dispatcher is not capable under the policy.
type Mediator int

const (
	// MedManager: the hardware manager mediates.
	MedManager Mediator = iota
	// MedCPU: a CPU core mediates.
	MedCPU
)

// Policy describes one orchestration architecture as a set of
// capabilities. The Fig. 13 ablation ladder is expressed by enabling
// them one at a time.
type Policy struct {
	Name string

	// UseAccels false runs every tax op on the CPU (Non-acc).
	UseAccels bool

	Hop      HopKind
	Mediator Mediator

	// SharedQueue funnels every accelerator dispatch through one
	// centralized queue (base RELIEF in Fig. 13); otherwise each
	// accelerator type has its own queue (PerAccTypeQ).
	SharedQueue bool

	// DispatcherBranch lets output dispatchers resolve trace branches
	// (CntrFlow); otherwise branches bounce to the mediator.
	DispatcherBranch bool

	// DispatcherTransform lets output dispatchers run data-format
	// transformations and handle >2KB payloads without the mediator
	// (full AccelFlow).
	DispatcherTransform bool

	// ATMChaining lets output dispatchers load continuation traces
	// from the ATM; otherwise trace ends return to the mediator.
	ATMChaining bool

	// CohortPairs statically links directed accelerator pairs for
	// direct chaining under HopSWQueue.
	CohortPairs map[[2]config.AccelKind]bool

	// Ideal zeroes all orchestration overheads (Fig. 14's Ideal bar):
	// accelerators still compute and move data, but glue logic,
	// enqueues, ATM reads, and transform engines are free.
	Ideal bool

	// EDF enables the deadline-aware input-dispatcher scheduling of
	// §IV-C instead of FIFO.
	EDF bool
}

// NonAcc runs everything on the CPU cores.
func NonAcc() Policy {
	return Policy{Name: "Non-acc"}
}

// CPUCentric interrupts a core after every accelerator (§III).
func CPUCentric() Policy {
	return Policy{
		Name: "CPU-Centric", UseAccels: true,
		Hop: HopCPU, Mediator: MedCPU,
	}
}

// RELIEF is the hardware-manager state of the art: centralized
// scheduling, one shared dispatch queue, data through memory.
func RELIEF() Policy {
	return Policy{
		Name: "RELIEF", UseAccels: true,
		Hop: HopManager, Mediator: MedManager, SharedQueue: true,
	}
}

// RELIEFPerTypeQ is the first Fig. 13 ladder step: RELIEF with one
// queue per accelerator type.
func RELIEFPerTypeQ() Policy {
	p := RELIEF()
	p.Name = "PerAccTypeQ"
	p.SharedQueue = false
	return p
}

// Direct is the second ladder step: traces with direct
// accelerator-to-accelerator transfers; branches, transforms, and large
// payloads still fall back to the manager.
func Direct() Policy {
	p := RELIEFPerTypeQ()
	p.Name = "Direct"
	p.Hop = HopDirect
	p.ATMChaining = true
	return p
}

// CntrFlow is the third ladder step: dispatchers also resolve branches.
func CntrFlow() Policy {
	p := Direct()
	p.Name = "CntrFlow"
	p.DispatcherBranch = true
	return p
}

// AccelFlow is the full design: dispatchers additionally perform data
// transformations and large-payload handling.
func AccelFlow() Policy {
	p := CntrFlow()
	p.Name = "AccelFlow"
	p.DispatcherTransform = true
	return p
}

// AccelFlowEDF is AccelFlow with the deadline-aware scheduling policy
// of §IV-C.
func AccelFlowEDF() Policy {
	p := AccelFlow()
	p.Name = "AccelFlow-EDF"
	p.EDF = true
	return p
}

// Ideal is AccelFlow with zero orchestration cost (Fig. 14).
func Ideal() Policy {
	p := AccelFlow()
	p.Name = "Ideal"
	p.Ideal = true
	return p
}

// Cohort links the most frequent pairs for direct chaining and runs
// everything else through core-polled software queues.
func Cohort(pairs [][2]config.AccelKind) Policy {
	m := map[[2]config.AccelKind]bool{}
	for _, p := range pairs {
		m[p] = true
	}
	return Policy{
		Name: "Cohort", UseAccels: true,
		Hop: HopSWQueue, Mediator: MedCPU,
		CohortPairs: m,
	}
}

// DefaultCohortPairs are the three most frequent adjacent pairs in the
// service trace catalog (see DESIGN.md): Encr->TCP (every send),
// TCP->Decr (every receive), Ser->Encr (send path).
func DefaultCohortPairs() [][2]config.AccelKind {
	return [][2]config.AccelKind{
		{config.Encr, config.TCP},
		{config.TCP, config.Decr},
		{config.Ser, config.Encr},
	}
}

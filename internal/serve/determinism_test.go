package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"testing"

	"accelflow/internal/experiments"
	"accelflow/internal/obs"
	"accelflow/internal/sim"
	"accelflow/internal/workload"
)

// TestDeterminismExperimentOverHTTP: an experiment submitted through
// the daemon produces exactly the Values a direct Registry invocation
// with the same options produces — HTTP adds transport, not noise.
func TestDeterminismExperimentOverHTTP(t *testing.T) {
	_, ts := testServer(t, Config{Workers: 1, QueueDepth: 2}, nil)

	id := submitAndWait(t, ts.URL,
		`{"type":"experiment","experiment":"fig19","quick":true,"requests":40,"seed":3,"parallelism":2}`)
	var got struct {
		Values map[string]float64 `json:"values"`
		Lines  []string           `json:"lines"`
	}
	body := fetchBytes(t, ts.URL+"/v1/jobs/"+id+"/values")
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatal(err)
	}

	want, err := experiments.Registry["fig19"](experiments.Options{
		Requests: 40, Seed: 3, Quick: true, Parallelism: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Values) != len(want.Values) {
		t.Fatalf("daemon returned %d values, direct run %d", len(got.Values), len(want.Values))
	}
	for k, w := range want.Values {
		g, ok := got.Values[k]
		if !ok {
			t.Errorf("daemon values missing %q", k)
			continue
		}
		if g != w && !(math.IsNaN(g) && math.IsNaN(w)) {
			t.Errorf("value %q: daemon %v, direct %v", k, g, w)
		}
	}
	if len(got.Lines) != len(want.Lines) {
		t.Fatalf("daemon returned %d lines, direct run %d", len(got.Lines), len(want.Lines))
	}
	for i := range want.Lines {
		if got.Lines[i] != want.Lines[i] {
			t.Errorf("line %d: daemon %q, direct %q", i, got.Lines[i], want.Lines[i])
		}
	}
}

// TestDeterminismArtifactsOverHTTP: the trace and report an observed
// job serves are byte-identical to a direct BuildObserved+Run with the
// same parameters — the daemon's core reproducibility guarantee.
func TestDeterminismArtifactsOverHTTP(t *testing.T) {
	_, ts := testServer(t, Config{Workers: 1, QueueDepth: 2}, nil)

	id := submitAndWait(t, ts.URL,
		`{"type":"observed","requests":150,"quick":true,"seed":7,"faultRate":2000,"faultWindowUs":200,"faultLoss":0.001}`)

	spec, sink, err := workload.BuildObserved(workload.ObservedParams{
		Seed:        7,
		Requests:    150,
		Quick:       true,
		FaultRate:   2000,
		FaultWindow: 200 * sim.Microsecond,
		FaultLoss:   0.001,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := spec.Run(); err != nil {
		t.Fatal(err)
	}

	for _, kind := range obs.Artifacts() {
		got := fetchBytes(t, fmt.Sprintf("%s/v1/jobs/%s/artifacts/%s", ts.URL, id, kind))
		var direct bytes.Buffer
		if err := sink.WriteArtifact(kind, &direct); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, direct.Bytes()) {
			t.Errorf("%s artifact diverged: daemon %d bytes, direct %d bytes",
				kind, len(got), direct.Len())
		}
		if len(got) == 0 {
			t.Errorf("%s artifact is empty", kind)
		}
	}
}

// TestDeterminismRepeatSubmission: the same request submitted twice to
// the same daemon yields identical artifacts — job identity does not
// leak into results.
func TestDeterminismRepeatSubmission(t *testing.T) {
	_, ts := testServer(t, Config{Workers: 2, QueueDepth: 4}, nil)

	body := `{"type":"observed","requests":120,"quick":true,"seed":11}`
	a := submitAndWait(t, ts.URL, body)
	b := submitAndWait(t, ts.URL, body)
	for _, kind := range obs.Artifacts() {
		ab := fetchBytes(t, fmt.Sprintf("%s/v1/jobs/%s/artifacts/%s", ts.URL, a, kind))
		bb := fetchBytes(t, fmt.Sprintf("%s/v1/jobs/%s/artifacts/%s", ts.URL, b, kind))
		if !bytes.Equal(ab, bb) {
			t.Errorf("%s artifact differs between identical jobs %s and %s", kind, a, b)
		}
	}
}

// TestDeterminismShardedJob: an observed job submitted with a shard
// count yields byte-identical artifacts to the same job on the serial
// kernel — the sharded execution path never leaks into results, over
// HTTP included.
func TestDeterminismShardedJob(t *testing.T) {
	_, ts := testServer(t, Config{Workers: 2, QueueDepth: 4}, nil)

	serial := submitAndWait(t, ts.URL, `{"type":"observed","requests":120,"quick":true,"seed":11}`)
	sharded := submitAndWait(t, ts.URL, `{"type":"observed","requests":120,"quick":true,"seed":11,"shards":4}`)
	for _, kind := range obs.Artifacts() {
		sb := fetchBytes(t, fmt.Sprintf("%s/v1/jobs/%s/artifacts/%s", ts.URL, serial, kind))
		hb := fetchBytes(t, fmt.Sprintf("%s/v1/jobs/%s/artifacts/%s", ts.URL, sharded, kind))
		if !bytes.Equal(sb, hb) {
			t.Errorf("%s artifact differs between serial and sharded jobs", kind)
		}
	}
}

// TestDeterminismCheckedDaemon: a daemon booted with -check produces
// byte-identical artifacts and values to an unchecked one — the
// invariant checker rides along without touching results, and every
// checked job still completes (no false violations on real runs).
func TestDeterminismCheckedDaemon(t *testing.T) {
	_, plain := testServer(t, Config{Workers: 1, QueueDepth: 2}, nil)
	_, checked := testServer(t, Config{Workers: 1, QueueDepth: 2, Check: true}, nil)

	obsBody := `{"type":"observed","requests":120,"quick":true,"seed":11,"faultRate":2000}`
	pa := submitAndWait(t, plain.URL, obsBody)
	ca := submitAndWait(t, checked.URL, obsBody)
	for _, kind := range obs.Artifacts() {
		pb := fetchBytes(t, fmt.Sprintf("%s/v1/jobs/%s/artifacts/%s", plain.URL, pa, kind))
		cb := fetchBytes(t, fmt.Sprintf("%s/v1/jobs/%s/artifacts/%s", checked.URL, ca, kind))
		if !bytes.Equal(pb, cb) {
			t.Errorf("%s artifact differs between unchecked and checked daemons", kind)
		}
	}

	expBody := `{"type":"experiment","experiment":"fig19","quick":true,"requests":40,"seed":3}`
	pe := submitAndWait(t, plain.URL, expBody)
	ce := submitAndWait(t, checked.URL, expBody)
	pv := fetchBytes(t, plain.URL+"/v1/jobs/"+pe+"/values")
	cv := fetchBytes(t, checked.URL+"/v1/jobs/"+ce+"/values")
	if !bytes.Equal(pv, cv) {
		t.Errorf("experiment values differ between unchecked and checked daemons:\n%s\nvs\n%s", pv, cv)
	}
}

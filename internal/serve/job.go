// Package serve turns the batch simulator into a long-running service:
// an in-process scheduler admits simulation jobs into a bounded queue,
// runs them on a fixed worker pool with per-job context cancellation,
// and an HTTP layer (server.go) exposes the job lifecycle — submit,
// status, cancel, result values, artifact download, and an NDJSON
// per-cell progress stream.
//
// Determinism contract: a job only carries the same parameters the CLI
// accepts (experiment ID or observed-run knobs, request budget, seed,
// quick, parallelism, shards), and execution goes through exactly the same
// code paths — experiments.Registry runners over RunCells, or
// workload.BuildObserved + RunSpec.Run. Values and artifact bytes
// therefore depend only on the submitted parameters, never on the
// transport, queueing delay, or concurrent jobs; determinism_test.go
// pins this against direct in-process runs.
package serve

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sync"
	"time"

	"accelflow/internal/control"
	"accelflow/internal/experiments"
	"accelflow/internal/obs"
	"accelflow/internal/sim"
	"accelflow/internal/tune"
	"accelflow/internal/workload"
)

// JobState is a job's lifecycle phase.
type JobState string

const (
	StateQueued    JobState = "queued"
	StateRunning   JobState = "running"
	StateDone      JobState = "done"
	StateFailed    JobState = "failed"
	StateCancelled JobState = "cancelled"
)

// Terminal reports whether the state is final.
func (s JobState) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// Job types.
const (
	// JobExperiment runs one experiments.Registry entry.
	JobExperiment = "experiment"
	// JobObserved runs the canonical observed SocialNetwork mix
	// (workload.BuildObserved) and keeps its trace/report artifacts.
	JobObserved = "observed"
	// JobTune runs a closed-loop design-space search (tune.Run),
	// streaming per-generation progress events.
	JobTune = "tune"
)

// Priorities bias the weighted-fair scheduler: within a tenant's
// queue, order stays FIFO, but a batch job costs 4x an interactive
// one to dispatch, so under contention interactive work across tenants
// dequeues first. Empty means interactive.
const (
	PriorityInteractive = "interactive"
	PriorityBatch       = "batch"
)

// JobRequest is the submit payload (POST /v1/jobs body).
type JobRequest struct {
	// Type is "experiment", "observed", or "tune".
	Type string `json:"type"`
	// Experiment names the Registry entry for experiment jobs.
	Experiment string `json:"experiment,omitempty"`
	// Requests, Seed, Quick, Parallelism mirror the CLI's -n, -seed,
	// -quick and -parallel flags (zero values take the same defaults).
	Requests    int   `json:"requests,omitempty"`
	Seed        int64 `json:"seed,omitempty"`
	Quick       bool  `json:"quick,omitempty"`
	Parallelism int   `json:"parallelism,omitempty"`
	// Shards mirrors -shards: the intra-run shard count for the sharded
	// execution path. Results are byte-identical at any value.
	Shards int `json:"shards,omitempty"`
	// Fault knobs, observed jobs only; they mirror -faults,
	// -faultwindow (in microseconds) and -faultloss.
	FaultRate     float64 `json:"faultRate,omitempty"`
	FaultWindowUs float64 `json:"faultWindowUs,omitempty"`
	FaultLoss     float64 `json:"faultLoss,omitempty"`
	// Control attaches the dynamic-control subsystem (autoscaler,
	// shedding, retry budgets) to an observed job; it mirrors the
	// CLI's -ctl* flags. Observed jobs only, like the fault knobs.
	// The spec joins the built RunSpec's content hash, so controlled
	// jobs never collide with uncontrolled cache entries.
	Control *control.Spec `json:"control,omitempty"`
	// Tune knobs, tune jobs only; they mirror the CLI's -tune* flags.
	// Strategy is "hill" (default) or "anneal"; Objective is "p99",
	// "energy", or "costperf"; Space is the searched dimensions (nil
	// takes tune.DefaultSpace); Generations/Patience bound the search;
	// SLOUs and LoadScale shape the evaluation workload. Zero values
	// take the tune package defaults.
	Strategy    string          `json:"strategy,omitempty"`
	Objective   string          `json:"objective,omitempty"`
	Space       *tune.SpaceSpec `json:"space,omitempty"`
	Generations int             `json:"generations,omitempty"`
	Patience    int             `json:"patience,omitempty"`
	SLOUs       float64         `json:"sloUs,omitempty"`
	LoadScale   float64         `json:"loadScale,omitempty"`
	// Tenant names the submitting tenant for admission control (its
	// own bounded queue and token bucket). Empty is the default tenant.
	// Tenancy never affects results, only scheduling.
	Tenant string `json:"tenant,omitempty"`
	// Priority is "interactive" (default) or "batch"; see the priority
	// constants. Like Tenant, it only biases scheduling.
	Priority string `json:"priority,omitempty"`
}

// Validate rejects requests admission should never accept: unknown
// types, unresolvable experiment IDs, negative budgets, or fault knobs
// on job types that cannot honour them. Every error it returns matches
// ErrBadRequest (errors.Is), which is what routes it to HTTP 400; an
// error from any other Submit stage deliberately does not.
func (r JobRequest) Validate() error {
	switch r.Type {
	case JobExperiment:
		if r.Experiment == "" {
			return badRequestf("serve: experiment job needs an experiment ID (see GET /v1/experiments)")
		}
		if _, ok := experiments.Registry[r.Experiment]; !ok {
			return badRequestf("serve: unknown experiment %q", r.Experiment)
		}
		if r.FaultRate != 0 || r.FaultWindowUs != 0 || r.FaultLoss != 0 {
			return badRequestf("serve: fault injection knobs only apply to observed jobs")
		}
		if r.Control != nil {
			return badRequestf("serve: the control spec only applies to observed jobs")
		}
		if err := r.validateNoTuneKnobs(); err != nil {
			return err
		}
		if r.Requests < 0 {
			return badRequestf("serve: requests must be non-negative, got %d", r.Requests)
		}
	case JobObserved:
		if r.Experiment != "" {
			return badRequestf("serve: observed jobs take no experiment ID")
		}
		if err := r.validateNoTuneKnobs(); err != nil {
			return err
		}
		if err := r.observedParams().Validate(); err != nil {
			return badRequestf("%s", err)
		}
		if r.FaultWindowUs < 0 {
			return badRequestf("serve: faultWindowUs must be non-negative, got %v", r.FaultWindowUs)
		}
	case JobTune:
		if r.Experiment != "" {
			return badRequestf("serve: tune jobs take no experiment ID")
		}
		if r.FaultRate != 0 || r.FaultWindowUs != 0 || r.FaultLoss != 0 {
			return badRequestf("serve: fault injection knobs only apply to observed jobs")
		}
		if r.Control != nil {
			return badRequestf("serve: the control spec only applies to observed jobs")
		}
		if r.Requests < 0 {
			return badRequestf("serve: requests must be non-negative, got %d", r.Requests)
		}
		if r.Generations < 0 || r.Patience < 0 {
			return badRequestf("serve: generations and patience must be non-negative, got %d/%d", r.Generations, r.Patience)
		}
		if r.SLOUs < 0 || r.LoadScale < 0 {
			return badRequestf("serve: sloUs and loadScale must be non-negative, got %v/%v", r.SLOUs, r.LoadScale)
		}
		if err := r.tuneParams().Validate(); err != nil {
			return badRequestf("%s", err)
		}
	default:
		return badRequestf("serve: job type must be %q, %q, or %q, got %q", JobExperiment, JobObserved, JobTune, r.Type)
	}
	if r.Parallelism < 0 {
		return badRequestf("serve: parallelism must be non-negative, got %d", r.Parallelism)
	}
	if r.Shards < 0 {
		return badRequestf("serve: shards must be non-negative, got %d", r.Shards)
	}
	switch r.Priority {
	case "", PriorityInteractive, PriorityBatch:
	default:
		return badRequestf("serve: priority must be %q or %q, got %q", PriorityInteractive, PriorityBatch, r.Priority)
	}
	return nil
}

// resultKey is the content-addressed identity of the job's result:
// two requests with equal keys produce byte-identical values, lines,
// and artifacts, so the scheduler caches and coalesces on it. The key
// covers only result-affecting parameters — Parallelism and Shards are
// execution knobs that provably never change bytes (the sharded-vs-
// serial equivalence suite), Tenant/Priority only steer scheduling,
// and the daemon-level Check flag is observe-only — so a sharded
// resubmission hits the entry a serial run populated. Observed jobs
// key off the built RunSpec's HashResult (requests/quick normalization
// happens inside BuildObserved); experiment jobs hash their raw
// parameter tuple. Empty means "not cacheable" (never the case for a
// validated request).
func (r JobRequest) resultKey() string {
	switch r.Type {
	case JobExperiment:
		sum := sha256.Sum256([]byte(fmt.Sprintf("experiment|%s|requests=%d|seed=%d|quick=%t",
			r.Experiment, r.Requests, r.Seed, r.Quick)))
		return "job|exp|" + hex.EncodeToString(sum[:])
	case JobObserved:
		spec, _, err := workload.BuildObserved(r.observedParams())
		if err != nil {
			return ""
		}
		return "job|obs|" + spec.HashResult()
	case JobTune:
		sig, err := r.tuneParams().Signature()
		if err != nil {
			return ""
		}
		return "job|tune|" + sig
	}
	return ""
}

// validateNoTuneKnobs rejects tune-only fields on other job types, the
// same cross-type strictness the fault knobs get.
func (r JobRequest) validateNoTuneKnobs() error {
	if r.Strategy != "" || r.Objective != "" || r.Space != nil ||
		r.Generations != 0 || r.Patience != 0 || r.SLOUs != 0 || r.LoadScale != 0 {
		return badRequestf("serve: tune knobs only apply to tune jobs")
	}
	return nil
}

// tuneParams maps the wire request onto the search parameters.
// Parallelism/Shards are execution-only (outside the signature), and
// Check is stamped in by the scheduler from the daemon flag.
func (r JobRequest) tuneParams() tune.Params {
	space := tune.DefaultSpace()
	if r.Space != nil {
		space = *r.Space
	}
	return tune.Params{
		Strategy:       r.Strategy,
		Objective:      r.Objective,
		Space:          space,
		Seed:           r.Seed,
		Requests:       r.Requests,
		LoadScale:      r.LoadScale,
		SLOUs:          r.SLOUs,
		MaxGenerations: r.Generations,
		Patience:       r.Patience,
		Quick:          r.Quick,
		Parallelism:    r.Parallelism,
		Shards:         r.Shards,
	}
}

// observedParams maps the wire request onto the shared observed-run
// builder's parameters.
func (r JobRequest) observedParams() workload.ObservedParams {
	return workload.ObservedParams{
		Seed:        r.Seed,
		Requests:    r.Requests,
		Quick:       r.Quick,
		FaultRate:   r.FaultRate,
		FaultWindow: sim.FromMicros(r.FaultWindowUs),
		FaultLoss:   r.FaultLoss,
		Control:     r.Control,
		Shards:      r.Shards,
	}
}

// options maps the wire request onto experiment Options; the scheduler
// adds Ctx and OnCell when it starts the job.
func (r JobRequest) options() experiments.Options {
	return experiments.Options{
		Requests:    r.Requests,
		Seed:        r.Seed,
		Quick:       r.Quick,
		Parallelism: r.Parallelism,
		Shards:      r.Shards,
	}
}

// Event is one NDJSON progress record on GET /v1/jobs/{id}/progress.
type Event struct {
	Seq   int    `json:"seq"`
	Job   string `json:"job"`
	Event string `json:"event"` // queued | started | cell | generation | done
	// State is set on "done" events (done/failed/cancelled).
	State JobState `json:"state,omitempty"`
	// Key/Index/Total identify the finished sweep cell on "cell"
	// events; Done counts cells finished so far.
	Key   string `json:"key,omitempty"`
	Index int    `json:"index,omitempty"`
	Total int    `json:"total,omitempty"`
	Done  int    `json:"done,omitempty"`
	Error string `json:"error,omitempty"`
	// Tune carries the per-generation search progress on "generation"
	// events (tune jobs only): best-so-far, frontier, evaluation and
	// cache-hit counts.
	Tune *tune.Progress `json:"tune,omitempty"`
}

// JobView is the status JSON for one job.
type JobView struct {
	ID         string   `json:"id"`
	Type       string   `json:"type"`
	Experiment string   `json:"experiment,omitempty"`
	Tenant     string   `json:"tenant,omitempty"`
	Priority   string   `json:"priority,omitempty"`
	State      JobState `json:"state"`
	Error      string   `json:"error,omitempty"`
	CellsDone  int      `json:"cellsDone"`
	// Cached marks a job served from the content-addressed result
	// cache (directly or by coalescing onto an identical in-flight
	// run) instead of executing.
	Cached bool `json:"cached"`
	// Artifacts lists downloadable exports once the job is done
	// (observed jobs only, whether run or served from cache).
	Artifacts   []string  `json:"artifacts,omitempty"`
	SubmittedAt time.Time `json:"submittedAt"`
	StartedAt   time.Time `json:"startedAt,omitempty"`
	FinishedAt  time.Time `json:"finishedAt,omitempty"`
}

// Job is one admitted simulation run. All mutable state sits behind mu;
// the HTTP layer only reads through snapshot/eventsSince/valuesCopy.
type Job struct {
	ID  string
	Req JobRequest

	// flightKey is the job's content-addressed result key when it was
	// admitted as a cacheable leader ("" otherwise). Written once under
	// the scheduler lock before the job is queued; read-only after.
	flightKey string

	mu              sync.Mutex
	state           JobState
	errMsg          string
	cancel          func() // non-nil while running
	cancelRequested bool
	cellsDone       int
	values          map[string]float64
	lines           []string
	sink            *obs.Sink
	// cached marks completion from the result cache; cachedArtifacts
	// then holds the rendered artifact bytes (shared read-only with the
	// cache entry) in place of a sink.
	cached          bool
	cachedArtifacts map[obs.Artifact][]byte
	events          []Event
	// updated is closed and replaced on every emit, so progress
	// streamers can wait for new events without polling.
	updated chan struct{}
	// done is closed when the job reaches a terminal state.
	done chan struct{}

	submitted, started, finished time.Time
}

func newJob(id string, req JobRequest) *Job {
	j := &Job{
		ID:        id,
		Req:       req,
		state:     StateQueued,
		updated:   make(chan struct{}),
		done:      make(chan struct{}),
		submitted: time.Now(),
	}
	j.emitLockedOrNot(Event{Event: "queued"})
	return j
}

// emitLockedOrNot appends a progress event. Callers holding mu pass
// through appendEvent; newJob is the only caller before the job is
// shared, so it can emit without the lock.
func (j *Job) emitLockedOrNot(ev Event) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.appendEvent(ev)
}

// appendEvent requires mu.
func (j *Job) appendEvent(ev Event) {
	ev.Seq = len(j.events)
	ev.Job = j.ID
	j.events = append(j.events, ev)
	close(j.updated)
	j.updated = make(chan struct{})
}

// start transitions queued -> running and installs the cancel hook.
// It returns false when the job was cancelled while queued, telling
// the worker to skip it.
func (j *Job) start(cancel func()) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateQueued {
		return false
	}
	j.state = StateRunning
	j.cancel = cancel
	j.started = time.Now()
	j.appendEvent(Event{Event: "started"})
	return true
}

// finish moves the job to a terminal state (idempotent: the first
// transition wins) and wakes everyone waiting on it.
func (j *Job) finish(state JobState, errMsg string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.finishLocked(state, errMsg)
}

// finishLocked requires mu.
func (j *Job) finishLocked(state JobState, errMsg string) {
	if j.state.Terminal() {
		return
	}
	j.state = state
	j.errMsg = errMsg
	j.cancel = nil
	j.finished = time.Now()
	j.appendEvent(Event{Event: "done", State: state, Error: errMsg})
	close(j.done)
}

// requestCancel cancels the job: a queued job dies immediately, a
// running one has its context cancelled and finishes through the
// worker's error path.
func (j *Job) requestCancel() {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.cancelRequested = true
	switch j.state {
	case StateQueued:
		j.finishLocked(StateCancelled, "cancelled before start")
	case StateRunning:
		if j.cancel != nil {
			j.cancel()
		}
	}
}

// completeCached finishes the job from a cache entry, emitting the
// same started/done event sequence a run would so the progress-stream
// contract (EOF after the "done" event) holds for cached jobs. The
// entry's maps and artifact bytes are shared read-only — entries are
// immutable and every accessor copies values on the way out. A job
// already terminal (e.g. a coalesced follower cancelled while its
// leader ran) is left untouched.
func (j *Job) completeCached(e *jobResultEntry) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state.Terminal() {
		return
	}
	if j.state == StateQueued {
		j.state = StateRunning
		j.started = time.Now()
		j.appendEvent(Event{Event: "started"})
	}
	j.cached = true
	j.values = e.values
	j.lines = e.lines
	j.cachedArtifacts = e.artifacts
	j.finishLocked(StateDone, "")
}

// outcome reads the terminal state and error for flight settlement.
func (j *Job) outcome() (JobState, string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state, j.errMsg
}

// cacheEntry renders a successful job's outputs into an immutable
// cache entry (nil unless the job is done).
func (j *Job) cacheEntry() *jobResultEntry {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateDone {
		return nil
	}
	if j.cached {
		// Already served from cache; reshare the same immutable data.
		return &jobResultEntry{values: j.values, lines: j.lines, artifacts: j.cachedArtifacts}
	}
	return renderEntry(j.values, j.lines, j.sink)
}

// cellDone is the experiments.Options.OnCell hook; it runs on sweep
// worker goroutines.
func (j *Job) cellDone(ev experiments.CellEvent) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.cellsDone++
	e := Event{Event: "cell", Key: ev.Key, Index: ev.Index, Total: ev.Total, Done: j.cellsDone}
	if ev.Err != nil {
		e.Error = ev.Err.Error()
	}
	j.appendEvent(e)
}

// generationDone is the tune.Hooks.OnGeneration hook: one "generation"
// event per completed search generation, from the driver goroutine.
func (j *Job) generationDone(pr tune.Progress) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.appendEvent(Event{Event: "generation", Tune: &pr})
}

// setResult stores the finished run's outputs; call before finish.
func (j *Job) setResult(values map[string]float64, lines []string, sink *obs.Sink) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.values = values
	j.lines = lines
	j.sink = sink
}

// snapshot returns the status view.
func (j *Job) snapshot() JobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	v := JobView{
		ID:          j.ID,
		Type:        j.Req.Type,
		Experiment:  j.Req.Experiment,
		Tenant:      j.Req.Tenant,
		Priority:    j.Req.Priority,
		State:       j.state,
		Error:       j.errMsg,
		CellsDone:   j.cellsDone,
		Cached:      j.cached,
		SubmittedAt: j.submitted,
		StartedAt:   j.started,
		FinishedAt:  j.finished,
	}
	if j.state == StateDone && (j.sink != nil || len(j.cachedArtifacts) > 0) {
		for _, a := range obs.Artifacts() {
			v.Artifacts = append(v.Artifacts, string(a))
		}
	}
	return v
}

// eventsSince returns events with Seq >= n plus a channel that closes
// when more arrive and whether the job is terminal; the progress
// streamer loops on it.
func (j *Job) eventsSince(n int) (evs []Event, more <-chan struct{}, terminal bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if n < len(j.events) {
		evs = append(evs, j.events[n:]...)
	}
	return evs, j.updated, j.state.Terminal()
}

// results returns the stored values/lines and whether the job is done.
func (j *Job) results() (map[string]float64, []string, JobState) {
	j.mu.Lock()
	defer j.mu.Unlock()
	vals := make(map[string]float64, len(j.values))
	for k, v := range j.values {
		vals[k] = v
	}
	return vals, append([]string(nil), j.lines...), j.state
}

// artifactSource returns where artifact bytes come from: a live sink
// (cold run) or pre-rendered cache bytes (cached completion). At most
// one is non-nil.
func (j *Job) artifactSource() (*obs.Sink, map[obs.Artifact][]byte, JobState) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.sink, j.cachedArtifacts, j.state
}

// Done exposes the terminal-state channel (closed when finished).
func (j *Job) Done() <-chan struct{} { return j.done }

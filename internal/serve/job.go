// Package serve turns the batch simulator into a long-running service:
// an in-process scheduler admits simulation jobs into a bounded queue,
// runs them on a fixed worker pool with per-job context cancellation,
// and an HTTP layer (server.go) exposes the job lifecycle — submit,
// status, cancel, result values, artifact download, and an NDJSON
// per-cell progress stream.
//
// Determinism contract: a job only carries the same parameters the CLI
// accepts (experiment ID or observed-run knobs, request budget, seed,
// quick, parallelism, shards), and execution goes through exactly the same
// code paths — experiments.Registry runners over RunCells, or
// workload.BuildObserved + RunSpec.Run. Values and artifact bytes
// therefore depend only on the submitted parameters, never on the
// transport, queueing delay, or concurrent jobs; determinism_test.go
// pins this against direct in-process runs.
package serve

import (
	"fmt"
	"sync"
	"time"

	"accelflow/internal/experiments"
	"accelflow/internal/obs"
	"accelflow/internal/sim"
	"accelflow/internal/workload"
)

// JobState is a job's lifecycle phase.
type JobState string

const (
	StateQueued    JobState = "queued"
	StateRunning   JobState = "running"
	StateDone      JobState = "done"
	StateFailed    JobState = "failed"
	StateCancelled JobState = "cancelled"
)

// Terminal reports whether the state is final.
func (s JobState) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// Job types.
const (
	// JobExperiment runs one experiments.Registry entry.
	JobExperiment = "experiment"
	// JobObserved runs the canonical observed SocialNetwork mix
	// (workload.BuildObserved) and keeps its trace/report artifacts.
	JobObserved = "observed"
)

// JobRequest is the submit payload (POST /v1/jobs body).
type JobRequest struct {
	// Type is "experiment" or "observed".
	Type string `json:"type"`
	// Experiment names the Registry entry for experiment jobs.
	Experiment string `json:"experiment,omitempty"`
	// Requests, Seed, Quick, Parallelism mirror the CLI's -n, -seed,
	// -quick and -parallel flags (zero values take the same defaults).
	Requests    int   `json:"requests,omitempty"`
	Seed        int64 `json:"seed,omitempty"`
	Quick       bool  `json:"quick,omitempty"`
	Parallelism int   `json:"parallelism,omitempty"`
	// Shards mirrors -shards: the intra-run shard count for the sharded
	// execution path. Results are byte-identical at any value.
	Shards int `json:"shards,omitempty"`
	// Fault knobs, observed jobs only; they mirror -faults,
	// -faultwindow (in microseconds) and -faultloss.
	FaultRate     float64 `json:"faultRate,omitempty"`
	FaultWindowUs float64 `json:"faultWindowUs,omitempty"`
	FaultLoss     float64 `json:"faultLoss,omitempty"`
}

// Validate rejects requests admission should never accept: unknown
// types, unresolvable experiment IDs, negative budgets, or fault knobs
// on job types that cannot honour them.
func (r JobRequest) Validate() error {
	switch r.Type {
	case JobExperiment:
		if r.Experiment == "" {
			return fmt.Errorf("serve: experiment job needs an experiment ID (see GET /v1/experiments)")
		}
		if _, ok := experiments.Registry[r.Experiment]; !ok {
			return fmt.Errorf("serve: unknown experiment %q", r.Experiment)
		}
		if r.FaultRate != 0 || r.FaultWindowUs != 0 || r.FaultLoss != 0 {
			return fmt.Errorf("serve: fault injection knobs only apply to observed jobs")
		}
		if r.Requests < 0 {
			return fmt.Errorf("serve: requests must be non-negative, got %d", r.Requests)
		}
	case JobObserved:
		if r.Experiment != "" {
			return fmt.Errorf("serve: observed jobs take no experiment ID")
		}
		if err := r.observedParams().Validate(); err != nil {
			return err
		}
		if r.FaultWindowUs < 0 {
			return fmt.Errorf("serve: faultWindowUs must be non-negative, got %v", r.FaultWindowUs)
		}
	default:
		return fmt.Errorf("serve: job type must be %q or %q, got %q", JobExperiment, JobObserved, r.Type)
	}
	if r.Parallelism < 0 {
		return fmt.Errorf("serve: parallelism must be non-negative, got %d", r.Parallelism)
	}
	if r.Shards < 0 {
		return fmt.Errorf("serve: shards must be non-negative, got %d", r.Shards)
	}
	return nil
}

// observedParams maps the wire request onto the shared observed-run
// builder's parameters.
func (r JobRequest) observedParams() workload.ObservedParams {
	return workload.ObservedParams{
		Seed:        r.Seed,
		Requests:    r.Requests,
		Quick:       r.Quick,
		FaultRate:   r.FaultRate,
		FaultWindow: sim.FromMicros(r.FaultWindowUs),
		FaultLoss:   r.FaultLoss,
		Shards:      r.Shards,
	}
}

// options maps the wire request onto experiment Options; the scheduler
// adds Ctx and OnCell when it starts the job.
func (r JobRequest) options() experiments.Options {
	return experiments.Options{
		Requests:    r.Requests,
		Seed:        r.Seed,
		Quick:       r.Quick,
		Parallelism: r.Parallelism,
		Shards:      r.Shards,
	}
}

// Event is one NDJSON progress record on GET /v1/jobs/{id}/progress.
type Event struct {
	Seq   int    `json:"seq"`
	Job   string `json:"job"`
	Event string `json:"event"` // queued | started | cell | done
	// State is set on "done" events (done/failed/cancelled).
	State JobState `json:"state,omitempty"`
	// Key/Index/Total identify the finished sweep cell on "cell"
	// events; Done counts cells finished so far.
	Key   string `json:"key,omitempty"`
	Index int    `json:"index,omitempty"`
	Total int    `json:"total,omitempty"`
	Done  int    `json:"done,omitempty"`
	Error string `json:"error,omitempty"`
}

// JobView is the status JSON for one job.
type JobView struct {
	ID         string   `json:"id"`
	Type       string   `json:"type"`
	Experiment string   `json:"experiment,omitempty"`
	State      JobState `json:"state"`
	Error      string   `json:"error,omitempty"`
	CellsDone  int      `json:"cellsDone"`
	// Artifacts lists downloadable exports once the job is done
	// (observed jobs only).
	Artifacts   []string  `json:"artifacts,omitempty"`
	SubmittedAt time.Time `json:"submittedAt"`
	StartedAt   time.Time `json:"startedAt,omitempty"`
	FinishedAt  time.Time `json:"finishedAt,omitempty"`
}

// Job is one admitted simulation run. All mutable state sits behind mu;
// the HTTP layer only reads through snapshot/eventsSince/valuesCopy.
type Job struct {
	ID  string
	Req JobRequest

	mu              sync.Mutex
	state           JobState
	errMsg          string
	cancel          func() // non-nil while running
	cancelRequested bool
	cellsDone       int
	values          map[string]float64
	lines           []string
	sink            *obs.Sink
	events          []Event
	// updated is closed and replaced on every emit, so progress
	// streamers can wait for new events without polling.
	updated chan struct{}
	// done is closed when the job reaches a terminal state.
	done chan struct{}

	submitted, started, finished time.Time
}

func newJob(id string, req JobRequest) *Job {
	j := &Job{
		ID:        id,
		Req:       req,
		state:     StateQueued,
		updated:   make(chan struct{}),
		done:      make(chan struct{}),
		submitted: time.Now(),
	}
	j.emitLockedOrNot(Event{Event: "queued"})
	return j
}

// emitLockedOrNot appends a progress event. Callers holding mu pass
// through appendEvent; newJob is the only caller before the job is
// shared, so it can emit without the lock.
func (j *Job) emitLockedOrNot(ev Event) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.appendEvent(ev)
}

// appendEvent requires mu.
func (j *Job) appendEvent(ev Event) {
	ev.Seq = len(j.events)
	ev.Job = j.ID
	j.events = append(j.events, ev)
	close(j.updated)
	j.updated = make(chan struct{})
}

// start transitions queued -> running and installs the cancel hook.
// It returns false when the job was cancelled while queued, telling
// the worker to skip it.
func (j *Job) start(cancel func()) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateQueued {
		return false
	}
	j.state = StateRunning
	j.cancel = cancel
	j.started = time.Now()
	j.appendEvent(Event{Event: "started"})
	return true
}

// finish moves the job to a terminal state (idempotent: the first
// transition wins) and wakes everyone waiting on it.
func (j *Job) finish(state JobState, errMsg string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.finishLocked(state, errMsg)
}

// finishLocked requires mu.
func (j *Job) finishLocked(state JobState, errMsg string) {
	if j.state.Terminal() {
		return
	}
	j.state = state
	j.errMsg = errMsg
	j.cancel = nil
	j.finished = time.Now()
	j.appendEvent(Event{Event: "done", State: state, Error: errMsg})
	close(j.done)
}

// requestCancel cancels the job: a queued job dies immediately, a
// running one has its context cancelled and finishes through the
// worker's error path.
func (j *Job) requestCancel() {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.cancelRequested = true
	switch j.state {
	case StateQueued:
		j.finishLocked(StateCancelled, "cancelled before start")
	case StateRunning:
		if j.cancel != nil {
			j.cancel()
		}
	}
}

// cellDone is the experiments.Options.OnCell hook; it runs on sweep
// worker goroutines.
func (j *Job) cellDone(ev experiments.CellEvent) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.cellsDone++
	e := Event{Event: "cell", Key: ev.Key, Index: ev.Index, Total: ev.Total, Done: j.cellsDone}
	if ev.Err != nil {
		e.Error = ev.Err.Error()
	}
	j.appendEvent(e)
}

// setResult stores the finished run's outputs; call before finish.
func (j *Job) setResult(values map[string]float64, lines []string, sink *obs.Sink) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.values = values
	j.lines = lines
	j.sink = sink
}

// snapshot returns the status view.
func (j *Job) snapshot() JobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	v := JobView{
		ID:          j.ID,
		Type:        j.Req.Type,
		Experiment:  j.Req.Experiment,
		State:       j.state,
		Error:       j.errMsg,
		CellsDone:   j.cellsDone,
		SubmittedAt: j.submitted,
		StartedAt:   j.started,
		FinishedAt:  j.finished,
	}
	if j.state == StateDone && j.sink != nil {
		for _, a := range obs.Artifacts() {
			v.Artifacts = append(v.Artifacts, string(a))
		}
	}
	return v
}

// eventsSince returns events with Seq >= n plus a channel that closes
// when more arrive and whether the job is terminal; the progress
// streamer loops on it.
func (j *Job) eventsSince(n int) (evs []Event, more <-chan struct{}, terminal bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if n < len(j.events) {
		evs = append(evs, j.events[n:]...)
	}
	return evs, j.updated, j.state.Terminal()
}

// results returns the stored values/lines and whether the job is done.
func (j *Job) results() (map[string]float64, []string, JobState) {
	j.mu.Lock()
	defer j.mu.Unlock()
	vals := make(map[string]float64, len(j.values))
	for k, v := range j.values {
		vals[k] = v
	}
	return vals, append([]string(nil), j.lines...), j.state
}

// artifactSink returns the observability sink once the job is done.
func (j *Job) artifactSink() (*obs.Sink, JobState) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.sink, j.state
}

// Done exposes the terminal-state channel (closed when finished).
func (j *Job) Done() <-chan struct{} { return j.done }

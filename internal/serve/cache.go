// Content-addressed result cache for the serving plane. Determinism
// makes every simulation result cacheable forever: a job's Values,
// report lines, and artifact bytes are pure functions of its submitted
// parameters (pinned by determinism_test.go), so the cache keys off a
// normalized result identity — workload.RunSpec.HashResult for
// observed jobs, a canonical parameter digest for experiment jobs (see
// JobRequest.resultKey) — with the execution-only knobs (Parallelism,
// Shards) stripped: a sharded submission hits the entry a serial run
// populated and vice versa.
//
// One bounded LRU holds two kinds of entries under one capacity:
//
//   - job entries (*jobResultEntry): a finished job's values, lines,
//     and rendered artifact bytes, keyed "job|...". A hit completes
//     the submission synchronously without occupying a queue slot.
//   - cell entries: individual sweep-cell outputs, keyed
//     "cell|<job key>|<cell key>" through the cellCache adapter
//     (experiments.Options.Cache). These exist so a cancelled sweep's
//     completed cells are reusable when the job is resubmitted.
//
// Concurrency: the cache's own mutex guards the LRU; it never takes
// the scheduler lock, so the scheduler may call into it while holding
// its own. Cached cell values are handed back by reference and may
// contain types that are not concurrency-safe (*metrics.Recorder
// lazily sorts in place), which is safe only because singleflight
// coalescing in the scheduler guarantees at most one execution per
// job key is in flight at a time — same-key runs are serialized, and
// the scheduler mutex plus the sweep pool's WaitGroup join establish
// the happens-before edges between them.
package serve

import (
	"bytes"
	"container/list"
	"sync"

	"accelflow/internal/obs"
)

// CacheStats is the /v1/cache stats payload.
type CacheStats struct {
	// Entries and Capacity describe the LRU (job + cell entries share
	// the bound).
	Entries  int `json:"entries"`
	Capacity int `json:"capacity"`
	// Hits/Misses count submissions served from / not found in the
	// completed-job cache. Coalesced counts submissions that joined an
	// in-flight identical run instead of enqueueing (every coalesced
	// submission is also a miss: the entry did not exist yet).
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Coalesced uint64 `json:"coalesced"`
	// Evictions counts LRU entries dropped to stay under Capacity.
	Evictions uint64 `json:"evictions"`
	// CellHits/CellMisses count per-sweep-cell lookups (partial-result
	// reuse after a cancelled sweep).
	CellHits   uint64 `json:"cellHits"`
	CellMisses uint64 `json:"cellMisses"`
}

// jobResultEntry is a finished job's cacheable output: everything a
// client can fetch after the job completes, with artifacts rendered to
// bytes so a hit serves the exact bytes a cold run would stream.
// Entries are immutable once published; completeCached copies values
// on the way out and serves artifact bytes read-only.
type jobResultEntry struct {
	values    map[string]float64
	lines     []string
	artifacts map[obs.Artifact][]byte
}

// renderEntry builds an entry from a finished job's outputs, rendering
// each artifact through the same exporter the HTTP layer streams from,
// so cached bytes are identical to cold-run bytes.
func renderEntry(values map[string]float64, lines []string, sink *obs.Sink) *jobResultEntry {
	e := &jobResultEntry{values: values, lines: lines}
	if sink != nil {
		e.artifacts = make(map[obs.Artifact][]byte, len(obs.Artifacts()))
		for _, a := range obs.Artifacts() {
			var buf bytes.Buffer
			if err := sink.WriteArtifact(a, &buf); err == nil {
				e.artifacts[a] = buf.Bytes()
			}
		}
	}
	return e
}

// resultCache is a bounded LRU over job and cell entries. Safe for
// concurrent use; see the package comment for the value-ownership
// contract.
type resultCache struct {
	mu       sync.Mutex
	capacity int
	ll       *list.List // front = most recently used
	items    map[string]*list.Element
	stats    CacheStats
}

type cacheItem struct {
	key string
	val any
}

func newResultCache(capacity int) *resultCache {
	return &resultCache{
		capacity: capacity,
		ll:       list.New(),
		items:    make(map[string]*list.Element),
	}
}

// get looks a key up and bumps it to most-recent.
func (c *resultCache) get(key string) (any, bool) {
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		return el.Value.(*cacheItem).val, true
	}
	return nil, false
}

// put inserts or refreshes a key, evicting from the LRU tail to stay
// under capacity.
func (c *resultCache) put(key string, v any) {
	if el, ok := c.items[key]; ok {
		el.Value.(*cacheItem).val = v
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&cacheItem{key: key, val: v})
	for c.ll.Len() > c.capacity {
		tail := c.ll.Back()
		c.ll.Remove(tail)
		delete(c.items, tail.Value.(*cacheItem).key)
		c.stats.Evictions++
	}
}

// getJob returns a completed-job entry, counting the hit/miss.
func (c *resultCache) getJob(key string) (*jobResultEntry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if v, ok := c.get(key); ok {
		if e, ok := v.(*jobResultEntry); ok {
			c.stats.Hits++
			return e, true
		}
	}
	c.stats.Misses++
	return nil, false
}

// putJob publishes a completed-job entry.
func (c *resultCache) putJob(key string, e *jobResultEntry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.put(key, e)
}

// coalesced records a submission that joined an in-flight run.
func (c *resultCache) coalesced() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.stats.Coalesced++
}

func (c *resultCache) getCell(key string) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if v, ok := c.get(key); ok {
		c.stats.CellHits++
		return v, true
	}
	c.stats.CellMisses++
	return nil, false
}

func (c *resultCache) putCell(key string, v any) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.put(key, v)
}

// Stats snapshots the counters.
func (c *resultCache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := c.stats
	st.Entries = c.ll.Len()
	st.Capacity = c.capacity
	return st
}

// cellCache adapts the result cache to experiments.CellCache for one
// job, prefixing cell keys with the job's result key so cells from
// different (experiment, requests, seed, quick) sweeps never collide —
// the key-namespace obligation Options.Cache puts on its caller.
type cellCache struct {
	c      *resultCache
	prefix string
}

func (cc cellCache) GetCell(key string) (any, bool) { return cc.c.getCell(cc.prefix + key) }
func (cc cellCache) PutCell(key string, v any)      { cc.c.putCell(cc.prefix+key, v) }

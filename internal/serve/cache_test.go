// Tests for the content-addressed result cache, singleflight
// coalescing, and per-tenant admission (token buckets + weighted-fair
// dequeue). Byte-equality tests go through the HTTP surface so they
// pin what clients actually receive.
package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// cachedServer boots a cache-enabled scheduler behind HTTP.
func cachedServer(t *testing.T) (*Scheduler, string) {
	t.Helper()
	sched, ts := testServer(t, Config{Workers: 2, QueueDepth: 8, CacheEntries: 256}, nil)
	return sched, ts.URL
}

// jobValues fetches and decodes a finished job's values payload.
func jobValues(t *testing.T, base, id string) (map[string]float64, []string) {
	t.Helper()
	var out struct {
		Values map[string]float64 `json:"values"`
		Lines  []string           `json:"lines"`
	}
	if err := json.Unmarshal(fetchBytes(t, base+"/v1/jobs/"+id+"/values"), &out); err != nil {
		t.Fatal(err)
	}
	return out.Values, out.Lines
}

func jobView(t *testing.T, base, id string) JobView {
	t.Helper()
	var v JobView
	if err := json.Unmarshal(fetchBytes(t, base+"/v1/jobs/"+id), &v); err != nil {
		t.Fatal(err)
	}
	return v
}

func cacheStatsHTTP(t *testing.T, base string) (bool, CacheStats) {
	t.Helper()
	var out struct {
		Enabled bool       `json:"enabled"`
		Stats   CacheStats `json:"stats"`
	}
	if err := json.Unmarshal(fetchBytes(t, base+"/v1/cache"), &out); err != nil {
		t.Fatal(err)
	}
	return out.Enabled, out.Stats
}

// TestCacheHitExperiment: a repeated identical experiment submission
// is served from cache with identical values and lines, flagged
// "cached": true, and visible in /v1/cache stats.
func TestCacheHitExperiment(t *testing.T) {
	_, base := cachedServer(t)
	body := `{"type":"experiment","experiment":"fig19","quick":true,"requests":40,"seed":3}`

	cold := submitAndWait(t, base, body)
	warm := submitAndWait(t, base, body)

	coldVals, coldLines := jobValues(t, base, cold)
	warmVals, warmLines := jobValues(t, base, warm)
	if !reflect.DeepEqual(coldVals, warmVals) || !reflect.DeepEqual(coldLines, warmLines) {
		t.Fatal("cached experiment results differ from the cold run")
	}
	if jobView(t, base, cold).Cached {
		t.Error("cold run reported cached")
	}
	if !jobView(t, base, warm).Cached {
		t.Error("repeat submission not reported cached")
	}
	enabled, stats := cacheStatsHTTP(t, base)
	if !enabled {
		t.Fatal("/v1/cache reports caching disabled")
	}
	if stats.Hits < 1 || stats.Entries == 0 {
		t.Errorf("cache stats after hit: %+v", stats)
	}
}

// TestCacheHitObservedArtifacts: observed jobs cache their rendered
// artifact bytes; a hit serves the exact bytes the cold run streamed,
// and a sharded resubmission hits the serial run's entry (the key is
// the normalized HashResult).
func TestCacheHitObservedArtifacts(t *testing.T) {
	_, base := cachedServer(t)

	cold := submitAndWait(t, base, `{"type":"observed","requests":120,"quick":true,"seed":4}`)
	warm := submitAndWait(t, base, `{"type":"observed","requests":120,"quick":true,"seed":4}`)
	sharded := submitAndWait(t, base, `{"type":"observed","requests":120,"quick":true,"seed":4,"shards":2}`)

	for _, kind := range []string{"trace", "report"} {
		want := fetchBytes(t, base+"/v1/jobs/"+cold+"/artifacts/"+kind)
		for _, id := range []string{warm, sharded} {
			if got := fetchBytes(t, base+"/v1/jobs/"+id+"/artifacts/"+kind); !bytes.Equal(got, want) {
				t.Errorf("%s artifact of %s differs from cold run (%d vs %d bytes)", kind, id, len(got), len(want))
			}
		}
	}
	coldVals, _ := jobValues(t, base, cold)
	warmVals, _ := jobValues(t, base, warm)
	if !reflect.DeepEqual(coldVals, warmVals) {
		t.Fatal("cached observed values differ from the cold run")
	}
	if !jobView(t, base, warm).Cached || !jobView(t, base, sharded).Cached {
		t.Error("repeat/sharded observed submissions not reported cached")
	}
	if arts := jobView(t, base, warm).Artifacts; len(arts) != 2 {
		t.Errorf("cached job lists artifacts %v, want trace+report", arts)
	}
}

// TestCoalesceConcurrentSubmissions: N identical in-flight submissions
// run the simulation exactly once; every follower completes with the
// leader's bytes.
func TestCoalesceConcurrentSubmissions(t *testing.T) {
	var runs int32
	var sched *Scheduler
	sched = newScheduler(Config{Workers: 2, QueueDepth: 4, CacheEntries: 64},
		func(ctx context.Context, j *Job) {
			atomic.AddInt32(&runs, 1)
			sched.execute(ctx, j)
		})
	defer sched.Close()

	const n = 20
	req := JobRequest{Type: JobObserved, Requests: 120, Quick: true, Seed: 4}
	jobs := make([]*Job, n)
	var wg sync.WaitGroup
	errc := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			j, err := sched.Submit(req)
			if err != nil {
				errc <- fmt.Errorf("submit %d: %w", i, err)
				return
			}
			jobs[i] = j
			<-j.Done()
		}(i)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		// Coalesced followers never occupy queue slots, so none of the
		// 20 submissions should have been rejected.
		t.Fatal(err)
	}
	if got := atomic.LoadInt32(&runs); got != 1 {
		t.Fatalf("%d executions for %d identical submissions, want 1", got, n)
	}
	var want map[string]float64
	for i, j := range jobs {
		vals, _, state := j.results()
		if state != StateDone {
			t.Fatalf("job %d ended %s", i, state)
		}
		if want == nil {
			want = vals
		} else if !reflect.DeepEqual(vals, want) {
			t.Fatalf("job %d values diverged", i)
		}
	}
	// Late submissions may land after the leader finished and hit the
	// completed entry instead of the flight; either way none of the
	// n-1 repeats executed.
	stats, ok := sched.CacheStats()
	if !ok || stats.Coalesced+stats.Hits != n-1 {
		t.Errorf("coalesced %d + hits %d (ok=%t), want %d total", stats.Coalesced, stats.Hits, ok, n-1)
	}
}

// TestCancelledSweepCellsReused: a cancelled sweep's completed cells
// are served from the per-cell cache when the job is resubmitted.
func TestCancelledSweepCellsReused(t *testing.T) {
	sched := NewScheduler(Config{Workers: 1, QueueDepth: 4, CacheEntries: 256})
	defer sched.Close()

	req := JobRequest{Type: JobExperiment, Experiment: "fig19", Quick: true, Requests: 200, Seed: 5, Parallelism: 1}
	j, err := sched.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	// Wait for the first finished cell (its output is in the cache
	// before its event appears), then cancel the sweep.
	deadline := time.Now().Add(30 * time.Second)
	for j.snapshot().CellsDone == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no cell finished")
		}
		if j.snapshot().State.Terminal() {
			break
		}
		time.Sleep(time.Millisecond)
	}
	j.requestCancel()
	<-j.Done()

	j2, err := sched.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	<-j2.Done()
	if _, _, state := j2.results(); state != StateDone {
		t.Fatalf("resubmission ended %s", state)
	}
	stats, _ := sched.CacheStats()
	if first := j.snapshot().State; first == StateCancelled {
		if stats.CellHits == 0 {
			t.Errorf("cancelled sweep's completed cells were not reused: %+v", stats)
		}
	} else if !j2.snapshot().Cached {
		// The sweep outran the cancel; then the resubmission must at
		// least be a whole-job cache hit.
		t.Errorf("first run ended %s yet resubmission was not cached", first)
	}
}

// TestTenantRateLimit: token-bucket exhaustion rejects one tenant with
// a per-tenant Retry-After while a second tenant still admits, and the
// bucket refills with (injected) time.
func TestTenantRateLimit(t *testing.T) {
	release := make(chan struct{})
	sched := newScheduler(Config{Workers: 1, QueueDepth: 16, TenantRate: 0.5, TenantBurst: 2},
		func(ctx context.Context, j *Job) {
			<-release
			j.finish(StateDone, "")
		})
	defer sched.Close()
	defer close(release) // LIFO: unblock workers before Close joins them
	now := time.Unix(1_000_000, 0)
	sched.now = func() time.Time { return now }

	reqFor := func(tenant string, seed int64) JobRequest {
		r := stubReq()
		r.Tenant = tenant
		r.Seed = seed
		return r
	}
	for i := 0; i < 2; i++ {
		if _, err := sched.Submit(reqFor("alpha", int64(i))); err != nil {
			t.Fatalf("alpha submit %d within burst: %v", i, err)
		}
	}
	_, err := sched.Submit(reqFor("alpha", 99))
	var rle *RateLimitError
	if !errors.As(err, &rle) {
		t.Fatalf("exhausted bucket returned %v, want *RateLimitError", err)
	}
	if rle.Tenant != "alpha" || rle.RetryAfter <= 0 {
		t.Fatalf("rate-limit error %+v", rle)
	}
	// ~2s until the next token at 0.5 tokens/sec.
	if rle.RetryAfter > 3*time.Second {
		t.Errorf("RetryAfter %v, want about 2s", rle.RetryAfter)
	}

	// A second tenant's admission is untouched by alpha's exhaustion.
	for i := 0; i < 2; i++ {
		if _, err := sched.Submit(reqFor("beta", int64(i))); err != nil {
			t.Fatalf("beta submit %d while alpha limited: %v", i, err)
		}
	}

	// Refill: advancing the clock past the deficit re-admits alpha.
	now = now.Add(rle.RetryAfter + time.Second)
	if _, err := sched.Submit(reqFor("alpha", 100)); err != nil {
		t.Fatalf("alpha submit after refill: %v", err)
	}
}

// TestWeightedFairDequeue: with one tenant holding a batch backlog and
// another submitting interactive jobs, deficit round-robin dispatches
// all the interactive work ahead of most of the batch queue.
func TestWeightedFairDequeue(t *testing.T) {
	var mu sync.Mutex
	var order []string
	blockerStarted := make(chan struct{})
	gate := make(chan struct{})
	sched := newScheduler(Config{Workers: 1, QueueDepth: 8},
		func(ctx context.Context, j *Job) {
			if j.Req.Tenant == "hold" {
				blockerStarted <- struct{}{}
				<-gate
			} else {
				mu.Lock()
				order = append(order, j.Req.Tenant)
				mu.Unlock()
			}
			j.finish(StateDone, "")
		})
	defer sched.Close()

	submit := func(tenant, prio string, seed int64) {
		t.Helper()
		r := stubReq()
		r.Tenant, r.Priority, r.Seed = tenant, prio, seed
		if _, err := sched.Submit(r); err != nil {
			t.Fatalf("submit %s/%s: %v", tenant, prio, err)
		}
	}
	// Pin the single worker so the contest jobs all queue up first.
	submit("hold", "", 0)
	<-blockerStarted
	for i := int64(1); i <= 4; i++ {
		submit("batcher", PriorityBatch, i)
	}
	for i := int64(1); i <= 4; i++ {
		submit("clicker", PriorityInteractive, i)
	}
	close(gate)
	if err := sched.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}

	mu.Lock()
	defer mu.Unlock()
	if len(order) != 8 {
		t.Fatalf("ran %d contest jobs, want 8: %v", len(order), order)
	}
	last := -1
	for i, tenant := range order {
		if tenant == "clicker" {
			last = i
		}
	}
	// With batch cost 4 vs interactive cost 1, every interactive job
	// dispatches within the first five slots; FIFO would leave them in
	// the last four.
	if last > 4 {
		t.Errorf("interactive job dispatched at position %d of %v, want all within first 5", last, order)
	}
}

// TestCacheDisabledByDefault: the zero Config neither caches nor
// coalesces — every identical submission runs.
func TestCacheDisabledByDefault(t *testing.T) {
	var runs int32
	sched := newScheduler(Config{Workers: 1, QueueDepth: 8},
		func(ctx context.Context, j *Job) {
			atomic.AddInt32(&runs, 1)
			j.finish(StateDone, "")
		})
	defer sched.Close()
	for i := 0; i < 3; i++ {
		j, err := sched.Submit(stubReq())
		if err != nil {
			t.Fatal(err)
		}
		<-j.Done()
		if j.snapshot().Cached {
			t.Fatal("cache-disabled scheduler served a cached job")
		}
	}
	if got := atomic.LoadInt32(&runs); got != 3 {
		t.Fatalf("%d runs for 3 submissions with caching off, want 3", got)
	}
	if _, ok := sched.CacheStats(); ok {
		t.Error("CacheStats reports enabled with CacheEntries 0")
	}
}

// TestCacheLRUEviction: the cache holds at most CacheEntries entries
// and evicts least-recently-used first.
func TestCacheLRUEviction(t *testing.T) {
	c := newResultCache(2)
	c.putJob("a", &jobResultEntry{})
	c.putJob("b", &jobResultEntry{})
	if _, ok := c.getJob("a"); !ok { // bump a; b is now LRU
		t.Fatal("entry a missing")
	}
	c.putJob("c", &jobResultEntry{})
	if _, ok := c.getJob("b"); ok {
		t.Fatal("LRU entry b survived eviction")
	}
	if _, ok := c.getJob("a"); !ok {
		t.Fatal("recently used entry a was evicted")
	}
	st := c.Stats()
	if st.Entries != 2 || st.Evictions != 1 {
		t.Errorf("stats %+v, want 2 entries, 1 eviction", st)
	}
}

// TestCoalescedFollowerMirrorsCancel: followers of a cancelled leader
// report cancelled, not done, and a follower cancelled on its own is
// not resurrected by the leader finishing.
func TestCoalescedFollowerMirrorsCancel(t *testing.T) {
	started := make(chan *Job, 1)
	proceed := make(chan struct{})
	sched := newScheduler(Config{Workers: 1, QueueDepth: 4, CacheEntries: 64},
		func(ctx context.Context, j *Job) {
			started <- j
			<-proceed
			<-ctx.Done()
			j.finish(StateCancelled, ctx.Err().Error())
		})
	defer sched.Close()

	leader, err := sched.Submit(stubReq())
	if err != nil {
		t.Fatal(err)
	}
	<-started
	follower, err := sched.Submit(stubReq())
	if err != nil {
		t.Fatal(err)
	}
	if follower == leader {
		t.Fatal("second submission was not a distinct job")
	}
	leader.requestCancel()
	close(proceed)
	<-leader.Done()
	<-follower.Done()
	if st := follower.snapshot().State; st != StateCancelled {
		t.Fatalf("follower of cancelled leader ended %s, want cancelled", st)
	}
}

// TestSubmitError500HTTP: an internal (non-validation) submit failure
// surfaces as 500, not 400 — pinned through a request that passes
// Validate but whose experiment the HTTP layer cannot classify as a
// client mistake. Exercised directly against submitErrorStatus in
// server_test.go; here we confirm the full HTTP path keeps 400 for
// validation and never mislabels sentinel-free errors.
func TestSubmitStatusTaxonomyHTTP(t *testing.T) {
	_, ts := testServer(t, Config{Workers: 1, QueueDepth: 2}, func(ctx context.Context, j *Job) {
		j.finish(StateDone, "")
	})
	resp := postJSON(t, ts.URL+"/v1/jobs", `{"type":"experiment","experiment":"area","priority":"urgent"}`)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("invalid priority: status %d, want 400", resp.StatusCode)
	}
	resp = postJSON(t, ts.URL+"/v1/jobs", `{"type":"experiment","experiment":"area","quick":true,"tenant":"t1","priority":"batch"}`)
	view := decodeView(t, resp)
	if resp.StatusCode != http.StatusAccepted || view.Tenant != "t1" || view.Priority != PriorityBatch {
		t.Errorf("tenant submit: status %d view %+v", resp.StatusCode, view)
	}
}

package serve

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"testing"
)

// TestSubmitDrainRace hammers admission while the scheduler drains:
// 100 goroutines submit concurrently, and midway through a drain
// begins. Run under -race, this is the regression net for the
// Submit/StartDrain serialization (the select-send and the channel
// close both happen under the scheduler mutex — a send outside it
// could panic on the closed queue). Every submit must either return a
// job or fail with ErrDraining/ErrQueueFull, accepted jobs must get
// unique sequential IDs, and the registry must hold exactly the
// accepted set.
func TestSubmitDrainRace(t *testing.T) {
	const submitters = 100
	release := make(chan struct{})
	s := newScheduler(Config{Workers: 4, QueueDepth: submitters}, func(ctx context.Context, j *Job) {
		<-release
		j.finish(StateDone, "")
	})
	defer s.Close()

	var (
		start    = make(chan struct{})
		wg       sync.WaitGroup
		mu       sync.Mutex
		accepted []*Job
		rejected int
	)
	for i := 0; i < submitters; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			j, err := s.Submit(stubReq())
			mu.Lock()
			defer mu.Unlock()
			switch {
			case err == nil:
				accepted = append(accepted, j)
			case errors.Is(err, ErrDraining) || errors.Is(err, ErrQueueFull):
				rejected++
			default:
				t.Errorf("submit: unexpected error %v", err)
			}
		}()
	}
	close(start)
	// Race the drain against the submit storm, then let workers finish.
	s.StartDrain()
	wg.Wait()
	close(release)
	if err := s.Drain(context.Background()); err != nil {
		t.Fatalf("drain: %v", err)
	}

	if len(accepted)+rejected != submitters {
		t.Fatalf("accounting leak: %d accepted + %d rejected != %d submits",
			len(accepted), rejected, submitters)
	}
	seen := map[string]bool{}
	for _, j := range accepted {
		if seen[j.ID] {
			t.Errorf("duplicate job ID %s", j.ID)
		}
		seen[j.ID] = true
		n, err := strconv.Atoi(strings.TrimPrefix(j.ID, "job-"))
		if err != nil || n < 1 || n > len(accepted) {
			t.Errorf("job ID %s outside the dense sequence 1..%d", j.ID, len(accepted))
		}
	}
	if got := len(s.Jobs()); got != len(accepted) {
		t.Errorf("registry holds %d jobs, accepted %d", got, len(accepted))
	}
	for _, j := range accepted {
		if st := j.snapshot().State; st != StateDone {
			t.Errorf("accepted job %s ended in state %s after drain", j.ID, st)
		}
	}
}

// TestSubmitCancelRace overlaps submissions with cancellations of
// every job seen so far: Cancel must be safe against jobs in any
// state, concurrent with the workers flipping them to running.
func TestSubmitCancelRace(t *testing.T) {
	release := make(chan struct{})
	s := newScheduler(Config{Workers: 2, QueueDepth: 64}, func(ctx context.Context, j *Job) {
		select {
		case <-ctx.Done():
			j.finish(StateCancelled, "cancelled")
		case <-release:
			j.finish(StateDone, "")
		}
	})
	defer s.Close()

	const jobs = 40
	ids := make(chan string, jobs)
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		defer close(ids)
		for i := 0; i < jobs; i++ {
			j, err := s.Submit(stubReq())
			if err != nil {
				t.Errorf("submit %d: %v", i, err)
				return
			}
			ids <- j.ID
		}
	}()
	go func() {
		defer wg.Done()
		for id := range ids {
			// Cancel races the worker picking the job up; both outcomes
			// (canceled or already terminal) are legal, crashes are not.
			_ = s.Cancel(id)
		}
	}()
	wg.Wait()
	close(release)
	if err := s.Drain(context.Background()); err != nil {
		t.Fatalf("drain: %v", err)
	}
	for _, j := range s.Jobs() {
		if st := j.snapshot().State; st != StateDone && st != StateCancelled {
			t.Errorf("job %s ended in non-terminal state %s", j.ID, st)
		}
	}
}

// TestConcurrentSnapshotProgress reads job snapshots and progress
// streams while workers mutate the same jobs — the mu-guarded state
// must never tear (verified by -race).
func TestConcurrentSnapshotProgress(t *testing.T) {
	s := newScheduler(Config{Workers: 2, QueueDepth: 16}, func(ctx context.Context, j *Job) {
		for i := 0; i < 50; i++ {
			j.appendEvent(Event{Event: "cell", Key: fmt.Sprintf("step %d", i), Done: i + 1, Total: 50})
		}
		j.finish(StateDone, "")
	})
	defer s.Close()

	var jobs []*Job
	for i := 0; i < 8; i++ {
		j, err := s.Submit(stubReq())
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, j)
	}
	var wg sync.WaitGroup
	for _, j := range jobs {
		wg.Add(1)
		go func(j *Job) {
			defer wg.Done()
			for k := 0; k < 100; k++ {
				_ = j.snapshot()
			}
		}(j)
	}
	wg.Wait()
	if err := s.Drain(context.Background()); err != nil {
		t.Fatalf("drain: %v", err)
	}
}

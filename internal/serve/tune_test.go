package serve

import (
	"context"
	"encoding/json"
	"net/http"
	"testing"

	"accelflow/internal/tune"
)

// tuneBody is the suite's small-but-real search request; tuneParamsFor
// mirrors it for direct tune.Run comparisons.
const tuneBody = `{"type":"tune","objective":"p99","seed":7,"requests":60,"quick":true,` +
	`"generations":3,"patience":3,` +
	`"space":{"chiplets":[2,1],"pes":[8,4],"policies":["accelflow","relief"]}}`

func tuneParamsFor() tune.Params {
	return tune.Params{
		Objective: "p99",
		Space: tune.SpaceSpec{
			Chiplets: []int{2, 1},
			PEs:      []int{8, 4},
			Policies: []string{"accelflow", "relief"},
		},
		Seed:           7,
		Requests:       60,
		Quick:          true,
		MaxGenerations: 3,
		Patience:       3,
	}
}

// TestTuneJobEndToEnd drives a tune job over HTTP: per-generation
// NDJSON progress with the search payload, then values with the final
// best.
func TestTuneJobEndToEnd(t *testing.T) {
	_, ts := testServer(t, Config{Workers: 1, QueueDepth: 4}, nil)

	resp := postJSON(t, ts.URL+"/v1/jobs", tuneBody)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d", resp.StatusCode)
	}
	view := decodeView(t, resp)
	if view.Type != JobTune {
		t.Fatalf("view type %q, want tune", view.Type)
	}

	evs := drainProgress(t, ts.URL+"/v1/jobs/"+view.ID+"/progress")
	last := evs[len(evs)-1]
	if last.Event != "done" || last.State != StateDone {
		t.Fatalf("last event %+v, want done/done (error %q)", last, last.Error)
	}
	gens, cells := 0, 0
	lastBest := 0.0
	for _, ev := range evs {
		switch ev.Event {
		case "generation":
			if ev.Tune == nil {
				t.Fatalf("generation event without tune payload: %+v", ev)
			}
			if ev.Tune.Gen != gens {
				t.Errorf("generation %d out of order (payload gen %d)", gens, ev.Tune.Gen)
			}
			if ev.Tune.BestKey == "" || ev.Tune.TotalEvals == 0 {
				t.Errorf("generation payload incomplete: %+v", ev.Tune)
			}
			if gens > 0 && ev.Tune.BestScore > lastBest {
				t.Errorf("bestScore rose across generations: %.4f -> %.4f", lastBest, ev.Tune.BestScore)
			}
			lastBest = ev.Tune.BestScore
			gens++
		case "cell":
			cells++
			if ev.Tune != nil {
				t.Errorf("cell event carries a tune payload")
			}
		}
	}
	if gens < 2 {
		t.Fatalf("%d generation events, want >= 2", gens)
	}
	if cells == 0 {
		t.Fatal("tune job emitted no cell events")
	}

	var out struct {
		Values map[string]float64 `json:"values"`
		Lines  []string           `json:"lines"`
	}
	if err := json.Unmarshal(fetchBytes(t, ts.URL+"/v1/jobs/"+view.ID+"/values"), &out); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"bestScore", "generations", "evals", "cacheHits", "converged", "bestP99Us"} {
		if _, ok := out.Values[key]; !ok {
			t.Errorf("values missing %q: %v", key, out.Values)
		}
	}
	if out.Values["generations"] != float64(gens) {
		t.Errorf("values generations = %v, %d generation events", out.Values["generations"], gens)
	}
	if len(out.Lines) < 2 {
		t.Errorf("tune job rendered %d lines, want >= 2", len(out.Lines))
	}
}

// TestTuneJobMatchesDirectRun pins the serve determinism contract for
// tune jobs: the daemon's outcome is byte-for-byte the library's.
func TestTuneJobMatchesDirectRun(t *testing.T) {
	direct, err := tune.Run(context.Background(), tuneParamsFor(), nil, tune.Hooks{})
	if err != nil {
		t.Fatal(err)
	}

	_, ts := testServer(t, Config{Workers: 2, QueueDepth: 4}, nil)
	id := submitAndWait(t, ts.URL, tuneBody)
	var out struct {
		Values map[string]float64 `json:"values"`
		Lines  []string           `json:"lines"`
	}
	if err := json.Unmarshal(fetchBytes(t, ts.URL+"/v1/jobs/"+id+"/values"), &out); err != nil {
		t.Fatal(err)
	}
	if got, want := out.Values["bestScore"], direct.BestScore; got != want {
		t.Errorf("job bestScore %v, direct run %v", got, want)
	}
	if got, want := out.Values["generations"], float64(direct.Generations); got != want {
		t.Errorf("job generations %v, direct run %v", got, want)
	}
	if got, want := out.Values["evals"], float64(direct.Evals); got != want {
		t.Errorf("job evals %v, direct run %v", got, want)
	}
	if got, want := out.Values["converged"], boolVal(direct.Converged); got != want {
		t.Errorf("job converged %v, direct run %v", got, want)
	}
}

// TestTuneJobUsesCellCache: with the result cache on, a tune job's
// revisited candidates are served from the per-cell cache (cellHits
// delta > 0), and resubmitting the identical search completes from the
// job-level result cache without re-running.
func TestTuneJobUsesCellCache(t *testing.T) {
	sched, ts := testServer(t, Config{Workers: 1, QueueDepth: 4, CacheEntries: 256}, nil)

	before, ok := sched.CacheStats()
	if !ok {
		t.Fatal("cache disabled")
	}
	id := submitAndWait(t, ts.URL, tuneBody)
	after, _ := sched.CacheStats()
	if after.CellHits <= before.CellHits {
		t.Errorf("cellHits %d -> %d: no revisited candidate was served from the cell cache",
			before.CellHits, after.CellHits)
	}

	// Identical resubmission: job-level cache hit, no execution.
	resp := postJSON(t, ts.URL+"/v1/jobs", tuneBody)
	v := decodeView(t, resp)
	if !v.Cached || v.State != StateDone {
		t.Errorf("resubmitted tune job: cached=%t state=%s, want cached done", v.Cached, v.State)
	}
	var first, second struct {
		Values map[string]float64 `json:"values"`
	}
	if err := json.Unmarshal(fetchBytes(t, ts.URL+"/v1/jobs/"+id+"/values"), &first); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(fetchBytes(t, ts.URL+"/v1/jobs/"+v.ID+"/values"), &second); err != nil {
		t.Fatal(err)
	}
	if first.Values["bestScore"] != second.Values["bestScore"] {
		t.Errorf("cached bestScore %v differs from original %v",
			second.Values["bestScore"], first.Values["bestScore"])
	}
}

// TestTuneValidation covers the tune-specific 400 surface.
func TestTuneValidation(t *testing.T) {
	_, ts := testServer(t, Config{Workers: 1, QueueDepth: 2}, nil)
	for _, body := range []string{
		`{"type":"tune","strategy":"gradient"}`,
		`{"type":"tune","objective":"latency"}`,
		`{"type":"tune","space":{"policies":["fifo"]}}`,
		`{"type":"tune","space":{"chiplets":[5]}}`,
		`{"type":"tune","generations":-1}`,
		`{"type":"tune","sloUs":-5}`,
		`{"type":"tune","experiment":"area"}`,
		`{"type":"tune","faultRate":0.5}`,
		`{"type":"experiment","experiment":"area","objective":"p99"}`,
		`{"type":"observed","strategy":"hill"}`,
	} {
		resp := postJSON(t, ts.URL+"/v1/jobs", body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("submit %s: status %d, want 400", body, resp.StatusCode)
		}
	}
	// A minimal tune request is valid: defaults fill everything.
	if err := (JobRequest{Type: JobTune}).Validate(); err != nil {
		t.Errorf("zero-value tune request invalid: %v", err)
	}
}

// TestListFilters exercises GET /v1/jobs?state=&type=&tenant=.
func TestListFilters(t *testing.T) {
	_, ts := testServer(t, Config{Workers: 1, QueueDepth: 8},
		func(ctx context.Context, j *Job) { j.finish(StateDone, "") })

	for _, body := range []string{
		`{"type":"experiment","experiment":"area","quick":true,"tenant":"acme"}`,
		`{"type":"experiment","experiment":"fig19","quick":true,"tenant":"umbrella"}`,
		`{"type":"observed","requests":40,"quick":true,"tenant":"acme"}`,
	} {
		id := decodeView(t, postJSON(t, ts.URL+"/v1/jobs", body)).ID
		evs := drainProgress(t, ts.URL+"/v1/jobs/"+id+"/progress")
		if last := evs[len(evs)-1]; last.State != StateDone {
			t.Fatalf("stub job ended %s", last.State)
		}
	}

	list := func(query string) []JobView {
		t.Helper()
		var out struct {
			Jobs []JobView `json:"jobs"`
		}
		if err := json.Unmarshal(fetchBytes(t, ts.URL+"/v1/jobs"+query), &out); err != nil {
			t.Fatal(err)
		}
		return out.Jobs
	}

	if got := list(""); len(got) != 3 {
		t.Fatalf("unfiltered list has %d jobs, want 3", len(got))
	}
	if got := list("?tenant=acme"); len(got) != 2 {
		t.Errorf("tenant=acme: %d jobs, want 2", len(got))
	}
	if got := list("?type=observed"); len(got) != 1 || got[0].Type != JobObserved {
		t.Errorf("type=observed: %+v", got)
	}
	if got := list("?type=experiment&tenant=umbrella"); len(got) != 1 || got[0].Experiment != "fig19" {
		t.Errorf("combined filter: %+v", got)
	}
	if got := list("?state=done"); len(got) != 3 {
		t.Errorf("state=done: %d jobs, want 3", len(got))
	}
	if got := list("?state=running"); len(got) != 0 {
		t.Errorf("state=running: %d jobs, want 0", len(got))
	}
	if got := list("?tenant=nobody"); len(got) != 0 {
		t.Errorf("tenant=nobody: %d jobs, want 0", len(got))
	}

	// Unknown state/type filters fail loudly.
	for _, q := range []string{"?state=paused", "?type=batch"} {
		resp, err := http.Get(ts.URL + "/v1/jobs" + q)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("GET /v1/jobs%s: status %d, want 400", q, resp.StatusCode)
		}
	}
}

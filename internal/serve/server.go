// HTTP surface of the job daemon. Endpoints (all JSON):
//
//	POST   /v1/jobs                      submit  -> 202 JobView (429 + Retry-After when the queue is full)
//	GET    /v1/jobs                      list    -> {"jobs":[JobView...]}
//	GET    /v1/jobs/{id}                 status  -> JobView
//	POST   /v1/jobs/{id}/cancel         cancel  -> 202 JobView
//	GET    /v1/jobs/{id}/values          results -> {"values":{...},"lines":[...]}
//	GET    /v1/jobs/{id}/progress        NDJSON event stream until the job ends
//	GET    /v1/jobs/{id}/artifacts/{kind} Chrome trace / JSON report, streamed
//	GET    /v1/experiments               registered experiment IDs
//	GET    /healthz                      liveness + drain state
//
// Artifact and values bytes come straight from the same exporters the
// CLI uses, so they are byte-identical to a local run with the same
// parameters.
package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"

	"accelflow/internal/experiments"
	"accelflow/internal/obs"
)

// Server routes the HTTP API onto a Scheduler.
type Server struct {
	sched *Scheduler
	mux   *http.ServeMux
}

// NewServer builds the route table.
func NewServer(sched *Scheduler) *Server {
	s := &Server{sched: sched, mux: http.NewServeMux()}
	s.mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/jobs", s.handleList)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	s.mux.HandleFunc("POST /v1/jobs/{id}/cancel", s.handleCancel)
	s.mux.HandleFunc("GET /v1/jobs/{id}/values", s.handleValues)
	s.mux.HandleFunc("GET /v1/jobs/{id}/progress", s.handleProgress)
	s.mux.HandleFunc("GET /v1/jobs/{id}/artifacts/{kind}", s.handleArtifact)
	s.mux.HandleFunc("GET /v1/experiments", s.handleExperiments)
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	return s
}

// Handler returns the root handler for an http.Server.
func (s *Server) Handler() http.Handler { return s.mux }

// maxBody bounds submit payloads; job requests are tiny.
const maxBody = 1 << 20

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

func (s *Server) retryAfterSeconds() string {
	secs := int(s.sched.Config().RetryAfter.Seconds())
	if secs < 1 {
		secs = 1
	}
	return strconv.Itoa(secs)
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req JobRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("serve: bad job request: %w", err))
		return
	}
	j, err := s.sched.Submit(req)
	switch {
	case errors.Is(err, ErrQueueFull):
		// Admission control: tell the client when to come back instead
		// of letting the backlog grow.
		w.Header().Set("Retry-After", s.retryAfterSeconds())
		writeError(w, http.StatusTooManyRequests, err)
		return
	case errors.Is(err, ErrDraining):
		w.Header().Set("Retry-After", s.retryAfterSeconds())
		writeError(w, http.StatusServiceUnavailable, err)
		return
	case err != nil:
		writeError(w, http.StatusBadRequest, err)
		return
	}
	w.Header().Set("Location", "/v1/jobs/"+j.ID)
	writeJSON(w, http.StatusAccepted, j.snapshot())
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	jobs := s.sched.Jobs()
	views := make([]JobView, 0, len(jobs))
	for _, j := range jobs {
		views = append(views, j.snapshot())
	}
	writeJSON(w, http.StatusOK, map[string]any{"jobs": views})
}

// job resolves the {id} path segment, writing the 404 itself when
// unknown.
func (s *Server) job(w http.ResponseWriter, r *http.Request) *Job {
	j := s.sched.Get(r.PathValue("id"))
	if j == nil {
		writeError(w, http.StatusNotFound, ErrNotFound)
	}
	return j
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	if j := s.job(w, r); j != nil {
		writeJSON(w, http.StatusOK, j.snapshot())
	}
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j := s.job(w, r)
	if j == nil {
		return
	}
	j.requestCancel()
	writeJSON(w, http.StatusAccepted, j.snapshot())
}

func (s *Server) handleValues(w http.ResponseWriter, r *http.Request) {
	j := s.job(w, r)
	if j == nil {
		return
	}
	values, lines, state := j.results()
	if !state.Terminal() {
		writeError(w, http.StatusConflict,
			fmt.Errorf("serve: job %s is %s; values are available once it finishes", j.ID, state))
		return
	}
	if state != StateDone {
		writeError(w, http.StatusConflict,
			fmt.Errorf("serve: job %s finished %s and produced no values", j.ID, state))
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"id": j.ID, "values": values, "lines": lines})
}

// handleProgress streams the job's events as NDJSON (one JSON object
// per line), flushing after every event, until the job reaches a
// terminal state or the client goes away. Reading the stream to EOF is
// therefore a completion barrier: the last line is the "done" event.
func (s *Server) handleProgress(w http.ResponseWriter, r *http.Request) {
	j := s.job(w, r)
	if j == nil {
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	next := 0
	for {
		evs, more, terminal := j.eventsSince(next)
		for _, ev := range evs {
			if err := enc.Encode(ev); err != nil {
				return
			}
		}
		next += len(evs)
		if flusher != nil && len(evs) > 0 {
			flusher.Flush()
		}
		if terminal {
			return
		}
		select {
		case <-more:
		case <-r.Context().Done():
			return
		}
	}
}

func (s *Server) handleArtifact(w http.ResponseWriter, r *http.Request) {
	j := s.job(w, r)
	if j == nil {
		return
	}
	kind := obs.Artifact(r.PathValue("kind"))
	known := false
	for _, a := range obs.Artifacts() {
		if a == kind {
			known = true
		}
	}
	if !known {
		writeError(w, http.StatusNotFound, fmt.Errorf("serve: unknown artifact %q (want trace or report)", kind))
		return
	}
	sink, state := j.artifactSink()
	if !state.Terminal() {
		writeError(w, http.StatusConflict,
			fmt.Errorf("serve: job %s is %s; artifacts are available once it finishes", j.ID, state))
		return
	}
	if state != StateDone || sink == nil {
		writeError(w, http.StatusNotFound,
			fmt.Errorf("serve: job %s has no %s artifact (only successful observed jobs export artifacts)", j.ID, kind))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Disposition", fmt.Sprintf("attachment; filename=%s-%s.json", j.ID, kind))
	// Streamed straight from the sink; exports are read-only, so
	// concurrent downloads of the same job are safe.
	_ = sink.WriteArtifact(kind, w)
}

func (s *Server) handleExperiments(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"experiments": experiments.IDs()})
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":   "ok",
		"draining": s.sched.Draining(),
	})
}

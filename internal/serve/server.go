// HTTP surface of the job daemon. Endpoints (all JSON):
//
//	POST   /v1/jobs                      submit  -> 202 JobView (400 invalid, 429 + Retry-After
//	                                               when the tenant's queue or token bucket is full,
//	                                               503 draining, 500 internal)
//	GET    /v1/jobs                      list    -> {"jobs":[JobView...]}; optional
//	                                               ?state= ?type= ?tenant= filters
//	                                               (400 on unknown state/type)
//	GET    /v1/jobs/{id}                 status  -> JobView ("cached": true when served from cache)
//	POST   /v1/jobs/{id}/cancel         cancel  -> 202 JobView
//	GET    /v1/jobs/{id}/values          results -> {"values":{...},"lines":[...]}
//	GET    /v1/jobs/{id}/progress        NDJSON event stream until the job ends
//	GET    /v1/jobs/{id}/artifacts/{kind} Chrome trace / JSON report, streamed
//	GET    /v1/experiments               registered experiment IDs
//	GET    /v1/cache                     result-cache stats ({"enabled":false} when off)
//	GET    /healthz                      liveness + drain state
//
// Artifact and values bytes come straight from the same exporters the
// CLI uses, so they are byte-identical to a local run with the same
// parameters — including when served from the result cache, which
// stores the rendered bytes themselves.
package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"time"

	"accelflow/internal/experiments"
	"accelflow/internal/obs"
)

// Server routes the HTTP API onto a Scheduler.
type Server struct {
	sched *Scheduler
	mux   *http.ServeMux
	// heartbeat is the progress-stream keep-alive interval (see
	// handleProgress); SetHeartbeat overrides the 15s default.
	heartbeat time.Duration
}

// NewServer builds the route table.
func NewServer(sched *Scheduler) *Server {
	s := &Server{sched: sched, mux: http.NewServeMux(), heartbeat: 15 * time.Second}
	s.mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/jobs", s.handleList)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	s.mux.HandleFunc("POST /v1/jobs/{id}/cancel", s.handleCancel)
	s.mux.HandleFunc("GET /v1/jobs/{id}/values", s.handleValues)
	s.mux.HandleFunc("GET /v1/jobs/{id}/progress", s.handleProgress)
	s.mux.HandleFunc("GET /v1/jobs/{id}/artifacts/{kind}", s.handleArtifact)
	s.mux.HandleFunc("GET /v1/experiments", s.handleExperiments)
	s.mux.HandleFunc("GET /v1/cache", s.handleCache)
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	return s
}

// SetHeartbeat overrides the progress-stream keep-alive interval (the
// daemon's -heartbeat flag; tests shrink it). d <= 0 disables
// heartbeats.
func (s *Server) SetHeartbeat(d time.Duration) { s.heartbeat = d }

// Handler returns the root handler for an http.Server.
func (s *Server) Handler() http.Handler { return s.mux }

// maxBody bounds submit payloads; job requests are tiny.
const maxBody = 1 << 20

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

func (s *Server) retryAfterSeconds() string {
	secs := int(s.sched.Config().RetryAfter.Seconds())
	if secs < 1 {
		secs = 1
	}
	return strconv.Itoa(secs)
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req JobRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("serve: bad job request: %w", err))
		return
	}
	j, err := s.sched.Submit(req)
	if err != nil {
		code, retryAfter := submitErrorStatus(err)
		if code == http.StatusTooManyRequests || code == http.StatusServiceUnavailable {
			// Admission control: tell the client when to come back
			// instead of letting the backlog grow.
			if retryAfter == "" {
				retryAfter = s.retryAfterSeconds()
			}
			w.Header().Set("Retry-After", retryAfter)
		}
		writeError(w, code, err)
		return
	}
	w.Header().Set("Location", "/v1/jobs/"+j.ID)
	writeJSON(w, http.StatusAccepted, j.snapshot())
}

// submitErrorStatus maps a Submit error to its HTTP status plus, for
// rate-limit rejections, the per-tenant Retry-After seconds (empty
// otherwise; the caller falls back to the configured hint for
// queue-full/draining). Only errors matching ErrBadRequest are client
// errors — anything unrecognized is an internal failure and surfaces
// as 500, never 400.
func submitErrorStatus(err error) (code int, retryAfter string) {
	var rle *RateLimitError
	switch {
	case errors.As(err, &rle):
		secs := int(math.Ceil(rle.RetryAfter.Seconds()))
		if secs < 1 {
			secs = 1
		}
		return http.StatusTooManyRequests, strconv.Itoa(secs)
	case errors.Is(err, ErrQueueFull):
		return http.StatusTooManyRequests, ""
	case errors.Is(err, ErrDraining):
		return http.StatusServiceUnavailable, ""
	case errors.Is(err, ErrBadRequest):
		return http.StatusBadRequest, ""
	default:
		return http.StatusInternalServerError, ""
	}
}

// handleList returns all admitted jobs in submission order. Optional
// query filters compose conjunctively: ?state= (queued, running, done,
// failed, cancelled), ?type= (experiment, observed, tune), and
// ?tenant= (exact match; "tenant=" selects the default tenant — an
// absent parameter means no filtering). Unknown state/type values are
// a 400, not an empty result, so typos fail loudly.
func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	state := JobState(q.Get("state"))
	switch state {
	case "", StateQueued, StateRunning, StateDone, StateFailed, StateCancelled:
	default:
		writeError(w, http.StatusBadRequest, badRequestf("serve: unknown state filter %q", state))
		return
	}
	typ := q.Get("type")
	switch typ {
	case "", JobExperiment, JobObserved, JobTune:
	default:
		writeError(w, http.StatusBadRequest, badRequestf("serve: unknown type filter %q", typ))
		return
	}
	_, filterTenant := q["tenant"]
	tenant := q.Get("tenant")

	jobs := s.sched.Jobs()
	views := make([]JobView, 0, len(jobs))
	for _, j := range jobs {
		v := j.snapshot()
		if state != "" && v.State != state {
			continue
		}
		if typ != "" && v.Type != typ {
			continue
		}
		if filterTenant && v.Tenant != tenant {
			continue
		}
		views = append(views, v)
	}
	writeJSON(w, http.StatusOK, map[string]any{"jobs": views})
}

// job resolves the {id} path segment, writing the 404 itself when
// unknown.
func (s *Server) job(w http.ResponseWriter, r *http.Request) *Job {
	j := s.sched.Get(r.PathValue("id"))
	if j == nil {
		writeError(w, http.StatusNotFound, ErrNotFound)
	}
	return j
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	if j := s.job(w, r); j != nil {
		writeJSON(w, http.StatusOK, j.snapshot())
	}
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j := s.job(w, r)
	if j == nil {
		return
	}
	j.requestCancel()
	writeJSON(w, http.StatusAccepted, j.snapshot())
}

func (s *Server) handleValues(w http.ResponseWriter, r *http.Request) {
	j := s.job(w, r)
	if j == nil {
		return
	}
	values, lines, state := j.results()
	if !state.Terminal() {
		writeError(w, http.StatusConflict,
			fmt.Errorf("serve: job %s is %s; values are available once it finishes", j.ID, state))
		return
	}
	if state != StateDone {
		writeError(w, http.StatusConflict,
			fmt.Errorf("serve: job %s finished %s and produced no values", j.ID, state))
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"id": j.ID, "values": values, "lines": lines})
}

// handleProgress streams the job's events as NDJSON (one JSON object
// per line), flushing after every event, until the job reaches a
// terminal state or the client goes away. Reading the stream to EOF is
// therefore a completion barrier: the last event line is the "done"
// event.
//
// Stream contract: every job-event line carries an "event" field.
// While the job is idle (a long simulation emits no cell events for a
// while) the stream additionally emits a keep-alive line
// {"type":"heartbeat"} every heartbeat interval and flushes it, so
// proxies and load balancers with idle timeouts keep the connection
// open. Heartbeats carry no job state, are not part of the event
// sequence (no "seq"), and may appear between any two events —
// clients must skip lines with a "type" field.
func (s *Server) handleProgress(w http.ResponseWriter, r *http.Request) {
	j := s.job(w, r)
	if j == nil {
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	var beat <-chan time.Time
	if s.heartbeat > 0 {
		t := time.NewTicker(s.heartbeat)
		defer t.Stop()
		beat = t.C
	}
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	next := 0
	for {
		evs, more, terminal := j.eventsSince(next)
		for _, ev := range evs {
			if err := enc.Encode(ev); err != nil {
				return
			}
		}
		next += len(evs)
		if flusher != nil && len(evs) > 0 {
			flusher.Flush()
		}
		if terminal {
			return
		}
		select {
		case <-more:
		case <-beat:
			if _, err := io.WriteString(w, "{\"type\":\"heartbeat\"}\n"); err != nil {
				return
			}
			if flusher != nil {
				flusher.Flush()
			}
		case <-r.Context().Done():
			return
		}
	}
}

func (s *Server) handleArtifact(w http.ResponseWriter, r *http.Request) {
	j := s.job(w, r)
	if j == nil {
		return
	}
	kind := obs.Artifact(r.PathValue("kind"))
	known := false
	for _, a := range obs.Artifacts() {
		if a == kind {
			known = true
		}
	}
	if !known {
		writeError(w, http.StatusNotFound, fmt.Errorf("serve: unknown artifact %q (want trace or report)", kind))
		return
	}
	sink, cached, state := j.artifactSource()
	if !state.Terminal() {
		writeError(w, http.StatusConflict,
			fmt.Errorf("serve: job %s is %s; artifacts are available once it finishes", j.ID, state))
		return
	}
	if state != StateDone || (sink == nil && cached[kind] == nil) {
		writeError(w, http.StatusNotFound,
			fmt.Errorf("serve: job %s has no %s artifact (only successful observed jobs export artifacts)", j.ID, kind))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Disposition", fmt.Sprintf("attachment; filename=%s-%s.json", j.ID, kind))
	if sink != nil {
		// Streamed straight from the sink; exports are read-only, so
		// concurrent downloads of the same job are safe.
		_ = sink.WriteArtifact(kind, w)
		return
	}
	// Cache-served job: the entry holds the exact bytes the exporter
	// rendered when the cold run finished.
	_, _ = w.Write(cached[kind])
}

// handleCache reports result-cache statistics; a daemon started
// without -cache answers {"enabled": false} and zero stats.
func (s *Server) handleCache(w http.ResponseWriter, r *http.Request) {
	stats, ok := s.sched.CacheStats()
	writeJSON(w, http.StatusOK, map[string]any{"enabled": ok, "stats": stats})
}

func (s *Server) handleExperiments(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"experiments": experiments.IDs()})
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":   "ok",
		"draining": s.sched.Draining(),
	})
}

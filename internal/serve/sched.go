// The in-process job scheduler: a bounded admission queue feeding a
// fixed worker pool, with per-job cancellation and graceful drain.
// Admission control is strict — a full queue rejects immediately with
// ErrQueueFull (the HTTP layer maps it to 429 + Retry-After) instead
// of queueing unboundedly, which is what keeps a daemon under heavy
// traffic from accumulating hours of simulation backlog.
package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"accelflow/internal/experiments"
	"accelflow/internal/workload"
)

// Admission errors; the HTTP layer maps them to status codes.
var (
	// ErrQueueFull means the bounded queue is at capacity (HTTP 429).
	ErrQueueFull = errors.New("serve: job queue full")
	// ErrDraining means the scheduler is shutting down (HTTP 503).
	ErrDraining = errors.New("serve: scheduler draining, not accepting jobs")
	// ErrNotFound means no job has the requested ID (HTTP 404).
	ErrNotFound = errors.New("serve: no such job")
)

// Config sizes the scheduler.
type Config struct {
	// Workers bounds concurrently running jobs; <= 0 means 2.
	Workers int
	// QueueDepth bounds jobs admitted but not yet picked up by a
	// worker; <= 0 means 8. Submissions beyond it fail with
	// ErrQueueFull.
	QueueDepth int
	// RetryAfter is the backoff hint returned with 429/503 responses;
	// <= 0 means 1s.
	RetryAfter time.Duration
	// Check attaches the runtime invariant checker to every job the
	// daemon runs (the -check flag). Checking never changes job values
	// or artifact bytes; a violated invariant fails the job with a
	// structured error instead.
	Check bool
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 8
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	return c
}

// Scheduler admits, runs, cancels, and drains jobs.
type Scheduler struct {
	cfg        Config
	root       context.Context
	rootCancel context.CancelFunc
	queue      chan *Job
	wg         sync.WaitGroup

	mu       sync.Mutex
	jobs     map[string]*Job
	order    []string
	draining bool
	nextID   int64

	// runJob executes one started job; tests swap it for a stub to
	// exercise admission/cancel/drain without real simulations.
	runJob func(ctx context.Context, j *Job)
}

// NewScheduler starts cfg.Workers workers and returns the scheduler.
func NewScheduler(cfg Config) *Scheduler {
	return newScheduler(cfg, nil)
}

// newScheduler optionally injects a job runner (tests stub it to
// exercise admission, cancellation, and drain without simulating); it
// must be wired before the workers start to stay race-free.
func newScheduler(cfg Config, runFn func(ctx context.Context, j *Job)) *Scheduler {
	cfg = cfg.withDefaults()
	root, cancel := context.WithCancel(context.Background())
	s := &Scheduler{
		cfg:        cfg,
		root:       root,
		rootCancel: cancel,
		queue:      make(chan *Job, cfg.QueueDepth),
		jobs:       map[string]*Job{},
	}
	s.runJob = s.execute
	if runFn != nil {
		s.runJob = runFn
	}
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// Config returns the effective (defaulted) configuration.
func (s *Scheduler) Config() Config { return s.cfg }

func (s *Scheduler) worker() {
	defer s.wg.Done()
	for j := range s.queue {
		ctx, cancel := context.WithCancel(s.root)
		if !j.start(cancel) {
			// Cancelled while queued; nothing to run.
			cancel()
			continue
		}
		s.runJob(ctx, j)
		cancel()
	}
}

// Submit validates and admits one job. It never blocks: a full queue
// returns ErrQueueFull, a draining scheduler ErrDraining, and a
// malformed request its validation error.
func (s *Scheduler) Submit(req JobRequest) (*Job, error) {
	if err := req.Validate(); err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return nil, ErrDraining
	}
	j := newJob(fmt.Sprintf("job-%d", s.nextID+1), req)
	select {
	case s.queue <- j:
		s.nextID++
		s.jobs[j.ID] = j
		s.order = append(s.order, j.ID)
		return j, nil
	default:
		return nil, ErrQueueFull
	}
}

// Get returns a job by ID (nil when unknown).
func (s *Scheduler) Get(id string) *Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs[id]
}

// Jobs returns all admitted jobs in submission order.
func (s *Scheduler) Jobs() []*Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Job, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.jobs[id])
	}
	return out
}

// Cancel requests cancellation of one job: queued jobs die
// immediately, running ones stop at their sweep/kernel checkpoints.
func (s *Scheduler) Cancel(id string) error {
	j := s.Get(id)
	if j == nil {
		return ErrNotFound
	}
	j.requestCancel()
	return nil
}

// Draining reports whether admission is closed.
func (s *Scheduler) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// StartDrain closes admission: later Submits fail with ErrDraining
// while already-admitted jobs (queued and running) continue to
// completion. Idempotent.
func (s *Scheduler) StartDrain() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return
	}
	s.draining = true
	// Submit sends only under mu after checking draining, so closing
	// here cannot race a send.
	close(s.queue)
}

// Drain closes admission and waits until every admitted job has
// reached a terminal state. If ctx expires first, running jobs are
// cancelled via the scheduler root context and Drain still waits for
// the (now fast, cooperative) worker exit before returning ctx's
// error.
func (s *Scheduler) Drain(ctx context.Context) error {
	s.StartDrain()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.rootCancel()
		<-done
		return ctx.Err()
	}
}

// Close force-stops the scheduler: admission closes, running jobs are
// cancelled, and workers are joined. Tests use it; the daemon prefers
// Drain.
func (s *Scheduler) Close() {
	s.StartDrain()
	s.rootCancel()
	s.wg.Wait()
}

// execute runs one started job to a terminal state.
func (s *Scheduler) execute(ctx context.Context, j *Job) {
	switch j.Req.Type {
	case JobExperiment:
		o := j.Req.options()
		o.Ctx = ctx
		o.OnCell = j.cellDone
		o.Check = s.cfg.Check
		res, err := experiments.Registry[j.Req.Experiment](o)
		if err != nil {
			j.finish(classify(ctx, err), err.Error())
			return
		}
		vals := make(map[string]float64, len(res.Values))
		for k, v := range res.Values {
			vals[k] = v
		}
		j.setResult(vals, append([]string(nil), res.Lines...), nil)
		j.finish(StateDone, "")
	case JobObserved:
		p := j.Req.observedParams()
		p.Check = s.cfg.Check
		spec, sink, err := workload.BuildObserved(p)
		if err != nil {
			j.finish(StateFailed, err.Error())
			return
		}
		res, err := spec.RunCtx(ctx)
		if err != nil {
			j.finish(classify(ctx, err), err.Error())
			return
		}
		vals := map[string]float64{
			"completed": float64(res.Completed),
			"timedOut":  float64(res.TimedOut),
			"fellBack":  float64(res.FellBack),
			"elapsedUs": res.Elapsed.Micros(),
			"p99Us":     res.All.P99().Micros(),
			"meanUs":    res.All.Mean().Micros(),
			"spans":     float64(sink.SpanCount()),
		}
		j.setResult(vals, nil, sink)
		j.finish(StateDone, "")
	default:
		// Validate rejected anything else at admission.
		j.finish(StateFailed, fmt.Sprintf("unreachable job type %q", j.Req.Type))
	}
}

// classify distinguishes a cancelled run from a genuine failure.
func classify(ctx context.Context, err error) JobState {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) || ctx.Err() != nil {
		return StateCancelled
	}
	return StateFailed
}

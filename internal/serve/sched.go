// The in-process job scheduler: per-tenant bounded admission queues
// feeding a fixed worker pool via weighted-fair (deficit round-robin)
// dequeue, with per-job cancellation, graceful drain, per-tenant token
// buckets, and a content-addressed result cache with singleflight
// coalescing (cache.go).
//
// Admission control is strict — a tenant's full queue rejects
// immediately with ErrQueueFull and an exhausted token bucket with
// *RateLimitError (the HTTP layer maps both to 429 + Retry-After)
// instead of queueing unboundedly, which is what keeps a daemon under
// heavy traffic from accumulating hours of simulation backlog. Both
// bounds are per tenant: one tenant hammering its bucket or filling
// its queue never delays another tenant's admission, and the
// weighted-fair dequeue keeps one tenant's deep batch backlog from
// starving another's interactive jobs.
//
// The zero-value knobs opt out: CacheEntries <= 0 disables caching and
// coalescing, TenantRate <= 0 disables rate limiting, and every
// request without a tenant falls into the "" tenant — so a zero
// Config behaves exactly like the original single-queue scheduler.
package serve

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"accelflow/internal/experiments"
	"accelflow/internal/tune"
	"accelflow/internal/workload"
)

// boolVal renders a bool into the values map's float domain.
func boolVal(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// Admission errors; the HTTP layer maps them to status codes.
var (
	// ErrQueueFull means the submitting tenant's bounded queue is at
	// capacity (HTTP 429).
	ErrQueueFull = errors.New("serve: job queue full")
	// ErrDraining means the scheduler is shutting down (HTTP 503).
	ErrDraining = errors.New("serve: scheduler draining, not accepting jobs")
	// ErrNotFound means no job has the requested ID (HTTP 404).
	ErrNotFound = errors.New("serve: no such job")
	// ErrBadRequest is the sentinel all request-validation errors match
	// via errors.Is (HTTP 400). Errors that do NOT match it — and are
	// not one of the sentinels above — are internal failures and map to
	// 500, never 400.
	ErrBadRequest = errors.New("serve: invalid job request")
)

// requestError is a validation failure: errors.Is(err, ErrBadRequest)
// holds for every error built with badRequestf.
type requestError struct{ msg string }

func (e *requestError) Error() string        { return e.msg }
func (e *requestError) Is(target error) bool { return target == ErrBadRequest }

// badRequestf builds a client-error (HTTP 400) validation failure.
func badRequestf(format string, args ...any) error {
	return &requestError{msg: fmt.Sprintf(format, args...)}
}

// RateLimitError reports token-bucket exhaustion for one tenant; the
// HTTP layer maps it to 429 with the per-tenant Retry-After.
type RateLimitError struct {
	// Tenant is the rejected tenant ("" is the default tenant).
	Tenant string
	// RetryAfter is when the bucket will next hold a full token.
	RetryAfter time.Duration
}

func (e *RateLimitError) Error() string {
	return fmt.Sprintf("serve: tenant %q rate limited; retry in %s", e.Tenant, e.RetryAfter)
}

// Config sizes the scheduler.
type Config struct {
	// Workers bounds concurrently running jobs; <= 0 means 2.
	Workers int
	// QueueDepth bounds jobs admitted but not yet picked up by a
	// worker, per tenant; <= 0 means 8. Submissions beyond it fail with
	// ErrQueueFull.
	QueueDepth int
	// RetryAfter is the backoff hint returned with queue-full/draining
	// responses; <= 0 means 1s. (Rate-limit rejections compute their
	// own per-tenant Retry-After from the bucket instead.)
	RetryAfter time.Duration
	// Check attaches the runtime invariant checker to every job the
	// daemon runs (the -check flag). Checking never changes job values
	// or artifact bytes; a violated invariant fails the job with a
	// structured error instead.
	Check bool
	// CacheEntries bounds the content-addressed result cache (completed
	// jobs and sweep cells share the bound; see cache.go). <= 0
	// disables caching AND singleflight coalescing: every submission
	// runs, exactly the pre-cache behavior.
	CacheEntries int
	// TenantRate is the per-tenant token-bucket refill rate in
	// submissions per second; <= 0 disables rate limiting entirely.
	TenantRate float64
	// TenantBurst is the bucket capacity (tokens a previously idle
	// tenant can spend at once); <= 0 means 8 when TenantRate is set.
	TenantBurst int
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 8
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.TenantRate > 0 && c.TenantBurst <= 0 {
		c.TenantBurst = 8
	}
	return c
}

// tenantState is one tenant's admission state: its FIFO of queued
// jobs, its deficit-round-robin credit, and its token bucket. All
// fields are guarded by the scheduler mutex.
type tenantState struct {
	name string
	fifo []*Job
	// deficit is the DRR credit in cost units; a visit credits one
	// quantum and a dispatch debits the job's cost (see jobCost).
	deficit int
	// Token bucket (TenantRate/TenantBurst). tokens lazily refills on
	// each admission attempt; inited distinguishes a fresh (full)
	// bucket from a drained one.
	tokens     float64
	lastRefill time.Time
	inited     bool
}

// flight is one in-flight cacheable run: the leader executes, the
// followers coalesced onto it and complete from its outcome without
// ever occupying a queue slot or a worker.
type flight struct {
	leader    *Job
	followers []*Job
}

// jobCost is the DRR cost of dispatching a job: batch jobs weigh 4x an
// interactive one, so under contention a tenant's interactive work
// dispatches ~4x as often per unit of credit.
func jobCost(j *Job) int {
	if j.Req.Priority == PriorityBatch {
		return 4
	}
	return 1
}

// Scheduler admits, runs, cancels, and drains jobs.
type Scheduler struct {
	cfg        Config
	root       context.Context
	rootCancel context.CancelFunc
	wg         sync.WaitGroup
	cache      *resultCache // nil when CacheEntries <= 0

	mu         sync.Mutex
	cond       *sync.Cond // signals workers when work or drain arrives
	jobs       map[string]*Job
	order      []string
	draining   bool
	nextID     int64
	tenants    map[string]*tenantState
	lastTenant string // DRR cursor: iteration resumes after this name
	flights    map[string]*flight

	// now is the clock, injectable so token-bucket tests can step time
	// deterministically.
	now func() time.Time

	// runJob executes one started job; tests swap it for a stub to
	// exercise admission/cancel/drain without real simulations.
	runJob func(ctx context.Context, j *Job)
}

// NewScheduler starts cfg.Workers workers and returns the scheduler.
func NewScheduler(cfg Config) *Scheduler {
	return newScheduler(cfg, nil)
}

// newScheduler optionally injects a job runner (tests stub it to
// exercise admission, cancellation, and drain without simulating); it
// must be wired before the workers start to stay race-free.
func newScheduler(cfg Config, runFn func(ctx context.Context, j *Job)) *Scheduler {
	cfg = cfg.withDefaults()
	root, cancel := context.WithCancel(context.Background())
	s := &Scheduler{
		cfg:        cfg,
		root:       root,
		rootCancel: cancel,
		jobs:       map[string]*Job{},
		tenants:    map[string]*tenantState{},
		flights:    map[string]*flight{},
		now:        time.Now,
	}
	s.cond = sync.NewCond(&s.mu)
	if cfg.CacheEntries > 0 {
		s.cache = newResultCache(cfg.CacheEntries)
	}
	s.runJob = s.execute
	if runFn != nil {
		s.runJob = runFn
	}
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// Config returns the effective (defaulted) configuration.
func (s *Scheduler) Config() Config { return s.cfg }

// CacheStats snapshots the result cache ("ok" false when caching is
// disabled).
func (s *Scheduler) CacheStats() (CacheStats, bool) {
	if s.cache == nil {
		return CacheStats{}, false
	}
	return s.cache.Stats(), true
}

func (s *Scheduler) worker() {
	defer s.wg.Done()
	for {
		j := s.next()
		if j == nil {
			return
		}
		ctx, cancel := context.WithCancel(s.root)
		if j.start(cancel) {
			s.runJob(ctx, j)
		}
		cancel()
		s.settle(j)
	}
}

// next blocks until a job is dispatchable (returning it) or the
// scheduler is draining with nothing queued (returning nil, which
// exits the worker).
func (s *Scheduler) next() *Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if j := s.pickLocked(); j != nil {
			return j
		}
		if s.draining {
			return nil
		}
		s.cond.Wait()
	}
}

// pickLocked runs deficit round-robin over the tenants that have
// queued jobs: tenant names iterate in sorted order starting after the
// last-served tenant, each visit credits one quantum, and the first
// head whose cost is covered dispatches. Rotations repeat until a job
// dispatches (credit grows every rotation, so a rotation count bounded
// by the maximum job cost suffices) or no tenant has anything queued.
// Requires mu.
func (s *Scheduler) pickLocked() *Job {
	active := make([]*tenantState, 0, len(s.tenants))
	for _, t := range s.tenants {
		if len(t.fifo) > 0 {
			active = append(active, t)
		}
	}
	if len(active) == 0 {
		return nil
	}
	sort.Slice(active, func(i, k int) bool { return active[i].name < active[k].name })
	start := 0
	for i, t := range active {
		if t.name > s.lastTenant {
			start = i
			break
		}
	}
	for {
		for i := 0; i < len(active); i++ {
			t := active[(start+i)%len(active)]
			t.deficit++
			if c := jobCost(t.fifo[0]); t.deficit >= c {
				t.deficit -= c
				j := t.fifo[0]
				t.fifo = t.fifo[1:]
				if len(t.fifo) == 0 {
					// Classic DRR: an emptied queue forfeits its credit,
					// so an idle tenant cannot bank an unbounded burst.
					t.deficit = 0
				}
				s.lastTenant = t.name
				return j
			}
		}
	}
}

// tenantLocked returns (creating on first use) a tenant's state.
// Requires mu.
func (s *Scheduler) tenantLocked(name string) *tenantState {
	t := s.tenants[name]
	if t == nil {
		t = &tenantState{name: name}
		s.tenants[name] = t
	}
	return t
}

// admitLocked charges one token from the tenant's bucket, refilling
// lazily from elapsed time. Requires mu.
func (s *Scheduler) admitLocked(t *tenantState) error {
	if s.cfg.TenantRate <= 0 {
		return nil
	}
	now := s.now()
	if !t.inited {
		t.tokens = float64(s.cfg.TenantBurst)
		t.inited = true
	} else {
		t.tokens += now.Sub(t.lastRefill).Seconds() * s.cfg.TenantRate
		if max := float64(s.cfg.TenantBurst); t.tokens > max {
			t.tokens = max
		}
	}
	t.lastRefill = now
	if t.tokens >= 1 {
		t.tokens--
		return nil
	}
	wait := time.Duration((1 - t.tokens) / s.cfg.TenantRate * float64(time.Second))
	return &RateLimitError{Tenant: t.name, RetryAfter: wait}
}

// registerLocked assigns the next job ID and records the job; only
// accepted submissions reach it, so rejections never burn IDs.
// Requires mu.
func (s *Scheduler) registerLocked(req JobRequest) *Job {
	s.nextID++
	j := newJob(fmt.Sprintf("job-%d", s.nextID), req)
	s.jobs[j.ID] = j
	s.order = append(s.order, j.ID)
	return j
}

// Submit validates and admits one job. It never blocks. Outcomes, in
// evaluation order:
//
//   - a malformed request returns its validation error (matches
//     ErrBadRequest);
//   - a draining scheduler returns ErrDraining;
//   - an exhausted tenant bucket returns *RateLimitError;
//   - with caching on, a completed identical result completes the job
//     synchronously from cache ("cached": true, no queue slot), and an
//     in-flight identical run coalesces the job onto it as a follower
//     (also no queue slot);
//   - a full tenant queue returns ErrQueueFull;
//   - otherwise the job enqueues on its tenant's FIFO.
func (s *Scheduler) Submit(req JobRequest) (*Job, error) {
	if err := req.Validate(); err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return nil, ErrDraining
	}
	t := s.tenantLocked(req.Tenant)
	if err := s.admitLocked(t); err != nil {
		return nil, err
	}
	var key string
	if s.cache != nil {
		key = req.resultKey()
	}
	if key != "" {
		if e, ok := s.cache.getJob(key); ok {
			j := s.registerLocked(req)
			j.completeCached(e)
			return j, nil
		}
		if f := s.flights[key]; f != nil {
			s.cache.coalesced()
			j := s.registerLocked(req)
			f.followers = append(f.followers, j)
			return j, nil
		}
	}
	if len(t.fifo) >= s.cfg.QueueDepth {
		return nil, ErrQueueFull
	}
	j := s.registerLocked(req)
	j.flightKey = key
	if key != "" {
		s.flights[key] = &flight{leader: j}
	}
	t.fifo = append(t.fifo, j)
	s.cond.Broadcast()
	return j, nil
}

// settle closes out a dispatched job after its worker is done with it:
// a successful cacheable leader publishes its result entry, and every
// coalesced follower completes — from the entry on success, mirroring
// the leader's terminal state otherwise (a follower of a cancelled or
// failed run reports that same outcome; resubmitting starts fresh).
// The entry is published and the flight retired under one lock
// acquisition, so a concurrent Submit either sees the flight (and
// coalesces) or sees the entry (and hits) — never neither.
func (s *Scheduler) settle(j *Job) {
	if j.flightKey == "" {
		return
	}
	state, errMsg := j.outcome()
	var entry *jobResultEntry
	if state == StateDone {
		entry = j.cacheEntry()
	}
	s.mu.Lock()
	var followers []*Job
	if f := s.flights[j.flightKey]; f != nil && f.leader == j {
		delete(s.flights, j.flightKey)
		followers = f.followers
	}
	if entry != nil {
		s.cache.putJob(j.flightKey, entry)
	}
	s.mu.Unlock()
	for _, fo := range followers {
		if entry != nil {
			fo.completeCached(entry)
		} else {
			fo.finish(state, errMsg)
		}
	}
}

// Get returns a job by ID (nil when unknown).
func (s *Scheduler) Get(id string) *Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs[id]
}

// Jobs returns all admitted jobs in submission order.
func (s *Scheduler) Jobs() []*Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Job, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.jobs[id])
	}
	return out
}

// Cancel requests cancellation of one job: queued jobs die
// immediately, running ones stop at their sweep/kernel checkpoints.
func (s *Scheduler) Cancel(id string) error {
	j := s.Get(id)
	if j == nil {
		return ErrNotFound
	}
	j.requestCancel()
	return nil
}

// Draining reports whether admission is closed.
func (s *Scheduler) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// StartDrain closes admission: later Submits fail with ErrDraining
// while already-admitted jobs (queued and running) continue to
// completion. Idempotent.
func (s *Scheduler) StartDrain() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return
	}
	s.draining = true
	// Wake every idle worker so it can observe the drain and exit once
	// the tenant queues are empty.
	s.cond.Broadcast()
}

// Drain closes admission and waits until every admitted job has
// reached a terminal state. If ctx expires first, running jobs are
// cancelled via the scheduler root context and Drain still waits for
// the (now fast, cooperative) worker exit before returning ctx's
// error.
func (s *Scheduler) Drain(ctx context.Context) error {
	s.StartDrain()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.rootCancel()
		<-done
		return ctx.Err()
	}
}

// Close force-stops the scheduler: admission closes, running jobs are
// cancelled, and workers are joined. Tests use it; the daemon prefers
// Drain.
func (s *Scheduler) Close() {
	s.StartDrain()
	s.rootCancel()
	s.wg.Wait()
}

// execute runs one started job to a terminal state.
func (s *Scheduler) execute(ctx context.Context, j *Job) {
	switch j.Req.Type {
	case JobExperiment:
		o := j.Req.options()
		o.Ctx = ctx
		o.OnCell = j.cellDone
		o.Check = s.cfg.Check
		if s.cache != nil && j.flightKey != "" {
			// Per-cell memoization, namespaced under the job's result
			// key so a cancelled sweep's completed cells are reusable
			// on resubmission. Safe despite non-concurrency-safe cell
			// values: singleflight guarantees one execution per key at
			// a time (see cache.go).
			o.Cache = cellCache{c: s.cache, prefix: "cell|" + j.flightKey + "|"}
		}
		res, err := experiments.Registry[j.Req.Experiment](o)
		if err != nil {
			j.finish(classify(ctx, err), err.Error())
			return
		}
		vals := make(map[string]float64, len(res.Values))
		for k, v := range res.Values {
			vals[k] = v
		}
		j.setResult(vals, append([]string(nil), res.Lines...), nil)
		j.finish(StateDone, "")
	case JobTune:
		p := j.Req.tuneParams()
		p.Check = s.cfg.Check
		h := tune.Hooks{
			OnEval:       j.cellDone,
			OnGeneration: func(pr tune.Progress, _ []byte) { j.generationDone(pr) },
		}
		if s.cache != nil && j.flightKey != "" {
			// Same per-cell memoization as experiment sweeps, namespaced
			// under the search signature: a revisited candidate — within
			// one search, after a cancel/resubmit, or across identical
			// searches — replays its Eval instead of re-simulating.
			h.Cache = cellCache{c: s.cache, prefix: "cell|" + j.flightKey + "|"}
		}
		res, err := tune.Run(ctx, p, nil, h)
		if err != nil {
			j.finish(classify(ctx, err), err.Error())
			return
		}
		vals := map[string]float64{
			"bestScore":     res.BestScore,
			"bestP99Us":     res.BestEval.P99Us,
			"bestMeanUs":    res.BestEval.MeanUs,
			"bestJoulesReq": res.BestEval.JoulesPerReq,
			"bestRPS":       res.BestEval.ThroughputRPS,
			"generations":   float64(res.Generations),
			"evals":         float64(res.Evals),
			"cacheHits":     float64(res.CacheHits),
			"converged":     boolVal(res.Converged),
		}
		lines := []string{
			fmt.Sprintf("tune %s/%s: best %s score=%.3f", res.Strategy, res.Objective, res.BestKey, res.BestScore),
			fmt.Sprintf("generations=%d evals=%d cacheHits=%d converged=%t",
				res.Generations, res.Evals, res.CacheHits, res.Converged),
		}
		for name, level := range res.BestConfig {
			lines = append(lines, fmt.Sprintf("  %s = %s", name, level))
		}
		sort.Strings(lines[2:])
		j.setResult(vals, lines, nil)
		j.finish(StateDone, "")
	case JobObserved:
		p := j.Req.observedParams()
		p.Check = s.cfg.Check
		spec, sink, err := workload.BuildObserved(p)
		if err != nil {
			j.finish(StateFailed, err.Error())
			return
		}
		res, err := spec.RunCtx(ctx)
		if err != nil {
			j.finish(classify(ctx, err), err.Error())
			return
		}
		vals := map[string]float64{
			"completed": float64(res.Completed),
			"timedOut":  float64(res.TimedOut),
			"fellBack":  float64(res.FellBack),
			"elapsedUs": res.Elapsed.Micros(),
			"p99Us":     res.All.P99().Micros(),
			"meanUs":    res.All.Mean().Micros(),
			"spans":     float64(sink.SpanCount()),
		}
		j.setResult(vals, nil, sink)
		j.finish(StateDone, "")
	default:
		// Validate rejected anything else at admission.
		j.finish(StateFailed, fmt.Sprintf("unreachable job type %q", j.Req.Type))
	}
}

// classify distinguishes a cancelled run from a genuine failure.
func classify(ctx context.Context, err error) JobState {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) || ctx.Err() != nil {
		return StateCancelled
	}
	return StateFailed
}

package serve

import (
	"context"
	"errors"
	"testing"
	"time"

	"accelflow/internal/control"
)

// stubReq is a valid request for stub-runner tests (never actually
// simulated — the stub runner intercepts execution).
func stubReq() JobRequest {
	return JobRequest{Type: JobExperiment, Experiment: "area", Quick: true}
}

// waitState polls until the job reaches want (fatal on timeout).
func waitState(t *testing.T, j *Job, want JobState) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if j.snapshot().State == want {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s: state %s, want %s", j.ID, j.snapshot().State, want)
}

// TestSubmitValidation: admission rejects malformed requests before
// they reach the queue.
func TestSubmitValidation(t *testing.T) {
	s := NewScheduler(Config{Workers: 1, QueueDepth: 1})
	defer s.Close()
	for _, req := range []JobRequest{
		{Type: "nope"},
		{Type: JobExperiment}, // missing ID
		{Type: JobExperiment, Experiment: "no-such-figure"},      // unknown ID
		{Type: JobExperiment, Experiment: "fig11", Requests: -1}, // negative budget
		{Type: JobExperiment, Experiment: "fig11", FaultRate: 2}, // faults on experiment
		{Type: JobObserved, Experiment: "fig11"},                 // experiment on observed
		{Type: JobObserved, FaultLoss: 1.5},                      // loss out of range
		{Type: JobObserved, FaultRate: -1},                       // negative rate
		{Type: JobExperiment, Experiment: "fig11", Parallelism: -2},
		{Type: JobExperiment, Experiment: "fig11", Shards: -1}, // negative shard count
		{Type: JobObserved, Shards: -4},                        // negative shard count
		{Type: JobExperiment, Experiment: "fig11", // control on experiment
			Control: &control.Spec{Shed: &control.ShedSpec{Queue: 64}}},
		{Type: JobTune, Control: &control.Spec{Shed: &control.ShedSpec{Queue: 64}}},
		{Type: JobObserved, // bad spec caught by control.Spec.Validate
			Control: &control.Spec{Autoscale: &control.AutoscaleSpec{Target: control.TargetPE}}},
		{Type: JobObserved, // replicas target needs a fleet
			Control: &control.Spec{Autoscale: &control.AutoscaleSpec{
				Target: control.TargetReplicas, UpUtil: 0.8, DownUtil: 0.2}}},
	} {
		if _, err := s.Submit(req); err == nil {
			t.Errorf("Submit(%+v) accepted an invalid request", req)
		}
	}
}

// TestQueueFull: with one busy worker and a depth-1 queue, a third
// submission is rejected with ErrQueueFull and admitted work still
// completes after the worker frees up.
func TestQueueFull(t *testing.T) {
	release := make(chan struct{})
	started := make(chan string, 8)
	s := newScheduler(Config{Workers: 1, QueueDepth: 1}, func(ctx context.Context, j *Job) {
		started <- j.ID
		<-release
		j.finish(StateDone, "")
	})
	defer s.Close()

	a, err := s.Submit(stubReq())
	if err != nil {
		t.Fatal(err)
	}
	<-started // a is running, queue is empty again
	b, err := s.Submit(stubReq())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit(stubReq()); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("third submit: err = %v, want ErrQueueFull", err)
	}
	close(release)
	waitState(t, a, StateDone)
	waitState(t, b, StateDone)
	// Queue drained: admission opens again.
	if _, err := s.Submit(stubReq()); err != nil {
		t.Fatalf("submit after drain of backlog: %v", err)
	}
}

// TestCancelQueued: a job cancelled while still queued dies
// immediately and is skipped by the worker.
func TestCancelQueued(t *testing.T) {
	release := make(chan struct{})
	ran := make(chan string, 8)
	s := newScheduler(Config{Workers: 1, QueueDepth: 2}, func(ctx context.Context, j *Job) {
		ran <- j.ID
		<-release
		j.finish(StateDone, "")
	})
	defer s.Close()

	a, _ := s.Submit(stubReq())
	<-ran
	b, _ := s.Submit(stubReq())
	if err := s.Cancel(b.ID); err != nil {
		t.Fatal(err)
	}
	waitState(t, b, StateCancelled) // immediate — before the worker frees up
	close(release)
	waitState(t, a, StateDone)
	select {
	case id := <-ran:
		t.Fatalf("cancelled queued job %s was executed", id)
	case <-time.After(50 * time.Millisecond):
	}
	if s.Cancel("job-999") == nil {
		t.Fatal("cancelling an unknown job did not error")
	}
}

// TestCancelRunning: cancelling a running job fires its context; the
// runner observes it and the job ends cancelled.
func TestCancelRunning(t *testing.T) {
	started := make(chan struct{})
	s := newScheduler(Config{Workers: 1, QueueDepth: 1}, func(ctx context.Context, j *Job) {
		close(started)
		<-ctx.Done()
		j.finish(classify(ctx, ctx.Err()), ctx.Err().Error())
	})
	defer s.Close()

	j, err := s.Submit(stubReq())
	if err != nil {
		t.Fatal(err)
	}
	<-started
	if err := s.Cancel(j.ID); err != nil {
		t.Fatal(err)
	}
	waitState(t, j, StateCancelled)
}

// TestDrainOrdering: drain closes admission (ErrDraining), lets the
// running and the queued job finish, and only then returns.
func TestDrainOrdering(t *testing.T) {
	release := make(chan struct{})
	s := newScheduler(Config{Workers: 1, QueueDepth: 2}, func(ctx context.Context, j *Job) {
		<-release
		j.finish(StateDone, "")
	})

	a, _ := s.Submit(stubReq())
	b, _ := s.Submit(stubReq())
	s.StartDrain()
	if _, err := s.Submit(stubReq()); !errors.Is(err, ErrDraining) {
		t.Fatalf("submit during drain: err = %v, want ErrDraining", err)
	}
	drained := make(chan error, 1)
	go func() { drained <- s.Drain(context.Background()) }()
	select {
	case err := <-drained:
		t.Fatalf("Drain returned %v with jobs still admitted", err)
	case <-time.After(30 * time.Millisecond):
	}
	close(release)
	if err := <-drained; err != nil {
		t.Fatalf("Drain: %v", err)
	}
	// Both admitted jobs ran to completion before Drain returned.
	for _, j := range []*Job{a, b} {
		if st := j.snapshot().State; st != StateDone {
			t.Errorf("job %s: state %s after drain, want done", j.ID, st)
		}
	}
}

// TestDrainTimeoutCancels: when the drain budget expires, running jobs
// are cancelled through the root context and Drain still joins the
// workers before returning the context error.
func TestDrainTimeoutCancels(t *testing.T) {
	started := make(chan struct{})
	s := newScheduler(Config{Workers: 1, QueueDepth: 1}, func(ctx context.Context, j *Job) {
		close(started)
		<-ctx.Done() // ignores polite drain, yields only to cancellation
		j.finish(StateCancelled, ctx.Err().Error())
	})

	j, _ := s.Submit(stubReq())
	<-started
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := s.Drain(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Drain: err = %v, want DeadlineExceeded", err)
	}
	if st := j.snapshot().State; st != StateCancelled {
		t.Fatalf("job state %s after forced drain, want cancelled", st)
	}
}

// TestJobIDsSequential: IDs are assigned in admission order and
// rejected submissions don't consume them.
func TestJobIDsSequential(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{}, 8)
	s := newScheduler(Config{Workers: 1, QueueDepth: 1}, func(ctx context.Context, j *Job) {
		started <- struct{}{}
		<-release
		j.finish(StateDone, "")
	})
	defer s.Close()
	a, _ := s.Submit(stubReq())
	<-started
	b, _ := s.Submit(stubReq())
	if _, err := s.Submit(stubReq()); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("expected queue full, got %v", err)
	}
	close(release)
	waitState(t, b, StateDone)
	c, err := s.Submit(stubReq())
	if err != nil {
		t.Fatal(err)
	}
	if a.ID != "job-1" || b.ID != "job-2" || c.ID != "job-3" {
		t.Fatalf("IDs = %s, %s, %s; want job-1..3 (rejections must not burn IDs)", a.ID, b.ID, c.ID)
	}
}

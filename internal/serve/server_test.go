package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// testServer boots a scheduler (real runner unless runFn is given)
// behind an httptest server.
func testServer(t *testing.T, cfg Config, runFn func(context.Context, *Job)) (*Scheduler, *httptest.Server) {
	t.Helper()
	sched := newScheduler(cfg, runFn)
	ts := httptest.NewServer(NewServer(sched).Handler())
	t.Cleanup(func() {
		ts.Close()
		sched.Close()
	})
	return sched, ts
}

func postJSON(t *testing.T, url string, body string) *http.Response {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decodeView(t *testing.T, resp *http.Response) JobView {
	t.Helper()
	defer resp.Body.Close()
	var v JobView
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v
}

// drainProgress reads the NDJSON progress stream to EOF (a completion
// barrier), validating every line parses and returning the events.
func drainProgress(t *testing.T, url string) []Event {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("progress: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("progress: Content-Type %q", ct)
	}
	var evs []Event
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		// Keep-alive lines are not job events; the stream contract says
		// to skip them (see handleProgress).
		if bytes.Contains(line, []byte(`"type":"heartbeat"`)) {
			continue
		}
		var ev Event
		if err := json.Unmarshal(line, &ev); err != nil {
			t.Fatalf("progress line %q: %v", line, err)
		}
		evs = append(evs, ev)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return evs
}

// TestSubmitPollFetch walks the happy path over HTTP: submit an
// experiment job, follow its progress stream to completion, then poll
// status and fetch values.
func TestSubmitPollFetch(t *testing.T) {
	_, ts := testServer(t, Config{Workers: 1, QueueDepth: 4}, nil)

	resp := postJSON(t, ts.URL+"/v1/jobs",
		`{"type":"experiment","experiment":"fig19","quick":true,"requests":40,"seed":3,"parallelism":2}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d", resp.StatusCode)
	}
	if loc := resp.Header.Get("Location"); loc == "" {
		t.Fatal("submit: no Location header")
	}
	view := decodeView(t, resp)
	if view.ID == "" || view.Type != JobExperiment {
		t.Fatalf("submit view: %+v", view)
	}

	evs := drainProgress(t, ts.URL+"/v1/jobs/"+view.ID+"/progress")
	if len(evs) < 3 {
		t.Fatalf("only %d progress events", len(evs))
	}
	if evs[0].Event != "queued" {
		t.Errorf("first event %q, want queued", evs[0].Event)
	}
	last := evs[len(evs)-1]
	if last.Event != "done" || last.State != StateDone {
		t.Fatalf("last event %+v, want done/done", last)
	}
	cells := 0
	for _, ev := range evs {
		if ev.Event == "cell" {
			cells++
			if ev.Total != 3 { // fig19 sweeps 8/4/2 PEs
				t.Errorf("cell event total = %d, want 3", ev.Total)
			}
		}
	}
	if cells != 3 {
		t.Errorf("%d cell events, want 3", cells)
	}
	for i, ev := range evs {
		if ev.Seq != i {
			t.Errorf("event %d has seq %d", i, ev.Seq)
		}
	}

	statusResp, err := http.Get(ts.URL + "/v1/jobs/" + view.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got := decodeView(t, statusResp); got.State != StateDone || got.CellsDone != 3 {
		t.Fatalf("status after completion: %+v", got)
	}

	valResp, err := http.Get(ts.URL + "/v1/jobs/" + view.ID + "/values")
	if err != nil {
		t.Fatal(err)
	}
	defer valResp.Body.Close()
	if valResp.StatusCode != http.StatusOK {
		t.Fatalf("values: status %d", valResp.StatusCode)
	}
	var out struct {
		Values map[string]float64 `json:"values"`
		Lines  []string           `json:"lines"`
	}
	if err := json.NewDecoder(valResp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Values) == 0 || len(out.Lines) == 0 {
		t.Fatalf("empty results: %d values, %d lines", len(out.Values), len(out.Lines))
	}
	if _, ok := out.Values["8pe/p99us"]; !ok {
		t.Error("fig19 values missing 8pe/p99us")
	}

	// Experiment jobs expose no artifacts.
	artResp, err := http.Get(ts.URL + "/v1/jobs/" + view.ID + "/artifacts/trace")
	if err != nil {
		t.Fatal(err)
	}
	artResp.Body.Close()
	if artResp.StatusCode != http.StatusNotFound {
		t.Errorf("experiment artifact: status %d, want 404", artResp.StatusCode)
	}
}

// TestQueueFullHTTP: a full queue answers 429 with a Retry-After hint.
func TestQueueFullHTTP(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{}, 4)
	_, ts := testServer(t, Config{Workers: 1, QueueDepth: 1, RetryAfter: 3 * time.Second},
		func(ctx context.Context, j *Job) {
			started <- struct{}{}
			<-release
			j.finish(StateDone, "")
		})
	defer close(release)

	body := `{"type":"experiment","experiment":"area","quick":true}`
	resp := postJSON(t, ts.URL+"/v1/jobs", body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit: %d", resp.StatusCode)
	}
	<-started
	resp = postJSON(t, ts.URL+"/v1/jobs", body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("second submit: %d", resp.StatusCode)
	}
	resp = postJSON(t, ts.URL+"/v1/jobs", body)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("third submit: status %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "3" {
		t.Fatalf("Retry-After = %q, want \"3\"", ra)
	}
}

// TestCancelMidJobHTTP: cancelling an in-flight observed job over the
// API stops its simulation via context and reports "cancelled".
func TestCancelMidJobHTTP(t *testing.T) {
	_, ts := testServer(t, Config{Workers: 1, QueueDepth: 2}, nil)

	// A large observed run: long enough that cancellation lands while
	// the kernel is executing events.
	resp := postJSON(t, ts.URL+"/v1/jobs", `{"type":"observed","requests":20000,"seed":9}`)
	view := decodeView(t, resp)

	deadline := time.Now().Add(10 * time.Second)
	for {
		st, err := http.Get(ts.URL + "/v1/jobs/" + view.ID)
		if err != nil {
			t.Fatal(err)
		}
		v := decodeView(t, st)
		if v.State == StateRunning {
			break
		}
		if v.State.Terminal() {
			t.Fatalf("job finished %s before it could be cancelled; grow the run", v.State)
		}
		if time.Now().After(deadline) {
			t.Fatal("job never started running")
		}
		time.Sleep(2 * time.Millisecond)
	}

	cresp := postJSON(t, ts.URL+"/v1/jobs/"+view.ID+"/cancel", "")
	if got := decodeView(t, cresp); got.State != StateRunning && got.State != StateCancelled {
		t.Fatalf("cancel ack state %s", got.State)
	}
	evs := drainProgress(t, ts.URL+"/v1/jobs/"+view.ID+"/progress")
	last := evs[len(evs)-1]
	if last.Event != "done" || last.State != StateCancelled {
		t.Fatalf("last event %+v, want done/cancelled", last)
	}
	// A cancelled job serves neither values nor artifacts.
	vresp, err := http.Get(ts.URL + "/v1/jobs/" + view.ID + "/values")
	if err != nil {
		t.Fatal(err)
	}
	vresp.Body.Close()
	if vresp.StatusCode != http.StatusConflict {
		t.Errorf("values of cancelled job: status %d, want 409", vresp.StatusCode)
	}
}

// TestDrainRejectsHTTP: a draining scheduler answers 503 + Retry-After
// and finishes admitted work (graceful SIGTERM path minus the signal).
func TestDrainRejectsHTTP(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{}, 4)
	sched, ts := testServer(t, Config{Workers: 1, QueueDepth: 2},
		func(ctx context.Context, j *Job) {
			started <- struct{}{}
			<-release
			j.finish(StateDone, "")
		})

	resp := postJSON(t, ts.URL+"/v1/jobs", `{"type":"experiment","experiment":"area","quick":true}`)
	view := decodeView(t, resp)
	<-started
	sched.StartDrain()

	resp = postJSON(t, ts.URL+"/v1/jobs", `{"type":"experiment","experiment":"area","quick":true}`)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit while draining: status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After")
	}

	var health struct {
		Draining bool `json:"draining"`
	}
	hr, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(hr.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	hr.Body.Close()
	if !health.Draining {
		t.Fatal("healthz does not report draining")
	}

	close(release)
	if err := sched.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	if st := sched.Get(view.ID).snapshot().State; st != StateDone {
		t.Fatalf("admitted job state %s after drain, want done", st)
	}
}

// TestNotFoundAndBadRequests covers the 4xx surface.
func TestNotFoundAndBadRequests(t *testing.T) {
	_, ts := testServer(t, Config{Workers: 1, QueueDepth: 2}, nil)

	for _, url := range []string{
		"/v1/jobs/job-404",
		"/v1/jobs/job-404/values",
		"/v1/jobs/job-404/progress",
		"/v1/jobs/job-404/artifacts/trace",
	} {
		resp, err := http.Get(ts.URL + url)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET %s: status %d, want 404", url, resp.StatusCode)
		}
	}
	for _, body := range []string{
		`not json`,
		`{"type":"experiment"}`,
		`{"type":"experiment","experiment":"nope"}`,
		`{"type":"observed","faultLoss":2}`,
		`{"type":"experiment","experiment":"fig11","bogusField":1}`,
	} {
		resp := postJSON(t, ts.URL+"/v1/jobs", body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("submit %q: status %d, want 400", body, resp.StatusCode)
		}
	}

	// Listing and registry endpoints respond.
	lr, err := http.Get(ts.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	var list struct {
		Jobs []JobView `json:"jobs"`
	}
	if err := json.NewDecoder(lr.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	lr.Body.Close()
	er, err := http.Get(ts.URL + "/v1/experiments")
	if err != nil {
		t.Fatal(err)
	}
	var exps struct {
		Experiments []string `json:"experiments"`
	}
	if err := json.NewDecoder(er.Body).Decode(&exps); err != nil {
		t.Fatal(err)
	}
	er.Body.Close()
	if len(exps.Experiments) == 0 {
		t.Fatal("experiments listing is empty")
	}
}

// fetchBytes GETs a URL and returns the body, failing on non-200.
func fetchBytes(t *testing.T, url string) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("GET %s: status %d (%s)", url, resp.StatusCode, body)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// submitAndWait submits a job and blocks until it completes.
func submitAndWait(t *testing.T, base, body string) string {
	t.Helper()
	view := decodeView(t, postJSON(t, base+"/v1/jobs", body))
	evs := drainProgress(t, base+"/v1/jobs/"+view.ID+"/progress")
	last := evs[len(evs)-1]
	if last.State != StateDone {
		t.Fatalf("job %s ended %s: %s", view.ID, last.State, last.Error)
	}
	return view.ID
}

// TestConcurrentArtifactDownloads streams the same finished job's
// trace to several clients at once (exports are read-only).
func TestConcurrentArtifactDownloads(t *testing.T) {
	_, ts := testServer(t, Config{Workers: 1, QueueDepth: 2}, nil)
	id := submitAndWait(t, ts.URL, `{"type":"observed","requests":120,"quick":true,"seed":4}`)

	want := fetchBytes(t, ts.URL+"/v1/jobs/"+id+"/artifacts/trace")
	results := make(chan []byte, 4)
	for i := 0; i < 4; i++ {
		go func() {
			resp, err := http.Get(ts.URL + "/v1/jobs/" + id + "/artifacts/trace")
			if err != nil {
				results <- nil
				return
			}
			defer resp.Body.Close()
			b, _ := io.ReadAll(resp.Body)
			results <- b
		}()
	}
	for i := 0; i < 4; i++ {
		got := <-results
		if !bytes.Equal(got, want) {
			t.Fatalf("concurrent download %d diverged (%d vs %d bytes)", i, len(got), len(want))
		}
	}
}

// TestProgressHeartbeat: while a job is idle (no new events), the
// progress stream emits flushed {"type":"heartbeat"} keep-alive lines
// so proxies with idle timeouts keep the connection open, and the
// event sequence around them is undisturbed.
func TestProgressHeartbeat(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{}, 1)
	sched := newScheduler(Config{Workers: 1, QueueDepth: 2},
		func(ctx context.Context, j *Job) {
			started <- struct{}{}
			<-release
			j.finish(StateDone, "")
		})
	api := NewServer(sched)
	api.SetHeartbeat(20 * time.Millisecond)
	ts := httptest.NewServer(api.Handler())
	t.Cleanup(func() {
		ts.Close()
		sched.Close()
	})

	j, err := sched.Submit(stubReq())
	if err != nil {
		t.Fatal(err)
	}
	<-started

	resp, err := http.Get(ts.URL + "/v1/jobs/" + j.ID + "/progress")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	beats, events := 0, 0
	released := false
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		if string(line) == `{"type":"heartbeat"}` {
			beats++
			// Two heartbeats with no job activity prove the keep-alive
			// fires periodically, not just once; then let the job end.
			if beats == 2 && !released {
				released = true
				close(release)
			}
			continue
		}
		var ev Event
		if err := json.Unmarshal(line, &ev); err != nil {
			t.Fatalf("progress line %q: %v", line, err)
		}
		if ev.Seq != events {
			t.Errorf("event seq %d at position %d: heartbeats must not consume sequence numbers", ev.Seq, events)
		}
		events++
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if !released {
		close(release)
		t.Fatalf("stream ended after %d heartbeats, want 2 before release", beats)
	}
	if events < 3 { // queued, started, done
		t.Errorf("%d job events, want >= 3", events)
	}
}

// TestSubmitErrorStatus pins the submit error taxonomy: only
// validation errors are 400s; unrecognized failures surface as 500,
// and rate-limit rejections carry their own per-tenant Retry-After.
func TestSubmitErrorStatus(t *testing.T) {
	cases := []struct {
		err        error
		code       int
		retryAfter string
	}{
		{badRequestf("serve: bad field"), http.StatusBadRequest, ""},
		{ErrQueueFull, http.StatusTooManyRequests, ""},
		{ErrDraining, http.StatusServiceUnavailable, ""},
		{&RateLimitError{Tenant: "a", RetryAfter: 1400 * time.Millisecond}, http.StatusTooManyRequests, "2"},
		{&RateLimitError{Tenant: "a", RetryAfter: 10 * time.Millisecond}, http.StatusTooManyRequests, "1"},
		{errors.New("scheduler exploded"), http.StatusInternalServerError, ""},
		{context.DeadlineExceeded, http.StatusInternalServerError, ""},
	}
	for _, c := range cases {
		code, ra := submitErrorStatus(c.err)
		if code != c.code || ra != c.retryAfter {
			t.Errorf("submitErrorStatus(%v) = (%d, %q), want (%d, %q)", c.err, code, ra, c.code, c.retryAfter)
		}
	}
	// Every Validate failure must map to 400 via the sentinel.
	if err := (JobRequest{Type: "nope"}).Validate(); !errors.Is(err, ErrBadRequest) {
		t.Errorf("Validate error %v does not match ErrBadRequest", err)
	}
	if err := (JobRequest{Type: JobExperiment, Experiment: "area", Priority: "urgent"}).Validate(); !errors.Is(err, ErrBadRequest) {
		t.Errorf("priority validation error %v does not match ErrBadRequest", err)
	}
}

// Package noc models the on-package interconnect of the AccelFlow
// processor (paper §V-3): a 2D mesh inside each chiplet (3 cycles/hop,
// 16-byte links) and a fully-connected inter-chiplet network (60 cycles
// by default). Inter-chiplet links are contended resources; intra-mesh
// transfers are modeled by latency plus serialization.
package noc

import (
	"fmt"
	"math"
	"sort"

	"accelflow/internal/config"
	"accelflow/internal/sim"
)

// Node is a network endpoint: a chiplet and mesh coordinates within it.
type Node struct {
	Chiplet int
	X, Y    int
}

// Network computes route latencies and arbitrates inter-chiplet links.
type Network struct {
	k   *sim.Kernel
	cfg *config.Config

	// links[a][b] serializes traffic between chiplet pair (a<b).
	links map[[2]int]*sim.Resource

	// latScale multiplies head latency during a fault window (link
	// degradation). Zero means unset and is treated as 1; the scale-1
	// path avoids float math entirely so the default is bit-exact.
	latScale float64

	// Stats for the energy model.
	Messages   uint64
	BytesMoved uint64
	HopCount   uint64
	CrossChip  uint64
}

// NewNetwork builds the link set for the configured chiplet count.
func NewNetwork(k *sim.Kernel, cfg *config.Config) *Network {
	n := &Network{k: k, cfg: cfg, links: map[[2]int]*sim.Resource{}}
	for a := 0; a < cfg.Chiplets; a++ {
		for b := a + 1; b < cfg.Chiplets; b++ {
			n.links[[2]int{a, b}] = sim.NewResource(k, fmt.Sprintf("link%d-%d", a, b), 1, sim.FIFO)
		}
	}
	return n
}

// meshHops is the Manhattan distance between two nodes in one chiplet.
func meshHops(a, b Node) int {
	dx := a.X - b.X
	if dx < 0 {
		dx = -dx
	}
	dy := a.Y - b.Y
	if dy < 0 {
		dy = -dy
	}
	return dx + dy
}

// edgeHops approximates the mesh distance from a node to its chiplet's
// inter-chiplet port (placed at the origin).
func edgeHops(a Node) int { return a.X + a.Y }

// SetLatencyScale sets the head-latency multiplier (fault injection:
// degraded links). Values <= 0 and exactly 1 restore the exact
// integer-arithmetic default path.
func (n *Network) SetLatencyScale(f float64) {
	if f <= 0 {
		f = 1
	}
	n.latScale = f
}

// LatencyScale reports the active multiplier (1 when unset).
func (n *Network) LatencyScale() float64 {
	if n.latScale == 0 {
		return 1
	}
	return n.latScale
}

// Latency returns the head latency of a message from a to b (no
// serialization, no contention).
func (n *Network) Latency(a, b Node) sim.Time {
	hop := n.cfg.Cycles(n.cfg.MeshHopCycles)
	var t sim.Time
	if a.Chiplet == b.Chiplet {
		t = sim.Time(meshHops(a, b)) * hop
	} else {
		cross := n.cfg.Cycles(n.cfg.InterChipletCycles)
		t = sim.Time(edgeHops(a))*hop + cross + sim.Time(edgeHops(b))*hop
	}
	if n.latScale != 0 && n.latScale != 1 {
		t = sim.Time(float64(t) * n.latScale)
	}
	return t
}

// serialization returns the time the payload occupies the narrowest
// link on the path.
func (n *Network) serialization(a, b Node, bytes int) sim.Time {
	if bytes <= 0 {
		return 0
	}
	// Intra-chiplet: 16B per 1 cycle per link.
	meshBPS := float64(n.cfg.MeshLinkBytes) * n.cfg.CPUFreqGHz // bytes per ns
	t := sim.FromNanos(float64(bytes) / meshBPS)
	if a.Chiplet != b.Chiplet {
		interBPS := n.cfg.InterChipletGBs // GB/s == bytes/ns
		cross := sim.FromNanos(float64(bytes) / interBPS)
		if cross > t {
			t = cross
		}
	}
	return t
}

// TransferTime returns the uncontended end-to-end time for a message.
func (n *Network) TransferTime(a, b Node, bytes int) sim.Time {
	return n.Latency(a, b) + n.serialization(a, b, bytes)
}

// LinkBusy sums cumulative busy time across the inter-chiplet links.
// Map iteration order varies but summation is commutative, so the
// result is deterministic.
func (n *Network) LinkBusy() sim.Time {
	var t sim.Time
	for _, l := range n.links {
		t += l.BusyTime
	}
	return t
}

// LinkCount reports the number of inter-chiplet links.
func (n *Network) LinkCount() int { return len(n.links) }

// Links returns the inter-chiplet link resources in a deterministic
// (chiplet-pair) order, for read-only inspection by the invariant
// checker. Callers must not submit work through them.
func (n *Network) Links() []*sim.Resource {
	keys := make([][2]int, 0, len(n.links))
	for k := range n.links {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	out := make([]*sim.Resource, 0, len(keys))
	for _, k := range keys {
		out = append(out, n.links[k])
	}
	return out
}

// Send models a message: latency plus serialization, with inter-chiplet
// messages serializing on the shared pair link. done fires at delivery.
func (n *Network) Send(a, b Node, bytes int, done func()) {
	n.Messages++
	n.BytesMoved += uint64(bytes)
	lat := n.Latency(a, b)
	ser := n.serialization(a, b, bytes)
	if a.Chiplet == b.Chiplet {
		n.HopCount += uint64(meshHops(a, b))
		n.k.After(lat+ser, done)
		return
	}
	n.CrossChip++
	n.HopCount += uint64(edgeHops(a) + edgeHops(b) + 1)
	key := [2]int{a.Chiplet, b.Chiplet}
	if key[0] > key[1] {
		key[0], key[1] = key[1], key[0]
	}
	link := n.links[key]
	// The link is held for the serialization time; head latency is
	// pipelined on top.
	link.Submit(&sim.Task{
		Hold: ser,
		Done: func() { n.k.After(lat, done) },
	})
}

// Placement assigns mesh coordinates to the accelerators of each
// chiplet in a compact square, and to cores on chiplet 0. This gives
// deterministic, plausible hop counts.
type Placement struct {
	cfg *config.Config
	// accelNode[k] is the node of accelerator kind k.
	accelNode [config.NumAccelKinds]Node
	coreSide  int
}

// NewPlacement computes the layout for the configured chiplet map.
func NewPlacement(cfg *config.Config) *Placement {
	p := &Placement{cfg: cfg}
	p.coreSide = int(math.Ceil(math.Sqrt(float64(cfg.Cores))))
	// Accelerators are laid out per chiplet in registration order.
	idxInChiplet := map[int]int{}
	for k := config.AccelKind(0); k < config.NumAccelKinds; k++ {
		ch := cfg.ChipletOf[k]
		i := idxInChiplet[ch]
		idxInChiplet[ch]++
		side := 3 // accelerator chiplets are small meshes
		p.accelNode[k] = Node{Chiplet: ch, X: i % side, Y: i / side}
		if ch == 0 {
			// On the core chiplet, accelerators sit at the mesh edge
			// beyond the core array.
			p.accelNode[k] = Node{Chiplet: 0, X: p.coreSide, Y: i}
		}
	}
	return p
}

// AccelNode returns the node of an accelerator kind.
func (p *Placement) AccelNode(k config.AccelKind) Node { return p.accelNode[k] }

// CoreNode returns the node of a core by index.
func (p *Placement) CoreNode(i int) Node {
	return Node{Chiplet: 0, X: i % p.coreSide, Y: i / p.coreSide}
}

// MemNode returns the node representing the memory-controller edge of
// the core chiplet.
func (p *Placement) MemNode() Node { return Node{Chiplet: 0, X: 0, Y: p.coreSide} }

package noc

import (
	"testing"

	"accelflow/internal/config"
	"accelflow/internal/sim"
)

func TestIntraChipletLatency(t *testing.T) {
	cfg := config.Default()
	n := NewNetwork(sim.NewKernel(), cfg)
	a := Node{Chiplet: 1, X: 0, Y: 0}
	b := Node{Chiplet: 1, X: 2, Y: 1}
	want := cfg.Cycles(3 * cfg.MeshHopCycles) // 3 hops
	if got := n.Latency(a, b); got != want {
		t.Errorf("latency = %v, want %v", got, want)
	}
	if n.Latency(a, a) != 0 {
		t.Error("self latency nonzero")
	}
}

func TestInterChipletLatencyDominates(t *testing.T) {
	cfg := config.Default()
	n := NewNetwork(sim.NewKernel(), cfg)
	same := n.Latency(Node{Chiplet: 1, X: 0, Y: 0}, Node{Chiplet: 1, X: 2, Y: 2})
	cross := n.Latency(Node{Chiplet: 0, X: 0, Y: 0}, Node{Chiplet: 1, X: 0, Y: 0})
	if cross <= same {
		t.Errorf("cross-chiplet %v should exceed intra %v", cross, same)
	}
	if cross < cfg.Cycles(cfg.InterChipletCycles) {
		t.Errorf("cross latency %v below the 60-cycle floor", cross)
	}
}

func TestInterChipletLatencyScalesWithConfig(t *testing.T) {
	near := config.Default()
	far := config.Default()
	far.InterChipletCycles = 100
	a := Node{Chiplet: 0}
	b := Node{Chiplet: 1}
	ln := NewNetwork(sim.NewKernel(), near).Latency(a, b)
	lf := NewNetwork(sim.NewKernel(), far).Latency(a, b)
	if lf-ln != near.Cycles(40) {
		t.Errorf("latency delta = %v, want 40 cycles", lf-ln)
	}
}

func TestTransferTimeSerialization(t *testing.T) {
	cfg := config.Default()
	n := NewNetwork(sim.NewKernel(), cfg)
	a := Node{Chiplet: 1, X: 0, Y: 0}
	b := Node{Chiplet: 1, X: 1, Y: 0}
	small := n.TransferTime(a, b, 64)
	big := n.TransferTime(a, b, 64*1024)
	if big <= small {
		t.Error("serialization did not grow with payload")
	}
	// 64KB over 16B*2.4GHz = 38.4 B/ns -> ~1706ns.
	delta := (big - small).Nanos()
	if delta < 1500 || delta > 1900 {
		t.Errorf("64KB serialization delta = %vns, want ~1706ns", delta)
	}
}

func TestSendIntraChiplet(t *testing.T) {
	cfg := config.Default()
	k := sim.NewKernel()
	n := NewNetwork(k, cfg)
	a := Node{Chiplet: 1, X: 0, Y: 0}
	b := Node{Chiplet: 1, X: 2, Y: 0}
	var at sim.Time
	n.Send(a, b, 1024, func() { at = k.Now() })
	k.Run()
	if at != n.TransferTime(a, b, 1024) {
		t.Errorf("send arrived at %v, want %v", at, n.TransferTime(a, b, 1024))
	}
	if n.Messages != 1 || n.BytesMoved != 1024 {
		t.Error("stats not recorded")
	}
}

func TestSendCrossChipletContention(t *testing.T) {
	cfg := config.Default()
	k := sim.NewKernel()
	n := NewNetwork(k, cfg)
	a := Node{Chiplet: 0, X: 0, Y: 0}
	b := Node{Chiplet: 1, X: 0, Y: 0}
	var times []sim.Time
	const msgs = 4
	const bytes = 64 * 1024
	for i := 0; i < msgs; i++ {
		n.Send(a, b, bytes, func() { times = append(times, k.Now()) })
	}
	k.Run()
	if len(times) != msgs {
		t.Fatalf("only %d messages arrived", len(times))
	}
	// Messages serialize on the pair link: arrivals must be spaced by
	// at least the serialization time.
	ser := sim.FromNanos(float64(bytes) / cfg.InterChipletGBs)
	for i := 1; i < msgs; i++ {
		if gap := times[i] - times[i-1]; gap < ser {
			t.Errorf("messages %d,%d spaced %v < serialization %v", i-1, i, gap, ser)
		}
	}
	if n.CrossChip != msgs {
		t.Errorf("CrossChip = %d, want %d", n.CrossChip, msgs)
	}
}

func TestPlacementDistinctAndStable(t *testing.T) {
	cfg := config.Default()
	p := NewPlacement(cfg)
	seen := map[Node]config.AccelKind{}
	for _, kd := range config.AllAccelKinds() {
		nd := p.AccelNode(kd)
		if nd.Chiplet != cfg.ChipletOf[kd] {
			t.Errorf("%v placed on chiplet %d, config says %d", kd, nd.Chiplet, cfg.ChipletOf[kd])
		}
		if prev, dup := seen[nd]; dup {
			t.Errorf("%v and %v share node %+v", kd, prev, nd)
		}
		seen[nd] = kd
	}
	q := NewPlacement(cfg)
	for _, kd := range config.AllAccelKinds() {
		if p.AccelNode(kd) != q.AccelNode(kd) {
			t.Error("placement not deterministic")
		}
	}
}

func TestPlacementCores(t *testing.T) {
	cfg := config.Default()
	p := NewPlacement(cfg)
	seen := map[Node]bool{}
	for i := 0; i < cfg.Cores; i++ {
		nd := p.CoreNode(i)
		if nd.Chiplet != 0 {
			t.Errorf("core %d on chiplet %d", i, nd.Chiplet)
		}
		if seen[nd] {
			t.Errorf("core %d collides at %+v", i, nd)
		}
		seen[nd] = true
	}
	if p.MemNode().Chiplet != 0 {
		t.Error("memory node off the core chiplet")
	}
}

func TestPlacementSingleChiplet(t *testing.T) {
	cfg := config.Default()
	if err := cfg.ApplyChipletPlan(config.OneChiplet); err != nil {
		t.Fatal(err)
	}
	p := NewPlacement(cfg)
	n := NewNetwork(sim.NewKernel(), cfg)
	for _, kd := range config.AllAccelKinds() {
		if p.AccelNode(kd).Chiplet != 0 {
			t.Errorf("%v off chiplet 0 in 1-chiplet plan", kd)
		}
	}
	// All routes intra-chiplet: latency below the inter-chiplet floor.
	l := n.Latency(p.AccelNode(config.TCP), p.AccelNode(config.Cmp))
	if l >= cfg.Cycles(cfg.InterChipletCycles) {
		t.Errorf("1-chiplet route latency %v looks cross-chiplet", l)
	}
}

func TestMoreChipletsMeansLongerRoutes(t *testing.T) {
	avg := func(plan config.ChipletPlan) sim.Time {
		cfg := config.Default()
		if err := cfg.ApplyChipletPlan(plan); err != nil {
			t.Fatal(err)
		}
		p := NewPlacement(cfg)
		n := NewNetwork(sim.NewKernel(), cfg)
		var sum sim.Time
		var cnt int
		for _, a := range config.AllAccelKinds() {
			for _, b := range config.AllAccelKinds() {
				if a == b {
					continue
				}
				sum += n.Latency(p.AccelNode(a), p.AccelNode(b))
				cnt++
			}
		}
		return sum / sim.Time(cnt)
	}
	l1 := avg(config.OneChiplet)
	l2 := avg(config.TwoChiplets)
	l6 := avg(config.SixChiplets)
	if !(l1 < l2 && l2 < l6) {
		t.Errorf("average route latency not increasing with chiplets: %v %v %v", l1, l2, l6)
	}
}

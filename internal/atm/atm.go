// Package atm implements the Accelerator Trace Memory (paper §IV-A): a
// special on-chip memory where cores store traces before triggering an
// ensemble execution, and from which output dispatchers read
// continuation traces (the asterisk tails) without CPU involvement.
package atm

import (
	"fmt"

	"accelflow/internal/sim"
	"accelflow/internal/trace"
)

// ATM stores registered trace programs addressable by 8-bit addresses
// and by their symbolic names.
type ATM struct {
	syms     *trace.MapSymbols
	programs map[string]*trace.Program
	latency  sim.Time
	// stall is extra per-read latency charged during a fault window
	// (e.g. a stalled trace-memory arbiter); 0 outside windows.
	stall sim.Time

	Reads uint64

	// OnRead, when set, observes every continuation-trace fetch (name
	// and charged latency). Observers must not mutate simulation state.
	OnRead func(name string, lat sim.Time)
}

// New returns an empty ATM with the given read latency.
func New(readLatency sim.Time) *ATM {
	return &ATM{
		syms:     trace.NewMapSymbols(),
		programs: map[string]*trace.Program{},
		latency:  readLatency,
	}
}

// Register stores a program under its name and assigns it an address.
// Registering the same name twice with a different program is an error
// (the ATM is written once per service setup).
func (a *ATM) Register(p *trace.Program) error {
	if prev, ok := a.programs[p.Name]; ok && prev != p {
		return fmt.Errorf("atm: %q already registered with a different program", p.Name)
	}
	if _, err := a.syms.Register(p.Name); err != nil {
		return err
	}
	a.programs[p.Name] = p
	return nil
}

// Lookup returns the program registered under name.
func (a *ATM) Lookup(name string) (*trace.Program, bool) {
	p, ok := a.programs[name]
	return p, ok
}

// Read models an output dispatcher fetching the continuation trace:
// it returns the program and the read latency to charge, and counts
// the access.
func (a *ATM) Read(name string) (*trace.Program, sim.Time, error) {
	p, ok := a.programs[name]
	if !ok {
		return nil, 0, fmt.Errorf("atm: no trace %q", name)
	}
	a.Reads++
	lat := a.latency + a.stall
	if a.OnRead != nil {
		a.OnRead(name, lat)
	}
	return p, lat, nil
}

// SetStall sets the extra read latency charged while a fault window is
// active; negative values are clamped to zero.
func (a *ATM) SetStall(d sim.Time) {
	if d < 0 {
		d = 0
	}
	a.stall = d
}

// Stall reports the currently applied extra read latency.
func (a *ATM) Stall() sim.Time { return a.stall }

// Symbols exposes the symbol table for trace encoding.
func (a *ATM) Symbols() *trace.MapSymbols { return a.syms }

// VerifyEncodable checks that every registered program either encodes
// within the 8-byte limit or was already split; it returns the first
// offending program. Used by tests and service-catalog validation.
func (a *ATM) VerifyEncodable() error {
	for name, p := range a.programs {
		if _, err := p.Encode(a.syms); err != nil {
			return fmt.Errorf("atm: %s: %v", name, err)
		}
	}
	return nil
}

// Size reports the number of registered traces.
func (a *ATM) Size() int { return len(a.programs) }

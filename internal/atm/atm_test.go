package atm

import (
	"testing"

	"accelflow/internal/config"
	"accelflow/internal/sim"
	"accelflow/internal/trace"
)

func prog(t *testing.T, name string) *trace.Program {
	t.Helper()
	return trace.New(name).Seq(config.Ser, config.Encr, config.TCP).MustBuild()
}

func TestRegisterAndLookup(t *testing.T) {
	a := New(25 * sim.Nanosecond)
	p := prog(t, "t4")
	if err := a.Register(p); err != nil {
		t.Fatal(err)
	}
	got, ok := a.Lookup("t4")
	if !ok || got != p {
		t.Error("lookup failed")
	}
	if _, ok := a.Lookup("nope"); ok {
		t.Error("found unregistered trace")
	}
	if a.Size() != 1 {
		t.Errorf("size = %d", a.Size())
	}
}

func TestRegisterIdempotentAndConflict(t *testing.T) {
	a := New(0)
	p := prog(t, "x")
	if err := a.Register(p); err != nil {
		t.Fatal(err)
	}
	if err := a.Register(p); err != nil {
		t.Errorf("re-registering same program failed: %v", err)
	}
	other := prog(t, "x")
	if err := a.Register(other); err == nil {
		t.Error("conflicting registration accepted")
	}
}

func TestReadChargesLatencyAndCounts(t *testing.T) {
	a := New(25 * sim.Nanosecond)
	p := prog(t, "t")
	if err := a.Register(p); err != nil {
		t.Fatal(err)
	}
	got, lat, err := a.Read("t")
	if err != nil || got != p {
		t.Fatalf("read: %v", err)
	}
	if lat != 25*sim.Nanosecond {
		t.Errorf("latency = %v", lat)
	}
	if a.Reads != 1 {
		t.Errorf("reads = %d", a.Reads)
	}
	if _, _, err := a.Read("missing"); err == nil {
		t.Error("read of missing trace succeeded")
	}
}

func TestSymbolsAssignedOnRegister(t *testing.T) {
	a := New(0)
	p := prog(t, "sym")
	if err := a.Register(p); err != nil {
		t.Fatal(err)
	}
	addr, ok := a.Symbols().AddrOf("sym")
	if !ok {
		t.Fatal("no address assigned")
	}
	name, ok := a.Symbols().NameOf(addr)
	if !ok || name != "sym" {
		t.Error("reverse lookup failed")
	}
}

func TestVerifyEncodable(t *testing.T) {
	a := New(0)
	if err := a.Register(prog(t, "ok")); err != nil {
		t.Fatal(err)
	}
	if err := a.VerifyEncodable(); err != nil {
		t.Errorf("small trace flagged: %v", err)
	}
	b := trace.New("big")
	for i := 0; i < 20; i++ {
		b.Seq(config.TCP)
	}
	if err := a.Register(b.MustBuild()); err != nil {
		t.Fatal(err)
	}
	if err := a.VerifyEncodable(); err == nil {
		t.Error("oversized trace passed VerifyEncodable")
	}
}

package workload

import (
	"context"
	"math"
	"testing"

	"accelflow/internal/config"
	"accelflow/internal/engine"
	"accelflow/internal/fault"
	"accelflow/internal/services"
	"accelflow/internal/sim"
)

func fleetSpec(replicas, requests, shards int, balance string) *FleetSpec {
	return &FleetSpec{
		Config:   config.Default(),
		Policy:   engine.AccelFlow(),
		Sources:  Mix(services.SocialNetwork(), float64(replicas), requests),
		Seed:     11,
		Replicas: replicas,
		Shards:   shards,
		Balance:  balance,
	}
}

// fleetFingerprint flattens every result field a worker-count change
// could plausibly disturb into comparable scalars (Float64 bit
// patterns for latencies via integer picoseconds).
type fleetFingerprint struct {
	mean, p99, p50 sim.Time
	completed      uint64
	timedOut       uint64
	fellBack       uint64
	accels         uint64
	events         uint64
	epochs         uint64
	mail           uint64
	elapsed        sim.Time
	routed         [8]uint64
	perReplica     [8]uint64
}

func fingerprint(t *testing.T, res *FleetResult) fleetFingerprint {
	t.Helper()
	fp := fleetFingerprint{
		mean: res.Merged.All.Mean(), p99: res.Merged.All.P99(), p50: res.Merged.All.P50(),
		completed: res.Merged.Completed, timedOut: res.Merged.TimedOut,
		fellBack: res.Merged.FellBack, accels: res.Merged.AccelCount,
		events: res.Events, epochs: res.Epochs, mail: res.Mail,
		elapsed: res.Merged.Elapsed,
	}
	for i, n := range res.Routed {
		fp.routed[i] = n
	}
	for i, rr := range res.Replicas {
		fp.perReplica[i] = rr.Completed
	}
	return fp
}

// TestFleetWorkerCountInvariance is the fleet-level determinism
// acceptance test: a genuinely multi-domain run (mailbox traffic,
// concurrent replica servers) is byte-identical at shard counts
// {1, 2, 4, 8}.
func TestFleetWorkerCountInvariance(t *testing.T) {
	for _, balance := range []string{"rr", "least"} {
		run := func(shards int) fleetFingerprint {
			res, err := fleetSpec(4, 240, shards, balance).Run()
			if err != nil {
				t.Fatalf("balance=%s shards=%d: %v", balance, shards, err)
			}
			return fingerprint(t, res)
		}
		ref := run(1)
		if ref.completed != 240 {
			t.Fatalf("balance=%s: completed %d/240", balance, ref.completed)
		}
		if ref.mail == 0 || ref.epochs == 0 {
			t.Fatalf("balance=%s: no cross-domain traffic (mail=%d epochs=%d) — test is vacuous",
				balance, ref.mail, ref.epochs)
		}
		for _, shards := range []int{2, 4, 8} {
			if got := run(shards); got != ref {
				t.Errorf("balance=%s shards=%d diverged:\n got %+v\nwant %+v", balance, shards, got, ref)
			}
		}
	}
}

// TestFleetBalancing pins routing behavior: rr spreads exactly
// round-robin; least keeps the spread within a reasonable band and
// exercises the replica->ingress completion mail.
func TestFleetBalancing(t *testing.T) {
	res, err := fleetSpec(4, 200, 4, "rr").Run()
	if err != nil {
		t.Fatal(err)
	}
	for i, n := range res.Routed {
		if n != 50 {
			t.Errorf("rr routed[%d] = %d, want 50", i, n)
		}
	}
	res, err = fleetSpec(4, 200, 4, "least").Run()
	if err != nil {
		t.Fatal(err)
	}
	var min, max uint64 = math.MaxUint64, 0
	for _, n := range res.Routed {
		if n < min {
			min = n
		}
		if n > max {
			max = n
		}
	}
	if min == 0 {
		t.Errorf("least starved a replica: routed %v", res.Routed)
	}
	if max > 3*min {
		t.Errorf("least spread implausibly skewed: routed %v", res.Routed)
	}
}

// TestFleetCheckedWithFaults runs the invariant checkers over a
// fault-injected fleet: PE-degrade windows (Resource.SetServers
// resizes) fire throughout the run, and with ~200us mean windows vs
// ~9us epochs every window crosses many epoch barriers. The run must
// pass every per-replica invariant and stay worker-count invariant.
func TestFleetCheckedWithFaults(t *testing.T) {
	mk := func(shards int) *FleetSpec {
		s := fleetSpec(3, 150, shards, "rr")
		s.Check = true
		s.Faults = &fault.Spec{
			Rate:           3000,
			MeanWindow:     200 * sim.Microsecond,
			Horizon:        sim.Second,
			PEDegradeFrac:  0.5,
			PEFail:         true,
			ADMARemove:     2,
			ManagerStall:   true,
			ATMStall:       500 * sim.Nanosecond,
			NoCInflate:     4,
			RemoteLossRate: 1e-3,
		}
		return s
	}
	run := func(shards int) (*FleetResult, fleetFingerprint) {
		res, err := mk(shards).Run()
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		return res, fingerprint(t, res)
	}
	res, ref := run(1)
	windows := uint64(0)
	for _, rr := range res.Replicas {
		if rr.Engine.Faults != nil {
			windows += rr.Engine.Faults.Stats.Windows
		}
	}
	if windows == 0 {
		t.Fatal("no fault windows fired — SetServers/epoch interaction untested")
	}
	if _, got := run(4); got != ref {
		t.Errorf("checked+faulted fleet diverged across worker counts:\n got %+v\nwant %+v", got, ref)
	}
}

// TestFleetValidation covers the error paths.
func TestFleetValidation(t *testing.T) {
	if _, err := fleetSpec(0, 100, 1, "").Run(); err == nil {
		t.Error("zero replicas accepted")
	}
	if _, err := fleetSpec(2, 100, 1, "p2c").Run(); err == nil {
		t.Error("unknown balance policy accepted")
	}
	s := fleetSpec(2, 100, 1, "")
	s.Sources[0].Requests = 0
	if _, err := s.Run(); err == nil {
		t.Error("zero-budget source accepted")
	}
}

// TestFleetCancellation: a cancelled fleet run returns the context
// error and no result.
func TestFleetCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if res, err := fleetSpec(2, 100, 2, "").RunCtx(ctx); err == nil || res != nil {
		t.Errorf("cancelled run returned res=%v err=%v", res, err)
	}
}

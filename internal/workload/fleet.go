package workload

import (
	"context"
	"fmt"

	"accelflow/internal/check"
	"accelflow/internal/config"
	"accelflow/internal/control"
	"accelflow/internal/engine"
	"accelflow/internal/fault"
	"accelflow/internal/metrics"
	"accelflow/internal/services"
	"accelflow/internal/sim"
	"accelflow/internal/trace"
)

// FleetSpec describes a multi-server run: an ingress load balancer in
// front of Replicas identical AccelFlow servers, each server its own
// resource domain on a sharded kernel (sim.Sharded). This is where
// intra-run parallelism is real: a single server is one indivisible
// domain (every component shares engine state), but a fleet's servers
// only interact through the balancer, and the balancer-to-server
// forwarding latency — microseconds of modeled network — is orders of
// magnitude above the epoch floor, so domains run concurrently with
// barriers that stay off the critical path.
//
// Determinism: results are byte-identical at every Shards value
// because the sharded coordinator's execution is worker-count
// invariant (see sim.Sharded) and the merge below walks replicas in
// index order.
type FleetSpec struct {
	Config  *config.Config
	Policy  engine.Policy
	Sources []Source
	// Seed seeds the arrival streams and derives each replica engine's
	// seed (DeriveSeed(Seed, "replica/<i>")) and each replica fault
	// injector's seed (DeriveSeed(Seed, "faults/replica/<i>")).
	Seed     int64
	Replicas int
	// Shards is the execution worker count for the sharded kernel:
	// <= 0 means one worker per domain (ingress + replicas), 1 forces
	// the serial reference execution. Never changes results.
	Shards int
	// Balance selects the ingress policy: "rr" (default) round-robins;
	// "least" routes to the replica with the fewest outstanding
	// requests as observed at the ingress — completions report back
	// over the same forwarding latency, so the view is delayed exactly
	// like a real out-of-band health channel.
	Balance string
	// Forward is the one-way ingress->replica forwarding latency and
	// the sharded kernel's lookahead; 0 defaults to Config.RemoteRTT/2
	// (the one-way peer network latency).
	Forward sim.Time
	// Programs/Remote override the service catalog (nil = defaults).
	Programs []*trace.Program
	Remote   map[string]engine.RemoteKind
	// Faults, when non-nil, attaches an independently seeded injector
	// to every replica.
	Faults *fault.Spec
	// Control, when non-nil, attaches the dynamic-control subsystem at
	// the ingress, seeded with DeriveSeed(Seed, "control"): load
	// shedding on arrival and an autoscaler over the active replica
	// set (target must be "replicas"; the built replica count is the
	// ceiling — deactivated replicas stop receiving new work and
	// drain). Retry budgets are not supported in fleets: the ingress
	// would have to replay jobs across domains. All controller state
	// is ingress-domain-confined, so controlled fleets stay
	// byte-identical at every Shards value.
	Control *control.Spec
	// Check attaches a runtime invariant checker to every replica and
	// runs the end-of-run suite per replica after the fleet drains.
	Check bool
}

// FleetResult aggregates a finished fleet run.
type FleetResult struct {
	// Merged combines all replicas in replica-index order: recorders
	// merged, counters summed. Merged.Engine is nil — per-engine state
	// lives in Replicas.
	Merged *RunResult
	// Replicas holds each server's own result (Engine populated).
	Replicas []*RunResult
	// Routed counts requests the balancer sent to each replica.
	Routed []uint64
	// Shed counts arrivals the controller rejected at the ingress
	// (never routed, never submitted); Control carries the
	// controller's activity counters when FleetSpec.Control was set.
	Shed    uint64
	Control *control.Stats
	// Events is the total executed event count across all domains;
	// Epochs and Mail are the coordinator's barrier statistics.
	Events uint64
	Epochs uint64
	Mail   uint64
}

// Run drives the fleet to completion.
func (s *FleetSpec) Run() (*FleetResult, error) {
	return s.RunCtx(context.Background())
}

// RunCtx is Run with cooperative cancellation, mirroring
// RunSpec.RunCtx: a cancelled run returns no result.
func (s *FleetSpec) RunCtx(ctx context.Context) (*FleetResult, error) {
	if s.Replicas < 1 {
		return nil, fmt.Errorf("workload: fleet needs at least one replica, got %d", s.Replicas)
	}
	switch s.Balance {
	case "", "rr", "least":
	default:
		return nil, fmt.Errorf("workload: unknown balance policy %q (want rr or least)", s.Balance)
	}
	if s.Control != nil {
		if err := s.Control.Validate(); err != nil {
			return nil, err
		}
		if s.Control.Retry != nil {
			return nil, fmt.Errorf("workload: fleet runs do not support retry budgets (the ingress cannot replay jobs across domains)")
		}
		if a := s.Control.Autoscale; a != nil && a.Target != control.TargetReplicas {
			return nil, fmt.Errorf("workload: fleet autoscale target must be %q, got %q", control.TargetReplicas, a.Target)
		}
	}
	forward := s.Forward
	if forward <= 0 {
		forward = s.Config.RemoteRTT / 2
	}
	if forward <= 0 {
		return nil, fmt.Errorf("workload: fleet forwarding latency must be positive, got %v", forward)
	}

	nd := 1 + s.Replicas // domain 0 = ingress, 1..R = servers
	sk := sim.NewSharded(nd, forward, s.Shards)

	programs := s.Programs
	if programs == nil {
		programs = services.Catalog()
	}
	remote := s.Remote
	if remote == nil {
		remote = services.RemoteTails()
	}

	out := &FleetResult{
		Replicas: make([]*RunResult, s.Replicas),
		Routed:   make([]uint64, s.Replicas),
	}
	engines := make([]*engine.Engine, s.Replicas)
	checkers := make([]*check.Checker, s.Replicas)
	for i := 0; i < s.Replicas; i++ {
		k := sk.Domain(1 + i)
		p := engine.Params{Seed: sim.DeriveSeed(s.Seed, fmt.Sprintf("replica/%d", i))}
		if s.Faults != nil {
			p.Faults = fault.New(*s.Faults,
				sim.DeriveSeed(s.Seed, fmt.Sprintf("faults/replica/%d", i)))
		}
		if s.Check {
			checkers[i] = check.New()
			p.Check = checkers[i]
		}
		e, err := engine.New(k, s.Config, s.Policy, p)
		if err != nil {
			return nil, err
		}
		if err := e.Register(programs, remote); err != nil {
			return nil, err
		}
		engines[i] = e
		out.Replicas[i] = &RunResult{
			PerService: map[string]*metrics.Recorder{},
			All:        metrics.NewRecorder(s.Policy.Name),
			Net:        metrics.NewRecorder(s.Policy.Name + "/net"),
			Engine:     e,
		}
	}

	lb := newBalancer(s.Balance, s.Replicas)
	var ctl *control.Controller
	if s.Control != nil {
		ctl = control.New(*s.Control, sim.DeriveSeed(s.Seed, "control"))
		if s.Control.Autoscale != nil {
			ctl.AttachActive(s.Replicas, lb.setActive)
		}
	}
	rng := sim.NewRNG(s.Seed ^ 0x5eed)
	total := 0
	for si, src := range s.Sources {
		if src.Requests <= 0 {
			return nil, fmt.Errorf("workload: source %d has no request budget", si)
		}
		total += src.Requests
		for i := range out.Replicas {
			if out.Replicas[i].PerService[src.Service.Name] == nil {
				out.Replicas[i].PerService[src.Service.Name] = metrics.NewRecorder(src.Service.Name)
			}
		}
		srcRNG := rng.Fork(int64(si) + 1)
		scheduleFleetSource(sk, src, srcRNG, lb, ctl, engines, out, forward)
	}
	if total == 0 {
		return nil, fmt.Errorf("workload: no requests to run")
	}
	if ctl != nil && ctl.NeedsTick() {
		// The decision loop is a manually rescheduled tick on the
		// ingress domain, not Kernel.Every: an Every tick dies as soon
		// as the ingress goes idle while replicas still work (its
		// reschedule rule only sees its own domain's queue). The manual
		// tick keeps itself alive while arrivals remain or requests are
		// in flight — outstanding only reaches zero after every
		// completion notice has been delivered back to the ingress — so
		// it spans the run and stops at global quiescence. Everything it
		// reads and writes is ingress-domain-confined, so the schedule
		// is byte-identical at every Shards value.
		ing := sk.Domain(0)
		iv := ctl.Interval()
		var tick func()
		tick = func() {
			ctl.Tick(ing.Now())
			if ing.Pending() > 0 || ctl.Outstanding() > 0 {
				ing.After(iv, tick)
			}
		}
		ing.After(iv, tick)
	}

	if err := sk.RunCtx(ctx); err != nil {
		return nil, fmt.Errorf("workload: fleet run interrupted: %w", err)
	}

	// Merge in replica-index order — the only order-sensitive step of
	// result assembly, fixed independent of worker scheduling.
	merged := &RunResult{
		PerService: map[string]*metrics.Recorder{},
		All:        metrics.NewRecorder(s.Policy.Name),
		Net:        metrics.NewRecorder(s.Policy.Name + "/net"),
		Elapsed:    sk.Now(),
	}
	for _, rr := range out.Replicas {
		merged.All.Merge(rr.All)
		merged.Net.Merge(rr.Net)
		for name, rec := range rr.PerService {
			if merged.PerService[name] == nil {
				merged.PerService[name] = metrics.NewRecorder(name)
			}
			merged.PerService[name].Merge(rec)
		}
		merged.Completed += rr.Completed
		merged.TimedOut += rr.TimedOut
		merged.FellBack += rr.FellBack
		merged.AccelCount += rr.AccelCount
		addBreakdown(&merged.Breakdown, rr.Breakdown)
	}
	out.Merged = merged
	out.Events = sk.Processed()
	out.Epochs = sk.Stats.Epochs
	out.Mail = sk.Stats.Delivered
	if ctl != nil {
		out.Control = &ctl.Stats
	}

	// Every arrival either sheds at the ingress or completes on a
	// replica — a shed request must never reappear downstream.
	if uint64(total) != merged.Completed+out.Shed {
		return out, fmt.Errorf("workload: fleet lost requests: %d submitted, %d completed, %d shed",
			total, merged.Completed, out.Shed)
	}
	if s.Check {
		for i, chk := range checkers {
			rr := out.Replicas[i]
			chk.CheckConservation(sk.Domain(1+i).Now(), rr.Completed, rr.TimedOut, rr.FellBack)
			engines[i].CheckEnd(chk)
			if err := chk.Err(); err != nil {
				return out, fmt.Errorf("workload: replica %d invariant check failed: %w", i, err)
			}
		}
	}
	return out, nil
}

// scheduleFleetSource pre-schedules one source's arrivals on the
// ingress domain. Each arrival picks a replica, then forwards the job
// across domains with the modeled one-way latency; the completion
// callback runs on the replica's domain and owns that replica's
// recorders (domain confinement keeps the merge deterministic and the
// run race-free).
func scheduleFleetSource(sk *sim.Sharded, src Source, rng *sim.RNG, lb *balancer, ctl *control.Controller, engines []*engine.Engine, out *FleetResult, forward sim.Time) {
	ing := sk.Domain(0)
	// Completion notices flow back whenever anything at the ingress
	// consumes them: the least-outstanding balancer's load view, or the
	// controller's outstanding count and latency window.
	notify := lb.tracksLoad() || ctl != nil
	t := sim.Time(0)
	for i := 0; i < src.Requests; i++ {
		t += src.Arrivals.Next(rng)
		at := t
		ing.At(at, func() {
			if ctl != nil && ctl.Shed() {
				out.Shed++
				return
			}
			ri := lb.pick()
			out.Routed[ri]++
			if ctl != nil {
				ctl.NoteSubmit()
			}
			job := src.Service.Job(src.Tenant)
			rr := out.Replicas[ri]
			rec := rr.PerService[src.Service.Name]
			repK := sk.Domain(1 + ri)
			ing.Send(1+ri, at+forward, func() {
				engines[ri].Submit(job, func(r engine.Result) {
					rec.Add(r.Latency)
					rr.All.Add(r.Latency)
					net := r.Latency - r.Breakdown.Remote
					if net < r.Latency/4 {
						net = r.Latency / 4
					}
					rr.Net.Add(net)
					rr.Completed++
					rr.AccelCount += uint64(r.Accels)
					if r.TimedOut {
						rr.TimedOut++
					}
					if r.FellBack {
						rr.FellBack++
					}
					addBreakdown(&rr.Breakdown, r.Breakdown)
					if notify {
						// Completion notice travels back to the ingress
						// over the same forwarding latency.
						done := ri
						lat := r.Latency
						repK.Send(0, repK.Now()+forward, func() {
							if lb.tracksLoad() {
								lb.done(done)
							}
							if ctl != nil {
								ctl.NoteDone(ing.Now(), lat)
							}
						})
					}
				})
			})
		})
	}
}

// balancer is the ingress routing policy. All state lives on the
// ingress domain: pick runs in arrival events, done in mailbox
// deliveries — never concurrently.
type balancer struct {
	least    bool
	replicas int
	active   int // routable prefix [0, active); the autoscaler moves it

	next        int   // rr cursor
	outstanding []int // least: in-flight per replica, as seen at ingress
}

func newBalancer(mode string, replicas int) *balancer {
	b := &balancer{least: mode == "least", replicas: replicas, active: replicas}
	if b.least {
		b.outstanding = make([]int, replicas)
	}
	return b
}

// setActive resizes the routable replica prefix (the autoscaler's
// actuator). Shrinking never cancels in-flight work: replicas outside
// the prefix just stop receiving new requests and drain.
func (b *balancer) setActive(n int) {
	if n < 1 {
		n = 1
	}
	if n > b.replicas {
		n = b.replicas
	}
	b.active = n
	if b.next >= n {
		b.next = 0
	}
}

// tracksLoad reports whether completions must be reported back to the
// ingress (only the least-outstanding policy keeps load state).
func (b *balancer) tracksLoad() bool { return b.least }

func (b *balancer) pick() int {
	if !b.least {
		ri := b.next
		b.next = (b.next + 1) % b.active
		return ri
	}
	// Minimum outstanding over the active prefix, ties to the lowest
	// index: deterministic.
	best := 0
	for i := 1; i < b.active; i++ {
		if b.outstanding[i] < b.outstanding[best] {
			best = i
		}
	}
	b.outstanding[best]++
	return best
}

func (b *balancer) done(ri int) { b.outstanding[ri]-- }

package workload

import (
	"context"
	"fmt"
	"sort"

	"accelflow/internal/check"
	"accelflow/internal/config"
	"accelflow/internal/control"
	"accelflow/internal/engine"
	"accelflow/internal/fault"
	"accelflow/internal/metrics"
	"accelflow/internal/obs"
	"accelflow/internal/services"
	"accelflow/internal/sim"
	"accelflow/internal/trace"
)

// Source pairs a service with its arrival process and request budget.
type Source struct {
	Service  *services.Service
	Arrivals Arrivals
	Requests int
	Tenant   int
}

// RunResult aggregates a finished simulation.
type RunResult struct {
	PerService map[string]*metrics.Recorder
	All        *metrics.Recorder
	// Net records latency excluding remote-peer waits (the on-server
	// portion), used by SLO comparisons that should not be dominated
	// by the modeled far side of nested RPCs.
	Net *metrics.Recorder

	// Breakdowns sums the per-request component attribution.
	Breakdown engine.Breakdown
	// AccelCount sums accelerator invocations (Table IV validation).
	AccelCount uint64
	Completed  uint64
	TimedOut   uint64
	FellBack   uint64
	// Shed counts arrivals the controller rejected before submission;
	// Retries counts controller-granted re-submissions of timed-out
	// requests. Latency recorders see neither: a shed request records
	// nothing, and only a request's final attempt records its latency,
	// so recorder counts equal (arrivals - Shed). Completed counts
	// every engine completion, retries included, so conservation
	// against the engine's admission counter still balances exactly.
	Shed    uint64
	Retries uint64
	// Control carries the controller's activity counters when
	// RunSpec.Control was set (nil otherwise).
	Control *control.Stats

	Elapsed sim.Time
	Engine  *engine.Engine
}

// RunSpec describes one simulation run: the platform configuration,
// the orchestration policy, the workload sources, and the optional
// knobs that used to pile up as positional arguments of Run. Zero
// values for Programs/Remote default to the SocialNetwork catalog.
type RunSpec struct {
	Config  *config.Config
	Policy  engine.Policy
	Sources []Source
	Seed    int64
	// Programs/Remote override the service catalog (nil = defaults).
	Programs []*trace.Program
	Remote   map[string]engine.RemoteKind
	// Obs, when non-nil, records per-request spans and time-sampled
	// utilization of PEs, manager, NoC links, DRAM, and the A-DMA
	// pool. Each Sink records exactly one run.
	Obs *obs.Sink
	// Faults, when non-nil, attaches a deterministic fault injector
	// seeded with DeriveSeed(Seed, "faults"); a spec with Rate 0 (and
	// RemoteLossRate 0) leaves results bit-identical to Faults == nil.
	Faults *fault.Spec
	// Control, when non-nil, attaches the dynamic-control subsystem
	// seeded with DeriveSeed(Seed, "control"): an autoscaler over the
	// PE pools or the core pool (target "replicas" needs a FleetSpec),
	// request-layer load shedding, and per-tenant retry budgets. A
	// controller whose policies can never fire draws from no RNG
	// stream and leaves results bit-identical to Control == nil except
	// that its decision tick, like the obs sampler, may extend Elapsed
	// by up to one interval past the last completion.
	Control *control.Spec
	// Check, when non-nil, attaches a runtime invariant checker: the
	// kernel verifies event-time monotonicity as it runs, the engine
	// feeds request-conservation counters, and after the run drains the
	// full per-resource suite (utilization bounds, queue drain,
	// Little's law) executes. Any violation makes RunCtx return a
	// *check.Failure error alongside the result. Checker hooks only
	// read state, so an attached checker never changes Values. Each
	// Checker covers exactly one run.
	Check *check.Checker
	// Shards > 1 routes execution through the sharded coordinator
	// (sim.Sharded) instead of a bare kernel. A single simulated server
	// is one resource domain — every component shares the engine's
	// state — so a RunSpec run always occupies one domain and the knob
	// changes the execution path, never the results: sharded output is
	// byte-identical to serial at any shard count. Multi-domain
	// parallelism (one domain per server plus an ingress balancer)
	// comes from FleetSpec, where Shards sets the worker count.
	Shards int
}

// Run drives one engine with the spec's sources until every request
// completes and returns the collected metrics.
func (s *RunSpec) Run() (*RunResult, error) {
	return s.RunCtx(context.Background())
}

// RunCtx is Run with cooperative cancellation: when ctx is cancelled
// the kernel stops at the next event-batch boundary and RunCtx returns
// an error wrapping ctx.Err() (so errors.Is(err, context.Canceled)
// holds). A cancelled run returns no RunResult — the simulation state
// is consistent but incomplete, and partial metrics would be
// misleading. With a background (or nil) context the behavior and
// results are bit-identical to Run.
func (s *RunSpec) RunCtx(ctx context.Context) (*RunResult, error) {
	var (
		k      *sim.Kernel
		runner sim.Runner
	)
	if s.Shards > 1 {
		// One server = one domain (see the Shards doc): the coordinator
		// delegates a single domain to the kernel's own run loop, so
		// this path is the serial path, executed through the unified
		// Runner contract.
		sk := sim.NewSharded(1, 0, s.Shards)
		k = sk.Domain(0)
		runner = sk
	} else {
		k = sim.NewKernel()
		runner = k
	}
	p := engine.Params{Seed: s.Seed, Obs: s.Obs, Check: s.Check}
	if s.Faults != nil {
		p.Faults = fault.New(*s.Faults, sim.DeriveSeed(s.Seed, "faults"))
	}
	e, err := engine.New(k, s.Config, s.Policy, p)
	if err != nil {
		return nil, err
	}
	programs := s.Programs
	if programs == nil {
		programs = services.Catalog()
	}
	remote := s.Remote
	if remote == nil {
		remote = services.RemoteTails()
	}
	if err := e.Register(programs, remote); err != nil {
		return nil, err
	}
	var ctl *control.Controller
	if s.Control != nil {
		if err := s.Control.Validate(); err != nil {
			return nil, err
		}
		ctl = control.New(*s.Control, sim.DeriveSeed(s.Seed, "control"))
		ctl.BindObs(s.Obs)
		if a := s.Control.Autoscale; a != nil {
			pools, err := e.ControlPools(a.Target)
			if err != nil {
				return nil, err
			}
			ctl.AttachPools(pools)
		}
	}

	res := &RunResult{
		PerService: map[string]*metrics.Recorder{},
		All:        metrics.NewRecorder(s.Policy.Name),
		Net:        metrics.NewRecorder(s.Policy.Name + "/net"),
		Engine:     e,
	}
	rng := sim.NewRNG(s.Seed ^ 0x5eed)

	total := 0
	for si, src := range s.Sources {
		if src.Requests <= 0 {
			return nil, fmt.Errorf("workload: source %d has no request budget", si)
		}
		total += src.Requests
		rec := metrics.NewRecorder(src.Service.Name)
		res.PerService[src.Service.Name] = rec
		srcRNG := rng.Fork(int64(si) + 1)
		if ctl != nil {
			scheduleControlledSource(k, e, ctl, src, srcRNG, rec, res)
		} else {
			scheduleSource(k, e, src, srcRNG, rec, res)
		}
	}
	if total == 0 {
		return nil, fmt.Errorf("workload: no requests to run")
	}
	if ctl != nil && ctl.NeedsTick() {
		// The decision tick arms like the obs sampler (below): after all
		// arrivals are scheduled, through Kernel.Every's self-terminating
		// reschedule, so the controller stops when the run drains. Armed
		// first so its event-sequence position is fixed whether or not
		// observability is on.
		h := k.Hooks()
		h.Periodic = append(h.Periodic, ctl.Periodic(k))
		k.SetHooks(h)
	}
	if s.Obs != nil {
		// Layered over the hooks the engine installed (checker OnEvent):
		// the sampler arms here, after all arrivals are scheduled, which
		// fixes its event-sequence position exactly where the run needs
		// it (see samplerHook).
		h := k.Hooks()
		h.Periodic = append(h.Periodic, samplerHook(k, e, s.Obs))
		k.SetHooks(h)
	}
	if err := runner.RunCtx(ctx); err != nil {
		return nil, fmt.Errorf("workload: run interrupted: %w", err)
	}
	res.Elapsed = k.Now()
	if ctl != nil {
		res.Control = &ctl.Stats
	}
	if s.Check.Enabled() {
		// The heap has drained, so the quiescence-only invariants hold;
		// the runner's own counters serve as the independent accounting
		// the conservation check compares against.
		s.Check.CheckConservation(k.Now(), res.Completed, res.TimedOut, res.FellBack)
		e.CheckEnd(s.Check)
		if err := s.Check.Err(); err != nil {
			return res, fmt.Errorf("workload: invariant check failed: %w", err)
		}
	}
	return res, nil
}

// samplerHook builds the periodic utilization sampler as a Hooks
// entry. Every interval it converts each resource's busy-time delta
// into a [0,1] utilization sample. The callback only reads counters —
// it never touches RNG streams or queue state — so enabling
// observability cannot change simulation results; and because all
// arrivals are scheduled up front, Kernel.Every's self-termination
// rule (which SetHooks arms Periodic entries through) ends the
// sampler exactly when the run ends.
func samplerHook(k *sim.Kernel, e *engine.Engine, sink *obs.Sink) sim.Periodic {
	iv := sink.SampleInterval()
	span := float64(iv)
	util := func(delta sim.Time, servers int) float64 {
		if servers < 1 {
			servers = 1
		}
		// BusyTime is charged up front at task start, so a delta can
		// exceed the interval capacity; clamp to 1.
		u := float64(delta) / (span * float64(servers))
		if u > 1 {
			u = 1
		}
		return u
	}
	var last struct {
		cores, manager, dram, noc, adma sim.Time
		pes                             [config.NumAccelKinds]sim.Time
	}
	// Interned per-kind sample names: the tick fires every interval for
	// the whole run, so building them inside the closure would allocate
	// NumAccelKinds strings per tick.
	var peNames [config.NumAccelKinds]string
	for _, kd := range config.AllAccelKinds() {
		peNames[kd] = "util/pe/" + kd.String()
	}
	return sim.Periodic{Every: iv, Fn: func() {
		now := k.Now()
		cores := e.Cores.BusyTime
		sink.Sample("util/cores", now, util(cores-last.cores, e.Cores.Servers))
		last.cores = cores

		mgr := e.Manager.BusyTime
		sink.Sample("util/manager", now, util(mgr-last.manager, e.Manager.Servers))
		last.manager = mgr

		for _, kd := range config.AllAccelKinds() {
			pe := e.Accels[kd].PEs
			sink.Sample(peNames[kd], now, util(pe.BusyTime-last.pes[kd], pe.Servers))
			last.pes[kd] = pe.BusyTime
		}

		dram := e.Mem.BusyTime()
		sink.Sample("util/dram", now, util(dram-last.dram, e.Mem.CtrlCount()))
		last.dram = dram

		nocBusy := e.Net.LinkBusy()
		sink.Sample("util/noc", now, util(nocBusy-last.noc, e.Net.LinkCount()))
		last.noc = nocBusy

		adma := e.DMA.Busy()
		sink.Sample("util/adma", now, util(adma-last.adma, e.DMA.Engines()))
		last.adma = adma
	}}
}

func scheduleSource(k *sim.Kernel, e *engine.Engine, src Source, rng *sim.RNG, rec *metrics.Recorder, res *RunResult) {
	t := sim.Time(0)
	for i := 0; i < src.Requests; i++ {
		t += src.Arrivals.Next(rng)
		at := t
		k.At(at, func() {
			job := src.Service.Job(src.Tenant)
			e.Submit(job, func(r engine.Result) {
				rec.Add(r.Latency)
				res.All.Add(r.Latency)
				// Remote sums ALL peer waits, including overlapped
				// parallel ones, so it can exceed the critical path;
				// floor the on-server estimate at a quarter of the
				// end-to-end latency.
				net := r.Latency - r.Breakdown.Remote
				if net < r.Latency/4 {
					net = r.Latency / 4
				}
				res.Net.Add(net)
				res.Completed++
				res.AccelCount += uint64(r.Accels)
				if r.TimedOut {
					res.TimedOut++
				}
				if r.FellBack {
					res.FellBack++
				}
				addBreakdown(&res.Breakdown, r.Breakdown)
			})
		})
	}
}

// scheduleControlledSource is scheduleSource with the controller on
// the request path: arrivals may be shed before submission, and
// timed-out completions may be re-submitted after a backoff. It is a
// separate function (rather than a ctl != nil branch inside the
// closure) so the uncontrolled hot path keeps its exact event
// sequence, closure shape, and allocation profile.
//
// Accounting contract: Completed/TimedOut/FellBack/AccelCount and the
// breakdown accrue on every engine completion (retries included), so
// conservation against the engine's admission counter balances; the
// latency recorders see only each request's final attempt, and shed
// arrivals see nothing, so recorder counts equal arrivals - Shed.
func scheduleControlledSource(k *sim.Kernel, e *engine.Engine, ctl *control.Controller, src Source, rng *sim.RNG, rec *metrics.Recorder, res *RunResult) {
	t := sim.Time(0)
	for i := 0; i < src.Requests; i++ {
		t += src.Arrivals.Next(rng)
		at := t
		k.At(at, func() {
			if ctl.Shed() {
				res.Shed++
				return
			}
			var submit func(attempt int)
			submit = func(attempt int) {
				job := src.Service.Job(src.Tenant)
				ctl.NoteSubmit()
				e.Submit(job, func(r engine.Result) {
					res.Completed++
					res.AccelCount += uint64(r.Accels)
					if r.TimedOut {
						res.TimedOut++
					}
					if r.FellBack {
						res.FellBack++
					}
					addBreakdown(&res.Breakdown, r.Breakdown)
					ctl.NoteDone(k.Now(), r.Latency)
					if r.TimedOut {
						if backoff, ok := ctl.RetryAfter(src.Tenant, attempt); ok {
							res.Retries++
							k.After(backoff, func() { submit(attempt + 1) })
							return
						}
					}
					rec.Add(r.Latency)
					res.All.Add(r.Latency)
					net := r.Latency - r.Breakdown.Remote
					if net < r.Latency/4 {
						net = r.Latency / 4
					}
					res.Net.Add(net)
				})
			}
			submit(1)
		})
	}
}

func addBreakdown(dst *engine.Breakdown, b engine.Breakdown) {
	dst.CPU += b.CPU
	dst.Accel += b.Accel
	dst.Orch += b.Orch
	dst.Comm += b.Comm
	dst.Remote += b.Remote
	dst.App += b.App
	for k := range b.Tax {
		dst.Tax[k] += b.Tax[k]
	}
}

// SingleService is a convenience for the per-service experiments: one
// service, one arrival process, n requests.
func SingleService(svc *services.Service, arr Arrivals, n int) []Source {
	return []Source{{Service: svc, Arrivals: arr, Requests: n}}
}

// Mix builds sources for a catalog with each service at its own
// Alibaba-like rate, scaled by loadScale, splitting the request budget
// proportionally to the rates with largest-remainder apportionment:
// whenever totalRequests >= len(svcs), the per-source budgets sum to
// exactly totalRequests (plain flooring used to drop up to len(svcs)-1
// requests). Every source still gets at least one request, so for
// totalRequests < len(svcs) the sum is len(svcs).
func Mix(svcs []*services.Service, loadScale float64, totalRequests int) []Source {
	var rateSum float64
	for _, s := range svcs {
		rateSum += s.RatekRPS
	}
	n := len(svcs)
	quota := make([]int, n)
	rem := make([]float64, n)
	assigned := 0
	for i, s := range svcs {
		share := float64(totalRequests) * s.RatekRPS / rateSum
		quota[i] = int(share)
		rem[i] = share - float64(quota[i])
		assigned += quota[i]
	}
	// Hand the flooring leftover (< n requests) to the largest
	// fractional parts; ties break toward the earlier service, keeping
	// the split deterministic.
	if left := totalRequests - assigned; left > 0 {
		order := make([]int, n)
		for i := range order {
			order[i] = i
		}
		sort.SliceStable(order, func(a, b int) bool {
			return rem[order[a]] > rem[order[b]]
		})
		if left > n {
			left = n
		}
		for _, i := range order[:left] {
			quota[i]++
		}
	}
	// Rebalance zero-quota sources from the largest ones so every
	// service appears without changing the exact total.
	for i := range quota {
		if quota[i] > 0 {
			continue
		}
		big := -1
		for j := range quota {
			if quota[j] > 1 && (big < 0 || quota[j] > quota[big]) {
				big = j
			}
		}
		if big >= 0 {
			quota[big]--
		}
		quota[i] = 1
	}
	out := make([]Source, 0, n)
	for i, s := range svcs {
		out = append(out, Source{
			Service:  s,
			Arrivals: &Alibaba{RPS: s.RatekRPS * 1000 * loadScale},
			Requests: quota[i],
		})
	}
	return out
}

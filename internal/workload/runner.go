package workload

import (
	"fmt"

	"accelflow/internal/config"
	"accelflow/internal/engine"
	"accelflow/internal/metrics"
	"accelflow/internal/services"
	"accelflow/internal/sim"
	"accelflow/internal/trace"
)

// Source pairs a service with its arrival process and request budget.
type Source struct {
	Service  *services.Service
	Arrivals Arrivals
	Requests int
	Tenant   int
}

// RunResult aggregates a finished simulation.
type RunResult struct {
	PerService map[string]*metrics.Recorder
	All        *metrics.Recorder
	// Net records latency excluding remote-peer waits (the on-server
	// portion), used by SLO comparisons that should not be dominated
	// by the modeled far side of nested RPCs.
	Net *metrics.Recorder

	// Breakdowns sums the per-request component attribution.
	Breakdown engine.Breakdown
	// AccelCount sums accelerator invocations (Table IV validation).
	AccelCount uint64
	Completed  uint64
	TimedOut   uint64
	FellBack   uint64

	Elapsed sim.Time
	Engine  *engine.Engine
}

// Run drives one engine with the given sources until every request
// completes and returns the collected metrics. programs/remote default
// to the SocialNetwork catalog when nil.
func Run(cfg *config.Config, pol engine.Policy, sources []Source, seed int64, programs []*trace.Program, remote map[string]engine.RemoteKind) (*RunResult, error) {
	k := sim.NewKernel()
	e, err := engine.New(k, cfg, pol, seed)
	if err != nil {
		return nil, err
	}
	if programs == nil {
		programs = services.Catalog()
	}
	if remote == nil {
		remote = services.RemoteTails()
	}
	if err := e.Register(programs, remote); err != nil {
		return nil, err
	}

	res := &RunResult{
		PerService: map[string]*metrics.Recorder{},
		All:        metrics.NewRecorder(pol.Name),
		Net:        metrics.NewRecorder(pol.Name + "/net"),
		Engine:     e,
	}
	rng := sim.NewRNG(seed ^ 0x5eed)

	total := 0
	for si, src := range sources {
		if src.Requests <= 0 {
			return nil, fmt.Errorf("workload: source %d has no request budget", si)
		}
		total += src.Requests
		rec := metrics.NewRecorder(src.Service.Name)
		res.PerService[src.Service.Name] = rec
		srcRNG := rng.Fork(int64(si) + 1)
		scheduleSource(k, e, src, srcRNG, rec, res)
	}
	if total == 0 {
		return nil, fmt.Errorf("workload: no requests to run")
	}
	k.Run()
	res.Elapsed = k.Now()
	return res, nil
}

func scheduleSource(k *sim.Kernel, e *engine.Engine, src Source, rng *sim.RNG, rec *metrics.Recorder, res *RunResult) {
	t := sim.Time(0)
	for i := 0; i < src.Requests; i++ {
		t += src.Arrivals.Next(rng)
		at := t
		k.At(at, func() {
			job := src.Service.Job(src.Tenant)
			e.Submit(job, func(r engine.Result) {
				rec.Add(r.Latency)
				res.All.Add(r.Latency)
				// Remote sums ALL peer waits, including overlapped
				// parallel ones, so it can exceed the critical path;
				// floor the on-server estimate at a quarter of the
				// end-to-end latency.
				net := r.Latency - r.Breakdown.Remote
				if net < r.Latency/4 {
					net = r.Latency / 4
				}
				res.Net.Add(net)
				res.Completed++
				res.AccelCount += uint64(r.Accels)
				if r.TimedOut {
					res.TimedOut++
				}
				if r.FellBack {
					res.FellBack++
				}
				addBreakdown(&res.Breakdown, r.Breakdown)
			})
		})
	}
}

func addBreakdown(dst *engine.Breakdown, b engine.Breakdown) {
	dst.CPU += b.CPU
	dst.Accel += b.Accel
	dst.Orch += b.Orch
	dst.Comm += b.Comm
	dst.Remote += b.Remote
	dst.App += b.App
	for k := range b.Tax {
		dst.Tax[k] += b.Tax[k]
	}
}

// SingleService is a convenience for the per-service experiments: one
// service, one arrival process, n requests.
func SingleService(svc *services.Service, arr Arrivals, n int) []Source {
	return []Source{{Service: svc, Arrivals: arr, Requests: n}}
}

// Mix builds sources for a catalog with each service at its own
// Alibaba-like rate, scaled by loadScale, splitting the request budget
// proportionally to the rates.
func Mix(svcs []*services.Service, loadScale float64, totalRequests int) []Source {
	var rateSum float64
	for _, s := range svcs {
		rateSum += s.RatekRPS
	}
	out := make([]Source, 0, len(svcs))
	for _, s := range svcs {
		n := int(float64(totalRequests) * s.RatekRPS / rateSum)
		if n < 1 {
			n = 1
		}
		out = append(out, Source{
			Service:  s,
			Arrivals: &Alibaba{RPS: s.RatekRPS * 1000 * loadScale},
			Requests: n,
		})
	}
	return out
}

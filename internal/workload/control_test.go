package workload

import (
	"strings"
	"testing"

	"accelflow/internal/config"
	"accelflow/internal/control"
	"accelflow/internal/engine"
	"accelflow/internal/fault"
	"accelflow/internal/services"
	"accelflow/internal/sim"
)

// controlledSpec is a single-server run where every control policy is
// live: a surge load pushes the PE autoscaler, a low queue threshold
// forces sheds, and a fault burst forces timeouts that exercise the
// retry budget (and the controller/injector SetServers composition).
func controlledSpec(shards int) *RunSpec {
	// Short enqueue backoff and a single timeout rearm make the fault
	// windows actually produce timeouts (the retry path's trigger),
	// mirroring the recovery experiment's configuration.
	cfg := config.Default()
	cfg.EnqueueBackoff = 200 * sim.Nanosecond
	cfg.TimeoutRearms = 1
	return &RunSpec{
		Config:  cfg,
		Policy:  engine.AccelFlow(),
		Sources: Mix(services.SocialNetwork(), 3.0, 300),
		Seed:    11,
		Shards:  shards,
		Faults: &fault.Spec{
			Rate:          20000,
			MeanWindow:    150 * sim.Microsecond,
			Horizon:       sim.Second,
			PEDegradeFrac: 0.75,
			PEFail:        true,
			// Lost remote responses are what actually produce TCP
			// timeouts (PE faults only degrade or fall back), and
			// timeouts are the retry path's trigger.
			RemoteLossRate: 0.05,
		},
		Control: &control.Spec{
			Autoscale: &control.AutoscaleSpec{
				Target:   control.TargetPE,
				UpUtil:   0.3,
				DownUtil: 0.05,
				SLOUs:    300,
				MaxAdd:   8,
			},
			Shed:  &control.ShedSpec{Queue: 48, Prob: 0.02},
			Retry: &control.RetrySpec{Budget: 16},
		},
	}
}

// runFingerprint flattens every controlled-run output a shard-count
// change could plausibly disturb.
type runFingerprint struct {
	completed, timedOut, fellBack uint64
	shed, retries                 uint64
	mean, p99, max                sim.Time
	count                         int
	elapsed                       sim.Time
	stats                         control.Stats
}

func controlledFingerprint(t *testing.T, res *RunResult) runFingerprint {
	t.Helper()
	if res.Control == nil {
		t.Fatal("controlled run returned nil Control stats")
	}
	return runFingerprint{
		completed: res.Completed, timedOut: res.TimedOut, fellBack: res.FellBack,
		shed: res.Shed, retries: res.Retries,
		mean: res.All.Mean(), p99: res.All.P99(), max: res.All.Max(),
		count: res.All.Count(), elapsed: res.Elapsed,
		stats: *res.Control,
	}
}

// TestControlledRunShardInvariance: a run with every control policy
// active (autoscaler + shedding + retries, composed with a fault
// burst) is byte-identical at shard counts {1, 2, 4}.
func TestControlledRunShardInvariance(t *testing.T) {
	run := func(shards int) runFingerprint {
		res, err := controlledSpec(shards).Run()
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		return controlledFingerprint(t, res)
	}
	ref := run(1)
	// The test is vacuous unless every policy actually fired.
	if ref.stats.ScaleUps == 0 {
		t.Fatal("surge produced no scale-ups — controller not engaged")
	}
	if ref.shed == 0 || ref.retries == 0 {
		t.Fatalf("shed=%d retries=%d — shedding/retry paths not exercised", ref.shed, ref.retries)
	}
	for _, shards := range []int{2, 4} {
		if got := run(shards); got != ref {
			t.Errorf("shards=%d diverged from serial:\n got %+v\nwant %+v", shards, got, ref)
		}
	}
}

// TestControlledFleetShardInvariance: a fleet with the replicas
// autoscaler and ingress shedding is byte-identical at any shard
// count, controller counters included.
func TestControlledFleetShardInvariance(t *testing.T) {
	mk := func(shards int) *FleetSpec {
		return &FleetSpec{
			Config:   config.Default(),
			Policy:   engine.AccelFlow(),
			Sources:  Mix(services.SocialNetwork(), 4.0, 240),
			Seed:     11,
			Replicas: 4,
			Shards:   shards,
			Control: &control.Spec{
				Autoscale: &control.AutoscaleSpec{
					Target:    control.TargetReplicas,
					UpUtil:    0.9,
					DownUtil:  0.3,
					MaxRemove: 2,
				},
				Shed: &control.ShedSpec{Queue: 64},
			},
		}
	}
	type fleetCtl struct {
		fp    fleetFingerprint
		shed  uint64
		stats control.Stats
	}
	run := func(shards int) fleetCtl {
		res, err := mk(shards).Run()
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		if res.Control == nil {
			t.Fatalf("shards=%d: nil Control stats", shards)
		}
		return fleetCtl{fp: fingerprint(t, res), shed: res.Shed, stats: *res.Control}
	}
	ref := run(1)
	if ref.stats.Ticks == 0 {
		t.Fatal("fleet controller never ticked")
	}
	if ref.fp.completed+ref.shed != 240 {
		t.Fatalf("conservation: %d completed + %d shed != 240", ref.fp.completed, ref.shed)
	}
	for _, shards := range []int{2, 4} {
		if got := run(shards); got != ref {
			t.Errorf("shards=%d diverged from serial:\n got %+v\nwant %+v", shards, got, ref)
		}
	}
}

// TestFleetControlValidation: fleets reject control specs they cannot
// honour before running anything.
func TestFleetControlValidation(t *testing.T) {
	base := func() *FleetSpec {
		return &FleetSpec{
			Config:   config.Default(),
			Policy:   engine.AccelFlow(),
			Sources:  Mix(services.SocialNetwork(), 1.0, 40),
			Seed:     1,
			Replicas: 2,
		}
	}
	cases := []struct {
		name string
		spec *control.Spec
		want string
	}{
		{"retry budgets unsupported", &control.Spec{Retry: &control.RetrySpec{Budget: 4}}, "retry budgets"},
		{"pe target needs a single server", &control.Spec{Autoscale: &control.AutoscaleSpec{
			Target: control.TargetPE, UpUtil: 0.8, DownUtil: 0.2}}, "autoscale target"},
		{"invalid spec rejected", &control.Spec{Autoscale: &control.AutoscaleSpec{
			Target: control.TargetReplicas}}, "UpUtil"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := base()
			s.Control = tc.spec
			_, err := s.Run()
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("Run() error = %v, want substring %q", err, tc.want)
			}
		})
	}
}

// TestRunControlValidation: single-server runs reject the replicas
// target (no fleet to scale) and invalid specs.
func TestRunControlValidation(t *testing.T) {
	spec := controlledSpec(0)
	spec.Control.Autoscale.Target = control.TargetReplicas
	if _, err := spec.Run(); err == nil || !strings.Contains(err.Error(), "replicas") {
		t.Fatalf("Run() error = %v, want replicas-target rejection", err)
	}
	spec = controlledSpec(0)
	spec.Control.Shed.Prob = 1.5
	if _, err := spec.Run(); err == nil || !strings.Contains(err.Error(), "probability") {
		t.Fatalf("Run() error = %v, want shed-probability rejection", err)
	}
}

// Package workload generates open-loop request arrivals — Poisson
// (Fig. 12's controlled loads), Alibaba-like bursty production traffic
// (Fig. 11), and Azure-like serverless bursts (Fig. 16) — and provides
// the harness that drives an engine with a service mix and collects
// per-service metrics.
package workload

import (
	"math"

	"accelflow/internal/sim"
)

// Arrivals produces inter-arrival times for one service's invocations.
type Arrivals interface {
	// Next returns the gap to the next arrival.
	Next(rng *sim.RNG) sim.Time
}

// Poisson arrivals with the given mean rate.
type Poisson struct {
	RPS float64
}

// Next draws an exponential gap. Rates below one request per second
// are clamped to keep simulated time finite.
func (p Poisson) Next(rng *sim.RNG) sim.Time {
	rps := p.RPS
	if rps < 1 {
		rps = 1
	}
	return rng.Exp(sim.Time(float64(sim.Second) / rps))
}

// Alibaba mimics the production traces' burstiness: a phase-modulated
// Poisson process whose ON windows are aligned to wall-clock Period
// boundaries, so bursts CORRELATE across the services sharing a server
// (production traffic spikes hit every service at once). The ON-phase
// rate is PeakFactor times the mean; the OFF-phase rate is chosen so
// the long-run mean equals RPS. This is the substitution for the real
// Alibaba traces (DESIGN.md §1): mean rate and correlated burstiness
// are what the orchestrators respond to.
type Alibaba struct {
	RPS        float64
	PeakFactor float64  // ON-phase rate multiplier (default 4.8)
	OnFraction float64  // fraction of each period spent ON (default 0.2)
	Period     sim.Time // burst period (default 10ms)

	t sim.Time // accumulated arrival time
}

func (a *Alibaba) params() (peak, onFrac float64, period sim.Time) {
	peak = a.PeakFactor
	if peak <= 1 {
		peak = 4.8
	}
	onFrac = a.OnFraction
	if onFrac <= 0 || onFrac >= 1 {
		onFrac = 0.2
	}
	if peak > 1/onFrac {
		peak = 1 / onFrac // keep the OFF rate non-negative
	}
	period = a.Period
	if period <= 0 {
		period = 10 * sim.Millisecond
	}
	return
}

// Next draws the next inter-arrival gap of the piecewise-Poisson
// process. Draws crossing a phase boundary restart at the boundary
// with the new rate — exact for exponential gaps (memorylessness), and
// necessary so long OFF-phase draws do not skip whole ON windows.
func (a *Alibaba) Next(rng *sim.RNG) sim.Time {
	peak, onFrac, period := a.params()
	offRate := a.RPS * (1 - onFrac*peak) / (1 - onFrac)
	start := a.t
	for {
		pos := a.t % period
		onEnd := sim.Time(onFrac * float64(period))
		rate := offRate
		boundary := a.t - pos + period
		if pos < onEnd {
			rate = a.RPS * peak
			boundary = a.t - pos + onEnd
		}
		if rate < 1 {
			rate = 1
		}
		gap := rng.Exp(sim.Time(float64(sim.Second) / rate))
		if a.t+gap <= boundary {
			a.t += gap
			return a.t - start
		}
		a.t = boundary
	}
}

// Azure mimics serverless invocation traces: heavy-tailed inter-arrival
// gaps (bounded Pareto) producing tight bursts separated by long idle
// periods, normalized to the requested mean rate.
type Azure struct {
	RPS   float64
	Alpha float64 // Pareto shape (default 1.3)
}

// Next draws a bounded-Pareto gap with mean 1/RPS.
func (z Azure) Next(rng *sim.RNG) sim.Time {
	alpha := z.Alpha
	if alpha <= 1 {
		alpha = 1.3
	}
	mean := 1.0 / z.RPS // seconds
	// Bounded Pareto with mean ~= alpha*min/(alpha-1) (max far out).
	min := mean * (alpha - 1) / alpha
	g := rng.Pareto(min, alpha, mean*200)
	return sim.Time(math.Round(g * float64(sim.Second)))
}

package workload

import (
	"testing"

	"accelflow/internal/check"
	"accelflow/internal/config"
	"accelflow/internal/control"
	"accelflow/internal/engine"
	"accelflow/internal/fault"
	"accelflow/internal/obs"
	"accelflow/internal/services"
)

func hashSpec() *RunSpec {
	return &RunSpec{
		Config:  config.Default(),
		Policy:  engine.AccelFlow(),
		Sources: Mix(services.SocialNetwork(), 1.0, 100),
		Seed:    7,
	}
}

// TestHashStable: hashing is pure — equal specs hash equal, repeat
// calls hash equal, and observation attachments (Obs/Check) are
// excluded because they cannot change results.
func TestHashStable(t *testing.T) {
	a, b := hashSpec(), hashSpec()
	if a.Hash() != b.Hash() {
		t.Fatal("equal specs hashed differently")
	}
	if a.Hash() != a.Hash() {
		t.Fatal("repeat hash of one spec differs")
	}
	b.Obs = obs.New()
	b.Check = check.New()
	if a.Hash() != b.Hash() {
		t.Error("Obs/Check attachments changed the hash; they never change results")
	}
	if len(a.Hash()) != 64 {
		t.Errorf("hash %q is not a sha256 hex digest", a.Hash())
	}
}

// TestHashSensitivity: every simulation input the hash covers moves
// the digest.
func TestHashSensitivity(t *testing.T) {
	ref := hashSpec().Hash()
	cases := map[string]func(*RunSpec){
		"seed":    func(s *RunSpec) { s.Seed++ },
		"shards":  func(s *RunSpec) { s.Shards = 4 },
		"config":  func(s *RunSpec) { s.Config.Cores++ },
		"policy":  func(s *RunSpec) { s.Policy = engine.RELIEF() },
		"budget":  func(s *RunSpec) { s.Sources[0].Requests++ },
		"tenant":  func(s *RunSpec) { s.Sources[0].Tenant++ },
		"arrival": func(s *RunSpec) { s.Sources[0].Arrivals = Poisson{RPS: 123} },
		"faults":  func(s *RunSpec) { s.Faults = &fault.Spec{Rate: 1} },
		"control": func(s *RunSpec) { s.Control = &control.Spec{Shed: &control.ShedSpec{Queue: 8}} },
		"sources": func(s *RunSpec) { s.Sources = s.Sources[:len(s.Sources)-1] },
	}
	for name, mutate := range cases {
		s := hashSpec()
		mutate(s)
		if s.Hash() == ref {
			t.Errorf("%s change did not move the hash", name)
		}
	}
}

// TestHashResultNormalizesShards: HashResult is invariant under the
// Shards knob (which never changes result bytes) but still tracks
// every genuine simulation input, and Hash keeps distinguishing shard
// counts as distinct execution requests.
func TestHashResultNormalizesShards(t *testing.T) {
	ref := hashSpec()
	refResult := ref.HashResult()
	for _, shards := range []int{0, 1, 2, 4, 8} {
		s := hashSpec()
		s.Shards = shards
		if s.HashResult() != refResult {
			t.Errorf("Shards=%d moved HashResult; shards never change result bytes", shards)
		}
	}
	sharded := hashSpec()
	sharded.Shards = 4
	if sharded.Hash() == ref.Hash() {
		t.Error("Hash ignored Shards; it names the execution request")
	}
	if got := hashSpec().HashResult(); got != refResult {
		t.Error("repeat HashResult of equal specs differs")
	}
	reseeded := hashSpec()
	reseeded.Seed++
	if reseeded.HashResult() == refResult {
		t.Error("seed change did not move HashResult")
	}
	if zero := hashSpec(); zero.Hash() != zero.HashResult() {
		t.Error("with Shards unset, Hash and HashResult must agree")
	}
}

// TestHashArrivalTypeMatters: two arrival processes with identical
// parameters but different laws are different workloads.
func TestHashArrivalTypeMatters(t *testing.T) {
	a, b := hashSpec(), hashSpec()
	a.Sources = SingleService(services.SocialNetwork()[0], Poisson{RPS: 1000}, 50)
	b.Sources = SingleService(services.SocialNetwork()[0], Azure{RPS: 1000}, 50)
	if a.Hash() == b.Hash() {
		t.Error("Poisson and Azure at equal RPS hashed identically")
	}
}

package workload

import (
	"testing"

	"accelflow/internal/config"
	"accelflow/internal/engine"
	"accelflow/internal/fault"
	"accelflow/internal/services"
	"accelflow/internal/sim"
)

// snapshot collects every result field that must be bit-identical for
// two runs to count as "the same simulation".
type snapshot struct {
	p99, mean, elapsed          sim.Time
	completed, timed, fell, acc uint64
	bd                          engine.Breakdown
}

func snap(res *RunResult) snapshot {
	return snapshot{
		p99:       res.All.P99(),
		mean:      res.All.Mean(),
		elapsed:   res.Elapsed,
		completed: res.Completed,
		timed:     res.TimedOut,
		fell:      res.FellBack,
		acc:       res.AccelCount,
		bd:        res.Breakdown,
	}
}

// TestZeroFaultRateBitIdentical pins the injector's purity contract:
// attaching the fault layer with Rate 0 (and RemoteLossRate 0) must
// leave every result bit-identical to running without the layer — no
// RNG draws, no kernel events, no counter drift — for each policy.
func TestZeroFaultRateBitIdentical(t *testing.T) {
	svc := services.SocialNetwork()[4] // Login
	for _, pol := range []engine.Policy{
		engine.CPUCentric(), engine.RELIEF(), engine.Cohort(engine.DefaultCohortPairs()), engine.AccelFlow(),
	} {
		run := func(fs *fault.Spec) snapshot {
			spec := &RunSpec{
				Config:  config.Default(),
				Policy:  pol,
				Sources: SingleService(svc, Poisson{RPS: 3000}, 120),
				Seed:    11,
				Faults:  fs,
			}
			res, err := spec.Run()
			if err != nil {
				t.Fatal(err)
			}
			return snap(res)
		}
		plain := run(nil)
		zero := run(&fault.Spec{Rate: 0})
		if plain != zero {
			t.Errorf("%s: rate-0 fault layer changed results:\n  without: %+v\n  with:    %+v",
				pol.Name, plain, zero)
		}
	}
}

func snapRun(t *testing.T, spec *RunSpec) *RunResult {
	t.Helper()
	res, err := spec.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestFaultRunCompletesAndReverts drives a realistic faulty run end to
// end through the workload layer: every request completes, windows
// fired, and the engine reports zero still-open windows afterwards.
func TestFaultRunCompletesAndReverts(t *testing.T) {
	cfg := config.Default()
	cfg.EnqueueBackoff = 200 * sim.Nanosecond
	cfg.TimeoutRearms = 1
	svc := services.SocialNetwork()[4]
	spec := &RunSpec{
		Config:  cfg,
		Policy:  engine.AccelFlow(),
		Sources: SingleService(svc, Poisson{RPS: 5000}, 200),
		Seed:    3,
		Faults: &fault.Spec{
			Rate:           100000,
			MeanWindow:     50 * sim.Microsecond,
			Horizon:        200 * sim.Millisecond,
			PEDegradeFrac:  0.5,
			PEFail:         true,
			ManagerStall:   true,
			RemoteLossRate: 0.001,
		},
	}
	res := snapRun(t, spec)
	if res.Completed != 200 {
		t.Fatalf("completed %d/200 under faults", res.Completed)
	}
	inj := res.Engine.Faults
	if inj == nil || inj.Stats.Windows == 0 {
		t.Fatal("no fault windows fired")
	}
	if inj.Active() != 0 {
		t.Errorf("%d fault windows still open after the run", inj.Active())
	}
}

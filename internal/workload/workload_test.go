package workload

import (
	"testing"

	"accelflow/internal/config"
	"accelflow/internal/engine"
	"accelflow/internal/services"
	"accelflow/internal/sim"
)

func meanRate(t *testing.T, arr Arrivals, n int) float64 {
	t.Helper()
	rng := sim.NewRNG(17)
	var total sim.Time
	for i := 0; i < n; i++ {
		total += arr.Next(rng)
	}
	return float64(n) / total.Seconds()
}

func TestPoissonMeanRate(t *testing.T) {
	got := meanRate(t, Poisson{RPS: 10000}, 50000)
	if got < 9500 || got > 10500 {
		t.Errorf("poisson mean rate = %.0f, want ~10000", got)
	}
}

func TestAlibabaMeanRateAndBurstiness(t *testing.T) {
	a := &Alibaba{RPS: 10000}
	got := meanRate(t, a, 50000)
	if got < 8500 || got > 11500 {
		t.Errorf("alibaba mean rate = %.0f, want ~10000", got)
	}
	// Burstiness: the squared coefficient of variation of gaps must
	// exceed Poisson's (CV^2 = 1).
	rng := sim.NewRNG(23)
	b := &Alibaba{RPS: 10000}
	var sum, sumsq float64
	const n = 50000
	for i := 0; i < n; i++ {
		g := b.Next(rng).Seconds()
		sum += g
		sumsq += g * g
	}
	mean := sum / n
	cv2 := (sumsq/n - mean*mean) / (mean * mean)
	if cv2 < 1.3 {
		t.Errorf("alibaba CV^2 = %.2f, want clearly > 1 (bursty)", cv2)
	}
}

func TestAlibabaBurstsCorrelateAcrossGenerators(t *testing.T) {
	// Two independent generators share wall-clock burst phase: their
	// ON windows coincide, so arrivals cluster in the same periods.
	window := 2 * sim.Millisecond
	counts := func(seed int64) map[int]int {
		g := &Alibaba{RPS: 20000}
		rng := sim.NewRNG(seed)
		m := map[int]int{}
		var t sim.Time
		for i := 0; i < 4000; i++ {
			t += g.Next(rng)
			m[int(t/window)]++
		}
		return m
	}
	a, b := counts(1), counts(2)
	// Correlation proxy: windows that are hot for A should be hot for B.
	var both, aHot, bHot int
	for w, c := range a {
		if c > 60 {
			aHot++
			if b[w] > 60 {
				both++
			}
		}
	}
	for _, c := range b {
		if c > 60 {
			bHot++
		}
	}
	if aHot == 0 || bHot == 0 {
		t.Fatal("no hot windows; burstiness missing")
	}
	if float64(both)/float64(aHot) < 0.6 {
		t.Errorf("only %d/%d of A's bursts overlap B's: bursts not correlated", both, aHot)
	}
}

func TestAzureMeanRateHeavyTail(t *testing.T) {
	got := meanRate(t, Azure{RPS: 5000}, 50000)
	if got < 3000 || got > 9000 {
		t.Errorf("azure mean rate = %.0f, want same order as 5000", got)
	}
}

func TestRunSingleService(t *testing.T) {
	svc := services.SocialNetwork()[6] // UniqId
	spec := &RunSpec{
		Config:  config.Default(),
		Policy:  engine.AccelFlow(),
		Sources: SingleService(svc, Poisson{RPS: 2000}, 150),
		Seed:    3,
	}
	res, err := spec.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 150 {
		t.Errorf("completed %d/150", res.Completed)
	}
	if res.PerService["UniqId"].Count() != 150 {
		t.Error("per-service recorder missed samples")
	}
	if res.All.P99() <= 0 || res.Elapsed <= 0 {
		t.Error("metrics empty")
	}
	if res.AccelCount == 0 {
		t.Error("no accelerator invocations recorded")
	}
}

func TestRunDeterministic(t *testing.T) {
	svc := services.SocialNetwork()[4] // Login
	run := func() sim.Time {
		spec := &RunSpec{
			Config:  config.Default(),
			Policy:  engine.AccelFlow(),
			Sources: SingleService(svc, Poisson{RPS: 3000}, 100),
			Seed:    9,
		}
		res, err := spec.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res.All.Mean()
	}
	if run() != run() {
		t.Error("same seed produced different runs")
	}
}

func TestRunSeedSensitivity(t *testing.T) {
	svc := services.SocialNetwork()[4]
	seeded := func(seed int64) *RunSpec {
		return &RunSpec{
			Config:  config.Default(),
			Policy:  engine.AccelFlow(),
			Sources: SingleService(svc, Poisson{RPS: 3000}, 100),
			Seed:    seed,
		}
	}
	r1, err := seeded(1).Run()
	if err != nil {
		t.Fatal(err)
	}
	r2, err := seeded(2).Run()
	if err != nil {
		t.Fatal(err)
	}
	if r1.All.Mean() == r2.All.Mean() {
		t.Error("different seeds produced identical means (suspicious)")
	}
}

func TestMixBudgetsAndRates(t *testing.T) {
	svcs := services.SocialNetwork()
	sources := Mix(svcs, 1.0, 800)
	if len(sources) != len(svcs) {
		t.Fatalf("sources = %d", len(sources))
	}
	total := 0
	for _, s := range sources {
		if s.Requests < 1 {
			t.Errorf("%s has no budget", s.Service.Name)
		}
		total += s.Requests
	}
	if total != 800 {
		t.Errorf("total budget = %d, want exactly 800", total)
	}
}

// TestMixExactBudget pins the largest-remainder apportionment: the
// per-source budgets sum to exactly the requested total whenever it is
// at least the catalog size (plain flooring used to drop requests).
func TestMixExactBudget(t *testing.T) {
	svcs := services.SocialNetwork()
	for _, total := range []int{len(svcs), 150, 800, 1000, 2497} {
		sources := Mix(svcs, 1.0, total)
		sum := 0
		for _, s := range sources {
			if s.Requests < 1 {
				t.Errorf("total %d: %s has no budget", total, s.Service.Name)
			}
			sum += s.Requests
		}
		if sum != total {
			t.Errorf("total %d: budgets sum to %d", total, sum)
		}
	}
	// Below the catalog size every service still gets one request.
	small := Mix(svcs, 1.0, 3)
	sum := 0
	for _, s := range small {
		if s.Requests != 1 {
			t.Errorf("tiny budget: %s got %d requests, want 1", s.Service.Name, s.Requests)
		}
		sum += s.Requests
	}
	if sum != len(svcs) {
		t.Errorf("tiny budget: sum = %d, want %d", sum, len(svcs))
	}
}

func TestRunErrors(t *testing.T) {
	svc := services.SocialNetwork()[0]
	spec := &RunSpec{Config: config.Default(), Policy: engine.AccelFlow(), Seed: 1}
	if _, err := spec.Run(); err == nil {
		t.Error("no sources accepted")
	}
	spec.Sources = []Source{{Service: svc, Arrivals: Poisson{RPS: 100}, Requests: 0}}
	if _, err := spec.Run(); err == nil {
		t.Error("zero budget accepted")
	}
	bad := config.Default()
	bad.Cores = 0
	spec = &RunSpec{
		Config:  bad,
		Policy:  engine.AccelFlow(),
		Sources: SingleService(svc, Poisson{RPS: 100}, 10),
		Seed:    1,
	}
	if _, err := spec.Run(); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestRunFullMixAllPolicies(t *testing.T) {
	if testing.Short() {
		t.Skip("mix run is slow")
	}
	for _, pol := range []engine.Policy{engine.NonAcc(), engine.RELIEF(), engine.AccelFlow()} {
		spec := &RunSpec{
			Config:  config.Default(),
			Policy:  pol,
			Sources: Mix(services.SocialNetwork(), 1.0, 400),
			Seed:    5,
		}
		res, err := spec.Run()
		if err != nil {
			t.Fatalf("%s: %v", pol.Name, err)
		}
		if res.Completed == 0 {
			t.Fatalf("%s: nothing completed", pol.Name)
		}
	}
}

func TestRunCoarseCatalog(t *testing.T) {
	apps := services.CoarseApps()
	spec := &RunSpec{
		Config:   services.CoarseConfig(),
		Policy:   engine.AccelFlow(),
		Sources:  SingleService(apps[0], Poisson{RPS: 500}, 60),
		Seed:     7,
		Programs: services.CoarseCatalog(),
		Remote:   map[string]engine.RemoteKind{},
	}
	res, err := spec.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 60 {
		t.Errorf("completed %d/60", res.Completed)
	}
	// Coarse apps are ms-scale.
	if res.All.Mean() < 50*sim.Microsecond {
		t.Errorf("coarse app mean %v implausibly fast", res.All.Mean())
	}
}

// TestShardsKnobIsByteIdentical pins the RunSpec.Shards contract: the
// sharded execution path produces exactly the serial results — same
// recorder contents, same counters — at every shard count.
func TestShardsKnobIsByteIdentical(t *testing.T) {
	svc := services.SocialNetwork()[6]
	mk := func(shards int) *RunResult {
		spec := &RunSpec{
			Config:  config.Default(),
			Policy:  engine.AccelFlow(),
			Sources: SingleService(svc, Poisson{RPS: 2000}, 80),
			Seed:    3,
			Shards:  shards,
		}
		res, err := spec.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	ref := mk(0)
	for _, shards := range []int{1, 2, 4, 8} {
		got := mk(shards)
		if got.All.Mean() != ref.All.Mean() || got.All.P99() != ref.All.P99() ||
			got.Completed != ref.Completed || got.Elapsed != ref.Elapsed ||
			got.Engine.K.Processed() != ref.Engine.K.Processed() {
			t.Errorf("shards=%d diverged from serial: mean %v vs %v, processed %d vs %d",
				shards, got.All.Mean(), ref.All.Mean(),
				got.Engine.K.Processed(), ref.Engine.K.Processed())
		}
	}
}

// The canonical observed run: the full SocialNetwork mix under the
// AccelFlow policy with the span/utilization observer attached, and
// optionally the deterministic fault injector. Both front ends — the
// accelsim CLI's -trace/-report flags and the accelsimd job daemon —
// build their observed runs through this file, which is what makes the
// daemon's determinism contract checkable: the same ObservedParams
// produce the same RunSpec, so the exported artifact bytes can only
// depend on (Seed, Requests, Quick, fault knobs, control spec).
package workload

import (
	"fmt"

	"accelflow/internal/check"
	"accelflow/internal/config"
	"accelflow/internal/control"
	"accelflow/internal/engine"
	"accelflow/internal/fault"
	"accelflow/internal/obs"
	"accelflow/internal/services"
	"accelflow/internal/sim"
)

// ObservedParams configures one observed SocialNetwork run.
type ObservedParams struct {
	// Seed is the run's RNG seed (the CLI default is 1).
	Seed int64
	// Requests is the total request budget across the mix; <= 0 means
	// the CLI default of 2500. Quick caps it at 600.
	Requests int
	Quick    bool

	// FaultRate is the fault-window arrival rate in windows per
	// simulated second; 0 disables window scheduling.
	FaultRate float64
	// FaultWindow is the mean fault-window duration; <= 0 means the
	// default of 200us.
	FaultWindow sim.Time
	// FaultLoss overrides the remote-response loss rate (in [0,1]; 0
	// keeps the baked-in 3.2e-6).
	FaultLoss float64

	// Control, when non-nil, attaches the dynamic-control subsystem
	// (the -ctl* flags on accelsim; the "control" job knob on
	// accelsimd). The autoscale target must be "pe" or "cores" — an
	// observed run simulates one server, so there are no replicas to
	// scale. The spec joins the run's content hash, so controlled and
	// uncontrolled runs never collide in result caches.
	Control *control.Spec

	// Check attaches the runtime invariant checker to the run (the
	// -check flag on both binaries). Checking never changes results;
	// a violation fails the run with a structured error.
	Check bool

	// Shards selects the sharded execution path (RunSpec.Shards; the
	// -shards flag on both binaries). Artifacts stay byte-identical at
	// any value, so it is excluded from the determinism contract above
	// only in the trivial sense: it cannot change the bytes.
	Shards int
}

// Validate rejects out-of-range parameters with a caller-facing
// message. Run front ends call it before admitting work so a bad
// request fails fast instead of panicking mid-simulation.
func (p ObservedParams) Validate() error {
	switch {
	case p.Requests < 0:
		return fmt.Errorf("observed run: requests must be non-negative, got %d", p.Requests)
	case p.FaultRate < 0:
		return fmt.Errorf("observed run: fault rate must be non-negative, got %v", p.FaultRate)
	case p.FaultWindow < 0:
		return fmt.Errorf("observed run: fault window must be non-negative, got %v", p.FaultWindow)
	case p.FaultLoss < 0 || p.FaultLoss > 1:
		return fmt.Errorf("observed run: fault loss rate must be in [0,1], got %v", p.FaultLoss)
	case p.Shards < 0:
		return fmt.Errorf("observed run: shards must be non-negative, got %d", p.Shards)
	}
	if p.Control != nil {
		if err := p.Control.Validate(); err != nil {
			return fmt.Errorf("observed run: %w", err)
		}
		if a := p.Control.Autoscale; a != nil && a.Target == control.TargetReplicas {
			return fmt.Errorf("observed run: autoscale target %q needs a fleet; use %q or %q",
				control.TargetReplicas, control.TargetPE, control.TargetCores)
		}
	}
	return nil
}

// BuildObserved validates p and assembles the observed run's RunSpec
// together with its attached Sink. The caller runs the spec (Run or
// RunCtx) and exports artifacts from the sink; nothing here starts the
// simulation.
func BuildObserved(p ObservedParams) (*RunSpec, *obs.Sink, error) {
	if err := p.Validate(); err != nil {
		return nil, nil, err
	}
	n := p.Requests
	if n <= 0 {
		n = 2500
	}
	if p.Quick && n > 600 {
		n = 600
	}
	sink := obs.New()
	spec := &RunSpec{
		Config:  config.Default(),
		Policy:  engine.AccelFlow(),
		Sources: Mix(services.SocialNetwork(), 1.0, n),
		Seed:    p.Seed,
		Shards:  p.Shards,
		Obs:     sink,
		Control: p.Control,
	}
	if p.Check {
		spec.Check = check.New()
	}
	if p.FaultRate > 0 || p.FaultLoss > 0 {
		win := p.FaultWindow
		if win <= 0 {
			win = 200 * sim.Microsecond
		}
		spec.Faults = &fault.Spec{
			Rate:           p.FaultRate,
			MeanWindow:     win,
			Horizon:        sim.Second,
			PEDegradeFrac:  0.5,
			PEFail:         true,
			ADMARemove:     2,
			ManagerStall:   true,
			ATMStall:       500 * sim.Nanosecond,
			NoCInflate:     4,
			RemoteLossRate: p.FaultLoss,
		}
	}
	return spec, sink, nil
}

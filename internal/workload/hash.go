package workload

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"accelflow/internal/services"
)

// Hash returns a stable content hash of the spec's simulation inputs:
// config, policy, sources (service definitions, arrival processes,
// budgets, tenants), seed, shards, program/remote overrides, the
// fault spec, and the control spec. Two specs with equal hashes produce bit-identical
// results, so the hash is the spec identity that sharded-vs-serial
// equivalence tests, golden files, and result caches key off.
//
// Excluded on purpose: Obs and Check (attachments that observe a run
// without changing its results) and any runtime state (an Arrivals
// value is hashed by its declared parameters, not its internal
// phase). Shards IS included even though it never changes results —
// the hash names the exact execution request; cache consumers that
// want result identity use HashResult, which normalizes it away.
//
// The encoding is canonical: struct fields serialize in declaration
// order via encoding/json, map-valued fields are emitted in sorted key
// order, and every section is length- and label-delimited so field
// boundaries cannot alias.
func (s *RunSpec) Hash() string { return s.hash(s.Shards) }

// HashResult is the spec's result identity: Hash with the Shards knob
// normalized to zero. Shards selects an execution path and provably
// never changes output bytes (TestShardsDoNotChangeResults pins every
// registry experiment at shard counts 1/2/4/8), so two specs that
// differ only in Shards produce bit-identical Values and artifacts.
// Content-addressed result caches key off HashResult so a sharded
// submission hits the cache entry a serial run populated and vice
// versa; Hash remains the execution-request identity.
func (s *RunSpec) HashResult() string { return s.hash(0) }

func (s *RunSpec) hash(shards int) string {
	h := sha256.New()
	section(h, "config", mustJSON(s.Config))

	// Policy by explicit fields: CohortPairs is a map with an array
	// key, which encoding/json cannot serialize, so it is emitted as a
	// sorted pair list.
	fmt.Fprintf(h, "policy|%s|%t|%d|%d|%t|%t|%t|%t|%t|%t\n",
		s.Policy.Name, s.Policy.UseAccels, s.Policy.Hop, s.Policy.Mediator,
		s.Policy.SharedQueue, s.Policy.DispatcherBranch, s.Policy.DispatcherTransform,
		s.Policy.ATMChaining, s.Policy.Ideal, s.Policy.EDF)
	pairs := make([]string, 0, len(s.Policy.CohortPairs))
	for pair, on := range s.Policy.CohortPairs {
		if on {
			pairs = append(pairs, fmt.Sprintf("%d>%d", pair[0], pair[1]))
		}
	}
	sort.Strings(pairs)
	for _, p := range pairs {
		section(h, "cohort", []byte(p))
	}

	for i, src := range s.Sources {
		fmt.Fprintf(h, "source|%d|requests=%d|tenant=%d\n", i, src.Requests, src.Tenant)
		section(h, "service", mustJSON(src.Service))
		// Arrival processes are interface values: the dynamic type is
		// part of the identity (a Poisson and an Azure with equal RPS
		// are different workloads).
		fmt.Fprintf(h, "arrivals|%T\n", src.Arrivals)
		section(h, "arrivals", mustJSON(src.Arrivals))
	}

	fmt.Fprintf(h, "seed|%d\nshards|%d\n", s.Seed, shards)

	programs := s.Programs
	if programs == nil {
		programs = services.Catalog()
	}
	for _, p := range programs {
		section(h, "program", mustJSON(p))
	}
	remote := s.Remote
	if remote == nil {
		remote = services.RemoteTails()
	}
	names := make([]string, 0, len(remote))
	for name := range remote {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(h, "remote|%s|%d\n", name, remote[name])
	}
	if s.Faults != nil {
		section(h, "faults", mustJSON(s.Faults))
	}
	// Emitted only when set, like faults, so every pre-control spec
	// keeps its hash (and its cache entries).
	if s.Control != nil {
		section(h, "control", mustJSON(s.Control))
	}
	return fmt.Sprintf("%x", h.Sum(nil))
}

// section writes one labeled, length-delimited blob so adjacent
// sections cannot alias under concatenation.
func section(w io.Writer, label string, b []byte) {
	fmt.Fprintf(w, "%s|%d|", label, len(b))
	w.Write(b)
	w.Write([]byte{'\n'})
}

func mustJSON(v any) []byte {
	b, err := json.Marshal(v)
	if err != nil {
		// Every hashed type is a plain data struct; a marshal failure
		// is a programming error, not an input error.
		panic(fmt.Sprintf("workload: spec hash encoding failed: %v", err))
	}
	return b
}

package workload

import (
	"sort"
	"testing"

	"accelflow/internal/config"
	"accelflow/internal/engine"
	"accelflow/internal/obs"
	"accelflow/internal/services"
	"accelflow/internal/sim"
)

// TestObservedMixInvariants runs a loaded SocialNetwork mix with the
// observer attached and checks the structural invariants that must
// hold for every recorded request: child spans nest inside parents,
// segments stay inside their request's window, and the segments of one
// span never overlap on the same resource.
func TestObservedMixInvariants(t *testing.T) {
	sink := obs.New()
	spec := &RunSpec{
		Config:  config.Default(),
		Policy:  engine.AccelFlow(),
		Sources: Mix(services.SocialNetwork(), 1.0, 400),
		Seed:    5,
		Obs:     sink,
	}
	res, err := spec.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed == 0 {
		t.Fatal("nothing completed")
	}

	spans := sink.Spans()
	byID := map[int32]obs.SpanData{}
	roots := 0
	for _, sp := range spans {
		byID[sp.ID] = sp
		if sp.Kind == obs.SpanRequest {
			roots++
		}
	}
	if uint64(roots) != res.Completed {
		t.Errorf("request spans %d, completed requests %d", roots, res.Completed)
	}

	rootOf := func(sp obs.SpanData) obs.SpanData {
		for sp.Parent >= 0 {
			sp = byID[sp.Parent]
		}
		return sp
	}
	for _, sp := range spans {
		if sp.End < sp.Start {
			t.Fatalf("span %d ends before it starts", sp.ID)
		}
		if sp.Parent >= 0 {
			p := byID[sp.Parent]
			if sp.Start < p.Start || sp.End > p.End {
				t.Errorf("span %d [%v,%v] escapes parent %d [%v,%v]",
					sp.ID, sp.Start, sp.End, p.ID, p.Start, p.End)
			}
		}
		req := rootOf(sp)
		byRes := map[string][]obs.Seg{}
		for _, g := range sp.Segs {
			if g.End <= g.Start {
				t.Errorf("span %d: empty segment %v %s", sp.ID, g.Kind, g.Resource)
			}
			if g.Start < req.Start || g.End > req.End {
				t.Errorf("span %d: segment %v %s [%v,%v] outside request [%v,%v]",
					sp.ID, g.Kind, g.Resource, g.Start, g.End, req.Start, req.End)
			}
			byRes[g.Resource] = append(byRes[g.Resource], g)
		}
		for resName, gs := range byRes {
			sort.Slice(gs, func(i, j int) bool { return gs[i].Start < gs[j].Start })
			for i := 1; i < len(gs); i++ {
				if gs[i].Start < gs[i-1].End {
					t.Errorf("span %d: overlapping %s segments [%v,%v] and [%v,%v]",
						sp.ID, resName, gs[i-1].Start, gs[i-1].End, gs[i].Start, gs[i].End)
				}
			}
		}
	}
}

// TestSamplerRecordsUtilizationSeries checks the periodic sampler: it
// must produce every documented series, with timestamps advancing by
// the sample interval and values in [0,1].
func TestSamplerRecordsUtilizationSeries(t *testing.T) {
	sink := obs.New(obs.WithSampleInterval(10 * sim.Microsecond))
	svc := services.SocialNetwork()[6]
	spec := &RunSpec{
		Config:  config.Default(),
		Policy:  engine.AccelFlow(),
		Sources: SingleService(svc, Poisson{RPS: 4000}, 120),
		Seed:    3,
		Obs:     sink,
	}
	res, err := spec.Run()
	if err != nil {
		t.Fatal(err)
	}
	series := map[string]*obs.Series{}
	for _, sv := range sink.SeriesList() {
		series[sv.Name] = sv
	}
	want := []string{"util/cores", "util/manager", "util/dram", "util/noc", "util/adma"}
	for _, k := range config.AllAccelKinds() {
		want = append(want, "util/pe/"+k.String())
	}
	for _, name := range want {
		sv, ok := series[name]
		if !ok {
			t.Errorf("missing series %q", name)
			continue
		}
		if len(sv.Times) < 2 {
			t.Errorf("%s: only %d samples over %v", name, len(sv.Times), res.Elapsed)
			continue
		}
		for i, ts := range sv.Times {
			if wantTS := sim.Time(i+1) * 10 * sim.Microsecond; ts != wantTS {
				t.Errorf("%s: sample %d at %v, want %v", name, i, ts, wantTS)
				break
			}
		}
		for i, v := range sv.Values {
			if v < 0 || v > 1 {
				t.Errorf("%s: sample %d = %v outside [0,1]", name, i, v)
				break
			}
		}
	}
	// PEs must have seen real work under this load.
	var peBusy float64
	for _, k := range config.AllAccelKinds() {
		for _, v := range series["util/pe/"+k.String()].Values {
			peBusy += v
		}
	}
	if peBusy == 0 {
		t.Error("all PE utilization samples are zero under load")
	}
}

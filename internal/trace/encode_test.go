package trace

import (
	"testing"
	"testing/quick"

	"accelflow/internal/config"
)

func syms(t *testing.T, names ...string) *MapSymbols {
	t.Helper()
	m := NewMapSymbols()
	for _, n := range names {
		if _, err := m.Register(n); err != nil {
			t.Fatal(err)
		}
	}
	return m
}

func roundTrip(t *testing.T, p *Program, m *MapSymbols) *Program {
	t.Helper()
	data, err := p.Encode(m)
	if err != nil {
		t.Fatalf("encode %q: %v", p.Name, err)
	}
	if len(data) > MaxTraceBytes {
		t.Fatalf("encoded %q to %d bytes > %d", p.Name, len(data), MaxTraceBytes)
	}
	q, err := Decode(p.Name, data, p.EncodedNibbles(), m)
	if err != nil {
		t.Fatalf("decode %q: %v", p.Name, err)
	}
	return q
}

func samePrograms(a, b *Program) bool {
	if len(a.Instrs) != len(b.Instrs) {
		return false
	}
	for i := range a.Instrs {
		x, y := a.Instrs[i], b.Instrs[i]
		if x.Kind != y.Kind || x.Accel != y.Accel || x.Cond != y.Cond ||
			x.Src != y.Src || x.Dst != y.Dst || x.TailName != y.TailName {
			return false
		}
		if x.Kind == OpBranch && (x.TrueTarget != y.TrueTarget || x.FalseTarget != y.FalseTarget) {
			return false
		}
	}
	return true
}

func TestEncodeDecodeLinear(t *testing.T) {
	p := New("lin").Seq(config.Ser, config.RPC, config.Encr, config.TCP).MustBuild()
	q := roundTrip(t, p, NewMapSymbols())
	if !samePrograms(p, q) {
		t.Errorf("round trip mismatch:\n%s\n%s", p, q)
	}
	// 4 invokes + end = 5 nibbles = 3 bytes.
	if p.EncodedNibbles() != 5 || p.EncodedBytes() != 3 {
		t.Errorf("encoded size = %d nibbles / %d bytes", p.EncodedNibbles(), p.EncodedBytes())
	}
}

func TestEncodeDecodeWithBranchTransTail(t *testing.T) {
	m := syms(t, "t6")
	prog := New("t5").
		Seq(config.TCP, config.Decr, config.Dser).
		Branch(CondHit,
			Sub().Seq(config.LdB),
			Sub().Seq(config.Ser, config.Encr, config.TCP).Tail("t6")).
		MustBuild()
	q := roundTrip(t, prog, m)
	if !samePrograms(prog, q) {
		t.Errorf("round trip mismatch:\n%s\n%s", prog, q)
	}
}

func TestEncodeDecodeFork(t *testing.T) {
	m := syms(t, "wb")
	p := New("f").Seq(config.Dcmp).Fork("wb").Seq(config.LdB).MustBuild()
	q := roundTrip(t, p, m)
	if !samePrograms(p, q) {
		t.Errorf("round trip mismatch:\n%s\n%s", p, q)
	}
}

func TestEncodeDecodeTransform(t *testing.T) {
	p := New("tr").Seq(config.Dser).Trans(FmtJSON, FmtString).Seq(config.Dcmp).MustBuild()
	q := roundTrip(t, p, NewMapSymbols())
	if !samePrograms(p, q) {
		t.Errorf("round trip mismatch:\n%s\n%s", p, q)
	}
}

func TestListing1FitsInEightBytes(t *testing.T) {
	p := New("func_req").
		Seq(config.TCP, config.Decr, config.RPC, config.Dser).
		Branch(CondCompressed,
			Sub().Trans(FmtJSON, FmtString).Seq(config.Dcmp),
			nil).
		Seq(config.LdB).
		MustBuild()
	data, err := p.Encode(NewMapSymbols())
	if err != nil {
		t.Fatalf("the paper's Listing 1 trace must encode: %v", err)
	}
	if len(data) > MaxTraceBytes {
		t.Errorf("Listing 1 encodes to %d bytes > 8", len(data))
	}
}

func TestEncodeRejectsOversized(t *testing.T) {
	b := New("long")
	for i := 0; i < 20; i++ {
		b.Seq(config.TCP)
	}
	p := b.MustBuild()
	if _, err := p.Encode(NewMapSymbols()); err == nil {
		t.Error("oversized trace encoded without error")
	}
}

func TestEncodeRejectsUnknownATMName(t *testing.T) {
	p := New("t").Seq(config.TCP).Tail("missing").MustBuild()
	if _, err := p.Encode(NewMapSymbols()); err == nil {
		t.Error("unknown ATM name accepted")
	}
}

func TestSplitLinear(t *testing.T) {
	b := New("long")
	for i := 0; i < 30; i++ {
		b.Seq(config.AccelKind(i % int(config.NumAccelKinds)))
	}
	p := b.MustBuild()
	parts, err := p.Split()
	if err != nil {
		t.Fatal(err)
	}
	if len(parts) < 2 {
		t.Fatalf("expected multiple subtraces, got %d", len(parts))
	}
	m := NewMapSymbols()
	for _, part := range parts {
		if _, err := m.Register(part.Name); err != nil {
			t.Fatal(err)
		}
	}
	var total []config.AccelKind
	for i, part := range parts {
		if _, err := part.Encode(m); err != nil {
			t.Errorf("subtrace %d does not encode: %v", i, err)
		}
		accels, _, tail := part.Invocations(0)
		total = append(total, accels...)
		if i < len(parts)-1 && tail != parts[i+1].Name {
			t.Errorf("subtrace %d tail = %q, want %q", i, tail, parts[i+1].Name)
		}
		if i == len(parts)-1 && tail != "" {
			t.Errorf("last subtrace has tail %q", tail)
		}
	}
	if len(total) != 30 {
		t.Errorf("split preserved %d invocations, want 30", len(total))
	}
	for i, a := range total {
		if a != config.AccelKind(i%int(config.NumAccelKinds)) {
			t.Fatalf("invocation %d = %v after split", i, a)
		}
	}
}

func TestSplitNoopWhenSmall(t *testing.T) {
	p := New("small").Seq(config.TCP, config.Decr).MustBuild()
	parts, err := p.Split()
	if err != nil || len(parts) != 1 || parts[0] != p {
		t.Errorf("small split = %v parts, err %v", len(parts), err)
	}
}

func TestSplitRejectsBranches(t *testing.T) {
	b := New("branchy").Seq(config.TCP)
	for i := 0; i < 8; i++ {
		b.Branch(CondHit, Sub().Seq(config.Ser), Sub().Seq(config.Cmp))
	}
	p := b.MustBuild()
	if _, err := p.Split(); err == nil {
		t.Error("branchy program auto-split")
	}
}

func TestDecodeErrors(t *testing.T) {
	m := NewMapSymbols()
	cases := []struct {
		name string
		data []byte
		nibs int
	}{
		{"truncated-branch", []byte{0x91}, 2},
		{"truncated-trans", []byte{0xA0}, 1},
		{"truncated-tail", []byte{0xB0}, 2},
		{"bad-nibble", []byte{0xE0}, 1},
		{"bad-atm", []byte{0xB0, 0x50}, 3},
		{"empty", []byte{}, 0},
		{"overlong", []byte{0x00}, 5},
	}
	for _, c := range cases {
		if _, err := Decode(c.name, c.data, c.nibs, m); err == nil {
			t.Errorf("%s: decode succeeded", c.name)
		}
	}
}

func TestSymbolTable(t *testing.T) {
	m := NewMapSymbols()
	a1, err := m.Register("x")
	if err != nil {
		t.Fatal(err)
	}
	a2, _ := m.Register("x")
	if a1 != a2 {
		t.Error("re-registration changed address")
	}
	if _, ok := m.AddrOf("y"); ok {
		t.Error("unknown name resolved")
	}
	if n, ok := m.NameOf(a1); !ok || n != "x" {
		t.Error("NameOf failed")
	}
	for i := 0; i < 300; i++ {
		if _, err := m.Register(string(rune('a'+i%26)) + string(rune('0'+i/26))); err != nil {
			if i < 250 {
				t.Fatalf("table filled too early at %d: %v", i, err)
			}
			return
		}
	}
	t.Error("256-entry limit not enforced")
}

// Property: any linear accelerator sequence round-trips through
// encode/decode when it fits, and splits losslessly when it does not.
func TestPropertyLinearRoundTrip(t *testing.T) {
	f := func(kinds []uint8) bool {
		if len(kinds) == 0 {
			return true
		}
		b := New("p")
		for _, k := range kinds {
			b.Seq(config.AccelKind(k % uint8(config.NumAccelKinds)))
		}
		p := b.MustBuild()
		parts, err := p.Split()
		if err != nil {
			return false
		}
		m := NewMapSymbols()
		for _, part := range parts {
			if _, err := m.Register(part.Name); err != nil {
				return false
			}
		}
		var got []config.AccelKind
		for _, part := range parts {
			data, err := part.Encode(m)
			if err != nil {
				return false
			}
			q, err := Decode(part.Name, data, part.EncodedNibbles(), m)
			if err != nil {
				return false
			}
			accels, _, _ := q.Invocations(0)
			got = append(got, accels...)
		}
		if len(got) != len(kinds) {
			return false
		}
		for i := range got {
			if got[i] != config.AccelKind(kinds[i]%uint8(config.NumAccelKinds)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

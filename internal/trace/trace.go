// Package trace implements AccelFlow's central abstraction: Traces of
// Accelerators (paper §IV). A trace is a software-built program listing
// the accelerators to invoke in sequence, optionally containing branch
// conditions resolved on the fly by output dispatchers, data-format
// transformations, fork points, and an ATM tail address chaining to the
// next trace.
//
// The package provides the paper's builder API (§V-4: seq / branch /
// trans), a compiler from the builder tree to a flat program with an
// explicit Position Mark (program counter), and the 4-bit nibble binary
// encoding with the 8-byte size limit and automatic subtrace splitting.
package trace

import (
	"fmt"
	"strings"

	"accelflow/internal/config"
)

// Cond names a branch condition. The paper's conditions are simple
// predicates over a few bits of the payload (§VII-B.2 lists Compressed?,
// Exception?, Hit?, and Found?; §IV-B adds C-Compressed for T6).
type Cond uint8

const (
	// CondNone marks the absence of a condition.
	CondNone Cond = iota
	// CondCompressed tests the payload's "compressed" flag (T1, T5, T6).
	CondCompressed
	// CondHit tests whether a DB-cache read hit (T5).
	CondHit
	// CondFound tests whether a DB read found the record (T6).
	CondFound
	// CondException tests the response's exception flag (T7, T10).
	CondException
	// CondCCompressed tests whether the DB cache stores compressed data (T6).
	CondCCompressed
	numConds
)

var condNames = []string{"None", "Compressed?", "Hit?", "Found?", "Exception?", "C-Compressed?"}

func (c Cond) String() string {
	if int(c) < len(condNames) {
		return condNames[c]
	}
	return fmt.Sprintf("Cond(%d)", uint8(c))
}

// Flags carries the payload bits branch conditions test. One bit per
// condition; the workload model draws them per request.
type Flags uint8

// Flag bit positions mirror the Cond values.
const (
	FlagCompressed Flags = 1 << iota
	FlagHit
	FlagFound
	FlagException
	FlagCCompressed
)

// Eval resolves the condition against the payload flags. This is the
// "few bits in the payload, simple comparisons" logic of §III-Q2.
func (c Cond) Eval(f Flags) bool {
	switch c {
	case CondCompressed:
		return f&FlagCompressed != 0
	case CondHit:
		return f&FlagHit != 0
	case CondFound:
		return f&FlagFound != 0
	case CondException:
		return f&FlagException != 0
	case CondCCompressed:
		return f&FlagCCompressed != 0
	default:
		return false
	}
}

// Format names a payload data format for transformation fields (§V-2:
// "changing between string, BSON, JSON, and similar formats").
type Format uint8

const (
	// FmtWire is the serialized on-the-wire representation.
	FmtWire Format = iota
	// FmtString is a flat string representation.
	FmtString
	// FmtJSON is a JSON document.
	FmtJSON
	// FmtBSON is a BSON document.
	FmtBSON
	numFormats
)

var fmtNames = []string{"wire", "string", "JSON", "BSON"}

func (f Format) String() string {
	if int(f) < len(fmtNames) {
		return fmtNames[f]
	}
	return fmt.Sprintf("Format(%d)", uint8(f))
}

// OpKind distinguishes the node types of a trace program.
type OpKind uint8

const (
	// OpInvoke runs one accelerator.
	OpInvoke OpKind = iota
	// OpBranch resolves a condition and jumps to one of two targets.
	OpBranch
	// OpTrans transforms the payload's data format in the output
	// dispatcher's Data Transform Engine.
	OpTrans
	// OpFork spawns a side trace (by ATM name) that proceeds
	// independently, e.g. T6's parallel write-back to the DB cache
	// while the data is also passed to the CPU.
	OpFork
	// OpTail chains to the next trace stored in the ATM (the asterisk
	// in the paper's figures). Always the last instruction.
	OpTail
	// OpEnd terminates the trace: results go to memory and the
	// initiating core is notified.
	OpEnd
)

// node is one element of the builder tree.
type node struct {
	kind     OpKind
	accel    config.AccelKind
	cond     Cond
	onTrue   []node
	onFalse  []node
	src, dst Format
	tail     string // ATM symbolic name for OpTail / OpFork
}

// Builder assembles a trace using the paper's API: Seq, Branch, Trans
// (§V-4), plus Fork and Tail for the ATM-chained continuations of
// Table II. Builders are single-use: Build finalizes the trace.
type Builder struct {
	name  string
	nodes []node
	err   error
}

// New starts a trace with the given registration name (the name passed
// to run_trace in the paper's Listing 2).
func New(name string) *Builder { return &Builder{name: name} }

// Sub starts an anonymous sub-sequence for use as a branch arm.
func Sub() *Builder { return &Builder{name: ""} }

// Seq appends a linear chain of accelerator invocations.
func (b *Builder) Seq(accels ...config.AccelKind) *Builder {
	for _, a := range accels {
		if a >= config.NumAccelKinds {
			b.fail(fmt.Errorf("trace %q: invalid accelerator id %d", b.name, a))
			return b
		}
		b.nodes = append(b.nodes, node{kind: OpInvoke, accel: a})
	}
	return b
}

// Branch appends a conditional: if cond holds, the onTrue arm runs,
// otherwise the onFalse arm; both merge into the following nodes.
// Either arm may be nil (empty).
func (b *Builder) Branch(cond Cond, onTrue, onFalse *Builder) *Builder {
	if cond == CondNone || cond >= numConds {
		b.fail(fmt.Errorf("trace %q: invalid branch condition %v", b.name, cond))
		return b
	}
	n := node{kind: OpBranch, cond: cond}
	if onTrue != nil {
		if onTrue.err != nil {
			b.fail(onTrue.err)
			return b
		}
		n.onTrue = onTrue.nodes
	}
	if onFalse != nil {
		if onFalse.err != nil {
			b.fail(onFalse.err)
			return b
		}
		n.onFalse = onFalse.nodes
	}
	b.nodes = append(b.nodes, n)
	return b
}

// Trans appends a data-format transformation executed by the previous
// accelerator's output dispatcher.
func (b *Builder) Trans(src, dst Format) *Builder {
	if src >= numFormats || dst >= numFormats {
		b.fail(fmt.Errorf("trace %q: invalid transform %v->%v", b.name, src, dst))
		return b
	}
	if src == dst {
		b.fail(fmt.Errorf("trace %q: transform with identical formats %v", b.name, src))
		return b
	}
	b.nodes = append(b.nodes, node{kind: OpTrans, src: src, dst: dst})
	return b
}

// Fork appends a fork to the named ATM trace; the forked trace runs
// independently while this one continues.
func (b *Builder) Fork(atmName string) *Builder {
	if atmName == "" {
		b.fail(fmt.Errorf("trace %q: fork needs an ATM name", b.name))
		return b
	}
	b.nodes = append(b.nodes, node{kind: OpFork, tail: atmName})
	return b
}

// Tail sets the ATM continuation executed when this trace completes
// (the paper's asterisk). It must be the final call before Build.
func (b *Builder) Tail(atmName string) *Builder {
	if atmName == "" {
		b.fail(fmt.Errorf("trace %q: tail needs an ATM name", b.name))
		return b
	}
	b.nodes = append(b.nodes, node{kind: OpTail, tail: atmName})
	return b
}

func (b *Builder) fail(err error) {
	if b.err == nil {
		b.err = err
	}
}

// Build compiles the builder tree into an executable Program. It
// returns an error for empty or malformed traces (e.g. ops after Tail).
func (b *Builder) Build() (*Program, error) {
	if b.err != nil {
		return nil, b.err
	}
	if len(b.nodes) == 0 {
		return nil, fmt.Errorf("trace %q: empty", b.name)
	}
	p := &Program{Name: b.name}
	if err := compile(p, b.nodes); err != nil {
		return nil, err
	}
	// Every program ends with an explicit OpEnd sentinel. Arms that end
	// in OpTail terminate there; paths that fall off the end reach the
	// sentinel and notify the CPU.
	if last := p.Instrs[len(p.Instrs)-1]; last.Kind != OpEnd {
		p.Instrs = append(p.Instrs, Instr{Kind: OpEnd})
	}
	if err := p.validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// MustBuild is Build that panics on error; intended for the static
// catalog where a malformed trace is a programming bug.
func (b *Builder) MustBuild() *Program {
	p, err := b.Build()
	if err != nil {
		panic(err)
	}
	return p
}

// Instr is one flat instruction of a compiled trace program. The
// Position Mark of the paper is the index into Instrs.
type Instr struct {
	Kind  OpKind
	Accel config.AccelKind // OpInvoke

	Cond        Cond // OpBranch
	TrueTarget  int  // PC when the condition holds
	FalseTarget int  // PC when it does not

	Src, Dst Format // OpTrans

	TailName string // OpTail / OpFork symbolic ATM reference
}

// Program is a compiled trace: a flat instruction list ending in OpEnd
// or OpTail.
type Program struct {
	Name   string
	Instrs []Instr
}

// compile flattens the node tree into p.Instrs with branch targets.
func compile(p *Program, nodes []node) error {
	for _, n := range nodes {
		switch n.kind {
		case OpInvoke:
			p.Instrs = append(p.Instrs, Instr{Kind: OpInvoke, Accel: n.accel})
		case OpTrans:
			p.Instrs = append(p.Instrs, Instr{Kind: OpTrans, Src: n.src, Dst: n.dst})
		case OpFork:
			p.Instrs = append(p.Instrs, Instr{Kind: OpFork, TailName: n.tail})
		case OpTail:
			p.Instrs = append(p.Instrs, Instr{Kind: OpTail, TailName: n.tail})
		case OpBranch:
			bIdx := len(p.Instrs)
			p.Instrs = append(p.Instrs, Instr{Kind: OpBranch, Cond: n.cond})
			if err := compile(p, n.onTrue); err != nil {
				return err
			}
			// Jump over the false arm at the end of the true arm: we
			// encode it by giving the branch explicit targets and
			// inserting a join marker via target bookkeeping. A
			// synthetic unconditional jump is modeled as a branch with
			// equal targets.
			jmpIdx := len(p.Instrs)
			p.Instrs = append(p.Instrs, Instr{Kind: OpBranch, Cond: CondNone})
			falseStart := len(p.Instrs)
			if err := compile(p, n.onFalse); err != nil {
				return err
			}
			join := len(p.Instrs)
			p.Instrs[bIdx].TrueTarget = bIdx + 1
			p.Instrs[bIdx].FalseTarget = falseStart
			p.Instrs[jmpIdx].TrueTarget = join
			p.Instrs[jmpIdx].FalseTarget = join
		default:
			return fmt.Errorf("trace %q: unknown node kind %d", p.Name, n.kind)
		}
	}
	return nil
}

func (p *Program) validate() error {
	for i, in := range p.Instrs {
		switch in.Kind {
		case OpBranch:
			if in.TrueTarget < 0 || in.TrueTarget > len(p.Instrs) ||
				in.FalseTarget < 0 || in.FalseTarget > len(p.Instrs) {
				return fmt.Errorf("trace %q: branch at %d has out-of-range target", p.Name, i)
			}
		}
		_ = i
	}
	if p.Instrs[len(p.Instrs)-1].Kind != OpEnd {
		return fmt.Errorf("trace %q: does not end with OpEnd sentinel", p.Name)
	}
	return nil
}

// Next advances the Position Mark from pc given payload flags,
// returning the next pc. OpInvoke/OpTrans/OpFork fall through; OpBranch
// jumps. Callers must not call Next on OpTail/OpEnd.
func (p *Program) Next(pc int, f Flags) int {
	in := p.Instrs[pc]
	if in.Kind == OpBranch {
		if in.Cond == CondNone || in.Cond.Eval(f) {
			return in.TrueTarget
		}
		return in.FalseTarget
	}
	return pc + 1
}

// HasBranch reports whether the program contains at least one real
// conditional (synthetic joins with CondNone do not count).
func (p *Program) HasBranch() bool {
	for _, in := range p.Instrs {
		if in.Kind == OpBranch && in.Cond != CondNone {
			return true
		}
	}
	return false
}

// BranchCount counts real conditionals.
func (p *Program) BranchCount() int {
	n := 0
	for _, in := range p.Instrs {
		if in.Kind == OpBranch && in.Cond != CondNone {
			n++
		}
	}
	return n
}

// Invocations walks the program with the given flags and returns the
// accelerator sequence executed, the transforms crossed, and the tail
// name ("" if the trace ends).
func (p *Program) Invocations(f Flags) (accels []config.AccelKind, transforms int, tail string) {
	pc := 0
	for pc < len(p.Instrs) {
		in := p.Instrs[pc]
		switch in.Kind {
		case OpInvoke:
			accels = append(accels, in.Accel)
		case OpTrans:
			transforms++
		case OpTail:
			return accels, transforms, in.TailName
		case OpEnd:
			return accels, transforms, ""
		}
		pc = p.Next(pc, f)
	}
	return accels, transforms, ""
}

// MaxInvocations returns the largest number of accelerator invocations
// over all 32 flag combinations (useful for capacity reasoning).
func (p *Program) MaxInvocations() int {
	max := 0
	for f := 0; f < 32; f++ {
		a, _, _ := p.Invocations(Flags(f))
		if len(a) > max {
			max = len(a)
		}
	}
	return max
}

// FirstAccel returns the first accelerator the trace invokes for the
// given flags (the Enqueue target), or false if the trace invokes none.
func (p *Program) FirstAccel(f Flags) (config.AccelKind, bool) {
	a, _, _ := p.Invocations(f)
	if len(a) == 0 {
		return 0, false
	}
	return a[0], true
}

// String renders a human-readable disassembly.
func (p *Program) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "trace %q:\n", p.Name)
	for i, in := range p.Instrs {
		switch in.Kind {
		case OpInvoke:
			fmt.Fprintf(&sb, "  %2d: invoke %v\n", i, in.Accel)
		case OpBranch:
			if in.Cond == CondNone {
				fmt.Fprintf(&sb, "  %2d: jump -> %d\n", i, in.TrueTarget)
			} else {
				fmt.Fprintf(&sb, "  %2d: branch %v ? %d : %d\n", i, in.Cond, in.TrueTarget, in.FalseTarget)
			}
		case OpTrans:
			fmt.Fprintf(&sb, "  %2d: trans %v -> %v\n", i, in.Src, in.Dst)
		case OpFork:
			fmt.Fprintf(&sb, "  %2d: fork %q\n", i, in.TailName)
		case OpTail:
			fmt.Fprintf(&sb, "  %2d: tail %q\n", i, in.TailName)
		case OpEnd:
			fmt.Fprintf(&sb, "  %2d: end\n", i)
		}
	}
	return sb.String()
}

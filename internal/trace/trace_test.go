package trace

import (
	"strings"
	"testing"

	"accelflow/internal/config"
)

// listing1 builds the paper's Listing 1 trace (Fig. 4a / T1): TCP, Decr,
// RPC, Dser, then a Compressed? branch invoking a JSON->string transform
// and Dcmp, then LdB.
func listing1(t *testing.T) *Program {
	t.Helper()
	p, err := New("func_req").
		Seq(config.TCP, config.Decr, config.RPC, config.Dser).
		Branch(CondCompressed,
			Sub().Trans(FmtJSON, FmtString).Seq(config.Dcmp),
			nil).
		Seq(config.LdB).
		Build()
	if err != nil {
		t.Fatalf("listing1: %v", err)
	}
	return p
}

func TestListing1PathCompressed(t *testing.T) {
	p := listing1(t)
	accels, transforms, tail := p.Invocations(FlagCompressed)
	want := []config.AccelKind{config.TCP, config.Decr, config.RPC, config.Dser, config.Dcmp, config.LdB}
	if len(accels) != len(want) {
		t.Fatalf("compressed path = %v, want %v", accels, want)
	}
	for i := range want {
		if accels[i] != want[i] {
			t.Fatalf("compressed path = %v, want %v", accels, want)
		}
	}
	if transforms != 1 {
		t.Errorf("transforms = %d, want 1", transforms)
	}
	if tail != "" {
		t.Errorf("tail = %q, want none", tail)
	}
}

func TestListing1PathUncompressed(t *testing.T) {
	p := listing1(t)
	accels, transforms, _ := p.Invocations(0)
	want := []config.AccelKind{config.TCP, config.Decr, config.RPC, config.Dser, config.LdB}
	if len(accels) != len(want) {
		t.Fatalf("uncompressed path = %v, want %v", accels, want)
	}
	for i := range want {
		if accels[i] != want[i] {
			t.Fatalf("uncompressed path = %v, want %v", accels, want)
		}
	}
	if transforms != 0 {
		t.Errorf("transforms = %d, want 0 on the uncompressed path", transforms)
	}
}

func TestBranchMetadata(t *testing.T) {
	p := listing1(t)
	if !p.HasBranch() {
		t.Error("HasBranch = false")
	}
	if p.BranchCount() != 1 {
		t.Errorf("BranchCount = %d, want 1", p.BranchCount())
	}
	if p.MaxInvocations() != 6 {
		t.Errorf("MaxInvocations = %d, want 6", p.MaxInvocations())
	}
	first, ok := p.FirstAccel(0)
	if !ok || first != config.TCP {
		t.Errorf("FirstAccel = %v,%v, want TCP,true", first, ok)
	}
}

func TestTailInBranchArm(t *testing.T) {
	// T5-like: hit -> LdB and end; miss -> Ser,Encr,TCP chaining to T6.
	p, err := New("t5").
		Seq(config.TCP, config.Decr, config.Dser).
		Branch(CondHit,
			Sub().Seq(config.LdB),
			Sub().Seq(config.Ser, config.Encr, config.TCP).Tail("t6")).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	accels, _, tail := p.Invocations(FlagHit)
	if tail != "" || accels[len(accels)-1] != config.LdB {
		t.Errorf("hit path: accels=%v tail=%q", accels, tail)
	}
	accels, _, tail = p.Invocations(0)
	if tail != "t6" {
		t.Errorf("miss path tail = %q, want t6", tail)
	}
	if accels[len(accels)-1] != config.TCP {
		t.Errorf("miss path = %v, want ...TCP", accels)
	}
}

func TestNestedBranches(t *testing.T) {
	p, err := New("nested").
		Seq(config.TCP).
		Branch(CondHit,
			Sub().Branch(CondCompressed, Sub().Seq(config.Dcmp), nil).Seq(config.LdB),
			Sub().Seq(config.Ser)).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		f    Flags
		want []config.AccelKind
	}{
		{FlagHit | FlagCompressed, []config.AccelKind{config.TCP, config.Dcmp, config.LdB}},
		{FlagHit, []config.AccelKind{config.TCP, config.LdB}},
		{0, []config.AccelKind{config.TCP, config.Ser}},
		{FlagCompressed, []config.AccelKind{config.TCP, config.Ser}},
	}
	for _, c := range cases {
		got, _, _ := p.Invocations(c.f)
		if len(got) != len(c.want) {
			t.Fatalf("flags %b: path %v, want %v", c.f, got, c.want)
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Fatalf("flags %b: path %v, want %v", c.f, got, c.want)
			}
		}
	}
}

func TestForkFallsThrough(t *testing.T) {
	p, err := New("forky").
		Seq(config.Dcmp).
		Fork("writeback").
		Seq(config.LdB).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	accels, _, _ := p.Invocations(0)
	if len(accels) != 2 || accels[1] != config.LdB {
		t.Errorf("fork did not fall through: %v", accels)
	}
	forks := 0
	for _, in := range p.Instrs {
		if in.Kind == OpFork && in.TailName == "writeback" {
			forks++
		}
	}
	if forks != 1 {
		t.Errorf("fork instrs = %d, want 1", forks)
	}
}

func TestBuilderErrors(t *testing.T) {
	if _, err := New("empty").Build(); err == nil {
		t.Error("empty trace built")
	}
	if _, err := New("badaccel").Seq(config.AccelKind(99)).Build(); err == nil {
		t.Error("invalid accelerator accepted")
	}
	if _, err := New("badcond").Seq(config.TCP).Branch(CondNone, nil, nil).Build(); err == nil {
		t.Error("CondNone branch accepted")
	}
	if _, err := New("badtrans").Seq(config.TCP).Trans(FmtJSON, FmtJSON).Build(); err == nil {
		t.Error("identity transform accepted")
	}
	if _, err := New("badtrans2").Seq(config.TCP).Trans(Format(9), FmtJSON).Build(); err == nil {
		t.Error("invalid format accepted")
	}
	if _, err := New("badtail").Seq(config.TCP).Tail("").Build(); err == nil {
		t.Error("empty tail name accepted")
	}
	if _, err := New("badfork").Seq(config.TCP).Fork("").Build(); err == nil {
		t.Error("empty fork name accepted")
	}
	// Errors inside arms propagate.
	if _, err := New("armerr").Seq(config.TCP).
		Branch(CondHit, Sub().Seq(config.AccelKind(77)), nil).Build(); err == nil {
		t.Error("arm error not propagated")
	}
}

func TestMustBuildPanicsOnError(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustBuild did not panic")
		}
	}()
	New("x").MustBuild()
}

func TestCondEvalAndStrings(t *testing.T) {
	all := []struct {
		c Cond
		f Flags
	}{
		{CondCompressed, FlagCompressed},
		{CondHit, FlagHit},
		{CondFound, FlagFound},
		{CondException, FlagException},
		{CondCCompressed, FlagCCompressed},
	}
	for _, x := range all {
		if !x.c.Eval(x.f) {
			t.Errorf("%v not true under its own flag", x.c)
		}
		if x.c.Eval(0) {
			t.Errorf("%v true under zero flags", x.c)
		}
		if x.c.String() == "" || strings.HasPrefix(x.c.String(), "Cond(") {
			t.Errorf("%v has no name", x.c)
		}
	}
	if CondNone.Eval(0xFF) {
		t.Error("CondNone evaluated true")
	}
	if Format(0).String() != "wire" || FmtBSON.String() != "BSON" {
		t.Error("format names wrong")
	}
	if Cond(99).String() == "" || Format(99).String() == "" {
		t.Error("out-of-range names empty")
	}
}

func TestProgramString(t *testing.T) {
	s := listing1(t).String()
	for _, want := range []string{"invoke TCP", "branch Compressed?", "trans JSON -> string", "invoke Dcmp", "invoke LdB", "end"} {
		if !strings.Contains(s, want) {
			t.Errorf("disassembly missing %q:\n%s", want, s)
		}
	}
}

func TestConnectivityTableI(t *testing.T) {
	c := NewConnectivity()
	c.AddProgram(listing1(t))
	// Dser's sources include RPC; destinations include Dcmp and LdB.
	if !c.Sources[config.Dser][Endpoint(config.RPC)] {
		t.Error("Dser source RPC missing")
	}
	if !c.Destinations[config.Dser][Endpoint(config.Dcmp)] {
		t.Error("Dser dest Dcmp missing")
	}
	if !c.Destinations[config.Dser][Endpoint(config.LdB)] {
		t.Error("Dser dest LdB missing")
	}
	// Path boundaries attach to the CPU.
	if !c.Sources[config.TCP][EndpointCPU] {
		t.Error("TCP should be CPU-sourced")
	}
	if !c.Destinations[config.LdB][EndpointCPU] {
		t.Error("LdB should feed the CPU")
	}
	if EndpointCPU.String() != "CPU" || Endpoint(config.TCP).String() != "TCP" {
		t.Error("endpoint names wrong")
	}
}

func TestConnectivityTopPairs(t *testing.T) {
	c := NewConnectivity()
	for i := 0; i < 3; i++ {
		c.AddPath([]config.AccelKind{config.Ser, config.Encr, config.TCP})
	}
	c.AddPath([]config.AccelKind{config.TCP, config.Decr})
	top := c.TopPairs(2)
	if len(top) != 2 {
		t.Fatalf("TopPairs returned %d", len(top))
	}
	if top[0] != [2]config.AccelKind{config.Ser, config.Encr} &&
		top[0] != [2]config.AccelKind{config.Encr, config.TCP} {
		t.Errorf("top pair = %v", top[0])
	}
	if got := c.TopPairs(100); len(got) != 3 {
		t.Errorf("TopPairs(100) = %d pairs, want 3", len(got))
	}
}

func TestNextOnNonBranch(t *testing.T) {
	p := listing1(t)
	if p.Next(0, 0) != 1 {
		t.Error("Next on invoke should fall through")
	}
}

package trace

import (
	"fmt"

	"accelflow/internal/config"
)

// Binary encoding (paper §IV-A): 4 bits per accelerator, a maximum
// trace size of 8 bytes (16 nibbles). Nibble codes 0x0-0x8 are the nine
// accelerator kinds; the remaining codes are control markers.
//
//	invoke  <accel>                      1 nibble
//	branch  0x9 <cond> <falseTarget>     3 nibbles (trueTarget is PC+1)
//	jump    0xD <target>                 2 nibbles (compiled join)
//	trans   0xA <src<<2|dst>             2 nibbles
//	tail    0xB <addrHi> <addrLo>        3 nibbles (8-bit ATM address)
//	fork    0xC <addrHi> <addrLo>        3 nibbles
//	end     0xF                          1 nibble
//
// Branch and jump targets are instruction indices, so an encodable
// program has at most 16 instructions and all targets below 16.
const (
	nibBranch = 0x9
	nibTrans  = 0xA
	nibTail   = 0xB
	nibFork   = 0xC
	nibJump   = 0xD
	nibEnd    = 0xF

	// MaxTraceBytes is the paper's 8-byte trace size limit.
	MaxTraceBytes = 8
	// MaxNibbles is the corresponding nibble budget.
	MaxNibbles = 2 * MaxTraceBytes
)

// SymbolTable maps symbolic ATM names to 8-bit ATM addresses, assigned
// by the engine's ATM when traces are registered.
type SymbolTable interface {
	// AddrOf returns the ATM address for a registered trace name.
	AddrOf(name string) (uint8, bool)
	// NameOf is the inverse mapping, used when decoding.
	NameOf(addr uint8) (string, bool)
}

// MapSymbols is a simple in-memory SymbolTable.
type MapSymbols struct {
	byName map[string]uint8
	byAddr map[uint8]string
}

// NewMapSymbols returns an empty symbol table.
func NewMapSymbols() *MapSymbols {
	return &MapSymbols{byName: map[string]uint8{}, byAddr: map[uint8]string{}}
}

// Register assigns the next free address to name (idempotent).
func (m *MapSymbols) Register(name string) (uint8, error) {
	if a, ok := m.byName[name]; ok {
		return a, nil
	}
	if len(m.byName) >= 256 {
		return 0, fmt.Errorf("trace: ATM symbol table full (256 entries)")
	}
	a := uint8(len(m.byName))
	m.byName[name] = a
	m.byAddr[a] = name
	return a, nil
}

// AddrOf implements SymbolTable.
func (m *MapSymbols) AddrOf(name string) (uint8, bool) { a, ok := m.byName[name]; return a, ok }

// NameOf implements SymbolTable.
func (m *MapSymbols) NameOf(addr uint8) (string, bool) { n, ok := m.byAddr[addr]; return n, ok }

// nibbleCount returns the encoded size of one instruction in nibbles.
func nibbleCount(in Instr) int {
	switch in.Kind {
	case OpInvoke, OpEnd:
		return 1
	case OpTrans:
		return 2
	case OpBranch:
		if in.Cond == CondNone {
			return 2 // jump
		}
		return 3
	case OpTail, OpFork:
		return 3
	}
	return 0
}

// EncodedNibbles returns the program's total encoded size in nibbles.
func (p *Program) EncodedNibbles() int {
	n := 0
	for _, in := range p.Instrs {
		n += nibbleCount(in)
	}
	return n
}

// EncodedBytes returns the encoded size in bytes (rounded up). This is
// the trace payload charged to inter-accelerator transfers.
func (p *Program) EncodedBytes() int { return (p.EncodedNibbles() + 1) / 2 }

// Encode packs the program into its binary form. It fails if the
// program exceeds the 8-byte limit (callers should Split first), has
// more than 16 instructions, or references ATM names missing from the
// symbol table.
func (p *Program) Encode(syms SymbolTable) ([]byte, error) {
	if len(p.Instrs) > MaxNibbles {
		return nil, fmt.Errorf("trace %q: %d instructions exceed the 16-instruction encoding limit", p.Name, len(p.Instrs))
	}
	if n := p.EncodedNibbles(); n > MaxNibbles {
		return nil, fmt.Errorf("trace %q: %d nibbles exceed the %d-byte limit; split into subtraces", p.Name, n, MaxTraceBytes)
	}
	var nibs []uint8
	emit := func(vals ...uint8) {
		for _, v := range vals {
			nibs = append(nibs, v&0xF)
		}
	}
	for i, in := range p.Instrs {
		switch in.Kind {
		case OpInvoke:
			emit(uint8(in.Accel))
		case OpEnd:
			emit(nibEnd)
		case OpTrans:
			emit(nibTrans, uint8(in.Src)<<2|uint8(in.Dst))
		case OpBranch:
			if in.Cond == CondNone {
				if in.TrueTarget >= 16 {
					return nil, fmt.Errorf("trace %q: jump target %d at %d not encodable", p.Name, in.TrueTarget, i)
				}
				emit(nibJump, uint8(in.TrueTarget))
			} else {
				if in.TrueTarget != i+1 {
					return nil, fmt.Errorf("trace %q: branch at %d has non-fallthrough true target %d", p.Name, i, in.TrueTarget)
				}
				if in.FalseTarget >= 16 {
					return nil, fmt.Errorf("trace %q: branch target %d at %d not encodable", p.Name, in.FalseTarget, i)
				}
				emit(nibBranch, uint8(in.Cond), uint8(in.FalseTarget))
			}
		case OpTail, OpFork:
			addr, ok := syms.AddrOf(in.TailName)
			if !ok {
				return nil, fmt.Errorf("trace %q: ATM name %q not registered", p.Name, in.TailName)
			}
			code := uint8(nibTail)
			if in.Kind == OpFork {
				code = nibFork
			}
			emit(code, addr>>4, addr&0xF)
		default:
			return nil, fmt.Errorf("trace %q: unencodable op %d", p.Name, in.Kind)
		}
	}
	// Pack nibbles into bytes, high nibble first.
	out := make([]byte, (len(nibs)+1)/2)
	for i, v := range nibs {
		if i%2 == 0 {
			out[i/2] = v << 4
		} else {
			out[i/2] |= v
		}
	}
	return out, nil
}

// Decode reconstructs a Program from its binary form. nibbles is the
// exact nibble count (the byte form cannot distinguish a trailing
// padding nibble from an instruction).
func Decode(name string, data []byte, nibbles int, syms SymbolTable) (*Program, error) {
	if nibbles > 2*len(data) || nibbles < 0 {
		return nil, fmt.Errorf("trace: nibble count %d exceeds data length %d bytes", nibbles, len(data))
	}
	nib := func(i int) uint8 {
		b := data[i/2]
		if i%2 == 0 {
			return b >> 4
		}
		return b & 0xF
	}
	p := &Program{Name: name}
	for i := 0; i < nibbles; {
		code := nib(i)
		switch {
		case code <= uint8(config.LdB):
			p.Instrs = append(p.Instrs, Instr{Kind: OpInvoke, Accel: config.AccelKind(code)})
			i++
		case code == nibEnd:
			p.Instrs = append(p.Instrs, Instr{Kind: OpEnd})
			i++
		case code == nibTrans:
			if i+1 >= nibbles {
				return nil, fmt.Errorf("trace %q: truncated trans at nibble %d", name, i)
			}
			v := nib(i + 1)
			p.Instrs = append(p.Instrs, Instr{Kind: OpTrans, Src: Format(v >> 2), Dst: Format(v & 0x3)})
			i += 2
		case code == nibJump:
			if i+1 >= nibbles {
				return nil, fmt.Errorf("trace %q: truncated jump at nibble %d", name, i)
			}
			t := int(nib(i + 1))
			p.Instrs = append(p.Instrs, Instr{Kind: OpBranch, Cond: CondNone, TrueTarget: t, FalseTarget: t})
			i += 2
		case code == nibBranch:
			if i+2 >= nibbles {
				return nil, fmt.Errorf("trace %q: truncated branch at nibble %d", name, i)
			}
			p.Instrs = append(p.Instrs, Instr{
				Kind: OpBranch, Cond: Cond(nib(i + 1)),
				TrueTarget: len(p.Instrs) + 1, FalseTarget: int(nib(i + 2)),
			})
			i += 3
		case code == nibTail || code == nibFork:
			if i+2 >= nibbles {
				return nil, fmt.Errorf("trace %q: truncated tail/fork at nibble %d", name, i)
			}
			addr := nib(i+1)<<4 | nib(i+2)
			tn, ok := syms.NameOf(addr)
			if !ok {
				return nil, fmt.Errorf("trace %q: unknown ATM address %d", name, addr)
			}
			kind := OpTail
			if code == nibFork {
				kind = OpFork
			}
			p.Instrs = append(p.Instrs, Instr{Kind: kind, TailName: tn})
			i += 3
		default:
			return nil, fmt.Errorf("trace %q: invalid nibble 0x%X at %d", name, code, i)
		}
	}
	if len(p.Instrs) == 0 {
		return nil, fmt.Errorf("trace %q: empty encoding", name)
	}
	return p, nil
}

// Split divides a branch-free program that exceeds the 8-byte limit
// into a chain of subtraces linked through ATM tails, as the paper
// prescribes for long sequences. Programs containing branches must be
// split manually at divergence points (the paper does the same for the
// error subtraces of T6/T7/T10). The returned programs are named
// name#0, name#1, ...; each but the last ends in a Tail to the next.
func (p *Program) Split() ([]*Program, error) {
	if p.EncodedNibbles() <= MaxNibbles && len(p.Instrs) <= MaxNibbles {
		return []*Program{p}, nil
	}
	for _, in := range p.Instrs {
		if in.Kind == OpBranch {
			return nil, fmt.Errorf("trace %q: cannot auto-split a program with branches", p.Name)
		}
	}
	var out []*Program
	cur := &Program{Name: fmt.Sprintf("%s#%d", p.Name, 0)}
	budget := MaxNibbles - 3 - 1 // reserve room for a tail + slack
	used := 0
	for _, in := range p.Instrs {
		if in.Kind == OpEnd {
			continue
		}
		n := nibbleCount(in)
		if used+n > budget {
			next := fmt.Sprintf("%s#%d", p.Name, len(out)+1)
			cur.Instrs = append(cur.Instrs,
				Instr{Kind: OpTail, TailName: next},
				Instr{Kind: OpEnd})
			out = append(out, cur)
			cur = &Program{Name: next}
			used = 0
		}
		cur.Instrs = append(cur.Instrs, in)
		used += n
	}
	cur.Instrs = append(cur.Instrs, Instr{Kind: OpEnd})
	out = append(out, cur)
	return out, nil
}

package trace

import (
	"sort"

	"accelflow/internal/config"
)

// Endpoint is an accelerator kind or the CPU, used when reporting
// source/destination connectivity (paper Table I).
type Endpoint int

// EndpointCPU marks the CPU side of a connection.
const EndpointCPU Endpoint = -1

// String names the endpoint.
func (e Endpoint) String() string {
	if e == EndpointCPU {
		return "CPU"
	}
	return config.AccelKind(e).String()
}

// Connectivity accumulates, per accelerator, the set of sources feeding
// it and the set of destinations consuming its output, across a trace
// catalog and all branch outcomes. It reproduces Table I.
type Connectivity struct {
	Sources      map[config.AccelKind]map[Endpoint]bool
	Destinations map[config.AccelKind]map[Endpoint]bool
	// PairCount counts how often each directed accelerator pair is
	// adjacent; Cohort's static links are chosen from the top pairs.
	PairCount map[[2]config.AccelKind]int
}

// NewConnectivity returns an empty accumulator.
func NewConnectivity() *Connectivity {
	c := &Connectivity{
		Sources:      map[config.AccelKind]map[Endpoint]bool{},
		Destinations: map[config.AccelKind]map[Endpoint]bool{},
		PairCount:    map[[2]config.AccelKind]int{},
	}
	for k := config.AccelKind(0); k < config.NumAccelKinds; k++ {
		c.Sources[k] = map[Endpoint]bool{}
		c.Destinations[k] = map[Endpoint]bool{}
	}
	return c
}

// AddPath records one executed accelerator sequence. The CPU bounds
// both ends (the core enqueues the first accelerator; the last one
// notifies a core) unless the trace chains onward via an ATM tail, in
// which case the caller concatenates paths before calling AddPath.
func (c *Connectivity) AddPath(path []config.AccelKind) {
	if len(path) == 0 {
		return
	}
	c.Sources[path[0]][EndpointCPU] = true
	c.Destinations[path[len(path)-1]][EndpointCPU] = true
	for i := 0; i+1 < len(path); i++ {
		a, b := path[i], path[i+1]
		c.Sources[b][Endpoint(a)] = true
		c.Destinations[a][Endpoint(b)] = true
		c.PairCount[[2]config.AccelKind{a, b}]++
	}
}

// AddProgram records the paths of all 32 flag combinations of a
// program. Tails are not followed (the catalog analysis concatenates
// where needed).
func (c *Connectivity) AddProgram(p *Program) {
	seen := map[string]bool{}
	for f := 0; f < 32; f++ {
		path, _, _ := p.Invocations(Flags(f))
		key := pathKey(path)
		if seen[key] {
			continue
		}
		seen[key] = true
		c.AddPath(path)
	}
}

func pathKey(path []config.AccelKind) string {
	b := make([]byte, len(path))
	for i, a := range path {
		b[i] = byte(a)
	}
	return string(b)
}

// TopPairs returns the n most frequent directed adjacent pairs,
// most-frequent first (ties broken by kind order for determinism).
func (c *Connectivity) TopPairs(n int) [][2]config.AccelKind {
	type pc struct {
		p [2]config.AccelKind
		n int
	}
	var all []pc
	for p, cnt := range c.PairCount {
		all = append(all, pc{p, cnt})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].n != all[j].n {
			return all[i].n > all[j].n
		}
		if all[i].p[0] != all[j].p[0] {
			return all[i].p[0] < all[j].p[0]
		}
		return all[i].p[1] < all[j].p[1]
	})
	if n > len(all) {
		n = len(all)
	}
	out := make([][2]config.AccelKind, n)
	for i := 0; i < n; i++ {
		out[i] = all[i].p
	}
	return out
}

// EndpointList returns a sorted slice of the endpoints in a set.
func EndpointList(set map[Endpoint]bool) []Endpoint {
	var out []Endpoint
	for e := range set {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

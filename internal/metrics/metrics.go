// Package metrics provides latency recording (average and percentile
// reporting for the paper's P99 figures), breakdown accumulation, and
// the SLO-bounded maximum-throughput search of Fig. 14.
package metrics

import (
	"fmt"
	"math"
	"sort"

	"accelflow/internal/sim"
)

// Recorder collects latency samples for one series (one service under
// one architecture).
//
// Recorder is NOT safe for concurrent use: Add appends to the sample
// slice and even the read-side Percentile mutates state (it sorts
// in place and caches the fact). The parallel sweep engine
// (internal/experiments/sweep.go) relies on confinement instead of
// locks — every recorder is created inside one simulation cell, used
// only by that cell's goroutine, and only scalar results cross the
// join. Keep it that way: do not share a Recorder across goroutines,
// and do not add synchronization here to make sharing "work".
type Recorder struct {
	Name    string
	samples []sim.Time
	sum     sim.Time
	sorted  bool
}

// NewRecorder returns an empty recorder.
func NewRecorder(name string) *Recorder { return &Recorder{Name: name} }

// Add records one sample.
func (r *Recorder) Add(t sim.Time) {
	r.samples = append(r.samples, t)
	r.sum += t
	r.sorted = false
}

// Count reports the number of samples.
func (r *Recorder) Count() int { return len(r.samples) }

// Mean returns the average latency.
func (r *Recorder) Mean() sim.Time {
	if len(r.samples) == 0 {
		return 0
	}
	return r.sum / sim.Time(len(r.samples))
}

// Percentile returns the p-th percentile (0 < p <= 100) using
// nearest-rank on the sorted samples.
func (r *Recorder) Percentile(p float64) sim.Time {
	if len(r.samples) == 0 {
		return 0
	}
	if !r.sorted {
		sort.Slice(r.samples, func(i, j int) bool { return r.samples[i] < r.samples[j] })
		r.sorted = true
	}
	rank := int(math.Ceil(p / 100 * float64(len(r.samples))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(r.samples) {
		rank = len(r.samples)
	}
	return r.samples[rank-1]
}

// Merge folds all of other's samples into r, invalidating r's sort
// cache; other is left unchanged. Use it to combine per-cell recorders
// single-threaded after a parallel sweep join — merging does not make
// Recorder safe for concurrent use.
func (r *Recorder) Merge(other *Recorder) {
	if other == nil || len(other.samples) == 0 {
		return
	}
	r.samples = append(r.samples, other.samples...)
	r.sum += other.sum
	r.sorted = false
}

// Below counts samples at or under the threshold — the SLO-attainment
// numerator. It shares Percentile's sort cache, so an already-sorted
// recorder answers in O(log n).
func (r *Recorder) Below(t sim.Time) int {
	if len(r.samples) == 0 {
		return 0
	}
	if !r.sorted {
		sort.Slice(r.samples, func(i, j int) bool { return r.samples[i] < r.samples[j] })
		r.sorted = true
	}
	return sort.Search(len(r.samples), func(i int) bool { return r.samples[i] > t })
}

// P99 is shorthand for the tail latency the paper reports everywhere.
func (r *Recorder) P99() sim.Time { return r.Percentile(99) }

// P50 is the median.
func (r *Recorder) P50() sim.Time { return r.Percentile(50) }

// Max returns the largest sample.
func (r *Recorder) Max() sim.Time { return r.Percentile(100) }

// String summarizes the recorder.
func (r *Recorder) String() string {
	return fmt.Sprintf("%s: n=%d mean=%v p50=%v p99=%v", r.Name, r.Count(), r.Mean(), r.P50(), r.P99())
}

// SizeStats reports min/median/max of a sample of sizes (Fig. 5).
type SizeStats struct{ Min, Median, Max int }

// Sizes computes SizeStats from samples.
func Sizes(samples []int) SizeStats {
	if len(samples) == 0 {
		return SizeStats{}
	}
	s := append([]int(nil), samples...)
	sort.Ints(s)
	return SizeStats{Min: s[0], Median: s[len(s)/2], Max: s[len(s)-1]}
}

// ThroughputSearch finds the maximum offered load (in requests/s) whose
// measured P99 stays within the SLO, via bracketed binary search.
// measure runs a fresh simulation at the given load and returns its
// P99. The search doubles from loStart until violation (or hiCap), then
// bisects to the given relative tolerance.
func ThroughputSearch(measure func(rps float64) sim.Time, slo sim.Time, loStart, hiCap float64, tol float64) float64 {
	if loStart <= 0 {
		loStart = 100
	}
	if slo <= 0 {
		return 0
	}
	lo := 0.0
	hi := loStart
	// Grow until the SLO is violated.
	for hi < hiCap {
		if measure(hi) > slo {
			break
		}
		lo = hi
		hi *= 2
	}
	if hi > hiCap {
		hi = hiCap
	}
	// Bisect; the absolute floor of one request/s keeps the search
	// finite when even the starting load violates the SLO.
	for hi-lo > tol*hi && hi-lo > 1 {
		mid := (lo + hi) / 2
		if measure(mid) <= slo {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}

package metrics

import (
	"testing"
	"testing/quick"

	"accelflow/internal/sim"
)

func TestRecorderBasics(t *testing.T) {
	r := NewRecorder("x")
	if r.Mean() != 0 || r.P99() != 0 || r.Count() != 0 {
		t.Error("empty recorder not zeroed")
	}
	for i := 1; i <= 100; i++ {
		r.Add(sim.Time(i) * sim.Microsecond)
	}
	if r.Count() != 100 {
		t.Errorf("count = %d", r.Count())
	}
	if r.Mean() != sim.FromMicros(50.5) {
		t.Errorf("mean = %v", r.Mean())
	}
	if r.P99() != 99*sim.Microsecond {
		t.Errorf("p99 = %v, want 99us", r.P99())
	}
	if r.P50() != 50*sim.Microsecond {
		t.Errorf("p50 = %v, want 50us", r.P50())
	}
	if r.Max() != 100*sim.Microsecond {
		t.Errorf("max = %v", r.Max())
	}
	if r.String() == "" {
		t.Error("empty String()")
	}
}

func TestRecorderUnsortedInsertions(t *testing.T) {
	r := NewRecorder("x")
	for _, v := range []sim.Time{5, 1, 9, 3, 7} {
		r.Add(v * sim.Microsecond)
	}
	if r.P50() != 5*sim.Microsecond {
		t.Errorf("p50 = %v", r.P50())
	}
	// Adding after a percentile query must still work.
	r.Add(100 * sim.Microsecond)
	if r.Max() != 100*sim.Microsecond {
		t.Errorf("max after re-add = %v", r.Max())
	}
}

// Property: percentiles are monotone in p and bounded by min/max.
func TestPercentileMonotone(t *testing.T) {
	f := func(raw []uint32) bool {
		if len(raw) == 0 {
			return true
		}
		r := NewRecorder("q")
		for _, v := range raw {
			r.Add(sim.Time(v))
		}
		last := sim.Time(-1)
		for _, p := range []float64{1, 10, 25, 50, 75, 90, 99, 100} {
			v := r.Percentile(p)
			if v < last {
				return false
			}
			last = v
		}
		return r.Percentile(100) == r.Max()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSizes(t *testing.T) {
	s := Sizes([]int{5, 1, 9, 3})
	if s.Min != 1 || s.Max != 9 {
		t.Errorf("sizes = %+v", s)
	}
	if s.Median != 5 {
		t.Errorf("median = %d", s.Median)
	}
	if z := Sizes(nil); z.Min != 0 || z.Max != 0 {
		t.Error("empty sizes not zero")
	}
}

func TestThroughputSearchFindsKnee(t *testing.T) {
	// Synthetic system: P99 = 10us below 50k rps, 100us above.
	measure := func(rps float64) sim.Time {
		if rps <= 50000 {
			return 10 * sim.Microsecond
		}
		return 100 * sim.Microsecond
	}
	got := ThroughputSearch(measure, 50*sim.Microsecond, 1000, 1e6, 0.02)
	if got < 45000 || got > 50000 {
		t.Errorf("knee found at %v, want ~50000", got)
	}
}

func TestThroughputSearchAllPass(t *testing.T) {
	measure := func(float64) sim.Time { return sim.Microsecond }
	got := ThroughputSearch(measure, 10*sim.Microsecond, 1000, 1e5, 0.05)
	if got < 0.9e5 {
		t.Errorf("unconstrained system capped at %v", got)
	}
}

func TestThroughputSearchAllFail(t *testing.T) {
	measure := func(float64) sim.Time { return sim.Second }
	got := ThroughputSearch(measure, sim.Microsecond, 1000, 1e5, 0.05)
	if got > 1000 {
		t.Errorf("hopeless system reported %v", got)
	}
}

func TestThroughputSearchMonotoneSystem(t *testing.T) {
	// P99 grows linearly with load; SLO crossed at 30k.
	measure := func(rps float64) sim.Time {
		return sim.Time(rps * float64(sim.Microsecond) / 1000)
	}
	got := ThroughputSearch(measure, 30*sim.Microsecond, 500, 1e6, 0.02)
	if got < 28000 || got > 30000 {
		t.Errorf("found %v, want ~30000", got)
	}
}

func TestMergeMatchesCombinedRecorder(t *testing.T) {
	a := NewRecorder("a")
	b := NewRecorder("b")
	all := NewRecorder("all")
	for i := 1; i <= 40; i++ {
		s := sim.Time(i * 7 % 41)
		if i%2 == 0 {
			a.Add(s)
		} else {
			b.Add(s)
		}
		all.Add(s)
	}
	a.Merge(b)
	if a.Count() != all.Count() {
		t.Fatalf("merged count %d, want %d", a.Count(), all.Count())
	}
	if a.Mean() != all.Mean() {
		t.Errorf("merged mean %v, want %v", a.Mean(), all.Mean())
	}
	for _, p := range []float64{50, 90, 99, 100} {
		if a.Percentile(p) != all.Percentile(p) {
			t.Errorf("merged p%.0f %v, want %v", p, a.Percentile(p), all.Percentile(p))
		}
	}
	// The source recorder must be untouched.
	if b.Count() != 20 {
		t.Errorf("source recorder mutated: count %d", b.Count())
	}
}

func TestMergeInvalidatesSortCache(t *testing.T) {
	a := NewRecorder("a")
	for _, s := range []sim.Time{10, 20, 30} {
		a.Add(s)
	}
	if got := a.Max(); got != 30 { // forces the sort + cache
		t.Fatalf("max %v", got)
	}
	b := NewRecorder("b")
	b.Add(100)
	a.Merge(b)
	if got := a.Max(); got != 100 {
		t.Errorf("max after merge %v, want 100 (stale sort cache?)", got)
	}
}

func TestMergeEmptyAndNil(t *testing.T) {
	a := NewRecorder("a")
	a.Add(5)
	a.Merge(nil)
	a.Merge(NewRecorder("empty"))
	if a.Count() != 1 || a.Mean() != 5 {
		t.Errorf("no-op merges changed recorder: n=%d mean=%v", a.Count(), a.Mean())
	}
}

func TestPercentileSortCacheStaysCorrectAfterAdd(t *testing.T) {
	r := NewRecorder("r")
	r.Add(50)
	r.Add(10)
	if got := r.P50(); got != 10 {
		t.Fatalf("p50 %v, want 10", got)
	}
	r.Add(1) // must invalidate the cached sort
	if got := r.Percentile(100); got != 50 {
		t.Errorf("max %v, want 50", got)
	}
	if got := r.Percentile(1); got != 1 {
		t.Errorf("p1 %v, want 1", got)
	}
}

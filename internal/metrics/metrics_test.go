package metrics

import (
	"testing"
	"testing/quick"

	"accelflow/internal/sim"
)

func TestRecorderBasics(t *testing.T) {
	r := NewRecorder("x")
	if r.Mean() != 0 || r.P99() != 0 || r.Count() != 0 {
		t.Error("empty recorder not zeroed")
	}
	for i := 1; i <= 100; i++ {
		r.Add(sim.Time(i) * sim.Microsecond)
	}
	if r.Count() != 100 {
		t.Errorf("count = %d", r.Count())
	}
	if r.Mean() != sim.FromMicros(50.5) {
		t.Errorf("mean = %v", r.Mean())
	}
	if r.P99() != 99*sim.Microsecond {
		t.Errorf("p99 = %v, want 99us", r.P99())
	}
	if r.P50() != 50*sim.Microsecond {
		t.Errorf("p50 = %v, want 50us", r.P50())
	}
	if r.Max() != 100*sim.Microsecond {
		t.Errorf("max = %v", r.Max())
	}
	if r.String() == "" {
		t.Error("empty String()")
	}
}

func TestRecorderUnsortedInsertions(t *testing.T) {
	r := NewRecorder("x")
	for _, v := range []sim.Time{5, 1, 9, 3, 7} {
		r.Add(v * sim.Microsecond)
	}
	if r.P50() != 5*sim.Microsecond {
		t.Errorf("p50 = %v", r.P50())
	}
	// Adding after a percentile query must still work.
	r.Add(100 * sim.Microsecond)
	if r.Max() != 100*sim.Microsecond {
		t.Errorf("max after re-add = %v", r.Max())
	}
}

// Property: percentiles are monotone in p and bounded by min/max.
func TestPercentileMonotone(t *testing.T) {
	f := func(raw []uint32) bool {
		if len(raw) == 0 {
			return true
		}
		r := NewRecorder("q")
		for _, v := range raw {
			r.Add(sim.Time(v))
		}
		last := sim.Time(-1)
		for _, p := range []float64{1, 10, 25, 50, 75, 90, 99, 100} {
			v := r.Percentile(p)
			if v < last {
				return false
			}
			last = v
		}
		return r.Percentile(100) == r.Max()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSizes(t *testing.T) {
	s := Sizes([]int{5, 1, 9, 3})
	if s.Min != 1 || s.Max != 9 {
		t.Errorf("sizes = %+v", s)
	}
	if s.Median != 5 {
		t.Errorf("median = %d", s.Median)
	}
	if z := Sizes(nil); z.Min != 0 || z.Max != 0 {
		t.Error("empty sizes not zero")
	}
}

func TestThroughputSearchFindsKnee(t *testing.T) {
	// Synthetic system: P99 = 10us below 50k rps, 100us above.
	measure := func(rps float64) sim.Time {
		if rps <= 50000 {
			return 10 * sim.Microsecond
		}
		return 100 * sim.Microsecond
	}
	got := ThroughputSearch(measure, 50*sim.Microsecond, 1000, 1e6, 0.02)
	if got < 45000 || got > 50000 {
		t.Errorf("knee found at %v, want ~50000", got)
	}
}

func TestThroughputSearchAllPass(t *testing.T) {
	measure := func(float64) sim.Time { return sim.Microsecond }
	got := ThroughputSearch(measure, 10*sim.Microsecond, 1000, 1e5, 0.05)
	if got < 0.9e5 {
		t.Errorf("unconstrained system capped at %v", got)
	}
}

func TestThroughputSearchAllFail(t *testing.T) {
	measure := func(float64) sim.Time { return sim.Second }
	got := ThroughputSearch(measure, sim.Microsecond, 1000, 1e5, 0.05)
	if got > 1000 {
		t.Errorf("hopeless system reported %v", got)
	}
}

func TestThroughputSearchMonotoneSystem(t *testing.T) {
	// P99 grows linearly with load; SLO crossed at 30k.
	measure := func(rps float64) sim.Time {
		return sim.Time(rps * float64(sim.Microsecond) / 1000)
	}
	got := ThroughputSearch(measure, 30*sim.Microsecond, 500, 1e6, 0.02)
	if got < 28000 || got > 30000 {
		t.Errorf("found %v, want ~30000", got)
	}
}

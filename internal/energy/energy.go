// Package energy reproduces the paper's McPAT-derived area accounting
// (§VI) and the activity-based power/energy model (§VII-B.5). The area
// constants are the paper's published numbers; energy integrates the
// simulator's activity counters.
package energy

import (
	"fmt"

	"accelflow/internal/config"
	"accelflow/internal/engine"
	"accelflow/internal/sim"
)

// AreaMM2 is a silicon area in mm^2 at 7nm.
type AreaMM2 float64

// AreaReport reproduces the §VI area accounting.
type AreaReport struct {
	Cores       AreaMM2 // cores + private caches
	LLC         AreaMM2
	CoreNetwork AreaMM2

	Accelerators map[config.AccelKind]AreaMM2
	Queues       AreaMM2 // input/output queues + dispatchers
	ADMA         AreaMM2
	AccelNetwork AreaMM2
}

// Area returns the paper's numbers: a 122.3mm^2 baseline processor,
// 44.9mm^2 of accelerators, 3.4mm^2 of queues/dispatchers, 1.3mm^2 of
// A-DMA engines, and 0.4mm^2 of accelerator network.
func Area() AreaReport {
	acc := map[config.AccelKind]AreaMM2{
		config.Ser:  0.6,
		config.Dser: 0.9,
		config.Cmp:  9.1,
		config.Dcmp: 5.2,
		// TCP and (De)Encr estimated as Cmp-sized; RPC and LdB as
		// Dser-sized (§VI).
		config.TCP:  9.1,
		config.Encr: 9.1, // Encr and Decr each sized like Cmp, which
		config.Decr: 9.1, // reproduces the paper's 44.9mm2 total

		config.RPC: 0.9,
		config.LdB: 0.9,
	}
	return AreaReport{
		Cores:        83.1,
		LLC:          38.2,
		CoreNetwork:  1.0,
		Accelerators: acc,
		Queues:       3.4,
		ADMA:         1.3,
		AccelNetwork: 0.4,
	}
}

// BaselineTotal is the processor area without accelerators.
func (a AreaReport) BaselineTotal() AreaMM2 { return a.Cores + a.LLC + a.CoreNetwork }

// AccelTotal sums the accelerator ASIC areas.
func (a AreaReport) AccelTotal() AreaMM2 {
	var s AreaMM2
	for _, v := range a.Accelerators {
		s += v
	}
	return s
}

// OrchestrationTotal sums AccelFlow's added structures beyond the
// accelerators themselves.
func (a AreaReport) OrchestrationTotal() AreaMM2 { return a.Queues + a.ADMA + a.AccelNetwork }

// AccelFraction is the share of total SoC area taken by accelerators
// plus orchestration (the paper reports 29.0% combined, 26.1%
// accelerators alone, 2.9% AccelFlow overhead).
func (a AreaReport) AccelFraction() (combined, accelOnly, overhead float64) {
	total := float64(a.BaselineTotal() + a.AccelTotal() + a.OrchestrationTotal())
	combined = float64(a.AccelTotal()+a.OrchestrationTotal()) / total
	accelOnly = float64(a.AccelTotal()) / total
	overhead = float64(a.OrchestrationTotal()) / total
	return
}

// QueueMemoryBytes is the extra SRAM AccelFlow adds for queues: the
// paper reports 2.4MB per server (9 accelerators x 128 entries x
// ~2.1KB).
func QueueMemoryBytes(cfg *config.Config) int {
	return int(config.NumAccelKinds) * (cfg.InputQueueEntries + cfg.OutputQueueEntries) * cfg.QueueEntryBytes
}

// PowerModel holds the power/energy coefficients. Accelerator and
// orchestration maxima are the paper's (12.5W and 5.0W); the rest are
// plausible server-class constants used for relative comparisons.
type PowerModel struct {
	CoreActiveW   float64 // per busy core
	CoreIdleW     float64 // per idle core
	AccelMaxW     float64 // all accelerators at full load (paper: 12.5)
	OrchMaxW      float64 // queues/dispatchers/DMA/ATM at full load (paper: 5.0)
	ServerMaxW    float64 // whole server (paper: accelerators are 3.1%)
	UncoreStaticW float64
}

// DefaultPower returns the calibrated model.
func DefaultPower() PowerModel {
	return PowerModel{
		CoreActiveW:   7.5,
		CoreIdleW:     1.2,
		AccelMaxW:     12.5,
		OrchMaxW:      5.0,
		ServerMaxW:    400,
		UncoreStaticW: 55,
	}
}

// Report is the integrated energy of one simulation run.
type Report struct {
	Elapsed       sim.Time
	CoreEnergyJ   float64
	AccelEnergyJ  float64
	OrchEnergyJ   float64
	StaticEnergyJ float64
}

// TotalJ sums the components.
func (r Report) TotalJ() float64 {
	return r.CoreEnergyJ + r.AccelEnergyJ + r.OrchEnergyJ + r.StaticEnergyJ
}

// AvgPowerW is the mean power draw over the run.
func (r Report) AvgPowerW() float64 {
	s := r.Elapsed.Seconds()
	if s <= 0 {
		return 0
	}
	return r.TotalJ() / s
}

// Integrate computes a run's energy from the engine's activity: core
// busy time, accelerator busy time (as a fraction of max), and
// orchestration activity (dispatcher passes, DMA transfers, manager).
func Integrate(pm PowerModel, e *engine.Engine, elapsed sim.Time) Report {
	cfg := e.Cfg
	secs := elapsed.Seconds()
	rep := Report{Elapsed: elapsed}

	coreBusy := e.Cores.BusyTime.Seconds()
	coreIdle := secs*float64(cfg.Cores) - coreBusy
	if coreIdle < 0 {
		coreIdle = 0
	}
	rep.CoreEnergyJ = coreBusy*pm.CoreActiveW + coreIdle*pm.CoreIdleW

	// Accelerators: busy fraction of the whole ensemble times max power.
	var accelBusy float64
	for _, kd := range config.AllAccelKinds() {
		accelBusy += e.Accels[kd].Stats.BusyTime.Seconds()
	}
	// PE-seconds of the whole ensemble; with the default uniform mix
	// (TotalPEs == NumAccelKinds*PEsPerAccel) this reduces to exactly
	// the pre-PEMix formula, so default-config energy bytes are
	// unchanged.
	ensembleSeconds := secs * float64(cfg.TotalPEs())
	if ensembleSeconds > 0 {
		rep.AccelEnergyJ = pm.AccelMaxW * secs * (accelBusy / ensembleSeconds) *
			float64(cfg.TotalPEs()) / float64(config.NumAccelKinds)
	}

	// Orchestration: dispatcher + DMA + manager busy time against the
	// orchestration power budget.
	var orchBusy float64
	for _, kd := range config.AllAccelKinds() {
		orchBusy += e.Accels[kd].OutDisp.BusyTime.Seconds()
	}
	orchBusy += e.Manager.BusyTime.Seconds()
	orchSeconds := secs * float64(config.NumAccelKinds+1)
	if orchSeconds > 0 {
		rep.OrchEnergyJ = pm.OrchMaxW * secs * (orchBusy / orchSeconds) * 4
	}

	rep.StaticEnergyJ = pm.UncoreStaticW * secs
	return rep
}

// PerfPerWatt returns completed requests per joule-second (throughput
// per watt), the paper's §VII-B.5 comparison metric.
func PerfPerWatt(completed uint64, rep Report) float64 {
	if rep.Elapsed <= 0 || rep.AvgPowerW() == 0 {
		return 0
	}
	rps := float64(completed) / rep.Elapsed.Seconds()
	return rps / rep.AvgPowerW()
}

// FormatArea renders the §VI table.
func FormatArea(a AreaReport) string {
	comb, accel, over := a.AccelFraction()
	return fmt.Sprintf(
		"baseline %.1fmm2 (cores %.1f, LLC %.1f, net %.1f)\n"+
			"accelerators %.1fmm2, queues+dispatchers %.1fmm2, A-DMA %.1fmm2, accel net %.1fmm2\n"+
			"accel+orchestration %.1f%% of SoC (accel %.1f%%, AccelFlow overhead %.1f%%)",
		float64(a.BaselineTotal()), float64(a.Cores), float64(a.LLC), float64(a.CoreNetwork),
		float64(a.AccelTotal()), float64(a.Queues), float64(a.ADMA), float64(a.AccelNetwork),
		comb*100, accel*100, over*100)
}

package energy

import (
	"strings"
	"testing"

	"accelflow/internal/config"
	"accelflow/internal/engine"
	"accelflow/internal/sim"
	"accelflow/internal/trace"
)

func TestAreaMatchesPaperConstants(t *testing.T) {
	a := Area()
	if got := float64(a.BaselineTotal()); got < 122.0 || got > 122.6 {
		t.Errorf("baseline area = %.1f, paper says 122.3", got)
	}
	if got := float64(a.AccelTotal()); got < 40 || got > 50 {
		t.Errorf("accelerator area = %.1f, paper says 44.9", got)
	}
	if got := float64(a.OrchestrationTotal()); got < 5.05 || got > 5.15 {
		t.Errorf("orchestration area = %.2f, paper says 5.1", got)
	}
	comb, accel, over := a.AccelFraction()
	if comb < 0.2 || comb > 0.32 {
		t.Errorf("combined fraction = %.3f, paper 0.29", comb)
	}
	if accel >= comb || over >= accel {
		t.Error("fraction ordering broken")
	}
	if s := FormatArea(a); !strings.Contains(s, "mm2") {
		t.Error("FormatArea output malformed")
	}
}

func TestQueueMemoryIsPaper2_4MB(t *testing.T) {
	got := QueueMemoryBytes(config.Default())
	if got < 2_300_000 || got > 2_600_000 {
		t.Errorf("queue memory = %d bytes, paper says ~2.4MB", got)
	}
}

func runFor(t *testing.T, pol engine.Policy) (*engine.Engine, sim.Time, uint64) {
	t.Helper()
	k := sim.NewKernel()
	e, err := engine.New(k, config.Default(), pol, engine.Params{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	p := trace.New("recv").Seq(config.TCP, config.Decr, config.Dser, config.LdB).MustBuild()
	if err := e.Register([]*trace.Program{p}, nil); err != nil {
		t.Fatal(err)
	}
	var done uint64
	for i := 0; i < 200; i++ {
		at := sim.Time(i) * 5 * sim.Microsecond
		k.At(at, func() {
			e.Submit(&engine.Job{
				Service:       "t",
				Steps:         []engine.Step{{Kind: engine.StepChain, Trace: "recv"}, {Kind: engine.StepApp, App: 8 * sim.Microsecond}},
				PayloadMedian: 1024, PayloadSigma: 0.3,
			}, func(engine.Result) { done++ })
		})
	}
	k.Run()
	return e, k.Now(), done
}

func TestIntegrateProducesPositiveComponents(t *testing.T) {
	e, elapsed, done := runFor(t, engine.AccelFlow())
	rep := Integrate(DefaultPower(), e, elapsed)
	if rep.CoreEnergyJ <= 0 || rep.AccelEnergyJ <= 0 || rep.StaticEnergyJ <= 0 {
		t.Errorf("empty components: %+v", rep)
	}
	if rep.TotalJ() <= 0 || rep.AvgPowerW() <= 0 {
		t.Error("no total energy")
	}
	if PerfPerWatt(done, rep) <= 0 {
		t.Error("no perf/W")
	}
	var zero Report
	if zero.AvgPowerW() != 0 || PerfPerWatt(10, zero) != 0 {
		t.Error("zero report not handled")
	}
}

func TestNonAccUsesMoreEnergyThanAccelFlow(t *testing.T) {
	eNA, elNA, dNA := runFor(t, engine.NonAcc())
	eAF, elAF, dAF := runFor(t, engine.AccelFlow())
	if dNA != 200 || dAF != 200 {
		t.Fatalf("incomplete runs: %d/%d", dNA, dAF)
	}
	pm := DefaultPower()
	repNA := Integrate(pm, eNA, elNA)
	repAF := Integrate(pm, eAF, elAF)
	// Cores burn the tax on Non-acc; the accelerators do it far more
	// efficiently (paper: -74% energy).
	if repAF.CoreEnergyJ >= repNA.CoreEnergyJ {
		t.Errorf("AccelFlow core energy %v >= Non-acc %v", repAF.CoreEnergyJ, repNA.CoreEnergyJ)
	}
	if PerfPerWatt(dAF, repAF) <= PerfPerWatt(dNA, repNA) {
		t.Error("AccelFlow perf/W not better than Non-acc")
	}
}

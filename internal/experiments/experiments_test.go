package experiments

import (
	"strings"
	"testing"
)

func quickOpts() Options { return Options{Requests: 120, Seed: 1, Quick: true} }

// TestEveryExperimentRuns executes the full registry at a tiny scale:
// every runner must complete, produce text, and fill its Values map.
func TestEveryExperimentRuns(t *testing.T) {
	for _, id := range IDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			switch id {
			case "fig14", "fig15":
				if testing.Short() {
					t.Skip("throughput search is slow")
				}
			}
			res, err := Registry[id](quickOpts())
			if err != nil {
				t.Fatalf("%s: %v", id, err)
			}
			if res.Name != id {
				t.Errorf("result name %q != id %q", res.Name, id)
			}
			if strings.TrimSpace(res.Text()) == "" {
				t.Errorf("%s produced no text", id)
			}
			if len(res.Values) == 0 {
				t.Errorf("%s produced no values", id)
			}
		})
	}
}

func TestIDsSortedAndComplete(t *testing.T) {
	ids := IDs()
	if len(ids) != len(Registry) {
		t.Fatalf("IDs() returned %d of %d", len(ids), len(Registry))
	}
	for i := 1; i < len(ids); i++ {
		if ids[i-1] >= ids[i] {
			t.Errorf("IDs not sorted at %d: %s >= %s", i, ids[i-1], ids[i])
		}
	}
	for _, want := range []string{"fig1", "fig11", "fig13", "fig14", "tab4", "area", "energy"} {
		if _, ok := Registry[want]; !ok {
			t.Errorf("registry missing %q", want)
		}
	}
}

func TestOptionsScaling(t *testing.T) {
	if (Options{}).reqs() != 2500 {
		t.Error("zero Requests should default")
	}
	if (Options{Requests: 9000, Quick: true}).reqs() != 400 {
		t.Error("Quick did not cap the budget")
	}
	if (Options{Requests: 100, Quick: true}).reqs() != 100 {
		t.Error("Quick should not raise small budgets")
	}
	if DefaultOptions().Requests <= 0 {
		t.Error("DefaultOptions has no budget")
	}
}

// TestFig1ShapeMatchesPaper checks the headline Fig. 1 claim at test
// scale: app logic is a minority share, and TCP + (De)Ser dominate the
// tax, matching the paper's ordering.
func TestFig1ShapeMatchesPaper(t *testing.T) {
	res, err := Fig1Breakdown(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	app := res.Values["avg/app_share"]
	if app < 0.10 || app > 0.35 {
		t.Errorf("app share %.2f outside the paper's band (~0.21)", app)
	}
	if res.Values["avg/tcp"] < res.Values["avg/rpc"] {
		t.Error("TCP share below RPC share; calibration broken")
	}
	if res.Values["avg/ser"] < res.Values["avg/ldb"] {
		t.Error("(De)Ser share below LdB share; calibration broken")
	}
}

// TestFig13LadderMonotone checks the ablation ordering: each added
// technique must not hurt the average tail.
func TestFig13LadderMonotone(t *testing.T) {
	if testing.Short() {
		t.Skip("mix runs are slow")
	}
	res, err := Fig13Ablation(Options{Requests: 200, Seed: 1, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	af := res.Values["reduction/AccelFlow"]
	direct := res.Values["reduction/Direct"]
	if af <= 0 {
		t.Errorf("AccelFlow reduction vs RELIEF = %.2f, want positive", af)
	}
	if af < direct-0.1 {
		t.Errorf("full AccelFlow (%.2f) clearly worse than Direct (%.2f)", af, direct)
	}
}

// TestTab4MeasuredCounts verifies the measured per-request accelerator
// counts track Table IV within sampling tolerance.
func TestTab4MeasuredCounts(t *testing.T) {
	res, err := Tab4Paths(Options{Requests: 600, Seed: 1, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, svc := range []string{"CPost", "UniqId", "Login"} {
		paper := res.Values[svc+"/paper"]
		meas := res.Values[svc+"/measured"]
		if meas < paper*0.8 || meas > paper*1.25 {
			t.Errorf("%s: measured %.1f vs Table IV %.0f", svc, meas, paper)
		}
	}
}

// TestAreaMatchesPaper checks the §VI constants.
func TestAreaMatchesPaper(t *testing.T) {
	res, err := AreaAccounting(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if v := res.Values["accel_mm2"]; v < 40 || v > 50 {
		t.Errorf("accelerator area %.1fmm2, paper says 44.9", v)
	}
	if v := res.Values["overhead_frac"]; v > 0.035 {
		t.Errorf("AccelFlow overhead %.1f%% exceeds the paper's <=2.9%% band", v*100)
	}
}

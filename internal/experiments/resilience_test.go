package experiments

import (
	"math"
	"testing"

	"accelflow/internal/workload"
)

// TestResilienceRateZeroMatchesNoFaultRun pins the experiment's
// zero-overhead claim per policy: the rate-0 cells must produce values
// bit-identical to the same run with the fault layer absent entirely.
func TestResilienceRateZeroMatchesNoFaultRun(t *testing.T) {
	const n, seed = 80, 21
	for _, pol := range resiliencePolicies() {
		with := resilienceSpec(pol, 0, n, seed)
		without := resilienceSpec(pol, 0, n, seed)
		without.Faults = nil
		a, err := with.Run()
		if err != nil {
			t.Fatal(err)
		}
		b, err := without.Run()
		if err != nil {
			t.Fatal(err)
		}
		if math.Float64bits(float64(a.All.P99())) != math.Float64bits(float64(b.All.P99())) ||
			a.All.Mean() != b.All.Mean() ||
			a.Completed != b.Completed ||
			a.FellBack != b.FellBack ||
			a.TimedOut != b.TimedOut ||
			a.Elapsed != b.Elapsed ||
			a.Breakdown != b.Breakdown {
			t.Errorf("%s: rate-0 injector changed the run (p99 %v vs %v, elapsed %v vs %v)",
				pol.Name, a.All.P99(), b.All.P99(), a.Elapsed, b.Elapsed)
		}
	}
}

// TestResilienceFaultsDegradeButComplete checks the experiment's shape
// on a small budget: the faulty cells complete every request and report
// sane, non-negative rates.
func TestResilienceFaultsDegradeButComplete(t *testing.T) {
	res, err := Resilience(Options{Requests: 60, Seed: 7, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Values) == 0 {
		t.Fatal("no values produced")
	}
	for _, pol := range resiliencePolicies() {
		for _, rate := range resilienceRates(true) {
			for _, metric := range []string{"/p99us", "/fallback_pct", "/timeouts_per_m"} {
				key := pol.Name + "/r" + map[float64]string{0: "0", 2000: "2000"}[rate] + metric
				v, ok := res.Values[key]
				if !ok {
					t.Errorf("missing value %q", key)
					continue
				}
				if v < 0 || math.IsNaN(v) {
					t.Errorf("%s = %v", key, v)
				}
			}
		}
	}
}

// Guard against the experiment silently dropping its workload shape:
// resilienceSpec must budget exactly n requests across the catalog.
func TestResilienceSpecBudget(t *testing.T) {
	spec := resilienceSpec(resiliencePolicies()[0], 2000, 150, 3)
	total := 0
	for _, src := range spec.Sources {
		total += src.Requests
	}
	if total != 150 {
		t.Errorf("spec budgets %d requests, want 150", total)
	}
	var _ []workload.Source = spec.Sources
}

// Paper-shape invariants: the qualitative orderings the reproduction
// exists to preserve. Exact values drift as the model is recalibrated
// (the golden file tracks that); these tests instead pin down *who
// wins*, so a regression that flips an ordering fails loudly even after
// a legitimate -update of the goldens.
package experiments

import (
	"testing"

	"accelflow/internal/services"
)

// avgAcross averages res.Values[pol+"/"+svc+suffix] over the services.
func avgAcross(t *testing.T, res *Result, pol, suffix string, svcs []string) float64 {
	t.Helper()
	var sum float64
	for _, svc := range svcs {
		v, ok := res.Values[pol+"/"+svc+suffix]
		if !ok {
			t.Fatalf("%s: missing value %q", res.Name, pol+"/"+svc+suffix)
		}
		sum += v
	}
	return sum / float64(len(svcs))
}

// TestFig11TailOrdering: at the Fig. 11 load, the paper's headline
// ordering must hold — AccelFlow's P99 below RELIEF's, RELIEF's below
// CPU-Centric's, and CPU-Centric's below Non-acc's. The budget and
// seed are pinned: the RELIEF-vs-CPU-Centric gap only opens once the
// run is long enough for CPU-Centric's orchestration load to saturate
// cores (clearly visible at the full scale of results_full.txt), and
// 600 requests per service is the smallest budget where that regime is
// reached at test cost. Runs are deterministic, so this is a stable
// trajectory, not a flaky sample.
func TestFig11TailOrdering(t *testing.T) {
	res, err := Fig11Latency(Options{Requests: 600, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, svc := range services.SocialNetwork() {
		names = append(names, svc.Name)
	}
	af := avgAcross(t, res, "AccelFlow", "/p99us", names)
	rl := avgAcross(t, res, "RELIEF", "/p99us", names)
	cc := avgAcross(t, res, "CPU-Centric", "/p99us", names)
	na := avgAcross(t, res, "Non-acc", "/p99us", names)
	if !(af < rl) {
		t.Errorf("AccelFlow P99 %.0fus not below RELIEF %.0fus", af, rl)
	}
	if !(rl < cc) {
		t.Errorf("RELIEF P99 %.0fus not below CPU-Centric %.0fus", rl, cc)
	}
	if !(cc < na) {
		t.Errorf("CPU-Centric P99 %.0fus not below Non-acc %.0fus", cc, na)
	}
}

// TestFig14ThroughputOrdering: maximum throughput under SLO must rank
// Ideal >= AccelFlow > RELIEF > Non-acc (Fig. 14's shape; the paper
// has AccelFlow at 8.3x Non-acc, 2.2x RELIEF, within 8% of Ideal).
// Reuses the shared golden sweep rather than paying for a second
// throughput search.
func TestFig14ThroughputOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("throughput search is slow")
	}
	res := goldenResults(t)["fig14"]
	geo := func(pol string) float64 {
		v, ok := res.Values[pol+"/geomean_krps"]
		if !ok {
			t.Fatalf("missing geomean for %s", pol)
		}
		return v
	}
	af, rl, na, id := geo("AccelFlow"), geo("RELIEF"), geo("Non-acc"), geo("Ideal")
	if !(af > rl) {
		t.Errorf("AccelFlow throughput %.0f not above RELIEF %.0f", af, rl)
	}
	if !(rl > na) {
		t.Errorf("RELIEF throughput %.0f not above Non-acc %.0f", rl, na)
	}
	// Ideal may tie AccelFlow at quick tolerances, but must not lose
	// by more than the search's own tolerance band.
	if af > id*1.25 {
		t.Errorf("AccelFlow throughput %.0f implausibly above Ideal %.0f", af, id)
	}
}

// TestFig13AblationLadder: each successive technique of the ablation
// (PerAccTypeQ -> Direct -> CntrFlow -> AccelFlow) must not clearly
// hurt the average tail — the cumulative reduction vs RELIEF is
// monotone within a small sampling slack, and the full system's
// reduction is strictly positive.
func TestFig13AblationLadder(t *testing.T) {
	res, err := Fig13Ablation(Options{Requests: 200, Seed: 1, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	ladder := []string{"PerAccTypeQ", "Direct", "CntrFlow", "AccelFlow"}
	const slack = 0.08 // quick-mode sampling noise on a reduction in [0,1]
	prev := 0.0
	for _, step := range ladder {
		r, ok := res.Values["reduction/"+step]
		if !ok {
			t.Fatalf("missing reduction for %s", step)
		}
		if r < prev-slack {
			t.Errorf("%s reduction %.3f clearly below previous step's %.3f", step, r, prev)
		}
		if r > prev {
			prev = r
		}
	}
	if af := res.Values["reduction/AccelFlow"]; af <= 0 {
		t.Errorf("full AccelFlow reduction vs RELIEF = %.3f, want positive", af)
	}
}

package experiments

import (
	"bytes"
	"testing"

	"accelflow/internal/config"
	"accelflow/internal/engine"
	"accelflow/internal/obs"
	"accelflow/internal/services"
	"accelflow/internal/workload"
)

// TestTraceExportDeterministicAcrossParallelism runs one observed
// simulation cell per service through the sweep engine at Parallelism
// 1 and 8 and requires the exported Chrome traces to be byte-identical:
// observability output must inherit the sweep's determinism contract,
// not just its scalar Values.
func TestTraceExportDeterministicAcrossParallelism(t *testing.T) {
	svcs := services.SocialNetwork()[:4]
	cells := make([]Cell[[]byte], 0, len(svcs))
	for _, svc := range svcs {
		svc := svc
		cells = append(cells, Cell[[]byte]{
			Key: "obsdet/" + svc.Name,
			Run: func(seed int64) ([]byte, error) {
				sink := obs.New()
				spec := &workload.RunSpec{
					Config:  config.Default(),
					Policy:  engine.AccelFlow(),
					Sources: workload.SingleService(svc, workload.Poisson{RPS: 3000}, 80),
					Seed:    seed,
					Obs:     sink,
				}
				if _, err := spec.Run(); err != nil {
					return nil, err
				}
				var buf bytes.Buffer
				if err := sink.WriteChromeTrace(&buf); err != nil {
					return nil, err
				}
				return buf.Bytes(), nil
			},
		})
	}
	opts := Options{Seed: 1, Quick: true}

	opts.Parallelism = 1
	serial, err := RunCells(opts, cells)
	if err != nil {
		t.Fatal(err)
	}
	opts.Parallelism = 8
	par, err := RunCells(opts, cells)
	if err != nil {
		t.Fatal(err)
	}
	for i, svc := range svcs {
		if len(serial[i]) == 0 {
			t.Fatalf("%s: empty trace export", svc.Name)
		}
		if !bytes.Equal(serial[i], par[i]) {
			t.Errorf("%s: trace export differs between Parallelism 1 and 8", svc.Name)
		}
	}

	// A repeat at the same parallelism must also be bit-identical.
	opts.Parallelism = 8
	again, err := RunCells(opts, cells)
	if err != nil {
		t.Fatal(err)
	}
	for i, svc := range svcs {
		if !bytes.Equal(par[i], again[i]) {
			t.Errorf("%s: trace export unstable across repeated runs", svc.Name)
		}
	}
}

package experiments

import (
	"fmt"
	"math"

	"accelflow/internal/config"
	"accelflow/internal/energy"
	"accelflow/internal/engine"
	"accelflow/internal/metrics"
	"accelflow/internal/services"
	"accelflow/internal/sim"
	"accelflow/internal/workload"
)

// Fig11Latency reproduces Fig. 11: P99 tail and average latency of each
// SocialNetwork service under the five architectures, with Alibaba-like
// production arrival rates. The paper's averages: AccelFlow reduces P99
// over Non-acc/CPU-Centric/RELIEF/Cohort by 90.7/81.2/68.8/70.1% and
// average latency by 77.2/53.9/40.7/37.9%.
func Fig11Latency(o Options) (*Result, error) {
	res := newResult("fig11")
	res.Linef("Fig. 11 — P99 (and mean) latency in us, Alibaba-like rates, full mix")
	pols := architectures()
	svcs := services.SocialNetwork()

	// The whole SocialNetwork mix shares one server (the paper's setup):
	// every service runs at its production rate concurrently. One sweep
	// cell per architecture; merge single-threaded after the join.
	type latencies struct{ p99, mean map[string]float64 }
	cells := make([]Cell[latencies], 0, len(pols))
	for _, pol := range pols {
		pol := pol
		cells = append(cells, Cell[latencies]{
			Key: "fig11/" + pol.Name,
			Run: func(seed int64) (latencies, error) {
				spec := &workload.RunSpec{
					Shards:  o.Shards,
					Config:  config.Default(),
					Policy:  pol,
					Sources: workload.Mix(svcs, 1.0, o.reqs()*len(svcs)),
					Seed:    seed,
					Check:   o.newCheck(),
				}
				run, err := spec.RunCtx(o.ctx())
				if err != nil {
					return latencies{}, err
				}
				c := latencies{p99: map[string]float64{}, mean: map[string]float64{}}
				for _, svc := range svcs {
					rec := run.PerService[svc.Name]
					c.p99[svc.Name] = rec.P99().Micros()
					c.mean[svc.Name] = rec.Mean().Micros()
				}
				return c, nil
			},
		})
	}
	outs, err := RunCells(o, cells)
	if err != nil {
		return nil, err
	}
	for i, pol := range pols {
		for _, svc := range svcs {
			res.Set(pol.Name+"/"+svc.Name+"/p99us", outs[i].p99[svc.Name])
			res.Set(pol.Name+"/"+svc.Name+"/meanus", outs[i].mean[svc.Name])
		}
	}
	hdr := fmt.Sprintf("%-8s", "service")
	for _, pol := range pols {
		hdr += fmt.Sprintf(" %22s", pol.Name)
	}
	res.Linef("%s", hdr)
	for _, svc := range svcs {
		row := fmt.Sprintf("%-8s", svc.Name)
		for _, pol := range pols {
			row += fmt.Sprintf(" %12.0f (%7.0f)",
				res.Get(pol.Name+"/"+svc.Name+"/p99us"),
				res.Get(pol.Name+"/"+svc.Name+"/meanus"))
		}
		res.Linef("%s", row)
	}
	// Average per-service reduction of AccelFlow vs the baselines.
	res.Linef("")
	res.Linef("AccelFlow average reduction (per-service mean):")
	for _, pol := range pols {
		if pol.Name == "AccelFlow" {
			continue
		}
		var rp, rm float64
		for _, svc := range svcs {
			rp += 1 - res.Get("AccelFlow/"+svc.Name+"/p99us")/res.Get(pol.Name+"/"+svc.Name+"/p99us")
			rm += 1 - res.Get("AccelFlow/"+svc.Name+"/meanus")/res.Get(pol.Name+"/"+svc.Name+"/meanus")
		}
		rp /= float64(len(svcs))
		rm /= float64(len(svcs))
		res.Linef("  vs %-12s P99 -%5.1f%%   mean -%5.1f%%", pol.Name,
			100*res.Set("reduction_p99/"+pol.Name, rp),
			100*res.Set("reduction_mean/"+pol.Name, rm))
	}
	res.Linef("paper: P99 -90.7/-81.2/-68.8/-70.1%%; mean -77.2/-53.9/-40.7/-37.9%% (Non-acc/CPU-Centric/RELIEF/Cohort)")
	return res, nil
}

// Fig12Loads reproduces Fig. 12: P99 under 5/10/15 kRPS across the
// DeathStarBench apps (paper: AccelFlow's advantage grows with load —
// -55.1/-60.9/-68.3% vs RELIEF).
func Fig12Loads(o Options) (*Result, error) {
	res := newResult("fig12")
	res.Linef("Fig. 12 — P99 (us) vs load, DeathStarBench mix")
	loads := []float64{5, 10, 15}
	if o.Quick {
		loads = []float64{5, 15}
	}
	pols := architectures()
	svcs := svcSubset(o, services.SocialNetwork())
	hdr := fmt.Sprintf("%-12s", "arch")
	for _, l := range loads {
		hdr += fmt.Sprintf(" %9.0fk", l)
	}
	res.Linef("%s", hdr)
	// One cell per (architecture, load); collect per-cell, merge after.
	type pt struct {
		pol  string
		load float64
	}
	var pts []pt
	var cells []Cell[float64]
	for _, pol := range pols {
		for _, load := range loads {
			pol, load := pol, load
			pts = append(pts, pt{pol.Name, load})
			cells = append(cells, Cell[float64]{
				Key: fmt.Sprintf("fig12/%s/%.0fk", pol.Name, load),
				Run: func(seed int64) (float64, error) {
					// Every service of the colocated mix runs at `load`
					// kRPS (the paper's "average loads of 5K, 10K, and
					// 15K RPS").
					var sources []workload.Source
					per := o.reqs()
					for _, svc := range svcs {
						sources = append(sources, workload.Source{
							Service:  svc,
							Arrivals: workload.Poisson{RPS: load * 1000},
							Requests: per,
						})
					}
					spec := &workload.RunSpec{
						Shards: o.Shards,
						Config: config.Default(), Policy: pol,
						Sources: sources, Seed: seed,
						Check: o.newCheck(),
					}
					run, err := spec.RunCtx(o.ctx())
					if err != nil {
						return 0, err
					}
					var avg float64
					for _, svc := range svcs {
						avg += run.PerService[svc.Name].P99().Micros()
					}
					return avg / float64(len(svcs)), nil
				},
			})
		}
	}
	outs, err := RunCells(o, cells)
	if err != nil {
		return nil, err
	}
	for i, p := range pts {
		res.Set(fmt.Sprintf("%s/%.0fk", p.pol, p.load), outs[i])
	}
	for _, pol := range pols {
		row := fmt.Sprintf("%-12s", pol.Name)
		for _, load := range loads {
			row += fmt.Sprintf(" %10.0f", res.Get(fmt.Sprintf("%s/%.0fk", pol.Name, load)))
		}
		res.Linef("%s", row)
	}
	res.Linef("")
	red := "AccelFlow vs RELIEF reduction:"
	for _, load := range loads {
		r := 1 - res.Get(fmt.Sprintf("AccelFlow/%.0fk", load))/res.Get(fmt.Sprintf("RELIEF/%.0fk", load))
		red += fmt.Sprintf("  %.0fk: -%.1f%%", load, 100*res.Set(fmt.Sprintf("reduction/%.0fk", load), r))
	}
	res.Linef("%s", red)
	res.Linef("paper: -55.1%% (5k), -60.9%% (10k), -68.3%% (15k)")
	return res, nil
}

// Fig13Ablation reproduces Fig. 13: the cumulative technique ladder
// RELIEF -> PerAccTypeQ -> Direct -> CntrFlow -> AccelFlow (paper's
// cumulative average P99 reductions: 6.8/32.7/55.1/68.7%).
func Fig13Ablation(o Options) (*Result, error) {
	res := newResult("fig13")
	res.Linef("Fig. 13 — P99 (us) with successive AccelFlow techniques")
	ladder := []engine.Policy{
		engine.RELIEF(), engine.RELIEFPerTypeQ(), engine.Direct(),
		engine.CntrFlow(), engine.AccelFlow(),
	}
	svcs := services.SocialNetwork()
	cells := make([]Cell[map[string]float64], 0, len(ladder))
	for _, pol := range ladder {
		pol := pol
		cells = append(cells, Cell[map[string]float64]{
			Key: "fig13/" + pol.Name,
			Run: func(seed int64) (map[string]float64, error) {
				spec := &workload.RunSpec{
					Shards:  o.Shards,
					Config:  config.Default(),
					Policy:  pol,
					Sources: workload.Mix(svcs, 1.0, o.reqs()*len(svcs)),
					Seed:    seed,
					Check:   o.newCheck(),
				}
				run, err := spec.RunCtx(o.ctx())
				if err != nil {
					return nil, err
				}
				out := map[string]float64{}
				for _, svc := range svcs {
					out[svc.Name] = run.PerService[svc.Name].P99().Micros()
				}
				return out, nil
			},
		})
	}
	outs, err := RunCells(o, cells)
	if err != nil {
		return nil, err
	}
	avg := map[string]float64{}
	for i, pol := range ladder {
		for _, svc := range svcs {
			v := res.Set(pol.Name+"/"+svc.Name, outs[i][svc.Name])
			avg[pol.Name] += v / float64(len(svcs))
		}
	}
	hdr := fmt.Sprintf("%-8s", "service")
	for _, pol := range ladder {
		hdr += fmt.Sprintf(" %12s", pol.Name)
	}
	res.Linef("%s", hdr)
	for _, svc := range svcs {
		row := fmt.Sprintf("%-8s", svc.Name)
		for _, pol := range ladder {
			row += fmt.Sprintf(" %12.0f", res.Get(pol.Name+"/"+svc.Name))
		}
		res.Linef("%s", row)
	}
	res.Linef("")
	cum := "cumulative reduction vs RELIEF:"
	for _, pol := range ladder[1:] {
		r := 1 - avg[pol.Name]/avg["RELIEF"]
		cum += fmt.Sprintf("  %s -%.1f%%", pol.Name, 100*res.Set("reduction/"+pol.Name, r))
	}
	res.Linef("%s", cum)
	res.Linef("paper: PerAccTypeQ -6.8%%, Direct -32.7%%, CntrFlow -55.1%%, AccelFlow -68.7%%")
	return res, nil
}

// Fig14Throughput reproduces Fig. 14: the maximum throughput meeting an
// SLO of 5x the unloaded latency, for the five architectures plus
// Ideal, plus the §IV-C deadline-aware scheduling extension (paper:
// AccelFlow 8.3x Non-acc, 2.2x RELIEF, within 8% of Ideal; EDF +1.6x).
func Fig14Throughput(o Options) (*Result, error) {
	res := newResult("fig14")
	res.Linef("Fig. 14 — max throughput under SLO (kRPS per service)")
	pols := append(architectures(), engine.Ideal(), engine.AccelFlowEDF())
	svcs := svcSubset(o, services.SocialNetwork())
	if o.Quick {
		svcs = svcs[:2]
	}
	hdr := fmt.Sprintf("%-14s", "arch")
	for _, svc := range svcs {
		hdr += fmt.Sprintf(" %8s", svc.Name)
	}
	hdr += fmt.Sprintf(" %9s", "geomean")
	res.Linef("%s", hdr)
	n := o.reqs()
	if n > 1200 {
		n = 1200
	}
	// SLO = 5x the service's unloaded execution time on each system
	// (§VII-A.3 with [15]/[58]'s per-system reading). One cell per
	// (architecture, service): each runs its own unloaded probe and
	// throughput search from a seed derived from its key.
	//
	// Quick mode also trims the probe cost itself: the 40ms sustain
	// floor makes high-RPS probes dominate wall clock, so CI-sized runs
	// cap the per-probe budget and the search ceiling (consistent with
	// Quick trimming loads and services elsewhere).
	sustainCap, hiCap := 6000, 3e6
	if o.Quick {
		sustainCap, hiCap = 2000, 1e6
	}
	var cells []Cell[float64]
	for _, pol := range pols {
		for _, svc := range svcs {
			pol, svc := pol, svc
			cells = append(cells, Cell[float64]{
				Key: "fig14/" + pol.Name + "/" + svc.Name,
				Run: func(seed int64) (float64, error) {
					um, err := unloadedMean(o, config.Default(), pol, svc, seed)
					if err != nil {
						return 0, err
					}
					slo := sim.FromMicros(5 * um)
					measure := func(rps float64) sim.Time {
						// Sustain the load long enough for queues to
						// reach steady state: at least 40ms of simulated
						// arrivals, capped so extreme probe loads stay
						// tractable.
						reqs := n
						if min := int(rps * 0.04); reqs < min {
							reqs = min
						}
						if reqs > sustainCap {
							reqs = sustainCap
						}
						run, err := runOne(o, config.Default(), pol, svc, workload.Poisson{RPS: rps}, reqs, seed)
						if err != nil {
							return sim.Time(1) << 60
						}
						return run.Net.P99()
					}
					tol := 0.08
					if o.Quick {
						tol = 0.2
					}
					return metrics.ThroughputSearch(measure, slo, 2000, hiCap, tol), nil
				},
			})
		}
	}
	outs, err := RunCells(o, cells)
	if err != nil {
		return nil, err
	}
	geo := map[string]float64{}
	for pi, pol := range pols {
		row := fmt.Sprintf("%-14s", pol.Name)
		prod := 1.0
		for si, svc := range svcs {
			max := outs[pi*len(svcs)+si]
			prod *= max
			row += fmt.Sprintf(" %8.0f", res.Set(pol.Name+"/"+svc.Name+"/krps", max/1000))
		}
		geo[pol.Name] = pow(prod, 1/float64(len(svcs)))
		row += fmt.Sprintf(" %9.0f", res.Set(pol.Name+"/geomean_krps", geo[pol.Name]/1000))
		res.Linef("%s", row)
	}
	res.Linef("")
	res.Linef("AccelFlow vs Non-acc %.1fx, vs RELIEF %.1fx, of Ideal %.0f%%; EDF vs FIFO %.2fx",
		res.Set("ratio/nonacc", geo["AccelFlow"]/geo["Non-acc"]),
		res.Set("ratio/relief", geo["AccelFlow"]/geo["RELIEF"]),
		100*res.Set("ratio/ideal", geo["AccelFlow"]/geo["Ideal"]),
		geo["AccelFlow-EDF"]/geo["AccelFlow"])
	res.Linef("paper: 8.3x Non-acc, 2.2x RELIEF, within 8%% of Ideal, EDF +1.6x")
	return res, nil
}

func pow(x, y float64) float64 {
	if x <= 0 {
		return 0
	}
	return math.Pow(x, y)
}

// Fig15Coarse reproduces Fig. 15: RELIEF vs AccelFlow maximum
// throughput on the coarse-grained gem5-like image/RNN applications
// (paper: AccelFlow 1.8x RELIEF on average).
func Fig15Coarse(o Options) (*Result, error) {
	res := newResult("fig15")
	res.Linef("Fig. 15 — coarse-grained apps: max throughput (kRPS)")
	apps := services.CoarseApps()
	if o.Quick {
		apps = apps[:2]
	}
	pols := []engine.Policy{engine.RELIEF(), engine.AccelFlow()}
	// The throughput search needs enough sustained load per probe to
	// distinguish the two systems; floor the budget.
	n := o.reqs() / 2
	if n < 400 && !o.Quick {
		n = 400
	}
	if n > 600 {
		n = 600
	}
	// One cell per (app, orchestrator). Both orchestrator cells of an
	// app derive the SLO probe from the app-only key, so they share one
	// SLO: 5x the app's unloaded execution time measured on the
	// AccelFlow system, and a slower orchestrator cannot hide behind a
	// looser SLO.
	var cells []Cell[float64]
	for _, app := range apps {
		for _, pol := range pols {
			app, pol := app, pol
			cells = append(cells, Cell[float64]{
				Key: "fig15/" + app.Name + "/" + pol.Name,
				Run: func(seed int64) (float64, error) {
					cfg := services.CoarseConfig()
					sloSeed := sim.DeriveSeed(o.Seed, "fig15/"+app.Name+"/slo")
					um, err := unloadedMeanCoarse(o, cfg, engine.AccelFlow(), app, sloSeed)
					if err != nil {
						return 0, err
					}
					slo := sim.FromMicros(5 * um)
					measure := func(rps float64) sim.Time {
						spec := &workload.RunSpec{
							Shards:   o.Shards,
							Config:   cfg,
							Policy:   pol,
							Sources:  workload.SingleService(app, workload.Poisson{RPS: rps}, n),
							Seed:     seed,
							Programs: services.CoarseCatalog(),
							Remote:   map[string]engine.RemoteKind{},
							Check:    o.newCheck(),
						}
						run, err := spec.RunCtx(o.ctx())
						if err != nil {
							return sim.Time(1) << 60
						}
						return run.All.P99()
					}
					tol := 0.1
					if o.Quick {
						tol = 0.25
					}
					return metrics.ThroughputSearch(measure, slo, 500, 5e5, tol), nil
				},
			})
		}
	}
	outs, err := RunCells(o, cells)
	if err != nil {
		return nil, err
	}
	res.Linef("%-12s %10s %10s %7s", "app", "RELIEF", "AccelFlow", "ratio")
	var ratioSum float64
	for ai, app := range apps {
		max := map[string]float64{}
		for pi, pol := range pols {
			max[pol.Name] = outs[ai*len(pols)+pi]
		}
		ratio := max["AccelFlow"] / max["RELIEF"]
		ratioSum += ratio
		res.Linef("%-12s %10.1f %10.1f %6.2fx", app.Name,
			max["RELIEF"]/1000, max["AccelFlow"]/1000, res.Set(app.Name+"/ratio", ratio))
	}
	res.Linef("")
	res.Linef("average AccelFlow/RELIEF = %.2fx (paper: 1.8x)",
		res.Set("avg_ratio", ratioSum/float64(len(apps))))
	return res, nil
}

func unloadedMeanCoarse(o Options, cfg *config.Config, pol engine.Policy, app *services.Service, seed int64) (float64, error) {
	spec := &workload.RunSpec{
		Shards:   o.Shards,
		Config:   cfg,
		Policy:   pol,
		Sources:  workload.SingleService(app, workload.Poisson{RPS: 20}, 40),
		Seed:     seed,
		Programs: services.CoarseCatalog(),
		Remote:   map[string]engine.RemoteKind{},
		Check:    o.newCheck(),
	}
	run, err := spec.RunCtx(o.ctx())
	if err != nil {
		return 0, err
	}
	return run.All.Mean().Micros(), nil
}

// Fig16Serverless reproduces Fig. 16: per-function P99 for Non-acc,
// RELIEF, and AccelFlow with Azure-like bursty invocations (paper:
// AccelFlow -37% vs RELIEF on average).
func Fig16Serverless(o Options) (*Result, error) {
	res := newResult("fig16")
	res.Linef("Fig. 16 — serverless P99 (us), Azure-like bursts")
	pols := []engine.Policy{engine.NonAcc(), engine.RELIEF(), engine.AccelFlow()}
	fns := services.Serverless()
	if o.Quick {
		fns = fns[:3]
	}
	hdr := fmt.Sprintf("%-8s", "func")
	for _, pol := range pols {
		hdr += fmt.Sprintf(" %12s", pol.Name)
	}
	res.Linef("%s", hdr)
	// All functions are colocated on one server (§VII-A.5).
	for _, pol := range pols {
		var sources []workload.Source
		for _, fn := range fns {
			sources = append(sources, workload.Source{
				Service:  fn,
				Arrivals: workload.Azure{RPS: fn.RatekRPS * 1000},
				Requests: o.reqs(),
			})
		}
		spec := &workload.RunSpec{
			Shards: o.Shards,
			Config: config.Default(), Policy: pol,
			Sources: sources, Seed: o.Seed,
			Check: o.newCheck(),
		}
		run, err := spec.RunCtx(o.ctx())
		if err != nil {
			return nil, err
		}
		for _, fn := range fns {
			res.Set(pol.Name+"/"+fn.Name, run.PerService[fn.Name].P99().Micros())
		}
	}
	for _, fn := range fns {
		row := fmt.Sprintf("%-8s", fn.Name)
		for _, pol := range pols {
			row += fmt.Sprintf(" %12.0f", res.Get(pol.Name+"/"+fn.Name))
		}
		res.Linef("%s", row)
	}
	var r float64
	for _, fn := range fns {
		r += 1 - res.Get("AccelFlow/"+fn.Name)/res.Get("RELIEF/"+fn.Name)
	}
	r /= float64(len(fns))
	res.Linef("")
	res.Linef("AccelFlow vs RELIEF: -%.1f%% average (paper: -37%%)",
		100*res.Set("reduction_vs_relief", r))
	return res, nil
}

// Fig17Components reproduces Fig. 17: the components of an unloaded
// AccelFlow execution — CPU, accelerators, orchestration (paper: 2.2%
// average), and communication.
func Fig17Components(o Options) (*Result, error) {
	res := newResult("fig17")
	res.Linef("Fig. 17 — AccelFlow execution time components (unloaded)")
	res.Linef("%-8s %6s %7s %6s %6s", "service", "cpu%", "accel%", "orch%", "comm%")
	var orchAvg float64
	svcs := services.SocialNetwork()
	for _, svc := range svcs {
		run, err := runOne(o, config.Default(), engine.AccelFlow(), svc, workload.Poisson{RPS: 50}, o.reqs()/8+40, o.Seed)
		if err != nil {
			return nil, err
		}
		bd := run.Breakdown
		tot := bd.Total().Micros()
		res.Linef("%-8s %5.1f%% %6.1f%% %5.1f%% %5.1f%%", svc.Name,
			100*bd.CPU.Micros()/tot, 100*bd.Accel.Micros()/tot,
			100*res.Set(svc.Name+"/orch_share", bd.Orch.Micros()/tot),
			100*bd.Comm.Micros()/tot)
		orchAvg += bd.Orch.Micros() / tot
	}
	orchAvg /= float64(len(svcs))
	res.Linef("")
	res.Linef("average orchestration share %.1f%% (paper: 2.2%%; RELIEF ~10%%)",
		100*res.Set("avg_orch_share", orchAvg))
	return res, nil
}

// GlueInstructions reproduces §VII-B.2: output-dispatcher instruction
// counts (paper: ~15 typical, ~18 average, ~50 worst case).
func GlueInstructions(o Options) (*Result, error) {
	res := newResult("glue")
	res.Linef("§VII-B.2 — output dispatcher glue instructions")
	spec := &workload.RunSpec{
		Shards:  o.Shards,
		Config:  config.Default(),
		Policy:  engine.AccelFlow(),
		Sources: workload.Mix(services.SocialNetwork(), 0.3, o.reqs()),
		Seed:    o.Seed,
		Check:   o.newCheck(),
	}
	run, err := spec.RunCtx(o.ctx())
	if err != nil {
		return nil, err
	}
	var instrs, passes uint64
	res.Linef("%-6s %10s %10s %8s", "accel", "passes", "instrs", "mean")
	for _, k := range config.AllAccelKinds() {
		st := run.Engine.Accels[k].Stats
		instrs += st.GlueInstrs
		passes += st.GluePasses
		res.Linef("%-6v %10d %10d %8.1f", k, st.GluePasses, st.GlueInstrs, st.MeanGlueInstrs())
	}
	mean := float64(instrs) / float64(passes)
	res.Linef("")
	res.Linef("mean instructions per dispatcher operation: %.1f (paper: 18)",
		res.Set("mean_instrs", mean))
	return res, nil
}

// AccelUtilization reproduces §VII-B.4: accelerator utilization at high
// load (paper: TCP 92%, (De)Encr 82%, RPC 68%, (De)Ser 73%, (De)Cmp
// 38%, LdB 71%).
func AccelUtilization(o Options) (*Result, error) {
	res := newResult("util")
	res.Linef("§VII-B.4 — accelerator utilization near peak")
	// Load the mix close to the AccelFlow saturation point.
	spec := &workload.RunSpec{
		Shards:  o.Shards,
		Config:  config.Default(),
		Policy:  engine.AccelFlow(),
		Sources: workload.Mix(services.SocialNetwork(), 3.1, o.reqs()*2),
		Seed:    o.Seed,
		Check:   o.newCheck(),
	}
	run, err := spec.RunCtx(o.ctx())
	if err != nil {
		return nil, err
	}
	for _, k := range config.AllAccelKinds() {
		u := run.Engine.Accels[k].PEs.Utilization(run.Elapsed)
		res.Linef("%-6v %5.1f%%", k, 100*res.Set(k.String(), u))
	}
	res.Linef("paper: TCP 92%%, (De)Encr 82%%, RPC 68%%, (De)Ser 73%%, (De)Cmp 38%%, LdB 71%%")
	return res, nil
}

// EnergyReport reproduces §VII-B.5: energy vs Non-acc (paper: -74%),
// performance per watt (7.2x Non-acc, 2.1x RELIEF), and the 2.4MB of
// queue memory.
func EnergyReport(o Options) (*Result, error) {
	res := newResult("energy")
	res.Linef("§VII-B.5 — power, energy, and memory")
	pm := energy.DefaultPower()
	type row struct {
		name string
		rep  energy.Report
		done uint64
	}
	var rows []row
	for _, pol := range []engine.Policy{engine.NonAcc(), engine.RELIEF(), engine.AccelFlow()} {
		spec := &workload.RunSpec{
			Shards:  o.Shards,
			Config:  config.Default(),
			Policy:  pol,
			Sources: workload.Mix(services.SocialNetwork(), 1.0, o.reqs()*2),
			Seed:    o.Seed,
			Check:   o.newCheck(),
		}
		run, err := spec.RunCtx(o.ctx())
		if err != nil {
			return nil, err
		}
		rep := energy.Integrate(pm, run.Engine, run.Elapsed)
		rows = append(rows, row{pol.Name, rep, run.Completed})
		res.Linef("%-10s energy %8.3fJ  avg power %6.1fW  perf/W %8.2f req/s/W",
			pol.Name, res.Set(pol.Name+"/energyJ", rep.TotalJ()), rep.AvgPowerW(),
			res.Set(pol.Name+"/perfperW", energy.PerfPerWatt(run.Completed, rep)))
	}
	af, na, rl := rows[2], rows[0], rows[1]
	eRed := 1 - af.rep.TotalJ()/na.rep.TotalJ()
	res.Linef("")
	res.Linef("energy vs Non-acc: -%.1f%% (paper -74%%)", 100*res.Set("energy_reduction", eRed))
	res.Linef("perf/W: %.1fx Non-acc (paper 7.2x), %.1fx RELIEF (paper 2.1x)",
		energyRatio(af, na), energyRatio(af, rl))
	res.Linef("AccelFlow queue memory: %.1f MB (paper 2.4MB)",
		res.Set("queue_mb", float64(energy.QueueMemoryBytes(config.Default()))/1e6))
	return res, nil
}

func energyRatio(a, b struct {
	name string
	rep  energy.Report
	done uint64
}) float64 {
	pa := energy.PerfPerWatt(a.done, a.rep)
	pb := energy.PerfPerWatt(b.done, b.rep)
	if pb == 0 {
		return 0
	}
	return pa / pb
}

// HighOverheadEvents reproduces §VII-B.6: the frequency of CPU
// fallbacks (overflow-full 1.4% avg / 5.9% peak), page faults, TCP
// timeouts (3.2 per million requests), and TLB misses.
func HighOverheadEvents(o Options) (*Result, error) {
	res := newResult("events")
	res.Linef("§VII-B.6 — high-overhead event frequency")
	for _, load := range []struct {
		name  string
		scale float64
	}{{"production", 1.0}, {"peak", 3.0}} {
		spec := &workload.RunSpec{
			Shards:  o.Shards,
			Config:  config.Default(),
			Policy:  engine.AccelFlow(),
			Sources: workload.Mix(services.SocialNetwork(), load.scale, o.reqs()*2),
			Seed:    o.Seed,
			Check:   o.newCheck(),
		}
		run, err := spec.RunCtx(o.ctx())
		if err != nil {
			return nil, err
		}
		e := run.Engine
		var invocations, overflows, tlbA, tlbM, faults uint64
		for _, k := range config.AllAccelKinds() {
			st := e.Accels[k].Stats
			invocations += st.Invocations
			overflows += st.Overflows
			tlbA += e.Accels[k].TLB.Accesses
			tlbM += e.Accels[k].TLB.Misses
			faults += e.Accels[k].TLB.PageFaults
		}
		fallbackPct := 100 * float64(e.Stats.FallbacksQueue+overflows) / float64(invocations+1)
		res.Linef("%-10s: overflow/fallback %5.2f%% of invocations; timeouts %.1f/M req; page faults %.2f/M invocations; TLB miss %.2f%%",
			load.name,
			res.Set(load.name+"/fallback_pct", fallbackPct),
			res.Set(load.name+"/timeouts_per_m", 1e6*float64(e.Stats.Timeouts)/float64(run.Completed+1)),
			1e6*float64(faults)/float64(invocations+1),
			100*float64(tlbM)/float64(tlbA+1))
	}
	res.Linef("paper: overflow 1.4%% avg / 5.9%% peak; TCP timeouts 3.2/M; page faults 0.13/M instr")
	return res, nil
}

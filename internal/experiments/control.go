package experiments

import (
	"fmt"

	"accelflow/internal/config"
	"accelflow/internal/control"
	"accelflow/internal/engine"
	"accelflow/internal/fault"
	"accelflow/internal/services"
	"accelflow/internal/sim"
	"accelflow/internal/workload"
)

// controlSLOUs is the P99 target (microseconds) the three control
// experiments share: comfortably above AccelFlow's unloaded mixed-
// workload P99 (~220-245 us, see fig11/resilience), so the baseline
// attains it and surges or fault bursts are what break it.
const controlSLOUs = 300.0

// surgeScales are the swept load multipliers for the SLO-attainment
// experiment: 1x is the nominal Alibaba-rate mix, the rest are
// surges.
func surgeScales(quick bool) []float64 {
	if quick {
		return []float64{1, 4}
	}
	return []float64{1, 2, 4}
}

// surgeSpec builds one SLO-surge cell: the AccelFlow server under a
// scaled SocialNetwork mix, optionally with the controller attached
// (PE autoscaler against utilization and the shared SLO, plus
// queue-depth load shedding as the last-ditch valve).
func surgeSpec(scale float64, controlled bool, n int, seed int64) *workload.RunSpec {
	spec := &workload.RunSpec{
		Config:  config.Default(),
		Policy:  engine.AccelFlow(),
		Sources: workload.Mix(services.SocialNetwork(), scale, n),
		Seed:    seed,
	}
	if controlled {
		spec.Control = &control.Spec{
			Autoscale: &control.AutoscaleSpec{
				Target:   control.TargetPE,
				UpUtil:   0.60,
				DownUtil: 0.15,
				SLOUs:    controlSLOUs,
				MaxAdd:   8,
			},
			Shed: &control.ShedSpec{Queue: 96},
		}
	}
	return spec
}

// SLOSurge measures SLO attainment under traffic surges, static
// provisioning vs the dynamic controller: attainment (share of served
// requests within the 300 us P99 target), P99, shed share, and scale
// actions per (surge, mode) cell. Deterministic at any parallelism
// and shard count.
func SLOSurge(o Options) (*Result, error) {
	res := newResult("slosurge")
	res.Linef("SLO attainment vs traffic surge — static vs controller (SLO %.0f us)", controlSLOUs)
	scales := surgeScales(o.Quick)
	modes := []struct {
		name       string
		controlled bool
	}{{"static", false}, {"ctl", true}}

	type out struct{ p99, attainPct, shedPct, scaleUps float64 }
	cells := make([]Cell[out], 0, len(scales)*len(modes))
	for _, scale := range scales {
		for _, m := range modes {
			cells = append(cells, Cell[out]{
				Key: fmt.Sprintf("slosurge/%s/x%g", m.name, scale),
				Run: func(seed int64) (out, error) {
					spec := surgeSpec(scale, m.controlled, o.reqs(), seed)
					spec.Check = o.newCheck()
					spec.Shards = o.Shards
					run, err := spec.RunCtx(o.ctx())
					if err != nil {
						return out{}, err
					}
					served := run.All.Count()
					attain := 0.0
					if served > 0 {
						attain = 100 * float64(run.All.Below(sim.FromMicros(controlSLOUs))) / float64(served)
					}
					arrivals := float64(served) + float64(run.Shed)
					scaleUps := 0.0
					if run.Control != nil {
						scaleUps = float64(run.Control.ScaleUps)
					}
					return out{
						p99:       run.All.P99().Micros(),
						attainPct: attain,
						shedPct:   100 * float64(run.Shed) / arrivals,
						scaleUps:  scaleUps,
					}, nil
				},
			})
		}
	}
	outs, err := RunCells(o, cells)
	if err != nil {
		return nil, err
	}
	i := 0
	for _, scale := range scales {
		for _, m := range modes {
			key := fmt.Sprintf("%s/x%g", m.name, scale)
			res.Linef("%-6s x%-3g: P99 %8.1f us, attain %6.2f%%, shed %5.2f%%, scale-ups %3.0f",
				m.name, scale,
				res.Set(key+"/p99us", outs[i].p99),
				res.Set(key+"/attain_pct", outs[i].attainPct),
				res.Set(key+"/shed_pct", outs[i].shedPct),
				res.Set(key+"/scaleups", outs[i].scaleUps))
			i++
		}
	}
	res.Linef("controller: PE autoscaler (up 0.60 / down 0.15, +8 ceiling) + queue-96 shedding")
	return res, nil
}

// overprovLoad is the elevated steady load the cost experiment runs
// at: enough pressure that extra PEs matter, below surge collapse.
const overprovLoad = 2.0

// overprovModes are the provisioning strategies compared: static
// fleets with 0/+4/+8 PEs per kind over the default, and the
// autoscaler allowed the same +8 ceiling but paying for it only when
// load demands.
func overprovModes() []struct {
	name   string
	extra  int
	scaled bool
} {
	return []struct {
		name   string
		extra  int
		scaled bool
	}{
		{"static+0", 0, false},
		{"static+4", 4, false},
		{"static+8", 8, false},
		{"autoscale", 0, true},
	}
}

// Overprovision measures the cost-of-overprovisioning curve: P99 and
// provisioned PE capacity (PE-microseconds per served request, the
// exact ServerArea integral summed over every accelerator pool) for
// static headroom vs the autoscaler at the same ceiling.
func Overprovision(o Options) (*Result, error) {
	res := newResult("overprov")
	res.Linef("Cost of overprovisioning at x%g load — provisioned PE-us per request", overprovLoad)
	modes := overprovModes()

	type out struct{ p99, costPEUs, scaleUps float64 }
	cells := make([]Cell[out], 0, len(modes))
	for _, m := range modes {
		cells = append(cells, Cell[out]{
			Key: "overprov/" + m.name,
			Run: func(seed int64) (out, error) {
				cfg := config.Default()
				cfg.PEsPerAccel += m.extra
				spec := &workload.RunSpec{
					Config:  cfg,
					Policy:  engine.AccelFlow(),
					Sources: workload.Mix(services.SocialNetwork(), overprovLoad, o.reqs()),
					Seed:    seed,
					Check:   o.newCheck(),
					Shards:  o.Shards,
				}
				if m.scaled {
					spec.Control = &control.Spec{Autoscale: &control.AutoscaleSpec{
						Target:   control.TargetPE,
						UpUtil:   0.60,
						DownUtil: 0.15,
						SLOUs:    controlSLOUs,
						MaxAdd:   8,
						// Idle pools shrink below base too: the cost curve
						// is the point of allowing it.
						MaxRemove: 4,
					}}
				}
				run, err := spec.RunCtx(o.ctx())
				if err != nil {
					return out{}, err
				}
				var capArea sim.Time
				for _, kd := range config.AllAccelKinds() {
					capArea += run.Engine.Accels[kd].PEs.ServerArea()
				}
				served := float64(run.All.Count())
				if served == 0 {
					served = 1
				}
				scaleUps := 0.0
				if run.Control != nil {
					scaleUps = float64(run.Control.ScaleUps)
				}
				return out{
					p99:      run.All.P99().Micros(),
					costPEUs: capArea.Micros() / served,
					scaleUps: scaleUps,
				}, nil
			},
		})
	}
	outs, err := RunCells(o, cells)
	if err != nil {
		return nil, err
	}
	for i, m := range modes {
		res.Linef("%-10s: P99 %8.1f us, capacity %8.1f PE-us/req, scale-ups %3.0f",
			m.name,
			res.Set(m.name+"/p99us", outs[i].p99),
			res.Set(m.name+"/cost_pe_us", outs[i].costPEUs),
			res.Set(m.name+"/scaleups", outs[i].scaleUps))
	}
	res.Linef("capacity integrates configured servers over time, so scaling down is what saves")
	return res, nil
}

// recoveryBurst is the fault burst every recovery cell endures: a
// dense train of degrade/fail windows (expected ~40) confined to the
// first millisecond, harsh enough to breach the SLO at any seed's
// window placement.
func recoveryBurst() *fault.Spec {
	return &fault.Spec{
		Rate:          40000,
		MeanWindow:    150 * sim.Microsecond,
		Horizon:       sim.Millisecond,
		PEDegradeFrac: 0.75,
		PEFail:        true,
	}
}

// Recovery measures recovery time after a fault burst: both modes
// watch the 300 us SLO over a sliding window, but "monitor" may not
// act (zero scale bounds) while "ctl" may scale PE pools up and grant
// retries. Recovery time is how long past the end of the burst the
// last SLO-breaching tick lands.
func Recovery(o Options) (*Result, error) {
	res := newResult("recovery")
	res.Linef("Recovery after a 1 ms fault burst (rate 40000/s) — last SLO breach past burst end")
	burst := recoveryBurst()
	modes := []struct {
		name string
		act  bool
	}{{"monitor", false}, {"ctl", true}}

	// Both modes run the identical (seed-shared) burst and arrival
	// schedule so the controller is the only difference between cells;
	// the per-cell derived seed is deliberately unused.
	shared := sim.DeriveSeed(o.Seed, "recovery/burst")
	type out struct{ recoveryUs, p99, breachTicks, scaleUps float64 }
	cells := make([]Cell[out], 0, len(modes))
	for _, m := range modes {
		cells = append(cells, Cell[out]{
			Key: "recovery/" + m.name,
			Run: func(int64) (out, error) {
				cfg := config.Default()
				cfg.EnqueueBackoff = 200 * sim.Nanosecond
				cfg.TimeoutRearms = 1
				ctl := &control.Spec{Autoscale: &control.AutoscaleSpec{
					// Cores, not PEs: fail windows push work to CPU
					// fallback, so the burst's real bottleneck is the
					// core pool.
					Target:   control.TargetCores,
					UpUtil:   0.60,
					DownUtil: 0.15,
					SLOUs:    controlSLOUs,
				}}
				if m.act {
					ctl.Autoscale.MaxAdd = 16
					ctl.Retry = &control.RetrySpec{Budget: 32}
				}
				spec := &workload.RunSpec{
					Config:  cfg,
					Policy:  engine.AccelFlow(),
					Sources: workload.Mix(services.SocialNetwork(), 1.5, o.reqs()),
					Seed:    shared,
					Faults:  burst,
					Control: ctl,
					Check:   o.newCheck(),
					Shards:  o.Shards,
				}
				run, err := spec.RunCtx(o.ctx())
				if err != nil {
					return out{}, err
				}
				recovery := 0.0
				if lb := run.Control.LastBreach; lb > burst.Horizon {
					recovery = (lb - burst.Horizon).Micros()
				}
				return out{
					recoveryUs:  recovery,
					p99:         run.All.P99().Micros(),
					breachTicks: float64(run.Control.BreachTicks),
					scaleUps:    float64(run.Control.ScaleUps),
				}, nil
			},
		})
	}
	outs, err := RunCells(o, cells)
	if err != nil {
		return nil, err
	}
	for i, m := range modes {
		res.Linef("%-8s: recovery %8.1f us, P99 %8.1f us, breach ticks %4.0f, scale-ups %3.0f",
			m.name,
			res.Set(m.name+"/recovery_us", outs[i].recoveryUs),
			res.Set(m.name+"/p99us", outs[i].p99),
			res.Set(m.name+"/breach_ticks", outs[i].breachTicks),
			res.Set(m.name+"/scaleups", outs[i].scaleUps))
	}
	res.Linef("monitor mode shares the controller's tick and windows but has zero scale bounds")
	return res, nil
}

package experiments

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"

	"accelflow/internal/config"
	"accelflow/internal/engine"
	"accelflow/internal/services"
	"accelflow/internal/workload"
)

// TestRunCellsZeroCells pins the zero-cell fast path: no workers are
// spawned, an empty result comes back immediately, and a cancelled
// context is still honoured.
func TestRunCellsZeroCells(t *testing.T) {
	for _, tc := range []struct {
		name      string
		cancelled bool
		wantErr   error
	}{
		{name: "live context", cancelled: false, wantErr: nil},
		{name: "cancelled context", cancelled: true, wantErr: context.Canceled},
	} {
		t.Run(tc.name, func(t *testing.T) {
			ctx, cancel := context.WithCancel(context.Background())
			if tc.cancelled {
				cancel()
			} else {
				defer cancel()
			}
			res, err := RunCells(Options{Ctx: ctx}, []Cell[int]{})
			if !errors.Is(err, tc.wantErr) {
				t.Fatalf("err = %v, want %v", err, tc.wantErr)
			}
			if len(res) != 0 {
				t.Fatalf("got %d results from a zero-cell sweep", len(res))
			}
		})
	}
}

// TestRunCellsPreCancelled: a context cancelled before the sweep
// starts runs zero cells and reports the cancellation at any
// parallelism.
func TestRunCellsPreCancelled(t *testing.T) {
	for _, par := range []int{1, 8} {
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		var ran atomic.Int64
		cells := []Cell[int]{
			{Key: "a", Run: func(int64) (int, error) { ran.Add(1); return 1, nil }},
			{Key: "b", Run: func(int64) (int, error) { ran.Add(1); return 2, nil }},
		}
		_, err := RunCells(Options{Parallelism: par, Ctx: ctx}, cells)
		if !errors.Is(err, context.Canceled) {
			t.Errorf("parallelism %d: err = %v, want context.Canceled", par, err)
		}
		if n := ran.Load(); n != 0 {
			t.Errorf("parallelism %d: %d cells ran after pre-cancel", par, n)
		}
	}
}

// TestRunCellsCancelStopsDispatch: with one worker, cancelling from
// inside the first cell stops every later cell from being dispatched.
func TestRunCellsCancelStopsDispatch(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var ran atomic.Int64
	var events atomic.Int64
	cells := []Cell[int]{
		{Key: "first", Run: func(int64) (int, error) {
			ran.Add(1)
			cancel()
			return 1, nil
		}},
		{Key: "second", Run: func(int64) (int, error) { ran.Add(1); return 2, nil }},
		{Key: "third", Run: func(int64) (int, error) { ran.Add(1); return 3, nil }},
	}
	o := Options{
		Parallelism: 1,
		Ctx:         ctx,
		OnCell:      func(CellEvent) { events.Add(1) },
	}
	_, err := RunCells(o, cells)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n := ran.Load(); n != 1 {
		t.Fatalf("%d cells ran, want exactly the cancelling one", n)
	}
	// Only dispatched cells emit progress events; after the cancel the
	// feeder may still hand a cell or two to the (skipping) worker.
	if n := events.Load(); n < 1 || n > int64(len(cells)) {
		t.Fatalf("%d OnCell events for a %d-cell sweep", n, len(cells))
	}
}

// TestRunCellsRealFailureBeatsCancel: the lowest-indexed genuine cell
// failure wins over cancellation errors, so a cancelled sweep still
// reports failures deterministically.
func TestRunCellsRealFailureBeatsCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	boom := errors.New("boom")
	cells := []Cell[int]{
		{Key: "bad", Run: func(int64) (int, error) {
			cancel() // later cells see a dead context
			return 0, boom
		}},
		{Key: "never", Run: func(int64) (int, error) { return 1, nil }},
	}
	_, err := RunCells(Options{Parallelism: 1, Ctx: ctx}, cells)
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the genuine cell failure", err)
	}
}

// TestRunManyCancelled: experiments not yet started when the context
// dies report the cancellation instead of running.
func TestRunManyCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	outs := RunMany([]string{"fig19", "area"}, Options{Requests: 40, Quick: true, Ctx: ctx})
	for _, out := range outs {
		if !errors.Is(out.Err, context.Canceled) {
			t.Errorf("%s: err = %v, want context.Canceled", out.ID, out.Err)
		}
	}
}

// TestRunSpecRunCtxPreCancelled: the workload layer honours an
// already-cancelled context without executing a single kernel event.
func TestRunSpecRunCtxPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	spec := &workload.RunSpec{
		Config:  config.Default(),
		Policy:  engine.AccelFlow(),
		Sources: workload.Mix(services.SocialNetwork(), 1.0, 100),
		Seed:    1,
	}
	res, err := spec.RunCtx(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res != nil {
		t.Fatal("cancelled run returned a partial result")
	}
}

// TestRunSpecRunCtxBackgroundIdentical: a background context changes
// nothing — Run and RunCtx produce identical metrics.
func TestRunSpecRunCtxBackgroundIdentical(t *testing.T) {
	mk := func() *workload.RunSpec {
		return &workload.RunSpec{
			Config:  config.Default(),
			Policy:  engine.AccelFlow(),
			Sources: workload.Mix(services.SocialNetwork(), 1.0, 200),
			Seed:    3,
		}
	}
	a, err := mk().Run()
	if err != nil {
		t.Fatal(err)
	}
	b, err := mk().RunCtx(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if a.Completed != b.Completed || a.Elapsed != b.Elapsed ||
		a.All.P99() != b.All.P99() || a.AccelCount != b.AccelCount {
		t.Fatalf("RunCtx(Background) diverged from Run: %+v vs %+v",
			a.Completed, b.Completed)
	}
}

// Package experiments contains one runner per table and figure of the
// paper's evaluation (see DESIGN.md §3 for the index). Each runner
// returns a formatted report plus machine-readable series used by the
// tests and EXPERIMENTS.md.
package experiments

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"accelflow/internal/check"
	"accelflow/internal/config"
	"accelflow/internal/engine"
	"accelflow/internal/services"
	"accelflow/internal/workload"
)

// Options scales an experiment run.
type Options struct {
	// Requests is the per-simulation request budget.
	Requests int
	// Seed makes runs reproducible. Every simulation cell derives its
	// own stream from (Seed, cell key) — see sweep.go — so the same
	// Options produce bit-identical Values at any Parallelism.
	Seed int64
	// Quick shrinks workloads for tests and CI.
	Quick bool
	// Parallelism bounds the sweep worker pool; <= 0 means
	// runtime.GOMAXPROCS(0). It never affects results, only wall clock.
	Parallelism int
	// Ctx, when non-nil, cancels a run cooperatively: RunCells stops
	// dispatching new cells, in-flight simulations stop at their next
	// kernel check, and the run reports Ctx's error. A nil Ctx means
	// context.Background() — no cancellation, bit-identical behavior to
	// before the field existed.
	Ctx context.Context
	// OnCell, when non-nil, is invoked once per finished sweep cell
	// (including failed ones). Calls arrive from concurrent worker
	// goroutines, so the callback must be safe for concurrent use and
	// must not block: it is progress plumbing for the serving layer,
	// not a results channel — cell outputs still only travel through
	// RunCells return values.
	OnCell func(CellEvent)
	// Check attaches a fresh runtime invariant checker to every
	// simulation the experiment runs (the accelsim -check flag).
	// Checking is read-only — Values are bit-identical with it on —
	// but any violated invariant fails the cell with a structured
	// error instead of reporting numbers from broken physics.
	Check bool
	// Shards routes every simulation through the sharded kernel
	// coordinator (the accelsim -shards flag). A registry experiment
	// simulates one server — one resource domain — so Shards never
	// changes Values: sharded output is byte-identical to serial at
	// any shard count (pinned by TestShardsDoNotChangeResults).
	Shards int
	// Cache, when non-nil, memoizes finished sweep-cell outputs across
	// runs: RunCells consults it before executing a cell and stores each
	// successful cell's output after. Because cell outputs are pure
	// functions of (Options identity, cell key), the caller owns the key
	// namespace — it MUST scope the cache to everything outside the cell
	// key that affects outputs (experiment ID, Requests, Seed, Quick),
	// or cached values from a different sweep would be replayed. The
	// serving layer uses this so a cancelled sweep's completed cells are
	// reusable on resubmission. Implementations must be safe for
	// concurrent use (cells call from worker goroutines); cached values
	// are handed back by reference, so they must be treated as
	// single-owner data — the serve scheduler serializes same-namespace
	// runs through singleflight rather than locking cell outputs.
	Cache CellCache
}

// CellCache memoizes sweep-cell outputs for RunCells (see
// Options.Cache for the key-namespace and ownership contract). GetCell
// returns a previously stored output; PutCell stores one. Values are
// opaque: RunCells type-asserts on the way out and silently re-runs
// the cell when the cached value has the wrong dynamic type.
type CellCache interface {
	GetCell(key string) (any, bool)
	PutCell(key string, v any)
}

// newCheck returns a fresh checker when checking is enabled, else nil.
// Each simulation cell needs its own instance: cells run concurrently
// and a Checker covers exactly one run.
func (o Options) newCheck() *check.Checker {
	if !o.Check {
		return nil
	}
	return check.New()
}

// CellEvent reports one finished sweep cell to Options.OnCell.
type CellEvent struct {
	// Key is the cell's sweep key, Index its submission position, and
	// Total the sweep's cell count.
	Key          string
	Index, Total int
	// Err is the cell's error (nil on success).
	Err error
	// Cached marks a cell served from Options.Cache instead of run.
	Cached bool
}

// ctx resolves Options.Ctx, defaulting to the background context.
func (o Options) ctx() context.Context {
	if o.Ctx != nil {
		return o.Ctx
	}
	return context.Background()
}

// DefaultOptions is the CLI default.
func DefaultOptions() Options { return Options{Requests: 2500, Seed: 1} }

func (o Options) reqs() int {
	n := o.Requests
	if n <= 0 {
		n = 2500
	}
	if o.Quick && n > 400 {
		return 400
	}
	return n
}

// Result is one experiment's output. Values — named scalar outcomes
// such as "AccelFlow/CPost/p99us" — are the source of truth: the
// golden tests, the paper-shape checks, and EXPERIMENTS.md all read
// them. The human-readable report is a list of Lines rendered from
// those values (plus layout-only context); Text joins them.
type Result struct {
	Name string
	// Values holds named scalar outcomes, e.g. "AccelFlow/CPost/p99us".
	Values map[string]float64
	// Lines is the rendered report, one entry per line (no newlines).
	Lines []string
}

func newResult(name string) *Result {
	return &Result{Name: name, Values: map[string]float64{}}
}

// Set records a named scalar outcome and returns it, so a report line
// can record and render the same number in one expression:
//
//	res.Linef("p99 -%5.1f%%", 100*res.Set("reduction_p99", rp))
func (r *Result) Set(key string, v float64) float64 {
	r.Values[key] = v
	return v
}

// Get reads a recorded value (zero when absent).
func (r *Result) Get(key string) float64 { return r.Values[key] }

// Linef appends one rendered line to the report. The format string
// must not contain newlines; use one call per line (an empty format
// makes a blank separator line).
func (r *Result) Linef(format string, args ...interface{}) {
	r.Lines = append(r.Lines, fmt.Sprintf(format, args...))
}

// Text renders the report.
func (r *Result) Text() string {
	if len(r.Lines) == 0 {
		return ""
	}
	return strings.Join(r.Lines, "\n") + "\n"
}

// Runner executes one experiment.
type Runner func(Options) (*Result, error)

// Registry maps experiment IDs to runners. IDs match DESIGN.md §3.
var Registry = map[string]Runner{
	"fig1":       Fig1Breakdown,
	"fig3":       Fig3OrchOverhead,
	"tab1":       Tab1Connectivity,
	"q2":         Q2BranchStats,
	"fig5":       Fig5DataSizes,
	"tab2":       Tab2Traces,
	"tab3":       Tab3Parameters,
	"tab4":       Tab4Paths,
	"fig11":      Fig11Latency,
	"fig12":      Fig12Loads,
	"fig13":      Fig13Ablation,
	"fig14":      Fig14Throughput,
	"fig15":      Fig15Coarse,
	"fig16":      Fig16Serverless,
	"fig17":      Fig17Components,
	"glue":       GlueInstructions,
	"util":       AccelUtilization,
	"energy":     EnergyReport,
	"events":     HighOverheadEvents,
	"fig18":      Fig18Chiplets,
	"sens2":      Sens2InterChiplet,
	"fig19":      Fig19PECount,
	"fig20":      Fig20Generations,
	"sens5":      Sens5Speedups,
	"area":       AreaAccounting,
	"resilience": Resilience,
	"slosurge":   SLOSurge,
	"overprov":   Overprovision,
	"recovery":   Recovery,
}

// IDs returns the registered experiment names, sorted.
func IDs() []string {
	out := make([]string, 0, len(Registry))
	for k := range Registry {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// architectures returns the five evaluated servers (Fig. 11's order).
func architectures() []engine.Policy {
	return []engine.Policy{
		engine.NonAcc(),
		engine.CPUCentric(),
		engine.RELIEF(),
		engine.Cohort(engine.DefaultCohortPairs()),
		engine.AccelFlow(),
	}
}

// runOne simulates one service under one policy with the given arrival
// process. Options carries the run context (cooperative cancellation,
// see RunSpec.RunCtx) and whether to attach an invariant checker.
func runOne(o Options, cfg *config.Config, pol engine.Policy, svc *services.Service, arr workload.Arrivals, n int, seed int64) (*workload.RunResult, error) {
	spec := &workload.RunSpec{
		Shards:  o.Shards,
		Config:  cfg,
		Policy:  pol,
		Sources: workload.SingleService(svc, arr, n),
		Seed:    seed,
		Check:   o.newCheck(),
	}
	return spec.RunCtx(o.ctx())
}

// unloadedMean measures a service's mean on-server latency (excluding
// remote-peer waits) with one request in flight at a time.
func unloadedMean(o Options, cfg *config.Config, pol engine.Policy, svc *services.Service, seed int64) (float64, error) {
	res, err := runOne(o, cfg, pol, svc, workload.Poisson{RPS: 50}, 60, seed)
	if err != nil {
		return 0, err
	}
	return res.Net.Mean().Micros(), nil
}

// svcSubset trims the service list under Quick mode to keep tests fast.
func svcSubset(o Options, svcs []*services.Service) []*services.Service {
	if !o.Quick || len(svcs) <= 3 {
		return svcs
	}
	return svcs[:3]
}

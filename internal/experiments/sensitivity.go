package experiments

import (
	"fmt"

	"accelflow/internal/config"
	"accelflow/internal/energy"
	"accelflow/internal/engine"
	"accelflow/internal/services"
	"accelflow/internal/workload"
)

// avgP99 runs the full SocialNetwork mix on one server at Alibaba-like
// rates (the paper's setup) and returns the average per-service P99 in
// microseconds. The seed comes from the caller's sweep cell, not from
// Options, so cells stay independent of each other.
func avgP99(o Options, cfg *config.Config, pol engine.Policy, seed int64) (float64, error) {
	svcs := services.SocialNetwork()
	sources := workload.Mix(svcs, 1.0, o.reqs()*len(svcs))
	run, err := workload.Run(cfg, pol, sources, seed, nil, nil)
	if err != nil {
		return 0, err
	}
	var sum float64
	for _, svc := range svcs {
		sum += run.PerService[svc.Name].P99().Micros()
	}
	return sum / float64(len(svcs)), nil
}

// Fig18Chiplets reproduces Fig. 18: P99 under the five chiplet
// organizations (paper: 2->6 chiplets raises tail latency by 14%).
func Fig18Chiplets(o Options) (*Result, error) {
	res := newResult("fig18")
	res.addf("Fig. 18 — P99 (us) by chiplet organization (AccelFlow)\n")
	plans := config.AllChipletPlans()
	cells := make([]Cell[float64], 0, len(plans))
	for _, plan := range plans {
		plan := plan
		cells = append(cells, Cell[float64]{
			Key: "fig18/" + plan.String(),
			Run: func(seed int64) (float64, error) {
				cfg := config.Default()
				if err := cfg.ApplyChipletPlan(plan); err != nil {
					return 0, err
				}
				return avgP99(o, cfg, engine.AccelFlow(), seed)
			},
		})
	}
	outs, err := RunCells(o, cells)
	if err != nil {
		return nil, err
	}
	for i, plan := range plans {
		res.addf("%-10v %10.0f\n", plan, outs[i])
		res.Values[plan.String()] = outs[i]
	}
	if v2, v6 := res.Values["2-chiplet"], res.Values["6-chiplet"]; v2 > 0 {
		res.addf("\n6- vs 2-chiplet: +%.1f%% (paper +14%%)\n", 100*(v6/v2-1))
		res.Values["increase_6v2"] = v6/v2 - 1
	}
	return res, nil
}

// Sens2InterChiplet reproduces §VII-C.2: inter-chiplet latency swept
// from 20 to 100 cycles for the 2- and 6-chiplet designs (paper: 60 ->
// 100 cycles on 6 chiplets raises tail latency 45%).
func Sens2InterChiplet(o Options) (*Result, error) {
	res := newResult("sens2")
	res.addf("§VII-C.2 — P99 (us) vs inter-chiplet latency (cycles)\n")
	lats := []int{20, 60, 100}
	if o.Quick {
		lats = []int{60, 100}
	}
	res.addf("%-10s", "plan")
	for _, l := range lats {
		res.addf(" %8dcy", l)
	}
	res.addf("\n")
	plans := []config.ChipletPlan{config.TwoChiplets, config.SixChiplets}
	var cells []Cell[float64]
	for _, plan := range plans {
		for _, lat := range lats {
			plan, lat := plan, lat
			cells = append(cells, Cell[float64]{
				Key: fmt.Sprintf("sens2/%v/%dcy", plan, lat),
				Run: func(seed int64) (float64, error) {
					cfg := config.Default()
					if err := cfg.ApplyChipletPlan(plan); err != nil {
						return 0, err
					}
					cfg.InterChipletCycles = lat
					return avgP99(o, cfg, engine.AccelFlow(), seed)
				},
			})
		}
	}
	outs, err := RunCells(o, cells)
	if err != nil {
		return nil, err
	}
	for pi, plan := range plans {
		res.addf("%-10v", plan)
		for li, lat := range lats {
			v := outs[pi*len(lats)+li]
			res.addf(" %10.0f", v)
			res.Values[fmt.Sprintf("%v/%dcy", plan, lat)] = v
		}
		res.addf("\n")
	}
	if v60, v100 := res.Values["6-chiplet/60cy"], res.Values["6-chiplet/100cy"]; v60 > 0 {
		res.addf("\n6-chiplet 60->100 cycles: +%.1f%% (paper +45%%)\n", 100*(v100/v60-1))
		res.Values["increase_6c_100v60"] = v100/v60 - 1
	}
	return res, nil
}

// Fig19PECount reproduces Fig. 19: P99 with 2/4/8 PEs per accelerator,
// plus the fallback shares the paper quotes (16%/39% of Encr requests
// denied at 4/2 PEs; tail +20.0%/+35.7%).
func Fig19PECount(o Options) (*Result, error) {
	res := newResult("fig19")
	res.addf("Fig. 19 — P99 (us) and fallbacks by PEs per accelerator\n")
	res.addf("%-6s %10s %12s\n", "PEs", "p99(us)", "fallback%")
	peCounts := []int{8, 4, 2}
	type peStats struct{ p99, fb float64 }
	cells := make([]Cell[peStats], 0, len(peCounts))
	for _, pes := range peCounts {
		pes := pes
		cells = append(cells, Cell[peStats]{
			Key: fmt.Sprintf("fig19/%dpe", pes),
			Run: func(seed int64) (peStats, error) {
				cfg := config.Default()
				cfg.PEsPerAccel = pes
				svcs := services.SocialNetwork()
				sources := workload.Mix(svcs, 1.0, o.reqs()*len(svcs))
				run, err := workload.Run(cfg, engine.AccelFlow(), sources, seed, nil, nil)
				if err != nil {
					return peStats{}, err
				}
				var p99sum float64
				for _, svc := range svcs {
					p99sum += run.PerService[svc.Name].P99().Micros()
				}
				var invocations, overflows uint64
				for _, k := range config.AllAccelKinds() {
					invocations += run.Engine.Accels[k].Stats.Invocations
					overflows += run.Engine.Accels[k].Stats.Overflows
				}
				return peStats{
					p99: p99sum / float64(len(svcs)),
					fb:  100 * float64(run.Engine.Stats.FallbacksQueue+overflows) / float64(invocations+1),
				}, nil
			},
		})
	}
	outs, err := RunCells(o, cells)
	if err != nil {
		return nil, err
	}
	for i, pes := range peCounts {
		res.addf("%-6d %10.0f %11.2f%%\n", pes, outs[i].p99, outs[i].fb)
		res.Values[fmt.Sprintf("%dpe/p99us", pes)] = outs[i].p99
		res.Values[fmt.Sprintf("%dpe/fallback_pct", pes)] = outs[i].fb
	}
	if v8 := res.Values["8pe/p99us"]; v8 > 0 {
		res.addf("\ntail increase: 4 PEs +%.1f%% (paper +20.0%%), 2 PEs +%.1f%% (paper +35.7%%)\n",
			100*(res.Values["4pe/p99us"]/v8-1), 100*(res.Values["2pe/p99us"]/v8-1))
		res.Values["increase_4pe"] = res.Values["4pe/p99us"]/v8 - 1
		res.Values["increase_2pe"] = res.Values["2pe/p99us"]/v8 - 1
	}
	return res, nil
}

// Fig20Generations reproduces Fig. 20: P99 for Non-acc, RELIEF, and
// AccelFlow across processor generations (paper: AccelFlow's advantage
// over RELIEF grows from 68.8% on Ice Lake to 71.7% on Emerald Rapids).
func Fig20Generations(o Options) (*Result, error) {
	res := newResult("fig20")
	res.addf("Fig. 20 — P99 (us) across processor generations\n")
	gens := config.AllGenerations()
	if o.Quick {
		gens = []config.Generation{config.Haswell, config.IceLake, config.EmeraldRapids}
	}
	pols := []engine.Policy{engine.NonAcc(), engine.RELIEF(), engine.AccelFlow()}
	res.addf("%-16s", "generation")
	for _, pol := range pols {
		res.addf(" %12s", pol.Name)
	}
	res.addf(" %10s\n", "AF v RELIEF")
	var cells []Cell[float64]
	for _, g := range gens {
		for _, pol := range pols {
			g, pol := g, pol
			cells = append(cells, Cell[float64]{
				Key: fmt.Sprintf("fig20/%v/%s", g, pol.Name),
				Run: func(seed int64) (float64, error) {
					cfg := config.Default()
					cfg.Generation = g
					return avgP99(o, cfg, pol, seed)
				},
			})
		}
	}
	outs, err := RunCells(o, cells)
	if err != nil {
		return nil, err
	}
	for gi, g := range gens {
		res.addf("%-16v", g)
		vals := map[string]float64{}
		for pi, pol := range pols {
			v := outs[gi*len(pols)+pi]
			vals[pol.Name] = v
			res.addf(" %12.0f", v)
			res.Values[fmt.Sprintf("%v/%s", g, pol.Name)] = v
		}
		red := 1 - vals["AccelFlow"]/vals["RELIEF"]
		res.addf("  -%8.1f%%\n", red*100)
		res.Values[fmt.Sprintf("%v/reduction", g)] = red
	}
	res.addf("\npaper: -68.8%% on IceLake growing to -71.7%% on EmeraldRapids\n")
	return res, nil
}

// Sens5Speedups reproduces §VII-C.5: scaling all accelerator speedups
// by 0.25x..4x (paper: AccelFlow's win over RELIEF grows from 1.4x at
// 0.25x speedups to 3.9x at 4x).
func Sens5Speedups(o Options) (*Result, error) {
	res := newResult("sens5")
	res.addf("§VII-C.5 — AccelFlow vs RELIEF P99 ratio as accelerator speedups scale\n")
	scales := []float64{0.25, 0.5, 1, 2, 4}
	if o.Quick {
		scales = []float64{0.25, 1, 4}
	}
	res.addf("%-8s %12s %12s %8s\n", "scale", "RELIEF", "AccelFlow", "gain")
	pols := []engine.Policy{engine.RELIEF(), engine.AccelFlow()}
	var cells []Cell[float64]
	for _, s := range scales {
		for _, pol := range pols {
			s, pol := s, pol
			cells = append(cells, Cell[float64]{
				Key: fmt.Sprintf("sens5/%.2fx/%s", s, pol.Name),
				Run: func(seed int64) (float64, error) {
					cfg := config.Default()
					cfg.SpeedupScale = s
					return avgP99(o, cfg, pol, seed)
				},
			})
		}
	}
	outs, err := RunCells(o, cells)
	if err != nil {
		return nil, err
	}
	for si, s := range scales {
		rl, af := outs[si*2], outs[si*2+1]
		gain := rl / af
		res.addf("%-8.2f %12.0f %12.0f %7.2fx\n", s, rl, af, gain)
		res.Values[fmt.Sprintf("%.2fx/gain", s)] = gain
	}
	res.addf("\npaper: 1.4x at 0.25x speedups, 2.2x at 1x, 3.9x at 4x\n")
	return res, nil
}

// AreaAccounting reproduces §VI's area table.
func AreaAccounting(Options) (*Result, error) {
	res := newResult("area")
	a := energy.Area()
	res.addf("§VI — area accounting (7nm)\n%s\n", energy.FormatArea(a))
	comb, accel, over := a.AccelFraction()
	res.Values["combined_frac"] = comb
	res.Values["accel_frac"] = accel
	res.Values["overhead_frac"] = over
	res.Values["accel_mm2"] = float64(a.AccelTotal())
	res.addf("paper: combined 29.0%%, accelerators 26.1%%, AccelFlow overhead <=2.9%%\n")
	return res, nil
}

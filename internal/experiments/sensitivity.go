package experiments

import (
	"fmt"
	"strings"

	"accelflow/internal/config"
	"accelflow/internal/energy"
	"accelflow/internal/engine"
	"accelflow/internal/services"
	"accelflow/internal/workload"
)

// avgP99 runs the full SocialNetwork mix on one server at Alibaba-like
// rates (the paper's setup) and returns the average per-service P99 in
// microseconds. The seed comes from the caller's sweep cell, not from
// Options, so cells stay independent of each other.
func avgP99(o Options, cfg *config.Config, pol engine.Policy, seed int64) (float64, error) {
	svcs := services.SocialNetwork()
	spec := &workload.RunSpec{
		Shards:  o.Shards,
		Config:  cfg,
		Policy:  pol,
		Sources: workload.Mix(svcs, 1.0, o.reqs()*len(svcs)),
		Seed:    seed,
		Check:   o.newCheck(),
	}
	run, err := spec.RunCtx(o.ctx())
	if err != nil {
		return 0, err
	}
	var sum float64
	for _, svc := range svcs {
		sum += run.PerService[svc.Name].P99().Micros()
	}
	return sum / float64(len(svcs)), nil
}

// Fig18Chiplets reproduces Fig. 18: P99 under the five chiplet
// organizations (paper: 2->6 chiplets raises tail latency by 14%).
func Fig18Chiplets(o Options) (*Result, error) {
	res := newResult("fig18")
	res.Linef("Fig. 18 — P99 (us) by chiplet organization (AccelFlow)")
	plans := config.AllChipletPlans()
	cells := make([]Cell[float64], 0, len(plans))
	for _, plan := range plans {
		plan := plan
		cells = append(cells, Cell[float64]{
			Key: "fig18/" + plan.String(),
			Run: func(seed int64) (float64, error) {
				cfg := config.Default()
				if err := cfg.ApplyChipletPlan(plan); err != nil {
					return 0, err
				}
				return avgP99(o, cfg, engine.AccelFlow(), seed)
			},
		})
	}
	outs, err := RunCells(o, cells)
	if err != nil {
		return nil, err
	}
	for i, plan := range plans {
		res.Linef("%-10v %10.0f", plan, res.Set(plan.String(), outs[i]))
	}
	if v2, v6 := res.Get("2-chiplet"), res.Get("6-chiplet"); v2 > 0 {
		res.Linef("")
		res.Linef("6- vs 2-chiplet: +%.1f%% (paper +14%%)", 100*res.Set("increase_6v2", v6/v2-1))
	}
	return res, nil
}

// Sens2InterChiplet reproduces §VII-C.2: inter-chiplet latency swept
// from 20 to 100 cycles for the 2- and 6-chiplet designs (paper: 60 ->
// 100 cycles on 6 chiplets raises tail latency 45%).
func Sens2InterChiplet(o Options) (*Result, error) {
	res := newResult("sens2")
	res.Linef("§VII-C.2 — P99 (us) vs inter-chiplet latency (cycles)")
	lats := []int{20, 60, 100}
	if o.Quick {
		lats = []int{60, 100}
	}
	hdr := fmt.Sprintf("%-10s", "plan")
	for _, l := range lats {
		hdr += fmt.Sprintf(" %8dcy", l)
	}
	res.Linef("%s", hdr)
	plans := []config.ChipletPlan{config.TwoChiplets, config.SixChiplets}
	var cells []Cell[float64]
	for _, plan := range plans {
		for _, lat := range lats {
			plan, lat := plan, lat
			cells = append(cells, Cell[float64]{
				Key: fmt.Sprintf("sens2/%v/%dcy", plan, lat),
				Run: func(seed int64) (float64, error) {
					cfg := config.Default()
					if err := cfg.ApplyChipletPlan(plan); err != nil {
						return 0, err
					}
					cfg.InterChipletCycles = lat
					return avgP99(o, cfg, engine.AccelFlow(), seed)
				},
			})
		}
	}
	outs, err := RunCells(o, cells)
	if err != nil {
		return nil, err
	}
	for pi, plan := range plans {
		row := fmt.Sprintf("%-10v", plan)
		for li, lat := range lats {
			row += fmt.Sprintf(" %10.0f", res.Set(fmt.Sprintf("%v/%dcy", plan, lat), outs[pi*len(lats)+li]))
		}
		res.Linef("%s", row)
	}
	if v60, v100 := res.Get("6-chiplet/60cy"), res.Get("6-chiplet/100cy"); v60 > 0 {
		res.Linef("")
		res.Linef("6-chiplet 60->100 cycles: +%.1f%% (paper +45%%)",
			100*res.Set("increase_6c_100v60", v100/v60-1))
	}
	return res, nil
}

// Fig19PECount reproduces Fig. 19: P99 with 2/4/8 PEs per accelerator,
// plus the fallback shares the paper quotes (16%/39% of Encr requests
// denied at 4/2 PEs; tail +20.0%/+35.7%).
func Fig19PECount(o Options) (*Result, error) {
	res := newResult("fig19")
	res.Linef("Fig. 19 — P99 (us) and fallbacks by PEs per accelerator")
	res.Linef("%-6s %10s %12s", "PEs", "p99(us)", "fallback%")
	peCounts := []int{8, 4, 2}
	type peStats struct{ p99, fb float64 }
	cells := make([]Cell[peStats], 0, len(peCounts))
	for _, pes := range peCounts {
		pes := pes
		cells = append(cells, Cell[peStats]{
			Key: fmt.Sprintf("fig19/%dpe", pes),
			Run: func(seed int64) (peStats, error) {
				cfg := config.Default()
				cfg.PEsPerAccel = pes
				svcs := services.SocialNetwork()
				spec := &workload.RunSpec{
					Shards:  o.Shards,
					Config:  cfg,
					Policy:  engine.AccelFlow(),
					Sources: workload.Mix(svcs, 1.0, o.reqs()*len(svcs)),
					Seed:    seed,
					Check:   o.newCheck(),
				}
				run, err := spec.RunCtx(o.ctx())
				if err != nil {
					return peStats{}, err
				}
				var p99sum float64
				for _, svc := range svcs {
					p99sum += run.PerService[svc.Name].P99().Micros()
				}
				var invocations, overflows uint64
				for _, k := range config.AllAccelKinds() {
					invocations += run.Engine.Accels[k].Stats.Invocations
					overflows += run.Engine.Accels[k].Stats.Overflows
				}
				return peStats{
					p99: p99sum / float64(len(svcs)),
					fb:  100 * float64(run.Engine.Stats.FallbacksQueue+overflows) / float64(invocations+1),
				}, nil
			},
		})
	}
	outs, err := RunCells(o, cells)
	if err != nil {
		return nil, err
	}
	for i, pes := range peCounts {
		res.Linef("%-6d %10.0f %11.2f%%", pes,
			res.Set(fmt.Sprintf("%dpe/p99us", pes), outs[i].p99),
			res.Set(fmt.Sprintf("%dpe/fallback_pct", pes), outs[i].fb))
	}
	if v8 := res.Get("8pe/p99us"); v8 > 0 {
		res.Linef("")
		res.Linef("tail increase: 4 PEs +%.1f%% (paper +20.0%%), 2 PEs +%.1f%% (paper +35.7%%)",
			100*res.Set("increase_4pe", res.Get("4pe/p99us")/v8-1),
			100*res.Set("increase_2pe", res.Get("2pe/p99us")/v8-1))
	}
	return res, nil
}

// Fig20Generations reproduces Fig. 20: P99 for Non-acc, RELIEF, and
// AccelFlow across processor generations (paper: AccelFlow's advantage
// over RELIEF grows from 68.8% on Ice Lake to 71.7% on Emerald Rapids).
func Fig20Generations(o Options) (*Result, error) {
	res := newResult("fig20")
	res.Linef("Fig. 20 — P99 (us) across processor generations")
	gens := config.AllGenerations()
	if o.Quick {
		gens = []config.Generation{config.Haswell, config.IceLake, config.EmeraldRapids}
	}
	pols := []engine.Policy{engine.NonAcc(), engine.RELIEF(), engine.AccelFlow()}
	hdr := fmt.Sprintf("%-16s", "generation")
	for _, pol := range pols {
		hdr += fmt.Sprintf(" %12s", pol.Name)
	}
	hdr += fmt.Sprintf(" %10s", "AF v RELIEF")
	res.Linef("%s", hdr)
	var cells []Cell[float64]
	for _, g := range gens {
		for _, pol := range pols {
			g, pol := g, pol
			cells = append(cells, Cell[float64]{
				Key: fmt.Sprintf("fig20/%v/%s", g, pol.Name),
				Run: func(seed int64) (float64, error) {
					cfg := config.Default()
					cfg.Generation = g
					return avgP99(o, cfg, pol, seed)
				},
			})
		}
	}
	outs, err := RunCells(o, cells)
	if err != nil {
		return nil, err
	}
	for gi, g := range gens {
		row := fmt.Sprintf("%-16v", g)
		vals := map[string]float64{}
		for pi, pol := range pols {
			v := res.Set(fmt.Sprintf("%v/%s", g, pol.Name), outs[gi*len(pols)+pi])
			vals[pol.Name] = v
			row += fmt.Sprintf(" %12.0f", v)
		}
		red := 1 - vals["AccelFlow"]/vals["RELIEF"]
		row += fmt.Sprintf("  -%8.1f%%", 100*res.Set(fmt.Sprintf("%v/reduction", g), red))
		res.Linef("%s", row)
	}
	res.Linef("")
	res.Linef("paper: -68.8%% on IceLake growing to -71.7%% on EmeraldRapids")
	return res, nil
}

// Sens5Speedups reproduces §VII-C.5: scaling all accelerator speedups
// by 0.25x..4x (paper: AccelFlow's win over RELIEF grows from 1.4x at
// 0.25x speedups to 3.9x at 4x).
func Sens5Speedups(o Options) (*Result, error) {
	res := newResult("sens5")
	res.Linef("§VII-C.5 — AccelFlow vs RELIEF P99 ratio as accelerator speedups scale")
	scales := []float64{0.25, 0.5, 1, 2, 4}
	if o.Quick {
		scales = []float64{0.25, 1, 4}
	}
	res.Linef("%-8s %12s %12s %8s", "scale", "RELIEF", "AccelFlow", "gain")
	pols := []engine.Policy{engine.RELIEF(), engine.AccelFlow()}
	var cells []Cell[float64]
	for _, s := range scales {
		for _, pol := range pols {
			s, pol := s, pol
			cells = append(cells, Cell[float64]{
				Key: fmt.Sprintf("sens5/%.2fx/%s", s, pol.Name),
				Run: func(seed int64) (float64, error) {
					cfg := config.Default()
					cfg.SpeedupScale = s
					return avgP99(o, cfg, pol, seed)
				},
			})
		}
	}
	outs, err := RunCells(o, cells)
	if err != nil {
		return nil, err
	}
	for si, s := range scales {
		rl, af := outs[si*2], outs[si*2+1]
		res.Linef("%-8.2f %12.0f %12.0f %7.2fx", s, rl, af,
			res.Set(fmt.Sprintf("%.2fx/gain", s), rl/af))
	}
	res.Linef("")
	res.Linef("paper: 1.4x at 0.25x speedups, 2.2x at 1x, 3.9x at 4x")
	return res, nil
}

// AreaAccounting reproduces §VI's area table.
func AreaAccounting(Options) (*Result, error) {
	res := newResult("area")
	a := energy.Area()
	res.Linef("§VI — area accounting (7nm)")
	for _, line := range strings.Split(strings.TrimRight(energy.FormatArea(a), "\n"), "\n") {
		res.Linef("%s", line)
	}
	comb, accel, over := a.AccelFraction()
	res.Linef("combined %.1f%%, accelerators %.1f%%, overhead %.1f%% of %.0f mm2 accel area",
		100*res.Set("combined_frac", comb),
		100*res.Set("accel_frac", accel),
		100*res.Set("overhead_frac", over),
		res.Set("accel_mm2", float64(a.AccelTotal())))
	res.Linef("paper: combined 29.0%%, accelerators 26.1%%, AccelFlow overhead <=2.9%%")
	return res, nil
}

package experiments

import (
	"encoding/json"
	"flag"
	"math"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

// update regenerates the golden file:
//
//	go test ./internal/experiments -run TestGoldenQuickValues -update
var update = flag.Bool("update", false, "rewrite testdata golden files")

const goldenPath = "testdata/golden_quick.json"

// goldenOptions pins the quick-mode trajectory the golden file
// captures. Requests is set explicitly so the capture stays CI-sized;
// Seed 1 and Quick mirror the CLI's -quick run. Parallelism is left at
// the default deliberately: the sweep engine guarantees Values do not
// depend on it, so the golden file holds at any worker count.
func goldenOptions() Options { return Options{Requests: 150, Seed: 1, Quick: true} }

// goldenTolerance is the per-key relative tolerance. Runs are
// deterministic on a fixed toolchain, so the slack only absorbs
// last-ulp libm differences across platforms; any real modeling change
// must be re-blessed with -update.
func goldenTolerance(key string) float64 { return 1e-9 }

// goldenSweep runs the whole registry at goldenOptions exactly once
// per test binary; the golden comparison and the fig14 paper-shape
// test share it, since the full-registry sweep is the most expensive
// thing the package does.
var goldenSweep struct {
	once sync.Once
	vals map[string]*Result
	errs map[string]error
}

func goldenResults(t *testing.T) map[string]*Result {
	t.Helper()
	goldenSweep.once.Do(func() {
		goldenSweep.vals = map[string]*Result{}
		goldenSweep.errs = map[string]error{}
		for _, out := range RunMany(IDs(), goldenOptions()) {
			goldenSweep.vals[out.ID] = out.Res
			goldenSweep.errs[out.ID] = out.Err
		}
	})
	for id, err := range goldenSweep.errs {
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
	}
	return goldenSweep.vals
}

// TestGoldenQuickValues locks every Registry entry's Values behind the
// committed golden file, so future PRs cannot silently shift the
// paper-shape results: a drifted value fails here with the offending
// key, and an intentional change is re-blessed with -update.
func TestGoldenQuickValues(t *testing.T) {
	if testing.Short() {
		t.Skip("full-registry sweep is slow")
	}
	got := map[string]map[string]float64{}
	for id, res := range goldenResults(t) {
		got[id] = res.Values
	}

	if *update {
		data, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d experiments)", goldenPath, len(got))
		return
	}

	data, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing golden file (regenerate with -update): %v", err)
	}
	want := map[string]map[string]float64{}
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatalf("corrupt golden file: %v", err)
	}

	for id, wantVals := range want {
		gotVals, ok := got[id]
		if !ok {
			t.Errorf("experiment %q in golden file but not in registry", id)
			continue
		}
		for key, w := range wantVals {
			g, ok := gotVals[key]
			if !ok {
				t.Errorf("%s: key %q vanished (golden has it)", id, key)
				continue
			}
			tol := goldenTolerance(id + "/" + key)
			if !withinTol(g, w, tol) {
				t.Errorf("%s: %q = %v, golden %v (rel tol %g) — rerun with -update if intentional", id, key, g, w, tol)
			}
		}
		for key := range gotVals {
			if _, ok := wantVals[key]; !ok {
				t.Errorf("%s: new key %q not in golden file — rerun with -update", id, key)
			}
		}
	}
	for id := range got {
		if _, ok := want[id]; !ok {
			t.Errorf("experiment %q missing from golden file — rerun with -update", id)
		}
	}
}

// withinTol compares with relative tolerance, treating exact equality
// (including both zero, both NaN-free) as always passing.
func withinTol(got, want, tol float64) bool {
	if got == want {
		return true
	}
	denom := math.Abs(want)
	if denom < 1 {
		denom = 1
	}
	return math.Abs(got-want) <= tol*denom
}

package experiments

import "testing"

// shardOpts mirrors detOpts but varies the intra-run shard knob
// instead of the sweep-engine worker count.
func shardOpts(shards int) Options {
	return Options{Requests: 60, Seed: 7, Quick: true, Parallelism: 4, Shards: shards}
}

// TestShardsDoNotChangeResults pins the sharded kernel's core
// contract at the experiment layer: every registry experiment
// produces bit-identical Values (and identical report text) whether
// its runs execute on the serial kernel (Shards 0) or through the
// sharded execution path at shard counts 1, 2, 4, and 8.
func TestShardsDoNotChangeResults(t *testing.T) {
	for _, id := range convertedIDs {
		id := id
		t.Run(id, func(t *testing.T) {
			if testing.Short() && (id == "fig14" || id == "fig15") {
				t.Skip("throughput search is slow")
			}
			serial, err := Registry[id](shardOpts(0))
			if err != nil {
				t.Fatalf("serial run: %v", err)
			}
			if len(serial.Values) == 0 {
				t.Fatal("no values produced")
			}
			for _, shards := range []int{1, 2, 4, 8} {
				sharded, err := Registry[id](shardOpts(shards))
				if err != nil {
					t.Fatalf("shards=%d run: %v", shards, err)
				}
				sameValues(t, id+" serial-vs-sharded", serial.Values, sharded.Values)
				if serial.Text() != sharded.Text() {
					t.Errorf("%s: report text differs between serial and shards=%d runs", id, shards)
				}
			}
		})
	}
}

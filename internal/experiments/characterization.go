package experiments

import (
	"fmt"
	"strings"

	"accelflow/internal/config"
	"accelflow/internal/engine"
	"accelflow/internal/metrics"
	"accelflow/internal/services"
	"accelflow/internal/trace"
	"accelflow/internal/workload"
)

// Fig1Breakdown reproduces Fig. 1: the execution-time breakdown of
// SocialNetwork service invocations on a server without accelerators.
// The paper's averages: AppLogic 20.7%; TCP 25.6%, (De)Encr 14.6%, RPC
// 3.2%, (De)Ser 22.4%, (De)Cmp 9.5%, LdB 3.9%.
func Fig1Breakdown(o Options) (*Result, error) {
	res := newResult("fig1")
	res.Linef("Fig. 1 — Non-acc execution time breakdown per service (unloaded)")
	res.Linef("%-8s %9s  %6s %6s %6s %6s %6s %6s %6s",
		"service", "total(us)", "app%", "tcp%", "encr%", "rpc%", "ser%", "cmp%", "ldb%")

	groups := map[string][]config.AccelKind{
		"tcp":  {config.TCP},
		"encr": {config.Encr, config.Decr},
		"rpc":  {config.RPC},
		"ser":  {config.Ser, config.Dser},
		"cmp":  {config.Cmp, config.Dcmp},
		"ldb":  {config.LdB},
	}
	order := []string{"tcp", "encr", "rpc", "ser", "cmp", "ldb"}

	var avgApp float64
	avgTax := map[string]float64{}
	svcs := services.SocialNetwork()
	for _, svc := range svcs {
		run, err := runOne(o, config.Default(), engine.NonAcc(), svc, workload.Poisson{RPS: 100}, o.reqs()/4+50, o.Seed)
		if err != nil {
			return nil, err
		}
		bd := run.Breakdown
		var taxTotal float64
		shares := map[string]float64{}
		for name, kinds := range groups {
			var t float64
			for _, k := range kinds {
				t += bd.Tax[k].Micros()
			}
			shares[name] = t
			taxTotal += t
		}
		app := bd.App.Micros()
		busy := app + taxTotal
		row := fmt.Sprintf("%-8s %9.1f  %5.1f%%", svc.Name, run.All.Mean().Micros(),
			100*res.Set(svc.Name+"/app_share", app/busy))
		for _, name := range order {
			row += fmt.Sprintf(" %5.1f%%", 100*shares[name]/busy)
			avgTax[name] += shares[name] / busy
		}
		res.Linef("%s", row)
		avgApp += app / busy
	}
	n := float64(len(svcs))
	row := fmt.Sprintf("%-8s %9s  %5.1f%%", "AVG", "", 100*res.Set("avg/app_share", avgApp/n))
	for _, name := range order {
		row += fmt.Sprintf(" %5.1f%%", 100*res.Set("avg/"+name, avgTax[name]/n))
	}
	res.Linef("%s", row)
	res.Linef("")
	res.Linef("paper: app 20.7%%, tcp 25.6%%, (de)encr 14.6%%, rpc 3.2%%, (de)ser 22.4%%, (de)cmp 9.5%%, ldb 3.9%%")
	return res, nil
}

// Fig3OrchOverhead reproduces Fig. 3: orchestration overhead as a
// fraction of execution time for CPU-Centric, HW-Manager, and Direct
// across load (paper: 25% / 15% at 15 kRPS, Direct far smaller).
func Fig3OrchOverhead(o Options) (*Result, error) {
	res := newResult("fig3")
	res.Linef("Fig. 3 — orchestration overhead fraction vs load")
	loads := []float64{1, 5, 10, 15}
	if o.Quick {
		loads = []float64{5, 15}
	}
	hdr := fmt.Sprintf("%-12s", "arch")
	for _, l := range loads {
		hdr += fmt.Sprintf(" %7.0fk", l)
	}
	res.Linef("%s", hdr)
	pols := []engine.Policy{engine.CPUCentric(), engine.RELIEF(), engine.Direct()}
	svcs := services.SocialNetwork()
	for _, pol := range pols {
		row := fmt.Sprintf("%-12s", pol.Name)
		for _, load := range loads {
			// The mix shares the 36-core server; each service gets a
			// proportional slice of the aggregate load.
			var rateSum float64
			for _, svc := range svcs {
				rateSum += svc.RatekRPS
			}
			var sources []workload.Source
			for _, svc := range svcs {
				sources = append(sources, workload.Source{
					Service:  svc,
					Arrivals: workload.Poisson{RPS: load * 1000 * svc.RatekRPS / rateSum},
					Requests: o.reqs(),
				})
			}
			spec := &workload.RunSpec{
				Shards: o.Shards,
				Config: config.Default(), Policy: pol,
				Sources: sources, Seed: o.Seed,
				Check: o.newCheck(),
			}
			run, err := spec.RunCtx(o.ctx())
			if err != nil {
				return nil, err
			}
			bd := run.Breakdown
			frac := bd.Orch.Micros() / (bd.Total().Micros() + bd.Remote.Micros())
			row += fmt.Sprintf("  %5.1f%%", 100*res.Set(fmt.Sprintf("%s/%.0fk", pol.Name, load), frac))
		}
		res.Linef("%s", row)
	}
	res.Linef("")
	res.Linef("paper at 15kRPS: CPU-Centric 25%%, HW-Manager 15%%, Direct lowest")
	return res, nil
}

// Tab1Connectivity reproduces Table I: the source and destination
// accelerators of each accelerator, derived from the trace catalog.
func Tab1Connectivity(Options) (*Result, error) {
	res := newResult("tab1")
	res.Linef("Table I — source/destination accelerators per accelerator")
	res.Linef("%-6s | %-28s | %s", "accel", "sources", "destinations")
	c := trace.NewConnectivity()
	for _, p := range services.Catalog() {
		c.AddProgram(p)
	}
	fmtSet := func(set map[trace.Endpoint]bool) string {
		var names []string
		for _, e := range trace.EndpointList(set) {
			names = append(names, e.String())
		}
		return strings.Join(names, ",")
	}
	for _, k := range config.AllAccelKinds() {
		res.Set(k.String()+"/nsrc", float64(len(c.Sources[k])))
		res.Set(k.String()+"/ndst", float64(len(c.Destinations[k])))
		res.Linef("%-6v | %-28s | %s", k, fmtSet(c.Sources[k]), fmtSet(c.Destinations[k]))
	}
	return res, nil
}

// Q2BranchStats reproduces §III-Q2: the fraction of accelerator
// sequences with at least one conditional, per suite (paper: SocialNet
// 69.2%, HotelReservation 62.5%, MediaServices 82.5%, TrainTicket
// 53.8%).
func Q2BranchStats(Options) (*Result, error) {
	res := newResult("q2")
	res.Linef("Q2 — fraction of accelerator sequences with >=1 conditional")
	cat := map[string]*trace.Program{}
	for _, p := range services.Catalog() {
		cat[p.Name] = p
	}
	hasBranch := func(start string) bool {
		visited := map[string]bool{}
		var any func(string) bool
		any = func(name string) bool {
			if visited[name] {
				return false
			}
			visited[name] = true
			p := cat[name]
			if p == nil {
				return false
			}
			if p.HasBranch() {
				return true
			}
			for _, in := range p.Instrs {
				if (in.Kind == trace.OpTail || in.Kind == trace.OpFork) && any(in.TailName) {
					return true
				}
			}
			return false
		}
		return any(start)
	}
	paper := map[string]float64{"SocialNet": 0.692, "HotelReservation": 0.625, "MediaServices": 0.825, "TrainTicket": 0.538}
	for _, suite := range services.AllSuites() {
		with, total := 0, 0
		for _, svc := range suite.Services {
			for _, st := range svc.Steps {
				var starts []string
				switch st.Kind {
				case engine.StepChain:
					starts = []string{st.Trace}
				case engine.StepParallel:
					starts = st.Par
				}
				for _, s := range starts {
					total++
					if hasBranch(s) {
						with++
					}
				}
			}
		}
		share := float64(with) / float64(total)
		res.Linef("%-18s %5.1f%%   (paper %.1f%%)", suite.Name,
			100*res.Set(suite.Name, share), paper[suite.Name]*100)
	}
	return res, nil
}

// Fig5DataSizes reproduces Fig. 5: min/median/max input and output
// sizes per accelerator (paper: few-KB medians, tails of tens of KB).
func Fig5DataSizes(o Options) (*Result, error) {
	res := newResult("fig5")
	res.Linef("Fig. 5 — input/output data sizes per accelerator (bytes)")
	res.Linef("%-6s %28s %28s", "accel", "input min/med/max", "output min/med/max")
	// Run the full mix under AccelFlow to populate the samplers.
	spec := &workload.RunSpec{
		Shards:  o.Shards,
		Config:  config.Default(),
		Policy:  engine.AccelFlow(),
		Sources: workload.Mix(services.SocialNetwork(), 0.3, o.reqs()),
		Seed:    o.Seed,
		Check:   o.newCheck(),
	}
	run, err := spec.RunCtx(o.ctx())
	if err != nil {
		return nil, err
	}
	for _, k := range config.AllAccelKinds() {
		if k == config.LdB {
			res.Linef("%-6v %28s %28s", k, "- (no data)", "-")
			continue
		}
		st := run.Engine.Accels[k].Stats
		in := metrics.Sizes(st.InSizes)
		out := metrics.Sizes(st.OutSizes)
		res.Set(k.String()+"/in_median", float64(in.Median))
		res.Set(k.String()+"/in_max", float64(in.Max))
		res.Linef("%-6v %10d/%6d/%9d %10d/%6d/%9d", k, in.Min, in.Median, in.Max, out.Min, out.Median, out.Max)
	}
	return res, nil
}

// Tab2Traces prints Table II: the trace catalog with its disassembly.
func Tab2Traces(Options) (*Result, error) {
	res := newResult("tab2")
	res.Linef("Table II — trace catalog (with ATM subtrace splits)")
	res.Linef("")
	for _, p := range services.Catalog() {
		res.Set(p.Name+"/instrs", float64(len(p.Instrs)))
		for _, line := range strings.Split(strings.TrimRight(p.String(), "\n"), "\n") {
			res.Linef("%s", line)
		}
	}
	return res, nil
}

// Tab3Parameters prints Table III: the modeled architecture parameters.
func Tab3Parameters(Options) (*Result, error) {
	res := newResult("tab3")
	c := config.Default()
	res.Linef("Table III — architectural parameters")
	res.Linef("processor: %.0f cores @ %.1fGHz (%v)", res.Set("cores", float64(c.Cores)), c.CPUFreqGHz, c.Generation)
	res.Linef("accel queues: %d in / %d out entries (%dB each)", c.InputQueueEntries, c.OutputQueueEntries, c.QueueEntryBytes)
	res.Linef("A-DMA engines: %d, PEs/accel: %.0f, scratchpad: %dKB",
		c.ADMAEngines, res.Set("pes", float64(c.PEsPerAccel)), c.ScratchpadKB)
	res.Linef("queue->scratchpad: %v latency, %.0f GB/s", c.QueueToPadLatency, c.QueueToPadGBs)
	res.Linef("notification: %d cycles; mesh: %d cycles/hop, %dB links; inter-chiplet: %d cycles",
		c.NotifyCycles, c.MeshHopCycles, c.MeshLinkBytes, c.InterChipletCycles)
	res.Linef("memory: %d controllers x %.1f GB/s", c.MemCtrls, c.MemGBsPerCtrl)
	speedups := "speedups: "
	for _, k := range config.AllAccelKinds() {
		speedups += fmt.Sprintf("%v %.1f  ", k, c.Speedup[k])
	}
	res.Linef("%s", speedups)
	return res, nil
}

// Tab4Paths reproduces Table IV: the most common execution path and
// accelerator count per service, measured from an actual AccelFlow run.
func Tab4Paths(o Options) (*Result, error) {
	res := newResult("tab4")
	res.Linef("Table IV — most common path and accelerators per invocation")
	res.Linef("%-8s %7s %7s   %s", "service", "paper#", "meas#", "steps")
	for _, svc := range services.SocialNetwork() {
		run, err := runOne(o, config.Default(), engine.AccelFlow(), svc, workload.Poisson{RPS: 200}, o.reqs()/8+40, o.Seed)
		if err != nil {
			return nil, err
		}
		measured := float64(run.AccelCount) / float64(run.Completed)
		var steps []string
		for _, st := range svc.Steps {
			switch st.Kind {
			case engine.StepApp:
				steps = append(steps, "CPU")
			case engine.StepChain:
				steps = append(steps, st.Trace)
			case engine.StepParallel:
				steps = append(steps, fmt.Sprintf("%dx(%s)", len(st.Par), st.Par[0]))
			}
		}
		res.Linef("%-8s %7.0f %7.1f   %s", svc.Name,
			res.Set(svc.Name+"/paper", float64(svc.WantAccels)),
			res.Set(svc.Name+"/measured", measured),
			strings.Join(steps, "-"))
	}
	return res, nil
}

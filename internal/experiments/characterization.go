package experiments

import (
	"fmt"
	"strings"

	"accelflow/internal/config"
	"accelflow/internal/engine"
	"accelflow/internal/metrics"
	"accelflow/internal/services"
	"accelflow/internal/trace"
	"accelflow/internal/workload"
)

// Fig1Breakdown reproduces Fig. 1: the execution-time breakdown of
// SocialNetwork service invocations on a server without accelerators.
// The paper's averages: AppLogic 20.7%; TCP 25.6%, (De)Encr 14.6%, RPC
// 3.2%, (De)Ser 22.4%, (De)Cmp 9.5%, LdB 3.9%.
func Fig1Breakdown(o Options) (*Result, error) {
	res := newResult("fig1")
	res.addf("Fig. 1 — Non-acc execution time breakdown per service (unloaded)\n")
	res.addf("%-8s %9s  %6s %6s %6s %6s %6s %6s %6s\n",
		"service", "total(us)", "app%", "tcp%", "encr%", "rpc%", "ser%", "cmp%", "ldb%")

	groups := map[string][]config.AccelKind{
		"tcp":  {config.TCP},
		"encr": {config.Encr, config.Decr},
		"rpc":  {config.RPC},
		"ser":  {config.Ser, config.Dser},
		"cmp":  {config.Cmp, config.Dcmp},
		"ldb":  {config.LdB},
	}
	order := []string{"tcp", "encr", "rpc", "ser", "cmp", "ldb"}

	var avgApp float64
	avgTax := map[string]float64{}
	svcs := services.SocialNetwork()
	for _, svc := range svcs {
		run, err := runOne(config.Default(), engine.NonAcc(), svc, workload.Poisson{RPS: 100}, o.reqs()/4+50, o.Seed)
		if err != nil {
			return nil, err
		}
		bd := run.Breakdown
		var taxTotal float64
		shares := map[string]float64{}
		for name, kinds := range groups {
			var t float64
			for _, k := range kinds {
				t += bd.Tax[k].Micros()
			}
			shares[name] = t
			taxTotal += t
		}
		app := bd.App.Micros()
		busy := app + taxTotal
		res.addf("%-8s %9.1f  %5.1f%%", svc.Name, run.All.Mean().Micros(), 100*app/busy)
		for _, name := range order {
			res.addf(" %5.1f%%", 100*shares[name]/busy)
			avgTax[name] += shares[name] / busy
		}
		res.addf("\n")
		avgApp += app / busy
		res.Values[svc.Name+"/app_share"] = app / busy
	}
	n := float64(len(svcs))
	res.addf("%-8s %9s  %5.1f%%", "AVG", "", 100*avgApp/n)
	for _, name := range order {
		res.addf(" %5.1f%%", 100*avgTax[name]/n)
		res.Values["avg/"+name] = avgTax[name] / n
	}
	res.addf("\n\npaper: app 20.7%%, tcp 25.6%%, (de)encr 14.6%%, rpc 3.2%%, (de)ser 22.4%%, (de)cmp 9.5%%, ldb 3.9%%\n")
	res.Values["avg/app_share"] = avgApp / n
	return res, nil
}

// Fig3OrchOverhead reproduces Fig. 3: orchestration overhead as a
// fraction of execution time for CPU-Centric, HW-Manager, and Direct
// across load (paper: 25% / 15% at 15 kRPS, Direct far smaller).
func Fig3OrchOverhead(o Options) (*Result, error) {
	res := newResult("fig3")
	res.addf("Fig. 3 — orchestration overhead fraction vs load\n")
	loads := []float64{1, 5, 10, 15}
	if o.Quick {
		loads = []float64{5, 15}
	}
	res.addf("%-12s", "arch")
	for _, l := range loads {
		res.addf(" %7.0fk", l)
	}
	res.addf("\n")
	pols := []engine.Policy{engine.CPUCentric(), engine.RELIEF(), engine.Direct()}
	svcs := services.SocialNetwork()
	for _, pol := range pols {
		res.addf("%-12s", pol.Name)
		for _, load := range loads {
			// The mix shares the 36-core server; each service gets a
			// proportional slice of the aggregate load.
			var rateSum float64
			for _, svc := range svcs {
				rateSum += svc.RatekRPS
			}
			var sources []workload.Source
			for _, svc := range svcs {
				sources = append(sources, workload.Source{
					Service:  svc,
					Arrivals: workload.Poisson{RPS: load * 1000 * svc.RatekRPS / rateSum},
					Requests: o.reqs(),
				})
			}
			run, err := workload.Run(config.Default(), pol, sources, o.Seed, nil, nil)
			if err != nil {
				return nil, err
			}
			bd := run.Breakdown
			frac := bd.Orch.Micros() / (bd.Total().Micros() + bd.Remote.Micros())
			res.addf("  %5.1f%%", frac*100)
			res.Values[fmt.Sprintf("%s/%.0fk", pol.Name, load)] = frac
		}
		res.addf("\n")
	}
	res.addf("\npaper at 15kRPS: CPU-Centric 25%%, HW-Manager 15%%, Direct lowest\n")
	return res, nil
}

// Tab1Connectivity reproduces Table I: the source and destination
// accelerators of each accelerator, derived from the trace catalog.
func Tab1Connectivity(Options) (*Result, error) {
	res := newResult("tab1")
	res.addf("Table I — source/destination accelerators per accelerator\n")
	res.addf("%-6s | %-28s | %s\n", "accel", "sources", "destinations")
	c := trace.NewConnectivity()
	for _, p := range services.Catalog() {
		c.AddProgram(p)
	}
	fmtSet := func(set map[trace.Endpoint]bool) string {
		var names []string
		for _, e := range trace.EndpointList(set) {
			names = append(names, e.String())
		}
		return strings.Join(names, ",")
	}
	for _, k := range config.AllAccelKinds() {
		res.addf("%-6v | %-28s | %s\n", k, fmtSet(c.Sources[k]), fmtSet(c.Destinations[k]))
		res.Values[k.String()+"/nsrc"] = float64(len(c.Sources[k]))
		res.Values[k.String()+"/ndst"] = float64(len(c.Destinations[k]))
	}
	return res, nil
}

// Q2BranchStats reproduces §III-Q2: the fraction of accelerator
// sequences with at least one conditional, per suite (paper: SocialNet
// 69.2%, HotelReservation 62.5%, MediaServices 82.5%, TrainTicket
// 53.8%).
func Q2BranchStats(Options) (*Result, error) {
	res := newResult("q2")
	res.addf("Q2 — fraction of accelerator sequences with >=1 conditional\n")
	cat := map[string]*trace.Program{}
	for _, p := range services.Catalog() {
		cat[p.Name] = p
	}
	hasBranch := func(start string) bool {
		visited := map[string]bool{}
		var any func(string) bool
		any = func(name string) bool {
			if visited[name] {
				return false
			}
			visited[name] = true
			p := cat[name]
			if p == nil {
				return false
			}
			if p.HasBranch() {
				return true
			}
			for _, in := range p.Instrs {
				if (in.Kind == trace.OpTail || in.Kind == trace.OpFork) && any(in.TailName) {
					return true
				}
			}
			return false
		}
		return any(start)
	}
	paper := map[string]float64{"SocialNet": 0.692, "HotelReservation": 0.625, "MediaServices": 0.825, "TrainTicket": 0.538}
	for _, suite := range services.AllSuites() {
		with, total := 0, 0
		for _, svc := range suite.Services {
			for _, st := range svc.Steps {
				var starts []string
				switch st.Kind {
				case engine.StepChain:
					starts = []string{st.Trace}
				case engine.StepParallel:
					starts = st.Par
				}
				for _, s := range starts {
					total++
					if hasBranch(s) {
						with++
					}
				}
			}
		}
		share := float64(with) / float64(total)
		res.addf("%-18s %5.1f%%   (paper %.1f%%)\n", suite.Name, share*100, paper[suite.Name]*100)
		res.Values[suite.Name] = share
	}
	return res, nil
}

// Fig5DataSizes reproduces Fig. 5: min/median/max input and output
// sizes per accelerator (paper: few-KB medians, tails of tens of KB).
func Fig5DataSizes(o Options) (*Result, error) {
	res := newResult("fig5")
	res.addf("Fig. 5 — input/output data sizes per accelerator (bytes)\n")
	res.addf("%-6s %28s %28s\n", "accel", "input min/med/max", "output min/med/max")
	// Run the full mix under AccelFlow to populate the samplers.
	sources := workload.Mix(services.SocialNetwork(), 0.3, o.reqs())
	run, err := workload.Run(config.Default(), engine.AccelFlow(), sources, o.Seed, nil, nil)
	if err != nil {
		return nil, err
	}
	for _, k := range config.AllAccelKinds() {
		if k == config.LdB {
			res.addf("%-6v %28s %28s\n", k, "- (no data)", "-")
			continue
		}
		st := run.Engine.Accels[k].Stats
		in := metrics.Sizes(st.InSizes)
		out := metrics.Sizes(st.OutSizes)
		res.addf("%-6v %10d/%6d/%9d %10d/%6d/%9d\n", k, in.Min, in.Median, in.Max, out.Min, out.Median, out.Max)
		res.Values[k.String()+"/in_median"] = float64(in.Median)
		res.Values[k.String()+"/in_max"] = float64(in.Max)
	}
	return res, nil
}

// Tab2Traces prints Table II: the trace catalog with its disassembly.
func Tab2Traces(Options) (*Result, error) {
	res := newResult("tab2")
	res.addf("Table II — trace catalog (with ATM subtrace splits)\n\n")
	for _, p := range services.Catalog() {
		res.addf("%s\n", p.String())
		res.Values[p.Name+"/instrs"] = float64(len(p.Instrs))
	}
	return res, nil
}

// Tab3Parameters prints Table III: the modeled architecture parameters.
func Tab3Parameters(Options) (*Result, error) {
	res := newResult("tab3")
	c := config.Default()
	res.addf("Table III — architectural parameters\n")
	res.addf("processor: %d cores @ %.1fGHz (%v)\n", c.Cores, c.CPUFreqGHz, c.Generation)
	res.addf("accel queues: %d in / %d out entries (%dB each)\n", c.InputQueueEntries, c.OutputQueueEntries, c.QueueEntryBytes)
	res.addf("A-DMA engines: %d, PEs/accel: %d, scratchpad: %dKB\n", c.ADMAEngines, c.PEsPerAccel, c.ScratchpadKB)
	res.addf("queue->scratchpad: %v latency, %.0f GB/s\n", c.QueueToPadLatency, c.QueueToPadGBs)
	res.addf("notification: %d cycles; mesh: %d cycles/hop, %dB links; inter-chiplet: %d cycles\n",
		c.NotifyCycles, c.MeshHopCycles, c.MeshLinkBytes, c.InterChipletCycles)
	res.addf("memory: %d controllers x %.1f GB/s\n", c.MemCtrls, c.MemGBsPerCtrl)
	res.addf("speedups: ")
	for _, k := range config.AllAccelKinds() {
		res.addf("%v %.1f  ", k, c.Speedup[k])
	}
	res.addf("\n")
	res.Values["cores"] = float64(c.Cores)
	res.Values["pes"] = float64(c.PEsPerAccel)
	return res, nil
}

// Tab4Paths reproduces Table IV: the most common execution path and
// accelerator count per service, measured from an actual AccelFlow run.
func Tab4Paths(o Options) (*Result, error) {
	res := newResult("tab4")
	res.addf("Table IV — most common path and accelerators per invocation\n")
	res.addf("%-8s %7s %7s   %s\n", "service", "paper#", "meas#", "steps")
	for _, svc := range services.SocialNetwork() {
		run, err := runOne(config.Default(), engine.AccelFlow(), svc, workload.Poisson{RPS: 200}, o.reqs()/8+40, o.Seed)
		if err != nil {
			return nil, err
		}
		measured := float64(run.AccelCount) / float64(run.Completed)
		var steps []string
		for _, st := range svc.Steps {
			switch st.Kind {
			case engine.StepApp:
				steps = append(steps, "CPU")
			case engine.StepChain:
				steps = append(steps, st.Trace)
			case engine.StepParallel:
				steps = append(steps, fmt.Sprintf("%dx(%s)", len(st.Par), st.Par[0]))
			}
		}
		res.addf("%-8s %7d %7.1f   %s\n", svc.Name, svc.WantAccels, measured, strings.Join(steps, "-"))
		res.Values[svc.Name+"/measured"] = measured
		res.Values[svc.Name+"/paper"] = float64(svc.WantAccels)
	}
	return res, nil
}

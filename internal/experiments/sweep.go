// Parallel sweep engine. Every evaluation experiment is a matrix of
// independent discrete-event simulations (policy × service × load ×
// config); this file fans those cells out over a bounded worker pool
// while keeping results bit-identical to a serial run.
//
// Determinism contract:
//
//   - Each cell's RNG stream is derived from (Options.Seed, Cell.Key)
//     via sim.DeriveSeed, never from shared RNG state, wall clock, or
//     scheduling order. A cell computes the same value no matter which
//     worker runs it or when.
//   - Workers write only to their own pre-allocated result slot; no
//     map, recorder, or Result is shared between goroutines. Runners
//     merge cell outputs into Result.Values single-threaded, in
//     submission order, after the pool joins.
//   - On error the lowest-indexed failing cell wins, so even failures
//     are reproducible across worker counts.
package experiments

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"time"

	"accelflow/internal/sim"
)

// Cell is one independent simulation of an experiment's sweep matrix.
// Key must be unique within the sweep and stable across runs: it names
// the cell's RNG stream, so renaming a key moves that cell to a
// different (still deterministic) trajectory.
type Cell[T any] struct {
	Key string
	Run func(seed int64) (T, error)
}

// parallelism resolves Options.Parallelism to a concrete worker count.
func (o Options) parallelism() int {
	if o.Parallelism > 0 {
		return o.Parallelism
	}
	return runtime.GOMAXPROCS(0)
}

// RunCells executes the cells on a bounded worker pool and returns
// their outputs in submission order. Results are independent of the
// worker count and of completion order; see the package comment above
// for the contract.
//
// Cancellation (Options.Ctx) is cooperative: once the context is done,
// no new cell starts — the feeder stops dispatching and workers skip
// cells already handed to them — and cells whose Run observes the
// context (e.g. via workload.RunSpec.RunCtx) stop mid-simulation. The
// error path stays deterministic under cancellation: the
// lowest-indexed genuine cell failure wins over any cancellation
// error, and a sweep that only saw cancellation reports ctx's error. A
// zero-cell sweep spawns no workers and returns immediately — with
// ctx's error when the context is already cancelled, else with an
// empty result.
func RunCells[T any](o Options, cells []Cell[T]) ([]T, error) {
	ctx := o.ctx()
	results := make([]T, len(cells))
	if len(cells) == 0 {
		return results, ctx.Err()
	}
	errs := make([]error, len(cells))
	workers := o.parallelism()
	if workers > len(cells) {
		workers = len(cells)
	}
	if workers < 1 {
		workers = 1
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				cached := false
				if err := ctx.Err(); err != nil {
					errs[i] = err
				} else {
					c := cells[i]
					// A memoized output replaces the run outright: the
					// cache contract (Options.Cache) makes it the value
					// this exact cell would compute. A wrong-type hit —
					// a namespace bug upstream — falls through to a real
					// run rather than corrupting the sweep.
					if o.Cache != nil {
						if v, ok := o.Cache.GetCell(c.Key); ok {
							if tv, ok := v.(T); ok {
								results[i] = tv
								cached = true
							}
						}
					}
					if !cached {
						results[i], errs[i] = c.Run(sim.DeriveSeed(o.Seed, c.Key))
						if errs[i] == nil && o.Cache != nil {
							o.Cache.PutCell(c.Key, results[i])
						}
					}
				}
				if o.OnCell != nil {
					o.OnCell(CellEvent{Key: cells[i].Key, Index: i, Total: len(cells), Err: errs[i], Cached: cached})
				}
			}
		}()
	}
feed:
	for i := range cells {
		select {
		case idx <- i:
		case <-ctx.Done():
			// Cells from i on were never dispatched; no worker touches
			// their slots, so writing here cannot race.
			for j := i; j < len(cells); j++ {
				errs[j] = ctx.Err()
			}
			break feed
		}
	}
	close(idx)
	wg.Wait()
	var cancelErr error
	for _, err := range errs {
		switch {
		case err == nil:
		case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
			if cancelErr == nil {
				cancelErr = err
			}
		default:
			// Lowest-indexed genuine failure, reproducible across worker
			// counts and cancellation timing (a cancelled sweep can hide
			// failures in cells it never ran, but never reorders them).
			return nil, err
		}
	}
	if cancelErr != nil {
		return nil, cancelErr
	}
	return results, nil
}

// Outcome is one experiment's result under RunMany, with wall-clock
// timing for the CLI's -exp all report.
type Outcome struct {
	ID      string
	Res     *Result
	Err     error
	Elapsed time.Duration
}

// RunMany executes the named Registry experiments concurrently (each
// experiment additionally fans out its own cells) and returns outcomes
// in the order the ids were given. Experiment-level concurrency shares
// the Options.Parallelism bound; with Parallelism 1 everything runs
// serially, which is the baseline the sweep benchmarks compare against.
// When Options.Ctx is cancelled, experiments not yet started report
// ctx's error and started ones stop through their own sweep plumbing.
func RunMany(ids []string, o Options) []Outcome {
	out := make([]Outcome, len(ids))
	if len(ids) == 0 {
		return out
	}
	ctx := o.ctx()
	workers := o.parallelism()
	if workers > len(ids) {
		workers = len(ids)
	}
	if workers < 1 {
		workers = 1
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				id := ids[i]
				run, ok := Registry[id]
				if !ok {
					out[i] = Outcome{ID: id, Err: errUnknownExperiment(id)}
					continue
				}
				if err := ctx.Err(); err != nil {
					out[i] = Outcome{ID: id, Err: err}
					continue
				}
				start := time.Now()
				res, err := run(o)
				out[i] = Outcome{ID: id, Res: res, Err: err, Elapsed: time.Since(start)}
			}
		}()
	}
feed:
	for i := range ids {
		select {
		case idx <- i:
		case <-ctx.Done():
			for j := i; j < len(ids); j++ {
				out[j] = Outcome{ID: ids[j], Err: ctx.Err()}
			}
			break feed
		}
	}
	close(idx)
	wg.Wait()
	return out
}

type errUnknownExperiment string

func (e errUnknownExperiment) Error() string { return "unknown experiment " + string(e) }

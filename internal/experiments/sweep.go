// Parallel sweep engine. Every evaluation experiment is a matrix of
// independent discrete-event simulations (policy × service × load ×
// config); this file fans those cells out over a bounded worker pool
// while keeping results bit-identical to a serial run.
//
// Determinism contract:
//
//   - Each cell's RNG stream is derived from (Options.Seed, Cell.Key)
//     via sim.DeriveSeed, never from shared RNG state, wall clock, or
//     scheduling order. A cell computes the same value no matter which
//     worker runs it or when.
//   - Workers write only to their own pre-allocated result slot; no
//     map, recorder, or Result is shared between goroutines. Runners
//     merge cell outputs into Result.Values single-threaded, in
//     submission order, after the pool joins.
//   - On error the lowest-indexed failing cell wins, so even failures
//     are reproducible across worker counts.
package experiments

import (
	"runtime"
	"sync"
	"time"

	"accelflow/internal/sim"
)

// Cell is one independent simulation of an experiment's sweep matrix.
// Key must be unique within the sweep and stable across runs: it names
// the cell's RNG stream, so renaming a key moves that cell to a
// different (still deterministic) trajectory.
type Cell[T any] struct {
	Key string
	Run func(seed int64) (T, error)
}

// parallelism resolves Options.Parallelism to a concrete worker count.
func (o Options) parallelism() int {
	if o.Parallelism > 0 {
		return o.Parallelism
	}
	return runtime.GOMAXPROCS(0)
}

// RunCells executes the cells on a bounded worker pool and returns
// their outputs in submission order. Results are independent of the
// worker count and of completion order; see the package comment above
// for the contract.
func RunCells[T any](o Options, cells []Cell[T]) ([]T, error) {
	results := make([]T, len(cells))
	errs := make([]error, len(cells))
	workers := o.parallelism()
	if workers > len(cells) {
		workers = len(cells)
	}
	if workers < 1 {
		workers = 1
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				c := cells[i]
				results[i], errs[i] = c.Run(sim.DeriveSeed(o.Seed, c.Key))
			}
		}()
	}
	for i := range cells {
		idx <- i
	}
	close(idx)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}

// Outcome is one experiment's result under RunMany, with wall-clock
// timing for the CLI's -exp all report.
type Outcome struct {
	ID      string
	Res     *Result
	Err     error
	Elapsed time.Duration
}

// RunMany executes the named Registry experiments concurrently (each
// experiment additionally fans out its own cells) and returns outcomes
// in the order the ids were given. Experiment-level concurrency shares
// the Options.Parallelism bound; with Parallelism 1 everything runs
// serially, which is the baseline the sweep benchmarks compare against.
func RunMany(ids []string, o Options) []Outcome {
	out := make([]Outcome, len(ids))
	workers := o.parallelism()
	if workers > len(ids) {
		workers = len(ids)
	}
	if workers < 1 {
		workers = 1
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				id := ids[i]
				run, ok := Registry[id]
				if !ok {
					out[i] = Outcome{ID: id, Err: errUnknownExperiment(id)}
					continue
				}
				start := time.Now()
				res, err := run(o)
				out[i] = Outcome{ID: id, Res: res, Err: err, Elapsed: time.Since(start)}
			}
		}()
	}
	for i := range ids {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return out
}

type errUnknownExperiment string

func (e errUnknownExperiment) Error() string { return "unknown experiment " + string(e) }

package experiments

import (
	"encoding/json"
	"os"
	"testing"
)

// checkGoldenIDs is the representative slice rerun with the invariant
// checker attached: a latency sweep, a PE sensitivity sweep, the
// fault-injection experiment, and the controller SLO-surge experiment
// (the ones whose golden values are most exposed to a checker
// accidentally perturbing RNG or event order — slosurge pins the
// checker+controller composition, shedding and scaling included).
var checkGoldenIDs = []string{"fig11", "fig19", "resilience", "slosurge"}

// TestGoldenUnchangedWithChecking is the determinism half of the
// checker contract: -check must change results by exactly nothing.
// It reruns a representative subset at the golden options with
// Check=true and compares every value against the committed golden
// file at the same last-ulp tolerance the unchecked comparison uses:
// the committed golden_quick.json must hold byte-unchanged whether or
// not checking is on, so any drift here means the checker touched the
// simulation (RNG draws, event order, or counters).
func TestGoldenUnchangedWithChecking(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment runs are slow")
	}
	data, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing golden file (regenerate with -update): %v", err)
	}
	want := map[string]map[string]float64{}
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatalf("corrupt golden file: %v", err)
	}

	opts := goldenOptions()
	opts.Check = true
	for _, id := range checkGoldenIDs {
		run, ok := Registry[id]
		if !ok {
			t.Fatalf("unknown experiment %q", id)
		}
		res, err := run(opts)
		if err != nil {
			t.Errorf("%s with -check: %v", id, err)
			continue
		}
		wantVals, ok := want[id]
		if !ok {
			t.Fatalf("experiment %q not in golden file", id)
		}
		if len(res.Values) != len(wantVals) {
			t.Errorf("%s: %d values with -check, golden has %d", id, len(res.Values), len(wantVals))
		}
		for key, w := range wantVals {
			g, ok := res.Values[key]
			if !ok {
				t.Errorf("%s: key %q missing with -check", id, key)
				continue
			}
			if !withinTol(g, w, goldenTolerance(id+"/"+key)) {
				t.Errorf("%s: %q = %v with -check, golden %v — the checker changed simulation results", id, key, g, w)
			}
		}
	}
}

package experiments

import (
	"fmt"

	"accelflow/internal/config"
	"accelflow/internal/engine"
	"accelflow/internal/fault"
	"accelflow/internal/services"
	"accelflow/internal/sim"
	"accelflow/internal/workload"
)

// resiliencePolicies are the four accelerated architectures compared
// under fault injection (Non-acc has no accelerators to fail).
func resiliencePolicies() []engine.Policy {
	return []engine.Policy{
		engine.CPUCentric(),
		engine.RELIEF(),
		engine.Cohort(engine.DefaultCohortPairs()),
		engine.AccelFlow(),
	}
}

// resilienceRates are the swept fault-window arrival rates (windows per
// simulated second). Rate 0 still attaches the injector, pinning the
// zero-overhead contract in the golden values.
func resilienceRates(quick bool) []float64 {
	if quick {
		return []float64{0, 2000}
	}
	return []float64{0, 500, 2000}
}

// resilienceSpec builds one cell's run. Split out so tests can build
// the rate-0 spec and its no-injector twin from the same code path.
// All recovery knobs are on: bounded Enqueue retry backoff and one
// timeout re-arm, so the experiment measures graceful degradation
// rather than raw failure.
func resilienceSpec(pol engine.Policy, rate float64, n int, seed int64) *workload.RunSpec {
	cfg := config.Default()
	cfg.EnqueueBackoff = 200 * sim.Nanosecond
	cfg.TimeoutRearms = 1
	loss := 0.0
	if rate > 0 {
		// Faulty epochs also lose more remote responses; gated on the
		// rate so the rate-0 cells stay bit-identical to no-fault runs.
		loss = 1e-3
	}
	return &workload.RunSpec{
		Config:  cfg,
		Policy:  pol,
		Sources: workload.Mix(services.SocialNetwork(), 1.0, n),
		Seed:    seed,
		Faults: &fault.Spec{
			Rate:           rate,
			MeanWindow:     200 * sim.Microsecond,
			Horizon:        sim.Second,
			PEDegradeFrac:  0.5,
			PEFail:         true,
			ADMARemove:     2,
			ManagerStall:   true,
			ATMStall:       500 * sim.Nanosecond,
			NoCInflate:     4,
			RemoteLossRate: loss,
		},
	}
}

// Resilience measures graceful degradation under the fault-injection
// layer: P99 latency, CPU-fallback rate, and timeout rate of the four
// accelerated architectures as the fault-window arrival rate grows.
// One sweep cell per (policy, rate); deterministic at any parallelism.
func Resilience(o Options) (*Result, error) {
	res := newResult("resilience")
	res.Linef("Resilience — P99 us / fallback %% / timeouts per M req vs fault-window rate")
	pols := resiliencePolicies()
	rates := resilienceRates(o.Quick)

	type out struct{ p99, fallbackPct, timeoutsPerM float64 }
	cells := make([]Cell[out], 0, len(pols)*len(rates))
	for _, pol := range pols {
		for _, rate := range rates {
			pol, rate := pol, rate
			cells = append(cells, Cell[out]{
				Key: fmt.Sprintf("resilience/%s/r%g", pol.Name, rate),
				Run: func(seed int64) (out, error) {
					spec := resilienceSpec(pol, rate, o.reqs(), seed)
					spec.Check = o.newCheck()
					spec.Shards = o.Shards
					run, err := spec.RunCtx(o.ctx())
					if err != nil {
						return out{}, err
					}
					n := float64(run.Completed)
					if n == 0 {
						n = 1
					}
					return out{
						p99:          run.All.P99().Micros(),
						fallbackPct:  100 * float64(run.FellBack) / n,
						timeoutsPerM: 1e6 * float64(run.TimedOut) / n,
					}, nil
				},
			})
		}
	}
	outs, err := RunCells(o, cells)
	if err != nil {
		return nil, err
	}
	i := 0
	for _, pol := range pols {
		for _, rate := range rates {
			key := fmt.Sprintf("%s/r%g", pol.Name, rate)
			res.Linef("%-11s r=%-5g: P99 %8.1f us, fallback %5.2f%%, timeouts %6.1f/M",
				pol.Name, rate,
				res.Set(key+"/p99us", outs[i].p99),
				res.Set(key+"/fallback_pct", outs[i].fallbackPct),
				res.Set(key+"/timeouts_per_m", outs[i].timeoutsPerM))
			i++
		}
	}
	res.Linef("rate 0 attaches the injector disabled: values match a no-fault run exactly")
	return res, nil
}

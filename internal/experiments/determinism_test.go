package experiments

import (
	"math"
	"testing"
)

// convertedIDs lists the runners that fan out over the sweep engine;
// each must produce bit-identical Values at any worker count.
var convertedIDs = []string{
	"fig11", "fig12", "fig13", "fig14", "fig15",
	"fig18", "fig19", "fig20", "sens2", "sens5",
	"resilience",
}

// detOpts keeps the three-runs-per-experiment determinism sweep fast;
// determinism does not depend on the request budget.
func detOpts(parallelism int) Options {
	return Options{Requests: 60, Seed: 7, Quick: true, Parallelism: parallelism}
}

// sameValues compares two Values maps for exact (bit-level) equality.
func sameValues(t *testing.T, label string, a, b map[string]float64) {
	t.Helper()
	if len(a) != len(b) {
		t.Errorf("%s: %d keys vs %d keys", label, len(a), len(b))
	}
	for k, va := range a {
		vb, ok := b[k]
		if !ok {
			t.Errorf("%s: key %q missing from second run", label, k)
			continue
		}
		if math.Float64bits(va) != math.Float64bits(vb) {
			t.Errorf("%s: %q = %v vs %v (not bit-identical)", label, k, va, vb)
		}
	}
	for k := range b {
		if _, ok := a[k]; !ok {
			t.Errorf("%s: key %q missing from first run", label, k)
		}
	}
}

// TestParallelismDoesNotChangeResults is the sweep engine's core
// contract: a serial run (Parallelism 1) and a heavily oversubscribed
// run (Parallelism 8) of the same experiment with the same seed yield
// exactly equal Values, and a repeated parallel run is bit-identical
// too (no dependence on goroutine scheduling).
func TestParallelismDoesNotChangeResults(t *testing.T) {
	for _, id := range convertedIDs {
		id := id
		t.Run(id, func(t *testing.T) {
			if testing.Short() && (id == "fig14" || id == "fig15") {
				t.Skip("throughput search is slow")
			}
			serial, err := Registry[id](detOpts(1))
			if err != nil {
				t.Fatalf("serial run: %v", err)
			}
			par, err := Registry[id](detOpts(8))
			if err != nil {
				t.Fatalf("parallel run: %v", err)
			}
			if len(serial.Values) == 0 {
				t.Fatal("no values produced")
			}
			sameValues(t, id+" p1-vs-p8", serial.Values, par.Values)
			if serial.Text() != par.Text() {
				t.Errorf("%s: report text differs between serial and parallel runs", id)
			}
			if id == "fig14" {
				// The repeat-run check below costs a full throughput
				// search here; p1-vs-p8 already covers scheduling
				// independence for this runner.
				return
			}
			again, err := Registry[id](detOpts(8))
			if err != nil {
				t.Fatalf("repeated parallel run: %v", err)
			}
			sameValues(t, id+" p8-vs-p8", par.Values, again.Values)
			if par.Text() != again.Text() {
				t.Errorf("%s: report text differs across repeated parallel runs", id)
			}
		})
	}
}

// TestSeedChangesResults guards against the opposite failure: a seed
// that is silently ignored would make the determinism test vacuous.
func TestSeedChangesResults(t *testing.T) {
	a, err := Fig11Latency(Options{Requests: 60, Seed: 1, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Fig11Latency(Options{Requests: 60, Seed: 2, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	diff := false
	for k, va := range a.Values {
		if vb, ok := b.Values[k]; ok && va != vb {
			diff = true
			break
		}
	}
	if !diff {
		t.Error("seeds 1 and 2 produced identical fig11 Values; seed is not threaded through")
	}
}

// TestRunManyOrderAndIsolation: RunMany returns outcomes in the order
// ids were given, regardless of completion order, and reports unknown
// ids as per-outcome errors.
func TestRunManyOrderAndIsolation(t *testing.T) {
	ids := []string{"tab3", "area", "nope", "tab1"}
	outs := RunMany(ids, Options{Requests: 60, Seed: 1, Quick: true, Parallelism: 4})
	if len(outs) != len(ids) {
		t.Fatalf("got %d outcomes for %d ids", len(outs), len(ids))
	}
	for i, id := range ids {
		if outs[i].ID != id {
			t.Errorf("outcome %d is %q, want %q", i, outs[i].ID, id)
		}
	}
	if outs[2].Err == nil {
		t.Error("unknown id did not error")
	}
	for _, i := range []int{0, 1, 3} {
		if outs[i].Err != nil {
			t.Errorf("%s failed: %v", ids[i], outs[i].Err)
		}
		if outs[i].Res == nil || len(outs[i].Res.Values) == 0 {
			t.Errorf("%s produced no values", ids[i])
		}
	}
}

// TestRunCellsErrorDeterministic: with several failing cells, the
// lowest-indexed failure wins at any parallelism.
func TestRunCellsErrorDeterministic(t *testing.T) {
	mk := func() []Cell[int] {
		return []Cell[int]{
			{Key: "ok", Run: func(int64) (int, error) { return 1, nil }},
			{Key: "bad1", Run: func(int64) (int, error) { return 0, errUnknownExperiment("bad1") }},
			{Key: "bad2", Run: func(int64) (int, error) { return 0, errUnknownExperiment("bad2") }},
		}
	}
	for _, par := range []int{1, 8} {
		_, err := RunCells(Options{Parallelism: par}, mk())
		if err == nil || err.Error() != "unknown experiment bad1" {
			t.Errorf("parallelism %d: err = %v, want bad1's error", par, err)
		}
	}
}

// TestRunCellsSeedsAreKeyDerived: each cell sees DeriveSeed(seed, key),
// independent of submission index or worker count.
func TestRunCellsSeedsAreKeyDerived(t *testing.T) {
	cells := []Cell[int64]{
		{Key: "a", Run: func(s int64) (int64, error) { return s, nil }},
		{Key: "b", Run: func(s int64) (int64, error) { return s, nil }},
	}
	o1 := Options{Seed: 5, Parallelism: 1}
	o8 := Options{Seed: 5, Parallelism: 8}
	r1, err := RunCells(o1, cells)
	if err != nil {
		t.Fatal(err)
	}
	r8, err := RunCells(o8, []Cell[int64]{cells[1], cells[0]})
	if err != nil {
		t.Fatal(err)
	}
	if r1[0] != r8[1] || r1[1] != r8[0] {
		t.Error("cell seeds depend on submission order, not on keys")
	}
	if r1[0] == r1[1] {
		t.Error("distinct keys got the same seed")
	}
}

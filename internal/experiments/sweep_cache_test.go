// Tests for RunCells' Options.Cache integration: memoized cells skip
// execution, events flag Cached, wrong-type entries fall through to a
// real run, and — the precondition for any shared cell cache — every
// sweep experiment uses globally unique cell keys.
package experiments

import (
	"fmt"
	"sync"
	"testing"
)

// recordingCache is a map-backed CellCache that counts traffic and
// remembers duplicate Puts.
type recordingCache struct {
	mu      sync.Mutex
	m       map[string]any
	hits    int
	puts    int
	dupPuts []string
}

func newRecordingCache() *recordingCache {
	return &recordingCache{m: map[string]any{}}
}

func (c *recordingCache) GetCell(key string) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	v, ok := c.m[key]
	if ok {
		c.hits++
	}
	return v, ok
}

func (c *recordingCache) PutCell(key string, v any) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.m[key]; dup {
		c.dupPuts = append(c.dupPuts, key)
	}
	c.m[key] = v
	c.puts++
}

// TestRunCellsCache: the first sweep populates the cache; an identical
// second sweep returns the same results without running any cell and
// marks every cell event Cached.
func TestRunCellsCache(t *testing.T) {
	cache := newRecordingCache()
	var ran int
	cells := func() []Cell[int] {
		out := make([]Cell[int], 5)
		for i := range out {
			i := i
			out[i] = Cell[int]{
				Key: fmt.Sprintf("cell%d", i),
				Run: func(seed int64) (int, error) {
					ran++
					return i * 10, nil
				},
			}
		}
		return out
	}
	o := Options{Seed: 1, Parallelism: 1, Cache: cache}

	first, err := RunCells(o, cells())
	if err != nil {
		t.Fatal(err)
	}
	if ran != 5 || cache.puts != 5 || cache.hits != 0 {
		t.Fatalf("cold sweep: ran=%d puts=%d hits=%d", ran, cache.puts, cache.hits)
	}

	var events []CellEvent
	o.OnCell = func(ev CellEvent) { events = append(events, ev) }
	second, err := RunCells(o, cells())
	if err != nil {
		t.Fatal(err)
	}
	if ran != 5 {
		t.Fatalf("warm sweep ran %d extra cells, want 0", ran-5)
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("cell %d: cached %d != cold %d", i, second[i], first[i])
		}
	}
	if len(events) != 5 {
		t.Fatalf("%d cell events, want 5", len(events))
	}
	for _, ev := range events {
		if !ev.Cached {
			t.Errorf("cell %s event not marked Cached on warm sweep", ev.Key)
		}
	}
}

// TestRunCellsCacheWrongType: a cached value of the wrong dynamic type
// (a key-namespace bug upstream) is ignored and the cell re-runs
// rather than corrupting the sweep.
func TestRunCellsCacheWrongType(t *testing.T) {
	cache := newRecordingCache()
	cache.PutCell("k", "poisoned string, not an int")
	ran := false
	got, err := RunCells(Options{Seed: 1, Parallelism: 1, Cache: cache},
		[]Cell[int]{{Key: "k", Run: func(seed int64) (int, error) { ran = true; return 42, nil }}})
	if err != nil {
		t.Fatal(err)
	}
	if !ran || got[0] != 42 {
		t.Fatalf("ran=%t got=%v; a wrong-type hit must fall through to the run", ran, got)
	}
	if v, ok := cache.GetCell("k"); !ok || v != any(42) {
		t.Errorf("re-run did not replace the poisoned entry: %v %t", v, ok)
	}
}

// TestRunCellsCacheSkipsFailedCells: only successful cell outputs are
// stored.
func TestRunCellsCacheSkipsFailedCells(t *testing.T) {
	cache := newRecordingCache()
	_, err := RunCells(Options{Seed: 1, Parallelism: 1, Cache: cache},
		[]Cell[int]{{Key: "boom", Run: func(seed int64) (int, error) { return 0, fmt.Errorf("cell failed") }}})
	if err == nil {
		t.Fatal("failing sweep reported success")
	}
	if cache.puts != 0 {
		t.Fatalf("failed cell was cached (%d puts)", cache.puts)
	}
}

// TestSweepCellKeysUnique audits every registered experiment: within
// one run, no cell key is ever used twice. Unique keys are what let a
// per-run cell cache (serve's cancelled-sweep reuse) replay an output
// without risking collision with a different cell — and they are
// already what keeps per-cell RNG streams (sim.DeriveSeed) disjoint.
func TestSweepCellKeysUnique(t *testing.T) {
	for _, id := range IDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			cache := newRecordingCache()
			if _, err := Registry[id](Options{Quick: true, Requests: 40, Seed: 1, Parallelism: 1, Cache: cache}); err != nil {
				t.Fatalf("%s: %v", id, err)
			}
			if len(cache.dupPuts) > 0 {
				t.Errorf("%s reused cell keys: %v", id, cache.dupPuts)
			}
		})
	}
}

// Package mem models the parts of the memory hierarchy that AccelFlow's
// orchestration interacts with: the shared DRAM controllers (bandwidth
// contention for payload spills and RELIEF's through-memory data
// movement), per-accelerator address-translation (TLB + IOMMU walks per
// §V-3), and page-fault exceptions that force CPU fallbacks (§VII-B.6).
package mem

import (
	"fmt"

	"accelflow/internal/config"
	"accelflow/internal/sim"
)

// Memory models the DRAM controllers as parallel bandwidth servers.
// A transfer occupies one controller for latency + bytes/bandwidth.
type Memory struct {
	k     *sim.Kernel
	cfg   *config.Config
	ctrls []*sim.Resource
	next  int

	// Stats.
	Transfers    uint64
	BytesMoved   uint64
	OverflowPuts uint64
	OverflowGets uint64
}

// NewMemory builds the controller pool from the config.
func NewMemory(k *sim.Kernel, cfg *config.Config) *Memory {
	m := &Memory{k: k, cfg: cfg}
	for i := 0; i < cfg.MemCtrls; i++ {
		m.ctrls = append(m.ctrls, sim.NewResource(k, fmt.Sprintf("memctrl%d", i), 1, sim.FIFO))
	}
	return m
}

// transferHold computes the controller occupancy for a transfer.
func (m *Memory) transferHold(bytes int) sim.Time {
	bw := m.cfg.MemGBsPerCtrl // GB/s == bytes/ns
	ser := sim.FromNanos(float64(bytes) / bw)
	return m.cfg.DRAMLatency + ser
}

// Transfer moves bytes to or from DRAM through the least-loaded
// controller and calls done when complete.
func (m *Memory) Transfer(bytes int, done func()) {
	if bytes <= 0 {
		bytes = 1
	}
	m.Transfers++
	m.BytesMoved += uint64(bytes)
	c := m.pick()
	c.Do(m.transferHold(bytes), done)
}

// LLCTouch returns the time to move bytes through the LLC without DRAM
// involvement (cache-resident spill data, §IV-A memory-pointer reads).
func (m *Memory) LLCTouch(bytes int) sim.Time {
	// LLC bandwidth is high; model latency plus a light serialization.
	return m.cfg.LLCLatency + sim.FromNanos(float64(bytes)/400.0)
}

func (m *Memory) pick() *sim.Resource {
	best := m.ctrls[m.next%len(m.ctrls)]
	m.next++
	for _, c := range m.ctrls {
		if c.QueueLen()+c.InService() < best.QueueLen()+best.InService() {
			best = c
		}
	}
	return best
}

// BusyTime sums cumulative busy time across the DRAM controllers.
func (m *Memory) BusyTime() sim.Time {
	var t sim.Time
	for _, c := range m.ctrls {
		t += c.BusyTime
	}
	return t
}

// CtrlCount reports the number of DRAM controllers.
func (m *Memory) CtrlCount() int { return len(m.ctrls) }

// Ctrls returns the controller resources in index order, for
// read-only inspection by the invariant checker. Callers must not
// submit work through them.
func (m *Memory) Ctrls() []*sim.Resource {
	return append([]*sim.Resource(nil), m.ctrls...)
}

// Utilization returns mean controller utilization over elapsed time.
func (m *Memory) Utilization(elapsed sim.Time) float64 {
	var u float64
	for _, c := range m.ctrls {
		u += c.Utilization(elapsed)
	}
	return u / float64(len(m.ctrls))
}

// TLB models one accelerator's address-translation cache backed by the
// shared IOMMU (PCIe ATS, §IV-A). Accesses hit with the configured
// probability; misses cost an IOMMU walk; a small fraction of
// invocations page-fault and must be handled by the OS on a core.
type TLB struct {
	cfg *config.Config
	rng *sim.RNG

	Accesses   uint64
	Misses     uint64
	PageFaults uint64
}

// NewTLB returns a TLB with its own RNG stream.
func NewTLB(cfg *config.Config, rng *sim.RNG) *TLB {
	return &TLB{cfg: cfg, rng: rng}
}

// Access draws one translation: zero extra time on a hit, an IOMMU walk
// on a miss.
func (t *TLB) Access() sim.Time {
	t.Accesses++
	if t.rng.Bool(t.cfg.TLBHitRate) {
		return 0
	}
	t.Misses++
	return t.cfg.IOMMUWalk
}

// PageFault draws whether this invocation faults (OS handling cost is
// charged by the caller, which must involve a CPU core).
func (t *TLB) PageFault() bool {
	if t.rng.Bool(t.cfg.PageFaultRate) {
		t.PageFaults++
		return true
	}
	return false
}

// MissRate returns misses per access.
func (t *TLB) MissRate() float64 {
	if t.Accesses == 0 {
		return 0
	}
	return float64(t.Misses) / float64(t.Accesses)
}

package mem

import (
	"testing"

	"accelflow/internal/config"
	"accelflow/internal/sim"
)

func TestMemoryTransferTiming(t *testing.T) {
	k := sim.NewKernel()
	cfg := config.Default()
	m := NewMemory(k, cfg)
	var done sim.Time
	m.Transfer(102400, func() { done = k.Now() }) // 100KB at 102.4GB/s = 1000ns + 80ns latency
	k.Run()
	want := cfg.DRAMLatency + sim.FromNanos(1000)
	if done != want {
		t.Errorf("transfer completed at %v, want %v", done, want)
	}
	if m.Transfers != 1 || m.BytesMoved != 102400 {
		t.Errorf("stats = %d transfers / %d bytes", m.Transfers, m.BytesMoved)
	}
}

func TestMemoryParallelControllers(t *testing.T) {
	k := sim.NewKernel()
	cfg := config.Default()
	m := NewMemory(k, cfg)
	finished := 0
	// Four controllers: four equal transfers should all finish together.
	for i := 0; i < 4; i++ {
		m.Transfer(102400, func() { finished++ })
	}
	k.RunUntil(cfg.DRAMLatency + sim.FromNanos(1000))
	if finished != 4 {
		t.Errorf("%d transfers done in one service time, want 4 (parallel ctrls)", finished)
	}
}

func TestMemoryContention(t *testing.T) {
	k := sim.NewKernel()
	cfg := config.Default()
	m := NewMemory(k, cfg)
	var last sim.Time
	// 8 transfers over 4 controllers: two serialized per controller.
	for i := 0; i < 8; i++ {
		m.Transfer(102400, func() { last = k.Now() })
	}
	k.Run()
	single := cfg.DRAMLatency + sim.FromNanos(1000)
	if last != 2*single {
		t.Errorf("last transfer at %v, want %v", last, 2*single)
	}
}

func TestMemoryZeroBytes(t *testing.T) {
	k := sim.NewKernel()
	m := NewMemory(k, config.Default())
	ran := false
	m.Transfer(0, func() { ran = true })
	k.Run()
	if !ran {
		t.Error("zero-byte transfer never completed")
	}
}

func TestMemoryUtilization(t *testing.T) {
	k := sim.NewKernel()
	cfg := config.Default()
	m := NewMemory(k, cfg)
	m.Transfer(102400, nil)
	k.Run()
	elapsed := k.Now()
	u := m.Utilization(elapsed)
	want := 1.0 / float64(cfg.MemCtrls)
	if u < want*0.99 || u > want*1.01 {
		t.Errorf("utilization = %v, want ~%v", u, want)
	}
}

func TestLLCTouchScalesWithBytes(t *testing.T) {
	m := NewMemory(sim.NewKernel(), config.Default())
	small := m.LLCTouch(64)
	big := m.LLCTouch(64 * 1024)
	if big <= small {
		t.Errorf("LLCTouch(64KB)=%v <= LLCTouch(64B)=%v", big, small)
	}
}

func TestTLBHitRate(t *testing.T) {
	cfg := config.Default()
	tlb := NewTLB(cfg, sim.NewRNG(1))
	var extra sim.Time
	const n = 100000
	for i := 0; i < n; i++ {
		extra += tlb.Access()
	}
	miss := tlb.MissRate()
	want := 1 - cfg.TLBHitRate
	if miss < want*0.8 || miss > want*1.2 {
		t.Errorf("miss rate = %v, want ~%v", miss, want)
	}
	if extra != sim.Time(tlb.Misses)*cfg.IOMMUWalk {
		t.Error("miss cost accounting inconsistent")
	}
}

func TestTLBPageFaultRare(t *testing.T) {
	cfg := config.Default()
	tlb := NewTLB(cfg, sim.NewRNG(2))
	faults := 0
	const n = 2_000_000
	for i := 0; i < n; i++ {
		if tlb.PageFault() {
			faults++
		}
	}
	rate := float64(faults) / n
	if rate > cfg.PageFaultRate*3 {
		t.Errorf("page fault rate %v too high (cfg %v)", rate, cfg.PageFaultRate)
	}
	if uint64(faults) != tlb.PageFaults {
		t.Error("fault counter mismatch")
	}
}

func TestTLBMissRateEmpty(t *testing.T) {
	tlb := NewTLB(config.Default(), sim.NewRNG(3))
	if tlb.MissRate() != 0 {
		t.Error("empty TLB reports nonzero miss rate")
	}
}

// Package accel models one AccelFlow accelerator (paper §IV-A/§V):
// an SRAM input queue gating admission, an input dispatcher that feeds
// processing elements (PEs) with scratchpads, and the PE execution
// itself. Output-dispatcher logic (branch resolution, transforms, ATM
// chaining, DMA forwarding) is driven by the engine, which owns the
// cross-accelerator policy; this package provides its serial FSM
// resource and the glue-instruction accounting.
package accel

import (
	"fmt"

	"accelflow/internal/config"
	"accelflow/internal/mem"
	"accelflow/internal/noc"
	"accelflow/internal/obs"
	"accelflow/internal/sim"
	"accelflow/internal/trace"
)

// Entry is one in-flight trace-execution instance as it moves between
// queues, PEs, and dispatchers.
type Entry struct {
	Prog  *trace.Program
	PC    int // Position Mark: index of the instruction being executed
	Flags trace.Flags

	DataBytes int // current payload size
	Tenant    int
	CoreID    int // initiating core (notified at the end, §IV-B)

	Priority int
	Deadline sim.Time // for the EDF input-dispatcher policy (§IV-C)

	EnqueuedAt sim.Time
	// LastPEHold records the most recent PE occupancy (load + wipe +
	// compute), for execution-time breakdowns.
	LastPEHold sim.Time
	// Span, when observability is enabled, receives the entry's queue
	// and compute segments; nil disables recording.
	Span *obs.Span
	// UserData carries the engine's execution context opaquely.
	UserData interface{}
}

// AdmitResult is the outcome of offering an entry to an input queue.
type AdmitResult int

const (
	// Admitted: the entry occupies an input queue slot.
	Admitted AdmitResult = iota
	// Overflowed: the queue was full; the entry went to the in-memory
	// overflow area (only output dispatchers may do this, §IV-A).
	Overflowed
	// Rejected: queue and overflow area are both full; the caller must
	// fall back to the CPU.
	Rejected
)

// Stats aggregates one accelerator's activity counters.
type Stats struct {
	Invocations   uint64
	BusyTime      sim.Time
	GlueInstrs    uint64 // output-dispatcher RISC instructions (§VII-B.2)
	GluePasses    uint64
	Branches      uint64
	Transforms    uint64
	ATMReads      uint64
	Notifies      uint64
	Overflows     uint64
	Rejections    uint64
	TenantWipes   uint64
	InBytesTotal  uint64
	OutBytesTotal uint64
	InSizes       []int // sampled input payload sizes (Fig. 5)
	OutSizes      []int
	ArmedTimeouts uint64
	// ArmRejections counts Arm calls that found no free queue slot.
	// Distinct from ArmedTimeouts: a rejection is back-pressure, not a
	// lost response, and must not inflate the paper's timeout rate.
	ArmRejections uint64
}

// Accelerator is one instance of one accelerator kind.
type Accelerator struct {
	Kind config.AccelKind
	Node noc.Node

	cfg *config.Config
	k   *sim.Kernel
	PEs *sim.Resource
	// OutDisp serializes output-dispatcher passes (one FSM per
	// accelerator, §V-2).
	OutDisp *sim.Resource
	TLB     *mem.TLB

	inCount  int
	inCap    int
	armed    int // queue slots held by armed response traces (§IV-B)
	overflow []*pendingEntry
	ovCap    int

	// Interned observability resource tags. The hot path records a span
	// segment per PE service and per overflow drain; building
	// "pe/"+Kind.String() there allocated a string per invocation.
	peName string
	ovName string
	// OutDispName tags the engine's per-pass glue segments.
	OutDispName string

	lastTenant int

	// failed marks the accelerator as unavailable for new admissions
	// (fault injection). In-flight entries drain normally; Offer and
	// Arm reject until the fault window clears.
	failed bool

	// OnReady is invoked when a PE finishes an entry and the entry has
	// been deposited in the output queue; the engine runs the output
	// dispatcher from here.
	OnReady func(*Entry)

	Stats Stats

	sampleEvery int
	sampleCnt   int

	// freePE recycles peTask records so each PE invocation reuses one
	// pooled struct instead of allocating a Task and two closures.
	freePE *peTask
}

// peTask is one pooled PE invocation: the submitted Task plus the
// context its callbacks need. started/done are bound as method values
// once, at allocation, so steady-state invocations allocate nothing.
type peTask struct {
	a       *Accelerator
	e       *Entry
	offered sim.Time
	task    sim.Task
	next    *peTask

	// startedFn/doneFn hold the bound method values; evaluating p.started
	// inline would allocate a fresh binding per invocation.
	startedFn func()
	doneFn    func()
}

// started is the Task.Started callback: the entry leaves the input
// queue for the PE, and the inter-tenant scratchpad wipe is charged
// in PE execution order (see the comment in start).
func (p *peTask) started() {
	a := p.a
	e := p.e
	a.inCount--
	a.drainOverflow()
	if e.Tenant != a.lastTenant {
		a.lastTenant = e.Tenant
		a.Stats.TenantWipes++
		p.task.Hold += a.cfg.ScratchWipe
		e.LastPEHold = p.task.Hold
		a.Stats.BusyTime += a.cfg.ScratchWipe
	}
}

// done is the Task.Done callback. It extracts its context and recycles
// the record up front: OnReady can re-enter start (chained entries),
// and the recycled record must be free for reuse by then — nothing
// after the recycle reads p.
func (p *peTask) done() {
	a := p.a
	e := p.e
	offered := p.offered
	p.e = nil
	p.next = a.freePE
	a.freePE = p
	// The PE held the entry contiguously for LastPEHold, so the service
	// window is [now-hold, now]; everything since the offer before that
	// was input-queue wait.
	now := a.k.Now()
	e.Span.Seg(obs.SegQueue, a.peName, offered, now-e.LastPEHold)
	e.Span.Seg(obs.SegCompute, a.peName, now-e.LastPEHold, now)
	a.Stats.Invocations++
	if a.sampleCnt%a.sampleEvery == 0 {
		a.Stats.InSizes = append(a.Stats.InSizes, e.DataBytes)
	}
	a.Stats.InBytesTotal += uint64(e.DataBytes)
	out := OutputBytes(a.cfg, a.Kind, e.DataBytes)
	e.DataBytes = out
	a.Stats.OutBytesTotal += uint64(out)
	if a.sampleCnt%a.sampleEvery == 0 {
		a.Stats.OutSizes = append(a.Stats.OutSizes, out)
	}
	a.sampleCnt++
	if a.OnReady != nil {
		a.OnReady(e)
	}
}

type pendingEntry struct {
	e      *Entry
	parked sim.Time // when the entry entered the overflow area
}

// New constructs an accelerator of the given kind at the given node.
func New(k *sim.Kernel, cfg *config.Config, kind config.AccelKind, node noc.Node, rng *sim.RNG, disc sim.Discipline) *Accelerator {
	return &Accelerator{
		Kind:        kind,
		Node:        node,
		cfg:         cfg,
		k:           k,
		PEs:         sim.NewResource(k, fmt.Sprintf("%v.pes", kind), cfg.PEsFor(kind), disc),
		OutDisp:     sim.NewResource(k, fmt.Sprintf("%v.outdisp", kind), 1, sim.FIFO),
		TLB:         mem.NewTLB(cfg, rng),
		inCap:       cfg.InputQueueEntries,
		ovCap:       cfg.OverflowEntries,
		lastTenant:  -1,
		sampleEvery: 7,
		peName:      "pe/" + kind.String(),
		ovName:      "overflow/" + kind.String(),
		OutDispName: "outdisp/" + kind.String(),
	}
}

// QueueFree reports free input-queue slots.
func (a *Accelerator) QueueFree() int { return a.inCap - a.inCount - a.armed }

// SetFailed marks the accelerator failed (true) or recovered (false).
// A failed accelerator rejects all new admissions and arms; entries
// already queued or in PEs drain normally.
func (a *Accelerator) SetFailed(f bool) { a.failed = f }

// Failed reports whether the accelerator is in a failure window.
func (a *Accelerator) Failed() bool { return a.failed }

// Offer attempts to admit an entry. allowOverflow distinguishes output
// dispatchers (which spill to the overflow area) from CPU Enqueue
// (which gets an error and retries, §IV-A).
func (a *Accelerator) Offer(e *Entry, allowOverflow bool) AdmitResult {
	if a.failed {
		a.Stats.Rejections++
		return Rejected
	}
	if a.QueueFree() > 0 {
		a.inCount++
		a.start(e)
		return Admitted
	}
	if allowOverflow && len(a.overflow) < a.ovCap {
		a.Stats.Overflows++
		a.overflow = append(a.overflow, &pendingEntry{e: e, parked: a.k.Now()})
		return Overflowed
	}
	a.Stats.Rejections++
	return Rejected
}

// ArmResult is the outcome of trying to arm a response trace.
type ArmResult int

const (
	// ArmOK: a queue slot is reserved; the trace fires on arrival or
	// onTimeout runs at the TCP timeout.
	ArmOK ArmResult = iota
	// ArmRejected: no free slot (or the accelerator is failed). Nothing
	// is scheduled — the caller decides how to service the response in
	// software. This is back-pressure, not a timeout.
	ArmRejected
)

// Arm reserves an input-queue slot for a response trace that will be
// triggered by a future message (the paper's asterisk continuations).
// The trace fires when the message arrives after wait; if wait exceeds
// the TCP timeout, onTimeout runs instead and the slot is released.
// With no free slot Arm returns ArmRejected and schedules nothing.
func (a *Accelerator) Arm(e *Entry, wait sim.Time, onTimeout func()) ArmResult {
	if a.failed || a.QueueFree() <= 0 {
		a.Stats.ArmRejections++
		return ArmRejected
	}
	a.armed++
	if wait > a.cfg.TCPTimeout {
		a.k.After(a.cfg.TCPTimeout, func() {
			a.armed--
			a.Stats.ArmedTimeouts++
			// The released slot must pull waiting overflow entries in:
			// an armed slot expiring is the only queue departure that
			// does not pass through a PE start, so without this drain a
			// parked entry could wait forever.
			a.drainOverflow()
			if onTimeout != nil {
				onTimeout()
			}
		})
		return ArmOK
	}
	a.k.After(wait, func() {
		a.armed--
		a.inCount++
		a.start(e)
	})
	return ArmOK
}

// start runs the input-dispatcher path for an admitted entry: TLB
// access, queue-to-scratchpad transfer, PE compute, and deposit into
// the output queue. The queue slot frees when the entry moves into a
// PE, which is when overflow entries are pulled in (§V-1).
// start runs the input-dispatcher path for an admitted entry via a
// pooled peTask. The inter-tenant scratchpad wipe (§IV-D) is decided
// in peTask.started — in PE execution order — not at submission:
// queued entries from interleaved tenants can be admitted in a
// different order than they were offered (EDF/Priority), and the wipe
// belongs to whichever entry actually follows a different tenant onto
// the PE. Started runs before the resource reads task.Hold, so the
// extension is charged.
func (a *Accelerator) start(e *Entry) {
	load := a.loadTime(e.DataBytes) + a.TLB.Access()
	compute := a.cfg.AccelCost(a.Kind, e.DataBytes)
	p := a.freePE
	if p == nil {
		p = &peTask{a: a}
		p.startedFn = p.started
		p.doneFn = p.done
	} else {
		a.freePE = p.next
	}
	p.e = e
	p.offered = a.k.Now()
	p.task = sim.Task{
		Priority: e.Priority,
		Deadline: e.Deadline,
		Started:  p.startedFn,
		Done:     p.doneFn,
		Hold:     load + compute,
	}
	e.LastPEHold = p.task.Hold
	a.Stats.BusyTime += p.task.Hold
	a.PEs.Submit(&p.task)
}

func (a *Accelerator) drainOverflow() {
	for len(a.overflow) > 0 && a.QueueFree() > 0 {
		p := a.overflow[0]
		a.overflow = a.overflow[1:]
		a.inCount++
		pe := p
		// Reading the overflowed entry back from memory costs an LLC
		// touch before it can be dispatched; it holds its queue slot
		// (inCount already incremented) during the read.
		a.k.After(a.cfg.LLCLatency, func() {
			pe.e.Span.Seg(obs.SegQueue, a.ovName, pe.parked, a.k.Now())
			a.start(pe.e)
		})
	}
}

// loadTime is the input queue -> scratchpad transfer (Table III: 10ns
// latency, 100 GB/s for inline data) plus a spill fetch for >2KB
// payloads via the memory pointer.
func (a *Accelerator) loadTime(bytes int) sim.Time {
	inline := bytes
	if inline > a.cfg.InlineDataBytes {
		inline = a.cfg.InlineDataBytes
	}
	t := a.cfg.QueueToPadLatency + sim.FromNanos(float64(inline)/a.cfg.QueueToPadGBs)
	if spill := bytes - inline; spill > 0 {
		// Spill data is cacheable and read through the LLC (§IV-A).
		t += a.cfg.LLCLatency + sim.FromNanos(float64(spill)/100.0)
	}
	return t
}

// OutputBytes models how each accelerator changes the payload size:
// compression shrinks, decompression expands, serialization adds
// protocol overhead, deserialization removes it; the others are
// size-preserving. LdB carries no data (§III-Q3).
func OutputBytes(cfg *config.Config, k config.AccelKind, in int) int {
	switch k {
	case config.Cmp:
		out := int(float64(in) * cfg.CmpRatio)
		if out < 64 {
			out = 64
		}
		return out
	case config.Dcmp:
		return int(float64(in) / cfg.CmpRatio)
	case config.Ser:
		return int(float64(in) * cfg.SerOverhead)
	case config.Dser:
		return int(float64(in) / cfg.SerOverhead)
	case config.LdB:
		return in
	default:
		return in
	}
}

// GluePass charges one output-dispatcher pass of the given instruction
// count and updates the glue statistics.
func (a *Accelerator) GluePass(instrs int) sim.Time {
	a.Stats.GlueInstrs += uint64(instrs)
	a.Stats.GluePasses++
	return a.cfg.DispatcherTime(instrs)
}

// MeanGlueInstrs is the average instructions per output-dispatcher
// operation (§VII-B.2 reports 18 for the paper's services).
func (s *Stats) MeanGlueInstrs() float64 {
	if s.GluePasses == 0 {
		return 0
	}
	return float64(s.GlueInstrs) / float64(s.GluePasses)
}

// OverflowLen reports entries currently parked in the overflow area.
func (a *Accelerator) OverflowLen() int { return len(a.overflow) }

// InQueueLen reports occupied input-queue slots (including armed).
func (a *Accelerator) InQueueLen() int { return a.inCount + a.armed }

// InQueueCap reports the input queue's slot capacity.
func (a *Accelerator) InQueueCap() int { return a.inCap }

// OverflowCap reports the overflow area's entry capacity.
func (a *Accelerator) OverflowCap() int { return a.ovCap }

// Armed reports queue slots currently held by armed response traces.
func (a *Accelerator) Armed() int { return a.armed }

package accel

import (
	"accelflow/internal/config"
	"accelflow/internal/mem"
	"accelflow/internal/noc"
	"accelflow/internal/obs"
	"accelflow/internal/sim"
)

// DMAPool models the shared A-DMA engines (Table III: 10 engines).
// Output dispatchers and cores acquire an engine to move queue entries
// between accelerators, or between an accelerator and memory.
type DMAPool struct {
	k    *sim.Kernel
	cfg  *config.Config
	net  *noc.Network
	mem  *mem.Memory
	pool *sim.Resource

	// freeDone recycles the inline-leg completion records, so the
	// common no-spill transfer allocates nothing.
	freeDone *dmaDone

	Transfers  uint64
	BytesMoved uint64
}

// dmaDone is one pooled inline-leg completion: the engine-wait and
// NoC segments plus the caller's continuation, with fn bound once.
type dmaDone struct {
	d    *DMAPool
	sp   *obs.Span
	t0   sim.Time
	hold sim.Time
	done func()
	next *dmaDone
	fn   func()
}

// run extracts its fields, recycles the record (done may start another
// transfer and reuse it — nothing below touches n again), then records
// the segments and continues.
func (n *dmaDone) run() {
	d := n.d
	sp := n.sp
	t0, hold := n.t0, n.hold
	done := n.done
	n.sp, n.done = nil, nil
	n.next = d.freeDone
	d.freeDone = n
	now := d.k.Now()
	sp.Seg(obs.SegQueue, "adma", t0, now-hold)
	sp.Seg(obs.SegNoC, "noc", now-hold, now)
	if done != nil {
		done()
	}
}

// inlineDone returns a pooled completion for an inline-only transfer
// whose engine hold starts now.
func (d *DMAPool) inlineDone(sp *obs.Span, t0, hold sim.Time, done func()) func() {
	n := d.freeDone
	if n == nil {
		n = &dmaDone{d: d}
		n.fn = n.run
	} else {
		d.freeDone = n.next
	}
	n.sp = sp
	n.t0, n.hold = t0, hold
	n.done = done
	return n.fn
}

// NewDMAPool builds the engine pool.
func NewDMAPool(k *sim.Kernel, cfg *config.Config, net *noc.Network, memory *mem.Memory) *DMAPool {
	return &DMAPool{
		k: k, cfg: cfg, net: net, mem: memory,
		pool: sim.NewResource(k, "adma", cfg.ADMAEngines, sim.FIFO),
	}
}

// Transfer moves a queue entry (trace + inline data up to 2KB) from src
// to dst, spilling payload beyond the inline limit through memory via
// the entry's Memory Pointer (§IV-A). done fires when both the inline
// and spill parts have arrived. sp, when non-nil, receives the
// engine-wait, NoC-occupancy, and spill-DMA segments.
func (d *DMAPool) Transfer(src, dst noc.Node, bytes int, traceBytes int, sp *obs.Span, done func()) {
	d.Transfers++
	d.BytesMoved += uint64(bytes + traceBytes)
	inline := bytes
	if inline > d.cfg.InlineDataBytes {
		inline = d.cfg.InlineDataBytes
	}
	spill := bytes - inline
	t0 := d.k.Now()
	// Inline part: the engine holds for the on-package route time.
	hold := d.net.TransferTime(src, dst, inline+traceBytes)
	if spill == 0 {
		// Common case (payload fits the 2KB queue entry): no join
		// counter needed — the inline leg is the only leg.
		d.pool.Do(hold, d.inlineDone(sp, t0, hold, done))
		return
	}
	outstanding := 2
	finish := func() {
		outstanding--
		if outstanding == 0 && done != nil {
			done()
		}
	}
	d.pool.Do(hold, func() {
		now := d.k.Now()
		sp.Seg(obs.SegQueue, "adma", t0, now-hold)
		sp.Seg(obs.SegNoC, "noc", now-hold, now)
		finish()
	})
	// Spill part: moved through the cache-coherent LLC/memory path.
	d.mem.Transfer(spill, func() {
		sp.Seg(obs.SegDMA, "dram", t0, d.k.Now())
		finish()
	})
}

// ToMemory deposits result data at a memory location (end of trace).
// Like Transfer, the engine carries only the inline part; payload
// beyond the 2KB queue entry streams through the memory controllers.
func (d *DMAPool) ToMemory(src noc.Node, memNode noc.Node, bytes int, sp *obs.Span, done func()) {
	d.Transfers++
	d.BytesMoved += uint64(bytes)
	inline := bytes
	if inline > d.cfg.InlineDataBytes {
		inline = d.cfg.InlineDataBytes
	}
	spill := bytes - inline
	t0 := d.k.Now()
	hold := d.net.TransferTime(src, memNode, inline)
	if spill == 0 {
		d.pool.Do(hold, d.inlineDone(sp, t0, hold, done))
		return
	}
	outstanding := 2
	finish := func() {
		outstanding--
		if outstanding == 0 && done != nil {
			done()
		}
	}
	d.pool.Do(hold, func() {
		now := d.k.Now()
		sp.Seg(obs.SegQueue, "adma", t0, now-hold)
		sp.Seg(obs.SegNoC, "noc", now-hold, now)
		finish()
	})
	d.mem.Transfer(spill, func() {
		sp.Seg(obs.SegDMA, "dram", t0, d.k.Now())
		finish()
	})
}

// Utilization reports engine-pool utilization.
func (d *DMAPool) Utilization(elapsed sim.Time) float64 { return d.pool.Utilization(elapsed) }

// QueueLen reports transfers waiting for an engine.
func (d *DMAPool) QueueLen() int { return d.pool.QueueLen() }

// Busy reports cumulative engine busy time (utilization sampling).
func (d *DMAPool) Busy() sim.Time { return d.pool.BusyTime }

// Engines reports the number of A-DMA engines in the pool.
func (d *DMAPool) Engines() int { return d.pool.Servers }

// SetEngines changes the live engine count (fault injection: removed
// engines). Floored at one; in-flight transfers finish normally.
func (d *DMAPool) SetEngines(n int) { d.pool.SetServers(n) }

// Resource exposes the underlying engine pool for read-only inspection
// (the invariant checker's per-resource suite). Callers must not
// submit work through it.
func (d *DMAPool) Resource() *sim.Resource { return d.pool }

package accel

import (
	"testing"

	"accelflow/internal/config"
	"accelflow/internal/mem"
	"accelflow/internal/noc"
	"accelflow/internal/sim"
)

func newAccel(t *testing.T, cfg *config.Config, kind config.AccelKind) (*sim.Kernel, *Accelerator) {
	t.Helper()
	k := sim.NewKernel()
	a := New(k, cfg, kind, noc.Node{Chiplet: 1}, sim.NewRNG(3), sim.FIFO)
	return k, a
}

func entry(bytes, tenant int) *Entry {
	return &Entry{DataBytes: bytes, Tenant: tenant}
}

func TestOfferAdmitsAndExecutes(t *testing.T) {
	cfg := config.Default()
	k, a := newAccel(t, cfg, config.Ser)
	var ready *Entry
	a.OnReady = func(e *Entry) { ready = e }
	e := entry(1024, 0)
	if got := a.Offer(e, false); got != Admitted {
		t.Fatalf("Offer = %v, want Admitted", got)
	}
	k.Run()
	if ready == nil {
		t.Fatal("entry never reached the output queue")
	}
	if a.Stats.Invocations != 1 {
		t.Errorf("invocations = %d", a.Stats.Invocations)
	}
	// Ser grows the payload by the serialization overhead.
	if ready.DataBytes <= 1024 {
		t.Errorf("Ser output %d should exceed input 1024", ready.DataBytes)
	}
	if e.LastPEHold < cfg.AccelCost(config.Ser, 1024) {
		t.Errorf("PE hold %v below pure compute", e.LastPEHold)
	}
}

func TestOutputBytesShapes(t *testing.T) {
	cfg := config.Default()
	cases := []struct {
		k    config.AccelKind
		in   int
		test func(out int) bool
	}{
		{config.Cmp, 10000, func(o int) bool { return o < 10000/2 }},
		{config.Dcmp, 1000, func(o int) bool { return o > 1500 }},
		{config.Ser, 1000, func(o int) bool { return o > 1000 }},
		{config.Dser, 1150, func(o int) bool { return o < 1150 }},
		{config.TCP, 1000, func(o int) bool { return o == 1000 }},
		{config.Encr, 777, func(o int) bool { return o == 777 }},
		{config.LdB, 123, func(o int) bool { return o == 123 }},
		{config.Cmp, 10, func(o int) bool { return o >= 64 }}, // floor
	}
	for _, c := range cases {
		if out := OutputBytes(cfg, c.k, c.in); !c.test(out) {
			t.Errorf("OutputBytes(%v, %d) = %d", c.k, c.in, out)
		}
	}
}

func TestQueueCapacityAndOverflow(t *testing.T) {
	cfg := config.Default()
	cfg.PEsPerAccel = 1
	cfg.InputQueueEntries = 2
	cfg.OverflowEntries = 1
	k, a := newAccel(t, cfg, config.TCP)
	done := 0
	a.OnReady = func(*Entry) { done++ }

	// The first entry moves straight into the free PE (releasing its
	// queue slot); the next two fill the queue; the fourth overflows;
	// the fifth is rejected.
	if a.Offer(entry(512, 0), true) != Admitted {
		t.Fatal("first not admitted")
	}
	if a.Offer(entry(512, 0), true) != Admitted {
		t.Fatal("second not admitted")
	}
	if a.Offer(entry(512, 0), true) != Admitted {
		t.Fatal("third not admitted (slot freed by PE pickup)")
	}
	if a.Offer(entry(512, 0), true) != Overflowed {
		t.Fatal("fourth did not overflow")
	}
	if a.OverflowLen() != 1 {
		t.Errorf("overflow len = %d", a.OverflowLen())
	}
	if a.Offer(entry(512, 0), true) != Rejected {
		t.Fatal("fifth not rejected")
	}
	// CPU-side offers never overflow.
	if a.Offer(entry(512, 0), false) != Rejected {
		t.Fatal("CPU offer overflowed")
	}
	k.Run()
	if done != 4 {
		t.Errorf("completed %d entries, want 4 (incl. drained overflow)", done)
	}
	if a.Stats.Overflows != 1 || a.Stats.Rejections != 2 {
		t.Errorf("overflow/rejection stats = %d/%d", a.Stats.Overflows, a.Stats.Rejections)
	}
	if a.OverflowLen() != 0 {
		t.Errorf("overflow not drained: %d", a.OverflowLen())
	}
}

func TestTenantWipeCharged(t *testing.T) {
	cfg := config.Default()
	k, a := newAccel(t, cfg, config.RPC)
	a.OnReady = func(*Entry) {}
	a.Offer(entry(100, 1), false)
	a.Offer(entry(100, 1), false)
	a.Offer(entry(100, 2), false)
	k.Run()
	// First entry (tenant change from -1) and third (1->2).
	if a.Stats.TenantWipes != 2 {
		t.Errorf("tenant wipes = %d, want 2", a.Stats.TenantWipes)
	}
}

func TestLargePayloadSpillCostsMore(t *testing.T) {
	cfg := config.Default()
	k1, a1 := newAccel(t, cfg, config.TCP)
	var t1 sim.Time
	a1.OnReady = func(*Entry) { t1 = k1.Now() }
	a1.Offer(entry(cfg.InlineDataBytes, 0), false)
	k1.Run()

	k2, a2 := newAccel(t, cfg, config.TCP)
	var t2 sim.Time
	a2.OnReady = func(*Entry) { t2 = k2.Now() }
	a2.Offer(entry(cfg.InlineDataBytes*8, 0), false)
	k2.Run()
	if t2 <= t1 {
		t.Errorf("8x payload (%v) not slower than inline payload (%v)", t2, t1)
	}
}

func TestArmDeliversAfterWait(t *testing.T) {
	cfg := config.Default()
	k, a := newAccel(t, cfg, config.TCP)
	var at sim.Time
	a.OnReady = func(*Entry) { at = k.Now() }
	a.Arm(entry(256, 0), 5*sim.Microsecond, func() { t.Error("unexpected timeout") })
	if a.InQueueLen() != 1 {
		t.Errorf("armed entry does not hold a slot: %d", a.InQueueLen())
	}
	k.Run()
	if at < 5*sim.Microsecond {
		t.Errorf("armed entry fired at %v, before the 5us wait", at)
	}
}

func TestArmTimesOut(t *testing.T) {
	cfg := config.Default()
	cfg.TCPTimeout = 1 * sim.Microsecond
	k, a := newAccel(t, cfg, config.TCP)
	fired := false
	timedOut := false
	a.OnReady = func(*Entry) { fired = true }
	a.Arm(entry(256, 0), 10*sim.Microsecond, func() { timedOut = true })
	k.Run()
	if fired {
		t.Error("timed-out entry executed")
	}
	if !timedOut {
		t.Error("timeout callback never ran")
	}
	if a.Stats.ArmedTimeouts != 1 {
		t.Errorf("timeout stat = %d", a.Stats.ArmedTimeouts)
	}
	if a.InQueueLen() != 0 {
		t.Error("timed-out entry leaked a queue slot")
	}
}

func TestArmRejectedWhenFull(t *testing.T) {
	cfg := config.Default()
	cfg.InputQueueEntries = 1
	cfg.PEsPerAccel = 1
	k, a := newAccel(t, cfg, config.TCP)
	a.OnReady = func(*Entry) {}
	a.Offer(entry(256, 0), false)
	a.Offer(entry(256, 0), false) // occupies the single slot's queue
	timedOut := false
	res := a.Arm(entry(256, 0), sim.Microsecond, func() { timedOut = true })
	if res != ArmRejected {
		t.Errorf("Arm on a full queue = %v, want ArmRejected", res)
	}
	// A rejection is back-pressure, not a lost response: the timeout
	// callback must not run and the timeout stats must stay clean.
	if timedOut {
		t.Error("rejected Arm ran the timeout callback")
	}
	if a.Stats.ArmRejections != 1 {
		t.Errorf("ArmRejections = %d, want 1", a.Stats.ArmRejections)
	}
	if a.Stats.ArmedTimeouts != 0 || a.Stats.Rejections != 0 {
		t.Errorf("rejection leaked into timeout/offer stats: timeouts=%d rejections=%d",
			a.Stats.ArmedTimeouts, a.Stats.Rejections)
	}
	k.Run()
	if timedOut {
		t.Error("rejected Arm scheduled a deferred timeout")
	}
}

func TestFailedAcceleratorRejectsAdmissionsAndArms(t *testing.T) {
	cfg := config.Default()
	k, a := newAccel(t, cfg, config.TCP)
	done := 0
	a.OnReady = func(*Entry) { done++ }
	a.Offer(entry(256, 0), false) // in flight before the failure
	a.SetFailed(true)
	if !a.Failed() {
		t.Fatal("Failed() false after SetFailed(true)")
	}
	if got := a.Offer(entry(256, 0), true); got != Rejected {
		t.Errorf("Offer on failed accel = %v, want Rejected", got)
	}
	if got := a.Arm(entry(256, 0), sim.Microsecond, nil); got != ArmRejected {
		t.Errorf("Arm on failed accel = %v, want ArmRejected", got)
	}
	k.Run()
	if done != 1 {
		t.Errorf("in-flight entry did not drain: done = %d", done)
	}
	a.SetFailed(false)
	if got := a.Offer(entry(256, 0), false); got != Admitted {
		t.Errorf("Offer after recovery = %v, want Admitted", got)
	}
	k.Run()
}

// TestTenantWipeFollowsExecutionOrder pins the satellite fix: the wipe
// is decided when an entry starts on a PE, not when it is offered.
// Under EDF, interleaved tenants submitted as A,B,A are admitted in
// deadline order A,A,B — two tenant switches at execution time (plus
// the initial one), where submission-order accounting would see three.
func TestTenantWipeFollowsExecutionOrder(t *testing.T) {
	cfg := config.Default()
	cfg.PEsPerAccel = 1
	k := sim.NewKernel()
	a := New(k, cfg, config.Encr, noc.Node{Chiplet: 1}, sim.NewRNG(3), sim.EDF)
	var tenants []int
	var holds []sim.Time
	a.OnReady = func(e *Entry) {
		tenants = append(tenants, e.Tenant)
		holds = append(holds, e.LastPEHold)
	}
	// Occupy the PE so the next three actually queue and re-order.
	first := entry(100, 1)
	first.Deadline = 1 * sim.Microsecond
	a.Offer(first, false)
	for _, c := range []struct {
		tenant   int
		deadline sim.Time
	}{
		{1, 300 * sim.Microsecond}, // submitted first, runs last
		{2, 200 * sim.Microsecond},
		{1, 100 * sim.Microsecond}, // submitted last, runs first
	} {
		e := entry(100, c.tenant)
		e.Deadline = c.deadline
		a.Offer(e, false)
	}
	k.Run()
	if want := []int{1, 1, 2, 1}; len(tenants) != 4 ||
		tenants[0] != want[0] || tenants[1] != want[1] ||
		tenants[2] != want[2] || tenants[3] != want[3] {
		t.Fatalf("execution order = %v, want %v", tenants, want)
	}
	// Execution order 1,1,2,1: initial wipe + 1->2 + 2->1 = 3 wipes.
	// (Submission order 1,1,2,1 happens to also give 3 here, but the
	// holds below pin WHICH entries were charged.)
	if a.Stats.TenantWipes != 3 {
		t.Errorf("tenant wipes = %d, want 3", a.Stats.TenantWipes)
	}
	// The second executed entry continues tenant 1 and must not carry a
	// wipe; the third (tenant 2) and fourth (back to 1) must.
	base := holds[1]
	if holds[2] != base+cfg.ScratchWipe || holds[3] != base+cfg.ScratchWipe {
		t.Errorf("tenant-switch entries not charged the wipe: holds = %v (wipe %v)", holds, cfg.ScratchWipe)
	}
	if holds[0] != base+cfg.ScratchWipe {
		t.Errorf("first entry should carry the initial wipe: holds = %v", holds)
	}
}

func TestGluePassAccounting(t *testing.T) {
	cfg := config.Default()
	_, a := newAccel(t, cfg, config.Dser)
	d1 := a.GluePass(15)
	d2 := a.GluePass(22)
	if d2 <= d1 {
		t.Error("more instructions should take longer")
	}
	if a.Stats.GluePasses != 2 || a.Stats.GlueInstrs != 37 {
		t.Errorf("glue stats = %d passes / %d instrs", a.Stats.GluePasses, a.Stats.GlueInstrs)
	}
	if m := a.Stats.MeanGlueInstrs(); m != 18.5 {
		t.Errorf("mean glue instrs = %v, want 18.5", m)
	}
	var empty Stats
	if empty.MeanGlueInstrs() != 0 {
		t.Error("empty stats mean not zero")
	}
}

func TestEDFDisciplineInPEs(t *testing.T) {
	cfg := config.Default()
	cfg.PEsPerAccel = 1
	k := sim.NewKernel()
	a := New(k, cfg, config.Encr, noc.Node{Chiplet: 1}, sim.NewRNG(3), sim.EDF)
	var order []sim.Time
	a.OnReady = func(e *Entry) { order = append(order, e.Deadline) }
	// First occupies the PE; the rest queue and should run by deadline.
	e0 := entry(100, 0)
	a.Offer(e0, false)
	for _, d := range []sim.Time{300, 100, 200} {
		e := entry(100, 0)
		e.Deadline = d * sim.Microsecond
		a.Offer(e, false)
	}
	k.Run()
	if len(order) != 4 {
		t.Fatalf("completed %d", len(order))
	}
	if !(order[1] == 100*sim.Microsecond && order[2] == 200*sim.Microsecond && order[3] == 300*sim.Microsecond) {
		t.Errorf("EDF order wrong: %v", order[1:])
	}
}

func TestDMAPoolTransfer(t *testing.T) {
	cfg := config.Default()
	k := sim.NewKernel()
	net := noc.NewNetwork(k, cfg)
	memory := mem.NewMemory(k, cfg)
	d := NewDMAPool(k, cfg, net, memory)
	src := noc.Node{Chiplet: 1, X: 0}
	dst := noc.Node{Chiplet: 1, X: 1}
	var small, big sim.Time
	d.Transfer(src, dst, 1024, 8, nil, func() { small = k.Now() })
	k.Run()
	k2 := sim.NewKernel()
	d2 := NewDMAPool(k2, cfg, noc.NewNetwork(k2, cfg), mem.NewMemory(k2, cfg))
	d2.Transfer(src, dst, 64*1024, 8, nil, func() { big = k2.Now() })
	k2.Run()
	if big <= small {
		t.Errorf("64KB transfer (%v) not slower than 1KB (%v): spill path missing", big, small)
	}
	if d.Transfers != 1 || d.BytesMoved != 1032 {
		t.Errorf("stats = %d/%d", d.Transfers, d.BytesMoved)
	}
}

func TestDMAPoolContention(t *testing.T) {
	cfg := config.Default()
	cfg.ADMAEngines = 1
	k := sim.NewKernel()
	d := NewDMAPool(k, cfg, noc.NewNetwork(k, cfg), mem.NewMemory(k, cfg))
	src := noc.Node{Chiplet: 1, X: 0}
	dst := noc.Node{Chiplet: 1, X: 3}
	var times []sim.Time
	for i := 0; i < 3; i++ {
		d.Transfer(src, dst, 2048, 8, nil, func() { times = append(times, k.Now()) })
	}
	k.Run()
	if len(times) != 3 {
		t.Fatalf("completed %d", len(times))
	}
	if times[1] <= times[0] || times[2] <= times[1] {
		t.Errorf("single engine did not serialize: %v", times)
	}
	if d.QueueLen() != 0 {
		t.Error("queue not drained")
	}
	if d.Utilization(k.Now()) <= 0 {
		t.Error("no utilization recorded")
	}
}

func TestDMAToMemory(t *testing.T) {
	cfg := config.Default()
	k := sim.NewKernel()
	d := NewDMAPool(k, cfg, noc.NewNetwork(k, cfg), mem.NewMemory(k, cfg))
	ran := false
	d.ToMemory(noc.Node{Chiplet: 1}, noc.Node{Chiplet: 0, Y: 6}, 4096, nil, func() { ran = true })
	k.Run()
	if !ran {
		t.Error("ToMemory never completed")
	}
}

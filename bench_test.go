// Package-level benchmarks: one testing.B benchmark per paper table
// and figure. Each benchmark runs the corresponding experiment at a
// reduced (Quick) scale and reports the headline value as a custom
// metric, so `go test -bench=. -benchmem` regenerates the whole
// evaluation sweep.
package main

import (
	"bufio"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"

	"accelflow/internal/check"
	"accelflow/internal/config"
	"accelflow/internal/control"
	"accelflow/internal/engine"
	"accelflow/internal/experiments"
	"accelflow/internal/obs"
	"accelflow/internal/serve"
	"accelflow/internal/services"
	"accelflow/internal/workload"
)

func benchExperiment(b *testing.B, id string, metric string) {
	run, ok := experiments.Registry[id]
	if !ok {
		b.Fatalf("unknown experiment %q", id)
	}
	opts := experiments.Options{Requests: 150, Seed: 1, Quick: true}
	// The throughput searches simulate many load points per call; keep
	// a single bench iteration within a few seconds.
	if id == "fig14" || id == "fig15" {
		opts.Requests = 60
	}
	var last *experiments.Result
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := run(opts)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.StopTimer()
	if metric != "" {
		if v, ok := last.Values[metric]; ok {
			b.ReportMetric(v, metric)
		}
	}
}

func BenchmarkFig1Breakdown(b *testing.B) { benchExperiment(b, "fig1", "avg/app_share") }
func BenchmarkFig3Overhead(b *testing.B)  { benchExperiment(b, "fig3", "") }
func BenchmarkTab1(b *testing.B)          { benchExperiment(b, "tab1", "") }
func BenchmarkQ2(b *testing.B)            { benchExperiment(b, "q2", "SocialNet") }
func BenchmarkFig5Sizes(b *testing.B)     { benchExperiment(b, "fig5", "") }
func BenchmarkTab2(b *testing.B)          { benchExperiment(b, "tab2", "") }
func BenchmarkTab3(b *testing.B)          { benchExperiment(b, "tab3", "") }
func BenchmarkTab4(b *testing.B)          { benchExperiment(b, "tab4", "") }
func BenchmarkFig11Latency(b *testing.B)  { benchExperiment(b, "fig11", "reduction_p99/RELIEF") }
func BenchmarkFig12Loads(b *testing.B)    { benchExperiment(b, "fig12", "reduction/15k") }
func BenchmarkFig13Ablation(b *testing.B) { benchExperiment(b, "fig13", "reduction/AccelFlow") }
func BenchmarkFig14Tput(b *testing.B)     { benchExperiment(b, "fig14", "ratio/relief") }
func BenchmarkFig15Coarse(b *testing.B)   { benchExperiment(b, "fig15", "avg_ratio") }
func BenchmarkFig16Sls(b *testing.B)      { benchExperiment(b, "fig16", "reduction_vs_relief") }
func BenchmarkFig17Components(b *testing.B) {
	benchExperiment(b, "fig17", "avg_orch_share")
}
func BenchmarkGlueInstrs(b *testing.B)  { benchExperiment(b, "glue", "mean_instrs") }
func BenchmarkUtilization(b *testing.B) { benchExperiment(b, "util", "TCP") }
func BenchmarkEnergy(b *testing.B)      { benchExperiment(b, "energy", "energy_reduction") }
func BenchmarkEvents(b *testing.B)      { benchExperiment(b, "events", "peak/fallback_pct") }
func BenchmarkFig18Chiplets(b *testing.B) {
	benchExperiment(b, "fig18", "increase_6v2")
}
func BenchmarkSens2Latency(b *testing.B) { benchExperiment(b, "sens2", "increase_6c_100v60") }
func BenchmarkFig19PEs(b *testing.B)     { benchExperiment(b, "fig19", "increase_2pe") }
func BenchmarkFig20Generations(b *testing.B) {
	benchExperiment(b, "fig20", "")
}
func BenchmarkSens5Speedups(b *testing.B) { benchExperiment(b, "sens5", "1.00x/gain") }
func BenchmarkArea(b *testing.B)          { benchExperiment(b, "area", "combined_frac") }

// sweepIDs are the cell-heavy experiments the parallel engine fans
// out; the Serial/Parallel pair below measures its speedup. Run
//
//	go test -bench='BenchmarkSweep' -benchtime=1x
//
// on a multicore machine to compare: results are bit-identical (the
// determinism tests enforce it), only wall clock differs.
var sweepIDs = []string{"fig11", "fig12", "fig13", "fig18", "fig19", "fig20", "sens2", "sens5"}

func benchSweep(b *testing.B, parallelism int) {
	opts := experiments.Options{Requests: 150, Seed: 1, Quick: true, Parallelism: parallelism}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, out := range experiments.RunMany(sweepIDs, opts) {
			if out.Err != nil {
				b.Fatalf("%s: %v", out.ID, out.Err)
			}
		}
	}
}

// benchRunRequests is the fixed request budget of the single-run
// benchmarks below; benchdump divides allocs/op by it to get the
// allocs-per-request trajectory metric.
const benchRunRequests = 300

// benchRunSpec builds the RunSpec for one benchmark iteration. The
// expensive, reusable inputs (service catalog, config, policy) are
// built once by the caller outside the timed loop; only the genuinely
// per-run state is assembled here: workload.Mix allocates fresh
// Arrivals because the Alibaba process accumulates phase state across
// draws, and an obs.Sink / check.Checker records exactly one run.
func benchRunSpec(svcs []*services.Service, cfg *config.Config, pol engine.Policy) *workload.RunSpec {
	return &workload.RunSpec{
		Config:  cfg,
		Policy:  pol,
		Sources: workload.Mix(svcs, 1.0, benchRunRequests),
		Seed:    1,
	}
}

// reportRunMetrics attaches the trajectory metrics benchdump consumes:
// kernel events per iteration (events/op, so events/sec and ns/event
// fall out of ns/op) and the fixed request budget (requests/op, so
// allocs/request falls out of allocs/op).
func reportRunMetrics(b *testing.B, events uint64) {
	b.ReportMetric(float64(events)/float64(b.N), "events/op")
	b.ReportMetric(benchRunRequests, "requests/op")
}

// benchRunObs measures the per-run cost of the observability layer.
// The Disabled/Enabled pair guards the nil-sink fast path: with no
// sink attached every obs call is a nil-receiver no-op, so the
// Disabled benchmark must stay within noise (<2%) of the pre-obs
// baseline. Compare with
//
//	go test -bench='BenchmarkRunObs' -benchtime=20x -count=5
var benchRunObsResult *workload.RunResult

func benchRunObs(b *testing.B, observed bool) {
	svcs := services.SocialNetwork()
	cfg := config.Default()
	pol := engine.AccelFlow()
	var events uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		spec := benchRunSpec(svcs, cfg, pol)
		if observed {
			spec.Obs = obs.New()
		}
		res, err := spec.Run()
		if err != nil {
			b.Fatal(err)
		}
		events += res.Engine.K.Processed()
		benchRunObsResult = res
	}
	b.StopTimer()
	reportRunMetrics(b, events)
}

func BenchmarkRunObsDisabled(b *testing.B) { benchRunObs(b, false) }
func BenchmarkRunObsEnabled(b *testing.B)  { benchRunObs(b, true) }

// benchRunCheck is the same guard for the invariant checker: with no
// checker attached every check call is a nil-receiver no-op, so the
// Disabled benchmark must stay within noise (<2%) of the pre-check
// baseline. Compare with
//
//	go test -bench='BenchmarkRunCheck' -benchtime=20x -count=5
var benchRunCheckResult *workload.RunResult

func benchRunCheck(b *testing.B, checked bool) {
	svcs := services.SocialNetwork()
	cfg := config.Default()
	pol := engine.AccelFlow()
	var events uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		spec := benchRunSpec(svcs, cfg, pol)
		if checked {
			spec.Check = check.New()
		}
		res, err := spec.Run()
		if err != nil {
			b.Fatal(err)
		}
		events += res.Engine.K.Processed()
		benchRunCheckResult = res
	}
	b.StopTimer()
	reportRunMetrics(b, events)
}

func BenchmarkRunCheckDisabled(b *testing.B) { benchRunCheck(b, false) }
func BenchmarkRunCheckEnabled(b *testing.B)  { benchRunCheck(b, true) }

// benchRunControlled is the same guard for the dynamic-control
// subsystem: with Control nil the runner takes the exact pre-control
// scheduling path (scheduleSource, no decision tick), so the Disabled
// benchmark must stay within noise (<2%) of the pre-control baseline.
// The Enabled variant runs every policy — PE autoscaler, both shed
// kinds, retry budgets — and so prices the controlled request path's
// closure plus the decision tick. Compare with
//
//	go test -bench='BenchmarkRunControlled' -benchtime=20x -count=5
var benchRunControlledResult *workload.RunResult

func benchRunControlled(b *testing.B, controlled bool) {
	svcs := services.SocialNetwork()
	cfg := config.Default()
	pol := engine.AccelFlow()
	var events uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		spec := benchRunSpec(svcs, cfg, pol)
		if controlled {
			spec.Control = &control.Spec{
				Autoscale: &control.AutoscaleSpec{
					Target:   control.TargetPE,
					UpUtil:   0.75,
					DownUtil: 0.25,
					MaxAdd:   8,
				},
				Shed:  &control.ShedSpec{Queue: 64, Prob: 0.01},
				Retry: &control.RetrySpec{Budget: 8},
			}
		}
		res, err := spec.Run()
		if err != nil {
			b.Fatal(err)
		}
		events += res.Engine.K.Processed()
		benchRunControlledResult = res
	}
	b.StopTimer()
	reportRunMetrics(b, events)
}

func BenchmarkRunControlledDisabled(b *testing.B) { benchRunControlled(b, false) }
func BenchmarkRunControlledEnabled(b *testing.B)  { benchRunControlled(b, true) }

// benchFleetRequests is the fleet benchmark's request budget: 30x the
// single-run budget, spread over benchFleetReplicas servers so each
// replica sees a comparable per-server load.
const (
	benchFleetRequests = 30 * benchRunRequests
	benchFleetReplicas = 8
)

// benchRunSharded measures the sharded kernel's real parallelism: an
// 8-replica fleet (workload.FleetSpec) executed at 1/2/4/8 workers.
// Results are byte-identical at every shard count — the determinism
// tests enforce it — so the sub-benchmarks differ only in wall clock,
// and events/op divided by ns/op gives the events/sec scaling curve.
// Compare against BenchmarkRunObsDisabled for the serial single-server
// baseline:
//
//	go test -bench='BenchmarkRun(ObsDisabled|Sharded)' -benchtime=5x
var benchRunShardedResult *workload.FleetResult

func benchRunSharded(b *testing.B, shards int) {
	svcs := services.SocialNetwork()
	cfg := config.Default()
	pol := engine.AccelFlow()
	var events uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		spec := &workload.FleetSpec{
			Config:   cfg,
			Policy:   pol,
			Sources:  workload.Mix(svcs, benchFleetReplicas, benchFleetRequests),
			Seed:     1,
			Replicas: benchFleetReplicas,
			Shards:   shards,
		}
		res, err := spec.Run()
		if err != nil {
			b.Fatal(err)
		}
		events += res.Events
		benchRunShardedResult = res
	}
	b.StopTimer()
	b.ReportMetric(float64(events)/float64(b.N), "events/op")
	b.ReportMetric(benchFleetRequests, "requests/op")
}

func BenchmarkRunSharded(b *testing.B) {
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) { benchRunSharded(b, shards) })
	}
}

// BenchmarkServeSubmitQuick measures a full job round trip through the
// in-process HTTP daemon: submit a quick experiment, then read the
// NDJSON progress stream to EOF (the completion barrier — its last
// line is the "done" event). This is the serving layer's end-to-end
// overhead on top of the simulation itself.
func BenchmarkServeSubmitQuick(b *testing.B) {
	sched := serve.NewScheduler(serve.Config{Workers: 1, QueueDepth: 2})
	defer sched.Close()
	handler := serve.NewServer(sched).Handler()
	body := `{"type":"experiment","experiment":"fig19","quick":true,"requests":40,"seed":1,"parallelism":1}`
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := httptest.NewRequest("POST", "/v1/jobs", strings.NewReader(body))
		rec := httptest.NewRecorder()
		handler.ServeHTTP(rec, req)
		if rec.Code != http.StatusAccepted {
			b.Fatalf("submit: status %d: %s", rec.Code, rec.Body.String())
		}
		id := rec.Header().Get("Location")
		prec := httptest.NewRecorder()
		handler.ServeHTTP(prec, httptest.NewRequest("GET", id+"/progress", nil))
		if prec.Code != http.StatusOK {
			b.Fatalf("progress: status %d", prec.Code)
		}
		var last string
		sc := bufio.NewScanner(prec.Body)
		for sc.Scan() {
			if s := strings.TrimSpace(sc.Text()); s != "" {
				last = s
			}
		}
		if !strings.Contains(last, `"done"`) {
			b.Fatalf("job did not finish cleanly: %s", last)
		}
	}
}

// BenchmarkServeSubmitCached is the same round trip with the
// content-addressed result cache enabled and primed: every timed
// submission is served from cache ("cached": true, byte-identical
// values), so the pair SubmitQuick/SubmitCached measures what
// deduplication buys — the cached path must be >= 10x cheaper than
// the cold one.
func BenchmarkServeSubmitCached(b *testing.B) {
	sched := serve.NewScheduler(serve.Config{Workers: 1, QueueDepth: 2, CacheEntries: 64})
	defer sched.Close()
	handler := serve.NewServer(sched).Handler()
	body := `{"type":"experiment","experiment":"fig19","quick":true,"requests":40,"seed":1,"parallelism":1}`
	roundTrip := func() {
		req := httptest.NewRequest("POST", "/v1/jobs", strings.NewReader(body))
		rec := httptest.NewRecorder()
		handler.ServeHTTP(rec, req)
		if rec.Code != http.StatusAccepted {
			b.Fatalf("submit: status %d: %s", rec.Code, rec.Body.String())
		}
		id := rec.Header().Get("Location")
		prec := httptest.NewRecorder()
		handler.ServeHTTP(prec, httptest.NewRequest("GET", id+"/progress", nil))
		if prec.Code != http.StatusOK {
			b.Fatalf("progress: status %d", prec.Code)
		}
		var last string
		sc := bufio.NewScanner(prec.Body)
		for sc.Scan() {
			if s := strings.TrimSpace(sc.Text()); s != "" {
				last = s
			}
		}
		if !strings.Contains(last, `"done"`) {
			b.Fatalf("job did not finish cleanly: %s", last)
		}
	}
	roundTrip() // prime the cache with the one cold run
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		roundTrip()
	}
}

func BenchmarkSweepSerial(b *testing.B) { benchSweep(b, 1) }
func BenchmarkSweepParallel(b *testing.B) {
	if runtime.GOMAXPROCS(0) < 2 {
		b.Skip("needs >= 2 cores to show a speedup")
	}
	benchSweep(b, runtime.GOMAXPROCS(0))
}

// Serverless: colocate the FunctionBench-like functions on one server
// with Azure-like bursty invocations (paper §VII-A.5 / Fig. 16) and
// compare Non-acc, RELIEF, and AccelFlow tails.
package main

import (
	"fmt"
	"log"

	"accelflow/internal/config"
	"accelflow/internal/engine"
	"accelflow/internal/services"
	"accelflow/internal/workload"
)

func main() {
	fns := services.Serverless()
	pols := []engine.Policy{engine.NonAcc(), engine.RELIEF(), engine.AccelFlow()}

	p99 := map[string]map[string]float64{}
	for _, pol := range pols {
		var sources []workload.Source
		for _, fn := range fns {
			sources = append(sources, workload.Source{
				Service:  fn,
				Arrivals: workload.Azure{RPS: fn.RatekRPS * 1000},
				Requests: 900,
			})
		}
		spec := &workload.RunSpec{
			Config: config.Default(), Policy: pol,
			Sources: sources, Seed: 11,
		}
		res, err := spec.Run()
		if err != nil {
			log.Fatal(err)
		}
		p99[pol.Name] = map[string]float64{}
		for _, fn := range fns {
			p99[pol.Name][fn.Name] = res.PerService[fn.Name].P99().Micros()
		}
	}

	fmt.Printf("%-8s %12s %12s %12s %10s\n", "func", "Non-acc", "RELIEF", "AccelFlow", "vs RELIEF")
	var avg float64
	for _, fn := range fns {
		r := 1 - p99["AccelFlow"][fn.Name]/p99["RELIEF"][fn.Name]
		avg += r
		fmt.Printf("%-8s %10.0fus %10.0fus %10.0fus %9.1f%%\n",
			fn.Name, p99["Non-acc"][fn.Name], p99["RELIEF"][fn.Name], p99["AccelFlow"][fn.Name], -100*r)
	}
	fmt.Printf("\naverage AccelFlow vs RELIEF: %.1f%% (paper: -37%%)\n", -100*avg/float64(len(fns)))
}

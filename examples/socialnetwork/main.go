// SocialNetwork: run the DeathStarBench SocialNetwork mix (paper
// Table IV services, Alibaba-like bursty production rates) on two
// servers — a RELIEF-like hardware manager and AccelFlow — and compare
// per-service tails, the paper's Fig. 11 headline.
package main

import (
	"fmt"
	"log"

	"accelflow/internal/config"
	"accelflow/internal/engine"
	"accelflow/internal/services"
	"accelflow/internal/workload"
)

func main() {
	svcs := services.SocialNetwork()
	fmt.Printf("services: %d, mean Alibaba-like rate %.1fK RPS\n\n", len(svcs), services.MeanRatekRPS(svcs))

	results := map[string]*workload.RunResult{}
	for _, pol := range []engine.Policy{engine.RELIEF(), engine.AccelFlow()} {
		res, err := workload.Run(config.Default(), pol,
			workload.Mix(svcs, 1.0, 6000), 7, nil, nil)
		if err != nil {
			log.Fatal(err)
		}
		results[pol.Name] = res
	}

	fmt.Printf("%-8s %14s %14s %9s\n", "service", "RELIEF p99", "AccelFlow p99", "reduction")
	for _, svc := range svcs {
		rl := results["RELIEF"].PerService[svc.Name].P99()
		af := results["AccelFlow"].PerService[svc.Name].P99()
		fmt.Printf("%-8s %14v %14v %8.1f%%\n", svc.Name, rl, af, 100*(1-float64(af)/float64(rl)))
	}

	af := results["AccelFlow"]
	fmt.Printf("\nAccelFlow: %d requests, %.1f accelerator invocations/request, %d CPU fallbacks, %d timeouts\n",
		af.Completed, float64(af.AccelCount)/float64(af.Completed), af.FellBack, af.TimedOut)
	eng := af.Engine
	fmt.Println("\naccelerator PE utilization:")
	for _, k := range config.AllAccelKinds() {
		fmt.Printf("  %-5v %5.1f%%\n", k, 100*eng.Accels[k].PEs.Utilization(af.Elapsed))
	}
}

// SocialNetwork: run the DeathStarBench SocialNetwork mix (paper
// Table IV services, Alibaba-like bursty production rates) on two
// servers — a RELIEF-like hardware manager and AccelFlow — and compare
// per-service tails, the paper's Fig. 11 headline.
//
// With -trace the AccelFlow run records per-request spans and writes a
// Chrome trace-event file (load it at ui.perfetto.dev); with -report it
// writes a structured JSON report with latency histograms, per-segment
// breakdowns, and utilization timelines.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"accelflow/internal/config"
	"accelflow/internal/engine"
	"accelflow/internal/obs"
	"accelflow/internal/services"
	"accelflow/internal/workload"
)

func main() {
	tracePath := flag.String("trace", "", "write a Chrome trace-event JSON of the AccelFlow run to this file")
	reportPath := flag.String("report", "", "write a structured JSON observability report of the AccelFlow run to this file")
	flag.Parse()

	svcs := services.SocialNetwork()
	fmt.Printf("services: %d, mean Alibaba-like rate %.1fK RPS\n\n", len(svcs), services.MeanRatekRPS(svcs))

	var sink *obs.Sink
	if *tracePath != "" || *reportPath != "" {
		sink = obs.New()
	}

	results := map[string]*workload.RunResult{}
	for _, pol := range []engine.Policy{engine.RELIEF(), engine.AccelFlow()} {
		spec := &workload.RunSpec{
			Config:  config.Default(),
			Policy:  pol,
			Sources: workload.Mix(svcs, 1.0, 6000),
			Seed:    7,
		}
		if pol.Name == "AccelFlow" {
			spec.Obs = sink
		}
		res, err := spec.Run()
		if err != nil {
			log.Fatal(err)
		}
		results[pol.Name] = res
	}

	fmt.Printf("%-8s %14s %14s %9s\n", "service", "RELIEF p99", "AccelFlow p99", "reduction")
	for _, svc := range svcs {
		rl := results["RELIEF"].PerService[svc.Name].P99()
		af := results["AccelFlow"].PerService[svc.Name].P99()
		fmt.Printf("%-8s %14v %14v %8.1f%%\n", svc.Name, rl, af, 100*(1-float64(af)/float64(rl)))
	}

	af := results["AccelFlow"]
	fmt.Printf("\nAccelFlow: %d requests, %.1f accelerator invocations/request, %d CPU fallbacks, %d timeouts\n",
		af.Completed, float64(af.AccelCount)/float64(af.Completed), af.FellBack, af.TimedOut)
	eng := af.Engine
	fmt.Println("\naccelerator PE utilization:")
	for _, k := range config.AllAccelKinds() {
		fmt.Printf("  %-5v %5.1f%%\n", k, 100*eng.Accels[k].PEs.Utilization(af.Elapsed))
	}

	if *tracePath != "" {
		if err := writeFile(*tracePath, sink.WriteChromeTrace); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nwrote Chrome trace (%d spans) to %s\n", sink.SpanCount(), *tracePath)
	}
	if *reportPath != "" {
		if err := writeFile(*reportPath, sink.WriteReport); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote observability report to %s\n", *reportPath)
	}
}

func writeFile(path string, write func(w io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

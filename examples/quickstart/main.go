// Quickstart: build the paper's Listing 1 trace with the public builder
// API, run it through an AccelFlow server, and print what happened.
package main

import (
	"fmt"
	"log"

	"accelflow/internal/config"
	"accelflow/internal/engine"
	"accelflow/internal/sim"
	"accelflow/internal/trace"
)

func main() {
	// 1. Construct the trace of Fig. 4a / Listing 1: receive a function
	// request — TCP, Decr, RPC, Dser, then "if compressed: transform
	// JSON->string and decompress", then the load balancer.
	funcReq, err := trace.New("func_req").
		Seq(config.TCP, config.Decr, config.RPC, config.Dser).
		Branch(trace.CondCompressed,
			trace.Sub().Trans(trace.FmtJSON, trace.FmtString).Seq(config.Dcmp),
			nil).
		Seq(config.LdB).
		Build()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(funcReq)

	// 2. The 8-byte binary encoding (§IV-A: 4 bits per accelerator).
	syms := trace.NewMapSymbols()
	bin, err := funcReq.Encode(syms)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nencoded: %x (%d bytes of the %d-byte budget)\n\n", bin, len(bin), trace.MaxTraceBytes)

	// 3. Build an AccelFlow server (Table III parameters) and submit
	// one request whose payload is compressed, and one that is not.
	k := sim.NewKernel()
	eng, err := engine.New(k, config.Default(), engine.AccelFlow(), engine.Params{Seed: 42})
	if err != nil {
		log.Fatal(err)
	}
	if err := eng.Register([]*trace.Program{funcReq}, nil); err != nil {
		log.Fatal(err)
	}
	for _, pComp := range []float64{0, 1} {
		job := &engine.Job{
			Service: "quickstart",
			Steps: []engine.Step{
				{Kind: engine.StepChain, Trace: "func_req"},
				{Kind: engine.StepApp, App: 10 * sim.Microsecond},
			},
			Probs:         engine.FlagProbs{PCompressed: pComp},
			PayloadMedian: 1500, PayloadSigma: 0.4,
		}
		eng.Submit(job, func(r engine.Result) {
			fmt.Printf("compressed=%v: latency %v, %d accelerators, breakdown: cpu %v accel %v orch %v comm %v\n",
				pComp == 1, r.Latency, r.Accels,
				r.Breakdown.CPU, r.Breakdown.Accel, r.Breakdown.Orch, r.Breakdown.Comm)
		})
		k.Run()
	}
}

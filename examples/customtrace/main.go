// Customtrace: author a new service with the trace builder API —
// including an ATM-chained continuation, a fork, and soft-SLO EDF
// scheduling (§IV-C) — and run it under load with FIFO vs EDF input
// dispatchers.
package main

import (
	"fmt"
	"log"

	"accelflow/internal/config"
	"accelflow/internal/engine"
	"accelflow/internal/services"
	"accelflow/internal/sim"
	"accelflow/internal/trace"
	"accelflow/internal/workload"
)

func main() {
	// An analytics-ingest service: receive a batch, decompress it,
	// fork an audit write-back, store it, and acknowledge.
	ingest := trace.New("ingest").
		Seq(config.TCP, config.Decr, config.Dser).
		Branch(trace.CondCompressed, trace.Sub().Seq(config.Dcmp), nil).
		Fork("audit").
		Seq(config.LdB).
		MustBuild()
	audit := trace.New("audit").
		Seq(config.Cmp, config.Ser, config.Encr, config.TCP).
		MustBuild()
	ack := trace.New("ack").
		Seq(config.Ser, config.Encr, config.TCP).
		MustBuild()

	catalog := []*trace.Program{ingest, audit, ack}
	svc := &services.Service{
		Name: "Ingest",
		Steps: []engine.Step{
			{Kind: engine.StepChain, Trace: "ingest"},
			{Kind: engine.StepApp, App: 12 * sim.Microsecond},
			{Kind: engine.StepChain, Trace: "ack"},
		},
		Probs:         engine.FlagProbs{PCompressed: 0.7},
		PayloadMedian: 2500, PayloadSigma: 0.8,
		SLOus: 150, // soft deadline driving the EDF dispatcher
	}

	for _, pol := range []engine.Policy{engine.AccelFlow(), engine.AccelFlowEDF()} {
		spec := &workload.RunSpec{
			Config: config.Default(),
			Policy: pol,
			Sources: []workload.Source{{
				Service:  svc,
				Arrivals: &workload.Alibaba{RPS: 45000},
				Requests: 4000,
			}},
			Seed:     3,
			Programs: catalog,
			Remote:   map[string]engine.RemoteKind{},
		}
		res, err := spec.Run()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-14s mean %-12v p99 %-12v (%d requests, %d forks)\n",
			pol.Name, res.All.Mean(), res.All.P99(), res.Completed, res.Engine.Stats.ForksSpawned)
	}
	fmt.Println("\n(ingest trace disassembly)")
	fmt.Print(ingest)
}
